bin/kle_inspect.ml: Arg Array Cmd Cmdliner Geometry Kernels Kle Printf Term Util
