bin/kle_inspect.mli:
