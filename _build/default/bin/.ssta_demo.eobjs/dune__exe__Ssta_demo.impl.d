bin/ssta_demo.ml: Arg Array Circuit Cmd Cmdliner List Logs Printf Ssta Sta String Term
