bin/ssta_demo.mli:
