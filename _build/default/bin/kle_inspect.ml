(* Inspect the Karhunen-Loeve expansion of a correlation kernel: eigenvalue
   decay, the automatic truncation order, and reconstruction accuracy.

   Examples:
     kle_inspect --kernel gaussian --param 2.8
     kle_inspect --kernel matern --param 2.0 --shape 2.5 --mesh-frac 0.004 *)

open Cmdliner

let run kernel_name param shape mesh_frac min_angle pairs =
  let kernel =
    match kernel_name with
    | "gaussian" -> Kernels.Kernel.Gaussian { c = param }
    | "exponential" -> Kernels.Kernel.Exponential { c = param }
    | "separable" -> Kernels.Kernel.Separable_exp_l1 { c = param }
    | "matern" -> Kernels.Kernel.Matern { b = param; s = shape }
    | "spherical" -> Kernels.Kernel.Spherical { rho = param }
    | "anisotropic" -> Kernels.Kernel.Anisotropic_gaussian { cx = param; cy = shape }
    | "paper" -> Kernels.Fit.paper_gaussian ()
    | other ->
        Printf.eprintf
          "unknown kernel %S \
           (gaussian|exponential|separable|matern|spherical|anisotropic|paper)\n"
          other;
        exit 1
  in
  (match Kernels.Kernel.validate kernel with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "invalid kernel parameters: %s\n" e;
      exit 1);
  Printf.printf "kernel: %s\n" (Kernels.Kernel.name kernel);
  let mesh_result =
    Geometry.Refine.mesh Geometry.Rect.unit_die ~max_area_fraction:mesh_frac
      ~min_angle_deg:min_angle
  in
  let mesh = mesh_result.Geometry.Geometry_intf.mesh in
  let n = Geometry.Mesh.size mesh in
  Printf.printf "mesh: n = %d, h = %.4f, min angle = %.1f deg\n" n
    (Geometry.Mesh.h_max mesh)
    (Geometry.Mesh.min_angle_deg mesh);
  let count = min pairs n in
  let sol, dt =
    Util.Timer.time (fun () ->
        Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count }) mesh kernel)
  in
  Printf.printf "eigensolution: %d pairs in %.2fs\n\n" count dt;
  let vals = sol.Kle.Galerkin.eigenvalues in
  let total = Kle.Galerkin.trace mesh kernel in
  Printf.printf "%6s %12s %12s\n" "j" "lambda" "cum. frac";
  let cum = ref 0.0 in
  Array.iteri
    (fun j v ->
      cum := !cum +. v;
      if j < 10 || (j + 1) mod 10 = 0 then
        Printf.printf "%6d %12.6f %12.5f\n" (j + 1) v (!cum /. total))
    vals;
  let r = Kle.Model.choose_r ~n_total:n vals in
  Printf.printf "\ntruncation rule (1%% tolerance): r = %d\n" r;
  let model = Kle.Model.create ~r sol in
  Printf.printf "reconstruction error from die center (mesh nodes): %.4f\n"
    (Kle.Model.reconstruction_error model);
  Printf.printf "variance captured: %.2f%%\n"
    (100.0 *. Kle.Model.captured_variance_fraction model)

let kernel_arg =
  Arg.(
    value & opt string "paper"
    & info [ "k"; "kernel" ]
        ~doc:
          "Kernel family: gaussian, exponential, separable, matern, spherical, \
           anisotropic (cx = param, cy = shape), paper.")

let param_arg =
  Arg.(
    value & opt float 2.8
    & info [ "p"; "param" ] ~doc:"Primary kernel parameter (c, b or rho).")

let shape_arg =
  Arg.(value & opt float 2.5 & info [ "shape" ] ~doc:"Matern shape parameter s (> 1).")

let mesh_frac_arg =
  Arg.(
    value & opt float 0.001
    & info [ "mesh-frac" ] ~doc:"Max triangle area as a fraction of the die.")

let min_angle_arg =
  Arg.(value & opt float 28.0 & info [ "min-angle" ] ~doc:"Mesh minimum angle (deg).")

let pairs_arg =
  Arg.(value & opt int 200 & info [ "pairs" ] ~doc:"Number of eigenpairs to compute.")

let cmd =
  let doc = "inspect the KLE of a spatial correlation kernel" in
  Cmd.v
    (Cmd.info "kle_inspect" ~doc)
    Term.(
      const run $ kernel_arg $ param_arg $ shape_arg $ mesh_frac_arg $ min_angle_arg
      $ pairs_arg)

let () = exit (Cmd.eval cmd)
