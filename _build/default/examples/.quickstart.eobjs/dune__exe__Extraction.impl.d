examples/extraction.ml: Array Float Geometry Kernels Kle List Printf Prng Sys
