examples/extraction.mli:
