examples/kernel_fitting.ml: Float Geometry Kernels List Printf
