examples/kernel_fitting.mli:
