examples/mesh_convergence.ml: Array Float Geometry Kernels Kle List Printf
