examples/mesh_convergence.mli:
