examples/quickstart.ml: Array Geometry Kernels Kle Linalg List Printf Prng Stats
