examples/quickstart.mli:
