examples/timing_flow.ml: Array Circuit Printf Ssta Sta Sys
