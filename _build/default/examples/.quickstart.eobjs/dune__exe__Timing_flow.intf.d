examples/timing_flow.mli:
