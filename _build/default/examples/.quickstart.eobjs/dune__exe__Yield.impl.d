examples/yield.ml: Array Circuit Linalg Printf Prng Specfun Ssta Sta Stats Sys Util
