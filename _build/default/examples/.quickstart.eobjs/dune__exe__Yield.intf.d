examples/yield.mli:
