(* End-to-end kernel extraction from "silicon": simulate measured wafers
   with a known true kernel, estimate the empirical correlogram, extract a
   valid kernel from candidate families, and verify the recovered KLE
   matches the truth — the full loop that connects [Xiong, TCAD'07]
   (extraction, the paper's ref [1]) to this paper (consumption).

   Run with: dune exec examples/extraction.exe [n_wafers] *)

let () =
  let n_wafers = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 300 in

  (* ground truth, hidden from the extraction *)
  let truth = Kernels.Kernel.Gaussian { c = 2.8 } in
  Printf.printf "true kernel (hidden): %s\n" (Kernels.Kernel.name truth);

  (* "measurement": ring-oscillator-like test structures at 150 die sites,
     measured on n_wafers dies, sampled exactly (Algorithm 1) *)
  let locations =
    Kernels.Validity.random_points ~seed:11 ~n:150 Geometry.Rect.unit_die
  in
  let gram = Kernels.Validity.gram truth locations in
  let mvn = Prng.Mvn.of_covariance gram in
  let samples = Prng.Mvn.sample_matrix mvn (Prng.Rng.create ~seed:13) ~n:n_wafers in
  Printf.printf "simulated %d wafers x %d test sites\n\n" n_wafers
    (Array.length locations);

  (* the empirical correlogram the fits see *)
  let cg =
    Kernels.Extract.empirical_correlogram ~locations ~samples ~bins:14 ()
  in
  Printf.printf "%10s %12s %8s\n" "distance" "correlation" "pairs";
  Array.iteri
    (fun b d ->
      Printf.printf "%10.3f %12.4f %8d\n" d
        cg.Kernels.Extract.correlations.(b)
        cg.Kernels.Extract.counts.(b))
    cg.Kernels.Extract.distances;

  (* extraction over candidate families *)
  Printf.printf "\ncandidates (best SSE first):\n";
  let results = Kernels.Extract.extract ~locations ~samples () in
  List.iter
    (fun (e : Kernels.Extract.extraction) ->
      Printf.printf "  %-12s %-26s sse = %8.2f  %s\n" e.family_name
        (Kernels.Kernel.name e.kernel) e.sse
        (if e.valid then "valid" else "INVALID"))
    results;
  let best = List.find (fun (e : Kernels.Extract.extraction) -> e.valid) results in
  Printf.printf "\nextracted: %s\n" (Kernels.Kernel.name best.kernel);

  (* does the recovered kernel yield the same KLE? *)
  let mesh = Geometry.Mesh.uniform Geometry.Rect.unit_die ~divisions:10 in
  let eig kernel =
    (Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count = 10 }) mesh kernel)
      .Kle.Galerkin.eigenvalues
  in
  let lam_true = eig truth and lam_got = eig best.kernel in
  Printf.printf "\nKLE check (top eigenvalues, true vs extracted):\n";
  for i = 0 to 5 do
    Printf.printf "  lambda_%d: %.4f vs %.4f (%.1f%%)\n" (i + 1) lam_true.(i)
      lam_got.(i)
      (100.0 *. Float.abs (lam_got.(i) -. lam_true.(i)) /. lam_true.(i))
  done
