(* Kernel extraction workflow: fit candidate kernel families to a measured
   correlogram, check validity (non-negative definiteness), and pick the
   best valid kernel — the Fig 3(a) story, plus the validity pitfall the
   paper warns about.

   Run with: dune exec examples/kernel_fitting.exe *)

module K = Kernels.Kernel

let () =
  (* "measurement data": the near-linear isotropic correlogram reported by
     Friedberg et al. (ISQED'05), correlation distance = half chip length *)
  let rho = 1.0 in
  let measured v = Float.max 0.0 (1.0 -. (v /. rho)) in
  Printf.printf "target correlogram: linear cone, rho = %.1f (half chip length)\n\n" rho;

  (* fit three families *)
  let fits =
    [
      ( "gaussian",
        Kernels.Fit.fit_profile_1d
          ~family:(fun c -> K.Gaussian { c })
          ~target:measured ~vmax:2.0 ~lo:1e-3 ~hi:100.0 () );
      ( "exponential",
        Kernels.Fit.fit_profile_1d
          ~family:(fun c -> K.Exponential { c })
          ~target:measured ~vmax:2.0 ~lo:1e-3 ~hi:100.0 () );
      ( "spherical",
        Kernels.Fit.fit_profile_1d
          ~family:(fun rho -> K.Spherical { rho })
          ~target:measured ~vmax:2.0 ~lo:0.1 ~hi:5.0 () );
    ]
  in
  List.iter
    (fun (name, fit) ->
      Printf.printf "%-12s -> %-24s SSE = %.5f\n" name
        (K.name fit.Kernels.Fit.kernel)
        fit.Kernels.Fit.sse)
    fits;

  (* validity check: is each candidate non-negative definite on the die?
     (paper eq. (2); the raw linear cone itself fails this in 2-D) *)
  Printf.printf "\nvalidity (smallest Gram eigenvalue on 60 die locations):\n";
  let pts = Kernels.Validity.random_points ~seed:5 ~n:60 Geometry.Rect.unit_die in
  let candidates =
    (* include the raw cone to demonstrate the pitfall *)
    ("linear cone (raw data!)", K.Linear_cone { rho })
    :: List.map (fun (name, f) -> (name, f.Kernels.Fit.kernel)) fits
  in
  List.iter
    (fun (name, k) ->
      let min_eig = Kernels.Validity.min_eigenvalue k pts in
      Printf.printf "  %-24s min eig = %+.2e  %s\n" name min_eig
        (if Kernels.Validity.is_psd_on k pts then "valid" else "INVALID"))
    candidates;

  (* the Matern family of the paper's eq. (6) can also be fit — shape s
     controls smoothness *)
  Printf.printf "\nMatern family (eq. 6) across shapes, fitted scale b:\n";
  List.iter
    (fun s ->
      let fit =
        Kernels.Fit.fit_profile_1d
          ~family:(fun b -> K.Matern { b; s })
          ~target:measured ~vmax:2.0 ~lo:0.05 ~hi:30.0 ()
      in
      Printf.printf "  s = %.1f -> %-26s SSE = %.5f\n" s
        (K.name fit.Kernels.Fit.kernel)
        fit.Kernels.Fit.sse)
    [ 1.5; 2.0; 3.0 ]
