(* Theorem 2 in practice: the Galerkin eigenvalues converge as the mesh is
   refined (h -> 0), validated against the closed-form KLE of the separable
   exponential kernel (Ghanem & Spanos).

   Run with: dune exec examples/mesh_convergence.exe *)

let () =
  let c = 1.0 in
  let kernel = Kernels.Kernel.Separable_exp_l1 { c } in
  let exact = Kernels.Analytic_kle.exp_2d ~c ~rect:Geometry.Rect.unit_die ~count:5 in
  Printf.printf "kernel: %s on [-1,1]^2 (analytically solvable)\n" (Kernels.Kernel.name kernel);
  Printf.printf "exact eigenvalues:";
  Array.iter (fun p -> Printf.printf " %.5f" p.Kernels.Analytic_kle.lambda) exact;
  Printf.printf "\n\n%10s %8s %10s %24s %24s\n" "max area" "n" "h" "centroid max rel err"
    "mid-edge max rel err";
  List.iter
    (fun frac ->
      let mesh =
        (Geometry.Refine.mesh Geometry.Rect.unit_die ~max_area_fraction:frac
           ~min_angle_deg:28.0)
          .Geometry.Geometry_intf.mesh
      in
      let err quadrature =
        let sol =
          Kle.Galerkin.solve ~quadrature
            ~solver:(Kle.Galerkin.Lanczos { count = 5 })
            mesh kernel
        in
        let worst = ref 0.0 in
        Array.iteri
          (fun i p ->
            let e = p.Kernels.Analytic_kle.lambda in
            worst :=
              Float.max !worst
                (Float.abs (sol.Kle.Galerkin.eigenvalues.(i) -. e) /. e))
          exact;
        !worst
      in
      Printf.printf "%10.4f %8d %10.4f %24.2e %24.2e\n" frac (Geometry.Mesh.size mesh)
        (Geometry.Mesh.h_max mesh)
        (err Kle.Galerkin.Centroid)
        (err Kle.Galerkin.Midedge))
    [ 0.05; 0.02; 0.01; 0.004; 0.002 ];
  Printf.printf
    "\nexpected: error shrinks roughly linearly in h (Theorem 2). The degree-2\n\
     mid-edge rule (the paper's \"higher order\" extension) is tighter on coarse\n\
     meshes; for this kernel (whose derivative jumps at x = y, violating the\n\
     smoothness behind the higher-order rate) the centroid rule catches up as\n\
     h shrinks.\n"
