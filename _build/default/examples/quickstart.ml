(* Quickstart: compress a spatially correlated random field into 25 random
   variables and draw a realization — the core loop of the library in ~40
   lines.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. a physically valid correlation kernel for the normalized die.
        [Fit.paper_gaussian] calibrates exp(-c v²) against the
        measurement-backed linear correlogram. *)
  let kernel = Kernels.Fit.paper_gaussian () in
  Printf.printf "kernel: %s\n" (Kernels.Kernel.name kernel);

  (* 2. mesh the die (Triangle-style: max area + min angle constraints) *)
  let mesh_result =
    Geometry.Refine.mesh Geometry.Rect.unit_die ~max_area_fraction:0.004
      ~min_angle_deg:28.0
  in
  let mesh = mesh_result.Geometry.Geometry_intf.mesh in
  Printf.printf "mesh: %d triangles (min angle %.1f deg)\n" (Geometry.Mesh.size mesh)
    (Geometry.Mesh.min_angle_deg mesh);

  (* 3. solve the Galerkin KLE eigenproblem and truncate with the paper's
        1%-variance rule *)
  let solution = Kle.Galerkin.solve mesh kernel in
  let model = Kle.Model.create solution in
  Printf.printf "KLE: %d eigenpairs retained, %.1f%% of field variance\n"
    model.Kle.Model.r
    (100.0 *. Kle.Model.captured_variance_fraction model);

  (* 4. draw one field realization at 10 chip locations *)
  let locations =
    Kernels.Validity.random_points ~seed:42 ~n:10 Geometry.Rect.unit_die
  in
  let sampler = Kle.Sampler.create model locations in
  let rng = Prng.Rng.create ~seed:7 in
  let field = Kle.Sampler.sample sampler rng in
  Printf.printf "\none realization of the normalized parameter (e.g. Delta-L/sigma):\n";
  Array.iteri
    (fun i (p : Geometry.Point.t) ->
      Printf.printf "  gate %2d at (%+.2f, %+.2f): %+.3f\n" i p.x p.y field.(i))
    locations;

  (* 5. sanity: nearby locations get similar values, empirically *)
  let n = 20_000 in
  let samples = Kle.Sampler.sample_matrix sampler rng ~n in
  let corr = Stats.Correlation.column_correlation samples in
  Printf.printf "\nempirical vs kernel correlation over %d samples:\n" n;
  List.iter
    (fun (i, j) ->
      Printf.printf "  gates %d-%d: sampled %+.3f, kernel %+.3f\n" i j
        (Linalg.Mat.get corr i j)
        (Kernels.Kernel.eval kernel locations.(i) locations.(j)))
    [ (0, 1); (0, 5); (3, 8) ]
