(* Full statistical timing flow on one benchmark circuit: generate, place,
   build wire loads, then compare the two Monte Carlo SSTA algorithms of the
   paper (Cholesky reference vs covariance-kernel KLE).

   Run with: dune exec examples/timing_flow.exe [circuit] [samples]
   e.g.      dune exec examples/timing_flow.exe -- c1355 2000 *)

let () =
  let circuit_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c880" in
  let samples =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1000
  in

  (* substrate: synthetic ISCAS-like netlist at the paper's gate count,
     recursive-bisection placement, HPWL wire loads, prepared timer *)
  let netlist = Circuit.Generator.generate_paper circuit_name in
  let setup = Ssta.Experiment.setup_circuit netlist in
  Printf.printf "%s: %d logic gates, %d endpoints, depth %d\n" circuit_name
    (Circuit.Netlist.logic_gate_count netlist)
    (Array.length setup.Ssta.Experiment.sta.Sta.Timing.endpoints)
    (Circuit.Netlist.max_level netlist);
  let nominal = Sta.Timing.run_nominal setup.Ssta.Experiment.sta in
  Printf.printf "nominal worst delay: %.1f ps\n\n" nominal.Sta.Timing.worst_delay;

  let process = Ssta.Process.paper_default () in

  (* Algorithm 1: full gate covariance + Cholesky *)
  let a1 = Ssta.Algorithm1.prepare process setup.Ssta.Experiment.locations in
  Printf.printf "Algorithm 1 (Cholesky) setup: %.2fs (%d x %d covariance)\n"
    (Ssta.Algorithm1.setup_seconds a1)
    (Array.length setup.Ssta.Experiment.locations)
    (Array.length setup.Ssta.Experiment.locations);
  let mc1 =
    Ssta.Experiment.run_mc setup
      ~sampler:(Ssta.Algorithm1.sample_block a1)
      ~seed:11 ~n:samples
  in
  Printf.printf "  %d samples: mu = %.1f ps, sigma = %.2f ps (%.2fs sample + %.2fs STA)\n"
    samples mc1.Ssta.Experiment.worst_mean mc1.Ssta.Experiment.worst_sigma
    mc1.Ssta.Experiment.sample_seconds mc1.Ssta.Experiment.sta_seconds;

  (* Algorithm 2: KLE in 25 random variables *)
  let a2 = Ssta.Algorithm2.prepare process setup.Ssta.Experiment.locations in
  Printf.printf "Algorithm 2 (KLE) setup: %.2fs (mesh n = %d, r = %d)\n"
    (Ssta.Algorithm2.setup_seconds a2)
    (Ssta.Algorithm2.mesh_size a2) (Ssta.Algorithm2.r a2);
  let mc2 =
    Ssta.Experiment.run_mc setup
      ~sampler:(Ssta.Algorithm2.sample_block a2)
      ~seed:12 ~n:samples
  in
  Printf.printf "  %d samples: mu = %.1f ps, sigma = %.2f ps (%.2fs sample + %.2fs STA)\n"
    samples mc2.Ssta.Experiment.worst_mean mc2.Ssta.Experiment.worst_sigma
    mc2.Ssta.Experiment.sample_seconds mc2.Ssta.Experiment.sta_seconds;

  let cmp =
    Ssta.Experiment.compare ~reference:mc1
      ~reference_setup_seconds:(Ssta.Algorithm1.setup_seconds a1)
      ~candidate:mc2 ~candidate_setup_seconds:0.0
  in
  Printf.printf "\nagreement: e_mu = %.3f%%, e_sigma = %.3f%% (noise floor ~%.1f%%)\n"
    cmp.Ssta.Experiment.e_mu_pct cmp.Ssta.Experiment.e_sigma_pct
    (100.0 /. sqrt (2.0 *. float_of_int samples));
  Printf.printf "per-output sigma error (Fig 6 metric): %.2f%%\n"
    cmp.Ssta.Experiment.sigma_err_avg_outputs_pct;
  Printf.printf "speedup (sampling + STA, KLE eigentime excluded): %.2fx\n"
    cmp.Ssta.Experiment.speedup;

  (* the block-based consumer of the KLE basis: one canonical-form pass
     (Chang-Sapatnekar-class SSTA) instead of N Monte Carlo passes *)
  let blk = Ssta.Block_ssta.run setup ~models:(Ssta.Algorithm2.models a2) in
  let be_mu, be_sigma = Ssta.Block_ssta.validate_against_mc blk ~reference:mc2 in
  Printf.printf
    "\nblock-based SSTA (single pass, %.1f ms): mu = %.1f ps, sigma = %.2f ps\n"
    (1000.0 *. blk.Ssta.Block_ssta.analysis_seconds)
    (Ssta.Block_ssta.mean blk) (Ssta.Block_ssta.sigma blk);
  Printf.printf "  vs KLE-MC: e_mu = %.3f%%, e_sigma = %.2f%%; 3-sigma corner %.1f ps\n"
    be_mu be_sigma
    (Ssta.Block_ssta.quantile blk 0.99865);

  (* also show the grid+PCA baseline the paper argues against *)
  let grid = Ssta.Grid_pca.prepare ~grid:8 ~r:25 process setup.Ssta.Experiment.locations in
  let mc3 =
    Ssta.Experiment.run_mc setup ~sampler:(Ssta.Grid_pca.sample_block grid) ~seed:13
      ~n:samples
  in
  let cmp3 =
    Ssta.Experiment.compare ~reference:mc1 ~reference_setup_seconds:0.0 ~candidate:mc3
      ~candidate_setup_seconds:0.0
  in
  Printf.printf
    "\ngrid-model baseline (8x8 grid + PCA, r = 25): e_sigma = %.3f%% \
     (explains %.1f%% of cell variance)\n"
    cmp3.Ssta.Experiment.e_sigma_pct
    (100.0 *. Ssta.Grid_pca.explained_variance_fraction grid)
