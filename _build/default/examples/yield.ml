(* Parametric timing yield: what fraction of manufactured dies meets a given
   clock period? The sign-off question statistical STA exists to answer.

   Compares three estimates on one circuit:
   - Monte Carlo with the KLE sampler (Algorithm 2)        [ground truth here]
   - the Gaussian closed form from single-pass block SSTA  [instant]
   - the deterministic corner mentality (nominal + 3-sigma guard band)

   Run with: dune exec examples/yield.exe [circuit] [samples] *)

let () =
  let circuit_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c1908" in
  let samples = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4000 in

  let netlist = Circuit.Generator.generate_paper circuit_name in
  let setup = Ssta.Experiment.setup_circuit netlist in
  let process = Ssta.Process.paper_default () in
  let a2 = Ssta.Algorithm2.prepare process setup.Ssta.Experiment.locations in

  (* Monte Carlo worst-delay distribution *)
  let rng = Prng.Rng.create ~seed:21 in
  let sampler = Ssta.Algorithm2.sample_block a2 in
  let delays = Array.make samples 0.0 in
  let n_total = Circuit.Netlist.size netlist in
  let l = Array.make n_total 0.0 and w = Array.make n_total 0.0 in
  let vt = Array.make n_total 0.0 and tox = Array.make n_total 0.0 in
  let n_logic = Array.length setup.Ssta.Experiment.logic_ids in
  let batch = 256 in
  let filled = ref 0 in
  while !filled < samples do
    let b = min batch (samples - !filled) in
    let blocks = sampler rng ~n:b in
    for i = 0 to b - 1 do
      for g = 0 to n_logic - 1 do
        let id = setup.Ssta.Experiment.logic_ids.(g) in
        l.(id) <- Linalg.Mat.get blocks.(0) i g;
        w.(id) <- Linalg.Mat.get blocks.(1) i g;
        vt.(id) <- Linalg.Mat.get blocks.(2) i g;
        tox.(id) <- Linalg.Mat.get blocks.(3) i g
      done;
      delays.(!filled + i) <-
        (Sta.Timing.run setup.Ssta.Experiment.sta ~l ~w ~vt ~tox).Sta.Timing.worst_delay
    done;
    filled := !filled + b
  done;
  let mc_yield t =
    let hits = Array.fold_left (fun acc d -> if d <= t then acc + 1 else acc) 0 delays in
    float_of_int hits /. float_of_int samples
  in

  (* block-SSTA Gaussian closed form *)
  let blk = Ssta.Block_ssta.run setup ~models:(Ssta.Algorithm2.models a2) in
  let gaussian_yield t =
    Specfun.Erf.normal_cdf ~mu:(Ssta.Block_ssta.mean blk)
      ~sigma:(Ssta.Block_ssta.sigma blk) t
  in

  let nominal =
    (Sta.Timing.run_nominal setup.Ssta.Experiment.sta).Sta.Timing.worst_delay
  in
  let mc = Stats.Summary.of_array delays in
  Printf.printf "%s: nominal %.1f ps; MC (%d samples) mu = %.1f, sigma = %.2f\n"
    circuit_name nominal samples mc.Stats.Summary.mean mc.Stats.Summary.std_dev;
  Printf.printf "block SSTA closed form: mu = %.1f, sigma = %.2f (%.1f ms, single pass)\n\n"
    (Ssta.Block_ssta.mean blk) (Ssta.Block_ssta.sigma blk)
    (1000.0 *. blk.Ssta.Block_ssta.analysis_seconds);

  Printf.printf "%12s %12s %14s\n" "clock (ps)" "MC yield" "Gaussian yield";
  let t_lo = mc.Stats.Summary.mean -. (3.0 *. mc.Stats.Summary.std_dev) in
  let t_hi = mc.Stats.Summary.mean +. (4.0 *. mc.Stats.Summary.std_dev) in
  Array.iter
    (fun t -> Printf.printf "%12.1f %12.4f %14.4f\n" t (mc_yield t) (gaussian_yield t))
    (Util.Arrayx.float_range ~start:t_lo ~stop:t_hi ~count:11);

  (* sign-off comparison: clock needed for 99.87% yield (3-sigma) *)
  let t_stat = Ssta.Block_ssta.quantile blk 0.9987 in
  let t_mc = Stats.Summary.quantile delays 0.9987 in
  Printf.printf "\nclock for 99.87%% yield: MC %.1f ps, block SSTA %.1f ps\n" t_mc t_stat;
  Printf.printf "statistical sign-off margin over nominal: %.1f ps (%.2f%%)\n"
    (t_stat -. nominal)
    (100.0 *. (t_stat -. nominal) /. nominal);
  (* a per-gate worst-case corner (every parameter at its slow 3-sigma value
     simultaneously) ignores both spatial averaging and correlation: *)
  let n = Circuit.Netlist.size netlist in
  let slow v = Array.make n v in
  let corner =
    (Sta.Timing.run setup.Ssta.Experiment.sta ~l:(slow 3.0) ~w:(slow (-3.0))
       ~vt:(slow 3.0) ~tox:(slow 3.0))
      .Sta.Timing.worst_delay
  in
  Printf.printf "deterministic all-slow 3-sigma corner: %.1f ps (%.2f%% over nominal)\n"
    corner
    (100.0 *. (corner -. nominal) /. nominal);
  Printf.printf "=> the corner over-margins by %.1f ps vs the statistical sign-off.\n"
    (corner -. t_stat)
