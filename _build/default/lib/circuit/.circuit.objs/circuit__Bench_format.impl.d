lib/circuit/bench_format.ml: Array Buffer Filename Gate Hashtbl List Netlist Printf String
