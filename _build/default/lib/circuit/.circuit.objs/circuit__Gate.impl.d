lib/circuit/gate.ml: Array Float
