lib/circuit/gate.mli:
