lib/circuit/generator.ml: Array Float Gate Hashtbl List Netlist Option Printf Prng String
