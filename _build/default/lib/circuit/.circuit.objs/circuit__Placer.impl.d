lib/circuit/placer.ml: Array Geometry Netlist Prng
