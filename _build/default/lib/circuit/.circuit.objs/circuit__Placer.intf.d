lib/circuit/placer.mli: Geometry Netlist
