lib/circuit/wireload.ml: Array Gate Geometry Netlist Placer
