lib/circuit/wireload.mli: Placer
