let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let is_blank s = String.trim s = ""

type raw =
  | Raw_input of string
  | Raw_output of string
  | Raw_gate of string * string * string list (* out, func, args *)

let parse_line lineno line =
  let line = String.trim (strip_comment line) in
  if is_blank line then Ok None
  else begin
    let fail fmt =
      Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
    in
    let parse_call s =
      (* FUNC(a, b, ...) *)
      match String.index_opt s '(' with
      | None -> None
      | Some i ->
          if s.[String.length s - 1] <> ')' then None
          else begin
            let func = String.trim (String.sub s 0 i) in
            let args_str = String.sub s (i + 1) (String.length s - i - 2) in
            let args =
              String.split_on_char ',' args_str
              |> List.map String.trim
              |> List.filter (fun a -> a <> "")
            in
            Some (String.uppercase_ascii func, args)
          end
    in
    match String.index_opt line '=' with
    | None -> (
        match parse_call line with
        | Some ("INPUT", [ n ]) -> Ok (Some (Raw_input n))
        | Some ("OUTPUT", [ n ]) -> Ok (Some (Raw_output n))
        | _ -> fail "expected INPUT(..), OUTPUT(..) or assignment")
    | Some eq -> (
        let out = String.trim (String.sub line 0 eq) in
        let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
        match parse_call rhs with
        | Some (func, args) when args <> [] -> Ok (Some (Raw_gate (out, func, args)))
        | _ -> fail "malformed gate definition %S" rhs)
  end

(* balanced tree decomposition of an associative n-ary function into 2-input
   cells; for NAND/NOR the tree is AND/OR internally with the inverting cell
   at the root *)
let rec tree_reduce ~combine = function
  | [] -> invalid_arg "tree_reduce: empty"
  | [ x ] -> x
  | args ->
      let n = List.length args in
      let rec split i acc = function
        | rest when i = n / 2 -> (List.rev acc, rest)
        | x :: rest -> split (i + 1) (x :: acc) rest
        | [] -> (List.rev acc, [])
      in
      let left, right = split 0 [] args in
      combine (tree_reduce ~combine left) (tree_reduce ~combine right)

let parse ~name contents =
  let lines = String.split_on_char '\n' contents in
  let raws = ref [] in
  let error = ref None in
  List.iteri
    (fun i line ->
      if !error = None then begin
        match parse_line (i + 1) line with
        | Ok None -> ()
        | Ok (Some r) -> raws := r :: !raws
        | Error e -> error := Some e
      end)
    lines;
  match !error with
  | Some e -> Error e
  | None -> (
      let raws = List.rev !raws in
      let gates = ref [] in
      (* reversed *)
      let n_gates = ref 0 in
      let by_name = Hashtbl.create 64 in
      let fresh_id () =
        let id = !n_gates in
        incr n_gates;
        id
      in
      let add_gate name kind fanins =
        let id = fresh_id () in
        gates := { Netlist.id; name; kind; fanins } :: !gates;
        id
      in
      (* first pass: declare inputs and reserve names for defined gates so
         that forward references resolve *)
      List.iter
        (function
          | Raw_input n -> Hashtbl.replace by_name n (`Input n)
          | Raw_output _ -> ()
          | Raw_gate (out, func, args) -> Hashtbl.replace by_name out (`Gate (out, func, args)))
        raws;
      let resolving = Hashtbl.create 16 in
      let exception Parse_error of string in
      let rec resolve n =
        match Hashtbl.find_opt by_name n with
        | None -> raise (Parse_error (Printf.sprintf "undefined signal %S" n))
        | Some (`Done id) -> id
        | Some (`Input nm) ->
            let id = add_gate nm Gate.Input [||] in
            Hashtbl.replace by_name n (`Done id);
            id
        | Some (`Gate (out, func, args)) ->
            if Hashtbl.mem resolving n then
              raise (Parse_error (Printf.sprintf "combinational loop through %S" n))
            else begin
              Hashtbl.replace resolving n ();
              let arg_ids = List.map resolve args in
              Hashtbl.remove resolving n;
              let unary kind a = add_gate out kind [| a |] in
              let binary_tree kind ids =
                let combine a b =
                  add_gate (Printf.sprintf "%s_t%d" out !n_gates) kind [| a; b |]
                in
                match ids with
                | [ a; b ] -> add_gate out kind [| a; b |]
                | _ ->
                    (* reduce all but the final combine anonymously, then name
                       the root *)
                    let rec pair = function
                      | [ a; b ] -> add_gate out kind [| a; b |]
                      | [ a ] -> a |> fun a -> add_gate out Gate.Buf [| a |]
                      | ids ->
                          let rec halves i acc = function
                            | rest when i = List.length ids / 2 -> (List.rev acc, rest)
                            | x :: rest -> halves (i + 1) (x :: acc) rest
                            | [] -> (List.rev acc, [])
                          in
                          let l, r = halves 0 [] ids in
                          add_gate out kind [| tree_reduce ~combine l; tree_reduce ~combine r |]
                          |> fun id -> ignore (pair []); id
                    in
                    ignore pair;
                    (* simpler: reduce with combine, the last combine gets an
                       internal name; add a buffer carrying the output name *)
                    let root = tree_reduce ~combine ids in
                    ignore (Hashtbl.hash root);
                    root
              in
              let inverting_tree inner_kind ids =
                match ids with
                | [ a ] -> unary Gate.Inv a
                | [ a; b ] ->
                    add_gate out
                      (if inner_kind = Gate.And2 then Gate.Nand2 else Gate.Nor2)
                      [| a; b |]
                | ids ->
                    let combine a b =
                      add_gate (Printf.sprintf "%s_t%d" out !n_gates) inner_kind [| a; b |]
                    in
                    let rec split_last acc = function
                      | [ x ] -> (List.rev acc, x)
                      | x :: rest -> split_last (x :: acc) rest
                      | [] -> assert false
                    in
                    let init, last = split_last [] ids in
                    let left = tree_reduce ~combine init in
                    add_gate out
                      (if inner_kind = Gate.And2 then Gate.Nand2 else Gate.Nor2)
                      [| left; last |]
              in
              let id =
                match (func, arg_ids) with
                | "NOT", [ a ] -> unary Gate.Inv a
                | ("BUF" | "BUFF"), [ a ] -> unary Gate.Buf a
                | "DFF", [ a ] -> unary Gate.Dff a
                | "AND", ids -> binary_tree Gate.And2 ids
                | "OR", ids -> binary_tree Gate.Or2 ids
                | "XOR", ids -> binary_tree Gate.Xor2 ids
                | "XNOR", ids -> binary_tree Gate.Xnor2 ids
                | "NAND", ids -> inverting_tree Gate.And2 ids
                | "NOR", ids -> inverting_tree Gate.Or2 ids
                | f, ids ->
                    raise
                      (Parse_error
                         (Printf.sprintf "unsupported function %s/%d" f (List.length ids)))
              in
              Hashtbl.replace by_name n (`Done id);
              id
            end
      in
      try
        (* resolve every defined signal and every declared output *)
        List.iter
          (function
            | Raw_input n -> ignore (resolve n)
            | Raw_gate (out, _, _) -> ignore (resolve out)
            | Raw_output _ -> ())
          raws;
        let outputs =
          List.filter_map
            (function Raw_output n -> Some (resolve n) | _ -> None)
            raws
        in
        let gates = Array.of_list (List.rev !gates) in
        Ok (Netlist.make ~name ~gates ~outputs:(Array.of_list outputs))
      with
      | Parse_error e -> Error e
      | Invalid_argument e -> Error e)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  parse ~name contents

let func_name = function
  | Gate.Inv -> "NOT"
  | Gate.Buf -> "BUFF"
  | Gate.Nand2 -> "NAND"
  | Gate.Nor2 -> "NOR"
  | Gate.And2 -> "AND"
  | Gate.Or2 -> "OR"
  | Gate.Xor2 -> "XOR"
  | Gate.Xnor2 -> "XNOR"
  | Gate.Dff -> "DFF"
  | Gate.Input -> invalid_arg "Bench_format: INPUT is not a function"

let print (t : Netlist.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" t.name);
  Array.iter
    (fun (g : Netlist.gate) ->
      if g.kind = Gate.Input then
        Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" g.name))
    t.gates;
  Array.iter
    (fun o -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" t.gates.(o).name))
    t.outputs;
  Array.iter
    (fun (g : Netlist.gate) ->
      if g.kind <> Gate.Input then begin
        let args =
          g.fanins |> Array.to_list
          |> List.map (fun f -> t.gates.(f).name)
          |> String.concat ", "
        in
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" g.name (func_name g.kind) args)
      end)
    t.gates;
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  output_string oc (print t);
  close_out oc
