(** ISCAS-89 [.bench] netlist format: parser and printer.

    Reading decomposes gates with more than two inputs into balanced trees
    of 2-input cells (the internal gate library is 2-input), and maps
    [NOT]→[Inv], [BUFF]→[Buf], [DFF]→[Dff]. Writing emits one line per gate,
    so a written file parses back to an isomorphic netlist. *)

val parse : name:string -> string -> (Netlist.t, string) result
(** [parse ~name contents] parses [.bench] text. Errors mention the
    offending line. *)

val parse_file : string -> (Netlist.t, string) result
(** Parse from a path (netlist name = basename without extension). *)

val print : Netlist.t -> string
(** Render to [.bench] text. *)

val write_file : string -> Netlist.t -> unit
