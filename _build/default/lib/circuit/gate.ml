type kind =
  | Input
  | Inv
  | Buf
  | Nand2
  | Nor2
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Dff

let all_kinds = [ Input; Inv; Buf; Nand2; Nor2; And2; Or2; Xor2; Xnor2; Dff ]

let kind_name = function
  | Input -> "INPUT"
  | Inv -> "INVX1"
  | Buf -> "BUFX2"
  | Nand2 -> "NAND2X1"
  | Nor2 -> "NOR2X1"
  | And2 -> "AND2X1"
  | Or2 -> "OR2X1"
  | Xor2 -> "XOR2X1"
  | Xnor2 -> "XNOR2X1"
  | Dff -> "DFFX1"

let arity = function
  | Input -> 0
  | Inv | Buf | Dff -> 1
  | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 -> 2

let num_parameters = 4

let parameter_names = [| "L"; "W"; "Vt"; "tox" |]

type timing = {
  d0 : float;
  k_slew : float;
  r_drive : float;
  c_in : float;
  c_par : float;
  beta : float array;
  gamma : float;
  w : float array;
  s0 : float;
  k_slew_out : float;
  beta_slew : float array;
}

(* 90 nm-plausible characterization. The linear sensitivities follow the
   physics sign conventions: longer channel (L+) and higher threshold (Vt+)
   slow the gate, wider devices (W+) speed it up, thicker oxide (tox+) slows
   it slightly. Magnitudes are a few percent of intrinsic delay per sigma,
   matching the within-die budgets typically quoted at 90 nm. *)
let characterize ~d0 ~r_drive ~c_in ~s0 =
  {
    d0;
    k_slew = 0.22;
    r_drive;
    c_in;
    c_par = 0.8 *. c_in;
    beta = [| 0.11 *. d0; -0.055 *. d0; 0.085 *. d0; 0.035 *. d0 |];
    gamma = 0.02 *. d0;
    w = [| 0.70; -0.25; 0.60; 0.30 |];
    s0;
    k_slew_out = 0.30;
    beta_slew = [| 0.06 *. s0; -0.03 *. s0; 0.045 *. s0; 0.02 *. s0 |];
  }

let input_timing =
  (* ideal driver with a realistic output resistance so that wire loads at
     primary inputs still matter *)
  {
    (characterize ~d0:0.0 ~r_drive:1.0 ~c_in:0.0 ~s0:40.0) with
    k_slew = 0.0;
    beta = [| 0.0; 0.0; 0.0; 0.0 |];
    gamma = 0.0;
    beta_slew = [| 0.0; 0.0; 0.0; 0.0 |];
  }

let timing = function
  | Input -> input_timing
  | Inv -> characterize ~d0:14.0 ~r_drive:2.4 ~c_in:1.8 ~s0:22.0
  | Buf -> characterize ~d0:26.0 ~r_drive:1.4 ~c_in:2.0 ~s0:20.0
  | Nand2 -> characterize ~d0:20.0 ~r_drive:2.8 ~c_in:2.2 ~s0:26.0
  | Nor2 -> characterize ~d0:24.0 ~r_drive:3.4 ~c_in:2.2 ~s0:30.0
  | And2 -> characterize ~d0:32.0 ~r_drive:1.8 ~c_in:2.2 ~s0:24.0
  | Or2 -> characterize ~d0:36.0 ~r_drive:1.8 ~c_in:2.2 ~s0:26.0
  | Xor2 -> characterize ~d0:44.0 ~r_drive:2.6 ~c_in:3.6 ~s0:32.0
  | Xnor2 -> characterize ~d0:46.0 ~r_drive:2.6 ~c_in:3.6 ~s0:32.0
  | Dff -> characterize ~d0:60.0 ~r_drive:2.0 ~c_in:2.6 ~s0:28.0

let check_params params =
  if Array.length params <> num_parameters then
    invalid_arg "Gate: params must have length 4 (L, W, Vt, tox)"

let rank_one_quadratic t ~params =
  check_params params;
  let lin = ref 0.0 and proj = ref 0.0 in
  for i = 0 to num_parameters - 1 do
    lin := !lin +. (t.beta.(i) *. params.(i));
    proj := !proj +. (t.w.(i) *. params.(i))
  done;
  !lin +. (t.gamma *. !proj *. !proj)

let delay kind ~slew_in ~c_load ~params =
  let t = timing kind in
  let nominal = t.d0 +. (t.k_slew *. slew_in) +. (t.r_drive *. c_load) in
  let stat = rank_one_quadratic t ~params in
  Float.max 0.1 (nominal +. stat)

let output_slew kind ~slew_in ~c_load ~params =
  check_params params;
  let t = timing kind in
  let nominal = t.s0 +. (t.k_slew_out *. slew_in) +. (0.35 *. t.r_drive *. c_load) in
  let lin = ref 0.0 in
  for i = 0 to num_parameters - 1 do
    lin := !lin +. (t.beta_slew.(i) *. params.(i))
  done;
  Float.max 1.0 (nominal +. !lin)

let clk_to_q ~params =
  let t = timing Dff in
  Float.max 0.1 (t.d0 +. rank_one_quadratic t ~params)
