(** Gate library: cell kinds and their timing/electrical characterization.

    The characterization stands in for the paper's 90 nm Cadence Generic PDK
    library. Delay and output slew use the rank-one quadratic model of
    [Li et al., ICCAD'05] (paper ref. [22]) in the four statistical
    parameters (L, W, Vt, tox), each normalized to zero mean and unit
    sigma:

    [delay = d0 + k_slew * s_in + r_drive * c_load + β·p + γ (w·p)²]

    Units: time in ps, capacitance in fF, resistance in kΩ (so kΩ·fF = ps). *)

type kind =
  | Input  (** primary-input pseudo gate (no fanins) *)
  | Inv
  | Buf
  | Nand2
  | Nor2
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Dff  (** sequential element: D fanin, Q output *)

val all_kinds : kind list

val kind_name : kind -> string
(** Library cell name (e.g. "NAND2X1"). *)

val arity : kind -> int
(** Number of fanins (0 for [Input], 1 for [Inv]/[Buf]/[Dff], 2 otherwise). *)

val num_parameters : int
(** Number of statistical device parameters (4: L, W, Vt, tox). *)

val parameter_names : string array

type timing = {
  d0 : float; (* intrinsic delay, ps *)
  k_slew : float; (* delay sensitivity to input slew *)
  r_drive : float; (* output drive resistance, kΩ *)
  c_in : float; (* input pin capacitance, fF *)
  c_par : float; (* output parasitic capacitance, fF *)
  beta : float array; (* linear delay sensitivities to (L, W, Vt, tox), ps/σ *)
  gamma : float; (* rank-one quadratic weight, ps *)
  w : float array; (* rank-one direction (unit-ish vector over parameters) *)
  s0 : float; (* intrinsic output slew, ps *)
  k_slew_out : float; (* output slew sensitivity to input slew *)
  beta_slew : float array; (* linear slew sensitivities, ps/σ *)
}

val timing : kind -> timing
(** Characterization record for each kind. [Input] has a zero-delay driver
    model with a finite drive resistance. *)

val delay : kind -> slew_in:float -> c_load:float -> params:float array -> float
(** Pin-to-output delay under the rank-one quadratic model. [params] must
    have length {!num_parameters} (normalized sigma units). Result is clamped
    to be positive. *)

val output_slew : kind -> slew_in:float -> c_load:float -> params:float array -> float
(** Gate output slew (before wire degradation), clamped positive. *)

val clk_to_q : params:float array -> float
(** DFF clock-to-output delay (the launch time of sequential sources). *)
