(** Synthetic ISCAS-like benchmark generator.

    The paper evaluates on placed ISCAS85/89 netlists; those netlists are
    not redistributable here, so this generator produces random
    combinational/sequential DAGs at the exact gate counts of the paper's
    Table 1. Connectivity is locality-biased (each gate draws most fanins
    from recently created gates), which gives the recursive-bisection placer
    realistic clustering to work with. Generation is deterministic in the
    seed. *)

type spec = {
  name : string;
  n_gates : int; (* logic gates, excluding primary-input pseudo gates *)
  n_inputs : int;
  n_outputs : int;
  dff_fraction : float; (* 0 for combinational c-circuits, ~0.07 for sequential s-circuits *)
  seed : int;
}

val generate : spec -> Netlist.t
(** Raises [Invalid_argument] on non-positive sizes or when
    [n_outputs > n_gates]. *)

val paper_suite : (string * int) list
(** The 14 circuits of Table 1 with their paper gate counts:
    c880 (383) … s38417 (22179). *)

val paper_spec : string -> spec
(** Spec reproducing the named Table 1 circuit (sizes, sequential flag from
    the c/s prefix, fixed per-circuit seed). Raises [Not_found] for unknown
    names. *)

val generate_paper : string -> Netlist.t
(** [generate (paper_spec name)], with the generated gate count guaranteed
    to equal the Table 1 count. *)
