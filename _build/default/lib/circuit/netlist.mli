(** Gate-level netlists.

    A netlist is an array of gates; gate [i] drives net [i] (single-output
    cells). [Dff] gates are sequential: their output is a timing start point
    and their data input a timing end point, so combinational topological
    ordering treats them as sources. *)

type gate = {
  id : int;
  name : string;
  kind : Gate.kind;
  fanins : int array; (* driving gate ids, length = Gate.arity kind *)
}

type t = {
  name : string;
  gates : gate array; (* gates.(i).id = i *)
  outputs : int array; (* primary-output gate ids *)
}

val make : name:string -> gates:gate array -> outputs:int array -> t
(** Validates and builds the netlist. Raises [Invalid_argument] when ids are
    inconsistent, arities are wrong, fanins dangle, an output id is invalid,
    or the combinational core contains a cycle. *)

val size : t -> int
(** Total number of gates, including [Input] pseudo-gates. *)

val logic_gate_count : t -> int
(** Number of non-[Input] gates — the [N_g] of the paper's Table 1. *)

val inputs : t -> int array
(** Ids of [Input] pseudo-gates. *)

val dffs : t -> int array

val fanouts : t -> int array array
(** [fanouts t].(i) lists the gates that gate [i] drives (data pins only). *)

val topological_order : t -> int array
(** Gate ids in a valid combinational evaluation order ([Input]s and [Dff]s
    first as sources; every other gate after all its fanins). *)

val endpoints : t -> int array
(** Timing end points: primary outputs and [Dff] data-input drivers are
    observed; returns the union of [outputs] and fanin gates of every DFF. *)

val levels : t -> int array
(** Combinational depth of each gate (sources at level 0). *)

val max_level : t -> int

val validate_dag : gates:gate array -> (unit, string) result
(** Standalone cycle/arity check, exposed for the generator's tests. *)
