(** Placement onto the normalized die, standing in for the Capo placer [23]
    the paper uses.

    Two classic stages: (1) {e quadratic placement} — primary inputs are
    pinned to pad sites around the die boundary and every movable gate
    relaxes to the barycenter of its graph neighbors (Gauss-Seidel on the
    quadratic-wirelength objective); (2) {e top-down legalization} — the
    analytic positions are spread to uniform density by recursive median
    bisection of the die (Capo-style), preserving relative geometry. The
    result clusters connected logic spatially, which is exactly the property
    the spatial-correlation experiments need. *)

type placement = {
  netlist : Netlist.t;
  locations : Geometry.Point.t array; (* per gate id, inside the die *)
  die : Geometry.Rect.t;
}

val place : ?die:Geometry.Rect.t -> ?seed:int -> Netlist.t -> placement
(** [place netlist] places every gate (including [Input] pseudo-gates, which
    model pad locations) inside [die] (default {!Geometry.Rect.unit_die}).
    Deterministic for a given [seed] (default 1). *)

val hpwl : placement -> int -> float
(** [hpwl p i] is the half-perimeter wire length of the net driven by gate
    [i] (bounding box of the driver and its fanout pins). 0 for unconnected
    outputs. *)

val hpwl_all : placement -> float array
(** {!hpwl} for every net at once (shares the fanout computation). *)

val total_hpwl : placement -> float
(** Sum of {!hpwl} over all nets — the placer's quality objective. *)

val random_placement : ?die:Geometry.Rect.t -> seed:int -> Netlist.t -> placement
(** Uniform-random placement baseline (for placer-quality comparisons). *)
