type net_load = {
  r_wire : float;
  c_wire : float;
  c_pins : float;
}

type t = {
  placement : Placer.placement;
  loads : net_load array;
  fanouts : int array array;
}

(* 90 nm global-ish metal: ~0.35 kΩ/mm, ~180 fF/mm are typical ballpark
   figures for minimum-width intermediate layers *)
let r_per_mm = 0.35
let c_per_mm = 180.0

let build ?(die_size_mm = 1.0) (placement : Placer.placement) =
  let netlist = placement.Placer.netlist in
  let fanouts = Netlist.fanouts netlist in
  let die_w = Geometry.Rect.width placement.Placer.die in
  let mm_per_unit = die_size_mm /. die_w in
  let hpwls = Placer.hpwl_all placement in
  let loads =
    Array.init (Netlist.size netlist) (fun i ->
        let len_mm = hpwls.(i) *. mm_per_unit in
        let c_pins =
          Array.fold_left
            (fun acc s -> acc +. (Gate.timing netlist.gates.(s).kind).Gate.c_in)
            0.0 fanouts.(i)
        in
        { r_wire = r_per_mm *. len_mm; c_wire = c_per_mm *. len_mm; c_pins })
  in
  { placement; loads; fanouts }

let c_load t i =
  let l = t.loads.(i) in
  l.c_wire +. l.c_pins
