(** Half-perimeter wire-load model (the paper uses HPWL loads on Capo
    placements).

    Each net's wire is modeled from its HPWL at 90 nm-plausible per-length
    resistance/capacitance. The die is normalized to [[-1,1]²]; [die_size_mm]
    sets the physical scale. Units: kΩ, fF, ps. *)

type net_load = {
  r_wire : float; (* total wire resistance, kΩ *)
  c_wire : float; (* total wire capacitance, fF *)
  c_pins : float; (* sum of sink input-pin capacitances, fF *)
}

type t = {
  placement : Placer.placement;
  loads : net_load array; (* indexed by driving gate id *)
  fanouts : int array array;
}

val build : ?die_size_mm:float -> Placer.placement -> t
(** [build placement] computes per-net loads ([die_size_mm] defaults to
    1 mm — a small 90 nm test die). *)

val c_load : t -> int -> float
(** Total load on the net driven by gate [i]: wire + sink pins (fF). *)
