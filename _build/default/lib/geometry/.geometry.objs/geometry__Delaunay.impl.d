lib/geometry/delaunay.ml: Array Float Hashtbl List Option Point Queue Rect
