lib/geometry/delaunay.mli: Point Rect
