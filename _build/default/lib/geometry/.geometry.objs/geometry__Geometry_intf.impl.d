lib/geometry/geometry_intf.ml: Mesh
