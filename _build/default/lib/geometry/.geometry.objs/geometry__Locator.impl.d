lib/geometry/locator.ml: Array Float List Mesh Point Rect Triangle
