lib/geometry/locator.mli: Mesh Point
