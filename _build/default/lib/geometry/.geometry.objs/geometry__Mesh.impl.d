lib/geometry/mesh.ml: Array Float Hashtbl List Option Point Printf Rect Triangle
