lib/geometry/mesh.mli: Point Rect Triangle
