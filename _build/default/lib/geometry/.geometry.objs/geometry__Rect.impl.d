lib/geometry/rect.ml: Array Float Point
