lib/geometry/rect.mli: Point
