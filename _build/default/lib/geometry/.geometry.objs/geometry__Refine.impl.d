lib/geometry/refine.ml: Array Delaunay Float Geometry_intf Hashtbl List Mesh Point Rect Triangle
