lib/geometry/refine.mli: Geometry_intf Rect
