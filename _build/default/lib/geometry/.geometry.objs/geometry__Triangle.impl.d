lib/geometry/triangle.ml: Float Point
