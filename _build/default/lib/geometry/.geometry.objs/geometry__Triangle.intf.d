lib/geometry/triangle.mli: Point
