(* Bowyer-Watson with a super-triangle and a {e connected-cavity} insertion:
   the cavity of a new point is grown by breadth-first search over
   edge-adjacent triangles starting from the triangle containing the point,
   rather than by a global circumcircle scan. Under floating point the global
   scan can pick up spurious far-away "bad" triangles and corrupt the
   structure (the cavity must be connected and star-shaped); the BFS variant
   keeps the cavity connected by construction.

   Point indices 0..2 are the internal super-triangle vertices; public
   indices are offset by 3. Triangles are kept counter-clockwise so the
   incircle determinant has a fixed sign convention. *)

type tri = { ia : int; ib : int; ic : int }

type t = {
  rect : Rect.t;
  mutable pts : Point.t array; (* includes the 3 super vertices *)
  mutable n : int;
  mutable tris : tri list;
}

let super_vertices rect =
  let cx = (Rect.center rect).x and cy = (Rect.center rect).y in
  let m = 20.0 *. Float.max (Rect.width rect) (Rect.height rect) in
  [|
    Point.make (cx -. (2.0 *. m)) (cy -. m);
    Point.make (cx +. (2.0 *. m)) (cy -. m);
    Point.make cx (cy +. (2.0 *. m));
  |]

let create rect =
  let sv = super_vertices rect in
  let pts = Array.make 64 sv.(0) in
  pts.(0) <- sv.(0);
  pts.(1) <- sv.(1);
  pts.(2) <- sv.(2);
  (* super triangle must be CCW *)
  let t0 =
    if Point.cross sv.(0) sv.(1) sv.(2) > 0.0 then { ia = 0; ib = 1; ic = 2 }
    else { ia = 0; ib = 2; ic = 1 }
  in
  { rect; pts; n = 3; tris = [ t0 ] }

let grow t =
  if t.n = Array.length t.pts then begin
    let pts = Array.make (2 * t.n) t.pts.(0) in
    Array.blit t.pts 0 pts 0 t.n;
    t.pts <- pts
  end

(* incircle determinant: positive when d is strictly inside the circumcircle
   of the CCW triangle (a, b, c); [tolerant] also accepts near-cocircular *)
let incircle_det (a : Point.t) (b : Point.t) (c : Point.t) (d : Point.t) =
  let ax = a.x -. d.x and ay = a.y -. d.y in
  let bx = b.x -. d.x and by = b.y -. d.y in
  let cx = c.x -. d.x and cy = c.y -. d.y in
  let a2 = (ax *. ax) +. (ay *. ay) in
  let b2 = (bx *. bx) +. (by *. by) in
  let c2 = (cx *. cx) +. (cy *. cy) in
  let det =
    (ax *. ((by *. c2) -. (cy *. b2)))
    -. (ay *. ((bx *. c2) -. (cx *. b2)))
    +. (a2 *. ((bx *. cy) -. (cx *. by)))
  in
  (* scale of the determinant's terms, for a relative tolerance *)
  let scale = (a2 +. b2 +. c2) ** 2.0 in
  (det, scale)

let in_circumcircle ?(slack = 0.0) t tri (p : Point.t) =
  let det, scale = incircle_det t.pts.(tri.ia) t.pts.(tri.ib) t.pts.(tri.ic) p in
  det > -.slack *. scale

(* barycentric containment, tolerant of boundary points *)
let tri_contains t tri (p : Point.t) =
  let a = t.pts.(tri.ia) and b = t.pts.(tri.ib) and c = t.pts.(tri.ic) in
  let denom = Point.cross a b c in
  if Float.abs denom < 1e-300 then false
  else begin
    let tol = -1e-12 *. Float.abs denom in
    Point.cross a b p >= tol && Point.cross b c p >= tol && Point.cross c a p >= tol
  end

let find_existing t p =
  let rec loop i =
    if i >= t.n then None
    else if Point.equal ~tol:1e-12 t.pts.(i) p then Some i
    else loop (i + 1)
  in
  loop 3

let edge_key u v = if u < v then (u, v) else (v, u)

let insert t p =
  if not (Rect.contains ~tol:1e-9 t.rect p) then
    invalid_arg "Delaunay.insert: point outside bounding rectangle";
  match find_existing t p with
  | Some i -> i - 3
  | None ->
      grow t;
      let pi = t.n in
      t.pts.(pi) <- p;
      t.n <- t.n + 1;
      let tris = Array.of_list t.tris in
      let ntri = Array.length tris in
      (* edge -> adjacent triangle indices *)
      let edge_map : ((int * int), int list) Hashtbl.t = Hashtbl.create (3 * ntri) in
      Array.iteri
        (fun i { ia; ib; ic } ->
          List.iter
            (fun key ->
              Hashtbl.replace edge_map key
                (i :: Option.value ~default:[] (Hashtbl.find_opt edge_map key)))
            [ edge_key ia ib; edge_key ib ic; edge_key ic ia ])
        tris;
      (* seed: the triangle containing p *)
      let seed =
        let rec scan i =
          if i >= ntri then None
          else if tri_contains t tris.(i) p then Some i
          else scan (i + 1)
        in
        scan 0
      in
      let seed =
        match seed with
        | Some s -> s
        | None ->
            (* numerical corner case: fall back to any triangle whose
               circumcircle contains p *)
            let rec scan i =
              if i >= ntri then
                invalid_arg "Delaunay.insert: point not inside any triangle"
              else if in_circumcircle ~slack:1e-12 t tris.(i) p then i
              else scan (i + 1)
            in
            scan 0
      in
      (* grow the cavity by BFS over edge-adjacency *)
      let in_cavity = Array.make ntri false in
      in_cavity.(seed) <- true;
      let queue = Queue.create () in
      Queue.add seed queue;
      while not (Queue.is_empty queue) do
        let i = Queue.pop queue in
        let { ia; ib; ic } = tris.(i) in
        List.iter
          (fun key ->
            match Hashtbl.find_opt edge_map key with
            | None -> ()
            | Some adjacent ->
                List.iter
                  (fun j ->
                    if
                      (not in_cavity.(j))
                      && in_circumcircle ~slack:1e-12 t tris.(j) p
                    then begin
                      in_cavity.(j) <- true;
                      Queue.add j queue
                    end)
                  adjacent)
          [ edge_key ia ib; edge_key ib ic; edge_key ic ia ]
      done;
      (* boundary edges: cavity-triangle edges whose other side is outside
         the cavity; keep the CCW orientation of the cavity triangle *)
      let fresh = ref [] in
      let add_boundary_edge u v =
        (* (u, v) was CCW in its cavity triangle, so (u, v, pi) is CCW when p
           is inside the cavity *)
        let tri =
          if Point.cross t.pts.(u) t.pts.(v) p > 0.0 then { ia = u; ib = v; ic = pi }
          else { ia = v; ib = u; ic = pi }
        in
        fresh := tri :: !fresh
      in
      Array.iteri
        (fun i { ia; ib; ic } ->
          if in_cavity.(i) then
            List.iter
              (fun (u, v) ->
                let neighbors =
                  Option.value ~default:[] (Hashtbl.find_opt edge_map (edge_key u v))
                in
                (* boundary iff no {e other} cavity triangle shares the edge
                   (covers hull edges, whose only adjacency is [i] itself) *)
                let boundary =
                  List.for_all (fun j -> j = i || not in_cavity.(j)) neighbors
                in
                if boundary then add_boundary_edge u v)
              [ (ia, ib); (ib, ic); (ic, ia) ])
        tris;
      let survivors = ref [] in
      Array.iteri (fun i tri -> if not in_cavity.(i) then survivors := tri :: !survivors) tris;
      t.tris <- List.rev_append !fresh !survivors;
      pi - 3

let point_count t = t.n - 3

let points t = Array.sub t.pts 3 (t.n - 3)

let triangles t =
  let real = List.filter (fun { ia; ib; ic } -> ia >= 3 && ib >= 3 && ic >= 3) t.tris in
  Array.of_list (List.map (fun { ia; ib; ic } -> (ia - 3, ib - 3, ic - 3)) real)

let triangulate rect pts =
  let t = create rect in
  Array.iter (fun p -> ignore (insert t p)) pts;
  triangles t
