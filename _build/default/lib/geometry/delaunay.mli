(** Incremental Delaunay triangulation (Bowyer-Watson).

    Together with {!Refine} this replaces Shewchuk's Triangle mesher [24]:
    the KLE Galerkin method only needs a conforming triangulation of the die
    with controllable element count and quality. *)

type t
(** A mutable triangulation of points inside a bounding rectangle. *)

val create : Rect.t -> t
(** [create rect] starts an empty triangulation able to hold points inside
    [rect] (a super-triangle well outside [rect] is managed internally). *)

val insert : t -> Point.t -> int
(** [insert t p] adds point [p] and restores the Delaunay property,
    returning [p]'s index. If [p] coincides with an existing point (within
    1e-12), that point's index is returned and nothing is inserted. Raises
    [Invalid_argument] when [p] lies outside the bounding rectangle. *)

val point_count : t -> int

val points : t -> Point.t array
(** Inserted points, in insertion order. *)

val triangles : t -> (int * int * int) array
(** Current triangles as counter-clockwise index triples into {!points}
    (triangles involving the internal super-triangle are excluded). *)

val triangulate : Rect.t -> Point.t array -> (int * int * int) array
(** One-shot convenience: triangulate the given points. *)
