(** Shared result types for the meshing pipeline. *)

type mesh_result = {
  mesh : Mesh.t;
  satisfied : bool;
      (** false when the insertion budget ran out before all quality
          constraints were met *)
  inserted_points : int;
}
