type t = {
  mesh : Mesh.t;
  nx : int;
  ny : int;
  cells : int list array; (* triangle indices whose bbox overlaps each cell *)
}

let cell_of t (p : Point.t) =
  let d = t.mesh.Mesh.domain in
  let fx = (p.x -. d.Rect.xmin) /. Rect.width d in
  let fy = (p.y -. d.Rect.ymin) /. Rect.height d in
  let ix = min (t.nx - 1) (max 0 (int_of_float (fx *. float_of_int t.nx))) in
  let iy = min (t.ny - 1) (max 0 (int_of_float (fy *. float_of_int t.ny))) in
  (ix, iy)

let create ?cells_per_axis mesh =
  let n = Mesh.size mesh in
  let axis =
    match cells_per_axis with
    | Some c when c > 0 -> c
    | Some _ -> invalid_arg "Locator.create: cells_per_axis must be positive"
    | None -> max 1 (int_of_float (sqrt (float_of_int n)))
  in
  let t = { mesh; nx = axis; ny = axis; cells = Array.make (axis * axis) [] } in
  let d = mesh.Mesh.domain in
  Array.iteri
    (fun ti (i, j, k) ->
      let pa = mesh.Mesh.points.(i)
      and pb = mesh.Mesh.points.(j)
      and pc = mesh.Mesh.points.(k) in
      let xmin = Float.min pa.x (Float.min pb.x pc.x) in
      let xmax = Float.max pa.x (Float.max pb.x pc.x) in
      let ymin = Float.min pa.y (Float.min pb.y pc.y) in
      let ymax = Float.max pa.y (Float.max pb.y pc.y) in
      let ix0, iy0 = cell_of t (Point.make xmin ymin) in
      let ix1, iy1 = cell_of t (Point.make xmax ymax) in
      for iy = iy0 to iy1 do
        for ix = ix0 to ix1 do
          let c = (iy * t.nx) + ix in
          t.cells.(c) <- ti :: t.cells.(c)
        done
      done;
      ignore d)
    mesh.Mesh.triangles;
  t

let find t p =
  if not (Rect.contains ~tol:1e-9 t.mesh.Mesh.domain p) then None
  else begin
    let ix, iy = cell_of t p in
    let candidates = t.cells.((iy * t.nx) + ix) in
    let hit =
      List.find_opt (fun ti -> Triangle.contains (Mesh.triangle t.mesh ti) p) candidates
    in
    match hit with
    | Some ti -> Some ti
    | None ->
        (* numerical edge case near cell borders: brute-force fallback *)
        let n = Mesh.size t.mesh in
        let rec scan i =
          if i >= n then None
          else if Triangle.contains ~tol:1e-9 (Mesh.triangle t.mesh i) p then Some i
          else scan (i + 1)
        in
        scan 0
  end

let find_exn t p = match find t p with Some i -> i | None -> raise Not_found

let find_nearest t p =
  let clamped = Rect.clamp t.mesh.Mesh.domain p in
  match find t clamped with
  | Some i -> i
  | None ->
      (* fall back to the triangle with the nearest centroid *)
      let best = ref 0 and best_d = ref infinity in
      Array.iteri
        (fun i c ->
          let d = Point.dist2 clamped c in
          if d < !best_d then begin
            best := i;
            best_d := d
          end)
        t.mesh.Mesh.centroids;
      !best
