(** Point-to-triangle lookup over a mesh via a uniform spatial grid — the
    [IndexOfContainingTriangle] primitive of the paper's Algorithm 2. *)

type t

val create : ?cells_per_axis:int -> Mesh.t -> t
(** [create mesh] indexes the mesh triangles. The default grid resolution
    scales with [sqrt (Mesh.size mesh)]. *)

val find : t -> Point.t -> int option
(** [find t p] is the index of a triangle containing [p] (points exactly on
    shared edges may match either neighbor), or [None] when [p] lies outside
    the mesh domain. *)

val find_exn : t -> Point.t -> int
(** Like {!find} but raises [Not_found]. *)

val find_nearest : t -> Point.t -> int
(** Like {!find}, but clamping [p] into the domain first, so that every query
    returns a triangle. Useful for gate locations placed exactly on the die
    boundary. *)
