type t = {
  domain : Rect.t;
  points : Point.t array;
  triangles : (int * int * int) array;
  areas : float array;
  centroids : Point.t array;
}

let triangle_of points (i, j, k) =
  Triangle.make points.(i) points.(j) points.(k)

let make domain points triangles =
  let np = Array.length points in
  Array.iter
    (fun (i, j, k) ->
      if i < 0 || i >= np || j < 0 || j >= np || k < 0 || k >= np then
        invalid_arg "Mesh.make: triangle index out of range")
    triangles;
  let areas =
    Array.map
      (fun tri ->
        let a = Triangle.area (triangle_of points tri) in
        if a < 1e-14 then invalid_arg "Mesh.make: degenerate triangle";
        a)
      triangles
  in
  let centroids = Array.map (fun tri -> Triangle.centroid (triangle_of points tri)) triangles in
  { domain; points; triangles; areas; centroids }

let size t = Array.length t.triangles

let triangle t i = triangle_of t.points t.triangles.(i)

let h_max t =
  Array.fold_left
    (fun acc tri -> Float.max acc (Triangle.max_side (triangle_of t.points tri)))
    0.0 t.triangles

let min_angle_deg t =
  Array.fold_left
    (fun acc tri -> Float.min acc (Triangle.min_angle_deg (triangle_of t.points tri)))
    180.0 t.triangles

let total_area t = Array.fold_left ( +. ) 0.0 t.areas

let on_boundary domain (p : Point.t) =
  let tol = 1e-9 in
  Float.abs (p.x -. domain.Rect.xmin) < tol
  || Float.abs (p.x -. domain.Rect.xmax) < tol
  || Float.abs (p.y -. domain.Rect.ymin) < tol
  || Float.abs (p.y -. domain.Rect.ymax) < tol

let check t =
  let area_err =
    Float.abs (total_area t -. Rect.area t.domain) /. Rect.area t.domain
  in
  if area_err > 1e-6 then
    Error (Printf.sprintf "mesh area mismatch: relative error %.3e" area_err)
  else begin
    (* count undirected edge usage *)
    let edges = Hashtbl.create (3 * size t) in
    let bump u v =
      let key = (min u v, max u v) in
      Hashtbl.replace edges key (1 + Option.value ~default:0 (Hashtbl.find_opt edges key))
    in
    Array.iter
      (fun (i, j, k) ->
        bump i j;
        bump j k;
        bump k i)
      t.triangles;
    let bad = ref None in
    Hashtbl.iter
      (fun (u, v) count ->
        match count with
        | 2 -> ()
        | 1 ->
            (* hull edge: both endpoints must lie on the domain boundary *)
            if not (on_boundary t.domain t.points.(u) && on_boundary t.domain t.points.(v))
            then
              bad :=
                Some
                  (Printf.sprintf "interior edge (%d, %d) used only once" u v)
        | c -> bad := Some (Printf.sprintf "edge (%d, %d) used %d times" u v c))
      edges;
    match !bad with None -> Ok () | Some msg -> Error msg
  end

let uniform domain ~divisions =
  if divisions <= 0 then invalid_arg "Mesh.uniform: divisions must be positive";
  let nx = divisions + 1 in
  let grid = Rect.sample_grid domain ~nx ~ny:nx in
  let centers = ref [] in
  let tris = ref [] in
  let n_grid = nx * nx in
  let center_index = ref n_grid in
  for iy = 0 to divisions - 1 do
    for ix = 0 to divisions - 1 do
      let p00 = (iy * nx) + ix in
      let p10 = p00 + 1 in
      let p01 = p00 + nx in
      let p11 = p01 + 1 in
      let c =
        Point.midpoint grid.(p00) grid.(p11)
      in
      centers := c :: !centers;
      let ci = !center_index in
      incr center_index;
      (* four CCW triangles around the cell center *)
      tris := (p00, p10, ci) :: (p10, p11, ci) :: (p11, p01, ci) :: (p01, p00, ci) :: !tris
    done
  done;
  let points = Array.append grid (Array.of_list (List.rev !centers)) in
  make domain points (Array.of_list !tris)
