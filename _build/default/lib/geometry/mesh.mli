(** Immutable triangle meshes of the die area: the partition
    [D = U triangles] carrying the paper's piecewise-constant Galerkin basis
    (eq. 17). *)

type t = private {
  domain : Rect.t;
  points : Point.t array;
  triangles : (int * int * int) array; (* CCW index triples *)
  areas : float array; (* per-triangle area a_i *)
  centroids : Point.t array; (* per-triangle quadrature node *)
}

val make : Rect.t -> Point.t array -> (int * int * int) array -> t
(** Builds the derived per-element data. Raises [Invalid_argument] on
    out-of-range indices or degenerate (zero-area) triangles. *)

val size : t -> int
(** Number of triangles [n]. *)

val triangle : t -> int -> Triangle.t

val h_max : t -> float
(** The mesh parameter of Theorem 2: the maximum triangle side. *)

val min_angle_deg : t -> float
(** Worst (smallest) interior angle over all elements. *)

val total_area : t -> float

val check : t -> (unit, string) result
(** Structural validation: total element area matches the domain area
    (to 1e-6 relative) and every interior edge is shared by exactly two
    triangles while boundary edges lie on the domain boundary. *)

val uniform : Rect.t -> divisions:int -> t
(** A structured fallback mesh: [divisions x divisions] squares split into
    four triangles around their centers (right isoceles, min angle 45°).
    Used by tests and as a mesher-independent baseline. *)
