type t = { x : float; y : float }

let make x y = { x; y }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let scale s a = { x = s *. a.x; y = s *. a.y }
let dot a b = (a.x *. b.x) +. (a.y *. b.y)

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let dist a b = sqrt (dist2 a b)

let dist_l1 a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)

let norm a = sqrt ((a.x *. a.x) +. (a.y *. a.y))

let midpoint a b = { x = 0.5 *. (a.x +. b.x); y = 0.5 *. (a.y +. b.y) }

let cross a b c = ((b.x -. a.x) *. (c.y -. a.y)) -. ((b.y -. a.y) *. (c.x -. a.x))

let equal ?(tol = 0.0) a b =
  Float.abs (a.x -. b.x) <= tol && Float.abs (a.y -. b.y) <= tol

let pp ppf { x; y } = Format.fprintf ppf "(%g, %g)" x y
