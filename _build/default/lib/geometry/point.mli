(** Points in the plane (chip locations in the normalized die coordinate
    system D = [-1,1] x [-1,1]). *)

type t = { x : float; y : float }

val make : float -> float -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float

val dist : t -> t -> float
(** Euclidean (L2) distance. *)

val dist2 : t -> t -> float
(** Squared Euclidean distance. *)

val dist_l1 : t -> t -> float
(** Manhattan (L1) distance, used by the separable exponential kernel. *)

val norm : t -> float

val midpoint : t -> t -> t

val cross : t -> t -> t -> float
(** [cross a b c] is the z-component of [(b - a) x (c - a)]: positive when
    [a b c] turn counter-clockwise. *)

val equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
