type t = { xmin : float; xmax : float; ymin : float; ymax : float }

let make ~xmin ~xmax ~ymin ~ymax =
  if xmax <= xmin || ymax <= ymin then invalid_arg "Rect.make: empty rectangle";
  { xmin; xmax; ymin; ymax }

let unit_die = { xmin = -1.0; xmax = 1.0; ymin = -1.0; ymax = 1.0 }

let width r = r.xmax -. r.xmin
let height r = r.ymax -. r.ymin
let area r = width r *. height r

let center r = Point.make (0.5 *. (r.xmin +. r.xmax)) (0.5 *. (r.ymin +. r.ymax))

let contains ?(tol = 0.0) r (p : Point.t) =
  p.x >= r.xmin -. tol && p.x <= r.xmax +. tol && p.y >= r.ymin -. tol
  && p.y <= r.ymax +. tol

let clamp r (p : Point.t) =
  Point.make (Float.min r.xmax (Float.max r.xmin p.x))
    (Float.min r.ymax (Float.max r.ymin p.y))

let corners r =
  [|
    Point.make r.xmin r.ymin;
    Point.make r.xmax r.ymin;
    Point.make r.xmax r.ymax;
    Point.make r.xmin r.ymax;
  |]

let sample_grid r ~nx ~ny =
  if nx < 2 || ny < 2 then invalid_arg "Rect.sample_grid: requires nx, ny >= 2";
  let pts = Array.make (nx * ny) (Point.make 0.0 0.0) in
  for iy = 0 to ny - 1 do
    for ix = 0 to nx - 1 do
      let x = r.xmin +. (width r *. float_of_int ix /. float_of_int (nx - 1)) in
      let y = r.ymin +. (height r *. float_of_int iy /. float_of_int (ny - 1)) in
      pts.((iy * nx) + ix) <- Point.make x y
    done
  done;
  pts
