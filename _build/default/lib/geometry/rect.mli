(** Axis-aligned rectangles; the chip domain of the paper is the normalized
    die [D = [-1,1] x [-1,1]]. *)

type t = { xmin : float; xmax : float; ymin : float; ymax : float }

val make : xmin:float -> xmax:float -> ymin:float -> ymax:float -> t
(** Raises [Invalid_argument] on an empty rectangle. *)

val unit_die : t
(** The paper's normalized chip area [[-1,1] x [-1,1]]. *)

val width : t -> float
val height : t -> float
val area : t -> float
val center : t -> Point.t

val contains : ?tol:float -> t -> Point.t -> bool

val clamp : t -> Point.t -> Point.t
(** Nearest point inside the rectangle. *)

val corners : t -> Point.t array
(** Counter-clockwise from (xmin, ymin). *)

val sample_grid : t -> nx:int -> ny:int -> Point.t array
(** [nx * ny] points on a regular interior-inclusive grid (endpoints on the
    boundary). Requires [nx, ny >= 2]. *)
