(* Ruppert-style Delaunay refinement on a rectangle.

   Invariants maintained by the main loop:
   - [dt] is a Delaunay triangulation of all points inserted so far;
   - [segments] partitions the rectangle boundary; every segment endpoint is
     an inserted point; boundary points are convex-hull vertices, so every
     segment is automatically a Delaunay edge;
   - a segment is split (midpoint insertion) whenever a point lies strictly
     inside its diametral circle (encroachment);
   - a skinny/large triangle is fixed by inserting its circumcenter, unless
     that circumcenter would encroach a boundary segment, in which case the
     segment is split instead (the standard Ruppert ordering, which is what
     guarantees termination for min angles below ~33 degrees).

   Floating-point hardening, needed to avoid runaway split cascades:
   - the circumcenter-vs-segment encroachment test is {e inclusive} (erring
     towards "split the segment"), while the point-vs-segment test is
     {e strict} (erring towards "leave it");
   - segments are never split below a small fraction of the target element
     size; when the only legal action on a triangle would be such a split,
     the triangle is put on an ignore list and refinement moves on (each
     step then either inserts a point or ignores a triangle, so the loop
     terminates);
   - circumcenters marginally outside the domain are clamped onto it. *)

type segment = { u : int; v : int }

type state = {
  dt : Delaunay.t;
  rect : Rect.t;
  mutable segments : segment list;
  mutable pending_segments : segment list; (* fresh, need a full point scan *)
  mutable budget : int;
  min_seg_len2 : float; (* squared minimum splittable segment length *)
  ignored : (int * int * int, unit) Hashtbl.t;
}

let point st i = (Delaunay.points st.dt).(i)

let encroaches_pt ~slack (a : Point.t) (b : Point.t) (p : Point.t) =
  let mid = Point.midpoint a b in
  let r2 = Point.dist2 a mid in
  Point.dist2 p mid < r2 *. slack

(* strict: existing points exactly on the circle do not trigger splits *)
let point_encroaches st (p : Point.t) { u; v } =
  encroaches_pt ~slack:(1.0 -. 1e-9) (point st u) (point st v) p

(* inclusive: a circumcenter on/near the circle does trigger a split *)
let center_encroaches st (p : Point.t) { u; v } =
  encroaches_pt ~slack:(1.0 +. 1e-9) (point st u) (point st v) p

let splittable st seg =
  Point.dist2 (point st seg.u) (point st seg.v) > st.min_seg_len2

let insert_point st p =
  st.budget <- st.budget - 1;
  Delaunay.insert st.dt p

(* split [seg] at its midpoint; children go on the pending queue *)
let split_segment st seg =
  let a = point st seg.u and b = point st seg.v in
  let mid = Point.midpoint a b in
  let mi = insert_point st mid in
  let s1 = { u = seg.u; v = mi } and s2 = { u = mi; v = seg.v } in
  st.segments <- s1 :: s2 :: List.filter (fun s -> s != seg) st.segments;
  st.pending_segments <- s1 :: s2 :: st.pending_segments

let some_point_encroaches st seg =
  let a = point st seg.u and b = point st seg.v in
  let pts = Delaunay.points st.dt in
  let n = Array.length pts in
  let rec scan i =
    if i >= n then false
    else if
      i <> seg.u && i <> seg.v && encroaches_pt ~slack:(1.0 -. 1e-9) a b pts.(i)
    then true
    else scan (i + 1)
  in
  scan 0

(* process the queue of segments needing a full encroachment scan *)
let rec drain_pending st =
  if st.budget > 0 then begin
    match st.pending_segments with
    | [] -> ()
    | seg :: rest ->
        st.pending_segments <- rest;
        if
          List.memq seg st.segments && splittable st seg
          && some_point_encroaches st seg
        then split_segment st seg;
        drain_pending st
  end

(* a newly inserted interior point may encroach existing segments *)
let resolve_new_point st p =
  let encroached =
    List.filter (fun seg -> splittable st seg && point_encroaches st p seg) st.segments
  in
  List.iter (fun seg -> split_segment st seg) encroached;
  drain_pending st

let tri_key (i, j, k) =
  let a = min i (min j k) and c = max i (max j k) in
  let b = i + j + k - a - c in
  (a, b, c)

let violates ~max_area ~min_angle_deg tri =
  Triangle.area tri > max_area || Triangle.min_angle_deg tri < min_angle_deg

(* one refinement step: returns false when nothing is left to fix *)
let step st ~max_area ~min_angle_deg =
  let pts = Delaunay.points st.dt in
  let tris = Delaunay.triangles st.dt in
  (* pick the worst offender: largest area among violators, which empirically
     keeps the point count low *)
  let worst = ref None in
  Array.iter
    (fun ijk ->
      if not (Hashtbl.mem st.ignored (tri_key ijk)) then begin
        let i, j, k = ijk in
        let tri = Triangle.make pts.(i) pts.(j) pts.(k) in
        if violates ~max_area ~min_angle_deg tri then begin
          let a = Triangle.area tri in
          match !worst with
          | Some (a0, _, _) when a0 >= a -> ()
          | _ -> worst := Some (a, tri, ijk)
        end
      end)
    tris;
  match !worst with
  | None -> false
  | Some (_, tri, ijk) ->
      let ignore_it () = Hashtbl.replace st.ignored (tri_key ijk) () in
      (match Triangle.circumcenter tri with
      | cc ->
          let encroached =
            List.filter (fun seg -> center_encroaches st cc seg) st.segments
          in
          let splittable_encroached = List.filter (splittable st) encroached in
          if splittable_encroached <> [] then begin
            List.iter (fun seg -> split_segment st seg) splittable_encroached;
            drain_pending st
          end
          else if encroached <> [] then
            (* only unsplittably-short segments in the way: give up on this
               triangle rather than cascade *)
            ignore_it ()
          else if Rect.contains ~tol:1e-9 st.rect cc then begin
            let cc = Rect.clamp st.rect cc in
            let before = Delaunay.point_count st.dt in
            ignore (insert_point st cc);
            if Delaunay.point_count st.dt = before then
              (* duplicate of an existing point: nothing will change *)
              ignore_it ()
            else resolve_new_point st cc
          end
          else begin
            (* circumcenter escaped the domain without encroaching any
               splittable segment: split the nearest splittable segment, or
               give up on the triangle *)
            let nearest =
              List.fold_left
                (fun acc seg ->
                  if not (splittable st seg) then acc
                  else begin
                    let d =
                      Point.dist2 cc
                        (Point.midpoint (point st seg.u) (point st seg.v))
                    in
                    match acc with
                    | Some (d0, _) when d0 <= d -> acc
                    | _ -> Some (d, seg)
                  end)
                None st.segments
            in
            match nearest with
            | Some (_, seg) ->
                split_segment st seg;
                drain_pending st
            | None -> ignore_it ()
          end
      | exception Invalid_argument _ -> ignore_it ());
      true

let mesh ?(min_angle_deg = 28.0) ?(max_points = 100_000) rect ~max_area_fraction =
  if max_area_fraction <= 0.0 then
    invalid_arg "Refine.mesh: max_area_fraction must be positive";
  let max_area = max_area_fraction *. Rect.area rect in
  (* boundary discretization at roughly the interior element scale *)
  let target = sqrt (4.0 *. max_area /. sqrt 3.0) in
  let dt = Delaunay.create rect in
  let st =
    {
      dt;
      rect;
      segments = [];
      pending_segments = [];
      budget = max_points;
      min_seg_len2 = (target /. 64.0) ** 2.0;
      ignored = Hashtbl.create 64;
    }
  in
  let add_side (a : Point.t) (b : Point.t) =
    let len = Point.dist a b in
    let pieces = max 1 (int_of_float (Float.ceil (len /. target))) in
    let prev = ref (Delaunay.insert dt a) in
    for i = 1 to pieces do
      let frac = float_of_int i /. float_of_int pieces in
      let p =
        Point.make (a.x +. (frac *. (b.x -. a.x))) (a.y +. (frac *. (b.y -. a.y)))
      in
      let idx = Delaunay.insert dt p in
      let seg = { u = !prev; v = idx } in
      st.segments <- seg :: st.segments;
      st.pending_segments <- seg :: st.pending_segments;
      prev := idx
    done
  in
  let corners = Rect.corners rect in
  for i = 0 to 3 do
    add_side corners.(i) corners.((i + 1) mod 4)
  done;
  drain_pending st;
  let continue_refining = ref true in
  while !continue_refining && st.budget > 0 do
    continue_refining := step st ~max_area ~min_angle_deg
  done;
  let mesh = Mesh.make rect (Delaunay.points dt) (Delaunay.triangles dt) in
  {
    Geometry_intf.mesh;
    satisfied = (not !continue_refining) && Hashtbl.length st.ignored = 0;
    inserted_points = Array.length (Delaunay.points dt);
  }
