(** Quality mesh refinement in the style of Ruppert's algorithm, standing in
    for Shewchuk's Triangle [24]: Delaunay refinement by circumcenter
    insertion under a maximum-area and minimum-angle constraint, with
    diametral-circle encroachment handling on the rectangle boundary.

    The paper's mesh — "minimum angle of 28 degrees and maximum triangle area
    of 0.1% of the chip area, resulting in n = 1546 triangles" — is
    [mesh Rect.unit_die ~max_area_fraction:0.001 ~min_angle_deg:28.0]. *)

val mesh :
  ?min_angle_deg:float ->
  ?max_points:int ->
  Rect.t ->
  max_area_fraction:float ->
  Geometry_intf.mesh_result
(** [mesh rect ~max_area_fraction] refines until every triangle has area at
    most [max_area_fraction * area rect] and minimum interior angle at least
    [min_angle_deg] (default 28.0; must be below 33 for guaranteed
    termination — higher values are attempted best-effort). [max_points]
    (default 100_000) bounds the insertion budget.

    Raises [Invalid_argument] for non-positive [max_area_fraction]. *)
