type t = { a : Point.t; b : Point.t; c : Point.t }

let make a b c = { a; b; c }

let signed_area { a; b; c } = 0.5 *. Point.cross a b c

let area t = Float.abs (signed_area t)

let centroid { a; b; c } =
  Point.make ((a.x +. b.x +. c.x) /. 3.0) ((a.y +. b.y +. c.y) /. 3.0)

let barycentric { a; b; c } p =
  let denom = Point.cross a b c in
  if Float.abs denom < 1e-300 then invalid_arg "Triangle.barycentric: degenerate";
  let wa = Point.cross p b c /. denom in
  let wb = Point.cross a p c /. denom in
  let wc = Point.cross a b p /. denom in
  (wa, wb, wc)

let max_side { a; b; c } =
  Float.max (Point.dist a b) (Float.max (Point.dist b c) (Point.dist c a))

let contains ?(tol = 1e-12) t p =
  let scaled_tol = tol +. (1e-14 *. max_side t) in
  match barycentric t p with
  | wa, wb, wc ->
      wa >= -.scaled_tol && wb >= -.scaled_tol && wc >= -.scaled_tol
  | exception Invalid_argument _ -> false

let angle_at v p q =
  (* interior angle at vertex v between rays v->p and v->q *)
  let u = Point.sub p v and w = Point.sub q v in
  let nu = Point.norm u and nw = Point.norm w in
  if nu < 1e-300 || nw < 1e-300 then 0.0
  else begin
    let c = Point.dot u w /. (nu *. nw) in
    acos (Float.min 1.0 (Float.max (-1.0) c))
  end

let min_angle_deg { a; b; c } =
  let t1 = angle_at a b c in
  let t2 = angle_at b c a in
  let t3 = angle_at c a b in
  Float.min t1 (Float.min t2 t3) *. 180.0 /. Float.pi

let circumcenter { a; b; c } =
  let d = 2.0 *. ((a.x *. (b.y -. c.y)) +. (b.x *. (c.y -. a.y)) +. (c.x *. (a.y -. b.y))) in
  if Float.abs d < 1e-300 then invalid_arg "Triangle.circumcenter: degenerate";
  let a2 = (a.x *. a.x) +. (a.y *. a.y) in
  let b2 = (b.x *. b.x) +. (b.y *. b.y) in
  let c2 = (c.x *. c.x) +. (c.y *. c.y) in
  let ux = ((a2 *. (b.y -. c.y)) +. (b2 *. (c.y -. a.y)) +. (c2 *. (a.y -. b.y))) /. d in
  let uy = ((a2 *. (c.x -. b.x)) +. (b2 *. (a.x -. c.x)) +. (c2 *. (b.x -. a.x))) /. d in
  Point.make ux uy

let circumradius2 t = Point.dist2 (circumcenter t) t.a

let edge_midpoints { a; b; c } =
  [| Point.midpoint a b; Point.midpoint b c; Point.midpoint c a |]
