(** Triangle primitives: the Galerkin basis elements of the paper's eq. (17)
    live on these. *)

type t = { a : Point.t; b : Point.t; c : Point.t }

val make : Point.t -> Point.t -> Point.t -> t

val signed_area : t -> float
(** Positive for counter-clockwise orientation. *)

val area : t -> float

val centroid : t -> Point.t
(** The quadrature node of the paper's eq. (20). *)

val contains : ?tol:float -> t -> Point.t -> bool
(** Barycentric containment, inclusive of edges within [tol]
    (default 1e-12, scaled by the triangle size). *)

val max_side : t -> float
(** Longest side length — the per-element contribution to the mesh parameter
    [h] of Theorem 2. *)

val min_angle_deg : t -> float
(** Smallest interior angle in degrees (the Triangle-style quality knob). *)

val circumcenter : t -> Point.t
(** Raises [Invalid_argument] on (near-)degenerate triangles. *)

val circumradius2 : t -> float

val edge_midpoints : t -> Point.t array
(** The three mid-edge nodes of the degree-2 quadrature rule. *)

val barycentric : t -> Point.t -> float * float * float
(** Barycentric coordinates of a point w.r.t. [a], [b], [c]. *)
