lib/kernels/analytic_kle.ml: Array Float Geometry List
