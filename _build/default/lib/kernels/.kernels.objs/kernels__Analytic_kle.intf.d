lib/kernels/analytic_kle.mli: Geometry
