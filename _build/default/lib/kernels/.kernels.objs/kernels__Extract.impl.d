lib/kernels/extract.ml: Array Fit Float Geometry Kernel Linalg List Stats Validity
