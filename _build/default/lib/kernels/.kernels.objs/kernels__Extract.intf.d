lib/kernels/extract.mli: Fit Geometry Kernel Linalg
