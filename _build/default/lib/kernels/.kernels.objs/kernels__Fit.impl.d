lib/kernels/fit.ml: Array Float Kernel Util
