lib/kernels/fit.mli: Kernel
