lib/kernels/kernel.ml: Float Geometry Printf Specfun
