lib/kernels/kernel.mli: Geometry
