lib/kernels/validity.ml: Array Float Geometry Kernel Linalg
