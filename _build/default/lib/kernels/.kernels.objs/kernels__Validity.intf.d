lib/kernels/validity.mli: Geometry Kernel Linalg
