(** Analytical Karhunen-Loève expansion of the separable L1 exponential
    kernel (paper eq. (5)), following Ghanem & Spanos [8].

    In 1-D, the kernel [exp(-c |x - y|)] on [[-a, a]] has eigenvalues
    [λ = 2c / (ω² + c²)] where the frequencies [ω] solve the transcendental
    equations [c = ω tan(ω a)] (even modes, cosine eigenfunctions) and
    [ω = -c tan(ω a)] (odd modes, sine eigenfunctions). The 2-D separable
    kernel's eigenpairs are products of 1-D pairs.

    This module is the validation reference for the numerical Galerkin
    method: it also models the analytically solvable setting that
    [Bhardwaj, ICCAD'06] (paper ref. [2]) is restricted to. *)

type parity = Even | Odd

type eigenpair_1d = {
  lambda : float;
  omega : float;
  parity : parity;
  norm : float; (* normalization constant of the eigenfunction *)
}

val exp_1d : c:float -> half_width:float -> count:int -> eigenpair_1d array
(** First [count] eigenpairs, eigenvalues descending. Raises
    [Invalid_argument] for non-positive [c], [half_width] or [count]. *)

val eval_1d : eigenpair_1d -> float -> float
(** Evaluate an eigenfunction at a coordinate (relative to the interval
    center). Eigenfunctions are orthonormal in L²([-a, a]). *)

type eigenpair_2d = { lambda : float; fx : eigenpair_1d; fy : eigenpair_1d }

val exp_2d : c:float -> rect:Geometry.Rect.t -> count:int -> eigenpair_2d array
(** First [count] eigenpairs of [Separable_exp_l1 { c }] on [rect]
    (eigenvalues descending), formed as products of enough 1-D modes per
    axis. *)

val eval_2d : rect:Geometry.Rect.t -> eigenpair_2d -> Geometry.Point.t -> float
(** Evaluate a 2-D eigenfunction at a die location. *)

val reconstruct_kernel :
  rect:Geometry.Rect.t ->
  eigenpair_2d array ->
  Geometry.Point.t ->
  Geometry.Point.t ->
  float
(** Truncated-series kernel reconstruction [Σ λ f(x) f(y)]. *)
