(** Correlation-kernel extraction from measured (or simulated) silicon —
    a minimal version of the workflow of [Xiong et al., TCAD'07] (the
    paper's ref. [1], which provides the kernels this library consumes):

    1. estimate an empirical {e correlogram} — pairwise sample correlations
       binned by separation distance — from repeated field measurements at
       known die locations;
    2. fit candidate kernel families to the binned correlogram by weighted
       least squares;
    3. keep the best fit that is actually a {e valid} (non-negative
       definite) kernel, which the raw correlogram itself need not be. *)

type correlogram = {
  distances : float array; (* bin centers *)
  correlations : float array; (* average sample correlation per bin *)
  counts : int array; (* location pairs per bin (weighted fits use these) *)
}

val empirical_correlogram :
  locations:Geometry.Point.t array ->
  samples:Linalg.Mat.t ->
  ?bins:int ->
  ?vmax:float ->
  unit ->
  correlogram
(** [empirical_correlogram ~locations ~samples ()] bins the pairwise Pearson
    correlations of the sample columns (one column per location, one row per
    measured die) by location distance. [bins] defaults to 20; [vmax] to the
    maximum pairwise distance. Raises [Invalid_argument] when dimensions
    disagree or there are fewer than 3 sample rows. *)

val fit_correlogram :
  correlogram ->
  family:(float -> Kernel.t) ->
  lo:float ->
  hi:float ->
  Fit.fit
(** Count-weighted least-squares fit of a one-parameter radial family to the
    binned correlogram. *)

type extraction = {
  kernel : Kernel.t;
  family_name : string;
  sse : float;
  valid : bool; (* PSD on the measurement locations *)
}

val extract :
  locations:Geometry.Point.t array ->
  samples:Linalg.Mat.t ->
  ?families:(string * (float -> Kernel.t) * float * float) list ->
  unit ->
  extraction list
(** Run the full workflow over a set of candidate families (default:
    gaussian, exponential, Matérn s=2, Matérn s=3, spherical), returning all
    candidates sorted best-first by SSE, with validity verdicts. The first
    [valid] entry is the extracted kernel. *)
