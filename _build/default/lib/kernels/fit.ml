type fit = { kernel : Kernel.t; sse : float }

let golden_ratio = (sqrt 5.0 -. 1.0) /. 2.0

let golden_section ?(tol = 1e-10) ~lo ~hi f =
  if hi <= lo then invalid_arg "Fit.golden_section: requires lo < hi";
  let a = ref lo and b = ref hi in
  let x1 = ref (!b -. (golden_ratio *. (!b -. !a))) in
  let x2 = ref (!a +. (golden_ratio *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  while !b -. !a > tol *. (Float.abs !a +. Float.abs !b +. 1.0) do
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (golden_ratio *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (golden_ratio *. (!b -. !a));
      f2 := f !x2
    end
  done;
  0.5 *. (!a +. !b)

let fit_profile_1d ~family ~target ?(weight = fun _ -> 1.0) ?(samples = 200)
    ~vmax ~lo ~hi () =
  if samples < 2 then invalid_arg "Fit.fit_profile_1d: samples must be >= 2";
  let vs = Util.Arrayx.float_range ~start:0.0 ~stop:vmax ~count:samples in
  let sse c =
    let k = family c in
    Array.fold_left
      (fun acc v ->
        let d = Kernel.eval_distance k v -. target v in
        acc +. (weight v *. d *. d))
      0.0 vs
  in
  let c = golden_section ~lo ~hi sse in
  { kernel = family c; sse = sse c }

let cone rho v = Float.max 0.0 (1.0 -. (v /. rho))

let weight_of_dim = function `D1 -> fun _ -> 1.0 | `D2 -> fun v -> v

let fit_gaussian_to_cone ?(dim = `D2) ~rho ~vmax () =
  fit_profile_1d
    ~family:(fun c -> Kernel.Gaussian { c })
    ~target:(cone rho) ~weight:(weight_of_dim dim) ~vmax ~lo:1e-3 ~hi:100.0 ()

let fit_exponential_to_cone ?(dim = `D2) ~rho ~vmax () =
  fit_profile_1d
    ~family:(fun c -> Kernel.Exponential { c })
    ~target:(cone rho) ~weight:(weight_of_dim dim) ~vmax ~lo:1e-3 ~hi:100.0 ()

let paper_gaussian () =
  (* normalized chip [-1,1]²: chip length 2, correlation distance rho = 1;
     fit over the full distance range of the die (diagonal = 2*sqrt 2) *)
  (fit_gaussian_to_cone ~dim:`D2 ~rho:1.0 ~vmax:(2.0 *. sqrt 2.0) ()).kernel
