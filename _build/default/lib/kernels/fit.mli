(** Least-squares fitting of kernel radial profiles, reproducing the paper's
    Fig. 3(a) calibration: fit Gaussian and exponential kernels to the
    measurement-backed isotropic linear (cone) correlogram of
    [Friedberg, ISQED'05]. *)

type fit = { kernel : Kernel.t; sse : float }
(** The fitted kernel together with the (weighted) sum of squared errors. *)

val golden_section :
  ?tol:float -> lo:float -> hi:float -> (float -> float) -> float
(** One-dimensional minimizer on a bracket; exposed for reuse and testing.
    Raises [Invalid_argument] when [hi <= lo]. *)

val fit_profile_1d :
  family:(float -> Kernel.t) ->
  target:(float -> float) ->
  ?weight:(float -> float) ->
  ?samples:int ->
  vmax:float ->
  lo:float ->
  hi:float ->
  unit ->
  fit
(** [fit_profile_1d ~family ~target ~vmax ~lo ~hi ()] picks the parameter in
    [[lo, hi]] whose kernel radial profile minimizes the weighted SSE against
    [target] over [samples] (default 200) distances in [[0, vmax]].
    [weight v] defaults to 1 (plain 1-D fit); use [v] itself for an
    area-weighted 2-D isotropic fit. *)

val fit_gaussian_to_cone : ?dim:[ `D1 | `D2 ] -> rho:float -> vmax:float -> unit -> fit
(** Best-fit Gaussian [exp(-c v²)] to the cone [max(0, 1 - v/rho)]. [`D1] is
    the unweighted fit of Fig. 3(a); [`D2] (default) weights by [v] as the
    paper's 2-D calibration does. *)

val fit_exponential_to_cone : ?dim:[ `D1 | `D2 ] -> rho:float -> vmax:float -> unit -> fit
(** Best-fit exponential [exp(-c v)] to the same cone. The paper's Fig. 3(a)
    shows this fit is visibly worse than the Gaussian one. *)

val paper_gaussian : unit -> Kernel.t
(** The Gaussian kernel of the paper's experiments: 2-D best fit to a cone
    with correlation distance of half the normalized chip length
    ([rho = 1] on [[-1,1]²]). *)
