lib/kle/galerkin.ml: Array Float Geometry Kernels Linalg Printf Util
