lib/kle/galerkin.mli: Geometry Kernels Linalg
