lib/kle/model.ml: Array Float Galerkin Geometry Kernels Linalg Util
