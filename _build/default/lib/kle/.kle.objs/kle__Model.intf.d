lib/kle/model.mli: Galerkin Geometry Linalg
