lib/kle/p1.ml: Array Bigarray Float Geometry Kernels Linalg Printf
