lib/kle/p1.mli: Geometry Kernels Linalg
