lib/kle/sampler.ml: Array Bigarray Galerkin Geometry Linalg Model Prng
