lib/kle/sampler.mli: Geometry Linalg Model Prng
