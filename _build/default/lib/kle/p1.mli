(** Piecewise-{e linear} (P1 / hat-function) Galerkin discretization of the
    KLE eigenproblem — the "higher order piecewise polynomials … can also be
    used as the basis set" extension the paper sketches in Section 4.2.

    Unlike the piecewise-constant basis of {!Galerkin}, hat functions are
    continuous across elements, so reconstructed eigenfunctions (and the
    reconstructed kernel) have no blocky discretization floor between mesh
    nodes. The price: the basis is no longer orthogonal, so eq. (13) stays a
    {e generalized} eigenproblem [K d = λ M d] with the FEM mass matrix [M];
    it is reduced to a standard symmetric problem through the Cholesky factor
    of [M] ([C = L⁻¹ K L⁻ᵀ], [d = L⁻ᵀ c]).

    Quadrature: the 3-point mid-edge rule (degree-2 exact) on both sides of
    the double integral. *)

type solution = {
  mesh : Geometry.Mesh.t;
  kernel : Kernels.Kernel.t;
  eigenvalues : float array; (* descending, clamped at 0 *)
  vertex_coefficients : Linalg.Mat.t;
      (* n_vertices x k; column j = coefficients of the j-th eigenfunction
         in the hat basis, normalized to unit L²(D) norm *)
}

val mass_matrix : Geometry.Mesh.t -> Linalg.Mat.t
(** FEM mass matrix [M_vw = ∫ φ_v φ_w] (dense storage; exposed for tests —
    its row sums tile the die area). *)

val solve : ?count:int -> Geometry.Mesh.t -> Kernels.Kernel.t -> solution
(** [solve mesh kernel] computes the leading [count] eigenpairs (default:
    all vertices, via the dense solver; a [count] below the vertex count
    switches to Lanczos). Raises [Invalid_argument] on an indefinite kernel,
    like {!Galerkin.solve}. *)

type evaluator
(** Prepared point-evaluation context (point-location index). *)

val evaluator : solution -> evaluator

val eval_eigenfunction : evaluator -> int -> Geometry.Point.t -> float
(** Continuous (barycentric) evaluation of eigenfunction [j]. Raises
    [Not_found] outside the die and [Invalid_argument] for [j] out of
    range. *)

val reconstruct_kernel :
  evaluator -> r:int -> Geometry.Point.t -> Geometry.Point.t -> float
(** Truncated Mercer reconstruction with the first [r] pairs. *)

val reconstruction_error_grid :
  ?grid:int -> ?fixed:Geometry.Point.t -> evaluator -> r:int -> float
(** Max abs reconstruction error over an arbitrary point grid — directly
    comparable with {!Model.reconstruction_error_grid} to quantify what the
    continuous basis buys. *)
