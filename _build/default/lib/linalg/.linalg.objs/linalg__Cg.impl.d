lib/linalg/cg.ml: Array Float Sparse Vec
