lib/linalg/cholesky.ml: Array Bigarray Float Mat
