lib/linalg/jacobi.ml: Array Float Mat Util
