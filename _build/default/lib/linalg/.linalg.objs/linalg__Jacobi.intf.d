lib/linalg/jacobi.mli: Mat
