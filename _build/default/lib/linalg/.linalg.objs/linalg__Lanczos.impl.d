lib/linalg/lanczos.ml: Array Float Int64 Mat Sym_eig Util Vec
