lib/linalg/lanczos.mli:
