lib/linalg/mat.ml: Array Bigarray Float Format Printf
