lib/linalg/mat.mli: Bigarray Format
