lib/linalg/sparse.mli: Mat
