lib/linalg/sym_eig.ml: Array Float Mat Util
