lib/linalg/sym_eig.mli: Mat
