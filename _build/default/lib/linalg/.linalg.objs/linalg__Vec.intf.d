lib/linalg/vec.mli:
