exception No_convergence of { iterations : int; residual : float }

type stats = { iterations : int; residual : float }

let solve ?(tol = 1e-10) ?max_iter ?x0 a b =
  let n = Sparse.dim a in
  if Array.length b <> n then invalid_arg "Cg.solve: length mismatch";
  let max_iter = match max_iter with Some m -> m | None -> 4 * n in
  let x = match x0 with Some x -> Array.copy x | None -> Array.make n 0.0 in
  let inv_diag =
    Array.map
      (fun d -> if Float.abs d < 1e-300 then 1.0 else 1.0 /. d)
      (Sparse.diagonal a)
  in
  let precondition r = Array.mapi (fun i v -> inv_diag.(i) *. v) r in
  let r =
    match x0 with
    | None -> Array.copy b
    | Some _ -> Vec.sub b (Sparse.mul_vec a x)
  in
  let b_norm = Float.max (Vec.norm2 b) 1e-300 in
  let z = precondition r in
  let p = ref (Array.copy z) in
  let rz = ref (Vec.dot r z) in
  let iterations = ref 0 in
  let residual = ref (Vec.norm2 r /. b_norm) in
  while !residual > tol && !iterations < max_iter do
    incr iterations;
    let ap = Sparse.mul_vec a !p in
    let alpha = !rz /. Vec.dot !p ap in
    Vec.axpy alpha !p x;
    Vec.axpy (-.alpha) ap r;
    let z = precondition r in
    let rz' = Vec.dot r z in
    let beta = rz' /. !rz in
    rz := rz';
    let p' = Array.copy z in
    Vec.axpy beta !p p';
    p := p';
    residual := Vec.norm2 r /. b_norm
  done;
  if !residual > tol then
    raise (No_convergence { iterations = !iterations; residual = !residual });
  (x, { iterations = !iterations; residual = !residual })
