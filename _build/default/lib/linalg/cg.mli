(** Preconditioned conjugate gradient for sparse SPD systems (Jacobi
    preconditioner) — the iterative companion to the dense {!Cholesky}
    factorization, used where the matrix is large but sparse (power-grid
    Laplacians). *)

exception No_convergence of { iterations : int; residual : float }

type stats = { iterations : int; residual : float }

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:float array ->
  Sparse.t ->
  float array ->
  float array * stats
(** [solve a b] solves [a x = b] to relative residual [tol] (default 1e-10)
    within [max_iter] iterations (default [4 * dim]). [x0] is the starting
    guess (default zero). Raises [No_convergence] past the budget, and
    [Invalid_argument] on dimension mismatch. *)
