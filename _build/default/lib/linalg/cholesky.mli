(** Cholesky factorization of symmetric positive (semi-)definite matrices.

    This is the engine of the paper's Algorithm 1 (the grid-model Monte Carlo
    reference): the gate-location covariance matrix is factored once and its
    upper factor multiplies standard-normal sample matrices. *)

exception Not_positive_definite of int
(** Raised with the offending pivot index when a pivot is non-positive. *)

val factor_lower : Mat.t -> Mat.t
(** [factor_lower a] is the lower-triangular [l] with [l * lᵀ = a]. Only the
    lower triangle of [a] is read. Raises [Not_positive_definite] when a
    pivot fails, and [Invalid_argument] when [a] is not square. *)

val factor_upper : Mat.t -> Mat.t
(** [factor_upper a] is the upper-triangular [u = lᵀ] with [uᵀ * u = a],
    matching the [CholeskyUpperFactor] of the paper's Algorithm 1. *)

val factor_jittered : ?max_tries:int -> Mat.t -> Mat.t * float
(** [factor_jittered a] factors [a], adding an exponentially growing diagonal
    jitter when [a] is positive semi-definite only up to rounding (correlation
    matrices of near-coincident points routinely are). Returns the lower
    factor and the jitter finally used (0 when none was needed). Raises
    [Not_positive_definite] after [max_tries] (default 12) escalations. *)

val solve : Mat.t -> float array -> float array
(** [solve l b] solves [l * lᵀ * x = b] given the lower factor [l]. *)

val log_det : Mat.t -> float
(** [log_det l] is the log-determinant of the factored matrix, i.e.
    [2 * sum(log(diag l))]. *)
