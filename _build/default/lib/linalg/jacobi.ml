exception No_convergence

let off_diag_norm a =
  let n = Mat.rows a in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = Mat.unsafe_get a i j in
      acc := !acc +. (v *. v)
    done
  done;
  sqrt (2.0 *. !acc)

let eig ?(sweeps = 100) a0 =
  let n = Mat.rows a0 in
  if Mat.cols a0 <> n then invalid_arg "Jacobi.eig: not square";
  let a = Mat.init n n (fun i j -> 0.5 *. (Mat.get a0 i j +. Mat.get a0 j i)) in
  let q = Mat.identity n in
  let tol = 1e-14 *. Float.max 1.0 (Mat.frobenius_norm a) in
  let sweep_count = ref 0 in
  while off_diag_norm a > tol do
    incr sweep_count;
    if !sweep_count > sweeps then raise No_convergence;
    for p = 0 to n - 2 do
      for r = p + 1 to n - 1 do
        let apr = Mat.unsafe_get a p r in
        if Float.abs apr > 1e-300 then begin
          let app = Mat.unsafe_get a p p in
          let arr = Mat.unsafe_get a r r in
          (* stable rotation computation (Golub & Van Loan, sec. 8.4) *)
          let tau = (arr -. app) /. (2.0 *. apr) in
          let t =
            if tau >= 0.0 then 1.0 /. (tau +. sqrt (1.0 +. (tau *. tau)))
            else 1.0 /. (tau -. sqrt (1.0 +. (tau *. tau)))
          in
          let c = 1.0 /. sqrt (1.0 +. (t *. t)) in
          let s = t *. c in
          (* update rows/columns p and r of [a] *)
          for k = 0 to n - 1 do
            let akp = Mat.unsafe_get a k p in
            let akr = Mat.unsafe_get a k r in
            Mat.unsafe_set a k p ((c *. akp) -. (s *. akr));
            Mat.unsafe_set a k r ((s *. akp) +. (c *. akr))
          done;
          for k = 0 to n - 1 do
            let apk = Mat.unsafe_get a p k in
            let ark = Mat.unsafe_get a r k in
            Mat.unsafe_set a p k ((c *. apk) -. (s *. ark));
            Mat.unsafe_set a r k ((s *. apk) +. (c *. ark))
          done;
          (* accumulate eigenvectors *)
          for k = 0 to n - 1 do
            let qkp = Mat.unsafe_get q k p in
            let qkr = Mat.unsafe_get q k r in
            Mat.unsafe_set q k p ((c *. qkp) -. (s *. qkr));
            Mat.unsafe_set q k r ((s *. qkp) +. (c *. qkr))
          done
        end
      done
    done
  done;
  let d = Array.init n (fun i -> Mat.unsafe_get a i i) in
  let sorted, perm = Util.Arrayx.sort_desc_with_perm d in
  let qs = Mat.init n n (fun i j -> Mat.unsafe_get q i perm.(j)) in
  (sorted, qs)
