(** Cyclic Jacobi eigendecomposition for small symmetric matrices.

    Slower than {!Sym_eig} but with a very different failure surface, so it
    serves as an independent cross-check in the test suite and in the
    eigensolver ablation bench. *)

exception No_convergence
(** Raised when the off-diagonal norm fails to vanish in 100 sweeps. *)

val eig : ?sweeps:int -> Mat.t -> float array * Mat.t
(** [eig a] is [(lambda, q)] with eigenvalues descending and eigenvectors as
    columns of [q]. Only the symmetric part of [a] is used. [sweeps] bounds
    the number of cyclic sweeps (default 100). *)
