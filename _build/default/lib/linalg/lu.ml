exception Singular of int

type t = {
  lu : Mat.t; (* packed L (unit diagonal, below) and U (on/above diagonal) *)
  perm : int array; (* row permutation *)
  sign : float; (* permutation parity, for det *)
}

let factor a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Lu.factor: not square";
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* partial pivot *)
    let pivot_row = ref k in
    let pivot_val = ref (Float.abs (Mat.unsafe_get lu k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Mat.unsafe_get lu i k) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := i
      end
    done;
    if !pivot_val < 1e-300 then raise (Singular k);
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let t = Mat.unsafe_get lu k j in
        Mat.unsafe_set lu k j (Mat.unsafe_get lu !pivot_row j);
        Mat.unsafe_set lu !pivot_row j t
      done;
      let t = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- t;
      sign := -. !sign
    end;
    let pivot = Mat.unsafe_get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.unsafe_get lu i k /. pivot in
      Mat.unsafe_set lu i k factor;
      for j = k + 1 to n - 1 do
        Mat.unsafe_set lu i j (Mat.unsafe_get lu i j -. (factor *. Mat.unsafe_get lu k j))
      done
    done
  done;
  { lu; perm; sign = !sign }

let solve { lu; perm; _ } b =
  let n = Mat.rows lu in
  if Array.length b <> n then invalid_arg "Lu.solve: length mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward: L y = P b (unit diagonal) *)
  for i = 0 to n - 1 do
    let s = ref x.(i) in
    for k = 0 to i - 1 do
      s := !s -. (Mat.unsafe_get lu i k *. x.(k))
    done;
    x.(i) <- !s
  done;
  (* backward: U x = y *)
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (Mat.unsafe_get lu i k *. x.(k))
    done;
    x.(i) <- !s /. Mat.unsafe_get lu i i
  done;
  x

let solve_dense a b = solve (factor a) b

let det { lu; sign; _ } =
  let n = Mat.rows lu in
  let acc = ref sign in
  for i = 0 to n - 1 do
    acc := !acc *. Mat.unsafe_get lu i i
  done;
  !acc

let inverse t =
  let n = Mat.rows t.lu in
  let inv = Mat.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let x = solve t e in
    for i = 0 to n - 1 do
      Mat.unsafe_set inv i j x.(i)
    done
  done;
  inv
