(** LU factorization with partial pivoting, for the occasional general linear
    solve (kernel fitting normal equations, small model calibrations). *)

exception Singular of int
(** Raised with the offending pivot column when the matrix is singular to
    working precision. *)

type t
(** A factored matrix. *)

val factor : Mat.t -> t
(** [factor a] computes [p * a = l * u]. Raises [Singular] and
    [Invalid_argument] (non-square). *)

val solve : t -> float array -> float array
(** [solve lu b] solves [a * x = b]. *)

val solve_dense : Mat.t -> float array -> float array
(** [solve_dense a b] factors and solves in one call. *)

val det : t -> float
(** Determinant of the factored matrix. *)

val inverse : t -> Mat.t
(** Explicit inverse (small matrices only). *)
