(** Sparse symmetric matrices in compressed-sparse-row form, sized for mesh
    and grid Laplacians (the power-grid substrate stores only the ~5 nonzeros
    per row of its conductance matrix). *)

type t

val of_triplets : n:int -> (int * int * float) list -> t
(** [of_triplets ~n entries] builds an [n x n] matrix from (row, col, value)
    triplets; duplicate coordinates are summed. Raises [Invalid_argument] on
    out-of-range indices. The matrix is stored as given — symmetry is the
    caller's responsibility (checked by {!is_symmetric} in tests). *)

val dim : t -> int

val nnz : t -> int

val mul_vec : t -> float array -> float array
(** Sparse mat-vec. Raises [Invalid_argument] on length mismatch. *)

val diagonal : t -> float array
(** The diagonal entries (0 where absent) — the Jacobi preconditioner. *)

val to_dense : t -> Mat.t
(** Densify (tests/small systems only). *)

val is_symmetric : ?tol:float -> t -> bool
