(** Dense symmetric eigendecomposition.

    Householder tridiagonalization followed by the implicit-shift QL
    iteration (the classic EISPACK tred2/tql2 pair). This is the "standard
    eigenvalue problem" solver of the paper's eq. (15), and also powers the
    grid-model PCA baseline of eq. (1). *)

exception No_convergence of int
(** Raised with the offending eigenvalue index when QL fails to converge in
    50 iterations (does not happen for symmetric input). *)

val eig : Mat.t -> float array * Mat.t
(** [eig a] is [(lambda, q)] with eigenvalues in {e descending} order and the
    corresponding orthonormal eigenvectors as {e columns} of [q], so that
    [a * q = q * diag lambda]. Only the symmetric part of [a] is used; raises
    [Invalid_argument] when [a] is not square. *)

val eig_values : Mat.t -> float array
(** Eigenvalues only (descending), skipping eigenvector accumulation. *)

val tridiag_ql : float array -> float array -> float array
(** [tridiag_ql d e] is the ascending eigenvalue array of the symmetric
    tridiagonal matrix with diagonal [d] and sub-diagonal [e] ([e.(0)] is
    unused padding to keep EISPACK indexing). Both arrays are consumed.
    Exposed for the Lanczos solver. *)

val tridiag_ql_vectors : float array -> float array -> Mat.t -> float array
(** Like {!tridiag_ql} but also accumulates the rotations into the matrix
    argument (initialized by the caller, typically to identity), giving the
    tridiagonal eigenvectors as columns. *)
