type t = float array

let create n = Array.make n 0.0

let copy = Array.copy

let check_same_length name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: length mismatch (%d vs %d)" name
                   (Array.length x) (Array.length y))

let dot x y =
  check_same_length "dot" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (Array.unsafe_get x i *. Array.unsafe_get y i)
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x

let scale a x = Array.map (fun v -> a *. v) x

let scale_inplace a x =
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set x i (a *. Array.unsafe_get x i)
  done

let add x y =
  check_same_length "add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_same_length "sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let axpy a x y =
  check_same_length "axpy" x y;
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set y i ((a *. Array.unsafe_get x i) +. Array.unsafe_get y i)
  done

let normalize x =
  let n = norm2 x in
  if n < 1e-300 then invalid_arg "Vec.normalize: zero vector";
  scale (1.0 /. n) x

let dist_inf x y =
  check_same_length "dist_inf" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := Float.max !acc (Float.abs (x.(i) -. y.(i)))
  done;
  !acc
