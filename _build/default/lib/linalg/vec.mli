(** Dense vectors as plain [float array]s with the usual BLAS-1 operations.

    All binary operations require equal lengths and raise [Invalid_argument]
    otherwise. *)

type t = float array

val create : int -> t
(** [create n] is a zero vector of length [n]. *)

val copy : t -> t

val dot : t -> t -> float
(** Inner product. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Maximum absolute entry. *)

val scale : float -> t -> t
(** [scale a x] is a fresh vector [a * x]. *)

val scale_inplace : float -> t -> unit

val add : t -> t -> t
val sub : t -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] updates [y <- a*x + y] in place. *)

val normalize : t -> t
(** [normalize x] is [x / |x|]. Raises [Invalid_argument] on (near-)zero
    vectors. *)

val dist_inf : t -> t -> float
(** Maximum absolute component-wise difference. *)
