lib/powergrid/analysis.ml: Array Grid Leakage Prng Stats Util
