lib/powergrid/analysis.mli: Geometry Grid Leakage Ssta
