lib/powergrid/grid.ml: Array Float Geometry Linalg List
