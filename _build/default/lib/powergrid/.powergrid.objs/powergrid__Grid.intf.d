lib/powergrid/grid.mli: Geometry
