lib/powergrid/leakage.ml: Array Linalg
