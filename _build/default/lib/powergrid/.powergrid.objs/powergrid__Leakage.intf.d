lib/powergrid/leakage.mli: Linalg
