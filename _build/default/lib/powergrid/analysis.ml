type result = {
  n_samples : int;
  max_drop_mean : float;
  max_drop_sigma : float;
  max_drop_p99 : float;
  sample_seconds : float;
  solve_seconds : float;
}

let run ?(batch = 256) ~grid ~leakage ~gate_locations ~sampler ~seed ~n () =
  if n <= 0 then invalid_arg "Analysis.run: n must be positive";
  let rng = Prng.Rng.create ~seed in
  let node_of_gate = Array.map (Grid.nearest_node grid) gate_locations in
  let n_nodes = Grid.node_count grid in
  let drops = Array.make n 0.0 in
  let sample_seconds = ref 0.0 in
  let solve_seconds = ref 0.0 in
  let done_count = ref 0 in
  let currents = Array.make n_nodes 0.0 in
  while !done_count < n do
    let b = min batch (n - !done_count) in
    let blocks, dt = Util.Timer.time (fun () -> sampler rng ~n:b) in
    sample_seconds := !sample_seconds +. dt;
    let t0 = Util.Timer.start () in
    for s = 0 to b - 1 do
      Array.fill currents 0 n_nodes 0.0;
      let gate_currents = Leakage.currents_of_blocks leakage ~blocks ~sample:s in
      Array.iteri
        (fun g node ->
          match node with
          | Some idx -> currents.(idx) <- currents.(idx) +. gate_currents.(g)
          | None -> ())
        node_of_gate;
      drops.(!done_count + s) <- Grid.max_drop grid ~currents
    done;
    solve_seconds := !solve_seconds +. Util.Timer.elapsed_s t0;
    done_count := !done_count + b
  done;
  let summary = Stats.Summary.of_array drops in
  {
    n_samples = n;
    max_drop_mean = summary.Stats.Summary.mean;
    max_drop_sigma = summary.Stats.Summary.std_dev;
    max_drop_p99 = Stats.Summary.quantile drops 0.99;
    sample_seconds = !sample_seconds;
    solve_seconds = !solve_seconds;
  }
