(** Variational IR-drop analysis: Monte Carlo over the spatially correlated
    leakage field, with either correlation sampler (Algorithm 1 Cholesky or
    Algorithm 2 KLE), modeling [Ferzli & Najm, TCAD'06] at the level the
    paper's introduction invokes it.

    Per sample: draw the four parameter fields at the gate locations,
    evaluate each gate's (lognormal) leakage, inject at the nearest grid
    node, solve the grid, and record the worst IR drop. *)

type result = {
  n_samples : int;
  max_drop_mean : float; (* volts *)
  max_drop_sigma : float;
  max_drop_p99 : float; (* 99th percentile of the worst drop *)
  sample_seconds : float;
  solve_seconds : float;
}

val run :
  ?batch:int ->
  grid:Grid.t ->
  leakage:Leakage.model ->
  gate_locations:Geometry.Point.t array ->
  sampler:Ssta.Experiment.sampler ->
  seed:int ->
  n:int ->
  unit ->
  result
(** Monte Carlo IR-drop analysis. Gates whose nearest node is a pad inject
    nothing (their current returns directly). Raises [Invalid_argument] for
    non-positive [n]. *)
