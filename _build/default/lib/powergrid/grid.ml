type solver = Dense | Cg

type backend =
  | Factored of Linalg.Mat.t (* lower Cholesky factor of the reduced Laplacian *)
  | Iterative of Linalg.Sparse.t

type t = {
  die : Geometry.Rect.t;
  m : int; (* nodes per side *)
  free_index : int array; (* (iy*m + ix) -> free-node index or -1 (pad) *)
  free_nodes : (int * int) array; (* free index -> (ix, iy) *)
  backend : backend;
}

let node_position die m ix iy =
  Geometry.Point.make
    (die.Geometry.Rect.xmin
    +. (Geometry.Rect.width die *. float_of_int ix /. float_of_int (m - 1)))
    (die.Geometry.Rect.ymin
    +. (Geometry.Rect.height die *. float_of_int iy /. float_of_int (m - 1)))

let default_pads die =
  let c = Geometry.Rect.center die in
  Array.append (Geometry.Rect.corners die) [| c |]

let create ?(nodes_per_side = 20) ?(edge_conductance = 2.0) ?pads ?solver die =
  if nodes_per_side < 2 then invalid_arg "Grid.create: nodes_per_side must be >= 2";
  if edge_conductance <= 0.0 then
    invalid_arg "Grid.create: edge_conductance must be positive";
  let m = nodes_per_side in
  let pads = match pads with Some p -> p | None -> default_pads die in
  (* snap pads to nodes *)
  let is_pad = Array.make (m * m) false in
  Array.iter
    (fun (p : Geometry.Point.t) ->
      let fx = (p.x -. die.Geometry.Rect.xmin) /. Geometry.Rect.width die in
      let fy = (p.y -. die.Geometry.Rect.ymin) /. Geometry.Rect.height die in
      let ix = max 0 (min (m - 1) (int_of_float ((fx *. float_of_int (m - 1)) +. 0.5))) in
      let iy = max 0 (min (m - 1) (int_of_float ((fy *. float_of_int (m - 1)) +. 0.5))) in
      is_pad.((iy * m) + ix) <- true)
    pads;
  let free_index = Array.make (m * m) (-1) in
  let free_nodes = ref [] in
  let count = ref 0 in
  for iy = 0 to m - 1 do
    for ix = 0 to m - 1 do
      let id = (iy * m) + ix in
      if not is_pad.(id) then begin
        free_index.(id) <- !count;
        free_nodes := (ix, iy) :: !free_nodes;
        incr count
      end
    done
  done;
  let n = !count in
  if n = 0 then invalid_arg "Grid.create: pads cover every node";
  let free_nodes = Array.of_list (List.rev !free_nodes) in
  (* reduced Laplacian as triplets: pads act as grounded boundary *)
  let triplets = ref [] in
  for iy = 0 to m - 1 do
    for ix = 0 to m - 1 do
      let a = (iy * m) + ix in
      let neighbors =
        List.filter
          (fun (jx, jy) -> jx >= 0 && jx < m && jy >= 0 && jy < m)
          [ (ix + 1, iy); (ix, iy + 1) ]
      in
      List.iter
        (fun (jx, jy) ->
          let b = (jy * m) + jx in
          let fa = free_index.(a) and fb = free_index.(b) in
          (* each edge adds conductance to both endpoint diagonals and
             couples free endpoints *)
          if fa >= 0 then triplets := (fa, fa, edge_conductance) :: !triplets;
          if fb >= 0 then triplets := (fb, fb, edge_conductance) :: !triplets;
          if fa >= 0 && fb >= 0 then
            triplets :=
              (fa, fb, -.edge_conductance) :: (fb, fa, -.edge_conductance)
              :: !triplets)
        neighbors
    done
  done;
  let sparse = Linalg.Sparse.of_triplets ~n !triplets in
  let solver =
    match solver with Some s -> s | None -> if n <= 1500 then Dense else Cg
  in
  let backend =
    match solver with
    | Dense -> Factored (Linalg.Cholesky.factor_lower (Linalg.Sparse.to_dense sparse))
    | Cg -> Iterative sparse
  in
  { die; m; free_index; free_nodes; backend }

let node_count t = Array.length t.free_nodes

let node_location t i =
  let ix, iy = t.free_nodes.(i) in
  node_position t.die t.m ix iy

let nearest_node t (p : Geometry.Point.t) =
  let m = t.m in
  let fx = (p.x -. t.die.Geometry.Rect.xmin) /. Geometry.Rect.width t.die in
  let fy = (p.y -. t.die.Geometry.Rect.ymin) /. Geometry.Rect.height t.die in
  let ix = max 0 (min (m - 1) (int_of_float ((fx *. float_of_int (m - 1)) +. 0.5))) in
  let iy = max 0 (min (m - 1) (int_of_float ((fy *. float_of_int (m - 1)) +. 0.5))) in
  let f = t.free_index.((iy * m) + ix) in
  if f >= 0 then Some f else None

let solve t ~currents =
  if Array.length currents <> node_count t then
    invalid_arg "Grid.solve: current vector length mismatch";
  match t.backend with
  | Factored l -> Linalg.Cholesky.solve l currents
  | Iterative a -> fst (Linalg.Cg.solve ~tol:1e-10 a currents)

let max_drop t ~currents =
  Array.fold_left Float.max neg_infinity (solve t ~currents)
