(** Resistive power-distribution grid over the die — the substrate for the
    variational power-grid analysis of [Ferzli & Najm, TCAD'06], the second
    CAD application the paper's introduction motivates for random-field
    variation models.

    The grid is an [m x m] node mesh spanning the die, with uniform edge
    conductance. Pad nodes (Vdd connections) are held at zero IR drop;
    gates inject their (leakage) currents at the nearest grid node. The
    reduced conductance Laplacian is SPD and factored once; each current
    assignment then costs two triangular solves. *)

type t

type solver =
  | Dense  (** dense Cholesky: factor once, O(n²) per solve — best for small grids *)
  | Cg  (** sparse Jacobi-preconditioned CG: O(nnz·iters) per solve, O(nnz) memory —
            scales to 100x100+ grids *)

val create :
  ?nodes_per_side:int ->
  ?edge_conductance:float ->
  ?pads:Geometry.Point.t array ->
  ?solver:solver ->
  Geometry.Rect.t ->
  t
(** [create die] builds the grid ([nodes_per_side] default 20,
    [edge_conductance] default 2.0 S, [pads] default: the four die corners
    and the center; [solver] defaults to [Dense] up to 1500 free nodes and
    [Cg] above). Pad locations snap to their nearest node. Raises
    [Invalid_argument] for degenerate sizes or when pads cover every node. *)

val node_count : t -> int
(** Number of {e free} (non-pad) nodes. *)

val nearest_node : t -> Geometry.Point.t -> int option
(** Free-node index nearest to a die location ([None] if the nearest grid
    node is a pad). *)

val solve : t -> currents:float array -> float array
(** [solve t ~currents] returns the IR drop (volts below Vdd) at every free
    node for the given per-free-node current injections (amps). Raises
    [Invalid_argument] on length mismatch. *)

val max_drop : t -> currents:float array -> float
(** Largest IR drop over the grid for the given injections. *)

val node_location : t -> int -> Geometry.Point.t
(** Die location of a free node. *)
