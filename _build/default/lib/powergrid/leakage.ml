type model = {
  i0 : float;
  a : float array;
}

let default = { i0 = 50e-9; a = [| -0.4; 0.25; -0.9; -0.3 |] }

let current model ~params =
  if Array.length params <> Array.length model.a then
    invalid_arg "Leakage.current: parameter count mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun k ak -> acc := !acc +. (ak *. params.(k))) model.a;
  model.i0 *. exp !acc

let currents_of_blocks model ~blocks ~sample =
  if Array.length blocks <> Array.length model.a then
    invalid_arg "Leakage.currents_of_blocks: block count mismatch";
  let n = Linalg.Mat.cols blocks.(0) in
  Array.init n (fun g ->
      let acc = ref 0.0 in
      Array.iteri
        (fun k ak -> acc := !acc +. (ak *. Linalg.Mat.unsafe_get blocks.(k) sample g))
        model.a;
      model.i0 *. exp !acc)

let mean_current model =
  let acc = ref 0.0 in
  Array.iter (fun ak -> acc := !acc +. (ak *. ak)) model.a;
  model.i0 *. exp (0.5 *. !acc)
