(** Per-gate leakage current under process variation.

    Subthreshold leakage is {e exponential} in the device parameters
    (dominantly Vt), so the resulting IR-drop statistics are non-Gaussian —
    a deliberately harder test of the KLE field model than linear timing:

    [I = i0 · exp(a_L·L + a_W·W + a_Vt·Vt + a_tox·tox)]

    with the normalized (sigma-unit) parameters of this library and
    log-sensitivities [a] at 90 nm-plausible magnitudes (Vt dominates,
    negatively: higher threshold leaks less). *)

type model = {
  i0 : float; (* nominal leakage per gate, amps *)
  a : float array; (* log-sensitivities to (L, W, Vt, tox) *)
}

val default : model
(** i0 = 50 nA, a = [-0.4; 0.25; -0.9; -0.3]. *)

val current : model -> params:float array -> float
(** Leakage of one gate at the given normalized parameter values. *)

val currents_of_blocks :
  model ->
  blocks:Linalg.Mat.t array ->
  sample:int ->
  float array
(** Per-gate leakage for Monte Carlo sample row [sample] of the 4 parameter
    blocks (as produced by the {!Ssta} samplers). *)

val mean_current : model -> float
(** Analytic E[I] over standard-normal parameters:
    [i0·exp(Σ a_k²/2)] (lognormal mean) — used to validate sampling. *)
