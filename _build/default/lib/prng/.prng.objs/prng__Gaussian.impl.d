lib/prng/gaussian.ml: Array Linalg Rng
