lib/prng/gaussian.mli: Linalg Rng
