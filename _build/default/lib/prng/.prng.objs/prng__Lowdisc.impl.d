lib/prng/lowdisc.ml: Array Float Linalg Rng Specfun
