lib/prng/lowdisc.mli: Linalg Rng
