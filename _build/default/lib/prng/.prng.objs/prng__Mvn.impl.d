lib/prng/mvn.ml: Array Bigarray Gaussian Linalg
