lib/prng/mvn.mli: Linalg Rng
