lib/prng/rng.mli:
