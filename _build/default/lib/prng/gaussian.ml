(* Marsaglia polar method. One spare value could be cached per pair, but a
   stateless draw keeps the generator stream position predictable enough for
   testing; the pair's second value is simply used to fill arrays faster. *)

let rec pair rng =
  let u = (2.0 *. Rng.uniform rng) -. 1.0 in
  let v = (2.0 *. Rng.uniform rng) -. 1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || s = 0.0 then pair rng
  else begin
    let m = sqrt (-2.0 *. log s /. s) in
    (u *. m, v *. m)
  end

let draw rng = fst (pair rng)

let fill rng a =
  let n = Array.length a in
  let i = ref 0 in
  while !i < n do
    let x, y = pair rng in
    a.(!i) <- x;
    incr i;
    if !i < n then begin
      a.(!i) <- y;
      incr i
    end
  done

let vector rng n =
  let a = Array.make n 0.0 in
  fill rng a;
  a

let matrix rng ~rows ~cols =
  let m = Linalg.Mat.create rows cols in
  let buf = Array.make cols 0.0 in
  for i = 0 to rows - 1 do
    fill rng buf;
    Linalg.Mat.set_row m i buf
  done;
  m
