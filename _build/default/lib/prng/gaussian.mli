(** Standard-normal sampling, the [RandNormal] primitive of the paper's
    Algorithms 1 and 2. *)

val draw : Rng.t -> float
(** One N(0,1) sample (Marsaglia polar method; note the generator state
    advances by a variable number of steps due to rejection). *)

val fill : Rng.t -> float array -> unit
(** Fill an array with independent N(0,1) samples. *)

val vector : Rng.t -> int -> float array
(** [vector rng n] is a fresh array of [n] independent N(0,1) samples. *)

val matrix : Rng.t -> rows:int -> cols:int -> Linalg.Mat.t
(** [matrix rng ~rows ~cols] is the [RandNormal(rows, cols)] of the paper:
    a matrix of independent N(0,1) entries. *)
