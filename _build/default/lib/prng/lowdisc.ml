type t = {
  bases : int array;
  shift : float array;
  perms : int array array; (* per dimension: digit permutation, fixing 0 *)
  mutable index : int;
}

let primes n =
  if n <= 0 then invalid_arg "Lowdisc.primes: n must be positive";
  let out = Array.make n 0 in
  let count = ref 0 in
  let candidate = ref 2 in
  while !count < n do
    let c = !candidate in
    let rec is_prime i =
      if out.(i) * out.(i) > c then true
      else if c mod out.(i) = 0 then false
      else is_prime (i + 1)
    in
    if !count = 0 || is_prime 0 then begin
      out.(!count) <- c;
      incr count
    end;
    incr candidate
  done;
  out

let create ?shift_rng ~dim () =
  if dim < 1 || dim > 1000 then invalid_arg "Lowdisc.create: dim must be in [1, 1000]";
  let bases = primes dim in
  let shift, perms =
    match shift_rng with
    | None ->
        ( Array.make dim 0.0,
          Array.map (fun b -> Array.init b (fun d -> d)) bases )
    | Some rng ->
        (* digit scrambling: a random permutation of the non-zero digits per
           base (0 stays fixed so finite expansions stay finite). Plain
           Cranley-Patterson shifts do NOT break the notorious cross-
           dimension ramp correlations of high-prime Halton dimensions;
           digit permutation does. *)
        ( Array.init dim (fun _ -> Rng.uniform rng),
          Array.map
            (fun b ->
              let tail = Array.init (b - 1) (fun d -> d + 1) in
              Rng.shuffle_in_place rng tail;
              Array.append [| 0 |] tail)
            bases )
  in
  { bases; shift; perms; index = 0 }

let dim t = Array.length t.bases

(* scrambled van der Corput radical inverse of [i] in base [b] *)
let radical_inverse perm b i =
  let bf = float_of_int b in
  let rec go i f acc =
    if i = 0 then acc
    else go (i / b) (f /. bf) (acc +. (f *. float_of_int perm.(i mod b)))
  in
  go i (1.0 /. bf) 0.0

let next_uniform t =
  t.index <- t.index + 1;
  let i = t.index in
  Array.mapi
    (fun k b ->
      let v = radical_inverse t.perms.(k) b i +. t.shift.(k) in
      let v = v -. Float.of_int (int_of_float v) in
      (* guard the open upper end *)
      Float.min v (1.0 -. 1e-15))
    t.bases

let next_normal t =
  let u = next_uniform t in
  Array.map (fun v -> Specfun.Erf.normal_quantile (Float.max 1e-15 v)) u

let normal_matrix t ~rows =
  let m = Linalg.Mat.create rows (dim t) in
  for i = 0 to rows - 1 do
    Linalg.Mat.set_row m i (next_normal t)
  done;
  m
