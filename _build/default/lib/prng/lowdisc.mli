(** Low-discrepancy (quasi-Monte Carlo) sequences.

    A dividend of the KLE's dimension reduction: with thousands of
    correlated per-gate RVs, QMC is hopeless, but in the reduced [r ~ 25]
    dimensional KLE space a Halton sequence gives the Monte Carlo SSTA
    near-O(1/N) convergence on smooth statistics instead of O(1/√N).

    The generator is a {e randomized} Halton sequence: van der Corput radical
    inverses in the first [dim] prime bases, with a Cranley-Patterson random
    shift (mod 1) drawn from an {!Rng.t} so that estimates stay unbiased and
    can be replicated for error estimation. *)

type t

val create : ?shift_rng:Rng.t -> dim:int -> unit -> t
(** [create ~dim ()] starts a sequence in [dim] dimensions (1 to 1000).
    Without [shift_rng] the raw (deterministic, unshifted) Halton points are
    produced. Raises [Invalid_argument] for out-of-range [dim]. *)

val dim : t -> int

val next_uniform : t -> float array
(** Next point in [0, 1)^dim (skips the index-0 all-zeros point). *)

val next_normal : t -> float array
(** Next point mapped through the inverse normal CDF, componentwise. *)

val normal_matrix : t -> rows:int -> Linalg.Mat.t
(** [rows] successive {!next_normal} points as matrix rows — a drop-in
    replacement for [Gaussian.matrix] in samplers. *)

val primes : int -> int array
(** First [n] primes (exposed for tests). *)
