type t = { upper : Linalg.Mat.t; jitter : float }

let of_covariance k =
  let lower, jitter = Linalg.Cholesky.factor_jittered k in
  { upper = Linalg.Mat.transpose lower; jitter }

let jitter_used t = t.jitter

let dim t = Linalg.Mat.rows t.upper

let sample t rng =
  let n = dim t in
  let z = Gaussian.vector rng n in
  (* x = z · U, accumulating row-wise (x += z_i * U[i, i:]) so the inner loop
     streams over contiguous memory; raw buffer access keeps the O(n²) loop
     free of cross-module accessor calls *)
  let u = Linalg.Mat.raw t.upper in
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let zi = Array.unsafe_get z i in
    let row = i * n in
    for j = i to n - 1 do
      Array.unsafe_set x j
        (Array.unsafe_get x j +. (zi *. Bigarray.Array1.unsafe_get u (row + j)))
    done
  done;
  x

let sample_matrix t rng ~n =
  let d = dim t in
  let m = Linalg.Mat.create n d in
  for i = 0 to n - 1 do
    Linalg.Mat.set_row m i (sample t rng)
  done;
  m
