(** Correlated multivariate-normal sampling through a Cholesky factor — the
    sample-generation core of the paper's Algorithm 1. *)

type t
(** A prepared sampler holding the upper Cholesky factor of the target
    covariance. *)

val of_covariance : Linalg.Mat.t -> t
(** [of_covariance k] factors the covariance matrix [k] (with automatic
    diagonal jitter for semi-definite inputs). Raises
    [Linalg.Cholesky.Not_positive_definite] when [k] is indefinite. *)

val jitter_used : t -> float
(** Diagonal jitter added during factorization (0 when none). *)

val dim : t -> int

val sample : t -> Rng.t -> float array
(** One correlated sample [z · U] with [z] standard normal. *)

val sample_matrix : t -> Rng.t -> n:int -> Linalg.Mat.t
(** [sample_matrix t rng ~n] is the paper's
    [RandNormal(N, N_p) · U]: [n] correlated rows. *)
