lib/specfun/bessel.ml: Array Float Printf
