lib/specfun/bessel.mli:
