lib/specfun/erf.ml: Array Float Gamma
