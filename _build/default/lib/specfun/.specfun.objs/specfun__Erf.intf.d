lib/specfun/erf.mli:
