lib/specfun/gamma.ml: Array Float
