lib/specfun/gamma.mli:
