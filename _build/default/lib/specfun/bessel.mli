(** Modified Bessel functions of the second kind K_ν, the engine of the
    Matérn correlation kernels that [Xiong et al., TCAD'07] extract from
    silicon measurements (the paper's eq. (6)). *)

val k0 : float -> float
(** [k0 x] for [x > 0] (polynomial approximations, ~1e-7 relative). *)

val k1 : float -> float
(** [k1 x] for [x > 0]. *)

val kn : int -> float -> float
(** [kn n x] for integer order [n >= 0] by upward recurrence. *)

val i0 : float -> float
(** Modified Bessel I_0, used by the K_0/K_1 small-argument formulas and by
    validity cross-checks. *)

val i1 : float -> float

val k : float -> float -> float
(** [k nu x] is K_ν(x) for real order [nu >= 0] and [x > 0]. Integer and
    half-integer orders dispatch to closed forms; general real orders use
    adaptive Simpson quadrature on the integral representation
    K_ν(x) = ∫₀^∞ exp(-x cosh t) cosh(νt) dt (~1e-10 relative).
    Raises [Invalid_argument] for [x <= 0] or [nu < 0]. *)
