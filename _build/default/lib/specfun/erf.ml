(* erf via the regularized incomplete gamma: erf x = P(1/2, x²) for x >= 0.
   This inherits the ~1e-15 accuracy of the series/continued fraction. *)

let erf x =
  if x = 0.0 then 0.0
  else begin
    let v = Gamma.gamma_p 0.5 (x *. x) in
    if x > 0.0 then v else -.v
  end

let erfc x =
  if x >= 0.0 then Gamma.gamma_q 0.5 (x *. x) else 2.0 -. Gamma.gamma_q 0.5 (x *. x)

let sqrt2 = sqrt 2.0

let normal_cdf ?(mu = 0.0) ?(sigma = 1.0) x =
  if sigma <= 0.0 then invalid_arg "Erf.normal_cdf: sigma must be positive";
  0.5 *. erfc (-.(x -. mu) /. (sigma *. sqrt2))

(* Acklam's inverse normal CDF approximation (~1.15e-9 relative error). *)
let acklam p =
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  if p < p_low then begin
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end
  else if p <= 1.0 -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
  end
  else begin
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
       /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0))
  end

let normal_quantile ?(mu = 0.0) ?(sigma = 1.0) p =
  if sigma <= 0.0 then invalid_arg "Erf.normal_quantile: sigma must be positive";
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Erf.normal_quantile: requires 0 < p < 1";
  let x = acklam p in
  (* one Halley refinement step against the exact CDF *)
  let e = (0.5 *. erfc (-.x /. sqrt2)) -. p in
  let u = e *. sqrt (2.0 *. Float.pi) *. exp (x *. x /. 2.0) in
  let x = x -. (u /. (1.0 +. (x *. u /. 2.0))) in
  mu +. (sigma *. x)
