(** Error function and the Gaussian distribution functions built on it.
    The SSTA harness uses these for sanity checks on sampled delay
    distributions and for confidence intervals on Monte Carlo estimates. *)

val erf : float -> float
(** [erf x], accurate to ~1e-15 (via the regularized incomplete gamma). *)

val erfc : float -> float
(** [erfc x] = 1 - erf x, computed without cancellation for large [x]. *)

val normal_cdf : ?mu:float -> ?sigma:float -> float -> float
(** Gaussian CDF Φ((x-mu)/sigma); defaults mu = 0, sigma = 1. *)

val normal_quantile : ?mu:float -> ?sigma:float -> float -> float
(** Inverse Gaussian CDF (Acklam's rational approximation refined by one
    Halley step, ~1e-15). Raises [Invalid_argument] unless 0 < p < 1. *)
