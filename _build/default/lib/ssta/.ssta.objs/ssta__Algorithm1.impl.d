lib/ssta/algorithm1.ml: Array Kernels List Prng Process Util
