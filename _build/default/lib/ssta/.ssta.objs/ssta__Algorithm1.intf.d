lib/ssta/algorithm1.mli: Geometry Linalg Prng Process
