lib/ssta/algorithm2.ml: Array Geometry Kernels Kle List Process Util
