lib/ssta/algorithm2.mli: Geometry Kle Linalg Prng Process
