lib/ssta/block_ssta.ml: Array Canonical Circuit Experiment Float Kle Linalg Prng Sta Util
