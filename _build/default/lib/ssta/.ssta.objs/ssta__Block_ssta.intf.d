lib/ssta/block_ssta.mli: Canonical Experiment Kle
