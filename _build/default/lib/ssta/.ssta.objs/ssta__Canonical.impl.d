lib/ssta/canonical.ml: Array Float List Specfun
