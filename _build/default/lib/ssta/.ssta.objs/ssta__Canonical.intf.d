lib/ssta/canonical.mli:
