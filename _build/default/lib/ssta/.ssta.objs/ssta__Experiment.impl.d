lib/ssta/experiment.ml: Array Bigarray Circuit Float Geometry Linalg Prng Seq Sta Stats Util
