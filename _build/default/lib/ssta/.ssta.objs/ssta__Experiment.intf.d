lib/ssta/experiment.mli: Circuit Geometry Linalg Prng Sta
