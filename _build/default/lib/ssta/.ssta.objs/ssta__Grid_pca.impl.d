lib/ssta/grid_pca.ml: Array Float Geometry Kernels Linalg List Prng Process Util
