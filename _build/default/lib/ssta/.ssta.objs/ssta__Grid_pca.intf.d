lib/ssta/grid_pca.mli: Geometry Linalg Prng Process
