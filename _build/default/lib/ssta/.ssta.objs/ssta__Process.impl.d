lib/ssta/process.ml: Array Circuit Kernels Printf
