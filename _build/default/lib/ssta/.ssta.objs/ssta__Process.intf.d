lib/ssta/process.mli: Kernels
