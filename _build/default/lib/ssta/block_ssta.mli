(** Block-based (single-pass) statistical static timing on the KLE basis —
    the Chang-Sapatnekar-style [5] consumer of the paper's random-field
    model: instead of N Monte Carlo timing passes, arrival times are
    propagated {e once} as first-order canonical forms over the shared
    [4 x r] KLE random variables, with Clark's max at merge points.

    Approximations (all standard for first-order block SSTA):
    - gate delays are linearized around the nominal corner (slews and wire
      loads fixed at their nominal-analysis values);
    - the rank-one quadratic term of the gate model contributes its exact
      mean shift [γ (wᵀ diag(var) w)] and, in variance, a small independent
      remainder;
    - max re-Gaussianizes (Clark's moment matching). *)

type t = {
  basis_dim : int; (* 4 * r *)
  worst : Canonical.t; (* canonical form of the worst endpoint arrival *)
  endpoint_forms : Canonical.t array; (* per Sta.Timing endpoint *)
  analysis_seconds : float;
}

val run : Experiment.circuit_setup -> models:Kle.Model.t array -> t
(** [run setup ~models] performs the single-pass statistical timing using
    the per-parameter truncated KLE models (one per L, W, Vt, tox, as built
    by {!Algorithm2.prepare}). Raises [Invalid_argument] unless exactly 4
    models are given. *)

val mean : t -> float
val sigma : t -> float

val quantile : t -> float -> float
(** Gaussian quantile of the worst-delay form (e.g. 0.9987 = +3σ corner). *)

val criticalities : ?samples:int -> ?seed:int -> t -> float array
(** Per-endpoint criticality: the probability that each endpoint is the one
    setting the circuit's worst delay, estimated by sampling the endpoint
    canonical forms on a common basis draw ([samples] defaults to 20000).
    Sums to 1 (ties broken toward the lower index). A classic block-SSTA
    diagnostic: which outputs deserve optimization effort. *)

val validate_against_mc :
  t -> reference:Experiment.mc_result -> float * float
(** [(e_mu_pct, e_sigma_pct)] of the worst-delay form vs a Monte Carlo
    reference. *)
