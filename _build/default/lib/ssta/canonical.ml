type t = {
  mean : float;
  sens : float array;
  indep : float;
}

let dim t = Array.length t.sens

let constant ~dim v = { mean = v; sens = Array.make dim 0.0; indep = 0.0 }

let make ~mean ~sens ~indep =
  if indep < 0.0 then invalid_arg "Canonical.make: negative independent sigma";
  { mean; sens; indep }

let check_dims a b =
  if dim a <> dim b then invalid_arg "Canonical: basis dimension mismatch"

let add a b =
  check_dims a b;
  {
    mean = a.mean +. b.mean;
    sens = Array.init (dim a) (fun i -> a.sens.(i) +. b.sens.(i));
    indep = sqrt ((a.indep *. a.indep) +. (b.indep *. b.indep));
  }

let add_constant a c = { a with mean = a.mean +. c }

let scale s a =
  {
    mean = s *. a.mean;
    sens = Array.map (fun v -> s *. v) a.sens;
    indep = Float.abs s *. a.indep;
  }

let variance t =
  let acc = ref (t.indep *. t.indep) in
  Array.iter (fun s -> acc := !acc +. (s *. s)) t.sens;
  !acc

let sigma t = sqrt (variance t)

let covariance a b =
  check_dims a b;
  let acc = ref 0.0 in
  for i = 0 to dim a - 1 do
    acc := !acc +. (a.sens.(i) *. b.sens.(i))
  done;
  !acc

let correlation a b =
  let sa = sigma a and sb = sigma b in
  if sa < 1e-300 || sb < 1e-300 then 0.0 else covariance a b /. (sa *. sb)

let normal_pdf x = exp (-0.5 *. x *. x) /. sqrt (2.0 *. Float.pi)

let max_clark a b =
  check_dims a b;
  let va = variance a and vb = variance b in
  let cov = covariance a b in
  let theta2 = va +. vb -. (2.0 *. cov) in
  if theta2 <= 1e-24 then begin
    (* (near-)perfectly tracking forms: max is just the larger-mean one *)
    if a.mean >= b.mean then a else b
  end
  else begin
    let theta = sqrt theta2 in
    let alpha = (a.mean -. b.mean) /. theta in
    let phi_a = Specfun.Erf.normal_cdf alpha in
    let phi_b = 1.0 -. phi_a in
    let pdf = normal_pdf alpha in
    let mean =
      (a.mean *. phi_a) +. (b.mean *. phi_b) +. (theta *. pdf)
    in
    let second_moment =
      (((a.mean *. a.mean) +. va) *. phi_a)
      +. (((b.mean *. b.mean) +. vb) *. phi_b)
      +. ((a.mean +. b.mean) *. theta *. pdf)
    in
    let var_max = Float.max 0.0 (second_moment -. (mean *. mean)) in
    (* tightness-weighted sensitivities preserve covariances with the basis:
       Cov(max, xi_i) = phi_a Cov(a, xi_i) + phi_b Cov(b, xi_i) *)
    let sens =
      Array.init (dim a) (fun i -> (phi_a *. a.sens.(i)) +. (phi_b *. b.sens.(i)))
    in
    let shared = Array.fold_left (fun acc s -> acc +. (s *. s)) 0.0 sens in
    let indep = sqrt (Float.max 0.0 (var_max -. shared)) in
    { mean; sens; indep }
  end

let max_many = function
  | [] -> invalid_arg "Canonical.max_many: empty list"
  | x :: rest -> List.fold_left max_clark x rest

let eval t ~xi ~local =
  if Array.length xi <> dim t then invalid_arg "Canonical.eval: dimension mismatch";
  let acc = ref (t.mean +. (t.indep *. local)) in
  for i = 0 to dim t - 1 do
    acc := !acc +. (t.sens.(i) *. xi.(i))
  done;
  !acc

let quantile t p = Specfun.Erf.normal_quantile ~mu:t.mean ~sigma:(Float.max 1e-300 (sigma t)) p
