(** First-order canonical timing forms over a shared Gaussian basis — the
    representation used by block-based SSTA engines (Visweswariah et al.,
    DAC'04 [6]; Chang & Sapatnekar, DAC'05 [5]), which is exactly the class
    of tools the paper's KLE feeds: the shared basis here is the [4 x r]
    independent N(0,1) KLE variables (r per process parameter).

    A form is [value = mean + Σ_i sens_i ξ_i + indep·ξ_local] with [ξ_i] the
    shared global RVs and [ξ_local] a fresh independent N(0,1) per form.

    [max] uses Clark's moment matching (Clark, 1961): the exact first two
    moments of the max of two jointly Gaussian variables, with tightness-
    weighted sensitivities and the variance remainder pushed into the
    independent term. *)

type t = {
  mean : float;
  sens : float array; (* sensitivities to the shared basis *)
  indep : float; (* sigma of the form-local independent term, >= 0 *)
}

val dim : t -> int

val constant : dim:int -> float -> t
(** Deterministic value. *)

val make : mean:float -> sens:float array -> indep:float -> t
(** Raises [Invalid_argument] for negative [indep]. *)

val add : t -> t -> t
(** Sum of two forms ({e independent} local terms: they RSS-combine).
    Raises [Invalid_argument] on basis-dimension mismatch. *)

val add_constant : t -> float -> t

val scale : float -> t -> t

val variance : t -> float
val sigma : t -> float

val covariance : t -> t -> float
(** Covariance through the shared basis only (local terms never correlate
    across forms). *)

val correlation : t -> t -> float

val max_clark : t -> t -> t
(** Statistical max by Clark's moment matching. Falls back to the
    stochastically dominant input when the two forms are (nearly) perfectly
    correlated with equal variance. The result matches the exact mean and
    variance of [max(a, b)]; its distribution is re-Gaussianized (the
    standard block-SSTA approximation). *)

val max_many : t list -> t
(** Left fold of {!max_clark}; raises [Invalid_argument] on []. *)

val eval : t -> xi:float array -> local:float -> float
(** Realize the form at a concrete basis sample (for MC cross-validation).
    [local] is the N(0,1) draw for the independent term. *)

val quantile : t -> float -> float
(** Gaussian quantile of the form's marginal (e.g. 0.9987 for +3 sigma). *)
