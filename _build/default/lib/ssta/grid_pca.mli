(** Grid-based spatial correlation model with PCA (paper Section 2.1; the
    [Chang & Sapatnekar, DAC'05] baseline the random-field model replaces).

    The die is divided into a regular [g x g] grid; each cell gets one
    random variable; the cell-center covariance matrix (taken from the same
    kernel, so the comparison isolates the {e model}, not the data) is
    decomposed by PCA and truncated to [r] components. Gates map to their
    containing cell. This exists as a baseline for the ablation benches —
    it is exactly the ad-hoc construction the paper argues against. *)

type t

val prepare :
  ?grid:int ->
  ?r:int ->
  Process.t ->
  Geometry.Point.t array ->
  t
(** [prepare process locations] builds the model ([grid] defaults to 8, [r]
    defaults to all [g²] components). Raises [Invalid_argument] for
    [r > g²] or non-positive sizes. *)

val setup_seconds : t -> float
val r : t -> int
val cell_of_location : t -> int -> int
(** Grid-cell index backing each location. *)

val explained_variance_fraction : t -> float
(** Fraction of total grid-cell variance captured by the retained
    components. *)

val sample_block : t -> Prng.Rng.t -> n:int -> Linalg.Mat.t array
(** Same contract as {!Algorithm1.sample_block}. *)
