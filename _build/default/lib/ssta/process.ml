type parameter = {
  name : string;
  kernel : Kernels.Kernel.t;
}

type t = { parameters : parameter array }

let paper_default () =
  let kernel = Kernels.Fit.paper_gaussian () in
  {
    parameters =
      Array.map
        (fun name -> { name; kernel })
        Circuit.Gate.parameter_names;
  }

let distinct_kernels () =
  let cs = [| 2.8; 3.5; 2.2; 4.0 |] in
  {
    parameters =
      Array.mapi
        (fun i name -> { name; kernel = Kernels.Kernel.Gaussian { c = cs.(i) } })
        Circuit.Gate.parameter_names;
  }

let num_parameters t = Array.length t.parameters

let validate t =
  if num_parameters t <> Circuit.Gate.num_parameters then
    Error
      (Printf.sprintf "expected %d parameters, got %d" Circuit.Gate.num_parameters
         (num_parameters t))
  else begin
    let rec check i =
      if i >= num_parameters t then Ok ()
      else begin
        match Kernels.Kernel.validate t.parameters.(i).kernel with
        | Ok () -> check (i + 1)
        | Error e -> Error (t.parameters.(i).name ^ ": " ^ e)
      end
    in
    check 0
  end
