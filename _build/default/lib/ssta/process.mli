(** Process-variation specification: one spatial correlation kernel per
    statistical device parameter (paper Section 5.1: L, W, Vt, tox, assumed
    mutually independent, each normalized to zero mean / unit sigma). *)

type parameter = {
  name : string;
  kernel : Kernels.Kernel.t;
}

type t = { parameters : parameter array }

val paper_default : unit -> t
(** The paper's setup: all four parameters carry the Gaussian kernel
    calibrated against the half-chip-length linear cone
    ({!Kernels.Fit.paper_gaussian}). *)

val distinct_kernels : unit -> t
(** A stress variant where each parameter has its own correlation length
    (exercises the per-parameter loops of both algorithms without kernel
    reuse). *)

val num_parameters : t -> int

val validate : t -> (unit, string) result
(** All kernels must pass {!Kernels.Kernel.validate} and the parameter count
    must match {!Circuit.Gate.num_parameters}. *)
