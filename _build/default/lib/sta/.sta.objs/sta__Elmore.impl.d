lib/sta/elmore.ml: Array
