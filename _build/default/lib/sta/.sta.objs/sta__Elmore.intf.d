lib/sta/elmore.mli:
