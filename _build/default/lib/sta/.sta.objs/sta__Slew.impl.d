lib/sta/slew.ml:
