lib/sta/slew.mli:
