lib/sta/timing.ml: Array Circuit Float Slew
