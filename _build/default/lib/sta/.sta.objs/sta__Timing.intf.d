lib/sta/timing.mli: Circuit
