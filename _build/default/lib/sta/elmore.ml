let star_delay ~r_drive ~r_wire ~c_wire ~c_sink ~c_total =
  if r_drive < 0.0 || r_wire < 0.0 || c_wire < 0.0 || c_sink < 0.0 || c_total < 0.0
  then invalid_arg "Elmore.star_delay: negative RC element";
  (r_drive *. c_total) +. (r_wire *. ((0.5 *. c_wire) +. c_sink))

let rc_ladder_delays ~r ~c =
  let n = Array.length r in
  if Array.length c <> n then invalid_arg "Elmore.rc_ladder_delays: length mismatch";
  (* downstream capacitance below each resistor *)
  let c_down = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = n - 1 downto 0 do
    acc := !acc +. c.(i);
    c_down.(i) <- !acc
  done;
  let delays = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (r.(i) *. c_down.(i));
    delays.(i) <- !acc
  done;
  delays
