(** Elmore delay for RC interconnect [Rubenstein et al., paper ref. 19].

    Nets are modeled as a lumped star: the driver resistance feeds the whole
    net capacitance, and the distributed wire adds half its own capacitance
    plus each sink's pin capacitance downstream of the (shared) wire
    resistance. Units: kΩ, fF → ps. *)

val star_delay :
  r_drive:float -> r_wire:float -> c_wire:float -> c_sink:float -> c_total:float -> float
(** [star_delay ~r_drive ~r_wire ~c_wire ~c_sink ~c_total] is the Elmore
    delay from the driver to one sink:
    [r_drive * c_total + r_wire * (c_wire / 2 + c_sink)].
    All inputs must be non-negative. *)

val rc_ladder_delays : r:float array -> c:float array -> float array
(** Elmore delays to every node of a general RC ladder: node [i] hangs below
    resistance [r.(i)] (connecting node [i-1] to node [i], with node -1 the
    driver) and carries capacitance [c.(i)]. Returns the per-node Elmore
    delays [Σ_k r_k · C_downstream(k)]. Exposed for model validation tests
    against hand-computed ladders. *)
