let ln9 = log 9.0

let bakoglu_wire_slew ~elmore_ps =
  if elmore_ps < 0.0 then invalid_arg "Slew.bakoglu_wire_slew: negative delay";
  ln9 *. elmore_ps

let peri ~slew_in ~wire_slew =
  sqrt ((slew_in *. slew_in) +. (wire_slew *. wire_slew))

let sink_slew ~slew_driver ~wire_elmore_ps =
  peri ~slew_in:slew_driver ~wire_slew:(bakoglu_wire_slew ~elmore_ps:wire_elmore_ps)
