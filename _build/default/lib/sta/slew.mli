(** Wire slew propagation: PERI [Kashyap et al., paper ref. 20] with the
    Bakoglu wire slew metric [ref. 21].

    PERI (Propagation of Effective Ramps for Inputs): the slew at a sink is
    [sqrt(slew_driver² + slew_wire²)], where the wire's own step-response
    slew follows Bakoglu's [ln 9 ≈ 2.2] times the wire's Elmore delay. *)

val bakoglu_wire_slew : elmore_ps:float -> float
(** [ln 9 * elmore] — the 10-90% rise time of a distributed RC step
    response. Raises [Invalid_argument] on negative input. *)

val peri : slew_in:float -> wire_slew:float -> float
(** Root-sum-square slew combination. *)

val sink_slew : slew_driver:float -> wire_elmore_ps:float -> float
(** Convenience composition: slew arriving at a sink pin. *)
