module Netlist = Circuit.Netlist
module Gate = Circuit.Gate
module Wireload = Circuit.Wireload

type prepared = {
  wireload : Wireload.t;
  order : int array;
  endpoints : int array;
  c_loads : float array;
}

let default_input_slew_ps = 50.0

let prepare (wireload : Wireload.t) =
  let netlist = wireload.Wireload.placement.Circuit.Placer.netlist in
  let n = Netlist.size netlist in
  {
    wireload;
    order = Netlist.topological_order netlist;
    endpoints = Netlist.endpoints netlist;
    c_loads = Array.init n (Wireload.c_load wireload);
  }

type result = {
  worst_delay : float;
  endpoint_arrivals : float array;
}

(* Core propagation. Writes per-gate output arrival and slew into the given
   scratch arrays and returns them. *)
let propagate p ~l ~w ~vt ~tox =
  let netlist = p.wireload.Wireload.placement.Circuit.Placer.netlist in
  let n = Netlist.size netlist in
  if
    Array.length l <> n || Array.length w <> n || Array.length vt <> n
    || Array.length tox <> n
  then invalid_arg "Sta.run: parameter array length mismatch";
  let arrival = Array.make n 0.0 in
  let slew = Array.make n default_input_slew_ps in
  let params = Array.make Gate.num_parameters 0.0 in
  let set_params g =
    params.(0) <- l.(g);
    params.(1) <- w.(g);
    params.(2) <- vt.(g);
    params.(3) <- tox.(g)
  in
  Array.iter
    (fun g ->
      let gate = netlist.Netlist.gates.(g) in
      let c_load = p.c_loads.(g) in
      set_params g;
      match gate.Netlist.kind with
      | Gate.Input ->
          arrival.(g) <-
            Gate.delay Gate.Input ~slew_in:default_input_slew_ps ~c_load ~params;
          slew.(g) <-
            Gate.output_slew Gate.Input ~slew_in:default_input_slew_ps ~c_load
              ~params
      | Gate.Dff ->
          (* sequential source: launch at clk-to-q, independent of D arrival *)
          arrival.(g) <- Gate.clk_to_q ~params;
          slew.(g) <-
            Gate.output_slew Gate.Dff ~slew_in:default_input_slew_ps ~c_load
              ~params
      | kind ->
          (* latest-arriving input pin determines both delay and slew *)
          let best_arrival = ref neg_infinity in
          let best_slew = ref default_input_slew_ps in
          Array.iter
            (fun f ->
              let load = p.wireload.Wireload.loads.(f) in
              let c_sink = (Gate.timing kind).Gate.c_in in
              let wire_elmore =
                load.Wireload.r_wire *. ((0.5 *. load.Wireload.c_wire) +. c_sink)
              in
              let pin_arrival = arrival.(f) +. wire_elmore in
              if pin_arrival > !best_arrival then begin
                best_arrival := pin_arrival;
                best_slew :=
                  Slew.sink_slew ~slew_driver:slew.(f) ~wire_elmore_ps:wire_elmore
              end)
            gate.Netlist.fanins;
          let slew_in = !best_slew in
          arrival.(g) <-
            !best_arrival +. Gate.delay kind ~slew_in ~c_load ~params;
          slew.(g) <- Gate.output_slew kind ~slew_in ~c_load ~params)
    p.order;
  (arrival, slew)

let run p ~l ~w ~vt ~tox =
  let arrival, _slew = propagate p ~l ~w ~vt ~tox in
  let endpoint_arrivals = Array.map (fun e -> arrival.(e)) p.endpoints in
  let worst_delay = Array.fold_left Float.max neg_infinity endpoint_arrivals in
  { worst_delay; endpoint_arrivals }

let run_nominal p =
  let netlist = p.wireload.Wireload.placement.Circuit.Placer.netlist in
  let n = Netlist.size netlist in
  let zeros = Array.make n 0.0 in
  run p ~l:zeros ~w:zeros ~vt:zeros ~tox:zeros

let arrival_times p ~l ~w ~vt ~tox = fst (propagate p ~l ~w ~vt ~tox)

type slack_report = {
  clock_period : float;
  slacks : float array;
  worst_slack : float;
  critical_path : int array;
}

(* wire Elmore from driver [f] into the input pin of a gate of kind [kind] *)
let pin_wire_elmore p f kind =
  let load = p.wireload.Wireload.loads.(f) in
  load.Wireload.r_wire
  *. ((0.5 *. load.Wireload.c_wire) +. (Gate.timing kind).Gate.c_in)

let slack_report ?clock_period p =
  let netlist = p.wireload.Wireload.placement.Circuit.Placer.netlist in
  let n = Netlist.size netlist in
  let zeros = Array.make n 0.0 in
  let arrival, slew = propagate p ~l:zeros ~w:zeros ~vt:zeros ~tox:zeros in
  ignore slew;
  let worst = Array.fold_left (fun acc e -> Float.max acc arrival.(e)) neg_infinity p.endpoints in
  let clock_period = match clock_period with Some c -> c | None -> worst in
  (* backward pass: required time at each gate OUTPUT *)
  let required = Array.make n infinity in
  Array.iter (fun e -> required.(e) <- Float.min required.(e) clock_period) p.endpoints;
  (* traverse in reverse topological order *)
  for idx = n - 1 downto 0 do
    let g = p.order.(idx) in
    let gate = netlist.Netlist.gates.(g) in
    match gate.Netlist.kind with
    | Gate.Input | Gate.Dff -> ()
    | kind ->
        (* this gate's output requirement constrains each fanin's output:
           required(f) <= required(g) - gate_delay(g) - wire(f -> g) *)
        let gate_delay = arrival.(g) -. (Array.fold_left
          (fun acc f -> Float.max acc (arrival.(f) +. pin_wire_elmore p f kind))
          neg_infinity gate.Netlist.fanins)
        in
        Array.iter
          (fun f ->
            let req_f = required.(g) -. gate_delay -. pin_wire_elmore p f kind in
            if req_f < required.(f) then required.(f) <- req_f)
          gate.Netlist.fanins
  done;
  let slacks = Array.init n (fun g -> required.(g) -. arrival.(g)) in
  (* critical path: walk back from the worst endpoint via latest pins *)
  let worst_endpoint =
    Array.fold_left
      (fun best e -> if arrival.(e) > arrival.(best) then e else best)
      p.endpoints.(0) p.endpoints
  in
  let rec walk g acc =
    let gate = netlist.Netlist.gates.(g) in
    match gate.Netlist.kind with
    | Gate.Input | Gate.Dff -> g :: acc
    | kind ->
        let best = ref gate.Netlist.fanins.(0) in
        let best_t = ref neg_infinity in
        Array.iter
          (fun f ->
            let t = arrival.(f) +. pin_wire_elmore p f kind in
            if t > !best_t then begin
              best_t := t;
              best := f
            end)
          gate.Netlist.fanins;
        walk !best (g :: acc)
  in
  let critical_path = Array.of_list (walk worst_endpoint []) in
  let worst_slack =
    Array.fold_left
      (fun acc e -> Float.min acc slacks.(e))
      infinity p.endpoints
  in
  { clock_period; slacks; worst_slack; critical_path }

let nominal_arrival_and_slew p =
  let netlist = p.wireload.Wireload.placement.Circuit.Placer.netlist in
  let n = Netlist.size netlist in
  let zeros = Array.make n 0.0 in
  propagate p ~l:zeros ~w:zeros ~vt:zeros ~tox:zeros
