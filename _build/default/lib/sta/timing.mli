(** Block-based static timing analysis — the "core timer inside the Monte
    Carlo loops" of the paper's Section 5.1.

    Signal delays are computed at all circuit nodes in topological order,
    using the Elmore metric for wire delay, PERI + Bakoglu for wire slew,
    and the rank-one quadratic gate model for gate delay/output slew, as
    functions of input slew and the four statistical parameters (L, W, Vt,
    tox) of each gate. *)

type prepared = {
  wireload : Circuit.Wireload.t;
  order : int array; (* topological order *)
  endpoints : int array;
  c_loads : float array; (* per driving gate: wire + sink pins, fF *)
}

val prepare : Circuit.Wireload.t -> prepared
(** Precompute everything that does not depend on parameter values, so the
    Monte Carlo loop pays only for the timing propagation itself. *)

type result = {
  worst_delay : float; (* max endpoint arrival, ps *)
  endpoint_arrivals : float array; (* one per [endpoints] entry *)
}

val run :
  prepared ->
  l:float array ->
  w:float array ->
  vt:float array ->
  tox:float array ->
  result
(** [run p ~l ~w ~vt ~tox] times the circuit with per-gate normalized
    parameter values (each array indexed by gate id, length = gate count).
    Raises [Invalid_argument] on length mismatch. *)

val run_nominal : prepared -> result
(** All parameters at their mean (zero): the deterministic corner. *)

val nominal_arrival_and_slew : prepared -> float array * float array
(** Per-gate output arrival and output slew at the nominal corner (all
    parameters zero) — the linearization point for block-based SSTA. *)

val arrival_times :
  prepared ->
  l:float array ->
  w:float array ->
  vt:float array ->
  tox:float array ->
  float array
(** Full per-gate arrival times (output-node arrival for each gate), for
    tests and debugging. *)

val default_input_slew_ps : float
(** Slew assumed at primary inputs (50 ps). *)

type slack_report = {
  clock_period : float;
  slacks : float array; (* per gate: required - arrival at the gate output *)
  worst_slack : float;
  critical_path : int array; (* gate ids from a source to the worst endpoint *)
}

val slack_report : ?clock_period:float -> prepared -> slack_report
(** Nominal-corner required-time / slack analysis. [clock_period] defaults
    to the nominal worst delay (so the critical path has zero slack). The
    critical path is traced back from the worst endpoint through each
    gate's latest-arriving input pin. Gates that reach no endpoint keep
    slack [infinity]. *)
