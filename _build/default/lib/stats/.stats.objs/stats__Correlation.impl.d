lib/stats/correlation.ml: Array Linalg Summary
