lib/stats/correlation.mli: Linalg
