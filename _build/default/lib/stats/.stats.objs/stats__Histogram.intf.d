lib/stats/histogram.mli:
