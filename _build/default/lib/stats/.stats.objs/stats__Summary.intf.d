lib/stats/summary.mli:
