lib/stats/welford.ml:
