lib/stats/welford.mli:
