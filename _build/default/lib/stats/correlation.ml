let covariance x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Correlation.covariance: length mismatch";
  if n < 2 then invalid_arg "Correlation.covariance: needs at least two samples";
  let mx = Summary.mean x and my = Summary.mean y in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. ((x.(i) -. mx) *. (y.(i) -. my))
  done;
  !acc /. float_of_int (n - 1)

let pearson x y =
  let c = covariance x y in
  let sx = Summary.std_dev x and sy = Summary.std_dev y in
  if sx < 1e-300 || sy < 1e-300 then
    invalid_arg "Correlation.pearson: zero variance";
  c /. (sx *. sy)

let column_covariance m =
  let n = Linalg.Mat.rows m and d = Linalg.Mat.cols m in
  if n < 2 then invalid_arg "Correlation.column_covariance: needs >= 2 rows";
  let means = Array.make d 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to d - 1 do
      means.(j) <- means.(j) +. Linalg.Mat.unsafe_get m i j
    done
  done;
  let nf = float_of_int n in
  for j = 0 to d - 1 do
    means.(j) <- means.(j) /. nf
  done;
  let cov = Linalg.Mat.create d d in
  (* accumulate outer products row by row to stay cache-friendly *)
  let centered = Array.make d 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to d - 1 do
      centered.(j) <- Linalg.Mat.unsafe_get m i j -. means.(j)
    done;
    for j = 0 to d - 1 do
      let cj = centered.(j) in
      if cj <> 0.0 then
        for k = j to d - 1 do
          Linalg.Mat.unsafe_set cov j k
            (Linalg.Mat.unsafe_get cov j k +. (cj *. centered.(k)))
        done
    done
  done;
  let denom = float_of_int (n - 1) in
  for j = 0 to d - 1 do
    for k = j to d - 1 do
      let v = Linalg.Mat.unsafe_get cov j k /. denom in
      Linalg.Mat.unsafe_set cov j k v;
      Linalg.Mat.unsafe_set cov k j v
    done
  done;
  cov

let column_correlation m =
  let cov = column_covariance m in
  let d = Linalg.Mat.rows cov in
  let corr = Linalg.Mat.create d d in
  for j = 0 to d - 1 do
    for k = 0 to d - 1 do
      let vj = Linalg.Mat.unsafe_get cov j j in
      let vk = Linalg.Mat.unsafe_get cov k k in
      let v =
        if vj < 1e-300 || vk < 1e-300 then if j = k then 1.0 else 0.0
        else Linalg.Mat.unsafe_get cov j k /. sqrt (vj *. vk)
      in
      Linalg.Mat.unsafe_set corr j k v
    done
  done;
  corr
