(** Empirical correlation/covariance estimation, used to validate that
    sampled fields actually follow the prescribed correlation kernel. *)

val pearson : float array -> float array -> float
(** Sample Pearson correlation of two equal-length arrays. Raises
    [Invalid_argument] on length mismatch, fewer than two samples, or zero
    variance. *)

val covariance : float array -> float array -> float
(** Unbiased sample covariance. *)

val column_covariance : Linalg.Mat.t -> Linalg.Mat.t
(** [column_covariance m] treats each row of [m] as one multivariate sample
    and returns the unbiased sample covariance matrix of the columns. *)

val column_correlation : Linalg.Mat.t -> Linalg.Mat.t
(** Like {!column_covariance}, normalized to unit diagonal. Columns with
    (near-)zero variance yield zero off-diagonal entries. *)
