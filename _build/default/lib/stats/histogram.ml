type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable underflow : int;
  mutable overflow : int;
}

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Histogram.create: requires lo < hi";
  if bins <= 0 then invalid_arg "Histogram.create: requires bins > 0";
  { lo; hi; bins = Array.make bins 0; underflow = 0; overflow = 0 }

let add t x =
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let n = Array.length t.bins in
    let i = int_of_float (float_of_int n *. (x -. t.lo) /. (t.hi -. t.lo)) in
    let i = min i (n - 1) in
    t.bins.(i) <- t.bins.(i) + 1
  end

let of_array ~lo ~hi ~bins a =
  let t = create ~lo ~hi ~bins in
  Array.iter (add t) a;
  t

let counts t = Array.copy t.bins
let underflow t = t.underflow
let overflow t = t.overflow

let total t = t.underflow + t.overflow + Array.fold_left ( + ) 0 t.bins

let bin_edges t =
  let n = Array.length t.bins in
  Array.init (n + 1) (fun i ->
      t.lo +. ((t.hi -. t.lo) *. float_of_int i /. float_of_int n))

let to_ascii ?(width = 50) t =
  let peak = Array.fold_left max 1 t.bins in
  let edges = bin_edges t in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i c ->
      let bar = c * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "%10.4g .. %10.4g | %s %d\n" edges.(i) edges.(i + 1)
           (String.make bar '#') c))
    t.bins;
  Buffer.contents buf
