(** Fixed-bin histograms for quick distribution inspection in examples and
    bench output. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Raises [Invalid_argument] unless [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit
(** Values outside [lo, hi) are counted in the under/overflow slots. *)

val of_array : lo:float -> hi:float -> bins:int -> float array -> t

val counts : t -> int array
val underflow : t -> int
val overflow : t -> int
val total : t -> int

val bin_edges : t -> float array
(** [bins + 1] edges. *)

val to_ascii : ?width:int -> t -> string
(** Simple horizontal-bar rendering for terminals. *)
