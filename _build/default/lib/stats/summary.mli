(** Batch descriptive statistics over sample arrays. *)

type t = {
  count : int;
  mean : float;
  variance : float; (* unbiased *)
  std_dev : float;
  min : float;
  max : float;
}

val of_array : float array -> t
(** Raises [Invalid_argument] on arrays with fewer than two elements. *)

val quantile : float array -> float -> float
(** [quantile a p] is the linearly interpolated [p]-quantile (0 <= p <= 1) of
    the data; [a] is not modified. Raises [Invalid_argument] on empty input
    or [p] outside [0, 1]. *)

val mean : float array -> float
val std_dev : float array -> float
