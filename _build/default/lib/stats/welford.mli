(** Streaming mean/variance accumulation (Welford's algorithm), used to
    accumulate delay statistics over Monte Carlo runs without storing all
    samples. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** Raises [Invalid_argument] when empty. *)

val variance : t -> float
(** Unbiased sample variance. Raises [Invalid_argument] with fewer than two
    samples. *)

val std_dev : t -> float

val merge : t -> t -> t
(** Combine two accumulators (Chan's parallel formula). *)
