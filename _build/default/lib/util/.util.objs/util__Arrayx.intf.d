lib/util/arrayx.mli:
