lib/util/table.mli:
