lib/util/timer.mli:
