(** Small array helpers shared across the project. *)

val float_range : start:float -> stop:float -> count:int -> float array
(** [float_range ~start ~stop ~count] is [count] evenly spaced values from
    [start] to [stop] inclusive. Requires [count >= 2]. *)

val argmax : float array -> int
(** Index of the (first) maximum element. Raises [Invalid_argument] on an
    empty array. *)

val argmin : float array -> int
(** Index of the (first) minimum element. Raises [Invalid_argument] on an
    empty array. *)

val sum : float array -> float
(** Sum of all elements (0 on empty). *)

val max_abs : float array -> float
(** Maximum absolute value (0 on empty). *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val sort_desc_with_perm : float array -> float array * int array
(** [sort_desc_with_perm a] returns a descending-sorted copy of [a] together
    with the permutation [p] such that [sorted.(i) = a.(p.(i))]. *)
