type align = Left | Right

type row = Cells of string list | Rule

type t = {
  columns : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~columns = { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let to_string t =
  let headers = List.map fst t.columns in
  let aligns = List.map snd t.columns in
  let rows = List.rev t.rows in
  let widths =
    let update ws cells =
      List.map2 (fun w c -> max w (String.length c)) ws cells
    in
    let init = List.map String.length headers in
    List.fold_left
      (fun ws row -> match row with Cells c -> update ws c | Rule -> ws)
      init rows
  in
  let pad align width cell =
    let n = width - String.length cell in
    match align with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let render_cells cells =
    let padded =
      List.map2 (fun (w, a) c -> pad a w c)
        (List.combine widths aligns)
        cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_cells headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      (match row with
      | Cells c -> Buffer.add_string buf (render_cells c)
      | Rule -> Buffer.add_string buf rule);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let print t = print_string (to_string t)

let fmt_float ?(digits = 3) x = Printf.sprintf "%.*f" digits x
