(** Aligned plain-text tables, used by the benchmark harness to print
    paper-style result tables. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : columns:(string * align) list -> t
(** [create ~columns] starts a table with the given header labels and per
    column alignment. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row. Raises [Invalid_argument] if the number
    of cells differs from the number of columns. *)

val add_rule : t -> unit
(** [add_rule t] appends a horizontal separator line. *)

val to_string : t -> string
(** [to_string t] renders the table with aligned columns. *)

val print : t -> unit
(** [print t] writes the rendered table to standard output. *)

val fmt_float : ?digits:int -> float -> string
(** [fmt_float ~digits x] formats [x] with [digits] fractional digits
    (default 3). *)
