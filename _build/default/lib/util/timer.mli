(** Wall-clock timing helpers for the benchmark harness. *)

type t
(** A started timer. *)

val start : unit -> t
(** [start ()] starts a wall-clock timer. *)

val elapsed_s : t -> float
(** [elapsed_s t] is the wall-clock time in seconds since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)
