test/test_circuit.ml: Alcotest Array Circuit Filename Float Fun Geometry List Printf QCheck QCheck_alcotest Result Sys
