test/test_geometry.ml: Alcotest Array Float Geometry Kernels List Printf QCheck QCheck_alcotest
