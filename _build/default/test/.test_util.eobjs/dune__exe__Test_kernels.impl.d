test/test_kernels.ml: Alcotest Array Float Geometry Kernels Lazy Linalg List Printf Prng QCheck QCheck_alcotest Result
