test/test_kle.ml: Alcotest Array Float Geometry Kernels Kle Lazy Linalg List Printf Prng QCheck QCheck_alcotest Stats Util
