test/test_kle.mli:
