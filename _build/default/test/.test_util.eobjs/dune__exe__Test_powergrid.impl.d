test/test_powergrid.ml: Alcotest Array Circuit Float Geometry Lazy Linalg Powergrid Printf Prng Ssta Stats Util
