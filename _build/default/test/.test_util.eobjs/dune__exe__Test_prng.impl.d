test/test_prng.ml: Alcotest Array Float Fun Linalg List Printf Prng QCheck QCheck_alcotest Stats
