test/test_specfun.ml: Alcotest Float List QCheck QCheck_alcotest Specfun
