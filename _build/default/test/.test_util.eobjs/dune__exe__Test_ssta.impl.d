test/test_ssta.ml: Alcotest Array Circuit Float Geometry Kernels Lazy Linalg List Printf Prng Result Ssta Sta Stats Util
