test/test_sta.ml: Alcotest Array Circuit Float List Printf Prng QCheck QCheck_alcotest Sta
