test/test_stats.ml: Alcotest Array Float Gen Linalg List QCheck QCheck_alcotest Stats String
