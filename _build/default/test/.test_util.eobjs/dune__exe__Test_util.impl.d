test/test_util.ml: Alcotest Array String Util
