module P = Geometry.Point
module T = Geometry.Triangle
module R = Geometry.Rect

let check_close ?(tol = 1e-10) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ---------- Point ---------- *)

let test_point_arith () =
  let a = P.make 1.0 2.0 and b = P.make 3.0 5.0 in
  check_close "add x" 4.0 (P.add a b).x;
  check_close "sub y" (-3.0) (P.sub a b).y;
  check_close "dot" 13.0 (P.dot a b);
  check_close "dist" 5.0 (P.dist (P.make 0.0 0.0) (P.make 3.0 4.0));
  check_close "dist l1" 7.0 (P.dist_l1 (P.make 0.0 0.0) (P.make 3.0 4.0));
  check_close "mid x" 2.0 (P.midpoint a b).x

let test_point_cross_orientation () =
  let o = P.make 0.0 0.0 and x = P.make 1.0 0.0 and y = P.make 0.0 1.0 in
  Alcotest.(check bool) "ccw positive" true (P.cross o x y > 0.0);
  Alcotest.(check bool) "cw negative" true (P.cross o y x < 0.0);
  check_close "collinear" 0.0 (P.cross o x (P.make 2.0 0.0))

(* ---------- Rect ---------- *)

let test_rect_basics () =
  let r = R.unit_die in
  check_close "area" 4.0 (R.area r);
  check_close "width" 2.0 (R.width r);
  Alcotest.(check bool) "contains center" true (R.contains r (P.make 0.0 0.0));
  Alcotest.(check bool) "excludes outside" false (R.contains r (P.make 1.5 0.0));
  Alcotest.(check bool) "boundary inclusive" true (R.contains r (P.make 1.0 1.0))

let test_rect_clamp () =
  let r = R.unit_die in
  let c = R.clamp r (P.make 5.0 (-3.0)) in
  check_close "x clamped" 1.0 c.x;
  check_close "y clamped" (-1.0) c.y

let test_rect_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Rect.make: empty rectangle")
    (fun () -> ignore (R.make ~xmin:0.0 ~xmax:0.0 ~ymin:0.0 ~ymax:1.0))

let test_rect_grid () =
  let pts = R.sample_grid R.unit_die ~nx:3 ~ny:3 in
  Alcotest.(check int) "count" 9 (Array.length pts);
  check_close "corner" (-1.0) pts.(0).x;
  check_close "center" 0.0 pts.(4).x

(* ---------- Triangle ---------- *)

let unit_right = T.make (P.make 0.0 0.0) (P.make 1.0 0.0) (P.make 0.0 1.0)

let test_triangle_area_centroid () =
  check_close "area" 0.5 (T.area unit_right);
  check_close "signed (ccw)" 0.5 (T.signed_area unit_right);
  let c = T.centroid unit_right in
  check_close "cx" (1.0 /. 3.0) c.x;
  check_close "cy" (1.0 /. 3.0) c.y

let test_triangle_orientation_sign () =
  let cw = T.make (P.make 0.0 0.0) (P.make 0.0 1.0) (P.make 1.0 0.0) in
  Alcotest.(check bool) "cw negative" true (T.signed_area cw < 0.0);
  check_close "abs area" 0.5 (T.area cw)

let test_triangle_contains () =
  Alcotest.(check bool) "inside" true (T.contains unit_right (P.make 0.2 0.2));
  Alcotest.(check bool) "outside" false (T.contains unit_right (P.make 0.8 0.8));
  Alcotest.(check bool) "vertex" true (T.contains unit_right (P.make 0.0 0.0));
  Alcotest.(check bool) "edge" true (T.contains unit_right (P.make 0.5 0.0))

let test_triangle_angles () =
  check_close ~tol:1e-9 "right isoceles min angle" 45.0 (T.min_angle_deg unit_right);
  let equilateral =
    T.make (P.make 0.0 0.0) (P.make 1.0 0.0) (P.make 0.5 (sqrt 3.0 /. 2.0))
  in
  check_close ~tol:1e-9 "equilateral" 60.0 (T.min_angle_deg equilateral)

let test_triangle_circumcenter () =
  (* circumcenter of the unit right triangle is the hypotenuse midpoint *)
  let cc = T.circumcenter unit_right in
  check_close "ccx" 0.5 cc.x;
  check_close "ccy" 0.5 cc.y;
  check_close "radius²" 0.5 (T.circumradius2 unit_right);
  let degenerate = T.make (P.make 0.0 0.0) (P.make 1.0 0.0) (P.make 2.0 0.0) in
  Alcotest.(check bool) "degenerate raises" true
    (match T.circumcenter degenerate with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_triangle_max_side () =
  check_close "hypotenuse" (sqrt 2.0) (T.max_side unit_right)

let test_triangle_barycentric_sum () =
  let p = P.make 0.3 0.1 in
  let wa, wb, wc = T.barycentric unit_right p in
  check_close "sums to 1" 1.0 (wa +. wb +. wc);
  (* reconstruct the point *)
  check_close "rebuild x" p.x ((wa *. 0.0) +. (wb *. 1.0) +. (wc *. 0.0));
  check_close "rebuild y" p.y ((wa *. 0.0) +. (wb *. 0.0) +. (wc *. 1.0))

let test_edge_midpoints () =
  let mids = T.edge_midpoints unit_right in
  Alcotest.(check int) "three" 3 (Array.length mids);
  check_close "first mid x" 0.5 mids.(0).x

(* ---------- Delaunay ---------- *)

let brute_force_delaunay_check points triangles =
  (* empty-circumcircle property: no point strictly inside any triangle's
     circumcircle *)
  let ok = ref true in
  Array.iter
    (fun (i, j, k) ->
      let tri = T.make points.(i) points.(j) points.(k) in
      match T.circumcenter tri with
      | cc ->
          let r2 = P.dist2 cc points.(i) in
          Array.iteri
            (fun l p ->
              if l <> i && l <> j && l <> k && P.dist2 cc p < r2 *. (1.0 -. 1e-9) then
                ok := false)
            points
      | exception Invalid_argument _ -> ok := false)
    triangles;
  !ok

let quasi_random_points seed n =
  Kernels.Validity.random_points ~seed ~n
    (R.make ~xmin:(-0.95) ~xmax:0.95 ~ymin:(-0.95) ~ymax:0.95)

let test_delaunay_square () =
  let pts =
    [| P.make (-1.0) (-1.0); P.make 1.0 (-1.0); P.make 1.0 1.0; P.make (-1.0) 1.0 |]
  in
  let tris = Geometry.Delaunay.triangulate R.unit_die pts in
  Alcotest.(check int) "two triangles" 2 (Array.length tris)

let test_delaunay_empty_circumcircle () =
  let pts = quasi_random_points 3 60 in
  let tris = Geometry.Delaunay.triangulate R.unit_die pts in
  Alcotest.(check bool) "delaunay property" true (brute_force_delaunay_check pts tris)

let test_delaunay_area_covers_hull () =
  (* with the 4 die corners included, triangles must cover the whole die *)
  let corners = R.corners R.unit_die in
  let pts = Array.append corners (quasi_random_points 5 40) in
  let dt = Geometry.Delaunay.create R.unit_die in
  Array.iter (fun p -> ignore (Geometry.Delaunay.insert dt p)) pts;
  let tris = Geometry.Delaunay.triangles dt in
  let total =
    Array.fold_left
      (fun acc (i, j, k) ->
        let ps = Geometry.Delaunay.points dt in
        acc +. T.area (T.make ps.(i) ps.(j) ps.(k)))
      0.0 tris
  in
  check_close ~tol:1e-9 "area" 4.0 total

let test_delaunay_duplicate_points () =
  let dt = Geometry.Delaunay.create R.unit_die in
  let i1 = Geometry.Delaunay.insert dt (P.make 0.5 0.5) in
  let i2 = Geometry.Delaunay.insert dt (P.make 0.5 0.5) in
  Alcotest.(check int) "same index" i1 i2;
  Alcotest.(check int) "one point" 1 (Geometry.Delaunay.point_count dt)

let test_delaunay_outside_raises () =
  let dt = Geometry.Delaunay.create R.unit_die in
  Alcotest.check_raises "outside"
    (Invalid_argument "Delaunay.insert: point outside bounding rectangle") (fun () ->
      ignore (Geometry.Delaunay.insert dt (P.make 2.0 0.0)))

let test_delaunay_collinear_boundary () =
  (* collinear points along an edge must not produce degenerate triangles *)
  let pts =
    Array.append (R.corners R.unit_die)
      (Array.init 5 (fun i -> P.make (-1.0 +. (0.4 *. float_of_int i)) (-1.0)))
  in
  let dt = Geometry.Delaunay.create R.unit_die in
  Array.iter (fun p -> ignore (Geometry.Delaunay.insert dt p)) pts;
  let ps = Geometry.Delaunay.points dt in
  Array.iter
    (fun (i, j, k) ->
      Alcotest.(check bool) "non-degenerate" true (T.area (T.make ps.(i) ps.(j) ps.(k)) > 1e-12))
    (Geometry.Delaunay.triangles dt)

(* ---------- Mesh ---------- *)

let test_mesh_uniform_structure () =
  let m = Geometry.Mesh.uniform R.unit_die ~divisions:4 in
  Alcotest.(check int) "4 tris per cell" (4 * 4 * 4) (Geometry.Mesh.size m);
  check_close ~tol:1e-9 "area" 4.0 (Geometry.Mesh.total_area m);
  check_close ~tol:1e-9 "min angle 45" 45.0 (Geometry.Mesh.min_angle_deg m);
  Alcotest.(check bool) "check passes" true (Geometry.Mesh.check m = Ok ())

let test_mesh_degenerate_rejected () =
  let pts = [| P.make 0.0 0.0; P.make 1.0 0.0; P.make 2.0 0.0 |] in
  Alcotest.(check bool) "degenerate raises" true
    (match Geometry.Mesh.make R.unit_die pts [| (0, 1, 2) |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_mesh_bad_index_rejected () =
  let pts = [| P.make 0.0 0.0; P.make 1.0 0.0; P.make 0.0 1.0 |] in
  Alcotest.(check bool) "oob raises" true
    (match Geometry.Mesh.make R.unit_die pts [| (0, 1, 7) |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_mesh_h_max () =
  let m = Geometry.Mesh.uniform R.unit_die ~divisions:2 in
  (* cell size 1.0, longest triangle side = cell edge = 1.0 *)
  check_close ~tol:1e-12 "h" 1.0 (Geometry.Mesh.h_max m)

(* ---------- Refine ---------- *)

let test_refine_meets_constraints () =
  let r = Geometry.Refine.mesh R.unit_die ~max_area_fraction:0.01 ~min_angle_deg:28.0 in
  let m = r.Geometry.Geometry_intf.mesh in
  Alcotest.(check bool) "satisfied" true r.Geometry.Geometry_intf.satisfied;
  Alcotest.(check bool) "min angle" true (Geometry.Mesh.min_angle_deg m >= 28.0);
  let max_area = 0.01 *. 4.0 in
  Array.iter
    (fun a -> Alcotest.(check bool) "area bound" true (a <= max_area +. 1e-12))
    m.Geometry.Mesh.areas;
  Alcotest.(check bool) "structure" true (Geometry.Mesh.check m = Ok ())

let test_refine_area_scaling () =
  (* halving max area should roughly double the triangle count *)
  let n1 =
    Geometry.Mesh.size
      (Geometry.Refine.mesh R.unit_die ~max_area_fraction:0.02 ~min_angle_deg:25.0)
        .Geometry.Geometry_intf.mesh
  in
  let n2 =
    Geometry.Mesh.size
      (Geometry.Refine.mesh R.unit_die ~max_area_fraction:0.01 ~min_angle_deg:25.0)
        .Geometry.Geometry_intf.mesh
  in
  Alcotest.(check bool) (Printf.sprintf "n grows (%d -> %d)" n1 n2) true
    (n2 > n1 && n2 < 6 * n1)

let test_refine_invalid_fraction () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Refine.mesh: max_area_fraction must be positive") (fun () ->
      ignore (Geometry.Refine.mesh R.unit_die ~max_area_fraction:0.0))

let test_refine_deterministic () =
  let run () =
    Geometry.Mesh.size
      (Geometry.Refine.mesh R.unit_die ~max_area_fraction:0.01 ~min_angle_deg:28.0)
        .Geometry.Geometry_intf.mesh
  in
  Alcotest.(check int) "same size" (run ()) (run ())

let test_refine_non_square_domain () =
  let rect = R.make ~xmin:0.0 ~xmax:4.0 ~ymin:0.0 ~ymax:1.0 in
  let r = Geometry.Refine.mesh rect ~max_area_fraction:0.01 ~min_angle_deg:26.0 in
  let m = r.Geometry.Geometry_intf.mesh in
  check_close ~tol:1e-6 "area covered" 4.0 (Geometry.Mesh.total_area m);
  Alcotest.(check bool) "structure" true (Geometry.Mesh.check m = Ok ())

(* ---------- Locator ---------- *)

let test_locator_matches_brute_force () =
  let r = Geometry.Refine.mesh R.unit_die ~max_area_fraction:0.01 ~min_angle_deg:28.0 in
  let m = r.Geometry.Geometry_intf.mesh in
  let loc = Geometry.Locator.create m in
  let pts = quasi_random_points 11 200 in
  Array.iter
    (fun p ->
      match Geometry.Locator.find loc p with
      | Some ti ->
          Alcotest.(check bool) "containment verified" true
            (T.contains ~tol:1e-9 (Geometry.Mesh.triangle m ti) p)
      | None -> Alcotest.fail "locator missed an interior point")
    pts

let test_locator_outside () =
  let m = Geometry.Mesh.uniform R.unit_die ~divisions:2 in
  let loc = Geometry.Locator.create m in
  Alcotest.(check bool) "outside is None" true
    (Geometry.Locator.find loc (P.make 3.0 3.0) = None)

let test_locator_nearest_on_boundary () =
  let m = Geometry.Mesh.uniform R.unit_die ~divisions:2 in
  let loc = Geometry.Locator.create m in
  (* exact corner and clamped outside point both resolve *)
  let t1 = Geometry.Locator.find_nearest loc (P.make 1.0 1.0) in
  let t2 = Geometry.Locator.find_nearest loc (P.make 5.0 5.0) in
  Alcotest.(check bool) "valid triangles" true (t1 >= 0 && t2 >= 0 && t1 < Geometry.Mesh.size m && t2 < Geometry.Mesh.size m)

let test_locator_centroids_self () =
  let m = Geometry.Mesh.uniform R.unit_die ~divisions:3 in
  let loc = Geometry.Locator.create m in
  Array.iteri
    (fun i c ->
      match Geometry.Locator.find loc c with
      | Some ti ->
          (* centroid of i must be inside triangle ti; usually ti = i *)
          Alcotest.(check bool) "contains" true
            (T.contains ~tol:1e-9 (Geometry.Mesh.triangle m ti) c);
          ignore i
      | None -> Alcotest.fail "centroid not located")
    m.Geometry.Mesh.centroids

(* ---------- qcheck ---------- *)

let arb_point =
  QCheck.make
    QCheck.Gen.(
      let* x = float_range (-1.0) 1.0 in
      let* y = float_range (-1.0) 1.0 in
      return (x, y))
    ~print:(fun (x, y) -> Printf.sprintf "(%f, %f)" x y)

let prop_barycentric_partition =
  QCheck.Test.make ~name:"barycentric coordinates sum to 1" ~count:200 arb_point
    (fun (x, y) ->
      let wa, wb, wc = T.barycentric unit_right (P.make x y) in
      Float.abs (wa +. wb +. wc -. 1.0) < 1e-9)

let prop_contains_centroid =
  QCheck.Test.make ~name:"triangles contain their centroid" ~count:200
    (QCheck.triple arb_point arb_point arb_point)
    (fun ((ax, ay), (bx, by), (cx, cy)) ->
      let tri = T.make (P.make ax ay) (P.make bx by) (P.make cx cy) in
      T.area tri < 1e-9 || T.contains tri (T.centroid tri))

let prop_circumcircle_through_vertices =
  QCheck.Test.make ~name:"circumcircle passes through all vertices" ~count:200
    (QCheck.triple arb_point arb_point arb_point)
    (fun ((ax, ay), (bx, by), (cx, cy)) ->
      let tri = T.make (P.make ax ay) (P.make bx by) (P.make cx cy) in
      T.area tri < 1e-6
      ||
      let cc = T.circumcenter tri in
      let da = P.dist cc tri.T.a and db = P.dist cc tri.T.b and dc = P.dist cc tri.T.c in
      Float.abs (da -. db) < 1e-6 *. (1.0 +. da) && Float.abs (da -. dc) < 1e-6 *. (1.0 +. da))

let () =
  Alcotest.run "geometry"
    [
      ( "point",
        [
          Alcotest.test_case "arithmetic" `Quick test_point_arith;
          Alcotest.test_case "cross orientation" `Quick test_point_cross_orientation;
        ] );
      ( "rect",
        [
          Alcotest.test_case "basics" `Quick test_rect_basics;
          Alcotest.test_case "clamp" `Quick test_rect_clamp;
          Alcotest.test_case "invalid raises" `Quick test_rect_invalid;
          Alcotest.test_case "sample grid" `Quick test_rect_grid;
        ] );
      ( "triangle",
        [
          Alcotest.test_case "area and centroid" `Quick test_triangle_area_centroid;
          Alcotest.test_case "orientation sign" `Quick test_triangle_orientation_sign;
          Alcotest.test_case "containment" `Quick test_triangle_contains;
          Alcotest.test_case "angles" `Quick test_triangle_angles;
          Alcotest.test_case "circumcenter" `Quick test_triangle_circumcenter;
          Alcotest.test_case "max side" `Quick test_triangle_max_side;
          Alcotest.test_case "barycentric" `Quick test_triangle_barycentric_sum;
          Alcotest.test_case "edge midpoints" `Quick test_edge_midpoints;
        ] );
      ( "delaunay",
        [
          Alcotest.test_case "square" `Quick test_delaunay_square;
          Alcotest.test_case "empty circumcircle property" `Quick test_delaunay_empty_circumcircle;
          Alcotest.test_case "covers hull area" `Quick test_delaunay_area_covers_hull;
          Alcotest.test_case "duplicate points" `Quick test_delaunay_duplicate_points;
          Alcotest.test_case "outside raises" `Quick test_delaunay_outside_raises;
          Alcotest.test_case "collinear boundary points" `Quick test_delaunay_collinear_boundary;
        ] );
      ( "mesh",
        [
          Alcotest.test_case "uniform structure" `Quick test_mesh_uniform_structure;
          Alcotest.test_case "degenerate rejected" `Quick test_mesh_degenerate_rejected;
          Alcotest.test_case "bad index rejected" `Quick test_mesh_bad_index_rejected;
          Alcotest.test_case "h_max" `Quick test_mesh_h_max;
        ] );
      ( "refine",
        [
          Alcotest.test_case "meets constraints" `Quick test_refine_meets_constraints;
          Alcotest.test_case "area scaling" `Quick test_refine_area_scaling;
          Alcotest.test_case "invalid fraction" `Quick test_refine_invalid_fraction;
          Alcotest.test_case "deterministic" `Quick test_refine_deterministic;
          Alcotest.test_case "non-square domain" `Quick test_refine_non_square_domain;
        ] );
      ( "locator",
        [
          Alcotest.test_case "matches brute force" `Quick test_locator_matches_brute_force;
          Alcotest.test_case "outside returns None" `Quick test_locator_outside;
          Alcotest.test_case "nearest on boundary" `Quick test_locator_nearest_on_boundary;
          Alcotest.test_case "locates all centroids" `Quick test_locator_centroids_self;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_barycentric_partition; prop_contains_centroid;
            prop_circumcircle_through_vertices ] );
    ]
