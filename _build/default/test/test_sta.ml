module G = Circuit.Gate
module N = Circuit.Netlist

let check_close ?(tol = 1e-10) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ---------- Elmore ---------- *)

let test_elmore_star_known () =
  (* driver R=2 into total C=10, wire r=1 c=4, sink cap 3:
     2*10 + 1*(2 + 3) = 25 *)
  check_close "star" 25.0
    (Sta.Elmore.star_delay ~r_drive:2.0 ~r_wire:1.0 ~c_wire:4.0 ~c_sink:3.0 ~c_total:10.0)

let test_elmore_star_negative_raises () =
  Alcotest.check_raises "negative" (Invalid_argument "Elmore.star_delay: negative RC element")
    (fun () ->
      ignore
        (Sta.Elmore.star_delay ~r_drive:(-1.0) ~r_wire:0.0 ~c_wire:0.0 ~c_sink:0.0
           ~c_total:0.0))

let test_elmore_ladder_hand_computed () =
  (* 2-stage ladder: r = [1; 2], c = [3; 4]
     node0: 1*(3+4) = 7;  node1: 7 + 2*4 = 15 *)
  let d = Sta.Elmore.rc_ladder_delays ~r:[| 1.0; 2.0 |] ~c:[| 3.0; 4.0 |] in
  check_close "node0" 7.0 d.(0);
  check_close "node1" 15.0 d.(1)

let test_elmore_ladder_monotone () =
  let d = Sta.Elmore.rc_ladder_delays ~r:[| 1.0; 1.0; 1.0; 1.0 |] ~c:[| 1.0; 1.0; 1.0; 1.0 |] in
  for i = 1 to 3 do
    Alcotest.(check bool) "monotone" true (d.(i) > d.(i - 1))
  done

let test_elmore_ladder_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Elmore.rc_ladder_delays: length mismatch")
    (fun () -> ignore (Sta.Elmore.rc_ladder_delays ~r:[| 1.0 |] ~c:[| 1.0; 2.0 |]))

(* ---------- Slew ---------- *)

let test_bakoglu () =
  check_close ~tol:1e-12 "ln9 rule" (log 9.0 *. 10.0) (Sta.Slew.bakoglu_wire_slew ~elmore_ps:10.0);
  Alcotest.check_raises "negative" (Invalid_argument "Slew.bakoglu_wire_slew: negative delay")
    (fun () -> ignore (Sta.Slew.bakoglu_wire_slew ~elmore_ps:(-1.0)))

let test_peri_rss () =
  check_close ~tol:1e-12 "3-4-5" 5.0 (Sta.Slew.peri ~slew_in:3.0 ~wire_slew:4.0);
  check_close ~tol:1e-12 "zero wire" 7.0 (Sta.Slew.peri ~slew_in:7.0 ~wire_slew:0.0)

let test_sink_slew_composition () =
  let s = Sta.Slew.sink_slew ~slew_driver:10.0 ~wire_elmore_ps:5.0 in
  let expected = sqrt ((10.0 *. 10.0) +. ((log 9.0 *. 5.0) ** 2.0)) in
  check_close ~tol:1e-12 "composed" expected s

(* ---------- Timing ---------- *)

let tiny () =
  let gates =
    [|
      { N.id = 0; name = "a"; kind = G.Input; fanins = [||] };
      { N.id = 1; name = "b"; kind = G.Input; fanins = [||] };
      { N.id = 2; name = "n"; kind = G.Nand2; fanins = [| 0; 1 |] };
      { N.id = 3; name = "y"; kind = G.Inv; fanins = [| 2 |] };
    |]
  in
  N.make ~name:"tiny" ~gates ~outputs:[| 3 |]

let prepared_of netlist =
  Sta.Timing.prepare (Circuit.Wireload.build (Circuit.Placer.place netlist))

let test_timing_nominal_hand_check () =
  (* verify the worst delay equals the sum along the single path computed
     piece by piece from the same models *)
  let t = tiny () in
  let wl = Circuit.Wireload.build (Circuit.Placer.place t) in
  let p = Sta.Timing.prepare wl in
  let r = Sta.Timing.run_nominal p in
  let zeros = Array.make (N.size t) 0.0 in
  let arrivals = Sta.Timing.arrival_times p ~l:zeros ~w:zeros ~vt:zeros ~tox:zeros in
  let params = Array.make 4 0.0 in
  (* replicate the propagation manually *)
  let c_load g = Circuit.Wireload.c_load wl g in
  let a0 = G.delay G.Input ~slew_in:Sta.Timing.default_input_slew_ps ~c_load:(c_load 0) ~params in
  let s0 = G.output_slew G.Input ~slew_in:Sta.Timing.default_input_slew_ps ~c_load:(c_load 0) ~params in
  let a1 = G.delay G.Input ~slew_in:Sta.Timing.default_input_slew_ps ~c_load:(c_load 1) ~params in
  let s1 = G.output_slew G.Input ~slew_in:Sta.Timing.default_input_slew_ps ~c_load:(c_load 1) ~params in
  let wire_elmore f =
    let load = wl.Circuit.Wireload.loads.(f) in
    load.Circuit.Wireload.r_wire
    *. ((0.5 *. load.Circuit.Wireload.c_wire) +. (G.timing G.Nand2).G.c_in)
  in
  let pin0 = a0 +. wire_elmore 0 and pin1 = a1 +. wire_elmore 1 in
  let best_arr = Float.max pin0 pin1 in
  let best_slew =
    if pin0 >= pin1 then Sta.Slew.sink_slew ~slew_driver:s0 ~wire_elmore_ps:(wire_elmore 0)
    else Sta.Slew.sink_slew ~slew_driver:s1 ~wire_elmore_ps:(wire_elmore 1)
  in
  let a2 = best_arr +. G.delay G.Nand2 ~slew_in:best_slew ~c_load:(c_load 2) ~params in
  check_close ~tol:1e-9 "nand arrival" a2 arrivals.(2);
  Alcotest.(check bool) "worst >= nand arrival" true (r.Sta.Timing.worst_delay > a2)

let test_timing_monotone_in_l () =
  (* slowing every device (L = +2 sigma) must slow the circuit *)
  let t = Circuit.Generator.generate_paper "c880" in
  let p = prepared_of t in
  let n = N.size t in
  let zeros = Array.make n 0.0 in
  let slow = Array.make n 2.0 in
  let base = (Sta.Timing.run p ~l:zeros ~w:zeros ~vt:zeros ~tox:zeros).Sta.Timing.worst_delay in
  let slowed = (Sta.Timing.run p ~l:slow ~w:zeros ~vt:zeros ~tox:zeros).Sta.Timing.worst_delay in
  Alcotest.(check bool) "slower" true (slowed > base)

let test_timing_w_speeds_up () =
  let t = Circuit.Generator.generate_paper "c880" in
  let p = prepared_of t in
  let n = N.size t in
  let zeros = Array.make n 0.0 in
  let wide = Array.make n 2.0 in
  let base = (Sta.Timing.run p ~l:zeros ~w:zeros ~vt:zeros ~tox:zeros).Sta.Timing.worst_delay in
  let faster = (Sta.Timing.run p ~l:zeros ~w:wide ~vt:zeros ~tox:zeros).Sta.Timing.worst_delay in
  Alcotest.(check bool) "faster" true (faster < base)

let test_timing_endpoints_shape () =
  let t = Circuit.Generator.generate_paper "s5378" in
  let p = prepared_of t in
  let r = Sta.Timing.run_nominal p in
  Alcotest.(check int) "endpoint count" (Array.length p.Sta.Timing.endpoints)
    (Array.length r.Sta.Timing.endpoint_arrivals);
  (* worst is the max *)
  check_close ~tol:1e-12 "worst is max"
    (Array.fold_left Float.max neg_infinity r.Sta.Timing.endpoint_arrivals)
    r.Sta.Timing.worst_delay

let test_timing_all_arrivals_positive () =
  let t = Circuit.Generator.generate_paper "c1355" in
  let p = prepared_of t in
  let n = N.size t in
  let zeros = Array.make n 0.0 in
  let arrivals = Sta.Timing.arrival_times p ~l:zeros ~w:zeros ~vt:zeros ~tox:zeros in
  Array.iter (fun a -> Alcotest.(check bool) "nonnegative" true (a >= 0.0)) arrivals

let test_timing_length_mismatch () =
  let t = tiny () in
  let p = prepared_of t in
  Alcotest.(check bool) "mismatch raises" true
    (match Sta.Timing.run p ~l:[| 0.0 |] ~w:[| 0.0 |] ~vt:[| 0.0 |] ~tox:[| 0.0 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_timing_deterministic () =
  let t = Circuit.Generator.generate_paper "c880" in
  let p = prepared_of t in
  let d1 = (Sta.Timing.run_nominal p).Sta.Timing.worst_delay in
  let d2 = (Sta.Timing.run_nominal p).Sta.Timing.worst_delay in
  check_close ~tol:0.0 "deterministic" d1 d2

let test_timing_dff_is_source_and_sink () =
  (* a DFF in the middle restarts timing: path a -> n -> q (endpoint at n),
     and q launches a fresh path *)
  let gates =
    [|
      { N.id = 0; name = "a"; kind = G.Input; fanins = [||] };
      { N.id = 1; name = "n"; kind = G.Buf; fanins = [| 0 |] };
      { N.id = 2; name = "q"; kind = G.Dff; fanins = [| 1 |] };
      { N.id = 3; name = "y"; kind = G.Inv; fanins = [| 2 |] };
    |]
  in
  let t = N.make ~name:"seq" ~gates ~outputs:[| 3 |] in
  let p = prepared_of t in
  let endpoints = Array.to_list p.Sta.Timing.endpoints in
  Alcotest.(check bool) "buf is endpoint (dff D)" true (List.mem 1 endpoints);
  Alcotest.(check bool) "output is endpoint" true (List.mem 3 endpoints);
  let r = Sta.Timing.run_nominal p in
  Alcotest.(check bool) "positive" true (r.Sta.Timing.worst_delay > 0.0)

let test_slack_report_zero_on_critical () =
  let t = Circuit.Generator.generate_paper "c880" in
  let p = prepared_of t in
  let r = Sta.Timing.slack_report p in
  (* with clock = worst delay, the critical endpoint has zero slack *)
  check_close ~tol:1e-6 "worst slack" 0.0 r.Sta.Timing.worst_slack;
  (* every slack non-negative at this clock *)
  Array.iter
    (fun s -> Alcotest.(check bool) "non-negative" true (s >= -1e-6))
    r.Sta.Timing.slacks

let test_slack_report_scales_with_clock () =
  let t = Circuit.Generator.generate_paper "c880" in
  let p = prepared_of t in
  let base = Sta.Timing.slack_report p in
  let relaxed =
    Sta.Timing.slack_report ~clock_period:(base.Sta.Timing.clock_period +. 100.0) p
  in
  check_close ~tol:1e-6 "slack grows by the slack added" 100.0
    relaxed.Sta.Timing.worst_slack

let test_critical_path_structure () =
  let t = Circuit.Generator.generate_paper "c880" in
  let p = prepared_of t in
  let r = Sta.Timing.slack_report p in
  let path = r.Sta.Timing.critical_path in
  Alcotest.(check bool) "non-empty" true (Array.length path >= 2);
  (* starts at a source, ends at an endpoint *)
  let first = t.N.gates.(path.(0)) in
  Alcotest.(check bool) "starts at source" true
    (first.N.kind = G.Input || first.N.kind = G.Dff);
  let endpoints = Array.to_list p.Sta.Timing.endpoints in
  Alcotest.(check bool) "ends at endpoint" true
    (List.mem path.(Array.length path - 1) endpoints);
  (* consecutive entries are fanin edges *)
  for i = 1 to Array.length path - 1 do
    let g = t.N.gates.(path.(i)) in
    Alcotest.(check bool) "connected" true (Array.mem path.(i - 1) g.N.fanins)
  done;
  (* every gate on the path has (near) zero slack at the default clock *)
  Array.iter
    (fun g ->
      Alcotest.(check bool)
        (Printf.sprintf "path gate %d slack %.3f" g r.Sta.Timing.slacks.(g))
        true
        (Float.abs r.Sta.Timing.slacks.(g) < 1e-6))
    path

(* ---------- qcheck ---------- *)

let prop_elmore_ladder_additive =
  (* appending a stage only increases upstream-node delays by 0 and adds a
     later node *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 8 in
      let* seed = int_range 0 1000 in
      return (n, seed))
  in
  let arb = QCheck.make gen ~print:(fun (n, s) -> Printf.sprintf "(n=%d, seed=%d)" n s) in
  QCheck.Test.make ~name:"elmore ladder delays are increasing" ~count:100 arb
    (fun (n, seed) ->
      let rng = Prng.Rng.create ~seed in
      let r = Array.init n (fun _ -> 0.1 +. Prng.Rng.uniform rng) in
      let c = Array.init n (fun _ -> 0.1 +. Prng.Rng.uniform rng) in
      let d = Sta.Elmore.rc_ladder_delays ~r ~c in
      let ok = ref (d.(0) > 0.0) in
      for i = 1 to n - 1 do
        if d.(i) <= d.(i - 1) then ok := false
      done;
      !ok)

let prop_peri_dominates_inputs =
  QCheck.Test.make ~name:"peri output >= both inputs" ~count:100
    (QCheck.pair (QCheck.float_range 0.0 100.0) (QCheck.float_range 0.0 100.0))
    (fun (a, b) ->
      let s = Sta.Slew.peri ~slew_in:a ~wire_slew:b in
      s >= a -. 1e-9 && s >= b -. 1e-9)

let () =
  Alcotest.run "sta"
    [
      ( "elmore",
        [
          Alcotest.test_case "star formula" `Quick test_elmore_star_known;
          Alcotest.test_case "negative raises" `Quick test_elmore_star_negative_raises;
          Alcotest.test_case "ladder hand-computed" `Quick test_elmore_ladder_hand_computed;
          Alcotest.test_case "ladder monotone" `Quick test_elmore_ladder_monotone;
          Alcotest.test_case "ladder length mismatch" `Quick test_elmore_ladder_mismatch;
        ] );
      ( "slew",
        [
          Alcotest.test_case "bakoglu ln9" `Quick test_bakoglu;
          Alcotest.test_case "peri rss" `Quick test_peri_rss;
          Alcotest.test_case "sink slew composition" `Quick test_sink_slew_composition;
        ] );
      ( "timing",
        [
          Alcotest.test_case "hand-checked propagation" `Quick test_timing_nominal_hand_check;
          Alcotest.test_case "monotone in L" `Quick test_timing_monotone_in_l;
          Alcotest.test_case "W speeds up" `Quick test_timing_w_speeds_up;
          Alcotest.test_case "endpoint arrivals shape" `Quick test_timing_endpoints_shape;
          Alcotest.test_case "arrivals positive" `Quick test_timing_all_arrivals_positive;
          Alcotest.test_case "length mismatch raises" `Quick test_timing_length_mismatch;
          Alcotest.test_case "deterministic" `Quick test_timing_deterministic;
          Alcotest.test_case "dff source and sink" `Quick test_timing_dff_is_source_and_sink;
          Alcotest.test_case "slack zero on critical path" `Quick test_slack_report_zero_on_critical;
          Alcotest.test_case "slack scales with clock" `Quick test_slack_report_scales_with_clock;
          Alcotest.test_case "critical path structure" `Quick test_critical_path_structure;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_elmore_ladder_additive; prop_peri_dominates_inputs ] );
    ]
