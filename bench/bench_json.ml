(* Dependency-free JSON reporter for the benchmark harness: collects one
   record per measured run and writes them as a JSON array, so BENCH_*.json
   files accumulate a machine-readable perf trajectory next to the
   human-readable tables. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Assoc of (string * value) list

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* JSON has no nan/inf literals *)
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
      else Buffer.add_string b "null"
  | String s ->
      Buffer.add_char b '"';
      add_escaped b s;
      Buffer.add_char b '"'
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ", ";
          add b v)
        vs;
      Buffer.add_char b ']'
  | Assoc kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          add_escaped b k;
          Buffer.add_string b "\": ";
          add b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

type record = {
  name : string;  (** subcommand / measurement id, e.g. ["scale"] *)
  params : (string * value) list;  (** free-form inputs (kernel, mesh_frac…) *)
  wall_s : float;  (** total wall time of the measured work *)
  per_stage_s : (string * float) list;  (** stage name -> seconds *)
  counters : (string * int) list;
      (** Util.Trace work-counter deltas over the measured work (kernel
          evals, matvecs, …); empty when tracing was off *)
  mesh_n : int option;  (** mesh triangles, when a mesh is involved *)
  r : int option;  (** eigenpairs computed/retained, when applicable *)
  jobs : int option;  (** worker-domain override ([None] = default pool) *)
  samples : int option;  (** Monte Carlo samples, when applicable *)
}

(* A file is a list of entries discriminated by a ["kind"] field: [Row] is
   a timed measurement; [Meta] carries derived results or run config
   (crossover points, harness options) without abusing the row schema
   (wall_s = 0, null measurement fields). *)
type entry =
  | Row of record
  | Meta of { name : string; params : (string * value) list }

let record_value r =
  let opt f = function Some v -> f v | None -> Null in
  Assoc
    [
      ("kind", String "row");
      ("name", String r.name);
      ("params", Assoc r.params);
      ("wall_s", Float r.wall_s);
      ( "per_stage_s",
        Assoc (List.map (fun (k, v) -> (k, Float v)) r.per_stage_s) );
      ("counters", Assoc (List.map (fun (k, v) -> (k, Int v)) r.counters));
      ("mesh_n", opt (fun i -> Int i) r.mesh_n);
      ("r", opt (fun i -> Int i) r.r);
      ("jobs", opt (fun i -> Int i) r.jobs);
      ("samples", opt (fun i -> Int i) r.samples);
    ]

let entry_value = function
  | Row r -> record_value r
  | Meta { name; params } ->
      Assoc
        [ ("kind", String "meta"); ("name", String name); ("params", Assoc params) ]

(* one entry per line, so diffs between BENCH files stay line-oriented; the
   write is atomic (tmp+rename) so an interrupted run can never leave a
   truncated, unparsable BENCH file *)
let write_file path entries =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      add b (entry_value r))
    entries;
  Buffer.add_string b "\n]\n";
  Util.Fileio.write_atomic path (Buffer.contents b)
