(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (Section 5), plus the design-choice ablations of DESIGN.md.

   Usage: main.exe [subcommand] [options]
     subcommands: fig1 fig3a fig3b fig4 fig5 fig6a fig6b table1 eigtime scale
                  ablate-quad ablate-mesh ablate-eig ablate-kernel
                  ablate-recon ablate-basis ablate-qmc blocksta powergrid
                  smoke micro all  (default: all)
     options:
       --samples N      Monte Carlo samples per run (default 2000; the paper
                        uses 100K — error columns shrink accordingly)
       --table-samples N  samples for Table 1 runs (default 500)
       --max-gates N    largest circuit in the default Table 1 run (3000)
       --full           run every Table 1 circuit within the memory guard
       --mesh-frac F    max triangle area fraction (default 0.001 -> n~1546)
       --seed N         master seed (default 1)
       -j/--jobs N      worker domains for the parallel paths (1 = sequential;
                        default: available cores). Results do not depend on it.
       --json PATH      also write machine-readable benchmark records (one per
                        measured run) to PATH as a JSON array
*)

module P = Geometry.Point
module K = Kernels.Kernel

type options = {
  mutable samples : int;
  mutable table_samples : int;
  mutable max_gates : int;
  mutable full : bool;
  mutable mesh_frac : float;
  mutable seed : int;
  mutable jobs : int option;
  mutable json : string option;
  mutable trace : string option;
  mutable metrics : bool;
  mutable quick : bool;
}

let opts =
  {
    samples = 2000;
    table_samples = 500;
    max_gates = 3000;
    full = false;
    mesh_frac = 0.001;
    seed = 1;
    jobs = None;
    json = None;
    trace = None;
    metrics = false;
    quick = false;
  }

let pf fmt = Printf.printf fmt
let header title = pf "\n=== %s ===\n" title

let fmt_f = Util.Table.fmt_float

(* machine-readable records behind --json; collected unconditionally (it is
   cheap), written at exit when a path was given *)
let json_records : Bench_json.entry list ref = ref []

(* the worker-domain count a run actually used: an explicit -j as given,
   otherwise the default pool's size, resolved at report time — so rows
   never carry "jobs": null when -j was left to default *)
let effective_jobs () =
  match opts.jobs with
  | Some j -> j
  | None -> (
      match Util.Pool.default_if_created () with
      | Some pool -> Util.Pool.size pool
      | None -> Domain.recommended_domain_count ())

let emit ?(params = []) ?(stages = []) ?(counters = []) ?mesh_n ?r ?samples name
    ~wall_s =
  json_records :=
    Bench_json.Row
      {
        Bench_json.name;
        params;
        wall_s;
        per_stage_s = stages;
        counters;
        mesh_n;
        r;
        jobs = Some (effective_jobs ());
        samples;
      }
    :: !json_records

let emit_meta ?(params = []) name =
  json_records := Bench_json.Meta { name; params } :: !json_records

(* Util.Trace counter deltas since [c0] (a [Util.Trace.counters] snapshot);
   zero deltas are dropped so rows only carry the counters they moved. *)
let counters_since c0 =
  List.filter_map
    (fun (k, v) ->
      let v0 = match List.assoc_opt k c0 with Some x -> x | None -> 0 in
      if v > v0 then Some (k, v - v0) else None)
    (Util.Trace.counters ())

(* ---------------------------------------------------------------- *)
(* shared lab fixtures, built lazily so each subcommand only pays for
   what it uses *)

let paper_kernel = lazy (Kernels.Fit.paper_gaussian ())

let paper_mesh =
  lazy
    (let result, dt =
       Util.Timer.time (fun () ->
           Geometry.Refine.mesh Geometry.Rect.unit_die
             ~max_area_fraction:opts.mesh_frac ~min_angle_deg:28.0)
     in
     pf "[lab] mesh: n = %d triangles, h = %.4f, min angle = %.1f deg (%.2fs)\n%!"
       (Geometry.Mesh.size result.Geometry.Geometry_intf.mesh)
       (Geometry.Mesh.h_max result.Geometry.Geometry_intf.mesh)
       (Geometry.Mesh.min_angle_deg result.Geometry.Geometry_intf.mesh)
       dt;
     result.Geometry.Geometry_intf.mesh)

let paper_solution_time = ref nan

let paper_solution =
  lazy
    (let mesh = Lazy.force paper_mesh in
     let kernel = Lazy.force paper_kernel in
     let count = min 200 (Geometry.Mesh.size mesh) in
     let sol, dt =
       Util.Timer.time (fun () ->
           Kle.Galerkin.solve
             ~solver:(Kle.Galerkin.Lanczos { count })
             ?jobs:opts.jobs mesh kernel)
     in
     paper_solution_time := dt;
     pf "[lab] KLE eigensolution: first %d pairs in %.2fs (paper: 11.2s in Matlab)\n%!"
       count dt;
     sol)

let paper_model =
  lazy
    (let sol = Lazy.force paper_solution in
     let n = Geometry.Mesh.size (Lazy.force paper_mesh) in
     let r = Kle.Model.choose_r ~n_total:n sol.Kle.Galerkin.eigenvalues in
     pf "[lab] truncation rule selects r = %d (paper: 25)\n%!" r;
     Kle.Model.create ~r sol)

(* circuit setups are cached: fig6a/fig6b/table1 share c1908 etc. *)
let circuit_cache : (string, Ssta.Experiment.circuit_setup) Hashtbl.t = Hashtbl.create 8

let circuit name =
  match Hashtbl.find_opt circuit_cache name with
  | Some s -> s
  | None ->
      let netlist = Circuit.Generator.generate_paper name in
      let s, dt = Util.Timer.time (fun () -> Ssta.Experiment.setup_circuit netlist) in
      pf "[lab] %s: %d gates placed and prepared (%.2fs)\n%!" name
        (Circuit.Netlist.logic_gate_count netlist)
        dt;
      Hashtbl.replace circuit_cache name s;
      s

(* Algorithm 2 sampler from a precomputed model (mesh/eigensolution shared
   across circuits; eigentime is reported separately, as in the paper) *)
let a2_sampler_of_model model locations =
  let sampler, dt = Util.Timer.time (fun () -> Kle.Sampler.create model locations) in
  let sample rng ~n =
    Array.init 4 (fun _ -> Kle.Sampler.sample_matrix sampler rng ~n)
  in
  (sample, dt)

(* ---------------------------------------------------------------- *)
(* Fig 1(a): the Gaussian covariance kernel over the die *)

let fig1 () =
  header "Fig 1(a): Gaussian covariance kernel, x fixed at die center";
  let kernel = Lazy.force paper_kernel in
  pf "kernel: %s\n" (K.name kernel);
  let xs = Util.Arrayx.float_range ~start:(-1.0) ~stop:1.0 ~count:9 in
  pf "%8s" "y\\x";
  Array.iter (fun x -> pf "%8.2f" x) xs;
  pf "\n";
  Array.iter
    (fun y ->
      pf "%8.2f" y;
      Array.iter
        (fun x -> pf "%8.3f" (K.eval kernel (P.make 0.0 0.0) (P.make x y)))
        xs;
      pf "\n")
    xs

(* ---------------------------------------------------------------- *)
(* Fig 3(a): best fit of Gaussian and exponential kernels to the linear
   cone correlogram of Friedberg et al. *)

let fig3a () =
  header "Fig 3(a): kernel fits to the measurement-backed linear cone";
  let rho = 1.0 and vmax = 2.0 in
  let g1 = Kernels.Fit.fit_gaussian_to_cone ~dim:`D1 ~rho ~vmax () in
  let e1 = Kernels.Fit.fit_exponential_to_cone ~dim:`D1 ~rho ~vmax () in
  let t =
    Util.Table.create
      ~columns:
        [ ("fit (1-D, Fig 3a)", Util.Table.Left); ("kernel", Util.Table.Left);
          ("SSE", Util.Table.Right) ]
  in
  Util.Table.add_row t
    [ "gaussian"; K.name g1.Kernels.Fit.kernel; fmt_f ~digits:4 g1.Kernels.Fit.sse ];
  Util.Table.add_row t
    [ "exponential"; K.name e1.Kernels.Fit.kernel; fmt_f ~digits:4 e1.Kernels.Fit.sse ];
  Util.Table.print t;
  pf "expected shape: gaussian SSE < exponential SSE (gaussian hugs the cone)\n";
  pf "=> %s\n"
    (if g1.Kernels.Fit.sse < e1.Kernels.Fit.sse then "REPRODUCED" else "NOT reproduced");
  let g2 = Kernels.Fit.fit_gaussian_to_cone ~dim:`D2 ~rho ~vmax:(2.0 *. sqrt 2.0) () in
  pf "2-D calibration used in all experiments: %s\n" (K.name g2.Kernels.Fit.kernel);
  pf "\n%8s %10s %10s %10s\n" "v" "cone" "gauss-fit" "exp-fit";
  Array.iter
    (fun v ->
      pf "%8.3f %10.4f %10.4f %10.4f\n" v
        (Float.max 0.0 (1.0 -. (v /. rho)))
        (K.eval_distance g1.Kernels.Fit.kernel v)
        (K.eval_distance e1.Kernels.Fit.kernel v))
    (Util.Arrayx.float_range ~start:0.0 ~stop:vmax ~count:11)

(* ---------------------------------------------------------------- *)
(* Fig 3(b): kernel reconstruction error from r = 25 eigenpairs *)

let fig3b () =
  header "Fig 3(b): kernel reconstruction error from r=25 eigenpairs";
  let model = Lazy.force paper_model in
  let err_center = Kle.Model.reconstruction_error model in
  let err_pairwise = Kle.Model.reconstruction_error_pairwise ~stride:7 model in
  let err_grid = Kle.Model.reconstruction_error_grid ~grid:41 model in
  pf "max |Khat - K| from die center over mesh nodes : %.4f  (paper: 0.016)\n" err_center;
  pf "max |Khat - K| over node pairs (subsampled)    : %.4f\n" err_pairwise;
  pf "max |Khat - K| on an arbitrary 41x41 grid      : %.4f  (adds piecewise-constant floor)\n"
    err_grid;
  pf "captured variance fraction at r=%d             : %.4f\n" model.Kle.Model.r
    (Kle.Model.captured_variance_fraction model)

(* ---------------------------------------------------------------- *)
(* Fig 4: first and second eigenfunctions (ASCII shading) *)

let fig4 () =
  header "Fig 4: first two eigenfunctions of the Gaussian kernel";
  let model = Lazy.force paper_model in
  let shade v vmax =
    let ramp = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
    let t = (v /. vmax *. 0.5) +. 0.5 in
    let i = max 0 (min 9 (int_of_float (t *. 9.99))) in
    ramp.(i)
  in
  let print_fn j =
    let grid = 31 in
    let coords = Util.Arrayx.float_range ~start:(-0.99) ~stop:0.99 ~count:grid in
    let vmax = ref 1e-12 in
    Array.iter
      (fun y ->
        Array.iter
          (fun x ->
            vmax :=
              Float.max !vmax
                (Float.abs (Kle.Model.eval_eigenfunction model j (P.make x y))))
          coords)
      coords;
    pf "eigenfunction %d (lambda = %.4f), range +-%.3f:\n" (j + 1)
      (Kle.Model.eigenvalues model).(j)
      !vmax;
    Array.iter
      (fun y ->
        Array.iter
          (fun x ->
            let v = Kle.Model.eval_eigenfunction model j (P.make x y) in
            print_char (shade v !vmax))
          coords;
        print_newline ())
      coords;
    (* Fourier-like signature: count sign changes along the x axis *)
    let changes = ref 0 in
    let prev = ref (Kle.Model.eval_eigenfunction model j (P.make (-0.99) 0.0)) in
    Array.iter
      (fun x ->
        let v = Kle.Model.eval_eigenfunction model j (P.make x 0.0) in
        if v *. !prev < 0.0 then incr changes;
        prev := v)
      (Util.Arrayx.float_range ~start:(-0.99) ~stop:0.99 ~count:101);
    pf "sign changes along y = 0: %d\n\n" !changes
  in
  print_fn 0;
  print_fn 1;
  pf "expected shape: 1st eigenfunction has no interior zero crossing (DC-like),\n";
  pf "2nd has exactly one (first harmonic) - the \"Fourier series type behavior\".\n"

(* ---------------------------------------------------------------- *)
(* Fig 5: eigenvalue decay + the truncation rule *)

let fig5 () =
  header "Fig 5: eigenvalue decay of the Gaussian kernel";
  let sol = Lazy.force paper_solution in
  let vals = sol.Kle.Galerkin.eigenvalues in
  let n = Geometry.Mesh.size (Lazy.force paper_mesh) in
  pf "first eigenvalues (of %d computed, mesh n = %d):\n" (Array.length vals) n;
  pf "%6s %12s %14s\n" "j" "lambda_j" "cum. fraction";
  let total = Kle.Galerkin.trace (Lazy.force paper_mesh) (Lazy.force paper_kernel) in
  let cum = ref 0.0 in
  Array.iteri
    (fun j v ->
      cum := !cum +. v;
      if j < 12 || (j < 60 && (j + 1) mod 5 = 0) || (j + 1) mod 50 = 0 then
        pf "%6d %12.5f %14.5f\n" (j + 1) v (!cum /. total))
    vals;
  let r = Kle.Model.choose_r ~n_total:n vals in
  pf "truncation rule (tolerance 1%%): r = %d  (paper: 25)\n" r;
  pf "variance captured by r pairs: %.2f%%\n"
    (100.0 *. Util.Arrayx.sum (Array.sub vals 0 r) /. total)

(* ---------------------------------------------------------------- *)
(* Fig 6 support: sigma_d error of the KLE STA vs the MC reference *)

let reference_mc setup ~samples =
  let proc = Ssta.Process.paper_default () in
  let a1, prep_dt =
    Util.Timer.time (fun () ->
        Ssta.Algorithm1.prepare ?jobs:opts.jobs proc setup.Ssta.Experiment.locations)
  in
  let mc =
    Ssta.Experiment.run_mc ?jobs:opts.jobs setup
      ~sampler:(Ssta.Algorithm1.sample_block a1)
      ~seed:(opts.seed + 100) ~n:samples
  in
  (mc, prep_dt)

let kle_mc setup ~model ~samples ~seed =
  let sample, expansion_dt =
    a2_sampler_of_model model setup.Ssta.Experiment.locations
  in
  let mc = Ssta.Experiment.run_mc ?jobs:opts.jobs setup ~sampler:sample ~seed ~n:samples in
  (mc, expansion_dt)

let fig6a () =
  header "Fig 6(a): sigma_d error vs number of eigenpairs r (n fixed)";
  let setup = circuit "c1908" in
  let sol = Lazy.force paper_solution in
  let mc_ref, _ = reference_mc setup ~samples:opts.samples in
  pf "reference: %d-sample MC STA on c1908 (%d gates); mu = %.1f ps, sigma = %.2f ps\n"
    opts.samples
    (Array.length setup.Ssta.Experiment.locations)
    mc_ref.Ssta.Experiment.worst_mean mc_ref.Ssta.Experiment.worst_sigma;
  let t =
    Util.Table.create
      ~columns:
        [ ("r", Util.Table.Right); ("sigma err avg outputs (%)", Util.Table.Right);
          ("e_sigma worst-delay (%)", Util.Table.Right) ]
  in
  List.iteri
    (fun i r ->
      let model = Kle.Model.create ~r sol in
      let mc, _ = kle_mc setup ~model ~samples:opts.samples ~seed:(opts.seed + 200 + i) in
      let cmp =
        Ssta.Experiment.compare ~reference:mc_ref ~reference_setup_seconds:0.0
          ~candidate:mc ~candidate_setup_seconds:0.0
      in
      Util.Table.add_row t
        [ string_of_int r;
          fmt_f ~digits:3 cmp.Ssta.Experiment.sigma_err_avg_outputs_pct;
          fmt_f ~digits:3 cmp.Ssta.Experiment.e_sigma_pct ])
    [ 1; 2; 5; 10; 15; 20; 25; 30; 40 ];
  Util.Table.print t;
  pf "expected shape: error decreases with r and flattens around r ~ 25\n";
  pf "(MC noise floor at %d samples is ~%.1f%% on sigma estimates)\n" opts.samples
    (100.0 /. sqrt (2.0 *. float_of_int opts.samples))

let fig6b () =
  header "Fig 6(b): sigma_d error vs number of triangles n (r = 25)";
  let setup = circuit "c1908" in
  let kernel = Lazy.force paper_kernel in
  let mc_ref, _ = reference_mc setup ~samples:opts.samples in
  let t =
    Util.Table.create
      ~columns:
        [ ("n (triangles)", Util.Table.Right); ("h", Util.Table.Right);
          ("sigma err avg outputs (%)", Util.Table.Right) ]
  in
  List.iteri
    (fun i frac ->
      let mesh =
        (Geometry.Refine.mesh Geometry.Rect.unit_die ~max_area_fraction:frac
           ~min_angle_deg:28.0)
          .Geometry.Geometry_intf.mesh
      in
      let n = Geometry.Mesh.size mesh in
      let count = min 60 n in
      let sol = Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count }) mesh kernel in
      let r = min 25 count in
      let model = Kle.Model.create ~r sol in
      let mc, _ = kle_mc setup ~model ~samples:opts.samples ~seed:(opts.seed + 300 + i) in
      let cmp =
        Ssta.Experiment.compare ~reference:mc_ref ~reference_setup_seconds:0.0
          ~candidate:mc ~candidate_setup_seconds:0.0
      in
      Util.Table.add_row t
        [ string_of_int n; fmt_f ~digits:4 (Geometry.Mesh.h_max mesh);
          fmt_f ~digits:3 cmp.Ssta.Experiment.sigma_err_avg_outputs_pct ])
    [ 0.02; 0.01; 0.006; 0.003; 0.0015; 0.001 ];
  Util.Table.print t;
  pf "expected shape: error decreases with n, saturating at the MC noise floor\n"

(* ---------------------------------------------------------------- *)
(* Table 1: per-circuit comparison of MC STA vs covariance-kernel STA *)

let memory_guard_bytes = 2_000_000_000

let table1 () =
  header "Table 1: worst-delay mean/sigma mismatch and speedup per circuit";
  let samples = opts.table_samples in
  pf "samples per run: %d (paper: 100K); max gates: %s\n" samples
    (if opts.full then "unlimited (--full)" else string_of_int opts.max_gates);
  let model = Lazy.force paper_model in
  pf "KLE eigensolution shared across circuits (reported separately, as in the paper)\n";
  let t =
    Util.Table.create
      ~columns:
        [ ("Circuit", Util.Table.Left); ("N_g", Util.Table.Right);
          ("e_mu (%)", Util.Table.Right); ("e_sigma (%)", Util.Table.Right);
          ("Speedup", Util.Table.Right); ("t_MC (s)", Util.Table.Right);
          ("t_KLE (s)", Util.Table.Right) ]
  in
  let skipped = ref [] in
  List.iteri
    (fun idx (name, n_gates) ->
      let mem = Ssta.Algorithm1.memory_bytes ~n_locations:n_gates ~n_parameters:1 in
      if (not opts.full) && n_gates > opts.max_gates then
        skipped := (name, n_gates, "over --max-gates") :: !skipped
      else if mem > memory_guard_bytes then
        skipped := (name, n_gates, "memory guard") :: !skipped
      else begin
        let setup = circuit name in
        let mc_ref, a1_setup = reference_mc setup ~samples in
        let mc_kle, a2_setup =
          kle_mc setup ~model ~samples ~seed:(opts.seed + 400 + idx)
        in
        let cmp =
          Ssta.Experiment.compare ~reference:mc_ref ~reference_setup_seconds:a1_setup
            ~candidate:mc_kle ~candidate_setup_seconds:a2_setup
        in
        let total r setup_s =
          setup_s +. r.Ssta.Experiment.sample_seconds +. r.Ssta.Experiment.sta_seconds
        in
        Util.Table.add_row t
          [ name; string_of_int n_gates;
            fmt_f ~digits:3 cmp.Ssta.Experiment.e_mu_pct;
            fmt_f ~digits:3 cmp.Ssta.Experiment.e_sigma_pct;
            fmt_f ~digits:2 cmp.Ssta.Experiment.speedup;
            fmt_f ~digits:2 (total mc_ref a1_setup);
            fmt_f ~digits:2 (total mc_kle a2_setup) ];
        pf "[table1] %s done\n%!" name
      end)
    Circuit.Generator.paper_suite;
  Util.Table.print t;
  List.iter
    (fun (name, n, why) -> pf "skipped %-8s (N_g = %5d): %s\n" name n why)
    (List.rev !skipped);
  pf "\npaper shape to compare: e_mu < 0.11%%, e_sigma < 5.7%%, speedup rising\n";
  pf "from ~0.3 at 383 gates to ~10x at 10-20k gates (crossover near ~1.5k gates).\n";
  pf "With %d samples the e_sigma noise floor is ~%.1f%%.\n" samples
    (100.0 /. sqrt (2.0 *. float_of_int samples))

(* ---------------------------------------------------------------- *)
(* eigentime: the paper's "eigenpair computation takes 11.2s" *)

let eigtime () =
  header "Eigenpair computation time (paper Sec 5.2: 11.2s in Matlab)";
  let mesh = Lazy.force paper_mesh in
  let kernel = Lazy.force paper_kernel in
  let c0 = Util.Trace.counters () in
  let _, dt_assemble =
    Util.Timer.time (fun () -> Kle.Galerkin.assemble ?jobs:opts.jobs mesh kernel)
  in
  ignore (Lazy.force paper_solution);
  pf "matrix assembly (n = %d): %.2fs\n" (Geometry.Mesh.size mesh) dt_assemble;
  pf "Lanczos top-200 eigensolution: %.2fs (see [lab] line above)\n" !paper_solution_time;
  emit "eigtime"
    ~params:[ ("mesh_frac", Bench_json.Float opts.mesh_frac) ]
    ~stages:[ ("assemble", dt_assemble); ("lanczos", !paper_solution_time) ]
    ~counters:(counters_since c0)
    ~mesh_n:(Geometry.Mesh.size mesh)
    ~r:(min 200 (Geometry.Mesh.size mesh))
    ~wall_s:(dt_assemble +. !paper_solution_time)

(* ---------------------------------------------------------------- *)
(* scale: sweep the mesh size across all three apply strategies.  Uses a
   Matern kernel with non-half-integer smoothness, whose exact evaluation
   goes through Bessel-K quadrature — the expensive-kernel regime the
   radial profile table targets.  The assembled path pays ~n^2/2 exact
   evaluations; the table (matrix-free) path pays a fixed table build plus
   O(n^2) cheap lookups per matvec; the hierarchical path pays an
   O(n log n) ACA build once and O(n log n) per matvec after, so it is the
   only strategy that survives past n ~ 10^4.  Expensive references are
   dropped as n grows (assembled above [asm_cap], table above [table_cap]);
   accuracy is checked against the best reference still standing. *)

let scale () =
  header "Scale: assembled vs table vs hierarchical eigensolve";
  let kernel = K.Matern { b = 2.0; s = 2.3 } in
  let count_cap = 25 in
  (* ACA block tolerance 1e-8; the eigenvalue gate is 1e-6 — two orders of
     margin absorb the Frobenius-to-spectral slack of the block bound *)
  let hier = { Kle.Hmatrix.default_params with Kle.Hmatrix.tol = 1e-8 } in
  let gate = 1e-6 in
  let asm_cap = 3500 and table_cap = 7000 in
  pf "kernel: %s (exact evaluation via Bessel-K quadrature)\n" (K.name kernel);
  pf "ACA tol %.0e, eta %g, leaf %d; gate %.0e on the leading k-2 eigenvalues\n"
    hier.Kle.Hmatrix.tol hier.Kle.Hmatrix.eta hier.Kle.Hmatrix.leaf_size gate;
  let t =
    Util.Table.create
      ~columns:
        [ ("n (triangles)", Util.Table.Right); ("k", Util.Table.Right);
          ("assembled (s)", Util.Table.Right); ("table (s)", Util.Table.Right);
          ("hier build (s)", Util.Table.Right); ("hier solve (s)", Util.Table.Right);
          ("entry evals", Util.Table.Right); ("mem vs dense", Util.Table.Right);
          ("max rel dlambda", Util.Table.Right) ]
  in
  let crossover = ref None in
  (* (n, entry_evals, words) of the hierarchical builds, for the
     growth-exponent fit and the large-n extrapolation *)
  let hpoints = ref [] in
  List.iter
    (fun frac ->
      let mesh =
        (Geometry.Refine.mesh Geometry.Rect.unit_die ~max_area_fraction:frac
           ~min_angle_deg:28.0)
          .Geometry.Geometry_intf.mesh
      in
      let n = Geometry.Mesh.size mesh in
      let count = min count_cap n in
      let solver = Kle.Galerkin.Lanczos { count } in
      let asm =
        if n > asm_cap then None
        else
          Some
            (Util.Timer.time (fun () ->
                 Kle.Galerkin.solve ~mode:Kle.Galerkin.Assembled ~solver
                   ?jobs:opts.jobs mesh kernel))
      in
      let tab =
        if n > table_cap then None
        else
          Some
            (Util.Timer.time (fun () ->
                 Kle.Galerkin.solve ~mode:Kle.Galerkin.Matrix_free ~solver
                   ?jobs:opts.jobs mesh kernel))
      in
      (* hierarchical: build and solve timed apart, so the one-off
         compression cost is visible next to the per-solve payoff *)
      let c0 = Util.Trace.counters () in
      let hm, t_build =
        Util.Timer.time (fun () ->
            Kle.Operator.hmatrix_galerkin ~hier ?jobs:opts.jobs mesh kernel)
      in
      let hm =
        match hm with
        | Ok h -> h
        | Error msg ->
            pf "FAIL: hierarchical build stalled at n=%d: %s\n" n msg;
            exit 1
      in
      let hsol, t_hsolve =
        Util.Timer.time (fun () ->
            Kle.Galerkin.solve_with_operator ~solver ?jobs:opts.jobs
              ~op:(Kle.Operator.of_hmatrix hm) mesh kernel)
      in
      let stats = hm.Kle.Hmatrix.stats in
      let words = Kle.Hmatrix.words hm in
      let dense_words = n * n in
      hpoints := (n, stats.Kle.Hmatrix.entry_evals, words) :: !hpoints;
      (* accuracy vs the best exact-apply reference still standing; the
         leading k-2 values only — at the Krylov-budget edge the last pair
         is loose_ok territory, where near-degenerate tail eigenvalues may
         index-shift between operators differing by the ACA tolerance *)
      let reference = match asm with Some (s, _) -> Some s | None -> Option.map fst tab in
      let rel =
        Option.map
          (fun (rsol : Kle.Galerkin.solution) ->
            let acc = ref 0.0 in
            for j = 0 to count - 3 do
              let a = rsol.Kle.Galerkin.eigenvalues.(j)
              and h = hsol.Kle.Galerkin.eigenvalues.(j) in
              acc :=
                Float.max !acc
                  (Float.abs (a -. h) /. Float.max (Float.abs a) 1e-300)
            done;
            !acc)
          reference
      in
      (match rel with
      | Some r when r > gate ->
          pf "FAIL: hierarchical eigenvalues off by %.2e (> %.0e) at n=%d\n" r gate n;
          exit 1
      | _ -> ());
      let t_hier = t_build +. t_hsolve in
      (match tab with
      | Some (_, t_tab) when t_hier < t_tab && Option.is_none !crossover ->
          crossover := Some n
      | _ -> ());
      let opt_time = function Some (_, dt) -> fmt_f ~digits:3 dt | None -> "—" in
      Util.Table.add_row t
        [ string_of_int n; string_of_int count; opt_time asm; opt_time tab;
          fmt_f ~digits:3 t_build; fmt_f ~digits:3 t_hsolve;
          string_of_int stats.Kle.Hmatrix.entry_evals;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int words /. float_of_int dense_words);
          (match rel with Some r -> Printf.sprintf "%.2e" r | None -> "—") ];
      let stages =
        List.concat
          [ (match asm with Some (_, dt) -> [ ("assembled", dt) ] | None -> []);
            (match tab with Some (_, dt) -> [ ("table", dt) ] | None -> []);
            [ ("hier_build", t_build); ("hier_solve", t_hsolve) ] ]
      in
      emit "scale"
        ~params:
          [ ("kernel", Bench_json.String (K.name kernel));
            ("mesh_frac", Bench_json.Float frac);
            ("aca_tol", Bench_json.Float hier.Kle.Hmatrix.tol);
            ( "max_rel_dlambda",
              match rel with Some r -> Bench_json.Float r | None -> Bench_json.Null );
            ("hier_words", Bench_json.Int words);
            ("dense_words", Bench_json.Int dense_words);
            ("near_blocks", Bench_json.Int stats.Kle.Hmatrix.near_blocks);
            ("far_blocks", Bench_json.Int stats.Kle.Hmatrix.far_blocks);
            ("aca_rank_sum", Bench_json.Int stats.Kle.Hmatrix.rank_sum) ]
        ~stages
        ~counters:(counters_since c0)
        ~mesh_n:n ~r:count
        ~wall_s:
          (List.fold_left (fun a (_, dt) -> a +. dt) 0.0 stages))
    (* sweep starts above n = 4k+80, where the Lanczos Krylov budget stops
       covering the whole space: at full dimension the recurrence breaks down
       and can emit ghost duplicate eigenvalues, which would fail the
       agreement gate for reasons unrelated to the apply strategy *)
    [ 0.005; 0.0025; 0.00125; 0.001; 0.0005; 0.00025; 0.0001 ];
  Util.Table.print t;
  (match !crossover with
  | Some n ->
      pf "crossover: hierarchical (build + solve) beats the table apply from n = %d onwards\n" n;
      emit_meta "scale-crossover" ~params:[ ("crossover_n", Bench_json.Int n) ]
  | None ->
      pf "no crossover in this sweep: the table apply won at every measured n\n";
      emit_meta "scale-crossover" ~params:[ ("crossover_n", Bench_json.Null) ]);
  (* growth exponents from the last two hierarchical points, and the n = 10^5
     extrapolation the quadratic strategies cannot reach. Work and memory are
     fitted separately: entry evaluations and stored words grow at different
     rates, so sharing one exponent would overstate whichever is flatter. *)
  (match !hpoints with
  | (n2, e2, w2) :: (n1, e1, w1) :: _ when n2 > n1 ->
      let fit_exponent v1 v2 =
        log (float_of_int v2 /. float_of_int v1)
        /. log (float_of_int n2 /. float_of_int n1)
      in
      let work_exponent = fit_exponent e1 e2 in
      let mem_exponent = fit_exponent w1 w2 in
      let nx = 100_000 in
      let scale_to exponent v =
        float_of_int v *. ((float_of_int nx /. float_of_int n2) ** exponent)
      in
      pf
        "growth exponents over the last doubling: entry evals n^%.2f, words n^%.2f \
         (dense: n^2)\n"
        work_exponent mem_exponent;
      pf "extrapolated to n = %d: %.2e entry evals / %.2e words (dense: %.2e / %.2e)\n"
        nx
        (scale_to work_exponent e2)
        (scale_to mem_exponent w2)
        (0.5 *. float_of_int nx *. float_of_int nx)
        (float_of_int nx *. float_of_int nx);
      emit_meta "scale-extrapolation"
        ~params:
          [ ("exponent", Bench_json.Float work_exponent);
            ("mem_exponent", Bench_json.Float mem_exponent);
            ("n", Bench_json.Int nx);
            ("entry_evals", Bench_json.Float (scale_to work_exponent e2));
            ("words", Bench_json.Float (scale_to mem_exponent w2)) ]
  | _ -> ());
  pf "eigenvalue agreement <= %.0e checked wherever an exact reference ran\n" gate

(* ---------------------------------------------------------------- *)
(* Ablations *)

let ablate_quad () =
  header "Ablation: quadrature order (centroid vs 3-point mid-edge)";
  let c = 1.0 in
  let kernel = K.Separable_exp_l1 { c } in
  let exact = Kernels.Analytic_kle.exp_2d ~c ~rect:Geometry.Rect.unit_die ~count:5 in
  let t =
    Util.Table.create
      ~columns:
        [ ("divisions", Util.Table.Right); ("n", Util.Table.Right);
          ("centroid max rel err", Util.Table.Right);
          ("mid-edge max rel err", Util.Table.Right) ]
  in
  List.iter
    (fun divisions ->
      let mesh = Geometry.Mesh.uniform Geometry.Rect.unit_die ~divisions in
      let err quadrature =
        let sol =
          Kle.Galerkin.solve ~quadrature ~solver:(Kle.Galerkin.Lanczos { count = 5 })
            mesh kernel
        in
        let worst = ref 0.0 in
        for i = 0 to 4 do
          let e = exact.(i).Kernels.Analytic_kle.lambda in
          worst :=
            Float.max !worst
              (Float.abs (sol.Kle.Galerkin.eigenvalues.(i) -. e) /. e)
        done;
        !worst
      in
      Util.Table.add_row t
        [ string_of_int divisions;
          string_of_int (Geometry.Mesh.size mesh);
          Printf.sprintf "%.2e" (err Kle.Galerkin.Centroid);
          Printf.sprintf "%.2e" (err Kle.Galerkin.Midedge) ])
    [ 3; 6; 12 ];
  Util.Table.print t;
  pf
    "expected: both converge with n (Theorem 2); mid-edge is tighter on coarse\n\
     meshes, while the exp kernel's diagonal kink erodes its edge as h shrinks.\n"

(* anisotropic grid mesh: nx x ny cells split along a diagonal, giving
   min angles of atan(ny/nx) when stretched *)
let anisotropic_mesh nx ny =
  let rect = Geometry.Rect.unit_die in
  let pts = Geometry.Rect.sample_grid rect ~nx:(nx + 1) ~ny:(ny + 1) in
  let tris = ref [] in
  for iy = 0 to ny - 1 do
    for ix = 0 to nx - 1 do
      let p00 = (iy * (nx + 1)) + ix in
      let p10 = p00 + 1 in
      let p01 = p00 + nx + 1 in
      let p11 = p01 + 1 in
      tris := (p00, p10, p11) :: (p00, p11, p01) :: !tris
    done
  done;
  Geometry.Mesh.make rect pts (Array.of_list !tris)

let ablate_mesh () =
  header "Ablation: element quality (equilateral-ish vs stretched) at equal n";
  let c = 1.0 in
  let kernel = K.Separable_exp_l1 { c } in
  let exact =
    (Kernels.Analytic_kle.exp_2d ~c ~rect:Geometry.Rect.unit_die ~count:1).(0)
      .Kernels.Analytic_kle.lambda
  in
  let t =
    Util.Table.create
      ~columns:
        [ ("mesh", Util.Table.Left); ("n", Util.Table.Right);
          ("min angle", Util.Table.Right); ("h", Util.Table.Right);
          ("lambda_1 rel err", Util.Table.Right) ]
  in
  let eval name mesh =
    let sol =
      Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count = 1 }) mesh kernel
    in
    Util.Table.add_row t
      [ name; string_of_int (Geometry.Mesh.size mesh);
        fmt_f ~digits:1 (Geometry.Mesh.min_angle_deg mesh);
        fmt_f ~digits:3 (Geometry.Mesh.h_max mesh);
        Printf.sprintf "%.2e"
          (Float.abs (sol.Kle.Galerkin.eigenvalues.(0) -. exact) /. exact) ]
  in
  (* same element count n = 512, increasingly stretched cells *)
  eval "16 x 16 (isotropic)" (anisotropic_mesh 16 16);
  eval "32 x 8 (4:1)" (anisotropic_mesh 32 8);
  eval "64 x 4 (16:1)" (anisotropic_mesh 64 4);
  eval "128 x 2 (64:1)" (anisotropic_mesh 128 2);
  eval "refined (28 deg)"
    (Geometry.Refine.mesh Geometry.Rect.unit_die ~max_area_fraction:(2.0 /. 256.0)
       ~min_angle_deg:28.0)
      .Geometry.Geometry_intf.mesh;
  Util.Table.print t;
  pf
    "expected: at equal n, stretched elements blow up h (Theorem 2's error\n\
     driver) and the eigenvalue error with it - why the paper constrains the\n\
     minimum angle.\n"

let ablate_eig () =
  header "Ablation: eigensolver (dense QL vs Lanczos top-k)";
  let mesh =
    (Geometry.Refine.mesh Geometry.Rect.unit_die ~max_area_fraction:0.01
       ~min_angle_deg:28.0)
      .Geometry.Geometry_intf.mesh
  in
  let kernel = Lazy.force paper_kernel in
  let dense, t_dense =
    Util.Timer.time (fun () -> Kle.Galerkin.solve ~solver:Kle.Galerkin.Dense mesh kernel)
  in
  let lanczos, t_lanczos =
    Util.Timer.time (fun () ->
        Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count = 25 }) mesh kernel)
  in
  let diff = ref 0.0 in
  for i = 0 to 24 do
    diff :=
      Float.max !diff
        (Float.abs
           (dense.Kle.Galerkin.eigenvalues.(i)
           -. lanczos.Kle.Galerkin.eigenvalues.(i)))
  done;
  pf "mesh n = %d\n" (Geometry.Mesh.size mesh);
  pf "dense (all pairs):   %.3fs\n" t_dense;
  pf "lanczos (25 pairs):  %.3fs\n" t_lanczos;
  pf "max |lambda| difference over 25 pairs: %.2e\n" !diff;
  pf "expected: agreement to ~1e-9; Lanczos much faster as n grows.\n"

let ablate_kernel () =
  header "Ablation: kernel family vs eigenvalue decay (r for 99% variance)";
  let mesh =
    (Geometry.Refine.mesh Geometry.Rect.unit_die ~max_area_fraction:0.004
       ~min_angle_deg:28.0)
      .Geometry.Geometry_intf.mesh
  in
  let n = Geometry.Mesh.size mesh in
  let t =
    Util.Table.create
      ~columns:
        [ ("kernel", Util.Table.Left); ("lambda_1", Util.Table.Right);
          ("r (trunc. rule)", Util.Table.Right);
          ("r (99% variance)", Util.Table.Right) ]
  in
  List.iter
    (fun kernel ->
      let count = min 150 n in
      let sol = Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count }) mesh kernel in
      let vals = sol.Kle.Galerkin.eigenvalues in
      let total = Kle.Galerkin.trace mesh kernel in
      let r_rule = Kle.Model.choose_r ~n_total:n vals in
      let r99 =
        let cum = ref 0.0 in
        let r = ref count in
        (try
           Array.iteri
             (fun i v ->
               cum := !cum +. v;
               if !cum >= 0.99 *. total then begin
                 r := i + 1;
                 raise Exit
               end)
             vals
         with Exit -> ());
        !r
      in
      Util.Table.add_row t
        [ K.name kernel; fmt_f ~digits:4 vals.(0); string_of_int r_rule;
          string_of_int r99 ])
    [
      Lazy.force paper_kernel;
      K.Matern { b = 2.0; s = 2.5 };
      K.Exponential { c = 1.5 };
      K.Spherical { rho = 1.0 };
    ];
  Util.Table.print t;
  pf "expected: smooth kernels (gaussian, high-s Matern) compress into few RVs;\n";
  pf "rough kernels (exponential) need many more - the cost of realism in the model.\n"

let ablate_recon () =
  header "Ablation: Algorithm 2 reconstruction (paper-literal vs direct gather)";
  let setup = circuit "c1908" in
  let model = Lazy.force paper_model in
  let sampler = Kle.Sampler.create model setup.Ssta.Experiment.locations in
  let n = opts.samples in
  let _, t_literal =
    Util.Timer.time (fun () ->
        ignore
          (Kle.Sampler.sample_matrix ~paper_literal:true sampler
             (Prng.Rng.create ~seed:1) ~n))
  in
  let _, t_direct =
    Util.Timer.time (fun () ->
        ignore (Kle.Sampler.sample_matrix_direct sampler (Prng.Rng.create ~seed:1) ~n))
  in
  pf "samples: %d, gates: %d, mesh n: %d, r: %d\n" n
    (Array.length setup.Ssta.Experiment.locations)
    (Geometry.Mesh.size model.Kle.Model.solution.Kle.Galerkin.mesh)
    model.Kle.Model.r;
  pf "paper-literal (expand all triangles, then gather): %.3fs\n" t_literal;
  pf "direct (expand only at gate rows):                 %.3fs\n" t_direct;
  pf "the overhead the paper attributes to eq. (28) is avoidable for fixed gates.\n"

let ablate_qmc () =
  header "Ablation: quasi-Monte Carlo in the reduced KLE space (a dividend of r=25)";
  let setup = circuit "c880" in
  let model = Lazy.force paper_model in
  let sampler = Kle.Sampler.create model setup.Ssta.Experiment.locations in
  let r = model.Kle.Model.r in
  (* sampler adapters: one parameter field per block, 4 independent streams *)
  let mc_sampler rng ~n =
    Array.init 4 (fun _ -> Kle.Sampler.sample_matrix_direct sampler rng ~n)
  in
  let qmc_sampler seqs _rng ~n =
    Array.map
      (fun seq -> Kle.Sampler.sample_matrix_with sampler ~xi:(Prng.Lowdisc.normal_matrix seq ~rows:n))
      seqs
  in
  (* tight reference *)
  let reference =
    Ssta.Experiment.run_mc setup ~sampler:mc_sampler ~seed:(opts.seed + 900) ~n:20_000
  in
  pf "reference: 20000-sample MC; mu = %.2f, sigma = %.3f\n" reference.Ssta.Experiment.worst_mean
    reference.Ssta.Experiment.worst_sigma;
  let t =
    Util.Table.create
      ~columns:
        [ ("N", Util.Table.Right); ("MC |mu err| (ps)", Util.Table.Right);
          ("QMC |mu err| (ps)", Util.Table.Right);
          ("MC |sigma err|", Util.Table.Right); ("QMC |sigma err|", Util.Table.Right) ]
  in
  let replications = 4 in
  List.iter
    (fun n ->
      let rms errs = sqrt (Util.Arrayx.sum (Array.map (fun e -> e *. e) errs) /. float_of_int replications) in
      let mu_mc = Array.make replications 0.0 and sd_mc = Array.make replications 0.0 in
      let mu_qmc = Array.make replications 0.0 and sd_qmc = Array.make replications 0.0 in
      for rep = 0 to replications - 1 do
        let res =
          Ssta.Experiment.run_mc setup ~sampler:mc_sampler
            ~seed:(opts.seed + 1000 + (13 * rep)) ~n
        in
        mu_mc.(rep) <- res.Ssta.Experiment.worst_mean -. reference.Ssta.Experiment.worst_mean;
        sd_mc.(rep) <- res.Ssta.Experiment.worst_sigma -. reference.Ssta.Experiment.worst_sigma;
        let shift = Prng.Rng.create ~seed:(opts.seed + 2000 + (7 * rep)) in
        let seqs = Array.init 4 (fun _ -> Prng.Lowdisc.create ~shift_rng:shift ~dim:r ()) in
        let res =
          Ssta.Experiment.run_mc setup ~sampler:(qmc_sampler seqs)
            ~seed:(opts.seed + 3000 + rep) ~n
        in
        mu_qmc.(rep) <- res.Ssta.Experiment.worst_mean -. reference.Ssta.Experiment.worst_mean;
        sd_qmc.(rep) <- res.Ssta.Experiment.worst_sigma -. reference.Ssta.Experiment.worst_sigma
      done;
      Util.Table.add_row t
        [ string_of_int n; fmt_f ~digits:3 (rms mu_mc); fmt_f ~digits:3 (rms mu_qmc);
          fmt_f ~digits:3 (rms sd_mc); fmt_f ~digits:3 (rms sd_qmc) ])
    [ 250; 1000; 3000 ];
  Util.Table.print t;
  pf
    "expected: on the MEAN, scrambled-Halton QMC beats MC by several-fold at\n\
     every N (usable only because KLE compressed the field into %d dims).\n\
     SIGMA keeps a small QMC bias (variance functionals need stronger\n\
     scrambling, e.g. Owen-scrambled Sobol); use MC for tail statistics.\n"
    r;
  ignore replications

let powergrid () =
  header "Extension: variational power-grid (IR drop) analysis with KLE leakage";
  let grid = Powergrid.Grid.create ~nodes_per_side:20 Geometry.Rect.unit_die in
  let leakage = Powergrid.Leakage.default in
  let model = Lazy.force paper_model in
  let proc = Ssta.Process.paper_default () in
  let samples = min opts.samples 2000 in
  let t =
    Util.Table.create
      ~columns:
        [ ("Circuit", Util.Table.Left); ("N_g", Util.Table.Right);
          ("e_mu (%)", Util.Table.Right); ("e_sigma (%)", Util.Table.Right);
          ("Speedup", Util.Table.Right) ]
  in
  List.iteri
    (fun idx name ->
      let setup = circuit name in
      let a1, a1_setup =
        Util.Timer.time (fun () ->
            Ssta.Algorithm1.prepare proc setup.Ssta.Experiment.locations)
      in
      let r1 =
        Powergrid.Analysis.run ~grid ~leakage
          ~gate_locations:setup.Ssta.Experiment.locations
          ~sampler:(Ssta.Algorithm1.sample_block a1)
          ~seed:(opts.seed + 700 + idx) ~n:samples ()
      in
      let kle_sample, a2_setup =
        a2_sampler_of_model model setup.Ssta.Experiment.locations
      in
      let r2 =
        Powergrid.Analysis.run ~grid ~leakage
          ~gate_locations:setup.Ssta.Experiment.locations ~sampler:kle_sample
          ~seed:(opts.seed + 800 + idx) ~n:samples ()
      in
      let rel a b = 100.0 *. Float.abs (a -. b) /. b in
      let total (r : Powergrid.Analysis.result) setup_s =
        setup_s +. r.Powergrid.Analysis.sample_seconds +. r.Powergrid.Analysis.solve_seconds
      in
      Util.Table.add_row t
        [ name;
          string_of_int (Array.length setup.Ssta.Experiment.locations);
          fmt_f ~digits:3
            (rel r2.Powergrid.Analysis.max_drop_mean r1.Powergrid.Analysis.max_drop_mean);
          fmt_f ~digits:3
            (rel r2.Powergrid.Analysis.max_drop_sigma r1.Powergrid.Analysis.max_drop_sigma);
          fmt_f ~digits:2 (total r1 a1_setup /. total r2 a2_setup) ])
    [ "c880"; "c1908"; "c3540" ];
  Util.Table.print t;
  pf
    "the paper's claim \"we expect these trends to replicate in other CAD\n\
     algorithms\": same KLE model, different consumer (lognormal leakage +\n\
     grid solve), same accuracy-and-speedup shape. %d samples, 20x20 grid.\n"
    samples

let blocksta () =
  header "Extension: block-based SSTA on the KLE basis (single pass vs Monte Carlo)";
  let model = Lazy.force paper_model in
  let models = Array.make 4 model in
  let t =
    Util.Table.create
      ~columns:
        [ ("Circuit", Util.Table.Left); ("N_g", Util.Table.Right);
          ("e_mu (%)", Util.Table.Right); ("e_sigma (%)", Util.Table.Right);
          ("t_block (ms)", Util.Table.Right); ("t_MC-KLE (s)", Util.Table.Right) ]
  in
  List.iteri
    (fun idx name ->
      let setup = circuit name in
      let blk = Ssta.Block_ssta.run setup ~models in
      let mc, _ = kle_mc setup ~model ~samples:opts.samples ~seed:(opts.seed + 600 + idx) in
      let e_mu, e_sigma = Ssta.Block_ssta.validate_against_mc blk ~reference:mc in
      Util.Table.add_row t
        [ name;
          string_of_int (Array.length setup.Ssta.Experiment.locations);
          fmt_f ~digits:3 e_mu; fmt_f ~digits:2 e_sigma;
          fmt_f ~digits:1 (1000.0 *. blk.Ssta.Block_ssta.analysis_seconds);
          fmt_f ~digits:2 (mc.Ssta.Experiment.sample_seconds +. mc.Ssta.Experiment.sta_seconds) ])
    [ "c880"; "c1908"; "c3540"; "s5378" ];
  Util.Table.print t;
  pf
    "the Chang-Sapatnekar-class consumer of the KLE basis: one canonical-form\n\
     pass with Clark's max replaces %d Monte Carlo timing passes; errors are\n\
     the Clark + linearization approximation, measured against MC on the SAME\n\
     KLE model (MC noise floor ~%.1f%% on sigma).\n"
    opts.samples
    (100.0 /. sqrt (2.0 *. float_of_int opts.samples))

let ablate_basis () =
  header "Ablation: Galerkin basis order (P0 piecewise-constant vs P1 linear)";
  let kernel = Lazy.force paper_kernel in
  let t =
    Util.Table.create
      ~columns:
        [ ("mesh", Util.Table.Right); ("n elems", Util.Table.Right);
          ("P0 grid recon err", Util.Table.Right);
          ("P1 grid recon err", Util.Table.Right) ]
  in
  List.iter
    (fun divisions ->
      let mesh = Geometry.Mesh.uniform Geometry.Rect.unit_die ~divisions in
      let p0 =
        Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count = 25 }) mesh kernel
      in
      let m0 = Kle.Model.create ~r:25 p0 in
      let p1 = Kle.P1.solve ~count:25 mesh kernel in
      let ev = Kle.P1.evaluator p1 in
      Util.Table.add_row t
        [ Printf.sprintf "%dx%d" divisions divisions;
          string_of_int (Geometry.Mesh.size mesh);
          fmt_f ~digits:4 (Kle.Model.reconstruction_error_grid ~grid:31 m0);
          fmt_f ~digits:4 (Kle.P1.reconstruction_error_grid ~grid:31 ev ~r:25) ])
    [ 6; 8; 10; 14 ];
  Util.Table.print t;
  pf
    "expected: the continuous P1 basis (the paper's \"higher order\" extension)\n\
     removes the blocky between-node floor of the piecewise-constant basis -\n\
     several times lower reconstruction error at equal mesh size.\n"

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks: one Test per table/figure pipeline kernel *)

let micro () =
  header "Bechamel micro-benchmarks (per table/figure pipeline stage)";
  let open Bechamel in
  let mesh_coarse = Geometry.Mesh.uniform Geometry.Rect.unit_die ~divisions:8 in
  let kernel = Lazy.force paper_kernel in
  let spd =
    Kernels.Validity.gram kernel
      (Kernels.Validity.random_points ~seed:3 ~n:300 Geometry.Rect.unit_die)
  in
  let mvn = Prng.Mvn.of_covariance spd in
  let sol =
    Kle.Galerkin.solve ~solver:(Kle.Galerkin.Lanczos { count = 25 }) mesh_coarse kernel
  in
  let model = Kle.Model.create ~r:25 sol in
  let setup = circuit "c880" in
  let kle_sampler = Kle.Sampler.create model setup.Ssta.Experiment.locations in
  let n_gates = Circuit.Netlist.size setup.Ssta.Experiment.netlist in
  let zeros = Array.make n_gates 0.0 in
  let rng = Prng.Rng.create ~seed:11 in
  let tests =
    [
      Test.make ~name:"fig3b/galerkin-assemble-n256"
        (Staged.stage (fun () -> ignore (Kle.Galerkin.assemble mesh_coarse kernel)));
      Test.make ~name:"fig5/lanczos-top25-n256"
        (Staged.stage (fun () ->
             ignore
               (Kle.Galerkin.solve
                  ~solver:(Kle.Galerkin.Lanczos { count = 25 })
                  mesh_coarse kernel)));
      Test.make ~name:"table1/cholesky-n300"
        (Staged.stage (fun () -> ignore (Linalg.Cholesky.factor_jittered spd)));
      Test.make ~name:"table1/mc-sample-row-n300"
        (Staged.stage (fun () -> ignore (Prng.Mvn.sample mvn rng)));
      Test.make ~name:"table1/kle-sample-row-c880"
        (Staged.stage (fun () -> ignore (Kle.Sampler.sample kle_sampler rng)));
      Test.make ~name:"table1/sta-run-c880"
        (Staged.stage (fun () ->
             ignore
               (Sta.Timing.run setup.Ssta.Experiment.sta ~l:zeros ~w:zeros ~vt:zeros
                  ~tox:zeros)));
      Test.make ~name:"fig6b/mesh-refine-n150"
        (Staged.stage (fun () ->
             ignore
               (Geometry.Refine.mesh Geometry.Rect.unit_die ~max_area_fraction:0.01
                  ~min_angle_deg:28.0)));
      Test.make ~name:"fig3a/kernel-fit"
        (Staged.stage (fun () ->
             ignore (Kernels.Fit.fit_gaussian_to_cone ~dim:`D1 ~rho:1.0 ~vmax:2.0 ())));
    ]
  in
  let test = Test.make_grouped ~name:"kle-ssta" ~fmt:"%s %s" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with Some (x :: _) -> x | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let t =
    Util.Table.create
      ~columns:[ ("benchmark", Util.Table.Left); ("time/run", Util.Table.Right) ]
  in
  let human ns =
    if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, ns) -> Util.Table.add_row t [ name; human ns ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows);
  Util.Table.print t

(* ---------------------------------------------------------------- *)
(* smoke: fast CI check of the domain-parallel paths — asserts that a tiny
   Galerkin assembly and a small Monte Carlo run are bit-identical at -j 1
   and -j 2, and prints their timings *)

let smoke () =
  header "Smoke: parallel paths bit-identical across -j (tiny fixtures)";
  let c0 = Util.Trace.counters () in
  let mesh = Geometry.Mesh.uniform Geometry.Rect.unit_die ~divisions:6 in
  let kernel = Lazy.force paper_kernel in
  let assemble jobs = Kle.Galerkin.assemble ~jobs mesh kernel in
  let c1, dt1 = Util.Timer.time (fun () -> assemble 1) in
  let c2, dt2 = Util.Timer.time (fun () -> assemble 2) in
  let mats_equal x y =
    let rx = Linalg.Mat.raw x and ry = Linalg.Mat.raw y in
    let n = Bigarray.Array1.dim rx in
    assert (n = Bigarray.Array1.dim ry);
    let ok = ref true in
    for i = 0 to n - 1 do
      if Bigarray.Array1.unsafe_get rx i <> Bigarray.Array1.unsafe_get ry i then
        ok := false
    done;
    !ok
  in
  if not (mats_equal c1 c2) then begin
    pf "FAIL: Galerkin assembly differs between -j 1 and -j 2\n";
    exit 1
  end;
  pf "galerkin assemble n=%d: -j 1 %.3fs, -j 2 %.3fs — bit-identical\n"
    (Geometry.Mesh.size mesh) dt1 dt2;
  let netlist =
    Circuit.Generator.generate
      { Circuit.Generator.name = "smoke"; n_gates = 160; n_inputs = 12;
        n_outputs = 10; dff_fraction = 0.0; seed = 7 }
  in
  let setup = Ssta.Experiment.setup_circuit netlist in
  let proc = Ssta.Process.paper_default () in
  let a1s = Ssta.Algorithm1.prepare ~jobs:1 proc setup.Ssta.Experiment.locations in
  let sampler = Ssta.Algorithm1.sample_block a1s in
  let run jobs =
    Util.Timer.time (fun () ->
        Ssta.Experiment.run_mc ~jobs ~batch:64 setup ~sampler ~seed:opts.seed ~n:200)
  in
  let r1, mdt1 = run 1 in
  let r2, mdt2 = run 2 in
  let same =
    r1.Ssta.Experiment.worst_mean = r2.Ssta.Experiment.worst_mean
    && r1.Ssta.Experiment.worst_sigma = r2.Ssta.Experiment.worst_sigma
    && r1.Ssta.Experiment.endpoint_mean = r2.Ssta.Experiment.endpoint_mean
    && r1.Ssta.Experiment.endpoint_sigma = r2.Ssta.Experiment.endpoint_sigma
  in
  if not same then begin
    pf "FAIL: run_mc differs between -j 1 and -j 2\n";
    exit 1
  end;
  pf "run_mc %d gates x 200 samples: -j 1 %.3fs, -j 2 %.3fs — bit-identical\n"
    (Circuit.Netlist.logic_gate_count netlist) mdt1 mdt2;
  emit "smoke"
    ~stages:
      [ ("assemble_j1", dt1); ("assemble_j2", dt2); ("run_mc_j1", mdt1);
        ("run_mc_j2", mdt2) ]
    ~counters:(counters_since c0)
    ~mesh_n:(Geometry.Mesh.size mesh) ~samples:200
    ~wall_s:(dt1 +. dt2 +. mdt1 +. mdt2);
  pf "smoke OK\n"

(* ---------------------------------------------------------------- *)

(* load generator for the serving stack.

   Phase 1 (store): cold vs. warm prepare latency through the persistent
   model store — unchanged from the original serving bench.

   Phase 2 (wire/shard sweep): payload-heavy run_mc traffic (an inline
   bench circuit with many endpoints, [full] per-endpoint statistics in
   every response) swept over {json, binary} wire x {1, 2} shards x a
   rising concurrency ladder, reporting p50/p99/p999 latency and
   saturation throughput per configuration. The same fixed reference
   request is answered once per configuration and compared bit-for-bit:
   responses must be identical across wires and shard counts, or the
   bench exits non-zero. All in-process against Serve.Server /
   Serve.Router — the same engines bin/ssta_serve.exe exposes. *)
let serve_bench () =
  header "Serving: persistent KLE model store + concurrent analysis server";
  let module J = Serve.Jsonx in
  let c0 = Util.Trace.counters () in
  let store_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kle-serve-bench.%d" (Unix.getpid ()))
  in
  let config =
    {
      Serve.Server.default_config with
      Serve.Server.store_dir = Some store_dir;
      workers = 4;
      queue_capacity = 256;
      jobs = Some 1;
    }
  in
  let request id meth params =
    J.to_string
      (J.Obj
         [ ("id", J.Num (float_of_int id)); ("method", J.Str meth); ("params", J.Obj params) ])
  in
  let c880 = ("circuit", J.Obj [ ("name", J.Str "c880") ]) in
  let client_for server =
    Serve.Client.create
      ~policy:
        { Serve.Client.default_policy with Serve.Client.timeout_s = Some 600.0 }
      (Serve.Server.submit server)
  in
  let must_ok client line =
    match Serve.Client.call client line with
    | Ok payload -> J.to_string payload
    | Error f ->
        pf "FAIL: request %s -> %s\n" line (Serve.Client.failure_to_string f);
        exit 1
  in
  (* cold: fresh store, the prepare pays meshing + the KLE eigensolution *)
  let server = Serve.Server.create config in
  let client = client_for server in
  let prepare_line = request 0 "prepare" [ c880 ] in
  let _, cold_s = Util.Timer.time (fun () -> must_ok client prepare_line) in
  Serve.Server.drain server;
  (* warm: a fresh server (empty memory tier) over the now-populated store *)
  let server = Serve.Server.create config in
  let client = client_for server in
  let _, warm_s = Util.Timer.time (fun () -> must_ok client prepare_line) in
  pf "prepare c880: cold %.2fs, warm (store hit) %.4fs -> %.0fx faster\n" cold_s warm_s
    (cold_s /. warm_s);
  Serve.Server.drain server;
  emit "serve"
    ~params:[ ("circuit", Bench_json.String "c880") ]
    ~stages:[ ("prepare_cold", cold_s); ("prepare_warm", warm_s) ]
    ~counters:(counters_since c0)
    ~wall_s:(cold_s +. warm_s);
  (* ---- wire/shard sweep ------------------------------------------- *)
  (* a generated netlist with many endpoints, so [full] responses carry
     two per-endpoint float arrays — the payload-heavy shape the binary
     wire exists for *)
  let bench_text =
    let inputs = 8 and outputs = 96 in
    let b = Buffer.create 8192 in
    for i = 0 to inputs - 1 do
      Buffer.add_string b (Printf.sprintf "INPUT(i%d)\n" i)
    done;
    for o = 0 to outputs - 1 do
      Buffer.add_string b (Printf.sprintf "OUTPUT(o%d)\n" o)
    done;
    for o = 0 to outputs - 1 do
      Buffer.add_string b
        (Printf.sprintf "g%d = NAND(i%d, i%d)\n" o (o mod inputs)
           ((o + 1) mod inputs));
      Buffer.add_string b (Printf.sprintf "o%d = NOT(g%d)\n" o o)
    done;
    Buffer.contents b
  in
  (* the load spreads over several distinct model-spec keys so a multi-shard
     router actually fans out (one key would pin every request to its owning
     shard — shed-not-spread by design). The variants differ only by a
     comment line the parser strips, so every response stays bit-comparable
     to one reference while hashing to a different key *)
  let key_variants = 4 in
  let variant_text k =
    if k = 0 then bench_text else Printf.sprintf "%s# key variant %d\n" bench_text k
  in
  let n_mc = 64 in
  let mc_request ~id ~variant ~seed =
    {
      Serve.Protocol.id = J.Num (float_of_int id);
      req_id = None;
      deadline_ms = None;
      call =
        Serve.Protocol.Run_mc
          {
            circuit = Serve.Protocol.Bench_text (variant_text (variant mod key_variants));
            sampler = Serve.Protocol.Kle;
            r = None;
            seed;
            n = n_mc;
            batch = None;
            full = true;
          };
    }
  in
  (* the sweep's serving config: a coarse mesh (the serving layers under
     test are wire, batching and routing — not the eigensolver), a short
     coalescing window, shared store *)
  let sweep_config =
    {
      config with
      Serve.Server.kle =
        { Ssta.Algorithm2.paper_config with Ssta.Algorithm2.max_area_fraction = 0.05 };
      workers = 2;
      batch_window_s = 0.001;
      batch_max = 8;
    }
  in
  let payload_bits payload =
    let num key =
      Option.map Int64.bits_of_float (Option.bind (J.member key payload) J.as_num)
    in
    let arr key =
      match J.member key payload with
      | Some (J.List items) ->
          List.map
            (function J.Num f -> Int64.bits_of_float f | _ -> Int64.minus_one)
            items
      | _ -> []
    in
    (num "worst_mean", num "worst_sigma", arr "endpoint_mean", arr "endpoint_sigma")
  in
  let reference = ref None in
  let saturation = ref [] in
  List.iter
    (fun (wire_name, wire, shards) ->
      (* fresh servers per configuration (clean memory tiers); the store
         stays warm after the first configuration's first request *)
      let servers, submit, shutdown =
        if shards = 1 then begin
          let server = Serve.Server.create sweep_config in
          ( [ server ],
            (fun ~wire payload ~reply ->
              Serve.Server.submit_wire server ~wire payload ~reply),
            fun () -> Serve.Server.drain server )
        end
        else begin
          let servers = List.init shards (fun _ -> Serve.Server.create sweep_config) in
          let backends =
            List.mapi
              (fun i s ->
                Serve.Router.backend_of_server
                  ~describe:(Printf.sprintf "shard-%d" i) s)
              servers
          in
          let router = Serve.Router.create backends in
          ( servers,
            (fun ~wire payload ~reply -> Serve.Router.submit router ~wire payload ~reply),
            fun () -> List.iter Serve.Server.drain servers )
        end
      in
      (* server-side view of one sweep row: merge the named stage histogram
         across every shard's telemetry (the cross-shard merge the router's
         [metrics] method performs, done here directly) *)
      let server_stage_hist stage =
        let merged = Util.Histogram.create () in
        List.iter
          (fun s ->
            Util.Histogram.merge_into ~dst:merged
              (Serve.Telemetry.stage_histogram (Serve.Server.telemetry s) stage))
          servers;
        merged
      in
      let server_total_hist () =
        let merged = Util.Histogram.create () in
        List.iter
          (fun s ->
            Util.Histogram.merge_into ~dst:merged
              (Serve.Telemetry.total_histogram (Serve.Server.telemetry s)))
          servers;
        merged
      in
      let hist_quantile_s h p = float_of_int (Util.Histogram.quantile h p) /. 1e9 in
      (* a client transport carries a whole message: a JSON line, or a full
         binary frame whose header Server/Router.submit does not expect *)
      let transport message ~reply =
        match wire with
        | `Json -> submit ~wire:`Json message ~reply
        | `Binary -> (
            match Serve.Wire.unframe message with
            | Ok payload -> submit ~wire:`Binary payload ~reply
            | Error _ -> pf "FAIL: client emitted an unframeable request\n"; exit 1)
      in
      let client =
        Serve.Client.create
          ~policy:
            { Serve.Client.default_policy with Serve.Client.timeout_s = Some 600.0 }
          ~wire transport
      in
      (* warm every key variant (cache tiers, sampler artifacts), then take a
         bit-identity reference probe per key: all variants, wires and shard
         counts must agree on every bit *)
      for variant = 0 to key_variants - 1 do
        (match
           Serve.Client.call_request client (mc_request ~id:variant ~variant ~seed:opts.seed)
         with
        | Ok _ -> ()
        | Error f ->
            pf "FAIL: warmup (%s, %d shard%s): %s\n" wire_name shards
              (if shards = 1 then "" else "s")
              (Serve.Client.failure_to_string f);
            exit 1);
        match
          Serve.Client.call_request client
            (mc_request ~id:(100 + variant) ~variant ~seed:(opts.seed + 777))
        with
        | Error f ->
            pf "FAIL: reference probe: %s\n" (Serve.Client.failure_to_string f);
            exit 1
        | Ok payload -> (
            let bits = payload_bits payload in
            match !reference with
            | None -> reference := Some bits
            | Some want when want = bits -> ()
            | Some _ ->
                pf
                  "FAIL: WRONG RESULT — response over %s wire with %d shard(s) (key \
                   variant %d) is not bit-identical to the reference\n"
                  wire_name shards variant;
                exit 1)
      done;
      let best_rps = ref 0.0 in
      List.iter
        (fun concurrency ->
          let n_requests = 8 * concurrency in
          (* each row starts from clean server-side histograms, so the
             scraped quantiles describe exactly this row's requests *)
          List.iter (fun s -> Serve.Telemetry.reset (Serve.Server.telemetry s)) servers;
          let failures = Atomic.make 0 in
          let latencies = Array.make n_requests nan in
          let t_all = Util.Timer.start () in
          let submitter tid =
            let i = ref tid in
            while !i < n_requests do
              let idx = !i in
              let timer = Util.Timer.start () in
              (match
                 Serve.Client.call_request client
                   (mc_request ~id:(idx + 200) ~variant:idx ~seed:(opts.seed + idx))
               with
              | Ok _ -> ()
              | Error _ -> Atomic.incr failures);
              latencies.(idx) <- Util.Timer.elapsed_s timer;
              i := !i + concurrency
            done
          in
          let threads = List.init concurrency (fun tid -> Thread.create submitter tid) in
          List.iter Thread.join threads;
          let total_s = Util.Timer.elapsed_s t_all in
          if Atomic.get failures > 0 then begin
            pf "FAIL: %d serve requests errored (%s wire, %d shard(s), concurrency %d)\n"
              (Atomic.get failures) wire_name shards concurrency;
            exit 1
          end;
          let sorted = Array.copy latencies in
          Array.sort Float.compare sorted;
          let pct p =
            let n = Array.length sorted in
            sorted.(max 0
                      (min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1)))
          in
          let rps = float_of_int n_requests /. total_s in
          if rps > !best_rps then best_rps := rps;
          (* scrape the server-side histograms for this row and compare with
             the client-observed latencies: the delta is time spent outside
             the server proper (client queueing, wire encode/decode) *)
          let total_h = server_total_hist () in
          let queue_h = server_stage_hist Serve.Telemetry.Queue_wait in
          let srv_p50 = hist_quantile_s total_h 0.5 in
          let srv_p99 = hist_quantile_s total_h 0.99 in
          pf
            "%-6s wire, %d shard(s), concurrency %2d: %3d reqs in %6.2fs — %6.1f req/s, \
             p50 %.4fs p99 %.4fs p99.9 %.4fs\n"
            wire_name shards concurrency n_requests total_s rps (pct 50.) (pct 99.)
            (pct 99.9);
          pf
            "       server-side: p50 %.4fs p99 %.4fs, queue_wait p99 %.4fs, \
             client-server delta p50 %+.4fs\n"
            srv_p50 srv_p99
            (hist_quantile_s queue_h 0.99)
            (pct 50. -. srv_p50);
          emit "serve-load"
            ~params:
              [ ("wire", Bench_json.String wire_name);
                ("shards", Bench_json.Int shards);
                ("concurrency", Bench_json.Int concurrency);
                ("requests", Bench_json.Int n_requests);
                ("endpoints", Bench_json.Int 96);
                ("key_variants", Bench_json.Int key_variants);
                ( "batch_window_ms",
                  Bench_json.Float (sweep_config.Serve.Server.batch_window_s *. 1e3) ) ]
            ~stages:
              [ ("latency_p50", pct 50.); ("latency_p90", pct 90.);
                ("latency_p99", pct 99.); ("latency_p999", pct 99.9);
                ("server_p50", srv_p50); ("server_p99", srv_p99);
                ("server_queue_wait_p99", hist_quantile_s queue_h 0.99);
                ("client_server_delta_p50", pct 50. -. srv_p50);
                ("throughput_rps", rps) ]
            ~samples:n_mc ~wall_s:total_s)
        [ 1; 4; 12 ];
      saturation := (wire_name, shards, !best_rps) :: !saturation;
      shutdown ())
    [ ("json", `Json, 1); ("binary", `Binary, 1); ("json", `Json, 2); ("binary", `Binary, 2) ];
  List.iter
    (fun (wire_name, shards, rps) ->
      pf "saturation: %s wire, %d shard(s): %.1f req/s\n" wire_name shards rps;
      emit_meta "serve-saturation"
        ~params:
          [ ("wire", Bench_json.String wire_name);
            ("shards", Bench_json.Int shards);
            ("throughput_rps", Bench_json.Float rps) ])
    (List.rev !saturation);
  (* telemetry overhead: the same steady-state load with recording on vs.
     off (histograms, ring admission and counters all gated by one flag);
     the design target is under 2% of throughput *)
  let overhead_rps enabled =
    let server = Serve.Server.create sweep_config in
    Serve.Telemetry.set_enabled (Serve.Server.telemetry server) enabled;
    let client =
      Serve.Client.create
        ~policy:
          { Serve.Client.default_policy with Serve.Client.timeout_s = Some 600.0 }
        (Serve.Server.submit server)
    in
    (match
       Serve.Client.call_request client (mc_request ~id:900 ~variant:0 ~seed:opts.seed)
     with
    | Ok _ -> ()
    | Error f ->
        pf "FAIL: telemetry-overhead warmup: %s\n" (Serve.Client.failure_to_string f);
        exit 1);
    let concurrency = 4 in
    let n_requests = 8 * concurrency in
    let failures = Atomic.make 0 in
    let timer = Util.Timer.start () in
    let submitter tid =
      let i = ref tid in
      while !i < n_requests do
        (match
           Serve.Client.call_request client
             (mc_request ~id:(1000 + !i) ~variant:!i ~seed:(opts.seed + !i))
         with
        | Ok _ -> ()
        | Error _ -> Atomic.incr failures);
        i := !i + concurrency
      done
    in
    let threads = List.init concurrency (fun tid -> Thread.create submitter tid) in
    List.iter Thread.join threads;
    let total_s = Util.Timer.elapsed_s timer in
    Serve.Server.drain server;
    if Atomic.get failures > 0 then begin
      pf "FAIL: %d requests errored in the telemetry-overhead run\n"
        (Atomic.get failures);
      exit 1
    end;
    float_of_int n_requests /. total_s
  in
  (* a single pass per arm is noise-dominated (each request is ~15 ms of
     MC compute, so 32 requests resolve only coarse differences);
     alternate the arms across rounds and keep each arm's best pass, so a
     transient load spike cannot masquerade as telemetry overhead *)
  let rps_on = ref 0.0 and rps_off = ref 0.0 in
  for _ = 1 to 3 do
    rps_on := Float.max !rps_on (overhead_rps true);
    rps_off := Float.max !rps_off (overhead_rps false)
  done;
  let rps_on = !rps_on and rps_off = !rps_off in
  let overhead_pct = (rps_off -. rps_on) /. rps_off *. 100.0 in
  pf "telemetry overhead: %.1f req/s on vs %.1f req/s off (%+.2f%% of throughput)\n"
    rps_on rps_off overhead_pct;
  emit_meta "serve-telemetry-overhead"
    ~params:
      [ ("rps_on", Bench_json.Float rps_on);
        ("rps_off", Bench_json.Float rps_off);
        ("overhead_pct", Bench_json.Float overhead_pct) ];
  pf "bit-identity: responses identical across both wires and shard counts\n";
  (* leave no bench droppings in TMPDIR *)
  (try
     Array.iter (fun f -> Sys.remove (Filename.concat store_dir f)) (Sys.readdir store_dir);
     Unix.rmdir store_dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  pf "serve OK\n"

(* incremental hierarchical re-timing: cold full analysis vs a warm
   stitch-cache hit vs a one-gate edit that re-extracts exactly one block
   macro. Exits non-zero when the reuse counters are wrong — the bench
   doubles as a correctness gate for the dependency-aware cache. *)
let retime_bench ~quick () =
  header "Incremental re-timing: block macro-models + dependency-aware cache";
  let c0 = Util.Trace.counters () in
  let n_gates = if quick then 600 else 2400 in
  let n_blocks = 8 in
  let netlist =
    Circuit.Generator.generate
      { Circuit.Generator.name = "retime-bench"; n_gates; n_inputs = 12;
        n_outputs = 8; dff_fraction = 0.05; seed = opts.seed }
  in
  let setup = Ssta.Experiment.setup_circuit netlist in
  let kle_config =
    {
      Ssta.Algorithm2.paper_config with
      Ssta.Algorithm2.max_area_fraction = (if quick then 0.05 else 0.01);
    }
  in
  let a2, prep_s =
    Util.Timer.time (fun () ->
        Ssta.Algorithm2.prepare ~config:kle_config ?jobs:opts.jobs
          (Ssta.Process.paper_default ())
          setup.Ssta.Experiment.locations)
  in
  let models = Ssta.Algorithm2.models a2 in
  let model_key = "retime-bench" in
  let store_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kle-retime-bench.%d" (Unix.getpid ()))
  in
  let dg = Persist.Depgraph.create (Persist.Store.open_ ~dir:store_dir ()) in
  let retime setup =
    Hier.Engine.retime ~n_blocks ?jobs:opts.jobs ~cache:dg setup ~models ~model_key
  in
  let expect label got want =
    if got <> want then begin
      pf "FAIL: %s = %d, expected %d\n" label got want;
      exit 1
    end
  in
  let cold, cold_s = Util.Timer.time (fun () -> retime setup) in
  let nb = cold.Hier.Engine.n_blocks in
  expect "cold blocks_recomputed" cold.Hier.Engine.counters.Hier.Engine.blocks_recomputed nb;
  let warm, warm_s = Util.Timer.time (fun () -> retime setup) in
  expect "warm blocks_reused" warm.Hier.Engine.counters.Hier.Engine.blocks_reused nb;
  expect "warm blocks_recomputed" warm.Hier.Engine.counters.Hier.Engine.blocks_recomputed 0;
  (* one-gate kind swap within an equal-pin-capacitance pair, so exactly
     one block's content hash moves *)
  let edit =
    let found = ref None in
    Array.iter
      (fun g ->
        if !found = None then
          match g.Circuit.Netlist.kind with
          | Circuit.Gate.Nand2 ->
              found := Some { Hier.Edit.gate = g.Circuit.Netlist.id; kind = Circuit.Gate.Nor2 }
          | Circuit.Gate.Nor2 ->
              found := Some { Hier.Edit.gate = g.Circuit.Netlist.id; kind = Circuit.Gate.Nand2 }
          | _ -> ())
      netlist.Circuit.Netlist.gates;
    match !found with
    | Some e -> e
    | None ->
        pf "FAIL: no swappable gate in the generated netlist\n";
        exit 1
  in
  let edited_netlist =
    match Hier.Edit.apply netlist edit with
    | Ok nl -> nl
    | Error m ->
        pf "FAIL: edit rejected: %s\n" m;
        exit 1
  in
  let edited_setup = Ssta.Experiment.setup_circuit edited_netlist in
  let edited, edit_s = Util.Timer.time (fun () -> retime edited_setup) in
  expect "edit blocks_recomputed" edited.Hier.Engine.counters.Hier.Engine.blocks_recomputed 1;
  expect "edit blocks_reused" edited.Hier.Engine.counters.Hier.Engine.blocks_reused (nb - 1);
  (* the composed result stays faithful to a flat pass over the edit *)
  let flat = Ssta.Block_ssta.run edited_setup ~models in
  let e_mu, e_sigma = Hier.Engine.validate_against_flat edited ~flat in
  if e_mu > 1.0 || e_sigma > 10.0 then begin
    pf "FAIL: edited compose drifted from flat (e_mu %.3f%%, e_sigma %.3f%%)\n" e_mu e_sigma;
    exit 1
  end;
  pf "retime %d gates, %d blocks: cold %.3fs, warm (stitch hit) %.4fs, one-gate edit %.3fs\n"
    n_gates nb cold_s warm_s edit_s;
  pf "  edit recomputed %d/%d blocks; cold/edit %.1fx, cold/warm %.0fx; vs flat e_mu %.3f%% e_sigma %.3f%%\n"
    edited.Hier.Engine.counters.Hier.Engine.blocks_recomputed nb (cold_s /. edit_s)
    (cold_s /. warm_s) e_mu e_sigma;
  emit "retime"
    ~params:
      [ ("n_gates", Bench_json.Int n_gates);
        ("quick", Bench_json.Bool quick);
        ("cold_over_edit", Bench_json.Float (cold_s /. edit_s));
        ("cold_over_warm", Bench_json.Float (cold_s /. warm_s)) ]
    ~stages:
      [ ("prepare_models", prep_s); ("retime_cold", cold_s);
        ("retime_warm", warm_s); ("retime_edit", edit_s) ]
    ~counters:
      (counters_since c0
      @ [ ("n_blocks", nb);
          ("blocks_recomputed_cold", cold.Hier.Engine.counters.Hier.Engine.blocks_recomputed);
          ("blocks_reused_warm", warm.Hier.Engine.counters.Hier.Engine.blocks_reused);
          ("blocks_recomputed_edit", edited.Hier.Engine.counters.Hier.Engine.blocks_recomputed);
          ("blocks_reused_edit", edited.Hier.Engine.counters.Hier.Engine.blocks_reused) ])
    ~r:(Ssta.Algorithm2.r a2)
    ~wall_s:(prep_s +. cold_s +. warm_s +. edit_s);
  (try
     Array.iter (fun f -> Sys.remove (Filename.concat store_dir f)) (Sys.readdir store_dir);
     Unix.rmdir store_dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  pf "retime OK\n"

(* fault-injection storm against the serving tier: worker crashes, store
   read errors, torn writes and latency, with the Chaos module's
   self-healing invariants asserted (zero wrong results, all failures
   typed, recovery to healthy). Exits non-zero on any violation. *)
let chaos_bench () =
  header "Chaos: fault-injected serving (supervision, store faults, recovery)";
  (* two storms with the same invariants: direct against one server, then
     through the consistent-hash router over two fault-injected shards
     (with shard-connection blackouts driving replica failover on top) *)
  let storm label cfg =
    let c0 = Util.Trace.counters () in
    let store_dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "kle-chaos-bench-%s.%d" label (Unix.getpid ()))
    in
    let report, wall_s =
      Util.Timer.time (fun () ->
          Serve.Chaos.run ~log:(fun s -> pf "%s\n" s) ~store_dir cfg)
    in
    pf "[%s] %s\n" label (Serve.Chaos.report_to_string report);
    emit
      (if cfg.Serve.Chaos.router_shards > 0 then "chaos-router" else "chaos")
      ~params:
        [ ("requests", Bench_json.Int report.Serve.Chaos.requests);
          ("workers", Bench_json.Int cfg.Serve.Chaos.workers);
          ("router_shards", Bench_json.Int cfg.Serve.Chaos.router_shards) ]
      ~counters:
        (counters_since c0
        @ List.map
            (fun f ->
              ("fault_" ^ f.Serve.Chaos.fault, f.Serve.Chaos.fired))
            report.Serve.Chaos.fault_counts
        @ [ ("worker_restarts", report.Serve.Chaos.worker_restarts);
            ("quarantined", report.Serve.Chaos.quarantined);
            ("typed_errors", report.Serve.Chaos.typed_errors) ])
      ~samples:cfg.Serve.Chaos.mc_samples ~wall_s;
    (try
       Array.iter (fun f -> Sys.remove (Filename.concat store_dir f)) (Sys.readdir store_dir);
       Unix.rmdir store_dir
     with Sys_error _ | Unix.Unix_error _ -> ());
    match Serve.Chaos.violations report with
    | [] -> pf "chaos (%s) OK\n" label
    | viols ->
        List.iter (fun v -> pf "CHAOS VIOLATION (%s): %s\n" label v) viols;
        exit 1
  in
  storm "direct" Serve.Chaos.default_config;
  storm "router"
    { Serve.Chaos.default_config with Serve.Chaos.router_shards = 2 };
  pf "chaos OK\n"

let all () =
  fig1 ();
  fig3a ();
  fig3b ();
  fig4 ();
  fig5 ();
  eigtime ();
  fig6a ();
  fig6b ();
  table1 ();
  ablate_quad ();
  ablate_mesh ();
  ablate_eig ();
  ablate_kernel ();
  ablate_recon ();
  ablate_basis ();
  ablate_qmc ();
  blocksta ();
  powergrid ();
  serve_bench ();
  micro ()

let usage () =
  pf
    "usage: main.exe [fig1|fig3a|fig3b|fig4|fig5|fig6a|fig6b|table1|eigtime|scale|\n\
    \                 ablate-quad|ablate-mesh|ablate-eig|ablate-kernel|ablate-recon|ablate-basis|\n\
    \                 serve|retime|chaos|smoke|micro|all]\n\
    \                [--samples N] [--table-samples N] [--max-gates N] [--full]\n\
    \                [--mesh-frac F] [--seed N] [-j N] [--json PATH]\n\
    \                [--trace PATH] [--metrics] [--quick]\n"

let () =
  let commands = ref [] in
  let rec parse = function
    | [] -> ()
    | "--samples" :: v :: rest ->
        opts.samples <- int_of_string v;
        parse rest
    | "--table-samples" :: v :: rest ->
        opts.table_samples <- int_of_string v;
        parse rest
    | "--max-gates" :: v :: rest ->
        opts.max_gates <- int_of_string v;
        parse rest
    | "--full" :: rest ->
        opts.full <- true;
        parse rest
    | "--mesh-frac" :: v :: rest ->
        opts.mesh_frac <- float_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        opts.seed <- int_of_string v;
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        opts.jobs <- Some (int_of_string v);
        parse rest
    | "--json" :: v :: rest ->
        opts.json <- Some v;
        parse rest
    | "--trace" :: v :: rest ->
        opts.trace <- Some v;
        parse rest
    | "--metrics" :: rest ->
        opts.metrics <- true;
        parse rest
    | "--quick" :: rest ->
        opts.quick <- true;
        parse rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | cmd :: rest ->
        commands := cmd :: !commands;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* tracing also powers the --json counter columns, so any reporting flag
     turns it on; the fast no-reporting path stays a single branch *)
  if opts.json <> None || opts.trace <> None || opts.metrics then
    Util.Trace.enable ();
  let run = function
    | "fig1" -> fig1 ()
    | "fig3a" -> fig3a ()
    | "fig3b" -> fig3b ()
    | "fig4" -> fig4 ()
    | "fig5" -> fig5 ()
    | "fig6a" -> fig6a ()
    | "fig6b" -> fig6b ()
    | "table1" -> table1 ()
    | "eigtime" -> eigtime ()
    | "scale" -> scale ()
    | "ablate-quad" -> ablate_quad ()
    | "ablate-mesh" -> ablate_mesh ()
    | "ablate-eig" -> ablate_eig ()
    | "ablate-kernel" -> ablate_kernel ()
    | "ablate-recon" -> ablate_recon ()
    | "ablate-basis" -> ablate_basis ()
    | "blocksta" -> blocksta ()
    | "ablate-qmc" -> ablate_qmc ()
    | "powergrid" -> powergrid ()
    | "serve" -> serve_bench ()
    | "retime" -> retime_bench ~quick:opts.quick ()
    | "chaos" -> chaos_bench ()
    | "smoke" -> smoke ()
    | "micro" -> micro ()
    | "all" -> all ()
    | other ->
        pf "unknown subcommand %S\n" other;
        usage ();
        exit 2
  in
  (match List.rev !commands with [] -> all () | cmds -> List.iter run cmds);
  (match opts.json with
  | None -> ()
  | Some path ->
      let config =
        Bench_json.Meta
          {
            name = "config";
            params =
              [
                ("samples", Bench_json.Int opts.samples);
                ("table_samples", Bench_json.Int opts.table_samples);
                ("mesh_frac", Bench_json.Float opts.mesh_frac);
                ("seed", Bench_json.Int opts.seed);
                ("jobs", Bench_json.Int (effective_jobs ()));
                ( "argv",
                  Bench_json.String
                    (String.concat " " (List.tl (Array.to_list Sys.argv))) );
              ];
          }
      in
      let entries = config :: List.rev !json_records in
      Bench_json.write_file path entries;
      pf "wrote %d benchmark record(s) to %s\n" (List.length entries) path);
  (match opts.trace with
  | None -> ()
  | Some path ->
      Util.Trace.write_chrome_trace path;
      pf "wrote Chrome trace to %s (load in chrome://tracing or Perfetto)\n" path);
  if opts.metrics then print_string (Util.Trace.summary ())
