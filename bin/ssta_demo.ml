(* Command-line SSTA driver: run Monte Carlo statistical timing on a
   benchmark circuit with a choice of correlation sampler.

   Examples:
     ssta_demo --circuit c1908 --samples 2000
     ssta_demo --circuit c3540 --sampler grid --grid 8 -r 25
     ssta_demo --bench-file my_netlist.bench --sampler kle *)

open Cmdliner

let run circuit_name bench_file samples sampler_kind grid r seed jobs verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  let netlist =
    match bench_file with
    | Some path -> (
        match Circuit.Bench_format.parse_file path with
        | Ok n -> n
        | Error e ->
            Printf.eprintf "error parsing %s: %s\n" path e;
            exit 1)
    | None -> (
        match Circuit.Generator.paper_spec circuit_name with
        | spec -> Circuit.Generator.generate spec
        | exception Not_found ->
            Printf.eprintf "unknown circuit %S; known: %s\n" circuit_name
              (String.concat ", " (List.map fst Circuit.Generator.paper_suite));
            exit 1)
  in
  let setup = Ssta.Experiment.setup_circuit netlist in
  Printf.printf "%s: %d logic gates, %d endpoints\n" netlist.Circuit.Netlist.name
    (Circuit.Netlist.logic_gate_count netlist)
    (Array.length setup.Ssta.Experiment.sta.Sta.Timing.endpoints);
  let nominal = Sta.Timing.run_nominal setup.Ssta.Experiment.sta in
  Printf.printf "nominal worst delay: %.1f ps\n" nominal.Sta.Timing.worst_delay;
  let slack = Sta.Timing.slack_report setup.Ssta.Experiment.sta in
  Printf.printf "nominal critical path: %d stages (%s -> %s)\n"
    (Array.length slack.Sta.Timing.critical_path)
    netlist.Circuit.Netlist.gates.(slack.Sta.Timing.critical_path.(0)).Circuit.Netlist.name
    netlist.Circuit.Netlist.gates.(
      slack.Sta.Timing.critical_path.(Array.length slack.Sta.Timing.critical_path - 1)).Circuit.Netlist.name;
  let process = Ssta.Process.paper_default () in
  let sampler, label, kle_models =
    match sampler_kind with
    | `Cholesky ->
        let a1 = Ssta.Algorithm1.prepare ?jobs process setup.Ssta.Experiment.locations in
        Printf.printf "Algorithm 1 setup: %.2fs\n" (Ssta.Algorithm1.setup_seconds a1);
        (Ssta.Algorithm1.sample_block a1, "cholesky (Algorithm 1)", None)
    | `Kle ->
        let config =
          { Ssta.Algorithm2.paper_config with r = (if r > 0 then Some r else None) }
        in
        let a2 =
          Ssta.Algorithm2.prepare ~config ?jobs process setup.Ssta.Experiment.locations
        in
        Printf.printf "Algorithm 2 setup: %.2fs (mesh n = %d, r = %d)\n"
          (Ssta.Algorithm2.setup_seconds a2)
          (Ssta.Algorithm2.mesh_size a2) (Ssta.Algorithm2.r a2);
        ( Ssta.Algorithm2.sample_block a2,
          "covariance-kernel KLE (Algorithm 2)",
          Some (Ssta.Algorithm2.models a2) )
    | `Grid ->
        let g =
          Ssta.Grid_pca.prepare ~grid
            ?r:(if r > 0 then Some r else None)
            process setup.Ssta.Experiment.locations
        in
        Printf.printf "grid+PCA setup: %dx%d grid, r = %d, %.1f%% variance\n" grid grid
          (Ssta.Grid_pca.r g)
          (100.0 *. Ssta.Grid_pca.explained_variance_fraction g);
        (Ssta.Grid_pca.sample_block g, "grid + PCA baseline", None)
  in
  let mc = Ssta.Experiment.run_mc ?jobs setup ~sampler ~seed ~n:samples in
  Printf.printf "\n%s, %d samples:\n" label samples;
  Printf.printf "  worst delay: mu = %.1f ps, sigma = %.2f ps\n"
    mc.Ssta.Experiment.worst_mean mc.Ssta.Experiment.worst_sigma;
  Printf.printf "  3-sigma corner: %.1f ps\n"
    (mc.Ssta.Experiment.worst_mean +. (3.0 *. mc.Ssta.Experiment.worst_sigma));
  Printf.printf "  time: %.2fs sampling + %.2fs STA\n" mc.Ssta.Experiment.sample_seconds
    mc.Ssta.Experiment.sta_seconds;
  (* with the KLE sampler we can also run the single-pass block engine *)
  match kle_models with
  | Some models ->
      let blk = Ssta.Block_ssta.run setup ~models in
      Printf.printf
        "\nblock-based SSTA (single pass, %.1f ms): mu = %.1f ps, sigma = %.2f ps\n"
        (1000.0 *. blk.Ssta.Block_ssta.analysis_seconds)
        (Ssta.Block_ssta.mean blk) (Ssta.Block_ssta.sigma blk);
      let crit = Ssta.Block_ssta.criticalities ~samples:5000 ~seed blk in
      let order = Array.init (Array.length crit) (fun i -> i) in
      Array.sort (fun a b -> Float.compare crit.(b) crit.(a)) order;
      Printf.printf "most critical endpoints (gate: probability):\n";
      Array.iteri
        (fun rank e ->
          if rank < 3 && crit.(e) > 0.005 then
            Printf.printf "  %s: %.1f%%\n"
              netlist.Circuit.Netlist.gates.(
                setup.Ssta.Experiment.sta.Sta.Timing.endpoints.(e)).Circuit.Netlist.name
              (100.0 *. crit.(e)))
        order
  | None -> ()

let circuit_arg =
  Arg.(value & opt string "c880" & info [ "c"; "circuit" ] ~doc:"Paper benchmark circuit name.")

let bench_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "bench-file" ] ~doc:"Read an ISCAS .bench netlist instead of generating one.")

let samples_arg =
  Arg.(value & opt int 1000 & info [ "n"; "samples" ] ~doc:"Monte Carlo samples.")

let sampler_arg =
  Arg.(
    value
    & opt (enum [ ("cholesky", `Cholesky); ("kle", `Kle); ("grid", `Grid) ]) `Kle
    & info [ "sampler" ] ~doc:"Correlation sampler: cholesky, kle or grid.")

let grid_arg =
  Arg.(value & opt int 8 & info [ "grid" ] ~doc:"Grid resolution for the grid sampler.")

let r_arg =
  Arg.(value & opt int 0 & info [ "r" ] ~doc:"Retained components (0 = automatic).")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for covariance assembly and Monte Carlo timing (1 = \
           sequential; default: available cores). Results do not depend on it.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let cmd =
  let doc = "Monte Carlo statistical static timing with spatial correlation" in
  Cmd.v
    (Cmd.info "ssta_demo" ~doc)
    Term.(
      const run $ circuit_arg $ bench_file_arg $ samples_arg $ sampler_arg $ grid_arg
      $ r_arg $ seed_arg $ jobs_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
