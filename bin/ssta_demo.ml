(* Command-line SSTA driver: run Monte Carlo statistical timing on a
   benchmark circuit with a choice of correlation sampler.

   Examples:
     ssta_demo --circuit c1908 --samples 2000
     ssta_demo --circuit c3540 --sampler grid --grid 8 -r 25
     ssta_demo --bench-file my_netlist.bench --sampler kle
     ssta_demo --sampler kle --compare               # vs. Algorithm 1
     ssta_demo --fault sampler-nan --on-nonfinite skip
     ssta_demo --strict                              # degraded run = failure *)

open Cmdliner

let run circuit_name bench_file samples sampler_kind grid r kle_mode seed jobs
    strict fault policy do_compare trace_file metrics verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  if trace_file <> None || metrics then begin
    Util.Trace.enable ();
    (* at_exit so the trace/summary survive the early `exit 1` paths
       (pipeline errors, strict mode); the exporter flushes spans still
       open on this domain *)
    at_exit (fun () ->
        (match trace_file with
        | Some path ->
            Util.Trace.write_chrome_trace path;
            Printf.printf
              "wrote Chrome trace to %s (load in chrome://tracing or Perfetto)\n"
              path
        | None -> ());
        if metrics then print_string (Util.Trace.summary ()))
  end;
  Util.Trace.with_span ~attrs:[ ("circuit", circuit_name) ] "ssta_demo"
  @@ fun () ->
  let netlist =
    match bench_file with
    | Some path -> (
        match Circuit.Bench_format.parse_file path with
        | Ok n -> n
        | Error e ->
            Printf.eprintf "error parsing %s: %s\n" path e;
            exit 1)
    | None -> (
        match Circuit.Generator.paper_spec circuit_name with
        | spec -> Circuit.Generator.generate spec
        | exception Not_found ->
            Printf.eprintf "unknown circuit %S; known: %s\n" circuit_name
              (String.concat ", " (List.map fst Circuit.Generator.paper_suite));
            exit 1)
  in
  let pipeline = Ssta.Pipeline.create ~strict ?jobs () in
  let diag = Ssta.Pipeline.diagnostics pipeline in
  let print_diag () =
    let events = Util.Diag.events diag in
    let shown =
      if verbose then events
      else
        List.filter
          (fun e -> Util.Diag.severity_rank e.Util.Diag.severity >= 1)
          events
    in
    if shown <> [] then begin
      Printf.printf "\ndiagnostics (%d of %d events):\n" (List.length shown)
        (List.length events);
      List.iter (fun e -> Format.printf "  %a@." Util.Diag.pp_event e) shown
    end
  in
  let ok = function
    | Ok v -> v
    | Error e ->
        Printf.eprintf "pipeline error: %s\n" (Util.Diag.to_string e);
        print_diag ();
        exit 1
  in
  let setup = ok (Ssta.Pipeline.setup_circuit pipeline netlist) in
  Printf.printf "%s: %d logic gates, %d endpoints\n" netlist.Circuit.Netlist.name
    (Circuit.Netlist.logic_gate_count netlist)
    (Array.length setup.Ssta.Experiment.sta.Sta.Timing.endpoints);
  let nominal = Sta.Timing.run_nominal setup.Ssta.Experiment.sta in
  Printf.printf "nominal worst delay: %.1f ps\n" nominal.Sta.Timing.worst_delay;
  let slack = Sta.Timing.slack_report setup.Ssta.Experiment.sta in
  Printf.printf "nominal critical path: %d stages (%s -> %s)\n"
    (Array.length slack.Sta.Timing.critical_path)
    netlist.Circuit.Netlist.gates.(slack.Sta.Timing.critical_path.(0)).Circuit.Netlist.name
    netlist.Circuit.Netlist.gates.(
      slack.Sta.Timing.critical_path.(Array.length slack.Sta.Timing.critical_path - 1)).Circuit.Netlist.name;
  (* validate the pristine process first, then (optionally) decorate its
     kernels with the fault plan so the injected NaN hits the numeric
     stages — assembly / factorization — rather than the spot check *)
  let process = ok (Ssta.Pipeline.validate_process pipeline (Ssta.Process.paper_default ())) in
  let process =
    match fault with
    | `Kernel_nan ->
        Printf.printf "fault injection: NaN at the first kernel evaluation\n";
        let parameters =
          Array.map
            (fun (p : Ssta.Process.parameter) ->
              { p with kernel = Ssta.Fault_inject.kernel (Util.Fault.plan Util.Fault.Nan) p.kernel })
            process.Ssta.Process.parameters
        in
        { Ssta.Process.parameters }
    | _ -> process
  in
  let prepare_cholesky () =
    let prepared = ok (Ssta.Pipeline.prepare pipeline Ssta.Pipeline.Cholesky process setup) in
    (match prepared with
    | Ssta.Pipeline.Cholesky_prepared a1 ->
        Printf.printf "Algorithm 1 setup: %.2fs\n" (Ssta.Algorithm1.setup_seconds a1)
    | _ -> ());
    prepared
  in
  let sampler, setup_seconds, label, kle_models =
    match sampler_kind with
    | `Cholesky ->
        let prepared = prepare_cholesky () in
        ( Ssta.Pipeline.sampler_of prepared,
          Ssta.Pipeline.setup_seconds_of prepared,
          "cholesky (Algorithm 1)",
          None )
    | (`Kle | `Kle_qmc) as kind ->
        let config =
          {
            Ssta.Algorithm2.paper_config with
            r = (if r > 0 then Some r else None);
            mode = kle_mode;
          }
        in
        let prepared =
          ok (Ssta.Pipeline.prepare pipeline (Ssta.Pipeline.Kle config) process setup)
        in
        let models =
          match prepared with
          | Ssta.Pipeline.Kle_prepared a2 ->
              Printf.printf "Algorithm 2 setup: %.2fs (mesh n = %d, r = %d)\n"
                (Ssta.Algorithm2.setup_seconds a2)
                (Ssta.Algorithm2.mesh_size a2) (Ssta.Algorithm2.r a2);
              Some (Ssta.Algorithm2.models a2)
          | _ -> None
        in
        let sampler =
          match kind with
          | `Kle_qmc ->
              (* quasi-Monte Carlo in the reduced KLE space: one stateful
                 randomized-Halton sequence per parameter, consumed batch by
                 batch (run_mc generates batches in order, so this stays
                 deterministic in the seed) *)
              let samplers =
                Array.map
                  (fun m -> Kle.Sampler.create ~diag m setup.Ssta.Experiment.locations)
                  (Option.get models)
              in
              let seqs =
                Array.mapi
                  (fun i s ->
                    Prng.Lowdisc.create
                      ~shift_rng:(Prng.Rng.substream ~seed ~stream:(0x51C0 + i))
                      ~dim:(Kle.Sampler.dim s) ())
                  samplers
              in
              fun _rng ~n ->
                Array.mapi
                  (fun i s ->
                    Kle.Sampler.sample_matrix_with s
                      ~xi:(Prng.Lowdisc.normal_matrix seqs.(i) ~rows:n))
                  samplers
          | `Kle -> Ssta.Pipeline.sampler_of prepared
        in
        ( sampler,
          Ssta.Pipeline.setup_seconds_of prepared,
          (match kind with
          | `Kle -> "covariance-kernel KLE (Algorithm 2)"
          | `Kle_qmc -> "covariance-kernel KLE + randomized-Halton QMC"),
          models )
    | `Grid ->
        let g =
          Ssta.Grid_pca.prepare ~grid
            ?r:(if r > 0 then Some r else None)
            process setup.Ssta.Experiment.locations
        in
        Printf.printf "grid+PCA setup: %dx%d grid, r = %d, %.1f%% variance\n" grid grid
          (Ssta.Grid_pca.r g)
          (100.0 *. Ssta.Grid_pca.explained_variance_fraction g);
        (Ssta.Grid_pca.sample_block g, 0.0, "grid + PCA baseline", None)
  in
  let sampler =
    match fault with
    | `Sampler_nan ->
        Printf.printf "fault injection: NaN in the first sampler batch\n";
        let faulty, _fired =
          Ssta.Fault_inject.sampler ~kind:Util.Fault.Nan ~diag ~seed sampler
        in
        faulty
    | _ -> sampler
  in
  let run_mc sampler =
    match Ssta.Experiment.run_mc ?jobs ~policy ~diag setup ~sampler ~seed ~n:samples with
    | mc -> mc
    | exception Util.Diag.Failure e ->
        Printf.eprintf "pipeline error: %s\n" (Util.Diag.to_string e);
        print_diag ();
        exit 1
  in
  let mc = run_mc sampler in
  Printf.printf "\n%s, %d samples:\n" label samples;
  if mc.Ssta.Experiment.n_skipped > 0 then
    Printf.printf "  skipped %d samples with non-finite parameters\n"
      mc.Ssta.Experiment.n_skipped;
  Printf.printf "  worst delay: mu = %.1f ps, sigma = %.2f ps\n"
    mc.Ssta.Experiment.worst_mean mc.Ssta.Experiment.worst_sigma;
  Printf.printf "  3-sigma corner: %.1f ps\n"
    (mc.Ssta.Experiment.worst_mean +. (3.0 *. mc.Ssta.Experiment.worst_sigma));
  Printf.printf "  time: %.2fs sampling + %.2fs STA\n" mc.Ssta.Experiment.sample_seconds
    mc.Ssta.Experiment.sta_seconds;
  (if do_compare then
     match sampler_kind with
     | `Cholesky ->
         Printf.printf "\n--compare: the candidate already is the reference sampler\n"
     | `Kle | `Kle_qmc | `Grid ->
         let reference_prepared = prepare_cholesky () in
         let reference = run_mc (Ssta.Pipeline.sampler_of reference_prepared) in
         let cmp =
           Ssta.Experiment.compare ~reference
             ~reference_setup_seconds:(Ssta.Pipeline.setup_seconds_of reference_prepared)
             ~candidate:mc ~candidate_setup_seconds:setup_seconds
         in
         Printf.printf "\nvs. cholesky reference (%d samples):\n"
           reference.Ssta.Experiment.n_samples;
         Printf.printf "  e_mu = %.3f%%, e_sigma = %.2f%%\n" cmp.Ssta.Experiment.e_mu_pct
           cmp.Ssta.Experiment.e_sigma_pct;
         (let v = cmp.Ssta.Experiment.sigma_err_avg_outputs_pct in
          let excl = cmp.Ssta.Experiment.excluded_endpoints in
          if Float.is_nan v then
            Printf.printf "  per-endpoint sigma error: n/a (%d endpoints excluded)\n" excl
          else if excl > 0 then
            Printf.printf "  per-endpoint sigma error: %.2f%% avg (%d endpoints excluded)\n"
              v excl
          else Printf.printf "  per-endpoint sigma error: %.2f%% avg\n" v);
         Printf.printf "  speedup: %.1fx\n" cmp.Ssta.Experiment.speedup);
  (* with the KLE sampler we can also run the single-pass block engine *)
  (match kle_models with
  | Some models ->
      let blk = Ssta.Block_ssta.run setup ~models in
      Printf.printf
        "\nblock-based SSTA (single pass, %.1f ms): mu = %.1f ps, sigma = %.2f ps\n"
        (1000.0 *. blk.Ssta.Block_ssta.analysis_seconds)
        (Ssta.Block_ssta.mean blk) (Ssta.Block_ssta.sigma blk);
      let crit = Ssta.Block_ssta.criticalities ~samples:5000 ~seed blk in
      let order = Array.init (Array.length crit) (fun i -> i) in
      Array.sort (fun a b -> Float.compare crit.(b) crit.(a)) order;
      Printf.printf "most critical endpoints (gate: probability):\n";
      Array.iteri
        (fun rank e ->
          if rank < 3 && crit.(e) > 0.005 then
            Printf.printf "  %s: %.1f%%\n"
              netlist.Circuit.Netlist.gates.(
                setup.Ssta.Experiment.sta.Sta.Timing.endpoints.(e)).Circuit.Netlist.name
              (100.0 *. crit.(e)))
        order
  | None -> ());
  print_diag ();
  if strict && Util.Diag.count ~min_severity:Util.Diag.Warning diag > 0 then begin
    Printf.eprintf "strict mode: the run degraded; offending events:\n";
    List.iter
      (fun e ->
        if Util.Diag.severity_rank e.Util.Diag.severity >= 1 then
          Printf.eprintf "%s\n" (Util.Diag.to_json e))
      (Util.Diag.events diag);
    exit 1
  end

let circuit_arg =
  Arg.(value & opt string "c880" & info [ "c"; "circuit" ] ~doc:"Paper benchmark circuit name.")

let bench_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "bench-file" ] ~doc:"Read an ISCAS .bench netlist instead of generating one.")

let samples_arg =
  Arg.(value & opt int 1000 & info [ "n"; "samples" ] ~doc:"Monte Carlo samples.")

let sampler_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("cholesky", `Cholesky); ("kle", `Kle); ("kle-qmc", `Kle_qmc); ("grid", `Grid) ])
        `Kle
    & info [ "sampler" ]
        ~doc:
          "Correlation sampler: cholesky, kle, kle-qmc (randomized-Halton quasi-Monte Carlo \
           in the reduced KLE space) or grid.")

let grid_arg =
  Arg.(value & opt int 8 & info [ "grid" ] ~doc:"Grid resolution for the grid sampler.")

let r_arg =
  Arg.(value & opt int 0 & info [ "r" ] ~doc:"Retained components (0 = automatic).")

let kle_mode_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", Kle.Galerkin.Auto);
             ("assembled", Kle.Galerkin.Assembled);
             ("matrix-free", Kle.Galerkin.Matrix_free);
             ("hierarchical", Kle.Galerkin.Hierarchical);
           ])
        Kle.Galerkin.Auto
    & info [ "kle-mode" ]
        ~doc:
          "Galerkin eigensolve path for the KLE sampler: auto (matrix-free \
           above the size threshold), assembled (materialize the n x n \
           matrix), matrix-free (never materialize it), or hierarchical \
           (ACA-compressed H-matrix apply, O(n log n) per matvec).")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for covariance assembly and Monte Carlo timing (1 = \
           sequential; default: available cores). Results do not depend on it.")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Treat degraded numerics (jittered/repaired factorizations, solver \
           fallbacks, skipped samples) as errors: fail the pipeline stage, or exit \
           non-zero if the run only degraded later.")

let fault_arg =
  Arg.(
    value
    & opt
        (enum [ ("none", `None); ("kernel-nan", `Kernel_nan); ("sampler-nan", `Sampler_nan) ])
        `None
    & info [ "fault" ]
        ~doc:
          "Deterministic fault injection (for exercising the guards): corrupt the \
           first kernel evaluation or the first sampler batch with a NaN.")

let policy_arg =
  Arg.(
    value
    & opt (enum [ ("fail", Ssta.Experiment.Fail); ("skip", Ssta.Experiment.Skip) ])
        Ssta.Experiment.Fail
    & info [ "on-nonfinite" ]
        ~doc:
          "Monte Carlo policy for non-finite parameter samples: fail with a typed \
           diagnostic, or skip (and count) the offending samples.")

let compare_arg =
  Arg.(
    value & flag
    & info [ "compare" ]
        ~doc:
          "Also run the Algorithm 1 (cholesky) reference with the same seed and \
           print the paper's comparison metrics.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:
          "Write a Chrome trace_event JSON file of the run (hierarchical \
           spans, one track per worker domain; load in chrome://tracing or \
           Perfetto).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the span-tree timing summary and work counters (kernel \
           evaluations, matvecs, Monte Carlo samples, …) after the run.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let cmd =
  let doc = "Monte Carlo statistical static timing with spatial correlation" in
  Cmd.v
    (Cmd.info "ssta_demo" ~doc)
    Term.(
      const run $ circuit_arg $ bench_file_arg $ samples_arg $ sampler_arg $ grid_arg
      $ r_arg $ kle_mode_arg $ seed_arg $ jobs_arg $ strict_arg $ fault_arg
      $ policy_arg $ compare_arg $ trace_arg $ metrics_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
