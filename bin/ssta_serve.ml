(* SSTA analysis server over stdin/stdout or a Unix-domain socket, backed
   by the persistent KLE model store. Speaks two wires on the same port:
   JSON lines, and the length-prefixed binary protocol (Serve.Wire) —
   detected per connection from the first byte (0xB5 never starts JSON).

   Examples:
     ssta_serve --store /tmp/kle-store            # serve stdin/stdout
     ssta_serve --socket /tmp/ssta.sock &         # daemon on a socket
     ssta_serve --socket /tmp/ssta.sock --router 4 &
                                                  # shard across 4 processes
     ssta_serve --client /tmp/ssta.sock           # pipe stdin lines to it
     ssta_serve --client /tmp/ssta.sock --binary  # same, binary wire
     echo '{"id":1,"method":"stats"}' | ssta_serve

   JSON protocol (one object per line, responses correlated by "id"):
     {"id":1,"method":"prepare","params":{"circuit":{"name":"c880"}}}
     {"id":2,"method":"run_mc","deadline_ms":60000,
      "params":{"circuit":{"name":"c880"},"sampler":"kle","seed":42,"n":1000}}
     {"id":3,"method":"compare","params":{"circuit":{"name":"c880"},"n":500}}
     {"id":4,"method":"stats"}
     {"id":5,"method":"health"}
     {"id":6,"method":"shutdown"}

   Router mode (--router N): this process becomes a consistent-hash front
   for N shard subprocesses (each a plain ssta_serve on <socket>.shard-<i>,
   all sharing one --store). Shards are supervised — a crashed shard is
   respawned with capped backoff and is unhealthy (candidates fail over to
   the next ring replica) while down.

   Maintenance:
     ssta_serve --fsck DIR            # verify the store, report problems
     ssta_serve --fsck DIR --repair   # also delete corrupt entries, sweep
                                      # orphaned tmp files, GC to --gc-max-bytes *)

open Cmdliner

(* replies may arrive from any worker domain; serialize writes per channel
   and flush per message, so concurrent responses never interleave. A write
   to a disconnected client raises (Sys_error on EPIPE/EBADF, with SIGPIPE
   ignored at startup) — the lock must be released on that path or every
   other worker replying on the connection deadlocks. *)
let line_writer oc =
  let lock = Mutex.create () in
  fun line ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        output_string oc line;
        output_char oc '\n';
        flush oc)

(* binary replies are whole frames: no delimiter, just bytes *)
let frame_writer oc =
  let lock = Mutex.create () in
  fun frame ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        output_string oc frame;
        flush oc)

(* what a connection handler needs from the thing it fronts — a single
   Serve.Server or a Serve.Router over shard processes *)
type frontend = {
  fsubmit : wire:[ `Json | `Binary ] -> string -> reply:(string -> unit) -> unit;
  fstop : unit -> bool;  (* shutdown requested: stop reading *)
}

(* one connection, either wire: sniff the first byte. 0xB5 (Wire.magic0)
   never begins a JSON-lines request, so it commits the connection to the
   binary wire; anything else starts the first JSON line. *)
let serve_stream fe ic oc =
  match input_char ic with
  | exception (End_of_file | Sys_error _) -> ()
  | first when first = Serve.Wire.magic0 ->
      let reply = frame_writer oc in
      let magic_consumed = ref true in
      (try
         while not (fe.fstop ()) do
           match Serve.Wire.read_frame ~magic_consumed:!magic_consumed ic with
           | Error `Eof -> raise End_of_file
           | Error (`Corrupt msg) ->
               (* framing is lost and cannot be resynchronised: answer once,
                  then drop the connection *)
               reply
                 (Serve.Wire.error_response ~id:Serve.Jsonx.Null
                    Serve.Protocol.Parse_error msg);
               raise End_of_file
           | Ok payload ->
               magic_consumed := false;
               fe.fsubmit ~wire:`Binary payload ~reply
         done
       with End_of_file | Sys_error _ -> ())
  | first ->
      let reply = line_writer oc in
      let pending_first = ref (Some first) in
      let next_line () =
        match !pending_first with
        | Some '\n' ->
            pending_first := None;
            ""
        | Some c ->
            pending_first := None;
            String.make 1 c ^ input_line ic
        | None -> input_line ic
      in
      (try
         while not (fe.fstop ()) do
           let line = next_line () in
           if String.trim line <> "" then fe.fsubmit ~wire:`Json line ~reply
         done
       with End_of_file | Sys_error _ -> ())

let serve_channels fe ~drain ic oc =
  let reader_done = Atomic.make false in
  (* a shutdown request is executed on a worker domain while this thread
     blocks reading; closing the input fd is what unblocks it (the read
     fails) so the drain below can actually start *)
  let watcher =
    Thread.create
      (fun () ->
        while not (Atomic.get reader_done || fe.fstop ()) do
          Thread.delay 0.1
        done;
        if not (Atomic.get reader_done) then
          try Unix.close (Unix.descr_of_in_channel ic)
          with Unix.Unix_error _ | Sys_error _ -> ())
      ()
  in
  serve_stream fe ic oc;
  Atomic.set reader_done true;
  drain ();
  Thread.join watcher

(* a connection's fd, with close/shutdown serialized so the drain-time
   nudge below can never race the handler's own close (or hit a recycled
   fd number) *)
type conn = { fd : Unix.file_descr; lock : Mutex.t; mutable closed : bool }

let conn_close c =
  Mutex.protect c.lock (fun () ->
      if not c.closed then begin
        c.closed <- true;
        try Unix.close c.fd with Unix.Unix_error _ -> ()
      end)

(* unblock a reader stuck in a blocking read: half-close the read side so
   it returns EOF, leaving the write side usable for replies *)
let conn_nudge c =
  Mutex.protect c.lock (fun () ->
      if not c.closed then
        try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())

let serve_socket fe ~begin_drain ~drain path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  Printf.printf "ssta_serve: listening on %s\n%!" path;
  (* one lightweight thread per connection reads messages; all execution
     happens on the worker domains behind the frontend *)
  let handle c =
    let ic = Unix.in_channel_of_descr c.fd in
    let oc = Unix.out_channel_of_descr c.fd in
    serve_stream fe ic oc;
    conn_close c
  in
  let threads = ref [] in
  let conns = ref [] in
  (try
     while not (fe.fstop ()) do
       (* wake up periodically so a shutdown request also stops accept *)
       match Unix.select [ sock ] [] [] 0.2 with
       | [], _, _ -> ()
       | _ ->
           let fd, _ = Unix.accept sock in
           let c = { fd; lock = Mutex.create (); closed = false } in
           conns := c :: !conns;
           threads := Thread.create handle c :: !threads
     done
   with Unix.Unix_error (Unix.EINTR, _, _) -> ());
  (* stop intake first so late messages get typed shutting_down replies,
     then unblock handlers parked on idle connections so the join below
     terminates, then let queued work finish *)
  begin_drain ();
  List.iter conn_nudge !conns;
  List.iter Thread.join !threads;
  drain ();
  List.iter conn_close !conns;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* router mode: shard subprocess supervision and binary connections *)

let shard_socket_path base i = Printf.sprintf "%s.shard-%d" base i

(* one live binary connection to a shard process. Requests multiplex over
   it with rewritten integer ids; the original client id never leaves the
   router (Router.submit re-attaches it when replying). *)
type shard_link = {
  lfd : Unix.file_descr;
  loc : out_channel;
  wlock : Mutex.t;
  lpending :
    (int, (Serve.Jsonx.t, Serve.Protocol.error_code * string) result -> unit) Hashtbl.t;
  mutable lnext : int;
}

type shard = {
  index : int;
  spath : string;
  argv : string array;
  slock : Mutex.t;  (* guards link, pid and the link's pending table *)
  mutable link : shard_link option;
  mutable pid : int option;
}

(* raised from the backend's send so Router.submit fails over to the next
   ring replica *)
exception Shard_unavailable

let shard_send shard request ~reply =
  match Mutex.protect shard.slock (fun () -> shard.link) with
  | None -> raise Shard_unavailable
  | Some link -> (
      let id =
        Mutex.protect shard.slock (fun () ->
            let id = link.lnext in
            link.lnext <- id + 1;
            Hashtbl.replace link.lpending id reply;
            id)
      in
      let frame =
        Serve.Wire.encode_request
          { request with Serve.Protocol.id = Serve.Jsonx.Num (float_of_int id) }
      in
      try
        Mutex.protect link.wlock (fun () ->
            output_string link.loc frame;
            flush link.loc)
      with Sys_error _ | Unix.Unix_error _ ->
        Mutex.protect shard.slock (fun () -> Hashtbl.remove link.lpending id);
        raise Shard_unavailable)

let shard_reader shard link () =
  let ic = Unix.in_channel_of_descr link.lfd in
  (try
     let stop = ref false in
     while not !stop do
       match Serve.Wire.read_frame ic with
       | Error (`Eof | `Corrupt _) -> stop := true
       | Ok payload -> (
           match Serve.Wire.decode_response payload with
           | Error _ -> ()  (* one bad payload; framing is still intact *)
           | Ok (id_json, _req_id, result) -> (
               let cb =
                 Mutex.protect shard.slock (fun () ->
                     match Serve.Jsonx.as_num id_json with
                     | None -> None
                     | Some f -> (
                         let id = int_of_float f in
                         match Hashtbl.find_opt link.lpending id with
                         | Some cb ->
                             Hashtbl.remove link.lpending id;
                             Some cb
                         | None -> None))
               in
               match cb with Some cb -> cb result | None -> ()))
     done
   with End_of_file | Sys_error _ -> ());
  (* connection gone: everything in flight on it gets a typed error — the
     client's retry policy owns any retry decision *)
  let orphans =
    Mutex.protect shard.slock (fun () ->
        (match shard.link with Some l when l == link -> shard.link <- None | _ -> ());
        let cbs = Hashtbl.fold (fun _ cb acc -> cb :: acc) link.lpending [] in
        Hashtbl.reset link.lpending;
        cbs)
  in
  List.iter
    (fun cb -> cb (Error (Serve.Protocol.Internal_error, "shard connection lost")))
    orphans

let connect_shard spath ~attempts =
  let rec go n =
    if n >= attempts then None
    else
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX spath) with
      | () -> Some fd
      | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Thread.delay 0.05;
          go (n + 1)
  in
  go 0

(* spawn / connect / waitpid / restart-with-capped-backoff, until draining *)
let supervise ~draining shard =
  let backoff = ref 0.1 in
  while not (Atomic.get draining) do
    (try Unix.unlink shard.spath with Unix.Unix_error _ -> ());
    match
      Unix.create_process shard.argv.(0) shard.argv Unix.stdin Unix.stdout Unix.stderr
    with
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "ssta_serve: shard %d spawn failed: %s\n%!" shard.index
          (Unix.error_message e);
        Thread.delay !backoff;
        backoff := Float.min 2.0 (!backoff *. 2.0)
    | pid ->
        Mutex.protect shard.slock (fun () -> shard.pid <- Some pid);
        (match connect_shard shard.spath ~attempts:200 with
        | Some fd ->
            let link =
              {
                lfd = fd;
                loc = Unix.out_channel_of_descr fd;
                wlock = Mutex.create ();
                lpending = Hashtbl.create 16;
                lnext = 0;
              }
            in
            Mutex.protect shard.slock (fun () -> shard.link <- Some link);
            ignore (Thread.create (shard_reader shard link) ());
            backoff := 0.1
        | None ->
            Printf.eprintf "ssta_serve: shard %d did not come up on %s\n%!"
              shard.index shard.spath);
        let rec wait () =
          match Unix.waitpid [] pid with
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        in
        wait ();
        Mutex.protect shard.slock (fun () ->
            shard.pid <- None;
            match shard.link with
            | Some l ->
                shard.link <- None;
                (try Unix.close l.lfd with Unix.Unix_error _ | Sys_error _ -> ())
            | None -> ());
        if not (Atomic.get draining) then begin
          Printf.eprintf "ssta_serve: shard %d exited; restarting in %.1fs\n%!"
            shard.index !backoff;
          Thread.delay !backoff;
          backoff := Float.min 2.0 (!backoff *. 2.0)
        end
  done

let run_router ~path ~n_shards ~shard_argv =
  let draining = Atomic.make false in
  let shards =
    List.init n_shards (fun i ->
        {
          index = i;
          spath = shard_socket_path path i;
          argv = shard_argv i;
          slock = Mutex.create ();
          link = None;
          pid = None;
        })
  in
  let sup_threads =
    List.map (fun s -> Thread.create (fun () -> supervise ~draining s) ()) shards
  in
  let backends =
    List.map
      (fun s ->
        {
          Serve.Router.send = (fun request ~reply -> shard_send s request ~reply);
          healthy = (fun () -> Mutex.protect s.slock (fun () -> Option.is_some s.link));
          describe = Printf.sprintf "shard-%d" s.index;
        })
      shards
  in
  let rc = Serve.Router.default_config in
  let rc = { rc with Serve.Router.replicas = min rc.Serve.Router.replicas n_shards } in
  let router = Serve.Router.create ~config:rc backends in
  let fe =
    {
      fsubmit =
        (fun ~wire payload ~reply ->
          Serve.Router.submit router ~wire payload ~reply;
          (* flip the supervisor flag the instant the shutdown broadcast has
             completed: the shards are already draining, and without this the
             supervisors would see them exit and restart them before the
             accept loop unwinds into [drain] below *)
          if Serve.Router.shutdown_requested router then Atomic.set draining true);
      fstop = (fun () -> Serve.Router.shutdown_requested router);
    }
  in
  serve_socket fe
    ~begin_drain:(fun () -> ())
    ~drain:(fun () ->
      (* the shutdown broadcast already reached every connected shard; give
         them a grace period to drain and exit, SIGTERM stragglers, then
         collect the supervisors *)
      Atomic.set draining true;
      let alive () =
        List.exists (fun s -> Mutex.protect s.slock (fun () -> Option.is_some s.pid)) shards
      in
      let waited = ref 0.0 in
      while alive () && !waited < 10.0 do
        Thread.delay 0.1;
        waited := !waited +. 0.1
      done;
      List.iter
        (fun s ->
          match Mutex.protect s.slock (fun () -> s.pid) with
          | Some pid -> ( try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
          | None -> ())
        shards;
      List.iter Thread.join sup_threads;
      List.iter
        (fun s -> try Unix.unlink s.spath with Unix.Unix_error _ -> ())
        shards)
    path

(* ------------------------------------------------------------------ *)
(* client mode: connect to a serving socket, forward stdin lines through
   the retrying Serve.Client (per-request timeout, bounded retries with
   backoff, circuit breaker), print one JSON response line per request in
   request order. --binary ships the requests over the binary wire (the
   stdin/stdout side stays JSON either way). *)
let run_client path timeout_s binary =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect sock (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "ssta_serve --client: cannot connect to %s: %s\n" path
       (Unix.error_message e);
     exit 1);
  let ic = Unix.in_channel_of_descr sock in
  let oc = Unix.out_channel_of_descr sock in
  (* the socket delivers replies in completion order; correlate them back
     to the waiting call by id *)
  let pending : (string, string -> unit) Hashtbl.t = Hashtbl.create 8 in
  let pending_lock = Mutex.create () in
  let register key reply =
    Mutex.protect pending_lock (fun () -> Hashtbl.replace pending key reply)
  in
  let take key =
    Mutex.protect pending_lock (fun () ->
        match Hashtbl.find_opt pending key with
        | Some cb ->
            Hashtbl.remove pending key;
            Some cb
        | None -> None)
  in
  let key_of_request line =
    match Serve.Jsonx.parse line with
    | Ok json ->
        Serve.Jsonx.to_string
          (Option.value (Serve.Jsonx.member "id" json) ~default:Serve.Jsonx.Null)
    | Error _ -> "null" (* the server echoes id null for unparseable lines *)
  in
  let reader =
    Thread.create
      (fun () ->
        try
          if binary then begin
            let stop = ref false in
            while not !stop do
              match Serve.Wire.read_frame ic with
              | Error (`Eof | `Corrupt _) -> stop := true
              | Ok payload -> (
                  match Serve.Wire.decode_response payload with
                  | Error _ -> ()
                  | Ok (id, _req_id, _result) -> (
                      match take (Serve.Jsonx.to_string id) with
                      | Some cb -> cb (Serve.Wire.frame payload)
                      | None -> ()))
            done
          end
          else
            while true do
              let line = input_line ic in
              let key =
                match Serve.Protocol.response_id line with
                | Some id -> Serve.Jsonx.to_string id
                | None -> "null"
              in
              match take key with Some cb -> cb line | None -> ()
            done
        with End_of_file | Sys_error _ -> ())
      ()
  in
  let write = if binary then frame_writer oc else line_writer oc in
  let transport message ~reply =
    let key =
      if binary then
        match Serve.Wire.unframe message with
        | Ok payload -> (
            match Serve.Wire.decode_request payload with
            | Ok r -> Serve.Jsonx.to_string r.Serve.Protocol.id
            | Error rej -> Serve.Jsonx.to_string rej.Serve.Protocol.reject_id)
        | Error _ -> "null"
      else key_of_request message
    in
    register key reply;
    write message
  in
  let client =
    Serve.Client.create
      ~policy:{ Serve.Client.default_policy with Serve.Client.timeout_s = Some timeout_s }
      ~wire:(if binary then `Binary else `Json)
      transport
  in
  let failures = ref 0 in
  (* re-encoding for stdout must not strip the correlation ID the server
     echoed: a caller that tagged its request with req_id grep's for it in
     our output *)
  let print_result id ?req_id = function
    | Ok payload ->
        print_endline (Serve.Protocol.ok_response ~id ?req_id payload);
        flush stdout
    | Error (Serve.Client.Protocol_error (code, msg)) ->
        print_endline (Serve.Protocol.error_response ~id ?req_id code msg);
        flush stdout
    | Error f ->
        incr failures;
        Printf.eprintf "ssta_serve --client: request id=%s failed: %s\n%!"
          (Serve.Jsonx.to_string id)
          (Serve.Client.failure_to_string f)
  in
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then
         if binary then
           match Serve.Protocol.decode line with
           | Error rej ->
               (* malformed request: answer locally, like the server would *)
               print_endline
                 (Serve.Protocol.error_response ~id:rej.Serve.Protocol.reject_id
                    ?req_id:rej.Serve.Protocol.reject_req_id
                    ?field:rej.Serve.Protocol.field rej.Serve.Protocol.code
                    rej.Serve.Protocol.message);
               flush stdout
           | Ok request ->
               print_result request.Serve.Protocol.id
                 ?req_id:request.Serve.Protocol.req_id
                 (Serve.Client.call_request client request)
         else begin
           let id, req_id =
             match Serve.Jsonx.parse line with
             | Ok json ->
                 ( Option.value (Serve.Jsonx.member "id" json)
                     ~default:Serve.Jsonx.Null,
                   Option.bind (Serve.Jsonx.member "req_id" json)
                     Serve.Jsonx.as_str )
             | Error _ -> (Serve.Jsonx.Null, None)
           in
           print_result id ?req_id (Serve.Client.call client line)
         end
     done
   with End_of_file -> ());
  (try Unix.shutdown sock Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  (try Thread.join reader with _ -> ());
  (try Unix.close sock with Unix.Unix_error _ -> ());
  if !failures > 0 then exit 1

(* offline store verification / repair *)
let run_fsck dir repair gc_max_bytes =
  let diag = Util.Diag.create () in
  let report = Persist.Store.fsck ~diag ~repair ?max_bytes:gc_max_bytes ~dir () in
  List.iter
    (fun e -> Printf.printf "%s\n" (Util.Diag.to_string e))
    (Util.Diag.events diag);
  Printf.printf "fsck %s: %s%s\n" dir
    (Persist.Store.fsck_report_to_string report)
    (if repair then "" else " (dry run; use --repair to fix)");
  let problems =
    report.Persist.Store.corrupt + report.Persist.Store.tmp_files
    + report.Persist.Store.gc_evicted
  in
  if problems > 0 && not repair then exit 1

(* one JSON object per executed request on stderr; worker domains share
   the sink, so writes are serialized and flushed per line *)
let json_log_sink () =
  let lock = Mutex.create () in
  fun json ->
    Mutex.protect lock (fun () ->
        output_string stderr (Serve.Jsonx.to_string json);
        output_char stderr '\n';
        flush stderr)

let run store_dir socket client fsck repair gc_max_bytes timeout_s binary
    cache_entries queue_capacity workers jobs seed max_area_fraction drain_timeout
    trace_file stats_file router_shards batch_window_ms batch_max slow_ms log_json =
  (* a client that disconnects mid-reply must surface as a write error on
     that connection, not kill the process with SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match (fsck, client) with
  | Some dir, _ -> run_fsck dir repair gc_max_bytes
  | None, Some path -> run_client path timeout_s binary
  | None, None when router_shards > 0 -> (
      match socket with
      | None ->
          Printf.eprintf "ssta_serve: --router requires --socket\n";
          exit 2
      | Some path ->
          let shard_argv i =
            Array.of_list
              ([ Sys.executable_name; "--socket"; shard_socket_path path i ]
              @ (match store_dir with Some d -> [ "--store"; d ] | None -> [])
              @ [
                  "--cache-entries";
                  string_of_int cache_entries;
                  "--queue";
                  string_of_int queue_capacity;
                  "--workers";
                  string_of_int workers;
                  "--placement-seed";
                  string_of_int seed;
                  "--max-area-fraction";
                  string_of_float max_area_fraction;
                  "--batch-window-ms";
                  string_of_float batch_window_ms;
                  "--batch-max";
                  string_of_int batch_max;
                  "--slow-ms";
                  string_of_float slow_ms;
                ]
              @ (if log_json then [ "--log-json" ] else [])
              @ (match jobs with Some j -> [ "--jobs"; string_of_int j ] | None -> [])
              @
              match drain_timeout with
              | Some s -> [ "--drain-timeout"; string_of_float s ]
              | None -> [])
          in
          run_router ~path ~n_shards:router_shards ~shard_argv)
  | None, None ->
      if trace_file <> None then Util.Trace.enable ();
      let config =
        {
          Serve.Server.default_config with
          Serve.Server.store_dir;
          cache_entries;
          queue_capacity;
          workers;
          jobs;
          placement_seed = seed;
          kle =
            { Ssta.Algorithm2.paper_config with Ssta.Algorithm2.max_area_fraction };
          drain_timeout_s = drain_timeout;
          batch_window_s = batch_window_ms /. 1000.0;
          batch_max;
          slow_ms;
          request_log = (if log_json then Some (json_log_sink ()) else None);
        }
      in
      let server = Serve.Server.create config in
      let fe =
        {
          fsubmit =
            (fun ~wire payload ~reply ->
              Serve.Server.submit_wire server ~wire payload ~reply);
          fstop = (fun () -> Serve.Server.shutdown_requested server);
        }
      in
      (match socket with
      | Some path ->
          serve_socket fe
            ~begin_drain:(fun () -> Serve.Server.begin_drain server)
            ~drain:(fun () -> Serve.Server.drain server)
            path
      | None -> serve_channels fe ~drain:(fun () -> Serve.Server.drain server) stdin stdout);
      (match stats_file with
      | Some path ->
          Util.Fileio.write_atomic path
            (Serve.Jsonx.to_string (Serve.Server.stats_payload server) ^ "\n")
      | None -> ());
      (match trace_file with
      | Some path -> Util.Trace.write_chrome_trace path
      | None -> ());
      let diag = Serve.Server.diagnostics server in
      if Util.Diag.count ~min_severity:Util.Diag.Warning diag > 0 then begin
        Printf.eprintf "diagnostics:\n";
        List.iter
          (fun e ->
            if Util.Diag.severity_rank e.Util.Diag.severity >= 1 then
              Printf.eprintf "  %s\n" (Util.Diag.to_string e))
          (Util.Diag.events diag)
      end

let store_arg =
  let doc = "Persist prepared artifacts (circuit setups, KLE models) under $(docv)." in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let socket_arg =
  let doc = "Serve connections on a Unix-domain socket at $(docv) instead of stdin/stdout." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let client_arg =
  let doc =
    "Client mode: connect to the serving socket at $(docv), forward stdin lines, print responses. \
     Requests go through the retrying client (per-request timeout, bounded retries with backoff \
     and jitter, circuit breaker); responses print in request order."
  in
  Arg.(value & opt (some string) None & info [ "client" ] ~docv:"PATH" ~doc)

let binary_arg =
  let doc =
    "With --client: ship requests over the length-prefixed binary wire instead of JSON lines \
     (stdin/stdout stay JSON). The server detects the wire per connection automatically."
  in
  Arg.(value & flag & info [ "binary" ] ~doc)

let fsck_arg =
  let doc =
    "Verify the store at $(docv): header magic, filename/kind/spec-hash consistency, payload \
     checksums, entity-version currency, orphaned temporary files. Dry run unless --repair is \
     given; exits 1 when problems are found in a dry run."
  in
  Arg.(value & opt (some string) None & info [ "fsck" ] ~docv:"DIR" ~doc)

let repair_arg =
  let doc =
    "With --fsck: delete corrupt entries, sweep orphaned tmp files, and apply --gc-max-bytes."
  in
  Arg.(value & flag & info [ "repair" ] ~doc)

let gc_arg =
  let doc =
    "With --fsck: evict verified entries oldest-first until the store fits under $(docv) bytes."
  in
  Arg.(value & opt (some int) None & info [ "gc-max-bytes" ] ~docv:"BYTES" ~doc)

let timeout_arg =
  let doc = "With --client: per-attempt reply timeout in seconds." in
  Arg.(value & opt float 600.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let cache_arg =
  let doc = "In-memory model cache capacity (entries)." in
  Arg.(value & opt int 32 & info [ "cache-entries" ] ~docv:"N" ~doc)

let queue_arg =
  let doc = "Bounded job-queue capacity; beyond it requests are rejected as overloaded." in
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)

let workers_arg =
  let doc = "Worker domains executing requests concurrently." in
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc = "Compute fan-out within one request (domains); default sequential." in
  Arg.(value & opt (some int) (Some 1) & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Placement seed for circuit setups." in
  Arg.(value & opt int 1 & info [ "placement-seed" ] ~docv:"N" ~doc)

let mesh_area_arg =
  let doc =
    "Maximum triangle area as a fraction of the die (mesh resolution). The paper's \
     experiments use 0.001; larger values give a coarser, much cheaper eigensolve \
     (useful for smoke tests)."
  in
  Arg.(value & opt float 0.001 & info [ "max-area-fraction" ] ~docv:"F" ~doc)

let drain_timeout_arg =
  let doc =
    "Bound the shutdown drain: if the workers have not finished within $(docv) seconds they are \
     detached with a warning diagnostic instead of hanging shutdown forever."
  in
  Arg.(value & opt (some float) (Some 30.0) & info [ "drain-timeout" ] ~docv:"SECONDS" ~doc)

let trace_arg =
  let doc = "Write a Chrome trace of the serving run to $(docv) on exit." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)

let stats_arg =
  let doc = "Write final server statistics (JSON) to $(docv) on exit." in
  Arg.(value & opt (some string) None & info [ "stats-file" ] ~docv:"PATH" ~doc)

let router_arg =
  let doc =
    "Shard the server across $(docv) supervised subprocesses behind a consistent-hash router \
     (requires --socket). Each shard is a full server with its own memory cache; all shards \
     share --store. Crashed shards are respawned; while one is down its keys fail over to the \
     next ring replica. Overload on the owning shard is shed with a typed overloaded error, \
     never spread."
  in
  Arg.(value & opt int 0 & info [ "router" ] ~docv:"SHARDS" ~doc)

let batch_window_arg =
  let doc =
    "Coalesce compatible run_mc requests (same circuit, sampler and truncation, different \
     seeds/sample counts) that arrive within $(docv) milliseconds into one pipeline invocation \
     sharing circuit setup and sampler construction. 0 disables coalescing."
  in
  Arg.(value & opt float 0.0 & info [ "batch-window-ms" ] ~docv:"MS" ~doc)

let batch_max_arg =
  let doc = "Maximum requests coalesced into one batch (with --batch-window-ms)." in
  Arg.(value & opt int 8 & info [ "batch-max" ] ~docv:"N" ~doc)

let slow_ms_arg =
  let doc =
    "Slow-request threshold in milliseconds for the $(b,debug) ring buffer; 0 admits every \
     request (the ring keeps the most recent)."
  in
  Arg.(value & opt float 0.0 & info [ "slow-ms" ] ~docv:"MS" ~doc)

let log_json_arg =
  let doc = "Emit one structured JSON log line per executed request on stderr." in
  Arg.(value & flag & info [ "log-json" ] ~doc)

let cmd =
  let doc = "concurrent SSTA analysis server with a persistent KLE model store" in
  Cmd.v
    (Cmd.info "ssta_serve" ~doc)
    Term.(
      const run $ store_arg $ socket_arg $ client_arg $ fsck_arg $ repair_arg $ gc_arg
      $ timeout_arg $ binary_arg $ cache_arg $ queue_arg $ workers_arg $ jobs_arg
      $ seed_arg $ mesh_area_arg $ drain_timeout_arg $ trace_arg $ stats_arg
      $ router_arg $ batch_window_arg $ batch_max_arg $ slow_ms_arg $ log_json_arg)

let () = exit (Cmd.eval cmd)
