(* JSON-lines SSTA analysis server over stdin/stdout or a Unix-domain
   socket, backed by the persistent KLE model store.

   Examples:
     ssta_serve --store /tmp/kle-store            # serve stdin/stdout
     ssta_serve --socket /tmp/ssta.sock &         # daemon on a socket
     ssta_serve --client /tmp/ssta.sock           # pipe stdin lines to it
     echo '{"id":1,"method":"stats"}' | ssta_serve

   Protocol (one JSON object per line, responses correlated by "id"):
     {"id":1,"method":"prepare","params":{"circuit":{"name":"c880"}}}
     {"id":2,"method":"run_mc","deadline_ms":60000,
      "params":{"circuit":{"name":"c880"},"sampler":"kle","seed":42,"n":1000}}
     {"id":3,"method":"compare","params":{"circuit":{"name":"c880"},"n":500}}
     {"id":4,"method":"stats"}
     {"id":5,"method":"health"}
     {"id":6,"method":"shutdown"}

   Maintenance:
     ssta_serve --fsck DIR            # verify the store, report problems
     ssta_serve --fsck DIR --repair   # also delete corrupt entries, sweep
                                      # orphaned tmp files, GC to --gc-max-bytes *)

open Cmdliner

(* replies may arrive from any worker domain; serialize writes per channel
   and flush per line, so concurrent responses never interleave. A write to
   a disconnected client raises (Sys_error on EPIPE/EBADF, with SIGPIPE
   ignored at startup) — the lock must be released on that path or every
   other worker replying on the connection deadlocks. *)
let line_writer oc =
  let lock = Mutex.create () in
  fun line ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        output_string oc line;
        output_char oc '\n';
        flush oc)

let serve_channels server ic oc =
  let reply = line_writer oc in
  let reader_done = Atomic.make false in
  (* a shutdown request is executed on a worker domain while this thread
     blocks in input_line; closing the input fd is what unblocks it (the
     read fails) so the drain below can actually start *)
  let watcher =
    Thread.create
      (fun () ->
        while
          not (Atomic.get reader_done || Serve.Server.shutdown_requested server)
        do
          Thread.delay 0.1
        done;
        if not (Atomic.get reader_done) then
          try Unix.close (Unix.descr_of_in_channel ic)
          with Unix.Unix_error _ | Sys_error _ -> ())
      ()
  in
  (try
     while not (Serve.Server.shutdown_requested server) do
       let line = input_line ic in
       if String.trim line <> "" then Serve.Server.submit server line ~reply
     done
   with End_of_file | Sys_error _ -> ());
  Atomic.set reader_done true;
  Serve.Server.drain server;
  Thread.join watcher

(* a connection's fd, with close/shutdown serialized so the drain-time
   nudge below can never race the handler's own close (or hit a recycled
   fd number) *)
type conn = { fd : Unix.file_descr; lock : Mutex.t; mutable closed : bool }

let conn_close c =
  Mutex.protect c.lock (fun () ->
      if not c.closed then begin
        c.closed <- true;
        try Unix.close c.fd with Unix.Unix_error _ -> ()
      end)

(* unblock a reader stuck in input_line: half-close the read side so the
   blocked read returns EOF, leaving the write side usable for replies *)
let conn_nudge c =
  Mutex.protect c.lock (fun () ->
      if not c.closed then
        try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())

let serve_socket server path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  Printf.printf "ssta_serve: listening on %s\n%!" path;
  (* one lightweight thread per connection reads lines; all execution
     happens on the server's worker domains *)
  let handle c =
    let ic = Unix.in_channel_of_descr c.fd in
    let oc = Unix.out_channel_of_descr c.fd in
    let reply = line_writer oc in
    (try
       while not (Serve.Server.shutdown_requested server) do
         let line = input_line ic in
         if String.trim line <> "" then Serve.Server.submit server line ~reply
       done
     with End_of_file | Sys_error _ -> ());
    conn_close c
  in
  let threads = ref [] in
  let conns = ref [] in
  (try
     while not (Serve.Server.shutdown_requested server) do
       (* wake up periodically so a shutdown request also stops accept *)
       match Unix.select [ sock ] [] [] 0.2 with
       | [], _, _ -> ()
       | _ ->
           let fd, _ = Unix.accept sock in
           let c = { fd; lock = Mutex.create (); closed = false } in
           conns := c :: !conns;
           threads := Thread.create handle c :: !threads
     done
   with Unix.Unix_error (Unix.EINTR, _, _) -> ());
  (* stop intake first so late lines get typed shutting_down replies, then
     unblock handlers parked in input_line on idle connections so the join
     below terminates, then let queued work finish *)
  Serve.Server.begin_drain server;
  List.iter conn_nudge !conns;
  List.iter Thread.join !threads;
  Serve.Server.drain server;
  List.iter conn_close !conns;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ())

(* client mode: connect to a serving socket, forward stdin lines through
   the retrying Serve.Client (per-request timeout, bounded retries with
   backoff, circuit breaker), print one response line per request in
   request order *)
let run_client path timeout_s =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect sock (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "ssta_serve --client: cannot connect to %s: %s\n" path
       (Unix.error_message e);
     exit 1);
  let ic = Unix.in_channel_of_descr sock in
  let oc = Unix.out_channel_of_descr sock in
  let write = line_writer oc in
  (* the socket delivers replies in completion order; correlate them back
     to the waiting call by id *)
  let pending : (string, string -> unit) Hashtbl.t = Hashtbl.create 8 in
  let pending_lock = Mutex.create () in
  let key_of_request line =
    match Serve.Jsonx.parse line with
    | Ok json ->
        Serve.Jsonx.to_string
          (Option.value (Serve.Jsonx.member "id" json) ~default:Serve.Jsonx.Null)
    | Error _ -> "null" (* the server echoes id null for unparseable lines *)
  in
  let reader =
    Thread.create
      (fun () ->
        try
          while true do
            let line = input_line ic in
            let key =
              match Serve.Protocol.response_id line with
              | Some id -> Serve.Jsonx.to_string id
              | None -> "null"
            in
            let cb =
              Mutex.protect pending_lock (fun () ->
                  match Hashtbl.find_opt pending key with
                  | Some cb ->
                      Hashtbl.remove pending key;
                      Some cb
                  | None -> None)
            in
            match cb with Some cb -> cb line | None -> ()
          done
        with End_of_file | Sys_error _ -> ())
      ()
  in
  let transport line ~reply =
    Mutex.protect pending_lock (fun () ->
        Hashtbl.replace pending (key_of_request line) reply);
    write line
  in
  let client =
    Serve.Client.create
      ~policy:{ Serve.Client.default_policy with Serve.Client.timeout_s = Some timeout_s }
      transport
  in
  let failures = ref 0 in
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then begin
         let id =
           match Serve.Jsonx.parse line with
           | Ok json -> Option.value (Serve.Jsonx.member "id" json) ~default:Serve.Jsonx.Null
           | Error _ -> Serve.Jsonx.Null
         in
         match Serve.Client.call client line with
         | Ok payload ->
             print_endline (Serve.Protocol.ok_response ~id payload);
             flush stdout
         | Error (Serve.Client.Protocol_error (code, msg)) ->
             print_endline (Serve.Protocol.error_response ~id code msg);
             flush stdout
         | Error f ->
             incr failures;
             Printf.eprintf "ssta_serve --client: request id=%s failed: %s\n%!"
               (Serve.Jsonx.to_string id)
               (Serve.Client.failure_to_string f)
       end
     done
   with End_of_file -> ());
  (try Unix.shutdown sock Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  (try Thread.join reader with _ -> ());
  (try Unix.close sock with Unix.Unix_error _ -> ());
  if !failures > 0 then exit 1

(* offline store verification / repair *)
let run_fsck dir repair gc_max_bytes =
  let diag = Util.Diag.create () in
  let report = Persist.Store.fsck ~diag ~repair ?max_bytes:gc_max_bytes ~dir () in
  List.iter
    (fun e -> Printf.printf "%s\n" (Util.Diag.to_string e))
    (Util.Diag.events diag);
  Printf.printf "fsck %s: %s%s\n" dir
    (Persist.Store.fsck_report_to_string report)
    (if repair then "" else " (dry run; use --repair to fix)");
  let problems =
    report.Persist.Store.corrupt + report.Persist.Store.tmp_files
    + report.Persist.Store.gc_evicted
  in
  if problems > 0 && not repair then exit 1

let run store_dir socket client fsck repair gc_max_bytes timeout_s cache_entries
    queue_capacity workers jobs seed max_area_fraction drain_timeout trace_file
    stats_file =
  (* a client that disconnects mid-reply must surface as a write error on
     that connection, not kill the process with SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match (fsck, client) with
  | Some dir, _ -> run_fsck dir repair gc_max_bytes
  | None, Some path -> run_client path timeout_s
  | None, None ->
      if trace_file <> None then Util.Trace.enable ();
      let config =
        {
          Serve.Server.default_config with
          Serve.Server.store_dir;
          cache_entries;
          queue_capacity;
          workers;
          jobs;
          placement_seed = seed;
          kle =
            { Ssta.Algorithm2.paper_config with Ssta.Algorithm2.max_area_fraction };
          drain_timeout_s = drain_timeout;
        }
      in
      let server = Serve.Server.create config in
      (match socket with
      | Some path -> serve_socket server path
      | None -> serve_channels server stdin stdout);
      (match stats_file with
      | Some path ->
          Util.Fileio.write_atomic path
            (Serve.Jsonx.to_string (Serve.Server.stats_payload server) ^ "\n")
      | None -> ());
      (match trace_file with
      | Some path -> Util.Trace.write_chrome_trace path
      | None -> ());
      let diag = Serve.Server.diagnostics server in
      if Util.Diag.count ~min_severity:Util.Diag.Warning diag > 0 then begin
        Printf.eprintf "diagnostics:\n";
        List.iter
          (fun e ->
            if Util.Diag.severity_rank e.Util.Diag.severity >= 1 then
              Printf.eprintf "  %s\n" (Util.Diag.to_string e))
          (Util.Diag.events diag)
      end

let store_arg =
  let doc = "Persist prepared artifacts (circuit setups, KLE models) under $(docv)." in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let socket_arg =
  let doc = "Serve connections on a Unix-domain socket at $(docv) instead of stdin/stdout." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let client_arg =
  let doc =
    "Client mode: connect to the serving socket at $(docv), forward stdin lines, print responses. \
     Requests go through the retrying client (per-request timeout, bounded retries with backoff \
     and jitter, circuit breaker); responses print in request order."
  in
  Arg.(value & opt (some string) None & info [ "client" ] ~docv:"PATH" ~doc)

let fsck_arg =
  let doc =
    "Verify the store at $(docv): header magic, filename/kind/spec-hash consistency, payload \
     checksums, entity-version currency, orphaned temporary files. Dry run unless --repair is \
     given; exits 1 when problems are found in a dry run."
  in
  Arg.(value & opt (some string) None & info [ "fsck" ] ~docv:"DIR" ~doc)

let repair_arg =
  let doc =
    "With --fsck: delete corrupt entries, sweep orphaned tmp files, and apply --gc-max-bytes."
  in
  Arg.(value & flag & info [ "repair" ] ~doc)

let gc_arg =
  let doc =
    "With --fsck: evict verified entries oldest-first until the store fits under $(docv) bytes."
  in
  Arg.(value & opt (some int) None & info [ "gc-max-bytes" ] ~docv:"BYTES" ~doc)

let timeout_arg =
  let doc = "With --client: per-attempt reply timeout in seconds." in
  Arg.(value & opt float 600.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let cache_arg =
  let doc = "In-memory model cache capacity (entries)." in
  Arg.(value & opt int 32 & info [ "cache-entries" ] ~docv:"N" ~doc)

let queue_arg =
  let doc = "Bounded job-queue capacity; beyond it requests are rejected as overloaded." in
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)

let workers_arg =
  let doc = "Worker domains executing requests concurrently." in
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc = "Compute fan-out within one request (domains); default sequential." in
  Arg.(value & opt (some int) (Some 1) & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Placement seed for circuit setups." in
  Arg.(value & opt int 1 & info [ "placement-seed" ] ~docv:"N" ~doc)

let mesh_area_arg =
  let doc =
    "Maximum triangle area as a fraction of the die (mesh resolution). The paper's \
     experiments use 0.001; larger values give a coarser, much cheaper eigensolve \
     (useful for smoke tests)."
  in
  Arg.(value & opt float 0.001 & info [ "max-area-fraction" ] ~docv:"F" ~doc)

let drain_timeout_arg =
  let doc =
    "Bound the shutdown drain: if the workers have not finished within $(docv) seconds they are \
     detached with a warning diagnostic instead of hanging shutdown forever."
  in
  Arg.(value & opt (some float) (Some 30.0) & info [ "drain-timeout" ] ~docv:"SECONDS" ~doc)

let trace_arg =
  let doc = "Write a Chrome trace of the serving run to $(docv) on exit." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)

let stats_arg =
  let doc = "Write final server statistics (JSON) to $(docv) on exit." in
  Arg.(value & opt (some string) None & info [ "stats-file" ] ~docv:"PATH" ~doc)

let cmd =
  let doc = "concurrent SSTA analysis server with a persistent KLE model store" in
  Cmd.v
    (Cmd.info "ssta_serve" ~doc)
    Term.(
      const run $ store_arg $ socket_arg $ client_arg $ fsck_arg $ repair_arg $ gc_arg
      $ timeout_arg $ cache_arg $ queue_arg $ workers_arg $ jobs_arg $ seed_arg
      $ mesh_area_arg $ drain_timeout_arg $ trace_arg $ stats_arg)

let () = exit (Cmd.eval cmd)
