type spec = {
  name : string;
  n_gates : int;
  n_inputs : int;
  n_outputs : int;
  dff_fraction : float;
  seed : int;
}

(* gate-kind mix, roughly matching ISCAS cell statistics *)
let combinational_kinds =
  [|
    (Gate.Nand2, 28); (Gate.Nor2, 12); (Gate.And2, 10); (Gate.Or2, 10);
    (Gate.Inv, 20); (Gate.Buf, 5); (Gate.Xor2, 10); (Gate.Xnor2, 5);
  |]

let pick_kind rng =
  let total = Array.fold_left (fun acc (_, w) -> acc + w) 0 combinational_kinds in
  let r = Prng.Rng.int_below rng total in
  let rec scan i acc =
    let kind, w = combinational_kinds.(i) in
    if r < acc + w then kind else scan (i + 1) (acc + w)
  in
  scan 0 0

(* Layered netlist construction. Gates live on logic levels of roughly equal
   width; each gate has a "column" position within its level and draws
   fanins from nearby columns of recent levels. This mirrors the structure
   of real combinational benchmarks: bounded logic depth (~ISCAS-like) and
   mostly short, local wires, so the placer can exploit the locality and the
   spatial-correlation experiments see realistic geometry. *)
let generate spec =
  if spec.n_gates <= 0 || spec.n_inputs <= 0 || spec.n_outputs <= 0 then
    invalid_arg "Generator.generate: sizes must be positive";
  if spec.n_outputs > spec.n_gates then
    invalid_arg "Generator.generate: more outputs than gates";
  if spec.dff_fraction < 0.0 || spec.dff_fraction >= 1.0 then
    invalid_arg "Generator.generate: dff_fraction must be in [0, 1)";
  let rng = Prng.Rng.create ~seed:spec.seed in
  let total = spec.n_inputs + spec.n_gates in
  (* logic depth grows slowly with size, like the ISCAS suites *)
  let levels =
    let l = 18 + int_of_float (6.0 *. log (float_of_int spec.n_gates /. 200.0)) in
    max 12 (min 48 (min l spec.n_gates))
  in
  let gates = Array.make total None in
  for i = 0 to spec.n_inputs - 1 do
    gates.(i) <-
      Some
        {
          Netlist.id = i;
          name = Printf.sprintf "pi%d" i;
          kind = Gate.Input;
          fanins = [||];
        }
  done;
  (* level boundaries over the logic gates: level l covers ids
     [start l, start (l+1)) (primary inputs form a pseudo-level below 0) *)
  let level_start l = spec.n_inputs + (l * spec.n_gates / levels) in
  let level_of = Array.make total (-1) in
  for l = 0 to levels - 1 do
    for i = level_start l to level_start (l + 1) - 1 do
      level_of.(i) <- l
    done
  done;
  (* column of a gate: fractional position within its level (inputs:
     fractional position among inputs) *)
  let column i =
    if i < spec.n_inputs then float_of_int i /. float_of_int (max 1 spec.n_inputs)
    else begin
      let l = level_of.(i) in
      let lo = level_start l and hi = level_start (l + 1) in
      if hi <= lo + 1 then 0.5
      else float_of_int (i - lo) /. float_of_int (hi - lo - 1)
    end
  in
  (* pick a fanin for gate [i] at level [l]: usually a nearby column of one
     of the previous few levels; occasionally anywhere earlier (long wire) *)
  let pick_fanin i l =
    let pick_input_near c =
      let jitter = 0.1 *. (Prng.Rng.uniform rng +. Prng.Rng.uniform rng -. 1.0) in
      let f = Float.min 0.999 (Float.max 0.0 (c +. jitter)) in
      int_of_float (f *. float_of_int spec.n_inputs)
    in
    if Prng.Rng.uniform rng < 0.05 then
      (* long wire: anywhere earlier *)
      Prng.Rng.int_below rng i
    else if l = 0 then pick_input_near (column i)
    else begin
      (* geometric look-back over levels: mostly the immediately previous *)
      let rec back depth =
        if depth >= l then -1 (* ran past level 0: use the inputs *)
        else if Prng.Rng.uniform rng < 0.7 then l - 1 - depth
        else back (depth + 1)
      in
      let src_level = back 0 in
      if src_level < 0 then pick_input_near (column i)
      else begin
        let lo = level_start src_level and hi = level_start (src_level + 1) in
        let width = hi - lo in
        if width <= 0 then Prng.Rng.int_below rng i
        else begin
          (* column-local pick with triangular jitter *)
          let c = column i in
          let jitter = 0.08 *. (Prng.Rng.uniform rng +. Prng.Rng.uniform rng -. 1.0) in
          let f = Float.min 0.999 (Float.max 0.0 (c +. jitter)) in
          lo + int_of_float (f *. float_of_int width)
        end
      end
    end
  in
  for i = spec.n_inputs to total - 1 do
    let l = level_of.(i) in
    let kind =
      if l > 0 && Prng.Rng.uniform rng < spec.dff_fraction then Gate.Dff
      else pick_kind rng
    in
    let arity = Gate.arity kind in
    let f0 = pick_fanin i l in
    let fanins =
      if arity = 1 then [| f0 |]
      else begin
        let f1 = ref (pick_fanin i l) in
        let tries = ref 0 in
        while !f1 = f0 && !tries < 8 do
          f1 := pick_fanin i l;
          incr tries
        done;
        [| f0; !f1 |]
      end
    in
    gates.(i) <-
      Some { Netlist.id = i; name = Printf.sprintf "g%d" i; kind; fanins }
  done;
  let gates = Array.map Option.get gates in
  (* primary outputs: mostly the last level, the rest sampled earlier *)
  let n_tail = min spec.n_outputs (max 1 (spec.n_outputs / 2)) in
  let outputs = Hashtbl.create spec.n_outputs in
  for i = total - n_tail to total - 1 do
    Hashtbl.replace outputs i ()
  done;
  while Hashtbl.length outputs < spec.n_outputs do
    let cand = spec.n_inputs + Prng.Rng.int_below rng spec.n_gates in
    Hashtbl.replace outputs cand ()
  done;
  let outputs = Array.of_seq (Hashtbl.to_seq_keys outputs) in
  Array.sort Int.compare outputs;
  Netlist.make ~name:spec.name ~gates ~outputs

let paper_suite =
  [
    ("c880", 383); ("c1355", 546); ("c1908", 880); ("c3540", 1669);
    ("c5315", 2307); ("c6288", 2416); ("s5378", 2779); ("c7552", 3512);
    ("s9234", 5597); ("s13207", 7951); ("s15850", 9772); ("s35932", 16065);
    ("s38584", 19253); ("s38417", 22179);
  ]

let paper_spec name =
  match List.assoc_opt name paper_suite with
  | None -> raise Not_found
  | Some n_gates ->
      let sequential = name.[0] = 's' in
      let n_inputs = max 16 (n_gates / 25) in
      let n_outputs = max 8 (n_gates / 40) in
      {
        name;
        n_gates;
        n_inputs;
        n_outputs;
        dff_fraction = (if sequential then 0.07 else 0.0);
        seed = 9001 + Hashtbl.hash name;
      }

let generate_paper name = generate (paper_spec name)
