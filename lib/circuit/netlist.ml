type gate = {
  id : int;
  name : string;
  kind : Gate.kind;
  fanins : int array;
}

type t = {
  name : string;
  gates : gate array;
  outputs : int array;
}

let is_source g = match g.kind with Gate.Input | Gate.Dff -> true | _ -> false

(* Kahn's algorithm over combinational edges; Dff data inputs do not create
   ordering constraints (the Dff is a source). Returns the order or reports
   a cycle. *)
let topo_or_cycle gates =
  let n = Array.length gates in
  let indegree = Array.make n 0 in
  Array.iter
    (fun g -> if not (is_source g) then indegree.(g.id) <- Array.length g.fanins)
    gates;
  let fanouts = Array.make n [] in
  Array.iter
    (fun g ->
      if not (is_source g) then
        Array.iter (fun f -> fanouts.(f) <- g.id :: fanouts.(f)) g.fanins)
    gates;
  let queue = Queue.create () in
  Array.iter (fun g -> if indegree.(g.id) = 0 then Queue.add g.id queue) gates;
  let order = Array.make n 0 in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order.(!count) <- i;
    incr count;
    List.iter
      (fun j ->
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then Queue.add j queue)
      fanouts.(i)
  done;
  if !count = n then Ok order else Error "combinational cycle detected"

let validate_dag ~gates =
  let n = Array.length gates in
  let check i g =
    if g.id <> i then Error (Printf.sprintf "gate %d has id %d" i g.id)
    else if Array.length g.fanins <> Gate.arity g.kind then
      Error
        (Printf.sprintf "gate %s: arity mismatch (%d fanins for %s)" g.name
           (Array.length g.fanins) (Gate.kind_name g.kind))
    else if Array.exists (fun f -> f < 0 || f >= n) g.fanins then
      Error (Printf.sprintf "gate %s: dangling fanin" g.name)
    else Ok ()
  in
  let rec check_all i =
    if i >= n then Ok ()
    else begin
      match check i gates.(i) with Ok () -> check_all (i + 1) | Error _ as e -> e
    end
  in
  match check_all 0 with
  | Error _ as e -> e
  | Ok () -> ( match topo_or_cycle gates with Ok _ -> Ok () | Error e -> Error e)

let make ~name ~gates ~outputs =
  (match validate_dag ~gates with
  | Ok () -> ()
  | Error e -> invalid_arg ("Netlist.make: " ^ e));
  let n = Array.length gates in
  Array.iter
    (fun o -> if o < 0 || o >= n then invalid_arg "Netlist.make: invalid output id")
    outputs;
  { name; gates; outputs }

let size t = Array.length t.gates

let logic_gate_count t =
  Array.fold_left
    (fun acc g -> if g.kind = Gate.Input then acc else acc + 1)
    0 t.gates

let inputs t =
  t.gates
  |> Array.to_seq
  |> Seq.filter_map (fun g -> if g.kind = Gate.Input then Some g.id else None)
  |> Array.of_seq

let dffs t =
  t.gates
  |> Array.to_seq
  |> Seq.filter_map (fun g -> if g.kind = Gate.Dff then Some g.id else None)
  |> Array.of_seq

let fanouts t =
  let n = size t in
  let acc = Array.make n [] in
  Array.iter
    (fun g -> Array.iter (fun f -> acc.(f) <- g.id :: acc.(f)) g.fanins)
    t.gates;
  Array.map (fun l -> Array.of_list (List.rev l)) acc

let topological_order t =
  match topo_or_cycle t.gates with
  | Ok order -> order
  | Error e -> invalid_arg ("Netlist.topological_order: " ^ e)

let endpoints t =
  let set = Hashtbl.create 64 in
  Array.iter (fun o -> Hashtbl.replace set o ()) t.outputs;
  Array.iter
    (fun g ->
      if g.kind = Gate.Dff then Array.iter (fun f -> Hashtbl.replace set f ()) g.fanins)
    t.gates;
  let l = Hashtbl.fold (fun k () acc -> k :: acc) set [] in
  let a = Array.of_list l in
  Array.sort Int.compare a;
  a

let levels t =
  let order = topological_order t in
  let lvl = Array.make (size t) 0 in
  Array.iter
    (fun i ->
      let g = t.gates.(i) in
      if not (is_source g) then
        Array.iter (fun f -> lvl.(i) <- max lvl.(i) (lvl.(f) + 1)) g.fanins)
    order;
  lvl

let max_level t = Array.fold_left max 0 (levels t)
