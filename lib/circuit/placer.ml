type placement = {
  netlist : Netlist.t;
  locations : Geometry.Point.t array;
  die : Geometry.Rect.t;
}

(* undirected adjacency over fanin edges *)
let adjacency (netlist : Netlist.t) =
  let n = Netlist.size netlist in
  let acc = Array.make n [] in
  Array.iter
    (fun (g : Netlist.gate) ->
      Array.iter
        (fun f ->
          acc.(g.id) <- f :: acc.(g.id);
          acc.(f) <- g.id :: acc.(f))
        g.fanins)
    netlist.gates;
  Array.map Array.of_list acc

(* pin primary inputs around the die periphery, like pads *)
let pad_position (die : Geometry.Rect.t) index count =
  let t = (float_of_int index +. 0.5) /. float_of_int (max 1 count) in
  let perimeter_pos = 4.0 *. t in
  let w = Geometry.Rect.width die and h = Geometry.Rect.height die in
  if perimeter_pos < 1.0 then
    Geometry.Point.make (die.xmin +. (perimeter_pos *. w)) die.ymin
  else if perimeter_pos < 2.0 then
    Geometry.Point.make die.xmax (die.ymin +. ((perimeter_pos -. 1.0) *. h))
  else if perimeter_pos < 3.0 then
    Geometry.Point.make (die.xmax -. ((perimeter_pos -. 2.0) *. w)) die.ymax
  else Geometry.Point.make die.xmin (die.ymax -. ((perimeter_pos -. 3.0) *. h))

(* Quadratic (barycenter) placement: primary inputs are pinned to pad
   locations on the die boundary; every other gate relaxes to the mean of
   its neighbors' positions (Gauss-Seidel). This minimizes total squared
   wirelength subject to the pad anchors. *)
let quadratic_positions netlist adj die seed =
  let n = Netlist.size netlist in
  let rng = Prng.Rng.create ~seed in
  let inputs = Netlist.inputs netlist in
  let is_fixed = Array.make n false in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  Array.iteri
    (fun idx g ->
      let p = pad_position die idx (Array.length inputs) in
      is_fixed.(g) <- true;
      xs.(g) <- p.Geometry.Point.x;
      ys.(g) <- p.Geometry.Point.y)
    inputs;
  (* movable gates start at jittered center positions *)
  for g = 0 to n - 1 do
    if not is_fixed.(g) then begin
      xs.(g) <- Prng.Rng.uniform_range rng ~lo:(-0.01) ~hi:0.01;
      ys.(g) <- Prng.Rng.uniform_range rng ~lo:(-0.01) ~hi:0.01
    end
  done;
  for _sweep = 1 to 120 do
    for g = 0 to n - 1 do
      if (not is_fixed.(g)) && Array.length adj.(g) > 0 then begin
        let sx = ref 0.0 and sy = ref 0.0 in
        Array.iter
          (fun nb ->
            sx := !sx +. xs.(nb);
            sy := !sy +. ys.(nb))
          adj.(g);
        let k = float_of_int (Array.length adj.(g)) in
        xs.(g) <- !sx /. k;
        ys.(g) <- !sy /. k
      end
    done
  done;
  (xs, ys)

(* Legalization by recursive median bisection on the analytic positions:
   split the gate set at the coordinate median, assign each half to one half
   of the region, recurse along the longer axis (Capo-style top-down
   spreading). Relative geometry is preserved, density becomes uniform. *)
let legalize rng positions members (die : Geometry.Rect.t) locations =
  let xs, ys = positions in
  let rec bisect members (rect : Geometry.Rect.t) =
    let m = Array.length members in
    if m = 0 then ()
    else if m <= 2 then
      Array.iter
        (fun g ->
          let x = Prng.Rng.uniform_range rng ~lo:rect.Geometry.Rect.xmin ~hi:rect.Geometry.Rect.xmax in
          let y = Prng.Rng.uniform_range rng ~lo:rect.Geometry.Rect.ymin ~hi:rect.Geometry.Rect.ymax in
          locations.(g) <- Geometry.Point.make x y)
        members
    else begin
      let horizontal = Geometry.Rect.width rect >= Geometry.Rect.height rect in
      let key = if horizontal then xs else ys in
      let sorted = Array.copy members in
      Array.sort
        (fun a b ->
          match Float.compare key.(a) key.(b) with 0 -> Int.compare a b | c -> c)
        sorted;
      let half = m / 2 in
      let left = Array.sub sorted 0 half in
      let right = Array.sub sorted half (m - half) in
      if horizontal then begin
        let xmid = 0.5 *. (rect.Geometry.Rect.xmin +. rect.Geometry.Rect.xmax) in
        bisect left
          (Geometry.Rect.make ~xmin:rect.Geometry.Rect.xmin ~xmax:xmid
             ~ymin:rect.Geometry.Rect.ymin ~ymax:rect.Geometry.Rect.ymax);
        bisect right
          (Geometry.Rect.make ~xmin:xmid ~xmax:rect.Geometry.Rect.xmax
             ~ymin:rect.Geometry.Rect.ymin ~ymax:rect.Geometry.Rect.ymax)
      end
      else begin
        let ymid = 0.5 *. (rect.Geometry.Rect.ymin +. rect.Geometry.Rect.ymax) in
        bisect left
          (Geometry.Rect.make ~xmin:rect.Geometry.Rect.xmin ~xmax:rect.Geometry.Rect.xmax
             ~ymin:rect.Geometry.Rect.ymin ~ymax:ymid);
        bisect right
          (Geometry.Rect.make ~xmin:rect.Geometry.Rect.xmin ~xmax:rect.Geometry.Rect.xmax
             ~ymin:ymid ~ymax:rect.Geometry.Rect.ymax)
      end
    end
  in
  bisect members die

let place ?(die = Geometry.Rect.unit_die) ?(seed = 1) netlist =
  let n = Netlist.size netlist in
  let adj = adjacency netlist in
  let positions = quadratic_positions netlist adj die seed in
  let locations = Array.make n (Geometry.Rect.center die) in
  let rng = Prng.Rng.create ~seed:(seed + 17) in
  legalize rng positions (Array.init n (fun i -> i)) die locations;
  { netlist; locations; die }

let hpwl_with fanouts p i =
  let sinks = fanouts.(i) in
  if Array.length sinks = 0 then 0.0
  else begin
    let loc = p.locations.(i) in
    let xmin = ref loc.Geometry.Point.x and xmax = ref loc.Geometry.Point.x in
    let ymin = ref loc.Geometry.Point.y and ymax = ref loc.Geometry.Point.y in
    Array.iter
      (fun s ->
        let l = p.locations.(s) in
        if l.Geometry.Point.x < !xmin then xmin := l.Geometry.Point.x;
        if l.Geometry.Point.x > !xmax then xmax := l.Geometry.Point.x;
        if l.Geometry.Point.y < !ymin then ymin := l.Geometry.Point.y;
        if l.Geometry.Point.y > !ymax then ymax := l.Geometry.Point.y)
      sinks;
    !xmax -. !xmin +. (!ymax -. !ymin)
  end

let hpwl p i = hpwl_with (Netlist.fanouts p.netlist) p i

let hpwl_all p =
  let fanouts = Netlist.fanouts p.netlist in
  Array.init (Netlist.size p.netlist) (hpwl_with fanouts p)

let total_hpwl p = Array.fold_left ( +. ) 0.0 (hpwl_all p)

let random_placement ?(die = Geometry.Rect.unit_die) ~seed netlist =
  let rng = Prng.Rng.create ~seed in
  let locations =
    Array.init (Netlist.size netlist) (fun _ ->
        Geometry.Point.make
          (Prng.Rng.uniform_range rng ~lo:die.xmin ~hi:die.xmax)
          (Prng.Rng.uniform_range rng ~lo:die.ymin ~hi:die.ymax))
  in
  { netlist; locations; die }
