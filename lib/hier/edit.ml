module Netlist = Circuit.Netlist
module Gate = Circuit.Gate

type t = { gate : int; kind : Gate.kind }

let logic_kinds =
  [
    ("inv", Gate.Inv);
    ("buf", Gate.Buf);
    ("nand2", Gate.Nand2);
    ("nor2", Gate.Nor2);
    ("and2", Gate.And2);
    ("or2", Gate.Or2);
    ("xor2", Gate.Xor2);
    ("xnor2", Gate.Xnor2);
  ]

let kind_of_string s =
  match List.assoc_opt (String.lowercase_ascii s) logic_kinds with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown gate kind %S (%s)" s
           (String.concat "|" (List.map fst logic_kinds)))

let kind_to_string k =
  match List.find_opt (fun (_, k') -> k' = k) logic_kinds with
  | Some (name, _) -> name
  | None -> invalid_arg "Hier.Edit.kind_to_string: not a logic kind"

let apply (netlist : Netlist.t) { gate; kind } =
  if gate < 0 || gate >= Netlist.size netlist then
    Error (Printf.sprintf "edit.gate %d out of range (0..%d)" gate (Netlist.size netlist - 1))
  else
    let old = netlist.Netlist.gates.(gate) in
    match old.Netlist.kind with
    | Gate.Input | Gate.Dff ->
        Error
          (Printf.sprintf "edit.gate %d is a %s — only logic gates can be swapped" gate
             (Gate.kind_name old.Netlist.kind))
    | old_kind when Gate.arity old_kind <> Gate.arity kind ->
        Error
          (Printf.sprintf "edit.kind %s has arity %d but gate %d (%s) has %d fanins"
             (kind_to_string kind) (Gate.arity kind) gate (Gate.kind_name old_kind)
             (Gate.arity old_kind))
    | _ ->
        let gates =
          Array.map
            (fun (g : Netlist.gate) ->
              if g.Netlist.id = gate then { g with Netlist.kind } else g)
            netlist.Netlist.gates
        in
        (try Ok (Netlist.make ~name:netlist.Netlist.name ~gates ~outputs:netlist.Netlist.outputs)
         with Invalid_argument m -> Error m)
