(** One-gate design edits for incremental re-timing: swap a logic gate's
    kind while keeping the netlist's ids, connectivity and placement
    stable, so a re-time after the edit dirties exactly the blocks whose
    content the swap changes. *)

type t = { gate : int; kind : Circuit.Gate.kind }

val kind_of_string : string -> (Circuit.Gate.kind, string) result
(** Parse a lowercase logic-kind name ([inv], [buf], [nand2], [nor2],
    [and2], [or2], [xor2], [xnor2]); [Input]/[Dff] are not valid edit
    targets and not accepted. The error names the accepted set. *)

val kind_to_string : Circuit.Gate.kind -> string
(** Inverse of {!kind_of_string} for logic kinds; raises
    [Invalid_argument] on [Input]/[Dff]. *)

val apply : Circuit.Netlist.t -> t -> (Circuit.Netlist.t, string) result
(** Rebuild the netlist with the gate's kind replaced. Errors (with a
    client-presentable message) when the gate id is out of range, the
    target is an [Input]/[Dff], or the new kind's arity differs. *)
