module Netlist = Circuit.Netlist
module Canonical = Ssta.Canonical
module Context = Ssta.Block_ssta.Context
module Depgraph = Persist.Depgraph

type counters = { blocks_reused : int; blocks_recomputed : int }

type result = {
  basis_dim : int;
  n_blocks : int;
  worst : Canonical.t;
  endpoint_forms : Canonical.t array;
  counters : counters;
  analysis_seconds : float;
}

(* ---------------------------------------------------------------- *)
(* stitching *)

type stitched = {
  s_basis_dim : int;
  s_worst : Canonical.t;
  s_endpoints : Canonical.t array;
}

(* Compose the macros in block (level) order: a block output's arrival is
   Clark's max over its base contribution and, per reachable input i,
   [A_i + D_io + k_io·(s_i − s_ref)]; its slew follows the contribution
   with the largest composed mean (block-level selection approximation),
   shifted by that input's slew gain. *)
let compose (part : Partition.t) (setup : Ssta.Experiment.circuit_setup) macros ~basis_dim =
  let n = Netlist.size part.Partition.netlist in
  let arrival = Array.make n None in
  let slew = Array.make n None in
  let boundary f =
    match (arrival.(f), slew.(f)) with
    | Some a, Some s -> (a, s)
    | _ -> invalid_arg "Hier.Engine.compose: block input read before its source block"
  in
  Array.iter
    (fun (block : Partition.block) ->
      let macro : Macro.t = macros.(block.Partition.index) in
      let per_out = Array.make macro.Macro.n_outputs [] in
      (* transfers are grouped by input then output ascending; consing
         then reversing restores ascending input order per output *)
      Array.iter
        (fun (tr : Macro.transfer) ->
          per_out.(tr.Macro.output) <- tr :: per_out.(tr.Macro.output))
        macro.Macro.transfers;
      Array.iteri
        (fun o gate_o ->
          let base =
            match (macro.Macro.base_arrival.(o), macro.Macro.base_slew.(o)) with
            | Some a, Some s -> [ (a, s) ]
            | _ -> []
          in
          let via_inputs =
            List.rev_map
              (fun (tr : Macro.transfer) ->
                let f = block.Partition.ext_inputs.(tr.Macro.input) in
                let a_i, s_i = boundary f in
                let ds = Canonical.add_constant s_i (-.Macro.reference_slew_ps) in
                let a =
                  Canonical.add
                    (Canonical.add a_i tr.Macro.arrival)
                    (Canonical.scale tr.Macro.k_arrival_slew ds)
                in
                let s =
                  Canonical.add tr.Macro.slew (Canonical.scale tr.Macro.k_slew_slew ds)
                in
                (a, s))
              (List.rev per_out.(o))
          in
          match base @ via_inputs with
          | [] ->
              invalid_arg "Hier.Engine.compose: block output unreachable from any boundary"
          | contribs ->
              let merged = Canonical.max_many (List.map fst contribs) in
              let _, sel =
                List.fold_left
                  (fun (best_mean, best) (a, s) ->
                    if a.Canonical.mean > best_mean then (a.Canonical.mean, s)
                    else (best_mean, best))
                  (neg_infinity, snd (List.hd contribs))
                  contribs
              in
              arrival.(gate_o) <- Some merged;
              slew.(gate_o) <- Some sel)
        block.Partition.outputs)
    part.Partition.blocks;
  let endpoints = setup.Ssta.Experiment.sta.Sta.Timing.endpoints in
  let endpoint_forms = Array.map (fun e -> fst (boundary e)) endpoints in
  let worst = Canonical.max_many (Array.to_list endpoint_forms) in
  { s_basis_dim = basis_dim; s_worst = worst; s_endpoints = endpoint_forms }

(* ---------------------------------------------------------------- *)
(* persistence of the stitched result *)

module Codec = Persist.Codec
module Entity = Persist.Entity

let stitch_entity =
  let encode b s =
    Codec.write_uint b s.s_basis_dim;
    Entity.write_canonical b s.s_worst;
    Codec.write_array b Entity.write_canonical s.s_endpoints
  in
  let decode r =
    let s_basis_dim = Codec.read_uint r in
    let check c =
      if Canonical.dim c <> s_basis_dim then
        raise (Codec.Error "stitched form dimension mismatch");
      c
    in
    let s_worst = check (Entity.read_canonical r) in
    let s_endpoints = Codec.read_array r (fun r -> check (Entity.read_canonical r)) in
    { s_basis_dim; s_worst; s_endpoints }
  in
  { Entity.kind = "hier-stitch"; version = 1; encode; decode }

let macro_spec ~part_hash ~model_key =
  Printf.sprintf "hier-macro(block=%s;models=%s)" part_hash model_key

let macro_node ~part_hash ~model_key =
  Depgraph.node Macro.entity ~spec:(macro_spec ~part_hash ~model_key)

(* ---------------------------------------------------------------- *)

let retime ?(n_blocks = 4) ?jobs ?cache (setup : Ssta.Experiment.circuit_setup) ~models
    ~model_key =
  let timer = Util.Timer.start () in
  let part = Partition.build ~n_blocks setup.Ssta.Experiment.netlist in
  let ctx = Context.build setup ~models in
  let basis_dim = Context.basis_dim ctx in
  let nb = Array.length part.Partition.blocks in
  let hashes = Array.init nb (fun b -> Partition.content_hash part ~setup b) in
  let spec_of b = macro_spec ~part_hash:hashes.(b) ~model_key in
  let outcomes = Array.make nb `Miss in
  let fetch_macros () =
    let macros = Array.make nb None in
    Util.Pool.with_jobs ?jobs (fun pool ->
        Util.Pool.parallel_for pool ~chunk:1 ~n:nb (fun lo hi ->
            for b = lo to hi - 1 do
              let m, outcome =
                match cache with
                | None -> (Macro.extract ctx part ~block:b, `Miss)
                | Some dg ->
                    Depgraph.find_or_add dg Macro.entity ~spec:(spec_of b) (fun () ->
                        Macro.extract ctx part ~block:b)
              in
              macros.(b) <- Some m;
              outcomes.(b) <- outcome
            done));
    Array.map
      (function
        | Some m -> m
        | None -> invalid_arg "Hier.Engine.retime: macro extraction produced no result")
      macros
  in
  let compute_stitched () = compose part setup (fetch_macros ()) ~basis_dim in
  let stitched, blocks_reused, blocks_recomputed =
    match cache with
    | None ->
        let s = compute_stitched () in
        (s, 0, nb)
    | Some dg -> (
        let spec =
          Printf.sprintf "hier-stitch(blocks=%s;inter=%s;models=%s)"
            (String.concat "," (Array.to_list hashes))
            (Codec.fnv64_hex (Partition.interconnect_spec part))
            model_key
        in
        let deps =
          List.init nb (fun b -> macro_node ~part_hash:hashes.(b) ~model_key)
        in
        let s, outcome = Depgraph.find_or_add dg stitch_entity ~spec ~deps compute_stitched in
        match outcome with
        | `Hit -> (s, nb, 0)
        | `Miss | `Recovered ->
            let reused =
              Array.fold_left
                (fun acc o -> match o with `Hit -> acc + 1 | `Miss | `Recovered -> acc)
                0 outcomes
            in
            (s, reused, nb - reused))
  in
  {
    basis_dim = stitched.s_basis_dim;
    n_blocks = nb;
    worst = stitched.s_worst;
    endpoint_forms = stitched.s_endpoints;
    counters = { blocks_reused; blocks_recomputed };
    analysis_seconds = Util.Timer.elapsed_s timer;
  }

let validate_against_flat result ~(flat : Ssta.Block_ssta.t) =
  let open Ssta in
  let ref_mean = flat.Block_ssta.worst.Canonical.mean in
  let ref_sigma = Canonical.sigma flat.Block_ssta.worst in
  let e_mu = 100.0 *. Float.abs (result.worst.Canonical.mean -. ref_mean) /. Float.abs ref_mean in
  let e_sigma =
    100.0 *. Float.abs (Canonical.sigma result.worst -. ref_sigma) /. Float.abs ref_sigma
  in
  (e_mu, e_sigma)
