(** Incremental hierarchical SSTA: partition, extract (or load) per-block
    macro-models, and stitch them with Clark's max into the worst-delay
    canonical form.

    With a [cache], macros are content-addressed on
    [(block content hash, KLE model key)] and the stitched result on
    [(all block hashes, interconnect, model key)], with dependency edges
    from every macro to the stitched entry — so invalidating one block's
    macro removes exactly its downstream stitched results
    ({!Persist.Depgraph.invalidate}), and a one-block edit re-extracts
    exactly the dirty block set. All persistence goes through the
    dependency layer; this library never touches the store directly. *)

type counters = {
  blocks_reused : int;  (** macros served from the cache *)
  blocks_recomputed : int;  (** macros extracted this call *)
}

type result = {
  basis_dim : int;
  n_blocks : int;
  worst : Ssta.Canonical.t;
  endpoint_forms : Ssta.Canonical.t array;  (** per [Sta.Timing] endpoint *)
  counters : counters;
  analysis_seconds : float;
}

val retime :
  ?n_blocks:int ->
  ?jobs:int ->
  ?cache:Persist.Depgraph.t ->
  Ssta.Experiment.circuit_setup ->
  models:Kle.Model.t array ->
  model_key:string ->
  result
(** Hierarchical analysis of [setup] over [models] (one per parameter, as
    {!Ssta.Block_ssta.run}). [model_key] is the models' canonical spec
    contribution to cache keys — callers must derive it from the same
    inputs that determine the models (kernel specs, truncation, process).
    [n_blocks] defaults to 4; [jobs] fans block extraction out with
    {!Util.Pool.with_jobs} semantics (bit-identical for every value).
    Without [cache] every block is extracted ([blocks_reused = 0]). When
    the cached stitched result is served whole, [blocks_reused] counts
    all blocks. *)

val macro_node : part_hash:string -> model_key:string -> Persist.Depgraph.node
(** Cache address of one block's macro, for targeted invalidation (the
    [part_hash] is {!Partition.content_hash} of the block). *)

val validate_against_flat : result -> flat:Ssta.Block_ssta.t -> float * float
(** [(e_mu_pct, e_sigma_pct)] of the composed worst-delay form against the
    flat single-pass analysis of the same setup/models. *)
