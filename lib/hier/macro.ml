module Netlist = Circuit.Netlist
module Gate = Circuit.Gate
module Canonical = Ssta.Canonical
module Context = Ssta.Block_ssta.Context

type transfer = {
  input : int;
  output : int;
  arrival : Canonical.t;
  slew : Canonical.t;
  k_arrival_slew : float;
  k_slew_slew : float;
}

type t = {
  basis_dim : int;
  n_inputs : int;
  n_outputs : int;
  base_arrival : Canonical.t option array;
  base_slew : Canonical.t option array;
  transfers : transfer array;
  extract_seconds : float;
}

let reference_slew_ps = Sta.Timing.default_input_slew_ps

(* Boundary arrivals not under study sit this far below zero. Paths
   accumulate at most ~1e4 ps and form sigmas stay below ~1e3, so the
   tightness alpha at any active-vs-suppressed merge exceeds ~1e3 — far
   past the point where normal_cdf saturates to exactly 1.0 and the pdf
   underflows to exactly 0.0, making Clark's max an exact selection (no
   leakage of suppressed means into active forms). Means of order 1e6
   also keep the second-moment subtraction in Clark's variance well
   within double precision (ulp(1e12) = 2.4e-4). *)
let suppress = 1e6
let reachable_mean = -1e5

let zeros4 = Array.make Gate.num_parameters 0.0

(* One block-local propagation with the given boundary activation:
   [`Sources] lets the block's internal Input/Dff gates launch and
   suppresses every external input; [`Ext i] launches external input [i]
   at arrival 0 / reference slew and suppresses everything else. The
   basis is widened by one pseudo dimension (index [basis_dim]) carrying
   the active external driver's slew deviation. Returns per block output:
   (arrival form, slew form), both of dimension [basis_dim + 1]. *)
let extract_pass (ctx : Context.t) (part : Partition.t) (block : Partition.block) ~active =
  let netlist = part.Partition.netlist in
  let prepared = ctx.Context.setup.Ssta.Experiment.sta in
  let basis_dim = ctx.Context.basis_dim in
  let dim = basis_dim + 1 in
  let n = Netlist.size netlist in
  let arr = Array.make n (Canonical.constant ~dim 0.0) in
  let slew = Array.make n (Canonical.constant ~dim reference_slew_ps) in
  let nom_arr = Array.make n 0.0 in
  let nom_slew = Array.make n reference_slew_ps in
  (* boundary: external inputs *)
  Array.iteri
    (fun i f ->
      match active with
      | `Ext j when j = i ->
          arr.(f) <- Canonical.constant ~dim 0.0;
          nom_arr.(f) <- 0.0;
          let sens = Array.make dim 0.0 in
          sens.(basis_dim) <- 1.0;
          slew.(f) <- Canonical.make ~mean:reference_slew_ps ~sens ~indep:0.0;
          nom_slew.(f) <- reference_slew_ps
      | `Ext _ | `Sources ->
          arr.(f) <- Canonical.constant ~dim (-.suppress);
          nom_arr.(f) <- -.suppress;
          slew.(f) <- Canonical.constant ~dim reference_slew_ps;
          nom_slew.(f) <- reference_slew_ps)
    block.Partition.ext_inputs;
  let statistical_part g ~betas ~quad = Context.statistical_part ~dim ctx g ~betas ~quad in
  Array.iter
    (fun g ->
      let gate = netlist.Netlist.gates.(g) in
      let c_load = prepared.Sta.Timing.c_loads.(g) in
      match gate.Netlist.kind with
      | Gate.Input ->
          let s =
            Gate.output_slew Gate.Input ~slew_in:reference_slew_ps ~c_load ~params:zeros4
          in
          slew.(g) <- Canonical.constant ~dim s;
          nom_slew.(g) <- s;
          if active = `Sources then begin
            let d =
              Gate.delay Gate.Input ~slew_in:reference_slew_ps ~c_load ~params:zeros4
            in
            arr.(g) <- Canonical.constant ~dim d;
            nom_arr.(g) <- d
          end
          else begin
            arr.(g) <- Canonical.constant ~dim (-.suppress);
            nom_arr.(g) <- -.suppress
          end
      | Gate.Dff ->
          let s_nom =
            Gate.output_slew Gate.Dff ~slew_in:reference_slew_ps ~c_load ~params:zeros4
          in
          nom_slew.(g) <- s_nom;
          if active = `Sources then begin
            let timing = Gate.timing Gate.Dff in
            let nominal = Gate.clk_to_q ~params:zeros4 in
            let stat =
              statistical_part g ~betas:timing.Gate.beta
                ~quad:(Some (timing.Gate.gamma, timing.Gate.w))
            in
            arr.(g) <- Canonical.add_constant stat nominal;
            nom_arr.(g) <- nominal;
            let s_stat = statistical_part g ~betas:timing.Gate.beta_slew ~quad:None in
            slew.(g) <- Canonical.add_constant s_stat s_nom
          end
          else begin
            arr.(g) <- Canonical.constant ~dim (-.suppress);
            nom_arr.(g) <- -.suppress;
            slew.(g) <- Canonical.constant ~dim s_nom
          end
      | kind ->
          (* mirror of [Block_ssta.run]'s merge, with the block-local
             nominal recurrence standing in for the global nominal STA *)
          let timing = Gate.timing kind in
          let best_nominal = ref neg_infinity in
          let best_slew_nom = ref reference_slew_ps in
          let best_slew_form = ref (Canonical.constant ~dim reference_slew_ps) in
          let pins =
            Array.to_list
              (Array.map
                 (fun f ->
                   let load = prepared.Sta.Timing.wireload.Circuit.Wireload.loads.(f) in
                   let wire_elmore =
                     load.Circuit.Wireload.r_wire
                     *. ((0.5 *. load.Circuit.Wireload.c_wire) +. timing.Gate.c_in)
                   in
                   let pin_nominal = nom_arr.(f) +. wire_elmore in
                   if pin_nominal > !best_nominal then begin
                     best_nominal := pin_nominal;
                     let s_drv = nom_slew.(f) in
                     let s_pin =
                       Sta.Slew.sink_slew ~slew_driver:s_drv ~wire_elmore_ps:wire_elmore
                     in
                     best_slew_nom := s_pin;
                     let gain = if s_pin > 1e-9 then s_drv /. s_pin else 1.0 in
                     best_slew_form :=
                       Canonical.add_constant
                         (Canonical.scale gain (Canonical.add_constant slew.(f) (-.s_drv)))
                         s_pin
                   end;
                   Canonical.add_constant arr.(f) wire_elmore)
                 gate.Netlist.fanins)
          in
          let merged = Canonical.max_many pins in
          let slew_in_nom = !best_slew_nom in
          let nominal_delay = Gate.delay kind ~slew_in:slew_in_nom ~c_load ~params:zeros4 in
          let stat =
            statistical_part g ~betas:timing.Gate.beta
              ~quad:(Some (timing.Gate.gamma, timing.Gate.w))
          in
          let slew_dev = Canonical.add_constant !best_slew_form (-.slew_in_nom) in
          let delay_form =
            Canonical.add
              (Canonical.add_constant stat nominal_delay)
              (Canonical.scale timing.Gate.k_slew slew_dev)
          in
          arr.(g) <- Canonical.add merged delay_form;
          nom_arr.(g) <- !best_nominal +. nominal_delay;
          let s_nom = Gate.output_slew kind ~slew_in:slew_in_nom ~c_load ~params:zeros4 in
          let s_stat = statistical_part g ~betas:timing.Gate.beta_slew ~quad:None in
          slew.(g) <-
            Canonical.add
              (Canonical.add_constant s_stat s_nom)
              (Canonical.scale timing.Gate.k_slew_out slew_dev);
          nom_slew.(g) <- s_nom)
    block.Partition.gates;
  Array.map (fun o -> (arr.(o), slew.(o))) block.Partition.outputs

let strip basis_dim (c : Canonical.t) =
  Canonical.make ~mean:c.Canonical.mean
    ~sens:(Array.sub c.Canonical.sens 0 basis_dim)
    ~indep:c.Canonical.indep

let extract ctx (part : Partition.t) ~block =
  let timer = Util.Timer.start () in
  let b = part.Partition.blocks.(block) in
  let basis_dim = Context.basis_dim ctx in
  let n_outputs = Array.length b.Partition.outputs in
  let n_inputs = Array.length b.Partition.ext_inputs in
  let base_arrival = Array.make n_outputs None in
  let base_slew = Array.make n_outputs None in
  if b.Partition.has_sources then begin
    let outs = extract_pass ctx part b ~active:`Sources in
    Array.iteri
      (fun o (a, s) ->
        if a.Canonical.mean > reachable_mean then begin
          base_arrival.(o) <- Some (strip basis_dim a);
          base_slew.(o) <- Some (strip basis_dim s)
        end)
      outs
  end;
  let transfers = ref [] in
  for i = n_inputs - 1 downto 0 do
    let outs = extract_pass ctx part b ~active:(`Ext i) in
    for o = n_outputs - 1 downto 0 do
      let a, s = outs.(o) in
      if a.Canonical.mean > reachable_mean then
        transfers :=
          {
            input = i;
            output = o;
            arrival = strip basis_dim a;
            slew = strip basis_dim s;
            k_arrival_slew = a.Canonical.sens.(basis_dim);
            k_slew_slew = s.Canonical.sens.(basis_dim);
          }
          :: !transfers
    done
  done;
  {
    basis_dim;
    n_inputs;
    n_outputs;
    base_arrival;
    base_slew;
    transfers = Array.of_list !transfers;
    extract_seconds = Util.Timer.elapsed_s timer;
  }

(* ---------------------------------------------------------------- *)
(* persistence *)

module Codec = Persist.Codec
module Entity = Persist.Entity

let encode b t =
  Codec.write_uint b t.basis_dim;
  Codec.write_uint b t.n_inputs;
  Codec.write_uint b t.n_outputs;
  Codec.write_array b (fun b c -> Codec.write_option b Entity.write_canonical c) t.base_arrival;
  Codec.write_array b (fun b c -> Codec.write_option b Entity.write_canonical c) t.base_slew;
  Codec.write_array b
    (fun b tr ->
      Codec.write_uint b tr.input;
      Codec.write_uint b tr.output;
      Entity.write_canonical b tr.arrival;
      Entity.write_canonical b tr.slew;
      Codec.write_float b tr.k_arrival_slew;
      Codec.write_float b tr.k_slew_slew)
    t.transfers;
  Codec.write_float b t.extract_seconds

let decode r =
  let basis_dim = Codec.read_uint r in
  let n_inputs = Codec.read_uint r in
  let n_outputs = Codec.read_uint r in
  let corrupt fmt = Printf.ksprintf (fun m -> raise (Codec.Error m)) fmt in
  let canonical_checked r =
    let c = Entity.read_canonical r in
    if Canonical.dim c <> basis_dim then
      corrupt "macro form of dimension %d (basis %d)" (Canonical.dim c) basis_dim;
    c
  in
  let base_arrival = Codec.read_array r (fun r -> Codec.read_option r canonical_checked) in
  let base_slew = Codec.read_array r (fun r -> Codec.read_option r canonical_checked) in
  if Array.length base_arrival <> n_outputs || Array.length base_slew <> n_outputs then
    corrupt "macro base arrays sized %d/%d for %d outputs" (Array.length base_arrival)
      (Array.length base_slew) n_outputs;
  let transfers =
    Codec.read_array r (fun r ->
        let input = Codec.read_uint r in
        let output = Codec.read_uint r in
        if input >= n_inputs || output >= n_outputs then
          corrupt "macro transfer (%d, %d) out of range (%d inputs, %d outputs)" input
            output n_inputs n_outputs;
        let arrival = canonical_checked r in
        let slew = canonical_checked r in
        let k_arrival_slew = Codec.read_float r in
        let k_slew_slew = Codec.read_float r in
        if not (Float.is_finite k_arrival_slew && Float.is_finite k_slew_slew) then
          corrupt "non-finite macro slew gain";
        { input; output; arrival; slew; k_arrival_slew; k_slew_slew })
  in
  let extract_seconds = Codec.read_float r in
  { basis_dim; n_inputs; n_outputs; base_arrival; base_slew; transfers; extract_seconds }

let entity = { Entity.kind = "hier-macro"; version = 1; encode; decode }
