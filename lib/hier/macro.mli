(** Per-block interface timing macro-model (hierarchical SSTA, after Li
    et al.): canonical-form arrival {e transfers} from each block input to
    each block output over the shared 4×r KLE ξ basis, so a block's timing
    can be extracted once and recombined with Clark's max at stitch points
    without re-touching its gates.

    Extraction runs one propagation pass per external input (plus one for
    internal [Input]/[Dff] sources): the active input gets arrival 0 while
    every other boundary arrival is suppressed far below any real path, so
    Clark's max selects exactly the active paths (the cdf/pdf saturate at
    the resulting astronomic tightness). Each pass appends one {e pseudo
    basis dimension} carrying the active driver's output-slew deviation
    with unit sensitivity; its coefficient at a block output is then the
    first-order gain of that output's arrival (and slew) with respect to
    the input slew — the PERI/k_slew chain differentiated through the
    block — and is stripped from the stored forms.

    The macro is a pure function of (block content, KLE models): boundary
    nominal arrivals are referenced to 0 and boundary slews to
    [Sta.Timing.default_input_slew_ps], which is what makes it cacheable
    under the block {!Partition.content_hash}. The cost is a block-level
    selection approximation at stitch time (composition picks slews by
    largest composed nominal, and linearizes around the reference slew);
    [Engine] validates the composed result against the flat analysis. *)

type transfer = {
  input : int;  (** index into the block's [ext_inputs] *)
  output : int;  (** index into the block's [outputs] *)
  arrival : Ssta.Canonical.t;
      (** arrival at the output when the input switches at time 0 with the
          reference slew *)
  slew : Ssta.Canonical.t;  (** output slew along the input's selected chains *)
  k_arrival_slew : float;  (** d(arrival at output) / d(input driver slew) *)
  k_slew_slew : float;  (** d(output slew) / d(input driver slew) *)
}

type t = {
  basis_dim : int;
  n_inputs : int;
  n_outputs : int;
  base_arrival : Ssta.Canonical.t option array;
      (** per output: arrival contribution of the block's internal
          [Input]/[Dff] sources, when any reach it *)
  base_slew : Ssta.Canonical.t option array;
      (** per output: slew along the internal sources' selected chains *)
  transfers : transfer array;
      (** reachable (input, output) pairs, grouped by input then output *)
  extract_seconds : float;
}

val reference_slew_ps : float
(** Boundary linearization point: [Sta.Timing.default_input_slew_ps]. *)

val extract : Ssta.Block_ssta.Context.t -> Partition.t -> block:int -> t
(** Extract block [block]'s macro. Deterministic: a pure function of the
    partition, the setup inside the context, and its models. *)

val entity : t Persist.Entity.t
(** Versioned store codec, kind ["hier-macro"] (mirrored in
    [Persist.Store]'s fsck version table). *)
