module Netlist = Circuit.Netlist
module Gate = Circuit.Gate

type block = {
  index : int;
  gates : int array;
  ext_inputs : int array;
  outputs : int array;
  has_sources : bool;
}

type t = {
  netlist : Netlist.t;
  block_of_gate : int array;
  blocks : block array;
}

let is_source (g : Netlist.gate) =
  match g.Netlist.kind with Gate.Input | Gate.Dff -> true | _ -> false

let build ?(n_blocks = 4) netlist =
  if n_blocks < 1 then invalid_arg "Partition.build: n_blocks must be >= 1";
  let n = Netlist.size netlist in
  let levels = Netlist.levels netlist in
  let max_level = Array.fold_left max 0 levels in
  let n_blocks = min n_blocks (max_level + 1) in
  (* gates per level, then greedy contiguous ranges balanced by count *)
  let per_level = Array.make (max_level + 1) 0 in
  Array.iter (fun l -> per_level.(l) <- per_level.(l) + 1) levels;
  let block_of_level = Array.make (max_level + 1) 0 in
  let remaining = ref n and blocks_left = ref n_blocks in
  let current = ref 0 and acc = ref 0 in
  for l = 0 to max_level do
    block_of_level.(l) <- !current;
    acc := !acc + per_level.(l);
    remaining := !remaining - per_level.(l);
    let target = (!remaining + !acc + !blocks_left - 1) / !blocks_left in
    if !acc >= target && !blocks_left > 1 && l < max_level then begin
      incr current;
      decr blocks_left;
      acc := 0
    end
  done;
  let n_actual = !current + 1 in
  let block_of_gate = Array.map (fun l -> block_of_level.(l)) levels in
  let order = Netlist.topological_order netlist in
  let members = Array.make n_actual [] in
  Array.iter (fun g -> members.(block_of_gate.(g)) <- g :: members.(block_of_gate.(g))) order;
  let endpoint_set = Hashtbl.create 64 in
  Array.iter (fun e -> Hashtbl.replace endpoint_set e ()) (Netlist.endpoints netlist);
  let blocks =
    Array.init n_actual (fun b ->
        let gates = Array.of_list (List.rev members.(b)) in
        let ext = Hashtbl.create 16 and outs = Hashtbl.create 16 in
        let has_sources = ref false in
        Array.iter
          (fun g ->
            let gate = netlist.Netlist.gates.(g) in
            if is_source gate then has_sources := true
            else
              Array.iter
                (fun f -> if block_of_gate.(f) <> b then Hashtbl.replace ext f ())
                gate.Netlist.fanins;
            if Hashtbl.mem endpoint_set g then Hashtbl.replace outs g ())
          gates;
        (* a member also becomes an output when a combinational pin in
           another block reads it *)
        Array.iter
          (fun (gate : Netlist.gate) ->
            if (not (is_source gate)) && block_of_gate.(gate.Netlist.id) <> b then
              Array.iter
                (fun f -> if block_of_gate.(f) = b then Hashtbl.replace outs f ())
                gate.Netlist.fanins)
          netlist.Netlist.gates;
        let sorted tbl =
          let a = Array.of_seq (Seq.map fst (Hashtbl.to_seq tbl)) in
          Array.sort Int.compare a;
          a
        in
        {
          index = b;
          gates;
          ext_inputs = sorted ext;
          outputs = sorted outs;
          has_sources = !has_sources;
        })
  in
  { netlist; block_of_gate; blocks }

let index_in a g =
  let rec go lo hi =
    if lo >= hi then raise Not_found
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = g then mid else if a.(mid) < g then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let output_index b g = index_in b.outputs g
let ext_input_index b g = index_in b.ext_inputs g

let content_hash t ~(setup : Ssta.Experiment.circuit_setup) b =
  if Netlist.size setup.Ssta.Experiment.netlist <> Netlist.size t.netlist then
    invalid_arg "Partition.content_hash: setup built from a different netlist";
  let prepared = setup.Ssta.Experiment.sta in
  let locations = setup.Ssta.Experiment.placement.Circuit.Placer.locations in
  let loads = prepared.Sta.Timing.wireload.Circuit.Wireload.loads in
  let block = t.blocks.(b) in
  let local = Hashtbl.create (Array.length block.gates) in
  Array.iteri (fun i g -> Hashtbl.replace local g i) block.gates;
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Array.iteri
    (fun i g ->
      let gate = t.netlist.Netlist.gates.(g) in
      let p = locations.(g) in
      let load = loads.(g) in
      addf "g%d:%s@(%.17g,%.17g);cl=%.17g;rw=%.17g;cw=%.17g;f=[" i
        (Gate.kind_name gate.Netlist.kind)
        p.Geometry.Point.x p.Geometry.Point.y prepared.Sta.Timing.c_loads.(g)
        load.Circuit.Wireload.r_wire load.Circuit.Wireload.c_wire;
      if not (is_source gate) then
        Array.iter
          (fun f ->
            match Hashtbl.find_opt local f with
            | Some j -> addf "i%d," j
            | None -> addf "x%d," (ext_input_index block f))
          gate.Netlist.fanins;
      addf "];\n")
    block.gates;
  Array.iteri
    (fun i f ->
      let load = loads.(f) in
      addf "x%d:rw=%.17g;cw=%.17g;\n" i load.Circuit.Wireload.r_wire
        load.Circuit.Wireload.c_wire)
    block.ext_inputs;
  addf "o=[";
  Array.iter (fun g -> addf "i%d," (Hashtbl.find local g)) block.outputs;
  addf "]";
  Persist.Codec.fnv64_hex (Buffer.contents buf)

let interconnect_spec t =
  let buf = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Array.iter
    (fun block ->
      addf "b%d:x=[" block.index;
      Array.iter
        (fun f ->
          let src = t.blocks.(t.block_of_gate.(f)) in
          addf "(%d,%d)," src.index (output_index src f))
        block.ext_inputs;
      addf "];")
    t.blocks;
  addf "e=[";
  Array.iter
    (fun e ->
      let src = t.blocks.(t.block_of_gate.(e)) in
      addf "(%d,%d)," src.index (output_index src e))
    (Netlist.endpoints t.netlist);
  addf "]";
  Buffer.contents buf
