(** Levelized partition of a netlist into timing blocks.

    Gates are cut into contiguous topological-level ranges balanced by
    gate count, so every cross-block combinational edge points from a
    lower block to a higher one and blocks can be extracted and stitched
    in index order. Sequential elements ([Input]/[Dff]) are timing
    sources: their data fanins impose no ordering, so a Dff may sit in
    block 0 while its data driver sits downstream — the driver is an
    endpoint and therefore a block output.

    Each block's {!content_hash} digests everything its macro-model is a
    pure function of {e besides} the KLE model: member kinds, block-local
    fanin structure, placed locations, capacitive loads, and the wire
    parasitics of member nets and of the external nets feeding the block.
    A one-gate kind swap therefore changes exactly the hashes of the
    blocks whose timing it can change (its own block; upstream blocks too
    only when the swap changes the pin capacitance their loads see). *)

type block = {
  index : int;
  gates : int array;  (** member gate ids, in topological order *)
  ext_inputs : int array;
      (** distinct driver gate ids outside the block feeding member
          combinational pins, sorted ascending *)
  outputs : int array;
      (** member gates visible outside: driving a combinational pin in
          another block, or a timing endpoint; sorted ascending *)
  has_sources : bool;  (** any [Input]/[Dff] member *)
}

type t = {
  netlist : Circuit.Netlist.t;
  block_of_gate : int array;
  blocks : block array;  (** in stitch (level) order *)
}

val build : ?n_blocks:int -> Circuit.Netlist.t -> t
(** Split into at most [n_blocks] (default 4, clamped to [1, levels+1])
    blocks. Raises [Invalid_argument] if [n_blocks < 1]. *)

val output_index : block -> int -> int
(** Position of a gate id in [outputs]. Raises [Not_found]. *)

val ext_input_index : block -> int -> int
(** Position of a gate id in [ext_inputs]. Raises [Not_found]. *)

val content_hash : t -> setup:Ssta.Experiment.circuit_setup -> int -> string
(** 16-hex digest of block [b]'s macro-relevant content. The [setup] must
    be built from the partition's netlist ([Invalid_argument] otherwise). *)

val interconnect_spec : t -> string
(** Canonical description of the cross-block wiring (which (block, output)
    feeds which (block, external input)) plus the endpoint list — the
    stitch topology's contribution to cache keys. *)
