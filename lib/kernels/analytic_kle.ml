type parity = Even | Odd

type eigenpair_1d = {
  lambda : float;
  omega : float;
  parity : parity;
  norm : float;
}

let bisect f lo hi =
  (* assumes a sign change on [lo, hi] *)
  let flo = f lo in
  let lo = ref lo and hi = ref hi in
  let flo = ref flo in
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    let fm = f mid in
    if (fm >= 0.0 && !flo >= 0.0) || (fm <= 0.0 && !flo <= 0.0) then begin
      lo := mid;
      flo := fm
    end
    else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let exp_1d ~c ~half_width ~count =
  if c <= 0.0 || half_width <= 0.0 || count <= 0 then
    invalid_arg "Analytic_kle.exp_1d: parameters must be positive";
  let a = half_width in
  let eps = 1e-9 in
  (* even mode n: root of c - w tan(wa) in (((n-1) pi)/a, ((n-0.5) pi)/a) *)
  let even_root n =
    let lo = ((float_of_int (n - 1) *. Float.pi) /. a) +. eps in
    let hi = (((float_of_int n -. 0.5) *. Float.pi) /. a) -. eps in
    bisect (fun w -> c -. (w *. tan (w *. a))) (Float.max lo eps) hi
  in
  (* odd mode n: root of w + c tan(wa) in (((n-0.5) pi)/a, (n pi)/a) *)
  let odd_root n =
    let lo = (((float_of_int n -. 0.5) *. Float.pi) /. a) +. eps in
    let hi = ((float_of_int n *. Float.pi) /. a) -. eps in
    bisect (fun w -> w +. (c *. tan (w *. a))) lo hi
  in
  let lambda_of w = 2.0 *. c /. ((w *. w) +. (c *. c)) in
  let make parity w =
    let norm =
      match parity with
      | Even -> sqrt (a +. (sin (2.0 *. w *. a) /. (2.0 *. w)))
      | Odd -> sqrt (a -. (sin (2.0 *. w *. a) /. (2.0 *. w)))
    in
    { lambda = lambda_of w; omega = w; parity; norm }
  in
  (* even and odd frequencies interleave, so generating [count] of each and
     sorting by eigenvalue is enough *)
  let pairs =
    Array.init count (fun i -> make Even (even_root (i + 1)))
    |> Array.append (Array.init count (fun i -> make Odd (odd_root (i + 1))))
  in
  Array.sort (fun p q -> Float.compare q.lambda p.lambda) pairs;
  Array.sub pairs 0 count

let eval_1d p x =
  match p.parity with
  | Even -> cos (p.omega *. x) /. p.norm
  | Odd -> sin (p.omega *. x) /. p.norm

type eigenpair_2d = { lambda : float; fx : eigenpair_1d; fy : eigenpair_1d }

let exp_2d ~c ~rect ~count =
  if count <= 0 then invalid_arg "Analytic_kle.exp_2d: count must be positive";
  (* enough 1-D modes per axis: the product of the (m+1)-th modes is always
     below the m-th largest product, so m = count suffices *)
  let m = count in
  let px = exp_1d ~c ~half_width:(0.5 *. Geometry.Rect.width rect) ~count:m in
  let py = exp_1d ~c ~half_width:(0.5 *. Geometry.Rect.height rect) ~count:m in
  let all =
    Array.concat
      (List.init m (fun i ->
           Array.map
             (fun (q : eigenpair_1d) ->
               { lambda = px.(i).lambda *. q.lambda; fx = px.(i); fy = q })
             py))
  in
  Array.sort (fun p q -> Float.compare q.lambda p.lambda) all;
  Array.sub all 0 count

let eval_2d ~rect p (pt : Geometry.Point.t) =
  let cx = (Geometry.Rect.center rect).x and cy = (Geometry.Rect.center rect).y in
  eval_1d p.fx (pt.x -. cx) *. eval_1d p.fy (pt.y -. cy)

let reconstruct_kernel ~rect pairs x y =
  Array.fold_left
    (fun acc p -> acc +. (p.lambda *. eval_2d ~rect p x *. eval_2d ~rect p y))
    0.0 pairs
