type correlogram = {
  distances : float array;
  correlations : float array;
  counts : int array;
}

let empirical_correlogram ~locations ~samples ?(bins = 20) ?vmax () =
  let n_loc = Array.length locations in
  if Linalg.Mat.cols samples <> n_loc then
    invalid_arg "Extract.empirical_correlogram: column count mismatch";
  if Linalg.Mat.rows samples < 3 then
    invalid_arg "Extract.empirical_correlogram: need at least 3 sample rows";
  if bins <= 0 then invalid_arg "Extract.empirical_correlogram: bins must be positive";
  let vmax =
    match vmax with
    | Some v -> v
    | None ->
        let m = ref 0.0 in
        for i = 0 to n_loc - 1 do
          for j = i + 1 to n_loc - 1 do
            m := Float.max !m (Geometry.Point.dist locations.(i) locations.(j))
          done
        done;
        !m +. 1e-12
  in
  (* per-column means/stds once, then pairwise correlation accumulation *)
  let n = Linalg.Mat.rows samples in
  let cols = Array.init n_loc (fun j -> Linalg.Mat.col samples j) in
  let means = Array.map Stats.Summary.mean cols in
  let stds =
    Array.mapi
      (fun j c ->
        let m = means.(j) in
        let acc = ref 0.0 in
        Array.iter (fun v -> acc := !acc +. ((v -. m) *. (v -. m))) c;
        sqrt (!acc /. float_of_int (n - 1)))
      cols
  in
  let sum = Array.make bins 0.0 in
  let counts = Array.make bins 0 in
  for i = 0 to n_loc - 1 do
    for j = i + 1 to n_loc - 1 do
      let v = Geometry.Point.dist locations.(i) locations.(j) in
      if v <= vmax && stds.(i) > 1e-12 && stds.(j) > 1e-12 then begin
        let b = min (bins - 1) (int_of_float (v /. vmax *. float_of_int bins)) in
        let acc = ref 0.0 in
        for s = 0 to n - 1 do
          acc := !acc +. ((cols.(i).(s) -. means.(i)) *. (cols.(j).(s) -. means.(j)))
        done;
        let corr = !acc /. (float_of_int (n - 1) *. stds.(i) *. stds.(j)) in
        sum.(b) <- sum.(b) +. corr;
        counts.(b) <- counts.(b) + 1
      end
    done
  done;
  let distances =
    Array.init bins (fun b -> (float_of_int b +. 0.5) *. vmax /. float_of_int bins)
  in
  let correlations =
    Array.init bins (fun b ->
        if counts.(b) = 0 then 0.0 else sum.(b) /. float_of_int counts.(b))
  in
  { distances; correlations; counts }

let fit_correlogram cg ~family ~lo ~hi =
  let sse c =
    let k = family c in
    let acc = ref 0.0 in
    Array.iteri
      (fun b v ->
        if cg.counts.(b) > 0 then begin
          let d = Kernel.eval_distance k v -. cg.correlations.(b) in
          acc := !acc +. (float_of_int cg.counts.(b) *. d *. d)
        end)
      cg.distances;
    !acc
  in
  let c = Fit.golden_section ~lo ~hi sse in
  { Fit.kernel = family c; sse = sse c }

type extraction = {
  kernel : Kernel.t;
  family_name : string;
  sse : float;
  valid : bool;
}

let default_families =
  [
    ("gaussian", (fun c -> Kernel.Gaussian { c }), 1e-2, 100.0);
    ("exponential", (fun c -> Kernel.Exponential { c }), 1e-2, 100.0);
    ("matern-s2", (fun b -> Kernel.Matern { b; s = 2.0 }), 0.05, 50.0);
    ("matern-s3", (fun b -> Kernel.Matern { b; s = 3.0 }), 0.05, 50.0);
    ("spherical", (fun rho -> Kernel.Spherical { rho }), 0.05, 10.0);
  ]

let extract ~locations ~samples ?(families = default_families) () =
  let cg = empirical_correlogram ~locations ~samples () in
  (* validity spot-check on (a subset of) the measurement locations *)
  let check_pts =
    if Array.length locations <= 80 then locations else Array.sub locations 0 80
  in
  families
  |> List.map (fun (family_name, family, lo, hi) ->
         let fit = fit_correlogram cg ~family ~lo ~hi in
         {
           kernel = fit.Fit.kernel;
           family_name;
           sse = fit.Fit.sse;
           valid = Validity.is_psd_on fit.Fit.kernel check_pts;
         })
  |> List.sort (fun a b -> Float.compare a.sse b.sse)
