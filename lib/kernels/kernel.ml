module Point = Geometry.Point

type point = Point.t

type t =
  | Gaussian of { c : float }
  | Exponential of { c : float }
  | Separable_exp_l1 of { c : float }
  | Radial_exponential of { c : float }
  | Matern of { b : float; s : float }
  | Linear_cone of { rho : float }
  | Spherical of { rho : float }
  | Anisotropic_gaussian of { cx : float; cy : float }
  | Faulty of { base : t; plan : Util.Fault.plan }

(* Matérn radial profile, eq. (6) of the paper:
   K(v) = 2 (bv/2)^{s-1} B_{s-1}(bv) / Γ(s-1), normalized so K(0) = 1.
   The v -> 0 limit is 1 because B_ν(x) ~ Γ(ν) 2^{ν-1} x^{-ν} as x -> 0. *)
let matern_profile ~b ~s v =
  let nu = s -. 1.0 in
  let x = b *. v in
  if x < 1e-8 then 1.0
  else begin
    let log_term =
      (nu *. log (x /. 2.0))
      +. log (Specfun.Bessel.k nu x)
      -. Specfun.Gamma.log_gamma nu
    in
    2.0 *. exp log_term
  end

let rec profile t v =
  match t with
  | Faulty { base; plan } -> Util.Fault.apply plan (profile base v)
  | Gaussian { c } -> exp (-.c *. v *. v)
  | Exponential { c } -> exp (-.c *. v)
  | Matern { b; s } -> matern_profile ~b ~s v
  | Linear_cone { rho } -> Float.max 0.0 (1.0 -. (v /. rho))
  | Spherical { rho } ->
      if v >= rho then 0.0
      else begin
        let q = v /. rho in
        1.0 -. (1.5 *. q) +. (0.5 *. q *. q *. q)
      end
  | Separable_exp_l1 _ | Radial_exponential _ | Anisotropic_gaussian _ ->
      invalid_arg "Kernel.profile: kernel is not isotropic"

let rec is_isotropic = function
  | Gaussian _ | Exponential _ | Matern _ | Linear_cone _ | Spherical _ -> true
  | Separable_exp_l1 _ | Radial_exponential _ | Anisotropic_gaussian _ -> false
  | Faulty { base; _ } -> is_isotropic base

let rec eval t x y =
  match t with
  | Faulty { base; plan } -> Util.Fault.apply plan (eval base x y)
  | Separable_exp_l1 { c } -> exp (-.c *. Point.dist_l1 x y)
  | Radial_exponential { c } ->
      exp (-.c *. Float.abs (Point.norm x -. Point.norm y))
  | Anisotropic_gaussian { cx; cy } ->
      let dx = x.Point.x -. y.Point.x and dy = x.Point.y -. y.Point.y in
      exp (-.((cx *. dx *. dx) +. (cy *. dy *. dy)))
  | _ -> profile t (Point.dist x y)

let eval_distance t v =
  if v < 0.0 then invalid_arg "Kernel.eval_distance: negative distance";
  profile t v

let rec name = function
  | Faulty { base; _ } -> Printf.sprintf "faulty(%s)" (name base)
  | Gaussian { c } -> Printf.sprintf "gaussian(c=%g)" c
  | Exponential { c } -> Printf.sprintf "exponential(c=%g)" c
  | Separable_exp_l1 { c } -> Printf.sprintf "separable-exp-L1(c=%g)" c
  | Radial_exponential { c } -> Printf.sprintf "radial-exp(c=%g)" c
  | Matern { b; s } -> Printf.sprintf "matern(b=%g, s=%g)" b s
  | Linear_cone { rho } -> Printf.sprintf "linear-cone(rho=%g)" rho
  | Spherical { rho } -> Printf.sprintf "spherical(rho=%g)" rho
  | Anisotropic_gaussian { cx; cy } ->
      Printf.sprintf "anisotropic-gaussian(cx=%g, cy=%g)" cx cy

let rec validate = function
  | Faulty { base; _ } -> validate base
  | Gaussian { c } | Exponential { c } | Separable_exp_l1 { c }
  | Radial_exponential { c } ->
      if c > 0.0 then Ok () else Error "decay rate c must be positive"
  | Matern { b; s } ->
      if b <= 0.0 then Error "Matern scale b must be positive"
      else if s <= 1.0 then Error "Matern shape s must exceed 1"
      else Ok ()
  | Linear_cone { rho } | Spherical { rho } ->
      if rho > 0.0 then Ok () else Error "correlation distance rho must be positive"
  | Anisotropic_gaussian { cx; cy } ->
      if cx > 0.0 && cy > 0.0 then Ok ()
      else Error "anisotropic decay rates must both be positive"

type profile_table = {
  vmax : float;
  inv_step : float;
  values : float array;
  max_error : float;
}

let profile_table_max_error tbl = tbl.max_error

let profile_eval tbl v =
  let n = Array.length tbl.values in
  if v <= 0.0 then Array.unsafe_get tbl.values 0
  else if v >= tbl.vmax then Array.unsafe_get tbl.values (n - 1)
  else begin
    let f = v *. tbl.inv_step in
    let i = int_of_float f in
    let i = if i >= n - 1 then n - 2 else i in
    let t = f -. float_of_int i in
    let v0 = Array.unsafe_get tbl.values i in
    v0 +. (t *. (Array.unsafe_get tbl.values (i + 1) -. v0))
  end

(* Fault decorators must stay on the exact path: tabulating would freeze the
   plan's counter at build time and the injected faults would never reach the
   consumers the plan targets. Only the top constructor can be [Faulty]. *)
let has_fault = function Faulty _ -> true | _ -> false

let radial_profile ?(points = 1 lsl 17) ?(tol = 1e-9) ?diag t ~vmax =
  if points < 2 then invalid_arg "Kernel.radial_profile: need >= 2 points";
  if not (vmax > 0.0) then
    invalid_arg "Kernel.radial_profile: vmax must be positive";
  if (not (is_isotropic t)) || has_fault t then None
  else begin
    Util.Trace.with_span
      ~attrs:[ ("kernel", name t); ("points", string_of_int points) ]
      "kernel.radial_profile"
    @@ fun () ->
    let step = vmax /. float_of_int (points - 1) in
    let values = Array.init points (fun i -> profile t (float_of_int i *. step)) in
    Util.Trace.add Util.Trace.kernel_evals points;
    if not (Array.for_all Float.is_finite values) then begin
      Util.Diag.record ?sink:diag Warning `Non_finite
        ~stage:"kernel.radial_profile"
        (Printf.sprintf "non-finite table entry for %s; exact evaluation retained"
           (name t));
      None
    end
    else begin
      let tbl = { vmax; inv_step = 1.0 /. step; values; max_error = 0.0 } in
      (* Guard: measure the interpolation error at uniformly strided interval
         midpoints, plus the midpoints of the intervals with the largest
         second differences — [h² f''/8] is the lerp error bound, so those are
         where a kink (Linear_cone, Spherical at rho) or a sharp profile
         actually bites, and a uniform stride alone would miss the one bad
         interval out of 2^17. *)
      let err = ref 0.0 in
      let probe v =
        Util.Trace.incr Util.Trace.kernel_evals;
        let d = Float.abs (profile_eval tbl v -. profile t v) in
        if d > !err then err := d
      in
      let uniform_probes = 4096 in
      for i = 0 to uniform_probes - 1 do
        probe ((float_of_int i +. 0.5) /. float_of_int uniform_probes *. vmax)
      done;
      let d2 = Array.make points 0.0 in
      for i = 1 to points - 2 do
        d2.(i) <-
          Float.abs (values.(i - 1) -. (2.0 *. values.(i)) +. values.(i + 1))
      done;
      let order = Array.init points (fun i -> i) in
      Array.sort (fun a b -> Float.compare d2.(b) d2.(a)) order;
      for r = 0 to min 63 (points - 1) do
        let i = order.(r) in
        if d2.(i) > 0.0 then begin
          if i > 0 then probe ((float_of_int i -. 0.5) *. step);
          if i < points - 1 then probe ((float_of_int i +. 0.5) *. step)
        end
      done;
      if !err > tol then begin
        Util.Diag.record ?sink:diag Warning `Degraded_fallback
          ~stage:"kernel.radial_profile"
          (Printf.sprintf
             "measured interpolation error %.3g exceeds tol %.3g for %s; \
              exact evaluation retained"
             !err tol (name t));
        None
      end
      else Some { tbl with max_error = !err }
    end
  end
