(** Spatial correlation kernels (covariance kernels) for normalized
    intra-die parameter variation.

    A kernel [K(x, y)] returns the correlation between parameter values at
    die locations [x] and [y]; all families here are normalized so that
    [K(x, x) = 1]. Families follow the paper's Section 3:

    - {e Gaussian} [exp(-c v²)] — the kernel of the paper's experiments
      (Fig. 1a), best fit to the measurement-backed linear correlogram;
    - {e Exponential} [exp(-c v)] — the [Liu, DAC'07]-style correlogram;
    - {e Separable L1 exponential} [exp(-c (|dx| + |dy|))] — eq. (5), the
      only 2-D family with a fully analytic KLE (used for validation);
    - {e Radial exponential} [exp(-c | ‖x‖ - ‖y‖ |)] — the physically
      unrealistic kernel of [Bhardwaj, ICCAD'06] that the paper criticizes
      (all points on an origin-centric circle perfectly correlated);
    - {e Matérn} — eq. (6), the family [Xiong, TCAD'07] extracts from
      silicon, built on the modified Bessel function K_ν;
    - {e Linear cone} [max(0, 1 - v/ρ)] — the measurement fit of
      [Friedberg, ISQED'05], the fit target of Fig. 3(a); only conditionally
      valid, used as data, not as a model;
    - {e Spherical} — the classical geostatistics kernel, a valid
      cone-like alternative. *)

type point = Geometry.Point.t

type t =
  | Gaussian of { c : float }
  | Exponential of { c : float }
  | Separable_exp_l1 of { c : float }
  | Radial_exponential of { c : float }
  | Matern of { b : float; s : float }
  | Linear_cone of { rho : float }
  | Spherical of { rho : float }
  | Anisotropic_gaussian of { cx : float; cy : float }
      (** [exp(-(cx dx² + cy dy²))]: different correlation lengths along the
          die axes (e.g. scan-direction lithography signatures). Valid
          (product of 1-D Gaussian kernels), but not isotropic. *)
  | Faulty of { base : t; plan : Util.Fault.plan }
      (** Fault-injection decorator: evaluates [base] and corrupts the
          counter-selected evaluations per [plan] ({!Util.Fault}). Test-only
          — lets the robustness suite drive the non-finite guards and PSD
          fallback chains deterministically. [validate]/[is_isotropic]
          delegate to [base]. *)

val eval : t -> point -> point -> float
(** [eval k x y] is K(x, y). *)

val eval_distance : t -> float -> float
(** [eval_distance k v] for isotropic kernels evaluates the radial profile
    K(v) at separation [v >= 0]. Raises [Invalid_argument] for the
    non-isotropic [Separable_exp_l1] and [Radial_exponential] families and
    for negative [v]. *)

val is_isotropic : t -> bool

val name : t -> string
(** Short human-readable description for tables and logs. *)

val validate : t -> (unit, string) result
(** Static parameter validation (positive decay rates, Matérn [s > 1], …). *)

(** {2 Radial profile tables}

    Isotropy means [K(x, y)] depends only on [v = ‖x - y‖], so an n²-entry
    correlation operator can be driven from a 1-D table of K(v) over
    [[0, vmax]] — each entry becomes one linear interpolation instead of an
    [exp]/Bessel/[Γ] evaluation. This is what makes the matrix-free Galerkin
    apply cheap ({!Kle.Operator}). *)

type profile_table
(** A uniformly spaced tabulation of an isotropic kernel's radial profile,
    with the interpolation error measured at build time. *)

val radial_profile :
  ?points:int ->
  ?tol:float ->
  ?diag:Util.Diag.sink ->
  t ->
  vmax:float ->
  profile_table option
(** [radial_profile k ~vmax] tabulates K(v) at [points] (default [2^17])
    uniform nodes on [[0, vmax]] and measures the max absolute linear
    interpolation error against exact evaluation — at uniformly strided
    probe points and at the midpoints of the intervals with the largest
    second differences, so a single kinked interval (e.g. [Linear_cone] at
    [rho]) cannot slip past the guard.

    Returns [None] — callers must then evaluate exactly — when the kernel is
    not isotropic, when it is a [Faulty] decorator (tabulation would bypass
    the fault plan), when a table entry is non-finite, or when the measured
    error exceeds [tol] (default 1e-9). The two failure modes record a
    [`Non_finite] / [`Degraded_fallback] warning on [diag]. Raises
    [Invalid_argument] when [points < 2] or [vmax <= 0]. *)

val profile_eval : profile_table -> float -> float
(** Linear interpolation of the tabulated profile; [v] is clamped to
    [[0, vmax]]. *)

val profile_table_max_error : profile_table -> float
(** The interpolation error measured by the build-time guard. *)
