let gram ?jobs k pts =
  let n = Array.length pts in
  Util.Trace.with_span ~attrs:[ ("n", string_of_int n) ] "validity.gram"
  @@ fun () ->
  (* every (i, j >= i) pair is evaluated exactly once *)
  Util.Trace.add Util.Trace.kernel_evals (n * (n + 1) / 2);
  let m = Linalg.Mat.create n n in
  (* same upper-triangle row decomposition as Kle.Galerkin.assemble: each
     row owns its (i, j >= i) pairs, so the fan-out is race-free and
     bit-identical for any domain count *)
  Util.Pool.with_jobs ?jobs (fun pool ->
      Util.Pool.parallel_for pool ~chunk:8 ~n (fun lo hi ->
          for i = lo to hi - 1 do
            for j = i to n - 1 do
              let v = Kernel.eval k pts.(i) pts.(j) in
              Linalg.Mat.unsafe_set m i j v;
              Linalg.Mat.unsafe_set m j i v
            done
          done));
  m

let min_eigenvalue k pts =
  let vals = Linalg.Sym_eig.eig_values (gram k pts) in
  vals.(Array.length vals - 1)

let is_psd_on ?(tol = 1e-10) k pts =
  min_eigenvalue k pts >= -.tol *. float_of_int (Array.length pts)

(* Kronecker-style additive lattice: x_i = frac(i * phi1), y_i = frac(i * phi2)
   with irrational multipliers, shifted by the seed. *)
let random_points ~seed ~n rect =
  let phi1 = 0.7548776662466927 and phi2 = 0.5698402909980532 in
  let offset = float_of_int (seed land 0xFFFF) *. 0.61803398874989 in
  Array.init n (fun i ->
      let t = float_of_int (i + 1) in
      let fx = Float.rem ((t *. phi1) +. offset) 1.0 in
      let fy = Float.rem ((t *. phi2) +. (offset *. 1.3)) 1.0 in
      Geometry.Point.make
        (rect.Geometry.Rect.xmin +. (fx *. Geometry.Rect.width rect))
        (rect.Geometry.Rect.ymin +. (fy *. Geometry.Rect.height rect)))
