(** Empirical validity checks for covariance kernels.

    A valid kernel must be non-negative definite (paper eq. (2)): every Gram
    matrix sampled from it must be positive semi-definite. These helpers
    build Gram matrices on point sets and check their spectra; the test
    suite uses them to confirm e.g. that the Gaussian family is valid while
    the isotropic linear cone in 2-D is not guaranteed to be. *)

val gram : ?jobs:int -> Kernel.t -> Geometry.Point.t array -> Linalg.Mat.t
(** [gram k pts] is the matrix [K(pts_i, pts_j)]. The O(n²) kernel
    evaluations fan out over [jobs] domains ({!Util.Pool.with_jobs}
    semantics); the matrix is bit-identical for every [jobs]. *)

val min_eigenvalue : Kernel.t -> Geometry.Point.t array -> float
(** Smallest eigenvalue of the Gram matrix on the given points. *)

val is_psd_on : ?tol:float -> Kernel.t -> Geometry.Point.t array -> bool
(** [is_psd_on k pts] checks [min_eigenvalue >= -tol * n] (default
    [tol = 1e-10], scaled by the matrix dimension). *)

val random_points : seed:int -> n:int -> Geometry.Rect.t -> Geometry.Point.t array
(** Deterministic quasi-random point set for validity spot checks (additive
    low-discrepancy lattice, no dependency on the [Prng] library). *)
