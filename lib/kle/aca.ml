module Mat = Linalg.Mat
module Lowrank = Linalg.Lowrank

(* Adaptive cross approximation with partial pivoting: build a rank-k
   factorization u·vᵀ of an m×n block from O(k(m+n)) entry evaluations,
   never touching the full block. Works because admissible far-field
   blocks of a smooth kernel have exponentially decaying singular values.

   Each step evaluates one residual row, picks the column of its largest
   entry as pivot, evaluates that residual column, and appends the
   rank-one cross. The stopping rule is the standard one: stop when the
   newest term is small relative to the running approximation,
   ‖u_k‖·‖v_k‖ ≤ tol·‖Σ u_c v_cᵀ‖_F, with the Frobenius norm maintained
   incrementally (Lowrank.cross_norm2_increment). Deterministic: pivots
   are argmax scans with fixed tie-breaks, no randomness. *)

type result = {
  u : Mat.t;  (* m × rank *)
  v : Mat.t;  (* n × rank *)
  rank : int;
  evals : int;  (* entry evaluations spent *)
}

(* below this magnitude a pivot is numerical zero: the row/column carries
   no usable information (e.g. a Gaussian kernel block many correlation
   lengths away underflows) *)
let zero_pivot = 1e-150

(* consecutive numerically-zero pivot rows before the residual is
   declared zero *)
let zero_row_streak = 3

let approximate ~entry ~m ~n ~tol ~max_rank =
  if m <= 0 || n <= 0 then invalid_arg "Aca.approximate: empty block";
  if tol <= 0.0 then invalid_arg "Aca.approximate: tol must be positive";
  let us = ref [] and vs = ref [] in
  (* oldest first *)
  let rank = ref 0 in
  let evals = ref 0 in
  let norm2 = ref 0.0 in
  let row_used = Array.make m false in
  let residual_row i =
    evals := !evals + n;
    let r = Array.init n (fun j -> entry i j) in
    List.iter2
      (fun u v ->
        let ui = Array.unsafe_get u i in
        if ui <> 0.0 then
          for j = 0 to n - 1 do
            Array.unsafe_set r j
              (Array.unsafe_get r j -. (ui *. Array.unsafe_get v j))
          done)
      !us !vs;
    r
  in
  let residual_col j =
    evals := !evals + m;
    let c = Array.init m (fun i -> entry i j) in
    List.iter2
      (fun u v ->
        let vj = Array.unsafe_get v j in
        if vj <> 0.0 then
          for i = 0 to m - 1 do
            Array.unsafe_set c i
              (Array.unsafe_get c i -. (vj *. Array.unsafe_get u i))
          done)
      !us !vs;
    c
  in
  let argmax_abs a =
    let best = ref 0 and best_v = ref (Float.abs a.(0)) in
    for i = 1 to Array.length a - 1 do
      let v = Float.abs a.(i) in
      if v > !best_v then begin
        best := i;
        best_v := v
      end
    done;
    (!best, !best_v)
  in
  let first_unused_row () =
    let rec find i = if i >= m then None else if row_used.(i) then find (i + 1) else Some i in
    find 0
  in
  let finish () =
    Some
      {
        u = Lowrank.of_columns ~rows:m (List.rev !us);
        v = Lowrank.of_columns ~rows:n (List.rev !vs);
        rank = !rank;
        evals = !evals;
      }
  in
  let rec step pivot_row zero_streak =
    match pivot_row with
    | None -> finish () (* all m rows crossed: the block is represented exactly *)
    | Some i ->
        row_used.(i) <- true;
        let r = residual_row i in
        let j, rj_abs = argmax_abs r in
        if rj_abs <= zero_pivot then
          (* numerically zero residual row: after a few in a row, accept
             the current approximation (an all-but-vanished block) *)
          if zero_streak + 1 >= zero_row_streak then finish ()
          else step (first_unused_row ()) (zero_streak + 1)
        else begin
          let v = Array.map (fun x -> x /. r.(j)) r in
          let u = residual_col j in
          norm2 := !norm2 +. Lowrank.cross_norm2_increment ~us:!us ~vs:!vs ~u ~v;
          us := !us @ [ u ];
          vs := !vs @ [ v ];
          incr rank;
          let term = sqrt (Lowrank.norm2 u *. Lowrank.norm2 v) in
          if term <= tol *. sqrt (Float.max !norm2 0.0) then finish ()
          else if !rank >= max_rank then None (* stalled: caller falls back *)
          else begin
            (* next pivot row: largest remaining entry of the new column,
               over rows not yet crossed *)
            let next = ref None and next_v = ref (-1.0) in
            for ii = 0 to m - 1 do
              if not row_used.(ii) then begin
                let a = Float.abs u.(ii) in
                if a > !next_v then begin
                  next := Some ii;
                  next_v := a
                end
              end
            done;
            let next = match !next with Some _ as s -> s | None -> first_unused_row () in
            step next 0
          end
        end
  in
  if max_rank < 1 then None else step (Some 0) 0
