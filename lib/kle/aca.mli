(** Adaptive cross approximation (ACA) with partial pivoting.

    Factors an m×n block [A] as [u·vᵀ] (rank k) from O(k(m+n)) entry
    evaluations — the block is never materialised. Intended for
    {!Cluster.admissible} far-field blocks of a smooth correlation kernel,
    whose singular values decay exponentially; on such blocks the
    heuristic stopping rule [‖u_k‖·‖v_k‖ ≤ tol·‖A_k‖_F] tracks the true
    relative Frobenius error closely.

    Fully deterministic: pivots are argmax scans with fixed tie-breaks. *)

type result = {
  u : Linalg.Mat.t;  (** m × rank *)
  v : Linalg.Mat.t;  (** n × rank *)
  rank : int;
  evals : int;  (** entry evaluations spent building the factors *)
}

val approximate :
  entry:(int -> int -> float) ->
  m:int ->
  n:int ->
  tol:float ->
  max_rank:int ->
  result option
(** [approximate ~entry ~m ~n ~tol ~max_rank] cross-approximates the block
    [entry i j] (local indices, [0 ≤ i < m], [0 ≤ j < n]) to relative
    tolerance [tol]. Returns [None] when the rank hits [max_rank] without
    meeting the tolerance — the caller is expected to fall back to a dense
    evaluation path (see {!Operator.galerkin}). A numerically vanished
    block (all probed pivots below 1e-150) converges at its current rank,
    possibly 0. Raises [Invalid_argument] on an empty block or
    non-positive [tol]. *)
