module Point = Geometry.Point

(* Binary cluster tree over a point set (triangle centroids), built by
   median-split bisection along the longer bounding-box axis. Nodes own
   contiguous ranges [lo, hi) of [perm]; [perm.(p)] is the original point
   index stored at permuted position [p]. The split sorts each subrange by
   the chosen coordinate with the point index as tie-break, so the tree —
   and everything derived from it — is fully deterministic. *)

type node = {
  lo : int;
  hi : int;
  xmin : float;
  xmax : float;
  ymin : float;
  ymax : float;
  left : int;  (* node index, -1 for a leaf *)
  right : int;
}

type t = {
  perm : int array;
  nodes : node array;
  root : int;
  leaf_size : int;
  depth : int;
}

let default_leaf_size = 48

let is_leaf node = node.left < 0

let size node = node.hi - node.lo

let diameter node =
  Float.hypot (node.xmax -. node.xmin) (node.ymax -. node.ymin)

(* Euclidean distance between the two bounding boxes (0 when they touch
   or overlap) *)
let distance a b =
  let gap lo1 hi1 lo2 hi2 = Float.max 0.0 (Float.max (lo2 -. hi1) (lo1 -. hi2)) in
  let dx = gap a.xmin a.xmax b.xmin b.xmax in
  let dy = gap a.ymin a.ymax b.ymin b.ymax in
  Float.hypot dx dy

(* Standard η-admissibility: the smaller cluster is far enough away that
   the kernel restricted to the block a×b is numerically smooth, hence
   low-rank. Boxes at distance 0 (touching or overlapping) never pass. *)
let admissible ~eta a b =
  let d = distance a b in
  d > 0.0 && Float.min (diameter a) (diameter b) <= eta *. d

let build ?(leaf_size = default_leaf_size) (points : Point.t array) =
  if leaf_size < 1 then invalid_arg "Cluster.build: leaf_size < 1";
  let n = Array.length points in
  if n = 0 then invalid_arg "Cluster.build: empty point set";
  let perm = Array.init n Fun.id in
  let nodes = ref [] in
  let n_nodes = ref 0 in
  let depth = ref 0 in
  let push node =
    nodes := node :: !nodes;
    incr n_nodes;
    !n_nodes - 1
  in
  let bbox lo hi =
    let p0 = points.(perm.(lo)) in
    let xmin = ref p0.Point.x and xmax = ref p0.Point.x in
    let ymin = ref p0.Point.y and ymax = ref p0.Point.y in
    for p = lo + 1 to hi - 1 do
      let pt = points.(perm.(p)) in
      if pt.Point.x < !xmin then xmin := pt.Point.x;
      if pt.Point.x > !xmax then xmax := pt.Point.x;
      if pt.Point.y < !ymin then ymin := pt.Point.y;
      if pt.Point.y > !ymax then ymax := pt.Point.y
    done;
    (!xmin, !xmax, !ymin, !ymax)
  in
  let rec split lo hi level =
    if level > !depth then depth := level;
    let xmin, xmax, ymin, ymax = bbox lo hi in
    if hi - lo <= leaf_size then
      push { lo; hi; xmin; xmax; ymin; ymax; left = -1; right = -1 }
    else begin
      let coord =
        if xmax -. xmin >= ymax -. ymin then fun (p : Point.t) -> p.Point.x
        else fun p -> p.Point.y
      in
      let sub = Array.sub perm lo (hi - lo) in
      Array.sort
        (fun i k ->
          let c = Float.compare (coord points.(i)) (coord points.(k)) in
          if c <> 0 then c else Int.compare i k)
        sub;
      Array.blit sub 0 perm lo (hi - lo);
      let mid = lo + ((hi - lo) / 2) in
      let left = split lo mid (level + 1) in
      let right = split mid hi (level + 1) in
      push { lo; hi; xmin; xmax; ymin; ymax; left; right }
    end
  in
  let root = split 0 n 0 in
  {
    perm;
    nodes = Array.of_list (List.rev !nodes);
    root;
    leaf_size;
    depth = !depth;
  }

let node t i = t.nodes.(i)
let root t = t.nodes.(t.root)
let root_index t = t.root
let n_nodes t = Array.length t.nodes
let depth t = t.depth
let perm t = t.perm
