(** Binary cluster tree over triangle centroids — the geometric half of the
    hierarchical (H-matrix) operator.

    Built by median-split bisection: each node's point range is sorted
    along the longer axis of its bounding box (point index as tie-break,
    so the tree is deterministic) and cut at the median, until ranges
    shrink to [leaf_size]. Nodes own contiguous ranges [\[lo, hi)] of the
    permutation [perm]; the far-field/near-field partition of
    {!Kle.Hmatrix} is built from pairs of nodes via {!admissible}. *)

type node = private {
  lo : int;  (** start of the owned range in {!perm} *)
  hi : int;  (** one past the end of the owned range *)
  xmin : float;
  xmax : float;
  ymin : float;
  ymax : float;  (** axis-aligned bounding box of the owned points *)
  left : int;  (** index of the left child node, [-1] for a leaf *)
  right : int;
}

type t

val default_leaf_size : int
(** 48 points: dense leaf blocks stay L1-resident while the tree stays
    shallow. *)

val build : ?leaf_size:int -> Geometry.Point.t array -> t
(** Raises [Invalid_argument] on an empty point set or [leaf_size < 1].
    O(n log² n) from the per-level sorts. *)

val is_leaf : node -> bool
val size : node -> int
val diameter : node -> float
(** Diagonal of the bounding box. *)

val distance : node -> node -> float
(** Euclidean distance between bounding boxes; 0 when they touch or
    overlap. *)

val admissible : eta:float -> node -> node -> bool
(** [min(diam a, diam b) <= eta·dist(a, b)] with [dist > 0] — the block
    [a×b] of a smooth kernel is then uniformly low-rank. Larger [eta]
    admits closer (harder) blocks: more compression, higher ranks. *)

val node : t -> int -> node
val root : t -> node
val root_index : t -> int
val n_nodes : t -> int
val depth : t -> int
val perm : t -> int array
(** [perm.(p)] is the original point index at permuted position [p]. *)
