module Mesh = Geometry.Mesh
module Kernel = Kernels.Kernel

type quadrature = Operator.quadrature = Centroid | Midedge

type solver = Dense | Lanczos of { count : int }

type mode = Auto | Assembled | Matrix_free | Hierarchical

type solution = {
  mesh : Mesh.t;
  kernel : Kernel.t;
  quadrature : quadrature;
  eigenvalues : float array;
  coefficients : Linalg.Mat.t;
}

let assemble ?(quadrature = Centroid) ?jobs mesh kernel =
  let n = Mesh.size mesh in
  Util.Trace.with_span
    ~attrs:
      [
        ("n", string_of_int n);
        ( "quadrature",
          match quadrature with Centroid -> "centroid" | Midedge -> "midedge"
        );
      ]
    "galerkin.assemble"
  @@ fun () ->
  (* n(n+1)/2 element pairs, 1 (centroid) or 9 (midedge) kernel
     evaluations each — counted in bulk so the total is jobs-independent *)
  Util.Trace.add Util.Trace.kernel_evals
    (n * (n + 1) / 2 * (match quadrature with Centroid -> 1 | Midedge -> 9));
  let mean = Operator.mean_kernel_value quadrature mesh kernel in
  let sqrt_area = Array.map sqrt mesh.Mesh.areas in
  let c = Linalg.Mat.create n n in
  (* upper-triangle rows fan out over the pool: pair (i, k) with i <= k is
     owned by row i alone, and it writes the two distinct cells (i, k) and
     (k, i) — so any row partition gives a race-free, bit-identical matrix.
     Small chunks keep the shrinking rows load-balanced. *)
  Util.Pool.with_jobs ?jobs (fun pool ->
      Util.Pool.parallel_for pool ~chunk:8 ~n (fun lo hi ->
          for i = lo to hi - 1 do
            for k = i to n - 1 do
              let v = mean i k *. sqrt_area.(i) *. sqrt_area.(k) in
              Linalg.Mat.unsafe_set c i k v;
              Linalg.Mat.unsafe_set c k i v
            done
          done));
  c

let trace mesh kernel =
  let n = Mesh.size mesh in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc :=
      !acc
      +. (Kernel.eval kernel mesh.Mesh.centroids.(i) mesh.Mesh.centroids.(i)
         *. mesh.Mesh.areas.(i))
  done;
  !acc

let default_solver n = if n <= 600 then Dense else Lanczos { count = min n 200 }

(* Auto switches to matrix-free at the same size at which [default_solver]
   switches to Lanczos: below it the dense QL solver needs the assembled
   matrix anyway, above it the O(n²) assembly is the avoidable cost. *)
let matrix_free_threshold = 600

(* PSD validity check + eigenvector rescale shared by every solve path.
   [raw_vectors_cols j] must return the j-th unit-norm eigenvector of C. *)
let finalize ?diag mesh kernel quadrature raw_values raw_vectors_cols =
  let n = Mesh.size mesh in
  let k = Array.length raw_values in
  (* validity check: a correct kernel's Galerkin matrix is PSD up to
     rounding. Tolerate only tiny negative values. *)
  let scale = Float.max 1e-300 (Float.abs raw_values.(0)) in
  Array.iter
    (fun v ->
      if v < -1e-8 *. scale *. float_of_int n then
        Util.Diag.fail ?sink:diag `Not_psd ~stage:"galerkin.solve"
          (Printf.sprintf
             "kernel %s is not non-negative definite on this mesh (eigenvalue \
              %g)"
             (Kernel.name kernel) v))
    raw_values;
  let eigenvalues = Array.map (fun v -> Float.max 0.0 v) raw_values in
  (* rescale: d = Φ^{-1/2} c-vector; then normalize to Σ d_i² a_i = 1 so the
     eigenfunctions are orthonormal in L²(D). With unit-norm c-vectors the
     rescale already achieves this, but normalizing explicitly protects
     against solver-dependent vector scaling. *)
  let inv_sqrt_area = Array.map (fun a -> 1.0 /. sqrt a) mesh.Mesh.areas in
  let coefficients = Linalg.Mat.create n k in
  for j = 0 to k - 1 do
    let cvec = raw_vectors_cols j in
    let d = Array.mapi (fun i ci -> ci *. inv_sqrt_area.(i)) cvec in
    let norm2 = ref 0.0 in
    for i = 0 to n - 1 do
      norm2 := !norm2 +. (d.(i) *. d.(i) *. mesh.Mesh.areas.(i))
    done;
    let s = 1.0 /. sqrt (Float.max !norm2 1e-300) in
    for i = 0 to n - 1 do
      Linalg.Mat.unsafe_set coefficients i j (s *. d.(i))
    done
  done;
  { mesh; kernel; quadrature; eigenvalues; coefficients }

(* [keep] truncates the dense QL spectrum (used when Dense is a fallback for
   a Lanczos request that only wanted the leading [count] pairs) *)
let solve_assembled ~quadrature ~solver ?keep ?lanczos_max_dim ?diag ?jobs mesh
    kernel =
  let n = Mesh.size mesh in
  let c = assemble ~quadrature ?jobs mesh kernel in
  (* stage guard: a NaN/inf anywhere in the Galerkin matrix would silently
     poison the whole eigensolve — fail here with a typed diagnostic naming
     the kernel and the offending element pair instead *)
  (match Linalg.Mat.find_non_finite c with
  | Some (i, k) ->
      Util.Diag.fail ?sink:diag `Non_finite ~stage:"galerkin.assemble"
        (Printf.sprintf
           "kernel %s produced a non-finite Galerkin entry for element pair \
            (%d, %d)"
           (Kernel.name kernel) i k)
  | None -> ());
  let dense_cols count =
    let vals, q = Linalg.Sym_eig.eig c in
    (Array.sub vals 0 count, fun j -> Linalg.Mat.col q j)
  in
  let raw_values, raw_vectors_cols =
    match solver with
    | Dense -> dense_cols (match keep with Some k -> min k n | None -> n)
    | Lanczos { count } -> (
        match
          Linalg.Lanczos.top_k_op ~op:(Linalg.Operator.of_mat c) ~k:count
            ?max_dim:lanczos_max_dim ()
        with
        | r -> (r.eigenvalues, fun j -> r.eigenvectors.(j))
        | exception Linalg.Lanczos.No_convergence { converged; wanted } ->
            Util.Diag.record ?sink:diag Warning `No_convergence
              ~stage:"galerkin.solve"
              (Printf.sprintf "Lanczos converged %d of %d pairs for kernel %s"
                 converged wanted (Kernel.name kernel));
            Util.Diag.record ?sink:diag Warning `Degraded_fallback
              ~stage:"galerkin.solve"
              (Printf.sprintf
                 "falling back to the dense QL eigensolver for the leading %d \
                  pairs (n = %d)"
                 count n);
            dense_cols count)
  in
  finalize ?diag mesh kernel quadrature raw_values raw_vectors_cols

(* Lanczos over an already-built matrix-free operator, with the standard
   No_convergence fallback to assembly + dense QL. Public so callers that
   build (or load from a {!Persist.Store}) the operator themselves — the
   analysis server caching hierarchical factors — reuse the exact solve
   path of {!solve}. *)
let solve_with_operator ?(quadrature = Centroid) ~solver ?lanczos_max_dim ?diag
    ?jobs ~op mesh kernel =
  let n = Mesh.size mesh in
  let count =
    match solver with
    | Lanczos { count } -> count
    | Dense ->
        invalid_arg
          "Galerkin.solve_with_operator: requires the Lanczos solver (the \
           dense QL solver factorizes the assembled matrix)"
  in
  match Linalg.Lanczos.top_k_op ~op ~k:count ?max_dim:lanczos_max_dim () with
  | r ->
      finalize ?diag mesh kernel quadrature r.eigenvalues (fun j ->
          r.eigenvectors.(j))
  | exception Linalg.Lanczos.No_convergence { converged; wanted } ->
      Util.Diag.record ?sink:diag Warning `No_convergence
        ~stage:"galerkin.solve"
        (Printf.sprintf
           "matrix-free Lanczos converged %d of %d pairs for kernel %s"
           converged wanted (Kernel.name kernel));
      Util.Diag.record ?sink:diag Warning `Degraded_fallback
        ~stage:"galerkin.solve"
        (Printf.sprintf
           "falling back to assembly and the dense QL eigensolver for the \
            leading %d pairs (n = %d)"
           count n);
      solve_assembled ~quadrature ~solver:(Dense : solver) ~keep:count
        ?lanczos_max_dim ?diag ?jobs mesh kernel

let solve ?(quadrature = Centroid) ?(mode = Auto) ?solver ?hier
    ?lanczos_max_dim ?diag ?jobs mesh kernel =
  let n = Mesh.size mesh in
  let solver = match solver with Some s -> s | None -> default_solver n in
  Util.Trace.with_span
    ~attrs:
      [
        ("n", string_of_int n);
        ("solver", match solver with Dense -> "dense" | Lanczos _ -> "lanczos");
      ]
    "galerkin.solve"
  @@ fun () ->
  (match solver with
  | Lanczos { count } when count <= 0 || count > n ->
      invalid_arg "Galerkin.solve: Lanczos count out of range"
  | _ -> ());
  let mode =
    match (mode, solver) with
    | Auto, Lanczos _ when n > matrix_free_threshold -> Matrix_free
    | Auto, _ -> Assembled
    | (Matrix_free | Hierarchical), Dense ->
        invalid_arg
          "Galerkin.solve: matrix-free modes require the Lanczos solver \
           (the dense QL solver factorizes the assembled matrix)"
    | (Assembled | Matrix_free | Hierarchical), _ -> mode
  in
  match mode with
  | Auto | Assembled ->
      solve_assembled ~quadrature ~solver ?lanczos_max_dim ?diag ?jobs mesh
        kernel
  | Matrix_free | Hierarchical ->
      let op_mode =
        match mode with
        | Hierarchical -> Operator.Hierarchical
        | _ -> Operator.Table
      in
      let op =
        Operator.galerkin ~quadrature ~mode:op_mode ?hier ?diag ?jobs mesh
          kernel
      in
      solve_with_operator ~quadrature ~solver ?lanczos_max_dim ?diag ?jobs ~op
        mesh kernel

let eigenvalue_sum_bound solution = Util.Arrayx.sum solution.eigenvalues
