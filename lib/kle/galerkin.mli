(** The paper's core numerical method (Sections 3.2 and 4): Galerkin
    projection of the Fredholm eigenproblem
    [∫_D K(x,y) f(y) dy = λ f(x)]
    onto piecewise-constant basis functions over a triangulation, with
    centroid-rule (or mid-edge degree-2) quadrature, reduced to a standard
    symmetric eigenvalue problem.

    With the orthogonal piecewise-constant basis, [Φ = diag(a_i)] and
    [K_ik ≈ K(c_i, c_k) a_i a_k] (eq. 21). Instead of the non-symmetric
    [Φ⁻¹K] of eq. (15) we solve the similar {e symmetric} problem
    [C = Φ^{-1/2} K Φ^{-1/2}], i.e. [C_ik = K(c_i,c_k) √(a_i a_k)], and
    rescale eigenvectors by [Φ^{-1/2}] — the same eigenvalues, better
    numerics. Eigenvectors are normalized so the corresponding
    eigen{e functions} are orthonormal in L²(D): [Σ_i d_i² a_i = 1]. *)

type quadrature = Operator.quadrature =
  | Centroid  (** paper eq. (21): one-point rule, degree-1 exact *)
  | Midedge  (** three mid-edge points per triangle, degree-2 exact — the
                 "higher order" extension the paper mentions in Sec. 4.2 *)

type solver =
  | Dense  (** full tred2/tql2 decomposition: all [n] eigenpairs *)
  | Lanczos of { count : int }
      (** leading [count] eigenpairs by Lanczos iteration (the paper computes
          "only the first 200") *)

type mode =
  | Auto
      (** matrix-free when the solver is Lanczos and
          [n > matrix_free_threshold], assembled otherwise *)
  | Assembled  (** materialize the n×n Galerkin matrix, then eigensolve *)
  | Matrix_free
      (** never materialize the matrix: Lanczos over {!Operator.galerkin}
          (requires a Lanczos solver) *)
  | Hierarchical
      (** Lanczos over the O(n log n) H-matrix apply
          ({!Operator.galerkin} with [mode = Hierarchical]: cluster tree +
          ACA far field, {!Hmatrix}); requires a Lanczos solver.
          Eigenvalues carry a controlled relative error of order
          [hier.tol] *)

type solution = {
  mesh : Geometry.Mesh.t;
  kernel : Kernels.Kernel.t;
  quadrature : quadrature;
  eigenvalues : float array; (* descending *)
  coefficients : Linalg.Mat.t;
      (* n x k; column j holds the basis coefficients d of the j-th
         eigenfunction, normalized to L²(D) *)
}

val assemble :
  ?quadrature:quadrature ->
  ?jobs:int ->
  Geometry.Mesh.t ->
  Kernels.Kernel.t ->
  Linalg.Mat.t
(** [assemble mesh kernel] is the symmetric matrix [C] above (n x n). The
    O(n²) kernel evaluations are spread over [jobs] domains
    ({!Util.Pool.with_jobs} semantics: default = the shared pool, [1] =
    sequential); the result is bit-identical for every [jobs]. *)

val matrix_free_threshold : int
(** The [Auto] switchover size (600 triangles — the same size at which
    {!solve}'s default solver switches from dense QL to Lanczos). *)

val solve :
  ?quadrature:quadrature ->
  ?mode:mode ->
  ?solver:solver ->
  ?hier:Hmatrix.params ->
  ?lanczos_max_dim:int ->
  ?diag:Util.Diag.sink ->
  ?jobs:int ->
  Geometry.Mesh.t ->
  Kernels.Kernel.t ->
  solution
(** Solve the Galerkin eigenproblem. Default solver is [Dense] below 600
    triangles and [Lanczos {count = min n 200}] above; default [mode] is
    [Auto]. Eigenvalues are clamped at 0 (tiny negative rounding values
    only). [Matrix_free] or [Hierarchical] with an explicit [Dense] solver
    raises [Invalid_argument]. [hier] tunes the [Hierarchical] operator
    build ({!Hmatrix.default_params} otherwise); a hierarchical build
    whose ACA stalls degrades to the [Table] flat apply with a
    [`Degraded_fallback] warning (see {!Operator.galerkin}).

    Robustness behaviour (all events recorded into [diag] when given):
    - on the assembled path the matrix is scanned for NaN/inf before the
      eigensolve; a non-finite entry raises [Util.Diag.Failure] with
      [`Non_finite] naming the kernel and element pair — on the matrix-free
      path each apply result is scanned instead ([`Non_finite], stage
      ["kle.operator.apply"]);
    - an assembled Lanczos run that fails to converge ([lanczos_max_dim]
      caps its Krylov dimension, mainly for tests) falls back to the dense
      QL solver for the same leading [count] pairs, recording
      [`No_convergence] and [`Degraded_fallback] warnings; a matrix-free
      run that fails to converge falls back to assembly + dense QL, same
      two warnings, preserving the audit trail;
    - a radial profile table that fails its accuracy guard falls back to
      exact evaluation inside the operator ([`Degraded_fallback] recorded
      by {!Kernels.Kernel.radial_profile});
    - a genuinely indefinite kernel raises [Util.Diag.Failure] with
      [`Not_psd]. *)

val solve_with_operator :
  ?quadrature:quadrature ->
  solver:solver ->
  ?lanczos_max_dim:int ->
  ?diag:Util.Diag.sink ->
  ?jobs:int ->
  op:Linalg.Operator.t ->
  Geometry.Mesh.t ->
  Kernels.Kernel.t ->
  solution
(** Lanczos over a caller-supplied operator, with {!solve}'s
    No_convergence fallback (assembly + dense QL) and finalization. For
    callers that build — or load from a {!Persist.Store} — the operator
    themselves, e.g. the analysis server reusing cached hierarchical
    factors. Requires a [Lanczos] solver ([Invalid_argument] otherwise);
    [op] must be the Galerkin operator of [mesh]/[kernel]/[quadrature]
    or the returned solution is meaningless. *)

val eigenvalue_sum_bound : solution -> float
(** [Σ_j λ_j] over the computed pairs — for a normalized kernel the full sum
    equals the die area (trace identity), so this reports how much variance
    the computed pairs capture. *)

val trace : Geometry.Mesh.t -> Kernels.Kernel.t -> float
(** The Galerkin trace [Σ_i K(c_i, c_i) a_i] (= die area for normalized
    kernels): the total variance that the full spectrum accounts for. *)
