module Mat = Linalg.Mat
module Lowrank = Linalg.Lowrank

(* Hierarchical (H-matrix) representation of the symmetric Galerkin
   operator: a cluster tree over triangle centroids partitions the index
   square into admissible far-field blocks — compressed to low rank by
   ACA — and small dense near-field blocks. Storage and matvec cost are
   O(n log n) instead of the O(n²) of the flat pair sweep.

   Determinism: the partition order is a fixed depth-first traversal,
   blocks are factorized into per-block slots (so the build parallelizes
   over Util.Pool without affecting results), and [apply] walks the
   blocks sequentially in partition order — results are bit-identical for
   every [jobs] count, matching the repo-wide contract. *)

type params = {
  tol : float;
  eta : float;
  leaf_size : int;
  max_rank : int;
}

let default_params = { tol = 1e-6; eta = 2.0; leaf_size = Cluster.default_leaf_size; max_rank = 96 }

type block =
  | Near of { rlo : int; rhi : int; clo : int; chi : int; data : Mat.t }
  | Far of { rlo : int; rhi : int; clo : int; chi : int; u : Mat.t; v : Mat.t }

type stats = {
  tree_nodes : int;
  tree_depth : int;
  near_blocks : int;
  far_blocks : int;
  near_entries : int;
  rank_sum : int;
  entry_evals : int;
}

type t = {
  n : int;
  perm : int array;
  blocks : block array;
  stats : stats;
}

(* depth-first admissible partition of the index square: (a, b) pairs of
   tree nodes, split until admissible or both leaves. The non-leaf node
   (or both) is split, so near blocks are leaf×leaf — at most
   leaf_size² dense entries each. *)
let partition tree ~eta =
  let pairs = ref [] in
  let rec visit ai bi =
    let a = Cluster.node tree ai and b = Cluster.node tree bi in
    if Cluster.admissible ~eta a b then pairs := (ai, bi, true) :: !pairs
    else if Cluster.is_leaf a && Cluster.is_leaf b then
      pairs := (ai, bi, false) :: !pairs
    else if Cluster.is_leaf b || ((not (Cluster.is_leaf a)) && Cluster.size a >= Cluster.size b)
    then begin
      visit a.Cluster.left bi;
      visit a.Cluster.right bi
    end
    else begin
      visit ai b.Cluster.left;
      visit ai b.Cluster.right
    end
  in
  visit (Cluster.root_index tree) (Cluster.root_index tree);
  Array.of_list (List.rev !pairs)

exception Stalled of { rlo : int; clo : int; m : int; n : int }

let build ?(params = default_params) ?jobs ~entry points =
  let { tol; eta; leaf_size; max_rank } = params in
  Util.Trace.with_span
    ~attrs:
      [
        ("n", string_of_int (Array.length points));
        ("tol", Printf.sprintf "%g" tol);
        ("eta", Printf.sprintf "%g" eta);
      ]
    "kle.hmatrix.build"
  @@ fun () ->
  let tree = Cluster.build ~leaf_size points in
  let perm = Cluster.perm tree in
  let pairs = partition tree ~eta in
  let n_pairs = Array.length pairs in
  (* per-pair result slots: the parallel build writes each slot exactly
     once, so the assembled block list is independent of the pool size *)
  let slots = Array.make n_pairs None in
  let build_pair p =
    let ai, bi, far = pairs.(p) in
    let a = Cluster.node tree ai and b = Cluster.node tree bi in
    let rlo = a.Cluster.lo and rhi = a.Cluster.hi in
    let clo = b.Cluster.lo and chi = b.Cluster.hi in
    let m = rhi - rlo and nc = chi - clo in
    let local i j = entry perm.(rlo + i) perm.(clo + j) in
    if far then
      match Aca.approximate ~entry:local ~m ~n:nc ~tol ~max_rank with
      | Some r ->
          slots.(p) <- Some (Far { rlo; rhi; clo; chi; u = r.u; v = r.v }, r.evals, r.rank, 0)
      | None -> raise (Stalled { rlo; clo; m; n = nc })
    else begin
      let data = Mat.init m nc local in
      slots.(p) <- Some (Near { rlo; rhi; clo; chi; data }, m * nc, 0, m * nc)
    end
  in
  match
    Util.Pool.with_jobs ?jobs (fun pool ->
        Util.Pool.parallel_for pool ~chunk:1 ~n:n_pairs (fun lo hi ->
            for p = lo to hi - 1 do
              build_pair p
            done))
  with
  | exception Stalled { rlo; clo; m; n = nc } ->
      Error
        (Printf.sprintf
           "ACA stalled at rank %d on the %dx%d far-field block at (%d, %d) \
            (tol %g)"
           max_rank m nc rlo clo tol)
  | () ->
      let blocks = Array.map (fun s -> match s with Some (b, _, _, _) -> b | None -> assert false) slots in
      let evals = ref 0 and rank_sum = ref 0 and near_entries = ref 0 in
      let near_blocks = ref 0 and far_blocks = ref 0 in
      Array.iter
        (fun s ->
          match s with
          | Some (Near _, e, r, ne) ->
              incr near_blocks;
              evals := !evals + e;
              rank_sum := !rank_sum + r;
              near_entries := !near_entries + ne
          | Some (Far _, e, r, ne) ->
              incr far_blocks;
              evals := !evals + e;
              rank_sum := !rank_sum + r;
              near_entries := !near_entries + ne
          | None -> assert false)
        slots;
      let stats =
        {
          tree_nodes = Cluster.n_nodes tree;
          tree_depth = Cluster.depth tree;
          near_blocks = !near_blocks;
          far_blocks = !far_blocks;
          near_entries = !near_entries;
          rank_sum = !rank_sum;
          entry_evals = !evals;
        }
      in
      (* bulk counter updates, totals independent of the pool size *)
      Util.Trace.add Util.Trace.kernel_evals stats.entry_evals;
      Util.Trace.add Util.Trace.nearfield_evals stats.near_entries;
      Util.Trace.add Util.Trace.aca_rank_sum stats.rank_sum;
      Util.Trace.add Util.Trace.htree_nodes stats.tree_nodes;
      Util.Trace.add Util.Trace.hmatrix_near_blocks stats.near_blocks;
      Util.Trace.add Util.Trace.hmatrix_far_blocks stats.far_blocks;
      Ok { n = Array.length points; perm; blocks; stats }

let dim t = t.n
let stats t = t.stats

(* Structural integrity check for decoded values (Persist.Entity holds a
   decoded H-matrix to the same standard as a built one). Coverage is
   checked by area: ranges in bounds, factor shapes consistent, and block
   areas summing to n² — together with the permutation check this rules
   out every plausible corruption short of a contrived re-tiling. *)
let validate t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let n = t.n in
  if n <= 0 then err "non-positive dimension %d" n
  else if Array.length t.perm <> n then
    err "permutation length %d for dimension %d" (Array.length t.perm) n
  else begin
    let seen = Array.make n false in
    let perm_ok =
      Array.for_all
        (fun p ->
          if p < 0 || p >= n || seen.(p) then false
          else begin
            seen.(p) <- true;
            true
          end)
        t.perm
    in
    if not perm_ok then err "perm is not a permutation of 0..%d" (n - 1)
    else begin
      let area = ref 0 in
      let bad = ref None in
      Array.iter
        (fun b ->
          let rlo, rhi, clo, chi, rows_ok, cols_ok =
            match b with
            | Near { rlo; rhi; clo; chi; data } ->
                (rlo, rhi, clo, chi, Mat.rows data = rhi - rlo, Mat.cols data = chi - clo)
            | Far { rlo; rhi; clo; chi; u; v } ->
                ( rlo,
                  rhi,
                  clo,
                  chi,
                  Mat.rows u = rhi - rlo && Mat.cols u = Mat.cols v,
                  Mat.rows v = chi - clo )
          in
          if
            Option.is_none !bad
            && not
                 (0 <= rlo && rlo < rhi && rhi <= n && 0 <= clo && clo < chi
                && chi <= n && rows_ok && cols_ok)
          then bad := Some (rlo, clo);
          area := !area + ((rhi - rlo) * (chi - clo)))
        t.blocks;
      match !bad with
      | Some (rlo, clo) -> err "malformed block at (%d, %d)" rlo clo
      | None ->
          if !area <> n * n then
            err "blocks cover %d of %d index pairs" !area (n * n)
          else Ok ()
    end
  end

let words t =
  Array.fold_left
    (fun acc b ->
      match b with
      | Near { data; _ } -> acc + (Mat.rows data * Mat.cols data)
      | Far { u; v; _ } -> acc + Lowrank.words ~u ~v)
    0 t.blocks

(* Sequential over blocks in partition order — the matvec is O(n log n),
   so there is nothing worth parallelizing at the sizes where the
   hierarchical mode is selected, and a fixed order keeps the result
   bit-identical to any future parallel variant's combine step. *)
let apply t x =
  if Array.length x <> t.n then
    invalid_arg "Kle.Hmatrix.apply: vector length mismatch";
  let xp = Array.make t.n 0.0 in
  let yp = Array.make t.n 0.0 in
  for p = 0 to t.n - 1 do
    Array.unsafe_set xp p (Array.unsafe_get x t.perm.(p))
  done;
  Array.iter
    (fun b ->
      match b with
      | Near { rlo; rhi = _; clo; chi; data } ->
          let m = Mat.rows data and nc = chi - clo in
          for i = 0 to m - 1 do
            let acc = ref 0.0 in
            for j = 0 to nc - 1 do
              acc := !acc +. (Mat.unsafe_get data i j *. Array.unsafe_get xp (clo + j))
            done;
            Array.unsafe_set yp (rlo + i) (Array.unsafe_get yp (rlo + i) +. !acc)
          done
      | Far { rlo; rhi = _; clo; chi = _; u; v } ->
          Lowrank.apply_into ~u ~v ~x:xp ~xoff:clo ~y:yp ~yoff:rlo)
    t.blocks;
  let y = Array.make t.n 0.0 in
  for p = 0 to t.n - 1 do
    Array.unsafe_set y t.perm.(p) (Array.unsafe_get yp p)
  done;
  y
