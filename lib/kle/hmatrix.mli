(** Hierarchical (H-matrix) form of the symmetric Galerkin operator:
    O(n log n) storage and matvec instead of the flat pair sweep's O(n²).

    A {!Cluster} tree over the triangle centroids partitions the index
    square into {e admissible} far-field blocks — compressed to low rank
    by {!Aca} with relative tolerance [tol] — and leaf×leaf dense
    near-field blocks evaluated exactly. The eigenvalue perturbation of
    the compressed operator is bounded by its 2-norm error, which the
    per-block ACA stopping rule keeps near [tol·‖C‖_F].

    Deterministic end to end: the partition is a fixed depth-first
    traversal, the (parallel) build writes one slot per block, and
    {!apply} walks blocks sequentially in partition order — results are
    bit-identical for every [jobs] count. *)

type params = {
  tol : float;  (** relative ACA tolerance per far-field block *)
  eta : float;  (** admissibility: [min(diam) ≤ eta·dist] *)
  leaf_size : int;  (** cluster-tree leaf size (near-block edge bound) *)
  max_rank : int;  (** ACA rank cap — exceeding it fails the build *)
}

val default_params : params
(** [{tol = 1e-6; eta = 2.0; leaf_size = 48; max_rank = 96}]. *)

type block =
  | Near of { rlo : int; rhi : int; clo : int; chi : int; data : Linalg.Mat.t }
      (** dense [(rhi-rlo) × (chi-clo)] near-field block, row/column
          ranges in the permuted ordering *)
  | Far of {
      rlo : int;
      rhi : int;
      clo : int;
      chi : int;
      u : Linalg.Mat.t;
      v : Linalg.Mat.t;
    }  (** low-rank far-field block [u·vᵀ] ({!Linalg.Lowrank} layout) *)

type stats = {
  tree_nodes : int;
  tree_depth : int;
  near_blocks : int;
  far_blocks : int;
  near_entries : int;  (** dense entries stored (= near-field evaluations) *)
  rank_sum : int;  (** Σ ACA ranks over far blocks *)
  entry_evals : int;  (** total entry evaluations spent building *)
}

type t = {
  n : int;
  perm : int array;  (** {!Cluster.perm} of the underlying tree *)
  blocks : block array;  (** partition of the index square, fixed order *)
  stats : stats;
}
(** Concrete so {!Persist.Entity} can encode cached factors; treat as
    read-only and use {!validate} after constructing one by hand. *)

val build :
  ?params:params ->
  ?jobs:int ->
  entry:(int -> int -> float) ->
  Geometry.Point.t array ->
  (t, string) result
(** [build ~entry points] compresses the symmetric operator
    [entry i k] (original, un-permuted indices) using the geometry of
    [points] (one per index). [Error detail] when ACA stalls at
    [max_rank] on some far block — callers fall back to a flat apply
    (see {!Operator.galerkin}) and should record [`Degraded_fallback].
    Adds bulk totals to the {!Util.Trace} counters [kernel_evals],
    [nearfield_evals], [aca_rank_sum], [htree_nodes] and
    [hmatrix_near_blocks]/[hmatrix_far_blocks]; all totals and the
    result are independent of [jobs] ({!Util.Pool.with_jobs} semantics). *)

val apply : t -> float array -> float array
(** The compressed matvec. O(n log n); sequential, so safe to call
    concurrently from several domains. Raises [Invalid_argument] on a
    length mismatch. *)

val dim : t -> int
val stats : t -> stats

val words : t -> int
(** Stored floats across all blocks — the O(n log n) memory footprint,
    versus [n²] for the dense matrix. *)

val validate : t -> (unit, string) result
(** Structural integrity: [perm] is a permutation, every block's ranges
    and factor shapes are consistent, block areas tile the full index
    square. Used by the persistence codec on decode. *)
