module Mesh = Geometry.Mesh

type t = {
  solution : Galerkin.solution;
  r : int;
  locator : Geometry.Locator.t;
}

let choose_r ?(tolerance = 0.01) ~n_total eigenvalues =
  let m = Array.length eigenvalues in
  if m = 0 then invalid_arg "Model.choose_r: no eigenvalues";
  if n_total < m then invalid_arg "Model.choose_r: n_total below computed count";
  let lambda_m = eigenvalues.(m - 1) in
  let uncomputed = lambda_m *. float_of_int (n_total - m) in
  (* suffix sums of the computed tail *)
  let rec search r head tail =
    if r > m then m
    else if uncomputed +. tail <= tolerance *. head && r >= 1 then r
    else if r = m then m
    else search (r + 1) (head +. eigenvalues.(r)) (tail -. eigenvalues.(r))
  in
  let total = Util.Arrayx.sum eigenvalues in
  search 1 eigenvalues.(0) (total -. eigenvalues.(0))

let create ?r solution =
  let m = Array.length solution.Galerkin.eigenvalues in
  let n = Mesh.size solution.Galerkin.mesh in
  Util.Trace.with_span
    ~attrs:[ ("n", string_of_int n); ("computed", string_of_int m) ]
    "model.create"
  @@ fun () ->
  let r =
    match r with
    | Some r ->
        if r <= 0 || r > m then
          invalid_arg "Model.create: r out of range of computed eigenpairs";
        r
    | None -> choose_r ~n_total:n solution.Galerkin.eigenvalues
  in
  { solution; r; locator = Geometry.Locator.create solution.Galerkin.mesh }

let eigenvalues t = Array.sub t.solution.Galerkin.eigenvalues 0 t.r

(* containing triangle, falling back to the nearest triangle (with an
   [`Out_of_domain] diagnostic) for points on or just outside the die
   boundary — a gate placed exactly on the die edge must not kill a run *)
let locate ?diag ~stage t x =
  match Geometry.Locator.find t.locator x with
  | Some tri -> tri
  | None ->
      let tri = Geometry.Locator.find_nearest t.locator x in
      Util.Diag.record ?sink:diag Warning `Out_of_domain ~stage
        (Printf.sprintf
           "point (%g, %g) is outside the mesh; clamped to nearest triangle %d"
           x.Geometry.Point.x x.Geometry.Point.y tri);
      tri

let eval_eigenfunction ?diag t j x =
  if j < 0 || j >= t.r then invalid_arg "Model.eval_eigenfunction: index out of range";
  let tri = locate ?diag ~stage:"model.eval_eigenfunction" t x in
  Linalg.Mat.get t.solution.Galerkin.coefficients tri j

let reconstruct_kernel ?diag t x y =
  let stage = "model.reconstruct_kernel" in
  let tx = locate ?diag ~stage t x in
  let ty = locate ?diag ~stage t y in
  let coeffs = t.solution.Galerkin.coefficients in
  let lams = t.solution.Galerkin.eigenvalues in
  let acc = ref 0.0 in
  for j = 0 to t.r - 1 do
    acc :=
      !acc
      +. (lams.(j) *. Linalg.Mat.unsafe_get coeffs tx j *. Linalg.Mat.unsafe_get coeffs ty j)
  done;
  !acc

(* truncated-series reconstruction between two mesh elements *)
let reconstruct_at_triangles t ti tj =
  let coeffs = t.solution.Galerkin.coefficients in
  let lams = t.solution.Galerkin.eigenvalues in
  let acc = ref 0.0 in
  for j = 0 to t.r - 1 do
    acc :=
      !acc
      +. (lams.(j) *. Linalg.Mat.unsafe_get coeffs ti j *. Linalg.Mat.unsafe_get coeffs tj j)
  done;
  !acc

let nearest_centroid t p =
  let centroids = t.solution.Galerkin.mesh.Mesh.centroids in
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i c ->
      let d = Geometry.Point.dist2 c p in
      if d < !best_d then begin
        best := i;
        best_d := d
      end)
    centroids;
  !best

let reconstruction_error ?fixed t =
  let domain = t.solution.Galerkin.mesh.Mesh.domain in
  let fixed = match fixed with Some p -> p | None -> Geometry.Rect.center domain in
  let i0 = nearest_centroid t fixed in
  let centroids = t.solution.Galerkin.mesh.Mesh.centroids in
  let kernel = t.solution.Galerkin.kernel in
  let err = ref 0.0 in
  Array.iteri
    (fun j cj ->
      let e =
        Float.abs
          (reconstruct_at_triangles t i0 j
          -. Kernels.Kernel.eval kernel centroids.(i0) cj)
      in
      if e > !err then err := e)
    centroids;
  !err

let reconstruction_error_pairwise ?(stride = 7) t =
  let centroids = t.solution.Galerkin.mesh.Mesh.centroids in
  let kernel = t.solution.Galerkin.kernel in
  let n = Array.length centroids in
  let err = ref 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref 0 in
    while !j < n do
      let e =
        Float.abs
          (reconstruct_at_triangles t !i !j
          -. Kernels.Kernel.eval kernel centroids.(!i) centroids.(!j))
      in
      if e > !err then err := e;
      j := !j + stride
    done;
    i := !i + stride
  done;
  !err

let reconstruction_error_grid ?(grid = 41) ?fixed t =
  let domain = t.solution.Galerkin.mesh.Mesh.domain in
  let fixed = match fixed with Some p -> p | None -> Geometry.Rect.center domain in
  (* pull the grid slightly inside the die so every point lies in a triangle *)
  let eps = 1e-9 in
  let shrunk =
    Geometry.Rect.make
      ~xmin:(domain.Geometry.Rect.xmin +. eps)
      ~xmax:(domain.Geometry.Rect.xmax -. eps)
      ~ymin:(domain.Geometry.Rect.ymin +. eps)
      ~ymax:(domain.Geometry.Rect.ymax -. eps)
  in
  let pts = Geometry.Rect.sample_grid shrunk ~nx:grid ~ny:grid in
  Array.fold_left
    (fun acc y ->
      let err =
        Float.abs
          (reconstruct_kernel t fixed y
          -. Kernels.Kernel.eval t.solution.Galerkin.kernel fixed y)
      in
      Float.max acc err)
    0.0 pts

let variance_at ?diag t x =
  let tx = locate ?diag ~stage:"model.variance_at" t x in
  let coeffs = t.solution.Galerkin.coefficients in
  let lams = t.solution.Galerkin.eigenvalues in
  let acc = ref 0.0 in
  for j = 0 to t.r - 1 do
    let f = Linalg.Mat.unsafe_get coeffs tx j in
    acc := !acc +. (lams.(j) *. f *. f)
  done;
  !acc

let captured_variance_fraction t =
  let total =
    Galerkin.trace t.solution.Galerkin.mesh t.solution.Galerkin.kernel
  in
  Util.Arrayx.sum (eigenvalues t) /. total

let d_lambda t =
  let n = Mesh.size t.solution.Galerkin.mesh in
  let coeffs = t.solution.Galerkin.coefficients in
  let lams = t.solution.Galerkin.eigenvalues in
  Linalg.Mat.init n t.r (fun i j -> Linalg.Mat.unsafe_get coeffs i j *. sqrt lams.(j))
