(** Truncated KLE models: the reduced [r]-variable representation of the
    random field (paper eq. (3) truncated, plus the truncation-selection rule
    of Section 5.2). *)

type t = {
  solution : Galerkin.solution;
  r : int; (* number of retained eigenpairs *)
  locator : Geometry.Locator.t;
}

val create : ?r:int -> Galerkin.solution -> t
(** [create solution] truncates to [r] eigenpairs (default: {!choose_r} with
    its default tolerance). Raises [Invalid_argument] when [r] exceeds the
    number of computed pairs or is not positive. *)

val choose_r : ?tolerance:float -> n_total:int -> float array -> int
(** [choose_r ~n_total eigenvalues] implements the paper's truncation rule:
    the smallest [r] such that
    [λ_m (n_total - m) + Σ_{i=r+1}^{m} λ_i <= tolerance * Σ_{i=1}^{r} λ_i],
    where [m] is the number of computed eigenvalues (paper: m = 200,
    tolerance = 0.01, giving r = 25). The left side upper-bounds the total
    weight of ALL discarded eigenvalues, because eigenvalues are
    non-increasing. Returns [m] when no such [r] exists. *)

val eval_eigenfunction : ?diag:Util.Diag.sink -> t -> int -> Geometry.Point.t -> float
(** [eval_eigenfunction t j x] evaluates the [j]-th (0-based) eigenfunction
    at die location [x] (piecewise constant on the mesh). Raises
    [Invalid_argument] for [j >= r]. A point outside the die — including
    gates placed exactly on the die boundary that fall between boundary
    triangles — is clamped to the nearest triangle, recording an
    [`Out_of_domain] warning per clamp into [diag]. *)

val eigenvalues : t -> float array
(** The retained [r] eigenvalues, descending. *)

val reconstruct_kernel :
  ?diag:Util.Diag.sink -> t -> Geometry.Point.t -> Geometry.Point.t -> float
(** Truncated-series reconstruction [K̂(x, y) = Σ_{j<r} λ_j f_j(x) f_j(y)].
    Out-of-domain points clamp to the nearest triangle (recorded in [diag]). *)

val reconstruction_error : ?fixed:Geometry.Point.t -> t -> float
(** Max abs error [|K̂(x₀, y) - K(x₀, y)|] with [x₀] the mesh centroid nearest
    to [fixed] (default: die center) and [y] sweeping all mesh centroids —
    the quantity plotted in Fig. 3(b) (paper: max 0.016). Evaluating at
    centroids measures the truncation error of the expansion itself; between
    centroids the piecewise-constant basis adds an O(h·|∇K|) discretization
    floor, measured by {!reconstruction_error_grid}. *)

val reconstruction_error_grid :
  ?grid:int -> ?fixed:Geometry.Point.t -> t -> float
(** Max abs error [|K̂(fixed, y) - K(fixed, y)|] over a [grid x grid] sweep
    of arbitrary die locations [y] (defaults: 41, die center). *)

val reconstruction_error_pairwise : ?stride:int -> t -> float
(** Max abs error over all centroid {e pairs} (subsampled by [stride],
    default 7) — the worst case over the whole die, not just from the
    center. *)

val variance_at : ?diag:Util.Diag.sink -> t -> Geometry.Point.t -> float
(** [Σ_{j<r} λ_j f_j(x)²]: the variance the truncated model retains at [x]
    (1 would be exact for a normalized kernel). Out-of-domain points clamp
    to the nearest triangle (recorded in [diag]). *)

val captured_variance_fraction : t -> float
(** [Σ_{j<r} λ_j / trace]: fraction of total field variance retained. *)

val d_lambda : t -> Linalg.Mat.t
(** The [n x r] matrix [D_λ = D_r √Λ_r] of eq. (28): maps a reduced sample
    [ξ] to per-triangle field values. *)
