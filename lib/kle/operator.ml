module Mesh = Geometry.Mesh
module Kernel = Kernels.Kernel

type t = Linalg.Operator.t =
  | Dense of Linalg.Mat.t
  | Matrix_free of { apply : float array -> float array; dim : int }

type quadrature = Centroid | Midedge

type mode = Exact | Table | Hierarchical

let dim = Linalg.Operator.dim
let apply = Linalg.Operator.apply

(* K̃_ik: quadrature approximation of (1/(a_i a_k)) ∫∫ K — i.e. the mean of K
   over the element pair. Centroid rule: K(c_i, c_k). Mid-edge rule: mean of
   the 3x3 mid-edge evaluations (each triangle's 3-point rule has equal
   weights a/3). *)
let mean_kernel_value quadrature mesh kernel =
  match quadrature with
  | Centroid ->
      let centroids = mesh.Mesh.centroids in
      fun i k -> Kernel.eval kernel centroids.(i) centroids.(k)
  | Midedge ->
      let midpoints =
        Array.init (Mesh.size mesh) (fun i ->
            Geometry.Triangle.edge_midpoints (Mesh.triangle mesh i))
      in
      fun i k ->
        let mi = midpoints.(i) and mk = midpoints.(k) in
        let acc = ref 0.0 in
        for p = 0 to 2 do
          for q = 0 to 2 do
            acc := !acc +. Kernel.eval kernel mi.(p) mk.(q)
          done
        done;
        !acc /. 9.0

let domain_diameter mesh =
  let d = mesh.Mesh.domain in
  Float.hypot (Geometry.Rect.width d) (Geometry.Rect.height d)

let check_finite ?diag ~stage n out =
  let rec check i =
    if i < n then
      if Float.is_finite (Array.unsafe_get out i) then check (i + 1)
      else
        Util.Diag.fail ?sink:diag `Non_finite ~stage
          (Printf.sprintf "apply produced a non-finite entry at row %d" i)
  in
  check 0

(* The apply is tiled over a FIXED number of row panels — fixed so the work
   decomposition (and hence the floating-point result) depends only on [n],
   never on how many domains serve the panels. Each panel owns the pairs
   (i, k >= i) for its rows and accumulates both sides of the symmetric
   contribution into a private length-n vector; the panel vectors are then
   combined in panel order. *)
let panel_target = 128

(* column-block width of the pair loops: keeps the active slices of x, y and
   the coordinate arrays L1-resident while a row panel streams over k *)
let col_block = 256

let make_apply ~n ?jobs ?diag ?(evals_per_apply = 0) ~process_row () =
  let panels = max 1 (min panel_target n) in
  let psize = (n + panels - 1) / panels in
  (* re-entrancy: scratch panel sets are pooled and checked out per call,
     never shared between in-flight matvecs — concurrent applies of one
     operator (ssta_serve worker domains hitting a cached model) each get
     private panels and produce the same bits as sequential applies. The
     free list caps steady-state allocation at one O(panels·n) set per
     concurrently running matvec instead of one per matvec (Lanczos calls
     apply hundreds of times). *)
  let free : float array array list ref = ref [] in
  let free_lock = Mutex.create () in
  let acquire () =
    let pooled =
      Mutex.protect free_lock (fun () ->
          match !free with
          | s :: tl ->
              free := tl;
              Some s
          | [] -> None)
    in
    match pooled with
    | Some s -> s
    | None -> Array.init panels (fun _ -> Array.make n 0.0)
  in
  let release s = Mutex.protect free_lock (fun () -> free := s :: !free) in
  fun x ->
    if Array.length x <> n then
      invalid_arg "Kle.Operator.apply: vector length mismatch";
    (* exact-evaluation applies do the full pair sweep every matvec; table
       applies only interpolate (0) — bulk add keeps totals jobs-independent *)
    Util.Trace.add Util.Trace.kernel_evals evals_per_apply;
    let scratch = acquire () in
    Fun.protect ~finally:(fun () -> release scratch) @@ fun () ->
    Util.Pool.with_jobs ?jobs (fun pool ->
        Util.Pool.parallel_for pool ~chunk:1 ~n:panels (fun plo phi ->
            for p = plo to phi - 1 do
              let y = scratch.(p) in
              Array.fill y 0 n 0.0;
              let ihi = min n ((p + 1) * psize) in
              for i = p * psize to ihi - 1 do
                process_row y x i
              done
            done));
    let out = Array.make n 0.0 in
    for p = 0 to panels - 1 do
      let yp = scratch.(p) in
      for i = 0 to n - 1 do
        Array.unsafe_set out i (Array.unsafe_get out i +. Array.unsafe_get yp i)
      done
    done;
    check_finite ?diag ~stage:"kle.operator.apply" n out;
    out

(* row processor over an arbitrary pair-value closure (exact evaluation,
   mid-edge rules, non-isotropic kernels) *)
let generic_row ~n ~s ~pair y x i =
  let si = Array.unsafe_get s i in
  let vii = pair i i *. si *. si in
  Array.unsafe_set y i (Array.unsafe_get y i +. (vii *. Array.unsafe_get x i));
  let xi = Array.unsafe_get x i in
  let k0 = ref (i + 1) in
  while !k0 < n do
    let k1 = min n (!k0 + col_block) in
    let acc = ref 0.0 in
    for k = !k0 to k1 - 1 do
      let v = pair i k *. si *. Array.unsafe_get s k in
      acc := !acc +. (v *. Array.unsafe_get x k);
      Array.unsafe_set y k (Array.unsafe_get y k +. (v *. xi))
    done;
    Array.unsafe_set y i (Array.unsafe_get y i +. !acc);
    k0 := k1
  done

(* the hot path: centroid rule on a tabulated radial profile — one distance,
   one table interpolation and a handful of flops per unordered pair *)
let table_row ~n ~s ~cx ~cy ~tbl y x i =
  let si = Array.unsafe_get s i in
  let xi_c = Array.unsafe_get cx i and yi_c = Array.unsafe_get cy i in
  let vii = Kernel.profile_eval tbl 0.0 *. si *. si in
  Array.unsafe_set y i (Array.unsafe_get y i +. (vii *. Array.unsafe_get x i));
  let xi = Array.unsafe_get x i in
  let k0 = ref (i + 1) in
  while !k0 < n do
    let k1 = min n (!k0 + col_block) in
    let acc = ref 0.0 in
    for k = !k0 to k1 - 1 do
      let dx = xi_c -. Array.unsafe_get cx k in
      let dy = yi_c -. Array.unsafe_get cy k in
      let v =
        Kernel.profile_eval tbl (sqrt ((dx *. dx) +. (dy *. dy)))
        *. si *. Array.unsafe_get s k
      in
      acc := !acc +. (v *. Array.unsafe_get x k);
      Array.unsafe_set y k (Array.unsafe_get y k +. (v *. xi))
    done;
    Array.unsafe_set y i (Array.unsafe_get y i +. !acc);
    k0 := k1
  done

(* the mid-edge K̃_ik through a radial table: 9 midpoint distances per pair *)
let midedge_table_pair ~n mesh tbl =
  let midpoints =
    Array.init n (fun i ->
        Geometry.Triangle.edge_midpoints (Mesh.triangle mesh i))
  in
  let mx =
    Array.init (3 * n) (fun q -> midpoints.(q / 3).(q mod 3).Geometry.Point.x)
  in
  let my =
    Array.init (3 * n) (fun q -> midpoints.(q / 3).(q mod 3).Geometry.Point.y)
  in
  fun i k ->
    let acc = ref 0.0 in
    for p = 0 to 2 do
      let xp = Array.unsafe_get mx ((3 * i) + p) in
      let yp = Array.unsafe_get my ((3 * i) + p) in
      for q = 0 to 2 do
        let dx = xp -. Array.unsafe_get mx ((3 * k) + q) in
        let dy = yp -. Array.unsafe_get my ((3 * k) + q) in
        acc := !acc +. Kernel.profile_eval tbl (sqrt ((dx *. dx) +. (dy *. dy)))
      done
    done;
    !acc /. 9.0

(* flat O(n²)-per-matvec apply: the Table path when a radial table
   qualifies, exact evaluation otherwise — also the fallback when a
   hierarchical build fails *)
let flat_galerkin ~quadrature ~exact ?table_points ?table_tol ?diag ?jobs mesh
    kernel =
  let n = Mesh.size mesh in
  let s = Array.map sqrt mesh.Mesh.areas in
  let table =
    if exact then None
    else
      Kernel.radial_profile ?points:table_points ?tol:table_tol ?diag kernel
        ~vmax:(domain_diameter mesh)
  in
  let process_row =
    match (quadrature, table) with
    | Centroid, Some tbl ->
        let centroids = mesh.Mesh.centroids in
        let cx = Array.map (fun p -> p.Geometry.Point.x) centroids in
        let cy = Array.map (fun p -> p.Geometry.Point.y) centroids in
        table_row ~n ~s ~cx ~cy ~tbl
    | Midedge, Some tbl -> generic_row ~n ~s ~pair:(midedge_table_pair ~n mesh tbl)
    | (Centroid | Midedge), None ->
        generic_row ~n ~s ~pair:(mean_kernel_value quadrature mesh kernel)
  in
  let evals_per_apply =
    match table with
    | Some _ -> 0
    | None ->
        n * (n + 1) / 2 * (match quadrature with Centroid -> 1 | Midedge -> 9)
  in
  Matrix_free
    { apply = make_apply ~n ?jobs ?diag ~evals_per_apply ~process_row (); dim = n }

let hmatrix_galerkin ?(quadrature = Centroid) ?hier ?table_points ?table_tol
    ?diag ?jobs mesh kernel =
  let n = Mesh.size mesh in
  let s = Array.map sqrt mesh.Mesh.areas in
  let table =
    Kernel.radial_profile ?points:table_points ?tol:table_tol ?diag kernel
      ~vmax:(domain_diameter mesh)
  in
  let pair =
    match (quadrature, table) with
    | Centroid, Some tbl ->
        let centroids = mesh.Mesh.centroids in
        let cx = Array.map (fun p -> p.Geometry.Point.x) centroids in
        let cy = Array.map (fun p -> p.Geometry.Point.y) centroids in
        fun i k ->
          let dx = Array.unsafe_get cx i -. Array.unsafe_get cx k in
          let dy = Array.unsafe_get cy i -. Array.unsafe_get cy k in
          Kernel.profile_eval tbl (sqrt ((dx *. dx) +. (dy *. dy)))
    | Midedge, Some tbl -> midedge_table_pair ~n mesh tbl
    | (Centroid | Midedge), None -> mean_kernel_value quadrature mesh kernel
  in
  let entry i k = pair i k *. Array.unsafe_get s i *. Array.unsafe_get s k in
  Hmatrix.build ?params:hier ?jobs ~entry mesh.Mesh.centroids

let of_hmatrix ?diag h =
  let n = Hmatrix.dim h in
  Matrix_free
    {
      apply =
        (fun x ->
          let y = Hmatrix.apply h x in
          check_finite ?diag ~stage:"kle.operator.apply" n y;
          y);
      dim = n;
    }

let galerkin ?(quadrature = Centroid) ?(mode = Table) ?hier ?table_points
    ?table_tol ?diag ?jobs mesh kernel =
  match mode with
  | Exact | Table ->
      flat_galerkin ~quadrature
        ~exact:(match mode with Exact -> true | _ -> false)
        ?table_points ?table_tol ?diag ?jobs mesh kernel
  | Hierarchical -> (
      match
        hmatrix_galerkin ~quadrature ?hier ?table_points ?table_tol ?diag ?jobs
          mesh kernel
      with
      | Ok h -> of_hmatrix ?diag h
      | Error detail ->
          Util.Diag.record ?sink:diag Warning `Degraded_fallback
            ~stage:"kle.operator.galerkin"
            (Printf.sprintf
               "hierarchical build failed for kernel %s (n = %d): %s — falling \
                back to the flat apply"
               (Kernel.name kernel) (Mesh.size mesh) detail);
          flat_galerkin ~quadrature ~exact:false ?table_points ?table_tol ?diag
            ?jobs mesh kernel)
