(** The Galerkin correlation operator [C = Φ^{1/2} K̃ Φ^{1/2}] as a
    {!Linalg.Operator.t} — in particular {e matrix-free}: the Krylov
    eigensolver only needs [C·x], and every entry
    [C_ik = K̃(c_i, c_k) √(a_i a_k)] is recomputable on the fly, so the
    O(n²) assembly (memory {e and} kernel evaluations) can be skipped
    entirely.

    Three apply strategies ({!mode}):
    - [Table] (default): each matvec sweeps all n²/2 pairs, but evaluates
      the isotropic kernel through a precomputed radial profile table
      ({!Kernels.Kernel.radial_profile}) — one distance and one linear
      interpolation per unordered pair instead of [exp]/Bessel/[Γ] calls.
      Falls back to exact evaluation when the kernel is anisotropic,
      wraps a fault plan, or fails the table's measured-error guard.
    - [Exact]: the same sweep with exact kernel evaluations.
    - [Hierarchical]: compress the operator once into an H-matrix
      ({!Hmatrix}: cluster tree + ACA low-rank far field + dense near
      field) and apply it in O(n log n) — sub-quadratic matvecs at the
      price of a controlled relative error [hier.tol].

    The flat applies are parallelized over {!Util.Pool} with a
    pool-size-independent panel decomposition, and the hierarchical build
    writes per-block slots: results are bit-identical for every [jobs],
    matching the repo-wide determinism contract.

    All returned closures are safe to call concurrently from several
    domains: the flat applies check scratch panels out of a pool per
    call, and the hierarchical apply holds no mutable state. *)

type t = Linalg.Operator.t =
  | Dense of Linalg.Mat.t
  | Matrix_free of { apply : float array -> float array; dim : int }

type quadrature =
  | Centroid  (** paper eq. (21): one-point rule, degree-1 exact *)
  | Midedge  (** three mid-edge points per triangle, degree-2 exact *)

type mode =
  | Exact  (** full pair sweep, exact kernel evaluations every matvec *)
  | Table  (** full pair sweep through the radial profile table *)
  | Hierarchical
      (** O(n log n) H-matrix apply ({!Hmatrix}); falls back to [Table]
          with a [`Degraded_fallback] diagnostic when ACA stalls *)

val mean_kernel_value :
  quadrature -> Geometry.Mesh.t -> Kernels.Kernel.t -> int -> int -> float
(** [mean_kernel_value q mesh kernel i k] is K̃_ik, the quadrature
    approximation of the mean of [K] over element pair [(i, k)] — the shared
    entry rule behind both {!Galerkin.assemble} and the matrix-free apply. *)

val dim : t -> int
val apply : t -> float array -> float array

val galerkin :
  ?quadrature:quadrature ->
  ?mode:mode ->
  ?hier:Hmatrix.params ->
  ?table_points:int ->
  ?table_tol:float ->
  ?diag:Util.Diag.sink ->
  ?jobs:int ->
  Geometry.Mesh.t ->
  Kernels.Kernel.t ->
  t
(** [galerkin mesh kernel] is the matrix-free Galerkin operator; [mode]
    (default [Table]) selects the apply strategy above.

    [hier] tunes the [Hierarchical] build ({!Hmatrix.default_params}
    otherwise); when the build fails (ACA stalls at [hier.max_rank]) a
    [`Degraded_fallback] warning is recorded on [diag] and the operator
    degrades to the [Table] configuration. [table_points]/[table_tol] are
    forwarded to {!Kernels.Kernel.radial_profile}, which records
    [`Degraded_fallback] / [`Non_finite] warnings on [diag] when the
    table is rejected; the table also backs the hierarchical build's
    entry function when it qualifies.

    [jobs] has {!Util.Pool.with_jobs} semantics, resolved per matvec
    (flat modes) or once at build time ([Hierarchical]). A non-finite
    entry in an apply result raises [Util.Diag.Failure] with
    [`Non_finite] (recorded on [diag]). *)

val hmatrix_galerkin :
  ?quadrature:quadrature ->
  ?hier:Hmatrix.params ->
  ?table_points:int ->
  ?table_tol:float ->
  ?diag:Util.Diag.sink ->
  ?jobs:int ->
  Geometry.Mesh.t ->
  Kernels.Kernel.t ->
  (Hmatrix.t, string) result
(** The [Hierarchical] build step alone: compress the Galerkin operator's
    entry function into an {!Hmatrix.t} without wrapping it in an apply.
    Exposed so callers can persist the factors ({!Persist}-layer entity)
    and rebuild the operator later with {!of_hmatrix}. [Error detail]
    when ACA stalls; no diagnostic is recorded here — callers choose the
    fallback and its reporting. *)

val of_hmatrix : ?diag:Util.Diag.sink -> Hmatrix.t -> t
(** Wrap prebuilt (or store-loaded) hierarchical factors as an operator;
    the apply checks outputs for finiteness like every other mode. *)
