(** The Galerkin correlation operator [C = Φ^{1/2} K̃ Φ^{1/2}] as a
    {!Linalg.Operator.t} — in particular {e matrix-free}: the Krylov
    eigensolver only needs [C·x], and every entry
    [C_ik = K̃(c_i, c_k) √(a_i a_k)] is recomputable on the fly, so the
    O(n²) assembly (memory {e and} kernel evaluations) can be skipped
    entirely.

    Recomputing entries is only a win when an entry is cheap. All of the
    paper's kernel families are isotropic, so the apply evaluates
    [K(v = ‖c_i - c_k‖)] through a precomputed radial profile table
    ({!Kernels.Kernel.radial_profile}) — one distance and one linear
    interpolation per unordered pair instead of [exp]/Bessel/[Γ] calls —
    falling back to exact evaluation when the kernel is anisotropic, wraps a
    fault plan, or fails the table's measured-error guard.

    The apply is parallelized over {!Util.Pool} with a pool-size-independent
    panel decomposition: results are bit-identical for every [jobs],
    matching the repo-wide determinism contract. Each matvec costs
    [n²/2] pair evaluations (the symmetric half is exploited) and the
    operator holds O(128·n) scratch words — no n×n allocation anywhere. *)

type t = Linalg.Operator.t =
  | Dense of Linalg.Mat.t
  | Matrix_free of { apply : float array -> float array; dim : int }

type quadrature =
  | Centroid  (** paper eq. (21): one-point rule, degree-1 exact *)
  | Midedge  (** three mid-edge points per triangle, degree-2 exact *)

val mean_kernel_value :
  quadrature -> Geometry.Mesh.t -> Kernels.Kernel.t -> int -> int -> float
(** [mean_kernel_value q mesh kernel i k] is K̃_ik, the quadrature
    approximation of the mean of [K] over element pair [(i, k)] — the shared
    entry rule behind both {!Galerkin.assemble} and the matrix-free apply. *)

val dim : t -> int
val apply : t -> float array -> float array

val galerkin :
  ?quadrature:quadrature ->
  ?exact:bool ->
  ?table_points:int ->
  ?table_tol:float ->
  ?diag:Util.Diag.sink ->
  ?jobs:int ->
  Geometry.Mesh.t ->
  Kernels.Kernel.t ->
  t
(** [galerkin mesh kernel] is the matrix-free Galerkin operator.

    [exact] (default false) forces exact kernel evaluation even when a
    radial table would qualify — the table path is used when the kernel is
    isotropic, carries no fault plan, and passes the build-time
    interpolation-error guard ([table_points]/[table_tol] forwarded to
    {!Kernels.Kernel.radial_profile}, which records [`Degraded_fallback] /
    [`Non_finite] warnings on [diag] when the table is rejected).

    [jobs] has {!Util.Pool.with_jobs} semantics, resolved per matvec.
    A non-finite entry in an apply result raises [Util.Diag.Failure] with
    [`Non_finite] (recorded on [diag]).

    The returned closure reuses internal scratch across calls and is not
    re-entrant: one matvec at a time (the Lanczos driver is sequential
    between matvecs, so this is the natural contract). *)
