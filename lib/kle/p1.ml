module Mesh = Geometry.Mesh
module Kernel = Kernels.Kernel
module Point = Geometry.Point

type solution = {
  mesh : Mesh.t;
  kernel : Kernel.t;
  eigenvalues : float array;
  vertex_coefficients : Linalg.Mat.t;
}

(* local P1 mass matrix on a triangle of area a:
   (a / 12) * [[2;1;1];[1;2;1];[1;1;2]] *)
let mass_matrix mesh =
  let nv = Array.length mesh.Mesh.points in
  let m = Linalg.Mat.create nv nv in
  Array.iteri
    (fun t (i, j, k) ->
      let a = mesh.Mesh.areas.(t) /. 12.0 in
      let verts = [| i; j; k |] in
      for p = 0 to 2 do
        for q = 0 to 2 do
          let w = if p = q then 2.0 *. a else a in
          Linalg.Mat.unsafe_set m verts.(p) verts.(q)
            (Linalg.Mat.unsafe_get m verts.(p) verts.(q) +. w)
        done
      done)
    mesh.Mesh.triangles;
  m

(* quadrature nodes: the 3 edge midpoints of every triangle, with weight
   area/3; the hat functions of the edge's two endpoints are 1/2 there *)
type quad_node = { location : Point.t; weight : float; v1 : int; v2 : int }

let quad_nodes mesh =
  let nodes = ref [] in
  Array.iteri
    (fun t (i, j, k) ->
      let tri = Mesh.triangle mesh t in
      let mids = Geometry.Triangle.edge_midpoints tri in
      let w = mesh.Mesh.areas.(t) /. 3.0 in
      (* edge_midpoints order: (a,b), (b,c), (c,a) *)
      nodes :=
        { location = mids.(0); weight = w; v1 = i; v2 = j }
        :: { location = mids.(1); weight = w; v1 = j; v2 = k }
        :: { location = mids.(2); weight = w; v1 = k; v2 = i }
        :: !nodes)
    mesh.Mesh.triangles;
  Array.of_list !nodes

(* K_vw = sum over quadrature node pairs of
   w_q w_q' K(x_q, x_q') phi_v(x_q) phi_w(x_q'), phi = 1/2 at the two
   endpoints of the node's edge *)
let kernel_matrix mesh kernel =
  let nv = Array.length mesh.Mesh.points in
  let nodes = quad_nodes mesh in
  let nq = Array.length nodes in
  let k = Linalg.Mat.create nv nv in
  let kd = Linalg.Mat.raw k in
  for a = 0 to nq - 1 do
    let na = nodes.(a) in
    for b = a to nq - 1 do
      let nb = nodes.(b) in
      let base = Kernel.eval kernel na.location nb.location in
      (* phi products: (1/2)(1/2) = 1/4 for each endpoint combination *)
      let contrib = 0.25 *. na.weight *. nb.weight *. base in
      let add v w c =
        let idx = (v * nv) + w in
        Bigarray.Array1.unsafe_set kd idx (Bigarray.Array1.unsafe_get kd idx +. c)
      in
      let pairs =
        [| (na.v1, nb.v1); (na.v1, nb.v2); (na.v2, nb.v1); (na.v2, nb.v2) |]
      in
      Array.iter (fun (v, w) -> add v w contrib) pairs;
      if a <> b then Array.iter (fun (v, w) -> add w v contrib) pairs
    done
  done;
  k

let solve ?count mesh kernel =
  let nv = Array.length mesh.Mesh.points in
  let count = match count with Some c -> min c nv | None -> nv in
  if count <= 0 then invalid_arg "P1.solve: count must be positive";
  let m = mass_matrix mesh in
  let k = kernel_matrix mesh kernel in
  (* reduce K d = lambda M d to the standard symmetric problem
     C c = lambda c with C = L^-1 K L^-T, d = L^-T c *)
  let l = Linalg.Cholesky.factor_lower m in
  (* forward-substitute on columns: X = L^-1 K *)
  let forward_all get_col n =
    let out = Linalg.Mat.create n n in
    for col = 0 to n - 1 do
      let b = get_col col in
      (* L y = b *)
      let y = Array.make n 0.0 in
      for i = 0 to n - 1 do
        let s = ref b.(i) in
        for t = 0 to i - 1 do
          s := !s -. (Linalg.Mat.unsafe_get l i t *. y.(t))
        done;
        y.(i) <- !s /. Linalg.Mat.unsafe_get l i i
      done;
      for i = 0 to n - 1 do
        Linalg.Mat.unsafe_set out i col y.(i)
      done
    done;
    out
  in
  let x = forward_all (Linalg.Mat.col k) nv in
  (* C = (L^-1 (L^-1 K)^T)^T; C symmetric so the final transpose is free, and
     column [col] of Xᵀ is just row [col] of X — no transpose materialized *)
  let c = forward_all (Linalg.Mat.row x) nv in
  let raw_values, column =
    if count >= nv then begin
      let vals, q = Linalg.Sym_eig.eig c in
      (Array.sub vals 0 count, fun j -> Linalg.Mat.col q j)
    end
    else begin
      let r =
        Linalg.Lanczos.top_k
          ~matvec:(fun v -> Linalg.Mat.sym_mul_vec c v)
          ~n:nv ~k:count ()
      in
      (r.Linalg.Lanczos.eigenvalues, fun j -> r.Linalg.Lanczos.eigenvectors.(j))
    end
  in
  let scale = Float.max 1e-300 (Float.abs raw_values.(0)) in
  Array.iter
    (fun v ->
      if v < -1e-8 *. scale *. float_of_int nv then
        invalid_arg
          (Printf.sprintf "P1.solve: kernel %s is not non-negative definite"
             (Kernel.name kernel)))
    raw_values;
  let eigenvalues = Array.map (fun v -> Float.max 0.0 v) raw_values in
  (* back-substitute d = L^-T c, per eigenvector *)
  let vertex_coefficients = Linalg.Mat.create nv count in
  for j = 0 to count - 1 do
    let cv = column j in
    let d = Array.make nv 0.0 in
    for i = nv - 1 downto 0 do
      let s = ref cv.(i) in
      for t = i + 1 to nv - 1 do
        s := !s -. (Linalg.Mat.unsafe_get l t i *. d.(t))
      done;
      d.(i) <- !s /. Linalg.Mat.unsafe_get l i i
    done;
    for i = 0 to nv - 1 do
      Linalg.Mat.unsafe_set vertex_coefficients i j d.(i)
    done
  done;
  { mesh; kernel; eigenvalues; vertex_coefficients }

type evaluator = { solution : solution; locator : Geometry.Locator.t }

let evaluator solution = { solution; locator = Geometry.Locator.create solution.mesh }

let eval_eigenfunction ev j p =
  let sol = ev.solution in
  if j < 0 || j >= Array.length sol.eigenvalues then
    invalid_arg "P1.eval_eigenfunction: index out of range";
  let t = Geometry.Locator.find_exn ev.locator p in
  let i, k, l = sol.mesh.Mesh.triangles.(t) in
  let tri = Mesh.triangle sol.mesh t in
  let wa, wb, wc = Geometry.Triangle.barycentric tri p in
  (wa *. Linalg.Mat.unsafe_get sol.vertex_coefficients i j)
  +. (wb *. Linalg.Mat.unsafe_get sol.vertex_coefficients k j)
  +. (wc *. Linalg.Mat.unsafe_get sol.vertex_coefficients l j)

let reconstruct_kernel ev ~r x y =
  let sol = ev.solution in
  let r = min r (Array.length sol.eigenvalues) in
  let acc = ref 0.0 in
  for j = 0 to r - 1 do
    acc :=
      !acc
      +. (sol.eigenvalues.(j) *. eval_eigenfunction ev j x *. eval_eigenfunction ev j y)
  done;
  !acc

let reconstruction_error_grid ?(grid = 41) ?fixed ev ~r =
  let domain = ev.solution.mesh.Mesh.domain in
  let fixed = match fixed with Some p -> p | None -> Geometry.Rect.center domain in
  let eps = 1e-9 in
  let shrunk =
    Geometry.Rect.make
      ~xmin:(domain.Geometry.Rect.xmin +. eps)
      ~xmax:(domain.Geometry.Rect.xmax -. eps)
      ~ymin:(domain.Geometry.Rect.ymin +. eps)
      ~ymax:(domain.Geometry.Rect.ymax -. eps)
  in
  let pts = Geometry.Rect.sample_grid shrunk ~nx:grid ~ny:grid in
  Array.fold_left
    (fun acc y ->
      let err =
        Float.abs
          (reconstruct_kernel ev ~r fixed y -. Kernel.eval ev.solution.kernel fixed y)
      in
      Float.max acc err)
    0.0 pts
