type t = {
  model : Model.t;
  locations : Geometry.Point.t array; (* the fixed query points, as given *)
  triangle_index : int array; (* location -> containing triangle *)
  b : Linalg.Mat.t; (* N_loc x r *)
}

let create ?diag model locations =
  let r = model.Model.r in
  Util.Trace.with_span
    ~attrs:
      [
        ("locations", string_of_int (Array.length locations));
        ("r", string_of_int r);
      ]
    "sampler.create"
  @@ fun () ->
  let coeffs = model.Model.solution.Galerkin.coefficients in
  let lams = model.Model.solution.Galerkin.eigenvalues in
  let sqrt_lams = Array.init r (fun j -> sqrt lams.(j)) in
  let clamped = ref 0 in
  let triangle_index =
    Array.map
      (fun p ->
        match Geometry.Locator.find model.Model.locator p with
        | Some tri -> tri
        | None ->
            incr clamped;
            Geometry.Locator.find_nearest model.Model.locator p)
      locations
  in
  if !clamped > 0 then
    Util.Diag.record ?sink:diag Warning `Out_of_domain ~stage:"kle.sampler.create"
      (Printf.sprintf
         "%d of %d locations fell outside the mesh (die-boundary placement); \
          clamped to their nearest triangles"
         !clamped (Array.length locations));
  let b =
    Linalg.Mat.init (Array.length locations) r (fun g j ->
        sqrt_lams.(j) *. Linalg.Mat.unsafe_get coeffs triangle_index.(g) j)
  in
  { model; locations = Array.copy locations; triangle_index; b }

let model t = t.model

let locations t = Array.copy t.locations

let dim t = Linalg.Mat.cols t.b

let location_count t = Linalg.Mat.rows t.b

let triangle_of_location t i = t.triangle_index.(i)

let expansion t = t.b

let sample_with_xi t rng =
  let xi = Prng.Gaussian.vector rng (dim t) in
  (Linalg.Mat.mul_vec t.b xi, xi)

let sample t rng = fst (sample_with_xi t rng)

let sample_matrix_with t ~xi =
  if Linalg.Mat.cols xi <> dim t then
    invalid_arg "Sampler.sample_matrix_with: xi width mismatch";
  Linalg.Mat.mul_nt xi t.b

(* The paper-literal Algorithm 2 expands over ALL mesh triangles and then
   gathers the location rows — O(n·r·n_triangles) for an O(n·r·N_loc)
   answer. Since B_gj = D_λ(t(g), j) by construction, routing through the
   precomputed N_loc×r expansion is the same floating-point product for each
   kept cell (bit-identical), just without computing the thrown-away rows;
   [paper_literal] keeps the original path as an ablation. *)
let sample_matrix ?(paper_literal = false) t rng ~n =
  Util.Trace.with_span
    ~attrs:[ ("n", string_of_int n) ]
    "sampler.sample_matrix"
  @@ fun () ->
  let r = dim t in
  let xi = Prng.Gaussian.matrix rng ~rows:n ~cols:r in
  if not paper_literal then sample_matrix_with t ~xi
  else begin
    (* paper-literal Algorithm 2: P_Δ = Ξ D_λᵀ over all triangles ... *)
    let d_lambda = Model.d_lambda t.model in
    let p_delta = Linalg.Mat.mul_nt xi d_lambda in
    (* ... then Row(i, P) <- Row(IndexOfContainingTriangle(g_i), P_Δ) *)
    let n_loc = location_count t in
    let n_tri = Linalg.Mat.cols p_delta in
    let p = Linalg.Mat.create n n_loc in
    let src = Linalg.Mat.raw p_delta and dst = Linalg.Mat.raw p in
    for i = 0 to n - 1 do
      let src_row = i * n_tri and dst_row = i * n_loc in
      for g = 0 to n_loc - 1 do
        Bigarray.Array1.unsafe_set dst (dst_row + g)
          (Bigarray.Array1.unsafe_get src
             (src_row + Array.unsafe_get t.triangle_index g))
      done
    done;
    p
  end

let sample_matrix_direct t rng ~n =
  let xi = Prng.Gaussian.matrix rng ~rows:n ~cols:(dim t) in
  (* P = Ξ Bᵀ, expanding only at the precomputed location rows *)
  Linalg.Mat.mul_nt xi t.b
