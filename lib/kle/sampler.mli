(** Field sampling at fixed die locations — the paper's Algorithm 2.

    A sampler precomputes, for a set of locations (gate positions), the
    [N_loc x r] matrix [B] with [B_gj = √λ_j d_{t(g),j}] where [t(g)] is the
    triangle containing location [g]. A field realization at all locations
    is then the single mat-vec [p = B ξ] with [ξ ~ N(0, I_r)]. *)

type t

val create : ?diag:Util.Diag.sink -> Model.t -> Geometry.Point.t array -> t
(** [create model locations] resolves each location to its containing
    triangle (nearest triangle for locations exactly on the die boundary)
    and builds [B]. Each clamp to a nearest triangle is counted and reported
    as one aggregate [`Out_of_domain] warning into [diag]. *)

val model : t -> Model.t

val locations : t -> Geometry.Point.t array
(** The query points given to {!create}, in order (a fresh copy) — lets a
    prepared sampler be persisted as [(model, locations)] and rebuilt
    bit-identically ({!Persist.Entity.sampler}). *)

val dim : t -> int
(** Number of reduced random variables [r]. *)

val location_count : t -> int

val triangle_of_location : t -> int -> int
(** Mesh triangle index backing each location (for tests/debugging). *)

val expansion : t -> Linalg.Mat.t
(** The [N_loc x r] matrix [B] with [B_gj = √λ_j d_{t(g),j}]: row [g] maps
    the reduced sample [ξ] to the field value at location [g]. Shared with
    block-based SSTA, which uses the same rows as per-gate parameter
    sensitivities. Aliases internal state — do not mutate. *)

val sample : t -> Prng.Rng.t -> float array
(** One field realization at all locations. *)

val sample_with_xi : t -> Prng.Rng.t -> float array * float array
(** [(field, xi)] — also exposes the reduced-space Gaussian sample. *)

val sample_matrix : ?paper_literal:bool -> t -> Prng.Rng.t -> n:int -> Linalg.Mat.t
(** [n] independent realizations as rows. By default the expansion goes
    through the precomputed [N_loc x r] matrix [B] ([O(n · r · N_loc)]);
    [~paper_literal:true] instead computes the paper's Algorithm 2 verbatim:
    expand to {e all mesh triangles} ([P_Δ = Ξ D_λᵀ], eq. 28), then gather
    each location's containing-triangle row —
    [O(n · r · n_triangles + n · N_loc)], the overhead the paper attributes
    to "the reconstruction in (28)". Both paths consume the same random
    stream and produce bit-identical matrices; the literal path exists as a
    cost ablation. *)

val sample_matrix_with : t -> xi:Linalg.Mat.t -> Linalg.Mat.t
(** Expand externally supplied reduced-space samples (rows of [xi], width
    [r]) to the locations — e.g. quasi-Monte Carlo points from
    [Prng.Lowdisc]. Raises [Invalid_argument] on width mismatch. *)

val sample_matrix_direct : t -> Prng.Rng.t -> n:int -> Linalg.Mat.t
(** Optimized variant that expands only at the locations' own triangles
    through the precomputed [N_loc x r] matrix ([O(n · r · N_loc)]); an
    ablation showing the reconstruction overhead is avoidable when the
    location set is fixed. Statistically identical to {!sample_matrix}. *)
