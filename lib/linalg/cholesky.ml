exception Not_positive_definite of int

module Ba = Bigarray.Array1

let factor_lower a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Cholesky.factor_lower: not square";
  let l = Mat.create n n in
  let ad = Mat.raw a and ld = Mat.raw l in
  for j = 0 to n - 1 do
    (* diagonal pivot *)
    let s = ref (Ba.unsafe_get ad ((j * n) + j)) in
    let jrow = j * n in
    for k = 0 to j - 1 do
      let v = Ba.unsafe_get ld (jrow + k) in
      s := !s -. (v *. v)
    done;
    if !s <= 0.0 then raise (Not_positive_definite j);
    let d = sqrt !s in
    Ba.unsafe_set ld (jrow + j) d;
    let inv_d = 1.0 /. d in
    for i = j + 1 to n - 1 do
      let irow = i * n in
      let s = ref (Ba.unsafe_get ad (irow + j)) in
      for k = 0 to j - 1 do
        s := !s -. (Ba.unsafe_get ld (irow + k) *. Ba.unsafe_get ld (jrow + k))
      done;
      Ba.unsafe_set ld (irow + j) (!s *. inv_d)
    done
  done;
  l

let factor_upper a = Mat.transpose (factor_lower a)

let factor_jittered ?(max_tries = 12) a =
  let n = Mat.rows a in
  Util.Trace.with_span
    ~attrs:[ ("n", string_of_int n) ]
    "cholesky.factor_jittered"
  @@ fun () ->
  (* scale jitter by the largest diagonal entry so it is meaningful for both
     unit-variance correlation matrices and raw covariances *)
  let diag_max = ref 0.0 in
  for i = 0 to n - 1 do
    diag_max := Float.max !diag_max (Float.abs (Mat.unsafe_get a i i))
  done;
  let base = Float.max !diag_max 1e-300 in
  let rec attempt tries jitter =
    let a' =
      if jitter = 0.0 then a
      else begin
        let a' = Mat.copy a in
        for i = 0 to n - 1 do
          Mat.unsafe_set a' i i (Mat.unsafe_get a' i i +. jitter)
        done;
        a'
      end
    in
    match factor_lower a' with
    | l -> (l, jitter)
    | exception Not_positive_definite j ->
        if tries >= max_tries then raise (Not_positive_definite j)
        else begin
          Util.Trace.incr Util.Trace.cholesky_jitter_retries;
          let jitter' = if jitter = 0.0 then base *. 1e-12 else jitter *. 10.0 in
          attempt (tries + 1) jitter'
        end
  in
  attempt 0 0.0

let solve l b =
  let n = Mat.rows l in
  if Array.length b <> n then invalid_arg "Cholesky.solve: length mismatch";
  (* forward substitution: l y = b *)
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (Mat.unsafe_get l i k *. y.(k))
    done;
    y.(i) <- !s /. Mat.unsafe_get l i i
  done;
  (* backward substitution: lᵀ x = y *)
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (Mat.unsafe_get l k i *. x.(k))
    done;
    x.(i) <- !s /. Mat.unsafe_get l i i
  done;
  x

let log_det l =
  let n = Mat.rows l in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. log (Mat.unsafe_get l i i)
  done;
  2.0 *. !acc
