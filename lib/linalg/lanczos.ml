exception No_convergence of { converged : int; wanted : int }

type result = {
  eigenvalues : float array;
  eigenvectors : float array array;
  iterations : int;
  residuals : float array;
}

(* deterministic start vector from a splitmix64 stream *)
let start_vector n seed =
  let state = ref (Int64.of_int (seed * 2654435761 + 1)) in
  let next () =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0
  in
  let v = Array.init n (fun _ -> next () -. 0.5) in
  Vec.normalize v

(* remove components of [v] along the first [m] rows of [basis], twice
   ("twice is enough" full reorthogonalization) *)
let reorthogonalize basis m v =
  for _pass = 1 to 2 do
    for i = 0 to m - 1 do
      let q = basis.(i) in
      let c = Vec.dot q v in
      if c <> 0.0 then Vec.axpy (-.c) q v
    done
  done

let top_k ~matvec ~n ~k ?(tol = 1e-9) ?max_dim ?(seed = 7) () =
  if k <= 0 || k > n then invalid_arg "Lanczos.top_k: need 0 < k <= n";
  Util.Trace.with_span
    ~attrs:[ ("n", string_of_int n); ("k", string_of_int k) ]
    "lanczos.top_k"
  @@ fun () ->
  let matvec v =
    Util.Trace.incr Util.Trace.matvecs;
    matvec v
  in
  let max_dim =
    match max_dim with Some m -> min m n | None -> min n ((4 * k) + 80)
  in
  let basis = Array.make max_dim [||] in
  let alpha = Array.make max_dim 0.0 in
  let beta = Array.make max_dim 0.0 in
  (* beta.(j) couples basis.(j-1) and basis.(j) *)
  basis.(0) <- start_vector n seed;
  let m = ref 0 in
  (* norm of the residual from the latest extension step; beta.(dim) is only
     stored while there is room for another basis vector, so this keeps the
     residual bound honest when the basis has grown to the full budget *)
  let last_beta = ref 0.0 in
  (* extend the Krylov basis to dimension [target] *)
  let extend target =
    while !m < target do
      let j = !m in
      let q = basis.(j) in
      let w = matvec q in
      if j > 0 then Vec.axpy (-.beta.(j)) basis.(j - 1) w;
      alpha.(j) <- Vec.dot q w;
      Vec.axpy (-.alpha.(j)) q w;
      reorthogonalize basis (j + 1) w;
      let b = Vec.norm2 w in
      m := j + 1;
      last_beta := b;
      if !m < max_dim then begin
        if b < 1e-13 then begin
          (* invariant subspace found: restart with a fresh orthogonal vector *)
          let v = start_vector n (seed + !m + 101) in
          reorthogonalize basis !m v;
          let nv = Vec.norm2 v in
          if nv < 1e-13 then m := max_dim (* whole space spanned *)
          else begin
            beta.(!m) <- 0.0;
            basis.(!m) <- Vec.scale (1.0 /. nv) v
          end
        end
        else begin
          beta.(!m) <- b;
          basis.(!m) <- Vec.scale (1.0 /. b) w
        end
      end
    done
  in
  (* Ritz extraction at current dimension; returns (values desc, tridiagonal
     eigenvector matrix, permutation, last beta) *)
  let ritz () =
    let dim = !m in
    let d = Array.sub alpha 0 dim in
    let e = Array.make dim 0.0 in
    for i = 1 to dim - 1 do
      e.(i) <- beta.(i)
    done;
    let z = Mat.identity dim in
    let d = Sym_eig.tridiag_ql_vectors d e z in
    let sorted, perm = Util.Arrayx.sort_desc_with_perm d in
    (sorted, z, perm)
  in
  let finished = ref None in
  let grow_step = max 16 (k / 2) in
  while !finished = None do
    let target = min max_dim (max (!m + grow_step) (min max_dim (2 * k))) in
    Util.Trace.with_span "lanczos.extend" (fun () -> extend target);
    let sorted, z, perm = Util.Trace.with_span "lanczos.ritz" ritz in
    let dim = !m in
    let beta_last = if dim < max_dim then beta.(dim) else !last_beta in
    let scale_ref = Float.max (Float.abs sorted.(0)) 1e-300 in
    let kk = min k dim in
    let residual i =
      (* classic Lanczos residual bound: |beta_m * s_{m,i}| *)
      Float.abs (beta_last *. Mat.get z (dim - 1) perm.(i))
    in
    let all_ok = ref (kk = k) in
    for i = 0 to kk - 1 do
      if residual i > tol *. scale_ref then all_ok := false
    done;
    if !all_ok || dim >= max_dim then begin
      if not !all_ok then begin
        let converged = ref 0 in
        (try
           for i = 0 to kk - 1 do
             if residual i <= tol *. scale_ref then incr converged else raise Exit
           done
         with Exit -> ());
        (* accept looser convergence at full budget only if reasonably tight *)
        let loose_ok = ref (kk = k) in
        for i = 0 to kk - 1 do
          if residual i > 1e-5 *. scale_ref then loose_ok := false
        done;
        if not !loose_ok then
          raise (No_convergence { converged = !converged; wanted = k })
      end;
      (* assemble Ritz vectors y_i = Q * s_i *)
      let vectors =
        Array.init kk (fun i ->
            let y = Array.make n 0.0 in
            for j = 0 to dim - 1 do
              let s = Mat.get z j perm.(i) in
              if s <> 0.0 then Vec.axpy s basis.(j) y
            done;
            y)
      in
      let residuals = Array.init kk residual in
      finished :=
        Some
          {
            eigenvalues = Array.sub sorted 0 kk;
            eigenvectors = vectors;
            iterations = dim;
            residuals;
          }
    end
  done;
  match !finished with
  | Some r ->
      Util.Trace.add Util.Trace.lanczos_iterations r.iterations;
      r
  | None -> assert false

let top_k_op ~op ~k ?tol ?max_dim ?seed () =
  top_k ~matvec:(Operator.apply op) ~n:(Operator.dim op) ~k ?tol ?max_dim ?seed
    ()
