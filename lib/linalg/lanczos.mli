(** Lanczos iteration with full reorthogonalization for the leading
    eigenpairs of a large symmetric (positive semi-definite) operator.

    This plays the role of MATLAB's [eigs] in the paper's experiments: the
    Galerkin eigenproblem only needs its first ~200 eigenpairs out of ~1546,
    and a Krylov method gets them at a fraction of the dense-solver cost. *)

exception No_convergence of { converged : int; wanted : int }
(** Raised when fewer than [wanted] Ritz pairs reach the residual tolerance
    within the iteration budget. *)

type result = {
  eigenvalues : float array; (* descending, length k *)
  eigenvectors : float array array; (* eigenvectors as rows, k of length n *)
  iterations : int; (* Krylov dimension actually built *)
  residuals : float array; (* residual bound per returned pair *)
}

val top_k :
  matvec:(float array -> float array) ->
  n:int ->
  k:int ->
  ?tol:float ->
  ?max_dim:int ->
  ?seed:int ->
  unit ->
  result
(** [top_k ~matvec ~n ~k ()] computes the [k] algebraically largest
    eigenpairs of the symmetric operator [matvec] on dimension [n].

    [tol] is the relative residual tolerance (default 1e-9, relative to the
    largest Ritz value). [max_dim] bounds the Krylov dimension (default
    [min n (4k + 80)]); the basis is grown adaptively until the wanted pairs
    converge. [seed] fixes the deterministic pseudo-random start vector.
    Raises [Invalid_argument] when [k > n] or [k <= 0]. *)

val top_k_op :
  op:Operator.t ->
  k:int ->
  ?tol:float ->
  ?max_dim:int ->
  ?seed:int ->
  unit ->
  result
(** {!top_k} over an {!Operator.t}: the matvec and dimension are taken from
    the operator, so assembled and matrix-free consumers share one entry
    point. *)
