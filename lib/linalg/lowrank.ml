(* Helpers for rank-revealing UVᵀ factorizations (ACA and friends).

   A rank-k factor pair is stored as two tall matrices u (m×k) and
   v (n×k), so the represented block is u·vᵀ. The helpers below are the
   pieces a cross-approximation loop needs: applying the factored block
   to (a slice of) a vector without materialising it, and tracking
   ‖u·vᵀ‖_F incrementally as columns are appended. *)

let apply_into ~u ~v ~x ~xoff ~y ~yoff =
  let m = Mat.rows u and n = Mat.rows v in
  let k = Mat.cols u in
  if Mat.cols v <> k then invalid_arg "Lowrank.apply_into: rank mismatch";
  if k > 0 then begin
    (* t = vᵀ · x[xoff .. xoff+n) — k temporaries, then y += u·t *)
    let t = Array.make k 0.0 in
    for j = 0 to n - 1 do
      let xj = Array.unsafe_get x (xoff + j) in
      if xj <> 0.0 then
        for c = 0 to k - 1 do
          Array.unsafe_set t c
            (Array.unsafe_get t c +. (Mat.unsafe_get v j c *. xj))
        done
    done;
    for i = 0 to m - 1 do
      let acc = ref 0.0 in
      for c = 0 to k - 1 do
        acc := !acc +. (Mat.unsafe_get u i c *. Array.unsafe_get t c)
      done;
      Array.unsafe_set y (yoff + i) (Array.unsafe_get y (yoff + i) +. !acc)
    done
  end

let apply ~u ~v x =
  let y = Array.make (Mat.rows u) 0.0 in
  apply_into ~u ~v ~x ~xoff:0 ~y ~yoff:0;
  y

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (Array.unsafe_get a i *. Array.unsafe_get b i)
  done;
  !acc

let norm2 a = dot a a

(* ‖Σ u_c v_cᵀ + u·vᵀ‖² = ‖Σ u_c v_cᵀ‖² + ‖u‖²‖v‖² + 2 Σ_c (u·u_c)(v·v_c):
   the incremental Frobenius update a cross-approximation stopping rule
   needs, without touching the m×n block *)
let cross_norm2_increment ~us ~vs ~u ~v =
  let acc = ref (norm2 u *. norm2 v) in
  List.iter2
    (fun uc vc -> acc := !acc +. (2.0 *. dot u uc *. dot v vc))
    us vs;
  !acc

let of_columns ~rows cols =
  let k = List.length cols in
  let m = Mat.create rows k in
  List.iteri
    (fun c col ->
      if Array.length col <> rows then
        invalid_arg "Lowrank.of_columns: column length mismatch";
      for i = 0 to rows - 1 do
        Mat.unsafe_set m i c (Array.unsafe_get col i)
      done)
    cols;
  m

let words ~u ~v = (Mat.rows u + Mat.rows v) * Mat.cols u
