(** Rank-revealing UVᵀ factor helpers.

    A rank-k block factorization is a pair of tall matrices [u] (m×k) and
    [v] (n×k) representing [u·vᵀ] without ever materialising the m×n
    block — the storage and matvec shape produced by adaptive cross
    approximation ({!Kle.Aca}) and consumed by the hierarchical operator
    ({!Kle.Hmatrix}). *)

val apply : u:Mat.t -> v:Mat.t -> float array -> float array
(** [apply ~u ~v x] is [u·(vᵀ·x)]: length [rows v] input, length [rows u]
    output, [2k(m+n)] flops for rank [k]. *)

val apply_into :
  u:Mat.t -> v:Mat.t -> x:float array -> xoff:int -> y:float array -> yoff:int -> unit
(** [apply_into ~u ~v ~x ~xoff ~y ~yoff] accumulates
    [y[yoff..yoff+m) += u·(vᵀ·x[xoff..xoff+n))] — the slice-to-slice form
    used when the factored block sits inside a larger permuted vector.
    Raises [Invalid_argument] when [u] and [v] disagree on rank. *)

val dot : float array -> float array -> float
val norm2 : float array -> float
(** Squared Euclidean norm. *)

val cross_norm2_increment :
  us:float array list -> vs:float array list -> u:float array -> v:float array -> float
(** The exact increase of [‖Σ_c u_c v_cᵀ‖²_F] when appending the rank-one
    term [u·vᵀ] to the columns [us]/[vs]:
    [‖u‖²‖v‖² + 2 Σ_c (u·u_c)(v·v_c)]. Lets an ACA loop maintain the
    Frobenius norm of its running approximation in O(k(m+n)) per step. *)

val of_columns : rows:int -> float array list -> Mat.t
(** [of_columns ~rows cols] packs the column list (each of length [rows],
    oldest first) into a [rows × length cols] matrix. Raises
    [Invalid_argument] on a length mismatch. *)

val words : u:Mat.t -> v:Mat.t -> int
(** Stored floats of the factor pair: [(m + n)·k]. *)
