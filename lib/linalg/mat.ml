type ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { rows : int; cols : int; data : ba }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (rows * cols) in
  Bigarray.Array1.fill data 0.0;
  { rows; cols; data }

let rows m = m.rows
let cols m = m.cols

let check_bounds m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Mat: index (%d, %d) out of bounds for %dx%d" i j m.rows m.cols)

let get m i j =
  check_bounds m i j;
  Bigarray.Array1.unsafe_get m.data ((i * m.cols) + j)

let set m i j v =
  check_bounds m i j;
  Bigarray.Array1.unsafe_set m.data ((i * m.cols) + j) v

let unsafe_get m i j = Bigarray.Array1.unsafe_get m.data ((i * m.cols) + j)
let unsafe_set m i j v = Bigarray.Array1.unsafe_set m.data ((i * m.cols) + j) v

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      unsafe_set m i j (f i j)
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let copy m =
  let m' = create m.rows m.cols in
  Bigarray.Array1.blit m.data m'.data;
  m'

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then create 0 0
  else begin
    let cols = Array.length a.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged rows")
      a;
    init rows cols (fun i j -> a.(i).(j))
  end

let to_arrays m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> unsafe_get m i j))

let find_non_finite m =
  let n = m.rows * m.cols in
  let rec scan idx =
    if idx >= n then None
    else if Float.is_finite (Bigarray.Array1.unsafe_get m.data idx) then scan (idx + 1)
    else Some (idx / m.cols, idx mod m.cols)
  in
  if m.cols = 0 then None else scan 0

let is_finite m = find_non_finite m = None

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Mat.row: out of bounds";
  Array.init m.cols (fun j -> unsafe_get m i j)

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Mat.col: out of bounds";
  Array.init m.rows (fun i -> unsafe_get m i j)

let set_row m i r =
  if i < 0 || i >= m.rows then invalid_arg "Mat.set_row: out of bounds";
  if Array.length r <> m.cols then invalid_arg "Mat.set_row: length mismatch";
  for j = 0 to m.cols - 1 do
    unsafe_set m i j (Array.unsafe_get r j)
  done

let transpose m = init m.cols m.rows (fun i j -> unsafe_get m j i)

let check_same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Mat.%s: shape mismatch" name)

let add a b =
  check_same_shape "add" a b;
  init a.rows a.cols (fun i j -> unsafe_get a i j +. unsafe_get b i j)

let sub a b =
  check_same_shape "sub" a b;
  init a.rows a.cols (fun i j -> unsafe_get a i j -. unsafe_get b i j)

let scale s m = init m.rows m.cols (fun i j -> s *. unsafe_get m i j)

(* Row blocks above this many flops are fanned out over the domain pool;
   each output row is produced by exactly one domain, so the result is
   bit-identical to the sequential loop for any pool size. *)
let parallel_flops = 1 lsl 20

(* Products below this many multiply-adds only bump the flop counter;
   above it they also get their own span, so traces stay readable while
   the covariance-sized products remain visible. *)
let traced_work = 4_000_000

let traced_mul name ~m ~n ~k f =
  let work = m * n * k in
  Util.Trace.add Util.Trace.matmul_flops (2 * work);
  if work >= traced_work && Util.Trace.enabled () then
    Util.Trace.with_span
      ~attrs:[ ("dims", Printf.sprintf "%dx%dx%d" m n k) ]
      name f
  else f ()

(* i-k-j loop order keeps the inner loop streaming over contiguous rows of
   both [b] and the accumulator, which matters at covariance-matrix sizes. *)
let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: inner dimension mismatch";
  traced_mul "mat.mul" ~m:a.rows ~n:b.cols ~k:a.cols @@ fun () ->
  let c = create a.rows b.cols in
  let bc = b.cols in
  let rows lo hi =
    for i = lo to hi - 1 do
      let ci = i * bc in
      for k = 0 to a.cols - 1 do
        let aik = unsafe_get a i k in
        if aik <> 0.0 then begin
          let bk = k * bc in
          for j = 0 to bc - 1 do
            Bigarray.Array1.unsafe_set c.data (ci + j)
              (Bigarray.Array1.unsafe_get c.data (ci + j)
              +. (aik *. Bigarray.Array1.unsafe_get b.data (bk + j)))
          done
        end
      done
    done
  in
  if a.rows > 1 && a.rows * a.cols * bc >= parallel_flops then
    Util.Pool.parallel_for (Util.Pool.default ()) ~n:a.rows rows
  else rows 0 a.rows;
  c

(* [a * bᵀ] without materializing the transpose: both operands are scanned
   along contiguous rows, k-blocked so the active row panels stay
   cache-resident at covariance sizes. Per-cell additions run in the same
   ascending-k order as [mul a (transpose b)] (zero [a] entries skipped the
   same way), so the two spellings are bit-identical. *)
let mul_nt_block = 256

let mul_nt a b =
  if a.cols <> b.cols then invalid_arg "Mat.mul_nt: inner dimension mismatch";
  traced_mul "mat.mul_nt" ~m:a.rows ~n:b.rows ~k:a.cols @@ fun () ->
  let c = create a.rows b.rows in
  let kk = a.cols in
  let bn = b.rows in
  let rows lo hi =
    for i = lo to hi - 1 do
      let ai = i * kk in
      let ci = i * bn in
      let k0 = ref 0 in
      while !k0 < kk do
        let k1 = min kk (!k0 + mul_nt_block) in
        for j = 0 to bn - 1 do
          let bj = j * kk in
          let acc = ref (Bigarray.Array1.unsafe_get c.data (ci + j)) in
          for k = !k0 to k1 - 1 do
            let aik = Bigarray.Array1.unsafe_get a.data (ai + k) in
            if aik <> 0.0 then
              acc := !acc +. (aik *. Bigarray.Array1.unsafe_get b.data (bj + k))
          done;
          Bigarray.Array1.unsafe_set c.data (ci + j) !acc
        done;
        k0 := k1
      done
    done
  in
  if a.rows > 1 && a.rows * kk * bn >= parallel_flops then
    Util.Pool.parallel_for (Util.Pool.default ()) ~n:a.rows rows
  else rows 0 a.rows;
  c

let mul_vec m x =
  if Array.length x <> m.cols then invalid_arg "Mat.mul_vec: length mismatch";
  let y = Array.make m.rows 0.0 in
  let rows lo hi =
    for i = lo to hi - 1 do
      let base = i * m.cols in
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc :=
          !acc
          +. (Bigarray.Array1.unsafe_get m.data (base + j) *. Array.unsafe_get x j)
      done;
      y.(i) <- !acc
    done
  in
  if m.rows > 1 && m.rows * m.cols >= parallel_flops then
    Util.Pool.parallel_for (Util.Pool.default ()) ~n:m.rows rows
  else rows 0 m.rows;
  y

let mul_vec_transposed m x =
  if Array.length x <> m.rows then
    invalid_arg "Mat.mul_vec_transposed: length mismatch";
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let xi = Array.unsafe_get x i in
    if xi <> 0.0 then begin
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        Array.unsafe_set y j
          (Array.unsafe_get y j
          +. (xi *. Bigarray.Array1.unsafe_get m.data (base + j)))
      done
    end
  done;
  y

let sym_mul_vec = mul_vec

let trace m =
  if m.rows <> m.cols then invalid_arg "Mat.trace: not square";
  let acc = ref 0.0 in
  for i = 0 to m.rows - 1 do
    acc := !acc +. unsafe_get m i i
  done;
  !acc

let max_abs_diff a b =
  check_same_shape "max_abs_diff" a b;
  let acc = ref 0.0 in
  for i = 0 to (a.rows * a.cols) - 1 do
    acc :=
      Float.max !acc
        (Float.abs
           (Bigarray.Array1.unsafe_get a.data i
           -. Bigarray.Array1.unsafe_get b.data i))
  done;
  !acc

let is_symmetric ?(tol = 1e-10) m =
  if m.rows <> m.cols then false
  else begin
    let scale_ref = ref 1.0 in
    for i = 0 to (m.rows * m.cols) - 1 do
      scale_ref := Float.max !scale_ref (Float.abs (Bigarray.Array1.unsafe_get m.data i))
    done;
    let ok = ref true in
    (try
       for i = 0 to m.rows - 1 do
         for j = i + 1 to m.cols - 1 do
           if Float.abs (unsafe_get m i j -. unsafe_get m j i) > tol *. !scale_ref
           then begin
             ok := false;
             raise Exit
           end
         done
       done
     with Exit -> ());
    !ok
  end

let frobenius_norm m =
  let acc = ref 0.0 in
  for i = 0 to (m.rows * m.cols) - 1 do
    let v = Bigarray.Array1.unsafe_get m.data i in
    acc := !acc +. (v *. v)
  done;
  sqrt !acc

let words m = m.rows * m.cols

let raw m = m.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%.6g" (unsafe_get m i j)
    done;
    Format.fprintf ppf "]@,"
  done;
  Format.fprintf ppf "@]"
