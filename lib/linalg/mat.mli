(** Dense row-major float64 matrices backed by a flat [Bigarray], sized for
    the covariance matrices of the Monte Carlo reference sampler (up to
    ~20k x 20k when memory permits). *)

type t

val create : int -> int -> t
(** [create rows cols] is a zero matrix. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val unsafe_get : t -> int -> int -> float
val unsafe_set : t -> int -> int -> float -> unit

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] fills entry [(i, j)] with [f i j]. *)

val identity : int -> t

val copy : t -> t

val of_arrays : float array array -> t
(** Rows from a rectangular array-of-arrays. Raises [Invalid_argument] on
    ragged input. *)

val to_arrays : t -> float array array

val row : t -> int -> float array
(** [row m i] is a fresh copy of row [i]. *)

val col : t -> int -> float array
(** [col m j] is a fresh copy of column [j]. *)

val set_row : t -> int -> float array -> unit

val transpose : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product. Raises [Invalid_argument] on dimension mismatch. *)

val mul_nt : t -> t -> t
(** [mul_nt a b] is [a * bᵀ] without materializing the transpose: both
    operands stream along contiguous rows (k-blocked), which is the
    cache-friendly orientation for the sampler's [Ξ·D_λᵀ] products.
    Bit-identical to [mul a (transpose b)]. Raises [Invalid_argument] when
    [cols a <> cols b]. *)

val mul_vec : t -> float array -> float array
(** [mul_vec m x] is [m * x]. *)

val mul_vec_transposed : t -> float array -> float array
(** [mul_vec_transposed m x] is [mᵀ * x], without forming the transpose. *)

val sym_mul_vec : t -> float array -> float array
(** [sym_mul_vec m x] is [m * x] assuming [m] symmetric; same as [mul_vec]
    but documents intent at Lanczos call sites. *)

val trace : t -> float
(** Sum of diagonal entries of a square matrix. *)

val find_non_finite : t -> (int * int) option
(** Position [(i, j)] of the first (row-major) NaN/inf entry, if any — the
    shared primitive behind the pipeline's non-finite guards. *)

val is_finite : t -> bool
(** [find_non_finite m = None]. *)

val max_abs_diff : t -> t -> float
(** Maximum entry-wise absolute difference of equal-shaped matrices. *)

val is_symmetric : ?tol:float -> t -> bool
(** True when [|m - mᵀ|] is entry-wise below [tol] (default 1e-10), scaled by
    the magnitude of the entries. *)

val frobenius_norm : t -> float

val words : t -> int
(** Number of float64 cells — for memory-guard arithmetic. *)

val raw : t -> (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The underlying row-major buffer (entry [(i, j)] at [i * cols + j]).
    Performance escape hatch: without cross-module inlining, per-element
    accessor calls dominate O(n³) kernels, so the factorization and sampling
    hot loops index the buffer directly. Mutations alias the matrix. *)

val pp : Format.formatter -> t -> unit
(** Debug printer (small matrices only). *)
