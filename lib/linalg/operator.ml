type t =
  | Dense of Mat.t
  | Matrix_free of { apply : float array -> float array; dim : int }

let of_mat m =
  if Mat.rows m <> Mat.cols m then invalid_arg "Operator.of_mat: not square";
  Dense m

let matrix_free ~dim apply =
  if dim < 0 then invalid_arg "Operator.matrix_free: negative dimension";
  Matrix_free { apply; dim }

let dim = function
  | Dense m -> Mat.rows m
  | Matrix_free { dim; _ } -> dim

let apply t x =
  match t with
  | Dense m -> Mat.sym_mul_vec m x
  | Matrix_free { apply; dim } ->
      if Array.length x <> dim then
        invalid_arg "Operator.apply: vector length mismatch";
      apply x
