(** A symmetric linear operator, either as an assembled matrix or as a
    matrix-free [apply] closure.

    The Krylov eigensolver ({!Lanczos}) only ever touches an operator
    through matrix-vector products, so a caller that can compute [A·x] on
    the fly — e.g. the Galerkin correlation operator, whose entries are
    cheap kernel evaluations — never needs to materialize the O(n²) matrix.
    [Dense] keeps the assembled path available behind the same interface. *)

type t =
  | Dense of Mat.t  (** an assembled symmetric matrix *)
  | Matrix_free of { apply : float array -> float array; dim : int }
      (** [apply x = A·x] for a symmetric operator of dimension [dim];
          [apply] must return a fresh array and must not retain [x] *)

val of_mat : Mat.t -> t
(** [of_mat m] wraps a square matrix. Raises [Invalid_argument] when [m] is
    not square. Symmetry is the caller's contract, as with
    {!Mat.sym_mul_vec}. *)

val matrix_free : dim:int -> (float array -> float array) -> t
(** [matrix_free ~dim apply] wraps a matvec closure. *)

val dim : t -> int

val apply : t -> float array -> float array
(** One matrix-vector product. Raises [Invalid_argument] on a length
    mismatch (for [Dense], via {!Mat.mul_vec}'s own check). *)
