type t = {
  n : int;
  row_start : int array; (* length n + 1 *)
  cols : int array;
  values : float array;
}

let of_triplets ~n entries =
  if n < 0 then invalid_arg "Sparse.of_triplets: negative dimension";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Sparse.of_triplets: index out of range")
    entries;
  (* combine duplicates *)
  let tbl = Hashtbl.create (List.length entries) in
  List.iter
    (fun (i, j, v) ->
      let key = (i, j) in
      Hashtbl.replace tbl key (v +. Option.value ~default:0.0 (Hashtbl.find_opt tbl key)))
    entries;
  let per_row = Array.make n [] in
  Hashtbl.iter (fun (i, j) v -> if v <> 0.0 then per_row.(i) <- (j, v) :: per_row.(i)) tbl;
  let row_start = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_start.(i + 1) <- row_start.(i) + List.length per_row.(i)
  done;
  let nnz = row_start.(n) in
  let cols = Array.make nnz 0 in
  let values = Array.make nnz 0.0 in
  for i = 0 to n - 1 do
    let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) per_row.(i) in
    List.iteri
      (fun k (j, v) ->
        cols.(row_start.(i) + k) <- j;
        values.(row_start.(i) + k) <- v)
      sorted
  done;
  { n; row_start; cols; values }

let dim t = t.n

let nnz t = t.row_start.(t.n)

let mul_vec t x =
  if Array.length x <> t.n then invalid_arg "Sparse.mul_vec: length mismatch";
  let y = Array.make t.n 0.0 in
  for i = 0 to t.n - 1 do
    let acc = ref 0.0 in
    for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
      acc :=
        !acc
        +. (Array.unsafe_get t.values k
           *. Array.unsafe_get x (Array.unsafe_get t.cols k))
    done;
    y.(i) <- !acc
  done;
  y

let diagonal t =
  let d = Array.make t.n 0.0 in
  for i = 0 to t.n - 1 do
    for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
      if t.cols.(k) = i then d.(i) <- t.values.(k)
    done
  done;
  d

let to_dense t =
  let m = Mat.create t.n t.n in
  for i = 0 to t.n - 1 do
    for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
      Mat.set m i t.cols.(k) t.values.(k)
    done
  done;
  m

let is_symmetric ?(tol = 1e-12) t =
  let get i j =
    let rec scan k =
      if k >= t.row_start.(i + 1) then 0.0
      else if t.cols.(k) = j then t.values.(k)
      else scan (k + 1)
    in
    scan t.row_start.(i)
  in
  let ok = ref true in
  (try
     for i = 0 to t.n - 1 do
       for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
         let j = t.cols.(k) in
         if Float.abs (t.values.(k) -. get j i) > tol then begin
           ok := false;
           raise Exit
         end
       done
     done
   with Exit -> ());
  !ok
