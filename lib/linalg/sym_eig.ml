(* Householder tridiagonalization (tred2) + implicit-shift QL (tql2),
   translated from the EISPACK/Numerical-Recipes formulation to 0-based
   indexing. The matrix [z] holds the accumulated transformations; after QL
   its columns are the eigenvectors. *)

exception No_convergence of int

let pythag a b =
  let absa = Float.abs a and absb = Float.abs b in
  if absa > absb then begin
    let r = absb /. absa in
    absa *. sqrt (1.0 +. (r *. r))
  end
  else if absb = 0.0 then 0.0
  else begin
    let r = absa /. absb in
    absb *. sqrt (1.0 +. (r *. r))
  end

(* Reduce the symmetric matrix held in [z] to tridiagonal form, storing the
   diagonal in [d], the sub-diagonal in [e] (with e.(0) = 0), and leaving the
   orthogonal transformation accumulated in [z] when [vectors] is true. *)
let tred2 ~vectors z d e =
  let n = Array.length d in
  for i = n - 1 downto 1 do
    let l = i - 1 in
    let h = ref 0.0 in
    let scale = ref 0.0 in
    if l > 0 then begin
      for k = 0 to l do
        scale := !scale +. Float.abs (Mat.unsafe_get z i k)
      done;
      if !scale = 0.0 then e.(i) <- Mat.unsafe_get z i l
      else begin
        for k = 0 to l do
          let v = Mat.unsafe_get z i k /. !scale in
          Mat.unsafe_set z i k v;
          h := !h +. (v *. v)
        done;
        let f = Mat.unsafe_get z i l in
        let g = if f >= 0.0 then -.sqrt !h else sqrt !h in
        e.(i) <- !scale *. g;
        h := !h -. (f *. g);
        Mat.unsafe_set z i l (f -. g);
        let f_acc = ref 0.0 in
        for j = 0 to l do
          if vectors then Mat.unsafe_set z j i (Mat.unsafe_get z i j /. !h);
          let g = ref 0.0 in
          for k = 0 to j do
            g := !g +. (Mat.unsafe_get z j k *. Mat.unsafe_get z i k)
          done;
          for k = j + 1 to l do
            g := !g +. (Mat.unsafe_get z k j *. Mat.unsafe_get z i k)
          done;
          e.(j) <- !g /. !h;
          f_acc := !f_acc +. (e.(j) *. Mat.unsafe_get z i j)
        done;
        let hh = !f_acc /. (!h +. !h) in
        for j = 0 to l do
          let f = Mat.unsafe_get z i j in
          let g = e.(j) -. (hh *. f) in
          e.(j) <- g;
          for k = 0 to j do
            Mat.unsafe_set z j k
              (Mat.unsafe_get z j k -. ((f *. e.(k)) +. (g *. Mat.unsafe_get z i k)))
          done
        done
      end
    end
    else e.(i) <- Mat.unsafe_get z i l;
    d.(i) <- !h
  done;
  if vectors then d.(0) <- 0.0;
  e.(0) <- 0.0;
  for i = 0 to n - 1 do
    if vectors then begin
      let l = i - 1 in
      if d.(i) <> 0.0 then
        for j = 0 to l do
          let g = ref 0.0 in
          for k = 0 to l do
            g := !g +. (Mat.unsafe_get z i k *. Mat.unsafe_get z k j)
          done;
          for k = 0 to l do
            Mat.unsafe_set z k j (Mat.unsafe_get z k j -. (!g *. Mat.unsafe_get z k i))
          done
        done;
      d.(i) <- Mat.unsafe_get z i i;
      Mat.unsafe_set z i i 1.0;
      for j = 0 to l do
        Mat.unsafe_set z j i 0.0;
        Mat.unsafe_set z i j 0.0
      done
    end
    else d.(i) <- Mat.unsafe_get z i i
  done

(* QL with implicit shifts on the tridiagonal (d, e); rotations applied to
   the columns of [z] when present. *)
let tql2 ?z d e =
  let n = Array.length d in
  let eps = epsilon_float in
  for i = 1 to n - 1 do
    e.(i - 1) <- e.(i)
  done;
  e.(n - 1) <- 0.0;
  (* overall scale: numerically-low-rank matrices (e.g. smooth-kernel Gram
     matrices) leave whole tridiagonal blocks at rounding-noise level
     (|d|, |e| ~ eps²·‖A‖); a purely local deflation test never fires there,
     so — as LAPACK does — also deflate couplings negligible relative to the
     matrix norm. Backward stable: perturbs eigenvalues by O(eps·‖A‖). *)
  let anorm = ref 0.0 in
  for i = 0 to n - 1 do
    anorm := Float.max !anorm (Float.abs d.(i) +. Float.abs e.(i))
  done;
  let anorm = !anorm in
  for l = 0 to n - 1 do
    let iter = ref 0 in
    let continue_outer = ref true in
    while !continue_outer do
      (* find a negligible sub-diagonal element *)
      let m = ref l in
      (try
         while !m < n - 1 do
           let dd = Float.abs d.(!m) +. Float.abs d.(!m + 1) in
           if Float.abs e.(!m) <= eps *. (dd +. anorm) then raise Exit;
           incr m
         done
       with Exit -> ());
      if !m = l then continue_outer := false
      else begin
        incr iter;
        if !iter > 50 then raise (No_convergence l);
        let g = ref ((d.(l + 1) -. d.(l)) /. (2.0 *. e.(l))) in
        let r = ref (pythag !g 1.0) in
        let sign_r = if !g >= 0.0 then Float.abs !r else -.Float.abs !r in
        g := d.(!m) -. d.(l) +. (e.(l) /. (!g +. sign_r));
        let s = ref 1.0 and c = ref 1.0 and p = ref 0.0 in
        let broke = ref false in
        let i = ref (!m - 1) in
        while (not !broke) && !i >= l do
          let f = !s *. e.(!i) in
          let b = !c *. e.(!i) in
          r := pythag f !g;
          e.(!i + 1) <- !r;
          if !r = 0.0 then begin
            d.(!i + 1) <- d.(!i + 1) -. !p;
            e.(!m) <- 0.0;
            broke := true
          end
          else begin
            s := f /. !r;
            c := !g /. !r;
            let g' = d.(!i + 1) -. !p in
            let r' = ((d.(!i) -. g') *. !s) +. (2.0 *. !c *. b) in
            p := !s *. r';
            d.(!i + 1) <- g' +. !p;
            g := (!c *. r') -. b;
            (match z with
            | None -> ()
            | Some z ->
                let nz = Mat.rows z in
                for k = 0 to nz - 1 do
                  let f = Mat.unsafe_get z k (!i + 1) in
                  Mat.unsafe_set z k (!i + 1)
                    ((!s *. Mat.unsafe_get z k !i) +. (!c *. f));
                  Mat.unsafe_set z k !i ((!c *. Mat.unsafe_get z k !i) -. (!s *. f))
                done);
            decr i
          end
        done;
        if not !broke then begin
          d.(l) <- d.(l) -. !p;
          e.(l) <- !g;
          e.(!m) <- 0.0
        end
      end
    done
  done

let eig a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Sym_eig.eig: not square";
  Util.Trace.with_span ~attrs:[ ("n", string_of_int n) ] "sym_eig.eig"
  @@ fun () ->
  (* work on the symmetric part to be robust against tiny asymmetries *)
  let z = Mat.init n n (fun i j -> 0.5 *. (Mat.get a i j +. Mat.get a j i)) in
  let d = Array.make n 0.0 in
  let e = Array.make n 0.0 in
  tred2 ~vectors:true z d e;
  tql2 ~z d e;
  (* sort eigenpairs in descending eigenvalue order *)
  let sorted, perm = Util.Arrayx.sort_desc_with_perm d in
  let q = Mat.init n n (fun i j -> Mat.unsafe_get z i perm.(j)) in
  (sorted, q)

let eig_values a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Sym_eig.eig_values: not square";
  let z = Mat.init n n (fun i j -> 0.5 *. (Mat.get a i j +. Mat.get a j i)) in
  let d = Array.make n 0.0 in
  let e = Array.make n 0.0 in
  tred2 ~vectors:false z d e;
  tql2 d e;
  let sorted, _ = Util.Arrayx.sort_desc_with_perm d in
  sorted

let tridiag_ql d e =
  tql2 d e;
  Array.sort Float.compare d;
  d

let tridiag_ql_vectors d e z =
  tql2 ~z d e;
  d
