exception Error of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* ---------------------------------------------------------------- *)
(* writing *)

type writer = Buffer.t

let writer () = Buffer.create 256
let contents = Buffer.contents

let write_u8 b v =
  if v < 0 || v > 255 then invalid_arg "Codec.write_u8: out of range";
  Buffer.add_char b (Char.chr v)

let write_uint b v =
  if v < 0 then invalid_arg "Codec.write_uint: negative";
  let rec loop v =
    if v < 0x80 then Buffer.add_char b (Char.chr v)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (v land 0x7f)));
      loop (v lsr 7)
    end
  in
  loop v

(* zigzag maps small-magnitude signed ints to small varints. The zigzagged
   value of [min_int]/[max_int] has the OCaml sign bit set, so the varint
   loop below treats it as unsigned ([lsr] keeps the top bit logical)
   instead of going through {!write_uint}'s negativity check. *)
let write_int b v =
  let rec loop v =
    if v >= 0 && v < 0x80 then Buffer.add_char b (Char.chr v)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (v land 0x7f)));
      loop (v lsr 7)
    end
  in
  loop ((v lsl 1) lxor (v asr (Sys.int_size - 1)))
let write_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let write_fixed64 b bits =
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let write_float b v = write_fixed64 b (Int64.bits_of_float v)

let write_fixed32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.write_fixed32: out of range";
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let write_string b s =
  write_uint b (String.length s);
  Buffer.add_string b s

let write_option b f = function
  | None -> write_bool b false
  | Some v ->
      write_bool b true;
      f b v

let write_array b f a =
  write_uint b (Array.length a);
  Array.iter (fun v -> f b v) a

let write_float_array b a = write_array b write_float a
let write_int_array b a = write_array b write_int a

(* ---------------------------------------------------------------- *)
(* reading *)

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }
let pos r = r.pos
let remaining r = String.length r.data - r.pos

let read_u8 r =
  if r.pos >= String.length r.data then corrupt "unexpected end of input at byte %d" r.pos;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let read_uint r =
  let rec loop shift acc =
    if shift > Sys.int_size then corrupt "varint overflow at byte %d" r.pos;
    let byte = read_u8 r in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let read_int r =
  let z = read_uint r in
  (z lsr 1) lxor (-(z land 1))

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> corrupt "invalid bool byte %d at offset %d" v (r.pos - 1)

let read_fixed64 r =
  if remaining r < 8 then corrupt "truncated 64-bit field at byte %d" r.pos;
  let bits = ref 0L in
  for i = 7 downto 0 do
    bits :=
      Int64.logor
        (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code r.data.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  !bits

let read_float r = Int64.float_of_bits (read_fixed64 r)

let read_fixed32 r =
  if remaining r < 4 then corrupt "truncated 32-bit field at byte %d" r.pos;
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code r.data.[r.pos + i]
  done;
  r.pos <- r.pos + 4;
  !v

let read_string r =
  let n = read_uint r in
  if remaining r < n then corrupt "truncated string (%d bytes) at byte %d" n r.pos;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_option r f = if read_bool r then Some (f r) else None

let read_array r f =
  let n = read_uint r in
  (* guard against absurd lengths from corrupt headers before allocating *)
  if n > remaining r then corrupt "array length %d exceeds remaining input" n;
  Array.init n (fun _ -> f r)

let read_float_array r = read_array r read_float
let read_int_array r = read_array r read_int

let expect_end r =
  if remaining r > 0 then corrupt "%d trailing bytes after payload" (remaining r)

(* ---------------------------------------------------------------- *)
(* FNV-1a 64 *)

let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let fnv64_hex s = Printf.sprintf "%016Lx" (fnv64 s)
