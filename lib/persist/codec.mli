(** Explicit, versioned binary encoding primitives.

    This is deliberately {e not} [Marshal]: every byte written is produced
    by an explicit rule below, so the on-disk format is stable across
    compiler versions, checkable (a decoder can never segfault on corrupt
    input — it raises {!Error}), and evolvable behind the entity versions
    of {!Entity}. Integers use LEB128 varints (zigzag for signed values),
    floats are IEEE-754 bit patterns in little-endian order (exact
    round-trip of every finite and non-finite value), strings and arrays
    are length-prefixed. *)

exception Error of string
(** Raised by every [read_*] function on truncated or malformed input.
    Callers (the {!Store}) map it to a typed [`Degraded_fallback]
    diagnostic and recompute. *)

(** {1 Writing} *)

type writer

val writer : unit -> writer
val contents : writer -> string

val write_u8 : writer -> int -> unit
(** Single byte; raises [Invalid_argument] outside [0, 255]. *)

val write_uint : writer -> int -> unit
(** Unsigned LEB128 varint; raises [Invalid_argument] on negatives. *)

val write_int : writer -> int -> unit
(** Zigzag LEB128 varint (any OCaml int). *)

val write_bool : writer -> bool -> unit
val write_float : writer -> float -> unit
val write_fixed64 : writer -> int64 -> unit

val write_fixed32 : writer -> int -> unit
(** Fixed-width unsigned 32-bit little-endian — the wire framing's length
    field, where a self-delimiting varint would complicate header reads;
    raises [Invalid_argument] outside [0, 2^32). *)

val write_string : writer -> string -> unit

val write_option : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val write_array : writer -> (writer -> 'a -> unit) -> 'a array -> unit
val write_float_array : writer -> float array -> unit
val write_int_array : writer -> int array -> unit

(** {1 Reading} *)

type reader

val reader : string -> reader
(** A cursor over the whole string, starting at offset 0. *)

val pos : reader -> int
val remaining : reader -> int

val read_u8 : reader -> int
val read_uint : reader -> int
val read_int : reader -> int
val read_bool : reader -> bool
val read_float : reader -> float
val read_fixed64 : reader -> int64
val read_fixed32 : reader -> int
val read_string : reader -> string

val read_option : reader -> (reader -> 'a) -> 'a option
val read_array : reader -> (reader -> 'a) -> 'a array
val read_float_array : reader -> float array
val read_int_array : reader -> int array

val expect_end : reader -> unit
(** Raises {!Error} when bytes remain — trailing garbage is corruption. *)

(** {1 Checksum} *)

val fnv64 : string -> int64
(** FNV-1a 64-bit hash of the whole string — the store's payload checksum
    and content-address hash. *)

val fnv64_hex : string -> string
(** {!fnv64} rendered as 16 lowercase hex digits. *)
