type node = { kind : string; hash : string }

type t = { store : Store.t; lock : Mutex.t }

let create store = { store; lock = Mutex.create () }
let store t = t.store

let node (entity : _ Entity.t) ~spec = { kind = entity.Entity.kind; hash = Store.key ~spec }

(* the edge list of a node is itself a store entry, addressed by the
   node's own address so it can be found without knowing the full spec *)
let edges_spec n = Printf.sprintf "deps-of(%s-%s)" n.kind n.hash

let read_edges t n =
  match Store.get t.store Entity.dep_edges ~spec:(edges_spec n) with
  | None -> [||]
  | Some edges -> edges

let record_edges t ~target deps =
  if deps <> [] then begin
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        List.iter
          (fun dep ->
            let existing = read_edges t dep in
            let present =
              Array.exists (fun (k, h) -> k = target.kind && h = target.hash) existing
            in
            if not present then
              Store.put t.store Entity.dep_edges ~spec:(edges_spec dep)
                (Array.append existing [| (target.kind, target.hash) |]))
          deps)
  end

let find_or_add t entity ~spec ?(deps = []) compute =
  let result = Store.find_or_add t.store entity ~spec compute in
  record_edges t ~target:(node entity ~spec) deps;
  result

let put t entity ~spec ?(deps = []) v =
  Store.put t.store entity ~spec v;
  record_edges t ~target:(node entity ~spec) deps

let get t entity ~spec = Store.get t.store entity ~spec

let compare_node a b =
  match String.compare a.kind b.kind with 0 -> String.compare a.hash b.hash | c -> c

let dependents t n =
  read_edges t n |> Array.to_list
  |> List.map (fun (kind, hash) -> { kind; hash })
  |> List.sort compare_node

let invalidate t root =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      (* breadth-first over persisted reverse edges; [seen] caps cycles
         (which a well-formed derivation graph never has) *)
      let seen = Hashtbl.create 16 in
      let removed = ref [] in
      let queue = Queue.create () in
      Queue.add root queue;
      Hashtbl.replace seen (root.kind, root.hash) ();
      while not (Queue.is_empty queue) do
        let n = Queue.pop queue in
        removed := n :: !removed;
        Array.iter
          (fun (kind, hash) ->
            if not (Hashtbl.mem seen (kind, hash)) then begin
              Hashtbl.replace seen (kind, hash) ();
              Queue.add { kind; hash } queue
            end)
          (read_edges t n);
        Store.remove_addressed t.store ~kind:n.kind ~hash:n.hash;
        Store.remove t.store Entity.dep_edges ~spec:(edges_spec n)
      done;
      List.rev !removed)
