(** Dependency-aware invalidation layer over {!Store}.

    The store is content-addressed: an entry's key already changes when
    its {e spec} changes, so most staleness is handled by keys alone. What
    keys cannot express is "entry S was computed {e from} entry M": when M
    is explicitly invalidated (a block macro is known bad, a codec bug is
    being flushed, an upstream model was revoked), every entry derived
    from it must go too — and {e only} those.

    This layer records reverse dependency edges at [find_or_add] time and
    persists them in the store itself (as {!Entity.dep_edges} entries), so
    invalidation works across processes and restarts. [invalidate] walks
    the edges transitively and deletes exactly the downstream closure.

    All operations are safe from multiple domains of one process (edge
    read-modify-writes are serialized on an internal lock; the underlying
    file operations are the store's own atomic ones). *)

type t

type node = { kind : string; hash : string }
(** Store address of one entry: entity kind + 16-hex spec hash. *)

val create : Store.t -> t
(** Wrap a store. Several wrappers over one store share edges (they live
    in the store), but serialize updates only within their own process. *)

val store : t -> Store.t
(** The wrapped store (for stats / fsck at the owning layer; subsystems
    that receive a [Depgraph.t] should not reach through this). *)

val node : 'a Entity.t -> spec:string -> node
(** The address [find_or_add] files edges under for this (entity, spec). *)

val find_or_add :
  t -> 'a Entity.t -> spec:string -> ?deps:node list -> (unit -> 'a) -> 'a * Store.outcome
(** {!Store.find_or_add}, additionally recording a reverse edge from every
    [dep] to this entry — on hits too, so edges self-heal after a partial
    invalidation or a cleared store directory. *)

val put : t -> 'a Entity.t -> spec:string -> ?deps:node list -> 'a -> unit
(** {!Store.put} with the same edge recording. *)

val get : t -> 'a Entity.t -> spec:string -> 'a option
(** Plain verified read; records nothing. *)

val dependents : t -> node -> node list
(** Direct dependents currently on record for [node] (unsorted on disk;
    returned sorted by [(kind, hash)] for determinism). *)

val invalidate : t -> node -> node list
(** Delete [node]'s entry, every transitive dependent's entry, and the
    edge lists of everything deleted. Returns the addresses of the data
    entries removed (the node itself first, then discovery order);
    entries merely absent are still listed — invalidation is about keys,
    not files. Unrelated entries are untouched. *)
