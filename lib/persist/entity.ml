module K = Kernels.Kernel
module Mat = Linalg.Mat

type 'a t = {
  kind : string;
  version : int;
  encode : Codec.writer -> 'a -> unit;
  decode : Codec.reader -> 'a;
}

let corrupt fmt = Printf.ksprintf (fun m -> raise (Codec.Error m)) fmt

(* ---------------------------------------------------------------- *)
(* building blocks *)

let write_point b (p : Geometry.Point.t) =
  Codec.write_float b p.Geometry.Point.x;
  Codec.write_float b p.Geometry.Point.y

let read_point r =
  let x = Codec.read_float r in
  let y = Codec.read_float r in
  Geometry.Point.make x y

let write_rect b (rect : Geometry.Rect.t) =
  Codec.write_float b rect.Geometry.Rect.xmin;
  Codec.write_float b rect.Geometry.Rect.xmax;
  Codec.write_float b rect.Geometry.Rect.ymin;
  Codec.write_float b rect.Geometry.Rect.ymax

let read_rect r =
  let xmin = Codec.read_float r in
  let xmax = Codec.read_float r in
  let ymin = Codec.read_float r in
  let ymax = Codec.read_float r in
  try Geometry.Rect.make ~xmin ~xmax ~ymin ~ymax
  with Invalid_argument m -> corrupt "invalid rectangle: %s" m

let write_mat b m =
  let rows = Mat.rows m and cols = Mat.cols m in
  Codec.write_uint b rows;
  Codec.write_uint b cols;
  let raw = Mat.raw m in
  for i = 0 to (rows * cols) - 1 do
    Codec.write_float b (Bigarray.Array1.unsafe_get raw i)
  done

let read_mat r =
  let rows = Codec.read_uint r in
  let cols = Codec.read_uint r in
  (* bound each dimension separately: the product rows*cols*8 can overflow
     for adversarial headers and wrap past a single multiplied check *)
  let budget = Codec.remaining r / 8 in
  let fits =
    rows >= 0 && cols >= 0
    && (rows = 0 || cols = 0 || (rows <= budget && cols <= budget / rows))
  in
  if not fits then corrupt "matrix %dx%d exceeds remaining input" rows cols;
  let m =
    try Mat.create rows cols
    with Invalid_argument msg -> corrupt "invalid matrix shape %dx%d: %s" rows cols msg
  in
  let raw = Mat.raw m in
  for i = 0 to (rows * cols) - 1 do
    Bigarray.Array1.unsafe_set raw i (Codec.read_float r)
  done;
  m

(* ---------------------------------------------------------------- *)
(* kernels *)

let write_kernel b = function
  | K.Gaussian { c } ->
      Codec.write_u8 b 0;
      Codec.write_float b c
  | K.Exponential { c } ->
      Codec.write_u8 b 1;
      Codec.write_float b c
  | K.Separable_exp_l1 { c } ->
      Codec.write_u8 b 2;
      Codec.write_float b c
  | K.Radial_exponential { c } ->
      Codec.write_u8 b 3;
      Codec.write_float b c
  | K.Matern { b = mb; s } ->
      Codec.write_u8 b 4;
      Codec.write_float b mb;
      Codec.write_float b s
  | K.Linear_cone { rho } ->
      Codec.write_u8 b 5;
      Codec.write_float b rho
  | K.Spherical { rho } ->
      Codec.write_u8 b 6;
      Codec.write_float b rho
  | K.Anisotropic_gaussian { cx; cy } ->
      Codec.write_u8 b 7;
      Codec.write_float b cx;
      Codec.write_float b cy
  | K.Faulty _ ->
      invalid_arg "Persist.Entity: Faulty kernels (test decorators) are not persistable"

let read_kernel r =
  match Codec.read_u8 r with
  | 0 -> K.Gaussian { c = Codec.read_float r }
  | 1 -> K.Exponential { c = Codec.read_float r }
  | 2 -> K.Separable_exp_l1 { c = Codec.read_float r }
  | 3 -> K.Radial_exponential { c = Codec.read_float r }
  | 4 ->
      let b = Codec.read_float r in
      let s = Codec.read_float r in
      K.Matern { b; s }
  | 5 -> K.Linear_cone { rho = Codec.read_float r }
  | 6 -> K.Spherical { rho = Codec.read_float r }
  | 7 ->
      let cx = Codec.read_float r in
      let cy = Codec.read_float r in
      K.Anisotropic_gaussian { cx; cy }
  | tag -> corrupt "unknown kernel tag %d" tag

let kernel_spec k =
  let f = Printf.sprintf "%.17g" in
  match k with
  | K.Gaussian { c } -> Printf.sprintf "gaussian(c=%s)" (f c)
  | K.Exponential { c } -> Printf.sprintf "exponential(c=%s)" (f c)
  | K.Separable_exp_l1 { c } -> Printf.sprintf "separable-exp-l1(c=%s)" (f c)
  | K.Radial_exponential { c } -> Printf.sprintf "radial-exponential(c=%s)" (f c)
  | K.Matern { b; s } -> Printf.sprintf "matern(b=%s,s=%s)" (f b) (f s)
  | K.Linear_cone { rho } -> Printf.sprintf "linear-cone(rho=%s)" (f rho)
  | K.Spherical { rho } -> Printf.sprintf "spherical(rho=%s)" (f rho)
  | K.Anisotropic_gaussian { cx; cy } ->
      Printf.sprintf "anisotropic-gaussian(cx=%s,cy=%s)" (f cx) (f cy)
  | K.Faulty _ ->
      invalid_arg "Persist.Entity.kernel_spec: Faulty kernels have no stable spec"

let kernel =
  { kind = "kernel"; version = 1; encode = write_kernel; decode = read_kernel }

(* ---------------------------------------------------------------- *)
(* meshes *)

let write_mesh b (m : Geometry.Mesh.t) =
  write_rect b m.Geometry.Mesh.domain;
  Codec.write_array b write_point m.Geometry.Mesh.points;
  Codec.write_array b
    (fun b (i, j, k) ->
      Codec.write_uint b i;
      Codec.write_uint b j;
      Codec.write_uint b k)
    m.Geometry.Mesh.triangles

let read_mesh r =
  let domain = read_rect r in
  let points = Codec.read_array r read_point in
  let triangles =
    Codec.read_array r (fun r ->
        let i = Codec.read_uint r in
        let j = Codec.read_uint r in
        let k = Codec.read_uint r in
        (i, j, k))
  in
  (* Mesh.make re-derives areas/centroids and re-validates indices and
     orientation — a decoded mesh is held to the same standard as a built
     one *)
  try Geometry.Mesh.make domain points triangles
  with Invalid_argument m -> corrupt "invalid mesh: %s" m

let mesh = { kind = "mesh"; version = 1; encode = write_mesh; decode = read_mesh }

(* ---------------------------------------------------------------- *)
(* KLE eigensolutions and truncated models *)

let write_quadrature b = function
  | Kle.Galerkin.Centroid -> Codec.write_u8 b 0
  | Kle.Galerkin.Midedge -> Codec.write_u8 b 1

let read_quadrature r =
  match Codec.read_u8 r with
  | 0 -> Kle.Galerkin.Centroid
  | 1 -> Kle.Galerkin.Midedge
  | tag -> corrupt "unknown quadrature tag %d" tag

let write_solution b (s : Kle.Galerkin.solution) =
  write_mesh b s.Kle.Galerkin.mesh;
  write_kernel b s.Kle.Galerkin.kernel;
  write_quadrature b s.Kle.Galerkin.quadrature;
  Codec.write_float_array b s.Kle.Galerkin.eigenvalues;
  write_mat b s.Kle.Galerkin.coefficients

let read_solution r =
  let mesh = read_mesh r in
  let kernel = read_kernel r in
  let quadrature = read_quadrature r in
  let eigenvalues = Codec.read_float_array r in
  let coefficients = read_mat r in
  if Mat.rows coefficients <> Geometry.Mesh.size mesh then
    corrupt "solution coefficients have %d rows for a %d-triangle mesh"
      (Mat.rows coefficients) (Geometry.Mesh.size mesh);
  if Mat.cols coefficients <> Array.length eigenvalues then
    corrupt "solution has %d eigenvalues but %d coefficient columns"
      (Array.length eigenvalues) (Mat.cols coefficients);
  { Kle.Galerkin.mesh; kernel; quadrature; eigenvalues; coefficients }

let solution =
  { kind = "kle-solution"; version = 1; encode = write_solution; decode = read_solution }

let write_model b (m : Kle.Model.t) =
  write_solution b m.Kle.Model.solution;
  Codec.write_uint b m.Kle.Model.r

let read_model r =
  let sol = read_solution r in
  let rr = Codec.read_uint r in
  try Kle.Model.create ~r:rr sol
  with Invalid_argument m -> corrupt "invalid model: %s" m

let model =
  { kind = "kle-model"; version = 1; encode = write_model; decode = read_model }

let write_sampler b s =
  write_model b (Kle.Sampler.model s);
  Codec.write_array b write_point (Kle.Sampler.locations s)

let read_sampler r =
  let m = read_model r in
  let locations = Codec.read_array r read_point in
  Kle.Sampler.create m locations

let sampler =
  { kind = "kle-sampler"; version = 1; encode = write_sampler; decode = read_sampler }

(* ---------------------------------------------------------------- *)
(* hierarchical operator factors (cluster-tree partition + ACA blocks) *)

let write_hblock b (blk : Kle.Hmatrix.block) =
  match blk with
  | Kle.Hmatrix.Near { rlo; rhi; clo; chi; data } ->
      Codec.write_u8 b 0;
      Codec.write_uint b rlo;
      Codec.write_uint b rhi;
      Codec.write_uint b clo;
      Codec.write_uint b chi;
      write_mat b data
  | Kle.Hmatrix.Far { rlo; rhi; clo; chi; u; v } ->
      Codec.write_u8 b 1;
      Codec.write_uint b rlo;
      Codec.write_uint b rhi;
      Codec.write_uint b clo;
      Codec.write_uint b chi;
      write_mat b u;
      write_mat b v

let read_hblock r =
  let tag = Codec.read_u8 r in
  let rlo = Codec.read_uint r in
  let rhi = Codec.read_uint r in
  let clo = Codec.read_uint r in
  let chi = Codec.read_uint r in
  match tag with
  | 0 -> Kle.Hmatrix.Near { rlo; rhi; clo; chi; data = read_mat r }
  | 1 ->
      let u = read_mat r in
      let v = read_mat r in
      Kle.Hmatrix.Far { rlo; rhi; clo; chi; u; v }
  | tag -> corrupt "unknown H-matrix block tag %d" tag

let write_hstats b (s : Kle.Hmatrix.stats) =
  Codec.write_uint b s.Kle.Hmatrix.tree_nodes;
  Codec.write_uint b s.Kle.Hmatrix.tree_depth;
  Codec.write_uint b s.Kle.Hmatrix.near_blocks;
  Codec.write_uint b s.Kle.Hmatrix.far_blocks;
  Codec.write_uint b s.Kle.Hmatrix.near_entries;
  Codec.write_uint b s.Kle.Hmatrix.rank_sum;
  Codec.write_uint b s.Kle.Hmatrix.entry_evals

let read_hstats r =
  let tree_nodes = Codec.read_uint r in
  let tree_depth = Codec.read_uint r in
  let near_blocks = Codec.read_uint r in
  let far_blocks = Codec.read_uint r in
  let near_entries = Codec.read_uint r in
  let rank_sum = Codec.read_uint r in
  let entry_evals = Codec.read_uint r in
  {
    Kle.Hmatrix.tree_nodes;
    tree_depth;
    near_blocks;
    far_blocks;
    near_entries;
    rank_sum;
    entry_evals;
  }

let write_hmatrix b (h : Kle.Hmatrix.t) =
  Codec.write_uint b h.Kle.Hmatrix.n;
  Codec.write_int_array b h.Kle.Hmatrix.perm;
  write_hstats b h.Kle.Hmatrix.stats;
  Codec.write_array b write_hblock h.Kle.Hmatrix.blocks

let read_hmatrix r =
  let n = Codec.read_uint r in
  let perm = Codec.read_int_array r in
  let stats = read_hstats r in
  let blocks = Codec.read_array r read_hblock in
  let h = { Kle.Hmatrix.n; perm; blocks; stats } in
  (* a decoded H-matrix is held to the same structural standard as a
     built one: permutation, block ranges, factor shapes, full tiling *)
  match Kle.Hmatrix.validate h with
  | Ok () -> h
  | Error msg -> corrupt "invalid H-matrix: %s" msg

let hmatrix =
  { kind = "kle-hmatrix"; version = 1; encode = write_hmatrix; decode = read_hmatrix }

(* ---------------------------------------------------------------- *)
(* netlists and circuit setups *)

let kind_tag = function
  | Circuit.Gate.Input -> 0
  | Circuit.Gate.Inv -> 1
  | Circuit.Gate.Buf -> 2
  | Circuit.Gate.Nand2 -> 3
  | Circuit.Gate.Nor2 -> 4
  | Circuit.Gate.And2 -> 5
  | Circuit.Gate.Or2 -> 6
  | Circuit.Gate.Xor2 -> 7
  | Circuit.Gate.Xnor2 -> 8
  | Circuit.Gate.Dff -> 9

let kind_of_tag = function
  | 0 -> Circuit.Gate.Input
  | 1 -> Circuit.Gate.Inv
  | 2 -> Circuit.Gate.Buf
  | 3 -> Circuit.Gate.Nand2
  | 4 -> Circuit.Gate.Nor2
  | 5 -> Circuit.Gate.And2
  | 6 -> Circuit.Gate.Or2
  | 7 -> Circuit.Gate.Xor2
  | 8 -> Circuit.Gate.Xnor2
  | 9 -> Circuit.Gate.Dff
  | tag -> corrupt "unknown gate-kind tag %d" tag

let write_netlist b (n : Circuit.Netlist.t) =
  Codec.write_string b n.Circuit.Netlist.name;
  Codec.write_array b
    (fun b (g : Circuit.Netlist.gate) ->
      (* ids are the array index by construction; only name/kind/fanins
         carry information *)
      Codec.write_string b g.Circuit.Netlist.name;
      Codec.write_u8 b (kind_tag g.Circuit.Netlist.kind);
      Codec.write_int_array b g.Circuit.Netlist.fanins)
    n.Circuit.Netlist.gates;
  Codec.write_int_array b n.Circuit.Netlist.outputs

let read_netlist r =
  let name = Codec.read_string r in
  let gate_data =
    Codec.read_array r (fun r ->
        let name = Codec.read_string r in
        let kind = kind_of_tag (Codec.read_u8 r) in
        let fanins = Codec.read_int_array r in
        (name, kind, fanins))
  in
  let gates =
    Array.mapi
      (fun id (name, kind, fanins) -> { Circuit.Netlist.id; name; kind; fanins })
      gate_data
  in
  let outputs = Codec.read_int_array r in
  try Circuit.Netlist.make ~name ~gates ~outputs
  with Invalid_argument m -> corrupt "invalid netlist: %s" m

let netlist =
  { kind = "netlist"; version = 1; encode = write_netlist; decode = read_netlist }

let write_setup b (s : Ssta.Experiment.circuit_setup) =
  write_netlist b s.Ssta.Experiment.netlist;
  write_rect b s.Ssta.Experiment.placement.Circuit.Placer.die;
  Codec.write_array b write_point s.Ssta.Experiment.placement.Circuit.Placer.locations

let read_setup r =
  let nl = read_netlist r in
  let die = read_rect r in
  let locations = Codec.read_array r read_point in
  if Array.length locations <> Circuit.Netlist.size nl then
    corrupt "placement has %d locations for %d gates" (Array.length locations)
      (Circuit.Netlist.size nl);
  let placement = { Circuit.Placer.netlist = nl; locations; die } in
  (* derive wire loads, the prepared timer and the logic-gate view exactly
     as [Experiment.setup_circuit] does from a fresh placement *)
  let wireload = Circuit.Wireload.build placement in
  let sta = Sta.Timing.prepare wireload in
  let logic_ids =
    nl.Circuit.Netlist.gates |> Array.to_seq
    |> Seq.filter_map (fun (g : Circuit.Netlist.gate) ->
           if g.Circuit.Netlist.kind = Circuit.Gate.Input then None
           else Some g.Circuit.Netlist.id)
    |> Array.of_seq
  in
  let gate_locations = Array.map (fun i -> locations.(i)) logic_ids in
  {
    Ssta.Experiment.netlist = nl;
    placement;
    sta;
    logic_ids;
    locations = gate_locations;
  }

let circuit_setup =
  { kind = "circuit-setup"; version = 1; encode = write_setup; decode = read_setup }

let write_canonical b (c : Ssta.Canonical.t) =
  Codec.write_float b c.Ssta.Canonical.mean;
  Codec.write_float_array b c.Ssta.Canonical.sens;
  Codec.write_float b c.Ssta.Canonical.indep

let read_canonical r =
  let mean = Codec.read_float r in
  let sens = Codec.read_float_array r in
  let indep = Codec.read_float r in
  if not (Float.is_finite mean && Float.is_finite indep && indep >= 0.0) then
    corrupt "canonical form with non-finite mean or bad independent sigma";
  Array.iter
    (fun s -> if not (Float.is_finite s) then corrupt "non-finite canonical sensitivity")
    sens;
  Ssta.Canonical.make ~mean ~sens ~indep

(* reverse dependency edges of one cache entry: the (kind, spec-hash)
   addresses of the entries that were computed *from* it. Stored under its
   own kind so [Depgraph] can walk the graph without decoding payloads. *)
let write_dep_edges b edges =
  Codec.write_array b
    (fun b (kind, hash) ->
      Codec.write_string b kind;
      Codec.write_string b hash)
    edges

let read_dep_edges r =
  Codec.read_array r (fun r ->
      let kind = Codec.read_string r in
      let hash = Codec.read_string r in
      if kind = "" || hash = "" then corrupt "empty dependency-edge address";
      (kind, hash))

let dep_edges =
  { kind = "dep-edges"; version = 1; encode = write_dep_edges; decode = read_dep_edges }

(* ---------------------------------------------------------------- *)

let to_string e v =
  let b = Codec.writer () in
  e.encode b v;
  Codec.contents b

let of_string e s =
  let r = Codec.reader s in
  let v = e.decode r in
  Codec.expect_end r;
  v
