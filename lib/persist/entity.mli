(** Typed binary codecs for the pipeline's reusable artifacts.

    Each entity carries a [kind] tag and a format [version]; the {!Store}
    writes both into the file header and refuses (→ recompute) entries
    whose version no longer matches, so codec evolution is a version bump,
    never a silent misread.

    Decoders rebuild {e derived} state through the same constructors the
    live pipeline uses ([Geometry.Mesh.make], [Kle.Model.create],
    [Circuit.Netlist.make], [Sta.Timing.prepare]), so a loaded artifact is
    revalidated and bit-identical to a freshly computed one: the stored
    floats (eigenvalues, basis coefficients, points) round-trip through
    IEEE-754 bit patterns exactly, and everything else is a deterministic
    function of them. *)

type 'a t = {
  kind : string;  (** file-kind tag, e.g. ["kle-model"] *)
  version : int;  (** bumped on any encoding change *)
  encode : Codec.writer -> 'a -> unit;
  decode : Codec.reader -> 'a;  (** raises {!Codec.Error} on corrupt input *)
}

val kernel : Kernels.Kernel.t t
(** All kernel families except the test-only [Faulty] decorator, whose
    closure-valued fault plan has no stable encoding — [encode] raises
    [Invalid_argument] on it. *)

val kernel_spec : Kernels.Kernel.t -> string
(** Canonical one-line spec (family + parameters at full precision) — the
    kernel's contribution to cache keys. Raises [Invalid_argument] on
    [Faulty]. *)

val mesh : Geometry.Mesh.t t
(** Domain + points + triangles; areas/centroids are re-derived (and the
    triangles re-validated) by [Geometry.Mesh.make]. *)

val solution : Kle.Galerkin.solution t
(** The circuit-independent KLE eigensolution: mesh, kernel, quadrature,
    eigenvalues, basis-coefficient matrix — the artifact whose recompute
    cost the store exists to amortize. *)

val model : Kle.Model.t t
(** Truncated model: solution + retained [r]; the locator is rebuilt by
    [Kle.Model.create]. *)

val sampler : Kle.Sampler.t t
(** Prepared sampler as (model, locations); the triangle resolution and
    expansion matrix are rebuilt by [Kle.Sampler.create], which is a
    deterministic function of the two. *)

val hmatrix : Kle.Hmatrix.t t
(** Hierarchical-operator factors: cluster permutation + the block
    partition (dense near-field matrices and ACA [u·vᵀ] far-field
    factors) + build stats. Amortizes the O(n log n) entry evaluations of
    a hierarchical build across server runs; the decoder re-checks
    structural integrity through {!Kle.Hmatrix.validate}. *)

val netlist : Circuit.Netlist.t t
(** Gate array + outputs, re-validated by [Circuit.Netlist.make]. *)

val circuit_setup : Ssta.Experiment.circuit_setup t
(** Netlist + placement (per-gate locations + die); wire loads, the
    prepared timer and the logic-gate index are re-derived exactly as
    [Ssta.Experiment.setup_circuit] derives them. *)

val dep_edges : (string * string) array t
(** Reverse dependency edges of one store entry: the [(kind, spec-hash)]
    addresses of entries computed {e from} it, persisted by
    {!Depgraph} so invalidation can walk downstream without decoding any
    payload. *)

val write_canonical : Codec.writer -> Ssta.Canonical.t -> unit
val read_canonical : Codec.reader -> Ssta.Canonical.t
(** First-order canonical-form codec ([mean], shared-basis sensitivities,
    independent sigma), shared by the hierarchical macro-model entities. *)

val to_string : 'a t -> 'a -> string
(** Encode to a standalone payload (no store header). *)

val of_string : 'a t -> string -> 'a
(** Decode a {!to_string} payload, checking that every byte is consumed.
    Raises {!Codec.Error}. *)
