let format_version = 1
let magic = "KLST"

type t = {
  dir : string;
  diag : Util.Diag.sink option;
  io_faults : Util.Fault.io_plan list;
  hits : int Atomic.t;
  misses : int Atomic.t;
  recovered : int Atomic.t;
  writes : int Atomic.t;
  read_failures : int Atomic.t;
}

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?diag ?(io_faults = []) ~dir () =
  mkdir_p dir;
  {
    dir;
    diag;
    io_faults;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    recovered = Atomic.make 0;
    writes = Atomic.make 0;
    read_failures = Atomic.make 0;
  }

let dir t = t.dir
let key ~spec = Codec.fnv64_hex spec

let path t (entity : _ Entity.t) ~spec =
  Filename.concat t.dir (Printf.sprintf "%s-%s.bin" entity.Entity.kind (key ~spec))

(* file = magic, format_version, kind, entity version, spec,
   length-prefixed payload, FNV-1a 64 checksum of the payload *)
let encode_file (entity : _ Entity.t) ~spec v =
  let payload =
    let b = Codec.writer () in
    entity.Entity.encode b v;
    Codec.contents b
  in
  let b = Codec.writer () in
  String.iter (fun c -> Codec.write_u8 b (Char.code c)) magic;
  Codec.write_uint b format_version;
  Codec.write_string b entity.Entity.kind;
  Codec.write_uint b entity.Entity.version;
  Codec.write_string b spec;
  Codec.write_string b payload;
  Codec.write_fixed64 b (Codec.fnv64 payload);
  Codec.contents b

let record_fault t ~file kind =
  Util.Diag.record ?sink:t.diag Util.Diag.Warning `Fault_injected ~stage:"persist.store"
    (Printf.sprintf "%s: injected %s" file (Util.Fault.io_kind_name kind))

(* Fire every configured I/O plan that applies to this operation class
   ([`Read] or [`Write]); each plan counts its own calls independently.
   Returns the latency to act out (summed) and the fault to simulate. *)
let fire_io t ~file op =
  let latency = ref 0.0 and fault = ref None in
  List.iter
    (fun p ->
      let applies =
        match (Util.Fault.kind p, op) with
        | Util.Fault.Latency _, _ -> true
        | (Util.Fault.Read_error | Util.Fault.Short_read), `Read -> true
        | Util.Fault.Torn_write, `Write -> true
        | _ -> false
      in
      if applies then
        match Util.Fault.fire p with
        | None -> ()
        | Some (Util.Fault.Latency ms) ->
            record_fault t ~file (Util.Fault.Latency ms);
            latency := !latency +. (ms /. 1000.)
        | Some k ->
            record_fault t ~file k;
            if !fault = None then fault := Some k)
    t.io_faults;
  if !latency > 0.0 then Unix.sleepf !latency;
  !fault

let put t entity ~spec v =
  let file = path t entity ~spec in
  let data = encode_file entity ~spec v in
  (match fire_io t ~file `Write with
  | Some Util.Fault.Torn_write ->
      (* simulate a non-atomic writer dying mid-write: a prefix of the
         entry lands at the final path directly, bypassing tmp+rename.
         The next read must detect it as corrupt, never serve it. *)
      let oc = open_out_bin file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (String.sub data 0 (String.length data / 2)))
  | Some _ | None -> Util.Fileio.write_atomic file data);
  Atomic.incr t.writes

let decode_file (entity : _ Entity.t) ~spec data =
  match
    let r = Codec.reader data in
    if Codec.remaining r < String.length magic then Codec.(raise (Error "truncated header"));
    let m = Bytes.create (String.length magic) in
    for i = 0 to Bytes.length m - 1 do
      Bytes.set m i (Char.chr (Codec.read_u8 r))
    done;
    if Bytes.to_string m <> magic then Codec.(raise (Error "bad magic"));
    let fmt = Codec.read_uint r in
    if fmt <> format_version then `Stale (Printf.sprintf "format version %d (want %d)" fmt format_version)
    else begin
      let kind = Codec.read_string r in
      if kind <> entity.Entity.kind then
        `Corrupt (Printf.sprintf "entry kind %S (want %S)" kind entity.Entity.kind)
      else begin
        let version = Codec.read_uint r in
        if version <> entity.Entity.version then
          `Stale (Printf.sprintf "entity version %d (want %d)" version entity.Entity.version)
        else begin
          let stored_spec = Codec.read_string r in
          if stored_spec <> spec then
            (* same 64-bit hash, different spec: treat as stale, not corrupt *)
            `Stale "spec mismatch (hash collision)"
          else begin
            let payload = Codec.read_string r in
            let checksum = Codec.read_fixed64 r in
            Codec.expect_end r;
            if Codec.fnv64 payload <> checksum then `Corrupt "checksum mismatch"
            else begin
              let pr = Codec.reader payload in
              let v = entity.Entity.decode pr in
              Codec.expect_end pr;
              `Ok v
            end
          end
        end
      end
    end
  with
  | result -> result
  | exception Codec.Error msg -> `Corrupt msg

let record t severity ~file msg =
  Util.Diag.record ?sink:t.diag severity `Degraded_fallback ~stage:"persist.store"
    (Printf.sprintf "%s: %s — falling back to recompute" file msg)

(* Read the whole entry, separating "no entry" from "the read itself
   failed". An open failure is a plain miss — under concurrent access
   another domain may legitimately have deleted a corrupt entry between
   our existence check and open (ENOENT is not an error). A failure
   *after* a successful open (real EIO, or an injected [Read_error])
   means the entry may well be intact on disk: the caller must fall back
   to recompute for this request but must NOT delete the file. *)
let read_file t file =
  match open_in_bin file with
  | exception Sys_error _ -> `Absent
  | ic -> (
      let data =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match fire_io t ~file `Read with
            | Some Util.Fault.Read_error -> `Read_failed "injected read error"
            | Some Util.Fault.Short_read ->
                let n = in_channel_length ic in
                `Data (really_input_string ic (n / 2))
            | Some _ | None -> `Data (really_input_string ic (in_channel_length ic)))
      in
      match data with
      | exception Sys_error msg -> `Read_failed msg
      | exception End_of_file -> `Read_failed "unexpected end of file"
      | r -> r)

let load t entity ~spec =
  let file = path t entity ~spec in
  match read_file t file with
  | `Absent -> `Absent
  | `Read_failed msg ->
      Atomic.incr t.read_failures;
      record t Util.Diag.Warning ~file (Printf.sprintf "read failed: %s" msg);
      `Read_failed msg
  | `Data data -> (
      match decode_file entity ~spec data with
      | `Ok v -> `Ok v
      | `Stale msg ->
          record t Util.Diag.Info ~file msg;
          `Stale msg
      | `Corrupt msg ->
          record t Util.Diag.Warning ~file msg;
          (try Sys.remove file with Sys_error _ -> ());
          `Corrupt msg)

let get t entity ~spec =
  match load t entity ~spec with
  | `Ok v ->
      Atomic.incr t.hits;
      Some v
  | `Absent | `Stale _ | `Corrupt _ | `Read_failed _ -> None

type outcome = [ `Hit | `Miss | `Recovered ]

let find_or_add t entity ~spec compute =
  match load t entity ~spec with
  | `Ok v ->
      Atomic.incr t.hits;
      (v, `Hit)
  | (`Absent | `Stale _ | `Corrupt _ | `Read_failed _) as miss ->
      let outcome =
        match miss with
        | `Absent ->
            Atomic.incr t.misses;
            `Miss
        | `Stale _ | `Corrupt _ | `Read_failed _ ->
            Atomic.incr t.recovered;
            `Recovered
      in
      let v = compute () in
      put t entity ~spec v;
      (v, outcome)

let remove t entity ~spec =
  try Sys.remove (path t entity ~spec) with Sys_error _ -> ()

let remove_addressed t ~kind ~hash =
  try Sys.remove (Filename.concat t.dir (Printf.sprintf "%s-%s.bin" kind hash))
  with Sys_error _ -> ()

type stats = {
  hits : int;
  misses : int;
  recovered : int;
  writes : int;
  read_failures : int;
  entries : int;
  bytes : int;
}

let stats t =
  let entries = ref 0 and bytes = ref 0 in
  (try
     Array.iter
       (fun name ->
         if Filename.check_suffix name ".bin" then begin
           incr entries;
           match (Unix.stat (Filename.concat t.dir name)).Unix.st_size with
           | size -> bytes := !bytes + size
           | exception Unix.Unix_error _ -> ()
         end)
       (Sys.readdir t.dir)
   with Sys_error _ -> ());
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    recovered = Atomic.get t.recovered;
    writes = Atomic.get t.writes;
    read_failures = Atomic.get t.read_failures;
    entries = !entries;
    bytes = !bytes;
  }

(* ------------------------------------------------------------------ *)
(* fsck: offline scan / verify / repair                               *)
(* ------------------------------------------------------------------ *)

type fsck_report = {
  scanned : int;
  ok : int;
  corrupt : int;
  stale : int;
  tmp_files : int;
  gc_evicted : int;
  bytes_before : int;
  bytes_after : int;
}

(* the entity versions this build writes, keyed by file-kind tag — an
   entry whose kind is known but whose version differs is stale (will be
   recomputed on next access), not corrupt *)
let current_versions =
  [
    (Entity.kernel.Entity.kind, Entity.kernel.Entity.version);
    (Entity.mesh.Entity.kind, Entity.mesh.Entity.version);
    (Entity.solution.Entity.kind, Entity.solution.Entity.version);
    (Entity.model.Entity.kind, Entity.model.Entity.version);
    (Entity.sampler.Entity.kind, Entity.sampler.Entity.version);
    (Entity.hmatrix.Entity.kind, Entity.hmatrix.Entity.version);
    (Entity.netlist.Entity.kind, Entity.netlist.Entity.version);
    (Entity.circuit_setup.Entity.kind, Entity.circuit_setup.Entity.version);
    (Entity.dep_edges.Entity.kind, Entity.dep_edges.Entity.version);
    (* hierarchical SSTA entities live in [lib/hier] (which depends on this
       library), so their versions are mirrored here as literals — keep in
       sync with [Hier.Macro.entity] / [Hier.Engine.stitch_entity] *)
    ("hier-macro", 1);
    ("hier-stitch", 1);
  ]

(* Structural verification without an entity decoder: header fields,
   filename consistency (kind prefix and spec hash), payload checksum.
   Payload *semantics* are still re-validated by the entity decoder on
   the next [load]; fsck guarantees that whatever survives it will at
   least parse to the checksum. *)
let verify_entry ~fname data =
  let base = Filename.chop_suffix fname ".bin" in
  let name_kind, name_hash =
    match String.rindex_opt base '-' with
    | Some i -> (String.sub base 0 i, String.sub base (i + 1) (String.length base - i - 1))
    | None -> ("", "")
  in
  match
    let r = Codec.reader data in
    if Codec.remaining r < String.length magic then Codec.(raise (Error "truncated header"));
    let m = Bytes.create (String.length magic) in
    for i = 0 to Bytes.length m - 1 do
      Bytes.set m i (Char.chr (Codec.read_u8 r))
    done;
    if Bytes.to_string m <> magic then Codec.(raise (Error "bad magic"));
    let fmt = Codec.read_uint r in
    let kind = Codec.read_string r in
    let version = Codec.read_uint r in
    let spec = Codec.read_string r in
    let payload = Codec.read_string r in
    let checksum = Codec.read_fixed64 r in
    Codec.expect_end r;
    if kind <> name_kind then
      `Corrupt (Printf.sprintf "entry kind %S does not match filename %S" kind name_kind)
    else if Codec.fnv64_hex spec <> name_hash then
      `Corrupt (Printf.sprintf "spec hash %s does not match filename %s" (Codec.fnv64_hex spec) name_hash)
    else if Codec.fnv64 payload <> checksum then `Corrupt "checksum mismatch"
    else if fmt <> format_version then
      `Stale (Printf.sprintf "format version %d (want %d)" fmt format_version)
    else begin
      match List.assoc_opt kind current_versions with
      | Some v when v <> version -> `Stale (Printf.sprintf "entity version %d (want %d)" version v)
      | Some _ | None -> `Ok
    end
  with
  | result -> result
  | exception Codec.Error msg -> `Corrupt msg

let is_tmp_file name =
  (* Util.Fileio temporaries are named <target>.tmp.<pid>.<counter> *)
  let rec has_tmp_part = function
    | [] -> false
    | "tmp" :: _ :: _ -> true
    | _ :: rest -> has_tmp_part rest
  in
  has_tmp_part (String.split_on_char '.' name)

let fsck ?diag ?(repair = false) ?max_bytes ~dir () =
  let note severity msg =
    Util.Diag.record ?sink:diag severity `Degraded_fallback ~stage:"persist.fsck" msg
  in
  let scanned = ref 0 and ok = ref 0 and corrupt = ref 0 and stale = ref 0 in
  let tmp_files = ref 0 and gc_evicted = ref 0 in
  let bytes_before = ref 0 and bytes_after = ref 0 in
  (* mtime + size of entries that survive verification, for the GC pass *)
  let survivors = ref [] in
  let names = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort String.compare names;
  Array.iter
    (fun name ->
      let file = Filename.concat dir name in
      if is_tmp_file name then begin
        incr tmp_files;
        note Util.Diag.Warning (Printf.sprintf "%s: orphaned temporary file%s" file
             (if repair then " — removed" else ""));
        if repair then try Sys.remove file with Sys_error _ -> ()
      end
      else if Filename.check_suffix name ".bin" then begin
        incr scanned;
        match
          let ic = open_in_bin file in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | exception Sys_error msg ->
            incr corrupt;
            note Util.Diag.Warning (Printf.sprintf "%s: unreadable (%s)%s" file msg
                 (if repair then " — removed" else ""));
            if repair then ( try Sys.remove file with Sys_error _ -> ())
        | data -> (
            bytes_before := !bytes_before + String.length data;
            match verify_entry ~fname:name data with
            | `Ok ->
                incr ok;
                let mtime =
                  match Unix.stat file with
                  | st -> st.Unix.st_mtime
                  | exception Unix.Unix_error _ -> 0.0
                in
                survivors := (file, mtime, String.length data) :: !survivors
            | `Stale msg ->
                incr stale;
                (* stale entries self-heal on the next access; fsck only reports them *)
                note Util.Diag.Info (Printf.sprintf "%s: stale (%s)" file msg);
                bytes_after := !bytes_after + String.length data
            | `Corrupt msg ->
                incr corrupt;
                note Util.Diag.Warning (Printf.sprintf "%s: corrupt (%s)%s" file msg
                     (if repair then " — removed" else ""));
                if repair then try Sys.remove file with Sys_error _ -> ())
      end)
    names;
  (* size-capped GC: evict verified entries oldest-mtime first until the
     surviving entries fit under the cap *)
  let kept = ref 0 in
  List.iter (fun (_, _, size) -> kept := !kept + size) !survivors;
  (match max_bytes with
  | Some cap when !kept > cap ->
      let by_age =
        List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) !survivors
      in
      List.iter
        (fun (file, _, size) ->
          if !kept > cap then begin
            incr gc_evicted;
            kept := !kept - size;
            note Util.Diag.Info (Printf.sprintf "%s: evicted by size-capped GC%s" file
                 (if repair then "" else " (would be)"));
            if repair then try Sys.remove file with Sys_error _ -> ()
          end)
        by_age
  | Some _ | None -> ());
  bytes_after := !bytes_after + !kept;
  {
    scanned = !scanned;
    ok = !ok;
    corrupt = !corrupt;
    stale = !stale;
    tmp_files = !tmp_files;
    gc_evicted = !gc_evicted;
    bytes_before = !bytes_before;
    bytes_after = !bytes_after;
  }

let fsck_report_to_string r =
  Printf.sprintf
    "scanned %d entries: %d ok, %d corrupt, %d stale, %d tmp file%s, %d GC-evicted; %d -> %d bytes"
    r.scanned r.ok r.corrupt r.stale r.tmp_files
    (if r.tmp_files = 1 then "" else "s")
    r.gc_evicted r.bytes_before r.bytes_after
