let format_version = 1
let magic = "KLST"

type t = {
  dir : string;
  diag : Util.Diag.sink option;
  hits : int Atomic.t;
  misses : int Atomic.t;
  recovered : int Atomic.t;
  writes : int Atomic.t;
}

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?diag ~dir () =
  mkdir_p dir;
  {
    dir;
    diag;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    recovered = Atomic.make 0;
    writes = Atomic.make 0;
  }

let dir t = t.dir
let key ~spec = Codec.fnv64_hex spec

let path t (entity : _ Entity.t) ~spec =
  Filename.concat t.dir (Printf.sprintf "%s-%s.bin" entity.Entity.kind (key ~spec))

(* file = magic, format_version, kind, entity version, spec,
   length-prefixed payload, FNV-1a 64 checksum of the payload *)
let encode_file (entity : _ Entity.t) ~spec v =
  let payload =
    let b = Codec.writer () in
    entity.Entity.encode b v;
    Codec.contents b
  in
  let b = Codec.writer () in
  String.iter (fun c -> Codec.write_u8 b (Char.code c)) magic;
  Codec.write_uint b format_version;
  Codec.write_string b entity.Entity.kind;
  Codec.write_uint b entity.Entity.version;
  Codec.write_string b spec;
  Codec.write_string b payload;
  Codec.write_fixed64 b (Codec.fnv64 payload);
  Codec.contents b

let put t entity ~spec v =
  Util.Fileio.write_atomic (path t entity ~spec) (encode_file entity ~spec v);
  Atomic.incr t.writes

let decode_file (entity : _ Entity.t) ~spec data =
  match
    let r = Codec.reader data in
    if Codec.remaining r < String.length magic then Codec.(raise (Error "truncated header"));
    let m = Bytes.create (String.length magic) in
    for i = 0 to Bytes.length m - 1 do
      Bytes.set m i (Char.chr (Codec.read_u8 r))
    done;
    if Bytes.to_string m <> magic then Codec.(raise (Error "bad magic"));
    let fmt = Codec.read_uint r in
    if fmt <> format_version then `Stale (Printf.sprintf "format version %d (want %d)" fmt format_version)
    else begin
      let kind = Codec.read_string r in
      if kind <> entity.Entity.kind then
        `Corrupt (Printf.sprintf "entry kind %S (want %S)" kind entity.Entity.kind)
      else begin
        let version = Codec.read_uint r in
        if version <> entity.Entity.version then
          `Stale (Printf.sprintf "entity version %d (want %d)" version entity.Entity.version)
        else begin
          let stored_spec = Codec.read_string r in
          if stored_spec <> spec then
            (* same 64-bit hash, different spec: treat as stale, not corrupt *)
            `Stale "spec mismatch (hash collision)"
          else begin
            let payload = Codec.read_string r in
            let checksum = Codec.read_fixed64 r in
            Codec.expect_end r;
            if Codec.fnv64 payload <> checksum then `Corrupt "checksum mismatch"
            else begin
              let pr = Codec.reader payload in
              let v = entity.Entity.decode pr in
              Codec.expect_end pr;
              `Ok v
            end
          end
        end
      end
    end
  with
  | result -> result
  | exception Codec.Error msg -> `Corrupt msg

let record t severity ~file msg =
  Util.Diag.record ?sink:t.diag severity `Degraded_fallback ~stage:"persist.store"
    (Printf.sprintf "%s: %s — falling back to recompute" file msg)

let load t entity ~spec =
  let file = path t entity ~spec in
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> `Absent
  | data -> (
      match decode_file entity ~spec data with
      | `Ok v -> `Ok v
      | `Stale msg ->
          record t Util.Diag.Info ~file msg;
          `Stale msg
      | `Corrupt msg ->
          record t Util.Diag.Warning ~file msg;
          (try Sys.remove file with Sys_error _ -> ());
          `Corrupt msg)

let get t entity ~spec =
  match load t entity ~spec with
  | `Ok v ->
      Atomic.incr t.hits;
      Some v
  | `Absent | `Stale _ | `Corrupt _ -> None

type outcome = [ `Hit | `Miss | `Recovered ]

let find_or_add t entity ~spec compute =
  match load t entity ~spec with
  | `Ok v ->
      Atomic.incr t.hits;
      (v, `Hit)
  | (`Absent | `Stale _ | `Corrupt _) as miss ->
      let outcome =
        match miss with
        | `Absent ->
            Atomic.incr t.misses;
            `Miss
        | `Stale _ | `Corrupt _ ->
            Atomic.incr t.recovered;
            `Recovered
      in
      let v = compute () in
      put t entity ~spec v;
      (v, outcome)

let remove t entity ~spec =
  try Sys.remove (path t entity ~spec) with Sys_error _ -> ()

type stats = {
  hits : int;
  misses : int;
  recovered : int;
  writes : int;
  entries : int;
  bytes : int;
}

let stats t =
  let entries = ref 0 and bytes = ref 0 in
  (try
     Array.iter
       (fun name ->
         if Filename.check_suffix name ".bin" then begin
           incr entries;
           match (Unix.stat (Filename.concat t.dir name)).Unix.st_size with
           | size -> bytes := !bytes + size
           | exception Unix.Unix_error _ -> ()
         end)
       (Sys.readdir t.dir)
   with Sys_error _ -> ());
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    recovered = Atomic.get t.recovered;
    writes = Atomic.get t.writes;
    entries = !entries;
    bytes = !bytes;
  }
