(** Content-addressed on-disk store for prepared pipeline artifacts.

    Each entry is one file under the store directory, named
    [<kind>-<fnv64(spec)>.bin], where [spec] is the caller's canonical
    description of everything the artifact is a pure function of (kernel
    spec, mesh parameters, retained pairs, …). The file carries a magic
    tag, the store
    {!format_version}, the entity kind + version, the full spec string
    (so a 64-bit hash collision is detected, not silently served), the
    payload, and an FNV-1a checksum of the payload.

    Writes are atomic (tmp + rename via {!Util.Fileio}); a crash mid-write
    can never leave a half entry. Reads verify everything written:

    - a {e missing} entry is a plain miss — including an entry another
      domain deleted between our existence check and open (concurrent
      corrupt-entry cleanup makes [ENOENT] an ordinary race, not an
      error);
    - a {e stale} entry (format or entity version mismatch, spec-hash
      collision) is skipped with an [Info]-severity [`Degraded_fallback]
      diagnostic and recomputed — expected after a codec upgrade;
    - a {e corrupt} entry (bad magic, checksum mismatch, decode failure)
      is deleted, reported as a [Warning]-severity [`Degraded_fallback]
      diagnostic, and recomputed — the store degrades to a recompute,
      never to wrong results;
    - a {e failed read} (an I/O error after the file opened, real or
      injected) is reported as a [Warning] and recomputed {e without}
      deleting the file — the entry on disk may be intact; only the read
      of it failed.

    All operations are safe to call concurrently from multiple domains:
    statistics are atomic and file replacement is atomic-rename. *)

val format_version : int
(** Bumped when the header layout changes; part of every entry's identity
    (a mismatch makes the entry stale). *)

type t

val open_ :
  ?diag:Util.Diag.sink -> ?io_faults:Util.Fault.io_plan list -> dir:string -> unit -> t
(** Create [dir] (and parents) if needed. [diag] receives the
    degraded-fallback events described above. [io_faults] installs
    deterministic I/O fault plans for chaos testing: on every read the
    store fires the [Read_error] / [Short_read] / [Latency] plans, on
    every write the [Torn_write] / [Latency] plans (each plan counts its
    own operations; see {!Util.Fault}). Every injected fault is recorded
    as a [Warning]-severity [`Fault_injected] diagnostic and then handled
    by the normal degradation paths — a torn write lands a detectably
    corrupt prefix at the final path, a short read truncates the data
    before decode, a read error fails the read without touching the
    file. *)

val dir : t -> string

val key : spec:string -> string
(** The content address: FNV-1a 64 of the spec, as 16 hex digits. *)

val path : t -> 'a Entity.t -> spec:string -> string
(** The file an entry lives at (exposed for tests and corruption
    injection). *)

val put : t -> 'a Entity.t -> spec:string -> 'a -> unit
(** Encode and atomically write the entry. *)

val get : t -> 'a Entity.t -> spec:string -> 'a option
(** Load and fully verify an entry; [None] on missing / stale / corrupt /
    failed read (with the per-case handling described above). *)

type outcome =
  [ `Hit  (** served from disk *)
  | `Miss  (** no entry; computed and stored *)
  | `Recovered
    (** entry was stale, corrupt or unreadable; recomputed and replaced *)
  ]

val find_or_add : t -> 'a Entity.t -> spec:string -> (unit -> 'a) -> 'a * outcome
(** The store's main loop: serve the verified entry, or compute, store and
    return the fresh value. The recompute path stores its result even when
    the entry was merely stale, upgrading the store in place. *)

val remove : t -> 'a Entity.t -> spec:string -> unit
(** Delete an entry if present. *)

val remove_addressed : t -> kind:string -> hash:string -> unit
(** Delete the entry for [kind] whose spec hashes to [hash] (the 16-hex
    {!key} form), if present. This is the deletion primitive behind
    {!Depgraph} invalidation, which tracks entries by address rather than
    by typed entity + full spec. *)

type stats = {
  hits : int;
  misses : int;
  recovered : int;  (** stale / corrupt / unreadable entries replaced by recompute *)
  writes : int;
  read_failures : int;  (** reads that failed after open (real or injected) *)
  entries : int;  (** files currently in the store directory *)
  bytes : int;  (** their total size *)
}

val stats : t -> stats
(** Counters since {!open_} plus a directory scan for entries/bytes. *)

(** {1 Offline verification and repair} *)

type fsck_report = {
  scanned : int;  (** [.bin] entries examined *)
  ok : int;  (** entries that passed structural verification *)
  corrupt : int;  (** unreadable / malformed / checksum-failed entries *)
  stale : int;  (** entries with an outdated format or entity version *)
  tmp_files : int;  (** orphaned [*.tmp.*] temporaries found *)
  gc_evicted : int;  (** verified entries evicted by the size-capped GC *)
  bytes_before : int;  (** total bytes of scanned entries *)
  bytes_after : int;
      (** bytes that remain (or, without [~repair], would remain) after
          removals and GC *)
}

val fsck :
  ?diag:Util.Diag.sink ->
  ?repair:bool ->
  ?max_bytes:int ->
  dir:string ->
  unit ->
  fsck_report
(** Scan every entry in [dir] and verify it structurally — header magic,
    filename/kind/spec-hash consistency, payload checksum, and version
    currency against the entities this build writes. With [~repair:true]
    (default [false]: report only), corrupt entries are deleted, orphaned
    [*.tmp.*] files from interrupted atomic writes are swept, and — when
    [max_bytes] is given — verified entries are evicted oldest-mtime
    first until the survivors fit under the cap. Stale entries are
    reported but never deleted: they self-heal on next access through
    {!find_or_add}. Every action is recorded against [diag]
    ([Warning] for corruption and tmp sweeps, [Info] for stale and GC).

    fsck is an {e offline} tool: run it while no server holds the store
    open, otherwise a concurrent writer's live temporary file can be
    swept mid-write. *)

val fsck_report_to_string : fsck_report -> string
(** One-line human-readable summary. *)
