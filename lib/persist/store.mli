(** Content-addressed on-disk store for prepared pipeline artifacts.

    Each entry is one file under the store directory, named
    [<kind>-<fnv64(spec)>.bin], where [spec] is the caller's canonical
    description of everything the artifact is a pure function of (kernel
    spec, mesh parameters, retained pairs, …). The file carries a magic
    tag, the store
    {!format_version}, the entity kind + version, the full spec string
    (so a 64-bit hash collision is detected, not silently served), the
    payload, and an FNV-1a checksum of the payload.

    Writes are atomic (tmp + rename via {!Util.Fileio}); a crash mid-write
    can never leave a half entry. Reads verify everything written:

    - a {e missing} entry is a plain miss;
    - a {e stale} entry (format or entity version mismatch, spec-hash
      collision) is skipped with an [Info]-severity [`Degraded_fallback]
      diagnostic and recomputed — expected after a codec upgrade;
    - a {e corrupt} entry (bad magic, checksum mismatch, decode failure)
      is deleted, reported as a [Warning]-severity [`Degraded_fallback]
      diagnostic, and recomputed — the store degrades to a recompute,
      never to wrong results.

    All operations are safe to call concurrently from multiple domains:
    statistics are atomic and file replacement is atomic-rename. *)

val format_version : int
(** Bumped when the header layout changes; part of every entry's identity
    (a mismatch makes the entry stale). *)

type t

val open_ : ?diag:Util.Diag.sink -> dir:string -> unit -> t
(** Create [dir] (and parents) if needed. [diag] receives the
    degraded-fallback events described above. *)

val dir : t -> string

val key : spec:string -> string
(** The content address: FNV-1a 64 of the spec, as 16 hex digits. *)

val path : t -> 'a Entity.t -> spec:string -> string
(** The file an entry lives at (exposed for tests and corruption
    injection). *)

val put : t -> 'a Entity.t -> spec:string -> 'a -> unit
(** Encode and atomically write the entry. *)

val get : t -> 'a Entity.t -> spec:string -> 'a option
(** Load and fully verify an entry; [None] on missing / stale / corrupt
    (with the per-case handling described above). *)

type outcome =
  [ `Hit  (** served from disk *)
  | `Miss  (** no entry; computed and stored *)
  | `Recovered  (** entry was stale or corrupt; recomputed and replaced *) ]

val find_or_add : t -> 'a Entity.t -> spec:string -> (unit -> 'a) -> 'a * outcome
(** The store's main loop: serve the verified entry, or compute, store and
    return the fresh value. The recompute path stores its result even when
    the entry was merely stale, upgrading the store in place. *)

val remove : t -> 'a Entity.t -> spec:string -> unit
(** Delete an entry if present. *)

type stats = {
  hits : int;
  misses : int;
  recovered : int;  (** stale or corrupt entries replaced by recompute *)
  writes : int;
  entries : int;  (** files currently in the store directory *)
  bytes : int;  (** their total size *)
}

val stats : t -> stats
(** Counters since {!open_} plus a directory scan for entries/bytes. *)
