type repair =
  | Exact
  | Jittered of float
  | Eig_clipped of { clipped : int; min_eigenvalue : float; jitter : float }

type t = { upper : Linalg.Mat.t; jitter : float; repair : repair }

let stage = "mvn.of_covariance"

(* Higham-style PSD projection: clip negative eigenvalues of the symmetric
   eigendecomposition at 0 and rebuild Q Λ₊ Qᵀ. *)
let psd_project k =
  let n = Linalg.Mat.rows k in
  let vals, q = Linalg.Sym_eig.eig k in
  let clipped = ref 0 in
  let min_eigenvalue = ref infinity in
  let clamped =
    Array.map
      (fun v ->
        if v < !min_eigenvalue then min_eigenvalue := v;
        if v < 0.0 then begin
          incr clipped;
          0.0
        end
        else v)
      vals
  in
  (* (Q Λ₊) Qᵀ, then symmetrize to remove rounding asymmetry *)
  let scaled =
    Linalg.Mat.init n n (fun i j -> Linalg.Mat.unsafe_get q i j *. clamped.(j))
  in
  let product = Linalg.Mat.mul scaled (Linalg.Mat.transpose q) in
  let repaired =
    Linalg.Mat.init n n (fun i j ->
        0.5
        *. (Linalg.Mat.unsafe_get product i j +. Linalg.Mat.unsafe_get product j i))
  in
  (repaired, !clipped, !min_eigenvalue)

let of_covariance ?diag k =
  (match Linalg.Mat.find_non_finite k with
  | Some (i, j) ->
      Util.Diag.fail ?sink:diag `Non_finite ~stage
        (Printf.sprintf "covariance entry (%d, %d) is not finite" i j)
  | None -> ());
  match Linalg.Cholesky.factor_jittered k with
  | lower, jitter ->
      if jitter > 0.0 then
        Util.Diag.record ?sink:diag Warning `Degraded_fallback ~stage
          (Printf.sprintf "Cholesky needed diagonal jitter %g (semi-definite input)"
             jitter);
      {
        upper = Linalg.Mat.transpose lower;
        jitter;
        repair = (if jitter = 0.0 then Exact else Jittered jitter);
      }
  | exception Linalg.Cholesky.Not_positive_definite pivot ->
      Util.Diag.record ?sink:diag Warning `Not_psd ~stage
        (Printf.sprintf
           "covariance indefinite (Cholesky pivot %d failed after jitter \
            escalation); applying eigenvalue-clip PSD repair"
           pivot);
      let repaired, clipped, min_eigenvalue = psd_project k in
      (match Linalg.Cholesky.factor_jittered repaired with
      | lower, jitter ->
          Util.Diag.record ?sink:diag Warning `Degraded_fallback ~stage
            (Printf.sprintf
               "PSD repair clipped %d negative eigenvalues (min %g), jitter %g"
               clipped min_eigenvalue jitter);
          {
            upper = Linalg.Mat.transpose lower;
            jitter;
            repair = Eig_clipped { clipped; min_eigenvalue; jitter };
          }
      | exception Linalg.Cholesky.Not_positive_definite pivot ->
          Util.Diag.fail ?sink:diag `Not_psd ~stage
            (Printf.sprintf
               "eigenvalue-clip repair still indefinite at pivot %d — matrix is \
                not a covariance"
               pivot))

let jitter_used t = t.jitter

let repair_used t = t.repair

let degraded t = match t.repair with Exact -> false | Jittered _ | Eig_clipped _ -> true

let dim t = Linalg.Mat.rows t.upper

let sample t rng =
  let n = dim t in
  let z = Gaussian.vector rng n in
  (* x = z · U, accumulating row-wise (x += z_i * U[i, i:]) so the inner loop
     streams over contiguous memory; raw buffer access keeps the O(n²) loop
     free of cross-module accessor calls *)
  let u = Linalg.Mat.raw t.upper in
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let zi = Array.unsafe_get z i in
    let row = i * n in
    for j = i to n - 1 do
      Array.unsafe_set x j
        (Array.unsafe_get x j +. (zi *. Bigarray.Array1.unsafe_get u (row + j)))
    done
  done;
  x

let sample_matrix t rng ~n =
  let d = dim t in
  let m = Linalg.Mat.create n d in
  for i = 0 to n - 1 do
    Linalg.Mat.set_row m i (sample t rng)
  done;
  m
