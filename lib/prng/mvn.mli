(** Correlated multivariate-normal sampling through a Cholesky factor — the
    sample-generation core of the paper's Algorithm 1.

    Factorization runs a fallback chain with recorded degradation instead of
    hard failure: plain Cholesky, then exponentially escalating diagonal
    jitter, then a Higham-style eigenvalue-clip PSD repair (negative
    eigenvalues of the symmetric eigendecomposition clipped at 0) for
    genuinely indefinite inputs. Every degraded step emits a
    {!Util.Diag} event. *)

type repair =
  | Exact  (** plain Cholesky succeeded *)
  | Jittered of float  (** diagonal jitter of the given size was needed *)
  | Eig_clipped of { clipped : int; min_eigenvalue : float; jitter : float }
      (** eigenvalue-clip PSD repair: [clipped] negative eigenvalues (most
          negative [min_eigenvalue]) were zeroed, then jittered Cholesky *)

type t
(** A prepared sampler holding the upper Cholesky factor of the target
    covariance. *)

val of_covariance : ?diag:Util.Diag.sink -> Linalg.Mat.t -> t
(** [of_covariance k] factors the covariance matrix [k] through the fallback
    chain above, recording degradation into [diag]. Raises
    [Util.Diag.Failure] with [`Non_finite] when [k] contains NaN/inf and
    with [`Not_psd] when even the PSD repair cannot produce a factor. *)

val jitter_used : t -> float
(** Diagonal jitter added during factorization (0 when none). *)

val repair_used : t -> repair
(** Which step of the fallback chain produced the factor. *)

val degraded : t -> bool
(** [repair_used t <> Exact]. *)

val dim : t -> int

val sample : t -> Rng.t -> float array
(** One correlated sample [z · U] with [z] standard normal. *)

val sample_matrix : t -> Rng.t -> n:int -> Linalg.Mat.t
(** [sample_matrix t rng ~n] is the paper's
    [RandNormal(N, N_p) · U]: [n] correlated rows. *)
