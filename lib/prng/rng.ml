(* xoshiro256++ (Blackman & Vigna), seeded through splitmix64. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let substream ~seed ~stream =
  (* counter-based derivation: hash seed and stream index independently
     through splitmix64 and combine, so stream k of a run is a fixed
     function of (seed, k) — no generator state is threaded between
     streams, which lets batches be sampled in any order or in parallel
     while staying bit-reproducible *)
  let a = ref (Int64.of_int seed) in
  let b = ref (Int64.lognot (Int64.of_int stream)) in
  let state = ref (Int64.logxor (splitmix64 a) (splitmix64 b)) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let uniform t =
  (* top 53 bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (bits64 t) 11) *. 0x1.0p-53

let uniform_range t ~lo ~hi =
  if hi <= lo then invalid_arg "Rng.uniform_range: requires lo < hi";
  lo +. ((hi -. lo) *. uniform t)

let int_below t n =
  if n <= 0 then invalid_arg "Rng.int_below: requires n > 0";
  (* rejection sampling to avoid modulo bias *)
  let n64 = Int64.of_int n in
  let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int n64) in
  let rec draw () =
    let v = Int64.shift_right_logical (bits64 t) 1 in
    if v >= limit then draw () else Int64.to_int (Int64.rem v n64)
  in
  draw ()

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
