(** Deterministic pseudo-random number generation (xoshiro256++).

    Every stochastic component of the reproduction takes an explicit [t] so
    that whole experiments are bit-reproducible from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] initializes the state from [seed] via splitmix64. Any
    integer is a valid seed. *)

val split : t -> t
(** [split t] derives an independent generator stream and advances [t];
    used to give each process parameter / circuit its own stream. *)

val substream : seed:int -> stream:int -> t
(** [substream ~seed ~stream] is the [stream]-th counter-derived generator
    of master seed [seed]: a pure function of the pair, with no state
    threaded between substreams. Used to give each Monte Carlo batch its
    own stream so batches can be generated in any order (or in parallel)
    while the whole experiment stays bit-reproducible. *)

val copy : t -> t
(** Snapshot of the current state. *)

val uniform : t -> float
(** Uniform float in [0, 1) with 53 random bits. *)

val uniform_range : t -> lo:float -> hi:float -> float
(** Uniform float in [lo, hi). Raises [Invalid_argument] if [hi <= lo]. *)

val int_below : t -> int -> int
(** [int_below t n] is a uniform integer in [0, n). Raises
    [Invalid_argument] for [n <= 0]. *)

val bits64 : t -> int64
(** Raw 64 random bits. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)
