type stats = { appended : int; flushed_groups : int; max_group : int }

type 'a bucket = { id : int; mutable items : 'a list; mutable count : int; deadline_ns : int }

type 'a t = {
  window_s : float;
  max_batch : int;
  flush : string -> 'a list -> unit;
  lock : Mutex.t;
  wake : Condition.t;
  buckets : (string, 'a bucket) Hashtbl.t;
  order : (int * string * int) Queue.t;  (* (bucket id, key, deadline_ns), FIFO = deadline order *)
  mutable next_id : int;
  mutable stopped : bool;
  mutable appended : int;
  mutable flushed_groups : int;
  mutable max_group : int;
  mutable timer : Thread.t option;
}

let record_flush t n =
  t.flushed_groups <- t.flushed_groups + 1;
  if n > t.max_group then t.max_group <- n

(* Pop every due (or all, when [~all]) groups under the lock; flush outside it
   so the flush callback can take downstream locks freely. *)
let drain_due t ~all =
  let due = ref [] in
  Mutex.lock t.lock;
  (try
     let continue = ref true in
     while !continue do
       match Queue.peek_opt t.order with
       | None -> continue := false
       | Some (bid, key, deadline) ->
           if all || deadline <= Util.Trace.now_ns () then begin
             ignore (Queue.pop t.order);
             match Hashtbl.find_opt t.buckets key with
             | Some b when b.id = bid ->
                 Hashtbl.remove t.buckets key;
                 record_flush t b.count;
                 due := (key, List.rev b.items) :: !due
             | _ -> ()  (* stale entry: that bucket already flushed via max_batch *)
           end
           else continue := false
     done
   with e ->
     Mutex.unlock t.lock;
     raise e);
  Mutex.unlock t.lock;
  List.iter (fun (key, items) -> t.flush key items) (List.rev !due)

let timer_loop t () =
  let rec loop () =
    Mutex.lock t.lock;
    let action =
      if t.stopped then `Exit
      else
        match Queue.peek_opt t.order with
        | None ->
            Condition.wait t.wake t.lock;
            `Recheck
        | Some (_, _, deadline) ->
            let now = Util.Trace.now_ns () in
            if deadline <= now then `Drain else `Sleep (float_of_int (deadline - now) *. 1e-9)
    in
    Mutex.unlock t.lock;
    match action with
    | `Exit -> ()
    | `Recheck -> loop ()
    | `Drain ->
        drain_due t ~all:false;
        loop ()
    | `Sleep s ->
        Thread.delay s;
        loop ()
  in
  loop ()

let create ~window_s ~max_batch ~flush =
  let t =
    {
      window_s;
      max_batch;
      flush;
      lock = Mutex.create ();
      wake = Condition.create ();
      buckets = Hashtbl.create 16;
      order = Queue.create ();
      next_id = 0;
      stopped = false;
      appended = 0;
      flushed_groups = 0;
      max_group = 1;
      timer = None;
    }
  in
  if window_s > 0. && max_batch > 1 then t.timer <- Some (Thread.create (timer_loop t) ());
  t

let add t ~key v =
  Mutex.lock t.lock;
  t.appended <- t.appended + 1;
  if t.stopped || not (t.window_s > 0.) || t.max_batch <= 1 then begin
    record_flush t 1;
    Mutex.unlock t.lock;
    t.flush key [ v ]
  end
  else
    match Hashtbl.find_opt t.buckets key with
    | Some b ->
        b.items <- v :: b.items;
        b.count <- b.count + 1;
        if b.count >= t.max_batch then begin
          (* full group flushes on the adding thread: no latency at saturation *)
          Hashtbl.remove t.buckets key;
          record_flush t b.count;
          Mutex.unlock t.lock;
          t.flush key (List.rev b.items)
        end
        else Mutex.unlock t.lock
    | None ->
        let id = t.next_id in
        t.next_id <- id + 1;
        let deadline_ns = Util.Trace.now_ns () + int_of_float (t.window_s *. 1e9) in
        Hashtbl.replace t.buckets key { id; items = [ v ]; count = 1; deadline_ns };
        Queue.push (id, key, deadline_ns) t.order;
        Condition.signal t.wake;
        Mutex.unlock t.lock

let flush_all t = drain_due t ~all:true

let shutdown t =
  Mutex.lock t.lock;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Condition.signal t.wake;
  let timer = t.timer in
  t.timer <- None;
  Mutex.unlock t.lock;
  if not was_stopped then begin
    (match timer with Some th -> Thread.join th | None -> ());
    drain_due t ~all:true
  end

let stats t =
  Mutex.lock t.lock;
  let s = { appended = t.appended; flushed_groups = t.flushed_groups; max_group = t.max_group } in
  Mutex.unlock t.lock;
  s
