(** Request accumulation windows: group compatible items arriving within a
    short window under the same key, then flush the whole group at once.

    The server uses this on top of the per-key single-flight cache: [run_mc]
    requests that share a model-spec key but differ in seed/sample-count
    accumulate for [window_s], then run as {e one} pipeline invocation that
    resolves the circuit, cache tiers, and samplers once and fans the group
    out — amortizing cache lookups and pool dispatch across the group.

    Ordering within a key is preserved (items flush in arrival order). A
    group flushes when its window expires, when it reaches [max_batch]
    (flushed on the {e adding} thread — no extra latency at saturation), or
    on {!flush_all}/{!shutdown}. One timer thread per collector. *)

type 'a t

type stats = {
  appended : int;  (** items accepted by {!add} *)
  flushed_groups : int;
  max_group : int;  (** largest group flushed so far *)
}

val create : window_s:float -> max_batch:int -> flush:(string -> 'a list -> unit) -> 'a t
(** [flush key items] is called outside the collector lock, on the timer
    thread or the adding thread — it must not call back into {!add}. A
    non-positive [window_s] or [max_batch <= 1] makes every add flush
    immediately as a singleton group. *)

val add : 'a t -> key:string -> 'a -> unit
(** After {!shutdown}, an add flushes immediately as a singleton (the
    server's draining check replies [shutting_down] downstream). *)

val flush_all : 'a t -> unit
(** Synchronously flush every open group (drain choreography). *)

val shutdown : 'a t -> unit
(** Flush everything and stop the timer thread; idempotent. *)

val stats : 'a t -> stats
