type config = {
  requests : int;
  workers : int;
  mc_samples : int;
  max_area_fraction : float;
  crash_period : int;
  crash_limit : int;
  read_error_period : int;
  short_read_period : int;
  torn_write_period : int;
  latency_period : int;
  latency_ms : float;
  client_timeout_s : float;
  recovery_probes : int;
  router_shards : int;
}

let default_config =
  {
    requests = 120;
    workers = 2;
    mc_samples = 32;
    max_area_fraction = 0.05;
    crash_period = 15;
    crash_limit = 6;
    read_error_period = 6;
    short_read_period = 9;
    torn_write_period = 3;
    latency_period = 4;
    latency_ms = 0.2;
    client_timeout_s = 30.0;
    recovery_probes = 250;
    router_shards = 0;
  }

type fault_count = { fault : string; fired : int }

type report = {
  requests : int;
  ok : int;
  checked : int;
  wrong_results : int;
  typed_errors : int;
  transport_failures : int;
  id_violations : int;
  faults_injected : int;
  fault_counts : fault_count list;
  worker_restarts : int;
  quarantined : int;
  recovered : bool;
  client : Client.stats;
}

let report_to_string r =
  Printf.sprintf
    "%d requests: %d ok (%d checked, %d wrong), %d typed errors, %d transport \
     failures, %d req_id violations; %d faults injected (%s); %d worker \
     restarts, %d quarantined; recovered=%b; client: %d attempts, %d retries, \
     %d breaker opens"
    r.requests r.ok r.checked r.wrong_results r.typed_errors r.transport_failures
    r.id_violations r.faults_injected
    (String.concat ", "
       (List.map (fun f -> Printf.sprintf "%s=%d" f.fault f.fired) r.fault_counts))
    r.worker_restarts r.quarantined r.recovered r.client.Client.attempts
    r.client.Client.retries r.client.Client.breaker_opens

(* the invariants the harness exists to assert; CI and dune runtest fail on
   any violation *)
let violations ?(min_faults = 50) r =
  List.filter_map
    (fun (bad, msg) -> if bad then Some msg else None)
    [
      (r.wrong_results > 0, Printf.sprintf "%d wrong results (must be 0)" r.wrong_results);
      ( r.transport_failures > 0,
        Printf.sprintf "%d failures were not typed errors" r.transport_failures );
      ( r.faults_injected < min_faults,
        Printf.sprintf "only %d faults injected (want >= %d)" r.faults_injected min_faults );
      (not r.recovered, "server did not recover to healthy");
      ( r.typed_errors > r.requests / 4,
        Printf.sprintf "typed-error rate too high: %d/%d" r.typed_errors r.requests );
      ( r.id_violations > 0,
        Printf.sprintf
          "%d replies did not echo their request ID exactly once (must be 0)"
          r.id_violations );
    ]

(* ---------------------------------------------------------------- *)

let tiny_bench = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = NAND(a, b)\ny = NOT(x)\n"

(* every chaos request carries a correlation ID so the harness can assert
   end-to-end propagation — including through retries and router failover *)
let chaos_req_id id = "chaos-" ^ string_of_int id

let run_mc_line ~id ~sampler ~n ~seed =
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("id", Jsonx.Num (float_of_int id));
         ("req_id", Jsonx.Str (chaos_req_id id));
         ("method", Jsonx.Str "run_mc");
         ( "params",
           Jsonx.Obj
             [
               ("circuit", Jsonx.Obj [ ("bench", Jsonx.Str tiny_bench) ]);
               ("sampler", Jsonx.Str sampler);
               ("n", Jsonx.Num (float_of_int n));
               ("seed", Jsonx.Num (float_of_int seed));
             ] );
       ])

let prepare_line ~id =
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("id", Jsonx.Num (float_of_int id));
         ("req_id", Jsonx.Str (chaos_req_id id));
         ("method", Jsonx.Str "prepare");
         ("params", Jsonx.Obj [ ("circuit", Jsonx.Obj [ ("bench", Jsonx.Str tiny_bench) ]) ]);
       ])

let health_line ~id =
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("id", Jsonx.Num (float_of_int id));
         ("req_id", Jsonx.Str (chaos_req_id id));
         ("method", Jsonx.Str "health");
       ])

(* the request mix: three distinct MC workloads whose results are checked
   bit-for-bit against the fault-free baseline, plus prepare and health
   traffic. The MC requests are the "zero wrong results" witnesses: any
   fault that silently corrupted a cached artifact would shift their
   statistics. *)
let request_kinds cfg =
  [|
    ("mc-kle", (fun id -> run_mc_line ~id ~sampler:"kle" ~n:cfg.mc_samples ~seed:7), true);
    ("prepare", (fun id -> prepare_line ~id), false);
    ("mc-qmc", (fun id -> run_mc_line ~id ~sampler:"kle-qmc" ~n:cfg.mc_samples ~seed:7), true);
    ("health", (fun id -> health_line ~id), false);
    ("mc-kle-b", (fun id -> run_mc_line ~id ~sampler:"kle" ~n:(cfg.mc_samples / 2) ~seed:11), true);
  |]

let mc_bits payload =
  match
    ( Option.bind (Jsonx.member "worst_mean" payload) Jsonx.as_num,
      Option.bind (Jsonx.member "worst_sigma" payload) Jsonx.as_num )
  with
  | Some m, Some s -> Some (Int64.bits_of_float m, Int64.bits_of_float s)
  | _ -> None

let server_config ?(store_dir = None) cfg =
  {
    Server.default_config with
    Server.store_dir;
    (* a 1-entry memory LRU forces every artifact back through the disk
       tier, maximising the I/O fault surface *)
    cache_entries = 1;
    workers = cfg.workers;
    kle =
      {
        Ssta.Algorithm2.paper_config with
        Ssta.Algorithm2.max_area_fraction = cfg.max_area_fraction;
      };
  }

let direct_health_ok payload =
  let b key = Option.bind (Jsonx.member key payload) Jsonx.as_bool in
  let n key = Option.bind (Jsonx.member key payload) Jsonx.as_num in
  (* the probe itself occupies one worker while it is being answered *)
  b "healthy" = Some true
  && n "queue_depth" = Some 0.0
  && match n "workers_busy" with Some busy -> busy <= 1.0 | None -> false

(* a router health payload aggregates per-shard health under [shard_health];
   recovery means the router is healthy AND every shard individually is *)
let health_ok payload =
  match Jsonx.member "shard_health" payload with
  | Some (Jsonx.List shard_payloads) ->
      Option.bind (Jsonx.member "healthy" payload) Jsonx.as_bool = Some true
      && List.for_all direct_health_ok shard_payloads
  | Some _ -> false
  | None -> direct_health_ok payload

(* the router-mode "shard connection dies mid-send" fault: raised from a
   wrapped backend so the router's replica failover path gets exercised *)
exception Blackout

let count_occurrences ~needle hay =
  let n = String.length needle in
  if n = 0 then 0
  else begin
    let acc = ref 0 in
    let i = ref 0 in
    let limit = String.length hay - n in
    while !i <= limit do
      (match String.index_from_opt hay !i needle.[0] with
      | Some j when j <= limit ->
          if String.equal (String.sub hay j n) needle then incr acc;
          i := j + 1
      | Some _ | None -> i := limit + 1);
      ()
    done;
    !acc
  end

let run ?diag ?(log = fun _ -> ()) ~store_dir cfg =
  let diag = match diag with Some d -> d | None -> Util.Diag.create () in
  let kinds = request_kinds cfg in
  (* ---- phase 1: fault-free baseline on a clean single-worker server *)
  log "chaos: computing fault-free baseline";
  let baseline =
    let server =
      Server.create ~diag { (server_config cfg) with Server.workers = 1 }
    in
    Fun.protect
      ~finally:(fun () -> Server.drain server)
      (fun () ->
        let client = Client.create ~diag (Server.submit server) in
        Array.to_list kinds
        |> List.filter_map (fun (name, make, checked) ->
               if not checked then None
               else
                 match Client.call client (make 0) with
                 | Ok payload -> Option.map (fun bits -> (name, bits)) (mc_bits payload)
                 | Error f ->
                     invalid_arg
                       (Printf.sprintf "chaos baseline failed for %s: %s" name
                          (Client.failure_to_string f))))
  in
  (* ---- phase 2: the same mix against fault-injected serving. With
     [router_shards > 0] the storm is driven through a consistent-hash
     {!Router} in front of N shard servers sharing one store directory;
     every shard gets its own fresh fault plans, and shard 0's backend
     additionally blacks out periodically (raising mid-send) so the
     router's replica-failover path is exercised under load. *)
  let shard_count = if cfg.router_shards > 0 then cfg.router_shards else 1 in
  let make_plans () =
    [
      ("read-error", Util.Fault.io_plan ~period:cfg.read_error_period Util.Fault.Read_error);
      ("short-read", Util.Fault.io_plan ~period:cfg.short_read_period Util.Fault.Short_read);
      ("torn-write", Util.Fault.io_plan ~period:cfg.torn_write_period Util.Fault.Torn_write);
      ( "latency",
        Util.Fault.io_plan ~period:cfg.latency_period (Util.Fault.Latency cfg.latency_ms) );
    ]
  in
  let shard_faults =
    List.init shard_count (fun _ ->
        ( make_plans (),
          Util.Fault.io_plan ~first:1 ~period:cfg.crash_period ~limit:cfg.crash_limit
            Util.Fault.Crash ))
  in
  let servers =
    List.map
      (fun (plans, crash_plan) ->
        Server.create ~diag
          {
            (server_config ~store_dir:(Some store_dir) cfg) with
            Server.store_io_faults = List.map snd plans;
            chaos_crash = Some crash_plan;
          })
      shard_faults
  in
  let blackout_plan =
    Util.Fault.io_plan ~first:12 ~period:23 ~limit:cfg.crash_limit Util.Fault.Crash
  in
  let router =
    if cfg.router_shards <= 0 then None
    else
      let backends =
        List.mapi
          (fun i server ->
            let b =
              Router.backend_of_server ~describe:(Printf.sprintf "shard-%d" i) server
            in
            if i > 0 then b
            else
              {
                b with
                Router.send =
                  (fun request ~reply ->
                    if Util.Fault.fires blackout_plan then raise Blackout
                    else b.Router.send request ~reply);
              })
          servers
      in
      Some
        (Router.create
           ~config:
             { Router.default_config with Router.replicas = min 2 cfg.router_shards }
           backends)
  in
  let base_transport =
    match router with
    | Some r -> fun line ~reply -> Router.submit r ~wire:`Json line ~reply
    | None -> Server.submit (List.hd servers)
  in
  (* the propagation assertion: every reply — including replies to retried
     and failed-over sends — must echo the originating request's [req_id]
     exactly once. The substring count catches duplicated fields that a
     JSON parser would silently collapse. *)
  let id_violations = Atomic.make 0 in
  let sent_req_id line =
    match Jsonx.parse line with
    | Ok json -> Option.bind (Jsonx.member "req_id" json) Jsonx.as_str
    | Error _ -> None
  in
  let check_echo ~want reply =
    let echoed =
      match Jsonx.parse reply with
      | Ok json -> Option.bind (Jsonx.member "req_id" json) Jsonx.as_str
      | Error _ -> None
    in
    let count = count_occurrences ~needle:"\"req_id\"" reply in
    if count <> 1 || not (Option.equal String.equal echoed (Some want)) then begin
      Atomic.incr id_violations;
      log
        (Printf.sprintf
           "chaos: req_id VIOLATION (want %s, %d occurrence(s)) in reply %s" want
           count reply)
    end
  in
  let transport line ~reply =
    match sent_req_id line with
    | None -> base_transport line ~reply
    | Some want ->
        base_transport line ~reply:(fun r ->
            check_echo ~want r;
            reply r)
  in
  let client =
    Client.create ~diag
      ~policy:
        {
          Client.default_policy with
          Client.timeout_s = Some cfg.client_timeout_s;
          max_attempts = 4;
          backoff_s = 0.005;
          max_backoff_s = 0.1;
          (* quarantined requests answer non-retryable internal_error by
             design; don't let them trip the breaker and poison the
             healthy requests that follow *)
          breaker_threshold = max_int;
        }
      transport
  in
  let ok = ref 0 and checked = ref 0 and wrong = ref 0 in
  let typed = ref 0 and transport = ref 0 in
  for i = 0 to cfg.requests - 1 do
    let name, make, check = kinds.(i mod Array.length kinds) in
    (match Client.call client (make i) with
    | Ok payload ->
        incr ok;
        if check then begin
          incr checked;
          match (mc_bits payload, List.assoc_opt name baseline) with
          | Some got, Some want when got = want -> ()
          | Some _, Some _ | None, Some _ ->
              incr wrong;
              log (Printf.sprintf "chaos: WRONG RESULT for %s (request %d)" name i)
          | _, None -> ()
        end
    | Error (Client.Protocol_error _) -> incr typed
    | Error (Client.Timed_out _ | Client.Transport_failed _ | Client.Circuit_open) ->
        incr transport);
    if (i + 1) mod 20 = 0 then
      log (Printf.sprintf "chaos: %d/%d requests (%d ok, %d typed errors)" (i + 1)
             cfg.requests !ok !typed)
  done;
  (* ---- phase 3: recovery probe — a healthy answer means workers alive,
     queue empty, nothing stuck *)
  let recovered = ref false in
  let probes = ref 0 in
  while (not !recovered) && !probes < cfg.recovery_probes do
    incr probes;
    (match Client.call client (health_line ~id:(cfg.requests + !probes)) with
    | Ok payload when health_ok payload -> recovered := true
    | Ok _ | Error _ -> Thread.delay 0.02);
  done;
  log (Printf.sprintf "chaos: recovery probe %s after %d probe(s)"
         (if !recovered then "healthy" else "NOT healthy") !probes);
  let worker_restarts =
    List.fold_left (fun acc s -> acc + Server.worker_restarts s) 0 servers
  in
  let quarantined = List.fold_left (fun acc s -> acc + Server.quarantined s) 0 servers in
  List.iter Server.drain servers;
  let fault_counts =
    let io_count name =
      {
        fault = name;
        fired =
          List.fold_left
            (fun acc (plans, _) -> acc + Util.Fault.fired (List.assoc name plans))
            0 shard_faults;
      }
    in
    List.map io_count [ "read-error"; "short-read"; "torn-write"; "latency" ]
    @ [
        {
          fault = "crash";
          fired =
            List.fold_left (fun acc (_, cp) -> acc + Util.Fault.fired cp) 0 shard_faults;
        };
      ]
    @
    if cfg.router_shards > 0 then
      [ { fault = "blackout"; fired = Util.Fault.fired blackout_plan } ]
    else []
  in
  {
    requests = cfg.requests;
    ok = !ok;
    checked = !checked;
    wrong_results = !wrong;
    typed_errors = !typed;
    transport_failures = !transport;
    id_violations = Atomic.get id_violations;
    faults_injected = List.fold_left (fun acc f -> acc + f.fired) 0 fault_counts;
    fault_counts;
    worker_restarts;
    quarantined;
    recovered = !recovered;
    client = Client.stats client;
  }
