(** Deterministic chaos harness for the serving tier.

    Replays a fixed request mix against an in-process {!Server} while a
    counter-selected fault schedule ({!Util.Fault.io_plan}) injects worker
    crashes, store read errors, short reads, torn writes and latency —
    then asserts the self-healing invariants:

    - {b zero wrong results}: every successful MC response is compared
      bit-for-bit ([worst_mean]/[worst_sigma] IEEE-754 bit patterns)
      against a fault-free baseline computed first;
    - {b every failure is typed}: a client-visible failure must be a
      protocol error ([internal_error] from quarantine, [overloaded], …),
      never a lost reply or a hang;
    - {b bounded error rate} and a minimum number of injected faults (the
      run must actually have been stressed);
    - {b recovery}: after the storm, the server answers [health] as
      healthy — workers alive, queue empty — within a bounded number of
      probes;
    - {b correlation-ID propagation}: every chaos request carries a
      [req_id], and every reply — including replies to retried and
      failed-over sends — must echo it exactly once (a raw substring count
      catches duplicated fields a JSON parser would collapse).

    Both [bench chaos] and the [test_serve] chaos test drive this module,
    so CI and [dune runtest] assert the same invariants. *)

type config = {
  requests : int;  (** total requests in the storm *)
  workers : int;
  mc_samples : int;  (** MC sample count per run_mc request *)
  max_area_fraction : float;  (** mesh coarseness (small = fast tests) *)
  crash_period : int;  (** worker-crash plan period (per dequeued job) *)
  crash_limit : int;  (** cap on injected crashes *)
  read_error_period : int;  (** store-read failure period (per store read) *)
  short_read_period : int;
  torn_write_period : int;  (** per store write *)
  latency_period : int;  (** per store read or write *)
  latency_ms : float;
  client_timeout_s : float;  (** per-attempt client timeout *)
  recovery_probes : int;  (** health probes before declaring no recovery *)
  router_shards : int;
      (** 0 (default) storms a single server directly. [n > 0] storms a
          consistent-hash {!Router} over [n] shard servers sharing one
          store, each with its own fault plans; shard 0's backend also
          blacks out periodically so replica failover is exercised. The
          zero-wrong-results check then also asserts cross-shard
          bit-identity against the single-server baseline. *)
}

val default_config : config
(** 120 requests on 2 workers, all five fault families enabled at periods
    that inject well over 50 faults. *)

type fault_count = { fault : string; fired : int }

type report = {
  requests : int;
  ok : int;  (** requests answered [ok] *)
  checked : int;  (** MC responses compared against the baseline *)
  wrong_results : int;  (** bit-level mismatches — the invariant is 0 *)
  typed_errors : int;  (** requests answered with a typed protocol error *)
  transport_failures : int;  (** timeouts / lost replies — the invariant is 0 *)
  id_violations : int;
      (** replies that did not echo their request's [req_id] exactly once —
          the invariant is 0 *)
  faults_injected : int;
  fault_counts : fault_count list;  (** per-family injection counts *)
  worker_restarts : int;
  quarantined : int;
  recovered : bool;  (** the final [health] probe came back healthy *)
  client : Client.stats;
}

val report_to_string : report -> string

val violations : ?min_faults:int -> report -> string list
(** The violated invariants, as human-readable messages; empty when the
    run passed. [min_faults] defaults to 50 (the acceptance bar). *)

val run :
  ?diag:Util.Diag.sink -> ?log:(string -> unit) -> store_dir:string -> config -> report
(** Run baseline, storm and recovery probe. [store_dir] is the chaos
    server's store directory (created if needed; faults are injected
    behind it — use a scratch directory). [log] receives progress lines. *)
