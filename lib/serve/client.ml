type transport = string -> reply:(string -> unit) -> unit

type policy = {
  timeout_s : float option;
  max_attempts : int;
  backoff_s : float;
  backoff_mult : float;
  max_backoff_s : float;
  jitter : float;
  breaker_threshold : int;
  breaker_cooldown_s : float;
}

let default_policy =
  {
    timeout_s = Some 60.0;
    max_attempts = 4;
    backoff_s = 0.01;
    backoff_mult = 2.0;
    max_backoff_s = 1.0;
    jitter = 0.2;
    breaker_threshold = 8;
    breaker_cooldown_s = 1.0;
  }

type failure =
  | Protocol_error of Protocol.error_code * string
  | Timed_out of float
  | Transport_failed of string
  | Circuit_open

let failure_to_string = function
  | Protocol_error (code, msg) ->
      Printf.sprintf "%s: %s" (Protocol.error_code_name code) msg
  | Timed_out s -> Printf.sprintf "timed out after %gs" s
  | Transport_failed msg -> "transport failed: " ^ msg
  | Circuit_open -> "circuit breaker open"

type stats = {
  calls : int;
  attempts : int;
  retries : int;
  failures : int;
  breaker_opens : int;
}

type breaker_state = Closed | Open of int (* reopen probe deadline, now_ns *) | Half_open

type t = {
  transport : transport;
  policy : policy;
  wire : [ `Json | `Binary ];
  diag : Util.Diag.sink option;
  seed : int;  (* also namespaces generated correlation IDs *)
  req_seq : int Atomic.t;
  lock : Mutex.t;
  mutable breaker : breaker_state;
  mutable consecutive_failures : int;
  mutable rng : int64;  (* LCG state for deterministic backoff jitter *)
  n_calls : int Atomic.t;
  n_attempts : int Atomic.t;
  n_retries : int Atomic.t;
  n_failures : int Atomic.t;
  n_breaker_opens : int Atomic.t;
}

let create ?diag ?(policy = default_policy) ?(seed = 1) ?(wire = `Json) transport =
  if policy.max_attempts < 1 then invalid_arg "Client.create: max_attempts < 1";
  {
    transport;
    policy;
    wire;
    diag;
    seed;
    req_seq = Atomic.make 0;
    lock = Mutex.create ();
    breaker = Closed;
    consecutive_failures = 0;
    rng = Int64.of_int (0x9E3779B9 lxor seed);
    n_calls = Atomic.make 0;
    n_attempts = Atomic.make 0;
    n_retries = Atomic.make 0;
    n_failures = Atomic.make 0;
    n_breaker_opens = Atomic.make 0;
  }

let stats t =
  {
    calls = Atomic.get t.n_calls;
    attempts = Atomic.get t.n_attempts;
    retries = Atomic.get t.n_retries;
    failures = Atomic.get t.n_failures;
    breaker_opens = Atomic.get t.n_breaker_opens;
  }

(* deterministic jitter (no wall clock, no global RNG): a 64-bit LCG
   stepped under the client lock; the factor lands in [1-j, 1+j] *)
let jitter_factor t =
  Mutex.protect t.lock (fun () ->
      t.rng <- Int64.add (Int64.mul t.rng 6364136223846793005L) 1442695040888963407L;
      let u = Int64.to_float (Int64.shift_right_logical t.rng 11) /. 9007199254740992.0 in
      1.0 +. (t.policy.jitter *. ((2.0 *. u) -. 1.0)))

let record t severity msg =
  Util.Diag.record ?sink:t.diag severity `Degraded_fallback ~stage:"serve.client" msg

(* retryable: transient conditions another attempt can clear — backpressure,
   an expired deadline, a transport hiccup or timeout. Everything else is
   permanent for this request: bad input stays bad, [internal_error] means
   the server quarantined the request after it crashed workers (retrying
   would crash more), [shutting_down] means the server is going away. *)
let retryable = function
  | Protocol_error ((Protocol.Overloaded | Protocol.Deadline_exceeded), _) -> true
  | Timed_out _ | Transport_failed _ -> true
  | Protocol_error _ | Circuit_open -> false

(* classification also surfaces the reply's echoed correlation ID so
   [call] can pin each reply to the attempt that asked for it *)
let classify_reply line =
  match Jsonx.parse line with
  | Error msg -> (None, Error (Transport_failed ("unparseable reply: " ^ msg)))
  | Ok json -> (
      let req_id = Option.bind (Jsonx.member "req_id" json) Jsonx.as_str in
      ( req_id,
        match Jsonx.member "ok" json with
        | Some payload -> Ok payload
        | None -> (
          match Jsonx.member "error" json with
          | Some err ->
              let msg =
                match Option.bind (Jsonx.member "message" err) Jsonx.as_str with
                | Some m -> m
                | None -> line
              in
              let code_name =
                Option.bind (Jsonx.member "code" err) Jsonx.as_str
              in
              let code =
                match code_name with
                | Some "parse_error" -> Protocol.Parse_error
                | Some "invalid_request" -> Protocol.Invalid_request
                | Some "unknown_method" -> Protocol.Unknown_method
                | Some "bad_params" -> Protocol.Bad_params
                | Some "netlist_error" -> Protocol.Netlist_error
                | Some "overloaded" -> Protocol.Overloaded
                | Some "deadline_exceeded" -> Protocol.Deadline_exceeded
                | Some "shutting_down" -> Protocol.Shutting_down
                | Some "internal_error" | Some _ | None -> Protocol.Internal_error
              in
              Error (Protocol_error (code, msg))
          | None -> Error (Transport_failed ("reply has neither ok nor error: " ^ line)))))

(* binary replies arrive as whole frames (header included) *)
let classify_frame frame =
  match Wire.unframe frame with
  | Error `Eof -> (None, Error (Transport_failed "empty reply frame"))
  | Error (`Corrupt msg) -> (None, Error (Transport_failed ("corrupt reply frame: " ^ msg)))
  | Ok payload -> (
      match Wire.decode_response payload with
      | Error msg -> (None, Error (Transport_failed ("unparseable reply: " ^ msg)))
      | Ok (_id, req_id, Ok payload) -> (req_id, Ok payload)
      | Ok (_id, req_id, Error (code, msg)) -> (req_id, Error (Protocol_error (code, msg))))

let classify t reply =
  match t.wire with `Json -> classify_reply reply | `Binary -> classify_frame reply

(* An echoed correlation ID that contradicts the one we sent means the
   transport delivered someone else's reply (crossed wires, a buggy
   proxy); surface it as a retryable transport failure. A reply {e
   without} an echo stays acceptable — error replies minted before the
   request was decoded (parse errors) and older servers carry none. *)
let verify_echo expect (got, result) =
  match (expect, got) with
  | Some e, Some g when not (String.equal e g) ->
      Error
        (Transport_failed (Printf.sprintf "reply req_id mismatch: sent %S, got %S" e g))
  | _ -> result

(* one attempt: send, then poll for the reply up to the per-attempt
   timeout. Each attempt gets a fresh cell, so a late reply from a timed-out
   attempt lands in an abandoned cell instead of satisfying the retry. *)
let attempt t line =
  let cell = Atomic.make None in
  match t.transport line ~reply:(fun r -> Atomic.set cell (Some r)) with
  | exception e -> (None, Error (Transport_failed (Printexc.to_string e)))
  | () -> (
      let deadline_ns =
        Option.map
          (fun s -> Util.Trace.now_ns () + int_of_float (s *. 1e9))
          t.policy.timeout_s
      in
      let rec await () =
        match Atomic.get cell with
        | Some reply -> classify t reply
        | None -> (
            match deadline_ns with
            | Some d when Util.Trace.now_ns () > d ->
                (None, Error (Timed_out (Option.get t.policy.timeout_s)))
            | _ ->
                Thread.delay 0.0005;
                await ())
      in
      await ())

(* breaker transitions run under the client lock *)
let breaker_admit t =
  Mutex.protect t.lock (fun () ->
      match t.breaker with
      | Closed -> true
      | Half_open -> false (* one probe in flight; fail fast *)
      | Open reopen_ns ->
          if Util.Trace.now_ns () >= reopen_ns then begin
            t.breaker <- Half_open;
            true (* this call is the probe *)
          end
          else false)

let breaker_success t =
  Mutex.protect t.lock (fun () ->
      t.consecutive_failures <- 0;
      t.breaker <- Closed)

let breaker_failure t =
  Mutex.protect t.lock (fun () ->
      t.consecutive_failures <- t.consecutive_failures + 1;
      let should_open =
        match t.breaker with
        | Half_open -> true (* the probe failed: reopen *)
        | Closed -> t.consecutive_failures >= t.policy.breaker_threshold
        | Open _ -> false
      in
      if should_open then begin
        t.breaker <-
          Open
            (Util.Trace.now_ns ()
            + int_of_float (t.policy.breaker_cooldown_s *. 1e9));
        Atomic.incr t.n_breaker_opens;
        Some t.consecutive_failures
      end
      else None)

let call ?expect t line =
  Atomic.incr t.n_calls;
  if not (breaker_admit t) then begin
    Atomic.incr t.n_failures;
    Error Circuit_open
  end
  else begin
    let rec go attempt_no backoff =
      Atomic.incr t.n_attempts;
      match verify_echo expect (attempt t line) with
      | Ok payload ->
          breaker_success t;
          Ok payload
      | Error failure ->
          if retryable failure && attempt_no < t.policy.max_attempts then begin
            Atomic.incr t.n_retries;
            record t Util.Diag.Info
              (Printf.sprintf "attempt %d/%d failed (%s) — retrying in %.3gs"
                 attempt_no t.policy.max_attempts (failure_to_string failure)
                 backoff);
            Thread.delay (backoff *. jitter_factor t);
            go (attempt_no + 1)
              (Float.min t.policy.max_backoff_s (backoff *. t.policy.backoff_mult))
          end
          else begin
            Atomic.incr t.n_failures;
            (match breaker_failure t with
            | Some n ->
                record t Util.Diag.Warning
                  (Printf.sprintf
                     "circuit breaker opened after %d consecutive failures (last: %s)"
                     n (failure_to_string failure))
            | None -> ());
            Error failure
          end
    in
    go 1 t.policy.backoff_s
  end

let wire t = t.wire

let call_request t request =
  (* every client call carries a correlation ID: the caller's if it set
     one, else a generated [cli-<seed>-<n>]; the echo is verified either
     way, so a crossed-wires reply can never satisfy the wrong call *)
  let request, expect =
    match request.Protocol.req_id with
    | Some r -> (request, r)
    | None ->
        let r =
          Printf.sprintf "cli-%x-%d" t.seed (Atomic.fetch_and_add t.req_seq 1)
        in
        ({ request with Protocol.req_id = Some r }, r)
  in
  let message =
    match t.wire with
    | `Json -> Protocol.encode_request request
    | `Binary -> Wire.encode_request request
  in
  call ~expect t message
