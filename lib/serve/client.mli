(** Retrying client for the serving protocol.

    Wraps any line-in/line-out transport (the in-process {!Server.submit},
    or a socket/pipe writer) with the retry discipline a production caller
    needs:

    - a {b per-attempt timeout} — a lost reply costs [timeout_s], not
      forever;
    - {b bounded retries with exponential backoff and deterministic
      jitter} — only for {e retryable} failures: [overloaded],
      [deadline_exceeded], transport errors and timeouts. Permanent
      failures ([bad_params], [netlist_error], …) return immediately, and
      so does [internal_error]: the server answers it when a request has
      been {e quarantined} for crashing workers, so retrying it would
      crash more;
    - a {b circuit breaker}: after [breaker_threshold] consecutive
      failures the client fails fast ([Circuit_open]) for
      [breaker_cooldown_s], then lets one probe call through (half-open) —
      a dead server costs one timeout per cooldown, not one per call.

    Backoff jitter comes from a seeded LCG, not a wall clock (lib code
    takes no ambient time source; lint rule 4), so a fixed-seed client
    retries on an exactly reproducible schedule. All entry points are
    thread-safe. *)

type transport = string -> reply:(string -> unit) -> unit
(** Send one wire message; [reply] is invoked (possibly on another thread)
    with the response message. On the [`Json] wire a message is one
    request/response line ([Server.submit server] is a transport); on
    [`Binary] it is one whole {!Wire} frame, header included. *)

type policy = {
  timeout_s : float option;  (** per-attempt reply timeout; [None] waits forever *)
  max_attempts : int;  (** total attempts, including the first (≥ 1) *)
  backoff_s : float;  (** delay before the first retry *)
  backoff_mult : float;  (** backoff growth per retry *)
  max_backoff_s : float;  (** backoff ceiling *)
  jitter : float;  (** each delay is scaled by a factor in [1 ± jitter] *)
  breaker_threshold : int;  (** consecutive failures that open the breaker *)
  breaker_cooldown_s : float;  (** fail-fast window before the half-open probe *)
}

val default_policy : policy
(** 60 s timeout, 4 attempts, 10 ms backoff doubling to 1 s, 20% jitter,
    breaker at 8 consecutive failures with a 1 s cooldown. *)

type failure =
  | Protocol_error of Protocol.error_code * string
      (** the server answered a typed error (after retries, if retryable) *)
  | Timed_out of float  (** no reply within the per-attempt timeout *)
  | Transport_failed of string  (** send failed or the reply was unparseable *)
  | Circuit_open  (** failing fast; no request was sent *)

val failure_to_string : failure -> string

type stats = {
  calls : int;
  attempts : int;  (** transport sends, including retries *)
  retries : int;
  failures : int;  (** calls that returned [Error] *)
  breaker_opens : int;
}

type t

val create :
  ?diag:Util.Diag.sink ->
  ?policy:policy ->
  ?seed:int ->
  ?wire:[ `Json | `Binary ] ->
  transport ->
  t
(** [diag] receives [serve.client] events: [Info] per retry, [Warning]
    when the breaker opens. [seed] fixes the jitter schedule. [wire]
    (default [`Json]) selects how requests are encoded and replies decoded;
    the transport must speak the same wire. *)

val wire : t -> [ `Json | `Binary ]

val call : ?expect:string -> t -> string -> (Jsonx.t, failure) result
(** Send one pre-encoded request (a JSON line, or a whole binary frame on
    the [`Binary] wire) and block for the final outcome: the [ok] payload,
    or the failure that exhausted the policy. [expect] is the request's
    correlation ID: a reply echoing a {e different} [req_id] is a crossed
    wire, classified as a retryable [Transport_failed] (a reply with no
    echo — an old server, or an error minted before request decode — is
    accepted). *)

val call_request : t -> Protocol.request -> (Jsonx.t, failure) result
(** Build the message for this client's wire ({!Protocol.encode_request} or
    {!Wire.encode_request}) and {!call} it — the wire-agnostic entry point;
    the payload for a given request is bit-identical on both wires. When
    the request carries no [req_id], one is generated ([cli-<seed>-<n>])
    and its echo verified, so every call is traceable end-to-end. *)

val stats : t -> stats
