(* The implementation lives in [Util.Jsonx] so that utility code
   (histograms, telemetry) can round-trip JSON without depending on the
   serving tier; this alias keeps the historical [Serve.Jsonx] path and
   type equalities intact. *)
include Util.Jsonx
