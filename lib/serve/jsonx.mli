(** Alias of {!Util.Jsonx}, the repo's minimal JSON reader/writer.

    The implementation moved to [lib/util] so histogram/telemetry code can
    serialise without depending on the serving tier; [Serve.Jsonx] remains
    the stable name used throughout the protocol, with all type equalities
    preserved. *)

include module type of struct
  include Util.Jsonx
end
