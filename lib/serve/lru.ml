type 'a entry = { value : 'a; mutable stamp : int }

type 'a t = {
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable clock : int;  (* logical recency clock; monotone under the lock *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some e ->
      e.stamp <- tick t;
      t.hits <- t.hits + 1;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (key, e.stamp))
    t.table;
  match !victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t key value =
  locked t @@ fun () ->
  (match Hashtbl.find_opt t.table key with
  | Some _ -> Hashtbl.remove t.table key
  | None -> if Hashtbl.length t.table >= t.capacity then evict_oldest t);
  Hashtbl.replace t.table key { value; stamp = tick t }

let remove t key = locked t @@ fun () -> Hashtbl.remove t.table key
let length t = locked t @@ fun () -> Hashtbl.length t.table

type stats = { hits : int; misses : int; evictions : int; entries : int }

let stats t =
  locked t @@ fun () ->
  { hits = t.hits; misses = t.misses; evictions = t.evictions; entries = Hashtbl.length t.table }
