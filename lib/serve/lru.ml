(* Intrusive doubly-linked recency list threaded through the hash table's
   entries: the list head is the most recently used entry, the tail the
   eviction victim. Every operation — find (refresh), add (insert or
   overwrite), evict, remove — is O(1) under the lock; eviction no longer
   scans the table, so a full cache stalls its users for a pointer splice
   instead of O(entries) work per insert. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards the head (more recent) *)
  mutable next : 'a node option;  (* towards the tail (older) *)
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* list surgery — all under the lock *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some nx -> nx.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
      unlink t node;
      push_front t node

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some node ->
      touch t node;
      t.hits <- t.hits + 1;
      Some node.value
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_oldest t =
  match t.tail with
  | Some victim ->
      unlink t victim;
      Hashtbl.remove t.table victim.key;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t key value =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some node ->
      (* overwrite refreshes recency, like a write-through hit *)
      node.value <- value;
      touch t node
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_oldest t;
      let node = { key; value; prev = None; next = None } in
      push_front t node;
      Hashtbl.replace t.table key node

let remove t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key
  | None -> ()

let length t = locked t @@ fun () -> Hashtbl.length t.table

type stats = { hits : int; misses : int; evictions : int; entries : int }

let stats t =
  locked t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
  }
