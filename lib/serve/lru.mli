(** Mutex-protected in-memory LRU cache, string-keyed.

    The server's hot tier over {!Persist.Store}: bounded by entry count,
    least-recently-{e used} eviction (reads refresh recency). Lookups and
    inserts are O(1) amortized; eviction scans for the oldest stamp (O(n)
    in capacity, which is small). Safe to share across domains. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int
val find : 'a t -> string -> 'a option
val add : 'a t -> string -> 'a -> unit
(** Insert or refresh; evicts the least-recently-used entry when full. *)

val remove : 'a t -> string -> unit
val length : 'a t -> int

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : 'a t -> stats
