(** Mutex-protected in-memory LRU cache, string-keyed.

    The server's hot tier over {!Persist.Store}: bounded by entry count,
    least-recently-{e used} eviction (reads refresh recency; overwriting
    [add] refreshes too). An intrusive recency list threaded through the
    table's entries makes every operation — lookup, insert, eviction,
    removal — O(1) under the lock, so a full cache never stalls its users
    on an eviction scan. Safe to share across domains. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int
val find : 'a t -> string -> 'a option
val add : 'a t -> string -> 'a -> unit
(** Insert or refresh; evicts the least-recently-used entry when full. *)

val remove : 'a t -> string -> unit
val length : 'a t -> int

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : 'a t -> stats
