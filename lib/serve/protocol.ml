type circuit = Named of string | Bench_text of string
type sampler_kind = Cholesky | Kle | Kle_qmc
type retime_edit = { gate : int; kind : string }

type call =
  | Prepare of { circuit : circuit; r : int option }
  | Run_mc of {
      circuit : circuit;
      sampler : sampler_kind;
      r : int option;
      seed : int;
      n : int;
      batch : int option;
      full : bool;
    }
  | Compare of { circuit : circuit; r : int option; seed : int; n : int }
  | Retime of {
      circuit : circuit;
      r : int option;
      n_blocks : int option;
      edit : retime_edit option;
    }
  | Stats
  | Metrics
  | Debug
  | Health
  | Shutdown

type request = {
  id : Jsonx.t;
  req_id : string option;
  deadline_ms : float option;
  call : call;
}

type error_code =
  | Parse_error
  | Invalid_request
  | Unknown_method
  | Bad_params
  | Netlist_error
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Internal_error

let error_code_name = function
  | Parse_error -> "parse_error"
  | Invalid_request -> "invalid_request"
  | Unknown_method -> "unknown_method"
  | Bad_params -> "bad_params"
  | Netlist_error -> "netlist_error"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Shutting_down -> "shutting_down"
  | Internal_error -> "internal_error"

(* ---------------------------------------------------------------- *)
(* decoding *)

type reject = {
  reject_id : Jsonx.t;
  reject_req_id : string option;
  code : error_code;
  message : string;
  field : string option;
}

exception Reject of { code : error_code; message : string; field : string option }

let reject ?field code fmt =
  Printf.ksprintf (fun message -> raise (Reject { code; message; field })) fmt

(* every method's accepted params keys; anything else is semantically
   unknown and rejected with the offending key in [reject.field] *)
let params_keys = function
  | "prepare" -> [ "circuit"; "r" ]
  | "run_mc" -> [ "circuit"; "sampler"; "r"; "seed"; "n"; "batch"; "full" ]
  | "compare" -> [ "circuit"; "r"; "seed"; "n" ]
  | "retime" -> [ "circuit"; "r"; "n_blocks"; "edit" ]
  | _ -> []

let check_keys ~where allowed obj =
  match Jsonx.as_obj obj with
  | None -> ()
  | Some fields ->
      List.iter
        (fun (k, _) ->
          if not (List.mem k allowed) then
            reject ~field:k Bad_params "unknown %s key %S (accepted: %s)" where k
              (match allowed with [] -> "none" | _ -> String.concat ", " allowed))
        fields

let params_of json =
  match Jsonx.member "params" json with
  | None -> Jsonx.Obj []
  | Some (Jsonx.Obj _ as p) -> p
  | Some _ -> reject Bad_params "params must be an object"

let circuit_of params =
  match Jsonx.member "circuit" params with
  | None -> reject Bad_params "missing params.circuit"
  | Some c -> (
      check_keys ~where:"params.circuit" [ "name"; "bench" ] c;
      match (Jsonx.member "name" c, Jsonx.member "bench" c) with
      | Some name, None -> (
          match Jsonx.as_str name with
          | Some s when s <> "" -> Named s
          | _ -> reject Bad_params "circuit.name must be a non-empty string")
      | None, Some bench -> (
          match Jsonx.as_str bench with
          | Some s when s <> "" -> Bench_text s
          | _ -> reject Bad_params "circuit.bench must be a non-empty string")
      | _ -> reject Bad_params "circuit must have exactly one of name, bench")

let int_field ?default params key ~min =
  match Jsonx.member key params with
  | None -> (
      match default with
      | Some v -> v
      | None -> reject Bad_params "missing params.%s" key)
  | Some v -> (
      match Jsonx.as_int v with
      | Some i when i >= min -> i
      | Some i -> reject Bad_params "params.%s = %d out of range (min %d)" key i min
      | None -> reject Bad_params "params.%s must be an integer" key)

let opt_int_field params key ~min =
  match Jsonx.member key params with
  | None -> None
  | Some v -> (
      match Jsonx.as_int v with
      | Some i when i >= min -> Some i
      | Some i -> reject Bad_params "params.%s = %d out of range (min %d)" key i min
      | None -> reject Bad_params "params.%s must be an integer" key)

let bool_field params key ~default =
  match Jsonx.member key params with
  | None -> default
  | Some v -> (
      match Jsonx.as_bool v with
      | Some b -> b
      | None -> reject Bad_params "params.%s must be a boolean" key)

let sampler_of params =
  match Jsonx.member "sampler" params with
  | None -> Kle
  | Some v -> (
      match Jsonx.as_str v with
      | Some "cholesky" -> Cholesky
      | Some "kle" -> Kle
      | Some "kle-qmc" -> Kle_qmc
      | Some s -> reject Bad_params "unknown sampler %S (cholesky|kle|kle-qmc)" s
      | None -> reject Bad_params "params.sampler must be a string")

let edit_of params =
  match Jsonx.member "edit" params with
  | None -> None
  | Some e -> (
      match Jsonx.as_obj e with
      | None -> reject ~field:"edit" Bad_params "params.edit must be an object"
      | Some _ ->
          check_keys ~where:"params.edit" [ "gate"; "kind" ] e;
          let gate =
            match Jsonx.member "gate" e with
            | None -> reject ~field:"gate" Bad_params "missing params.edit.gate"
            | Some v -> (
                match Jsonx.as_int v with
                | Some i when i >= 0 -> i
                | _ ->
                    reject ~field:"gate" Bad_params
                      "params.edit.gate must be a non-negative integer")
          in
          let kind =
            match Jsonx.member "kind" e with
            | None -> reject ~field:"kind" Bad_params "missing params.edit.kind"
            | Some v -> (
                match Jsonx.as_str v with
                | Some s when s <> "" -> s
                | _ ->
                    reject ~field:"kind" Bad_params
                      "params.edit.kind must be a non-empty string")
          in
          Some { gate; kind })

let call_of ~method_ params =
  (* key whitelisting only for known methods: an unknown method must
     answer [Unknown_method], not trip over its (empty) key set first *)
  (match method_ with
  | "prepare" | "run_mc" | "compare" | "retime" | "stats" | "metrics" | "debug" | "health"
  | "shutdown" ->
      check_keys ~where:"params" (params_keys method_) params
  | _ -> ());
  match method_ with
  | "prepare" -> Prepare { circuit = circuit_of params; r = opt_int_field params "r" ~min:1 }
  | "run_mc" ->
      Run_mc
        {
          circuit = circuit_of params;
          sampler = sampler_of params;
          r = opt_int_field params "r" ~min:1;
          seed = int_field params "seed" ~default:42 ~min:min_int;
          n = int_field params "n" ~min:1;
          batch = opt_int_field params "batch" ~min:1;
          full = bool_field params "full" ~default:false;
        }
  | "compare" ->
      Compare
        {
          circuit = circuit_of params;
          r = opt_int_field params "r" ~min:1;
          seed = int_field params "seed" ~default:42 ~min:min_int;
          n = int_field params "n" ~min:1;
        }
  | "retime" ->
      Retime
        {
          circuit = circuit_of params;
          r = opt_int_field params "r" ~min:1;
          n_blocks = opt_int_field params "n_blocks" ~min:1;
          edit = edit_of params;
        }
  | "stats" -> Stats
  | "metrics" -> Metrics
  | "debug" -> Debug
  | "health" -> Health
  | "shutdown" -> Shutdown
  | m -> reject Unknown_method "unknown method %S" m

let decode line =
  match Jsonx.parse line with
  | Error msg ->
      Error
        {
          reject_id = Jsonx.Null;
          reject_req_id = None;
          code = Parse_error;
          message = msg;
          field = None;
        }
  | Ok json -> (
      let id = Option.value (Jsonx.member "id" json) ~default:Jsonx.Null in
      let fail ~req_id code message field =
        Error { reject_id = id; reject_req_id = req_id; code; message; field }
      in
      match Jsonx.as_obj json with
      | None -> fail ~req_id:None Invalid_request "request must be a JSON object" None
      | Some _ -> (
          (* req_id is parsed before anything else can reject, so every
             validation error still echoes the client's correlation ID *)
          match
            match Jsonx.member "req_id" json with
            | None -> None
            | Some v -> (
                match Jsonx.as_str v with
                | Some s when s <> "" -> Some s
                | Some _ -> reject Bad_params "req_id must be non-empty"
                | None -> reject Bad_params "req_id must be a string")
          with
          | exception Reject { code; message; field } ->
              fail ~req_id:None code message field
          | req_id -> (
              match
                let method_ =
                  match Jsonx.member "method" json with
                  | Some m -> (
                      match Jsonx.as_str m with
                      | Some s -> s
                      | None -> reject Invalid_request "method must be a string")
                  | None -> reject Invalid_request "missing method"
                in
                let deadline_ms =
                  match Jsonx.member "deadline_ms" json with
                  | None -> None
                  | Some v -> (
                      match Jsonx.as_num v with
                      | Some ms when ms > 0. -> Some ms
                      | Some _ -> reject Bad_params "deadline_ms must be positive"
                      | None -> reject Bad_params "deadline_ms must be a number")
                in
                { id; req_id; deadline_ms; call = call_of ~method_ (params_of json) }
              with
              | request -> Ok request
              | exception Reject { code; message; field } -> fail ~req_id code message field)))

(* ---------------------------------------------------------------- *)
(* encoding *)

let sampler_name = function
  | Cholesky -> "cholesky"
  | Kle -> "kle"
  | Kle_qmc -> "kle-qmc"

let circuit_json = function
  | Named name -> Jsonx.Obj [ ("name", Jsonx.Str name) ]
  | Bench_text text -> Jsonx.Obj [ ("bench", Jsonx.Str text) ]

let num_i v = Jsonx.Num (float_of_int v)

let opt_num_i key = function None -> [] | Some v -> [ (key, num_i v) ]

let encode_request { id; req_id; deadline_ms; call } =
  let method_, params =
    match call with
    | Prepare { circuit; r } ->
        ("prepare", [ ("circuit", circuit_json circuit) ] @ opt_num_i "r" r)
    | Run_mc { circuit; sampler; r; seed; n; batch; full } ->
        ( "run_mc",
          [ ("circuit", circuit_json circuit); ("sampler", Jsonx.Str (sampler_name sampler)) ]
          @ opt_num_i "r" r
          @ [ ("seed", num_i seed); ("n", num_i n) ]
          @ opt_num_i "batch" batch
          @ if full then [ ("full", Jsonx.Bool true) ] else [] )
    | Compare { circuit; r; seed; n } ->
        ( "compare",
          [ ("circuit", circuit_json circuit) ]
          @ opt_num_i "r" r
          @ [ ("seed", num_i seed); ("n", num_i n) ] )
    | Retime { circuit; r; n_blocks; edit } ->
        ( "retime",
          [ ("circuit", circuit_json circuit) ]
          @ opt_num_i "r" r
          @ opt_num_i "n_blocks" n_blocks
          @
          match edit with
          | None -> []
          | Some e ->
              [ ("edit", Jsonx.Obj [ ("gate", num_i e.gate); ("kind", Jsonx.Str e.kind) ]) ] )
    | Stats -> ("stats", [])
    | Metrics -> ("metrics", [])
    | Debug -> ("debug", [])
    | Health -> ("health", [])
    | Shutdown -> ("shutdown", [])
  in
  Jsonx.to_string
    (Jsonx.Obj
       ([ ("id", id) ]
       @ (match req_id with
         | Some r -> [ ("req_id", Jsonx.Str r) ]
         | None -> [])
       @ (match deadline_ms with
         | Some ms -> [ ("deadline_ms", Jsonx.Num ms) ]
         | None -> [])
       @ [ ("method", Jsonx.Str method_) ]
       @ match params with [] -> [] | ps -> [ ("params", Jsonx.Obj ps) ]))

(* [req_id] is echoed only when the request carried one, so replies to
   clients predating the field are byte-identical to before *)
let req_id_fields = function
  | None -> []
  | Some r -> [ ("req_id", Jsonx.Str r) ]

let ok_response ~id ?req_id payload =
  Jsonx.to_string (Jsonx.Obj ([ ("id", id) ] @ req_id_fields req_id @ [ ("ok", payload) ]))

let error_response ~id ?req_id ?field code message =
  Jsonx.to_string
    (Jsonx.Obj
       ([ ("id", id) ]
       @ req_id_fields req_id
       @ [
           ( "error",
             Jsonx.Obj
               ([ ("code", Jsonx.Str (error_code_name code)); ("message", Jsonx.Str message) ]
               @
               match field with
               | None -> []
               | Some f -> [ ("field", Jsonx.Str f) ]) );
         ]))

let response_id line =
  match Jsonx.parse line with Error _ -> None | Ok json -> Jsonx.member "id" json

let response_req_id line =
  match Jsonx.parse line with
  | Error _ -> None
  | Ok json -> Option.bind (Jsonx.member "req_id" json) Jsonx.as_str
