type backend = {
  send :
    Protocol.request ->
    reply:((Jsonx.t, Protocol.error_code * string) result -> unit) ->
    unit;
  healthy : unit -> bool;
  describe : string;
}

let backend_of_server ?(describe = "in-process") server =
  let send request ~reply =
    (* round-trip through the binary codec so the in-process router path
       exercises exactly what a cross-process deployment ships *)
    match Wire.unframe (Wire.encode_request request) with
    | Error (`Eof | `Corrupt _) ->
        reply (Error (Protocol.Internal_error, "request frame self-decode failed"))
    | Ok payload ->
        Server.submit_wire server ~wire:`Binary payload ~reply:(fun frame ->
            match Wire.unframe frame with
            | Error `Eof -> reply (Error (Protocol.Internal_error, "empty shard reply"))
            | Error (`Corrupt msg) -> reply (Error (Protocol.Internal_error, msg))
            | Ok resp -> (
                match Wire.decode_response resp with
                | Error msg -> reply (Error (Protocol.Internal_error, msg))
                | Ok (_id, _req_id, result) -> reply result))
  in
  { send; healthy = (fun () -> not (Server.shutdown_requested server)); describe }

type config = { vnodes : int; max_inflight_per_shard : int; replicas : int }

let default_config = { vnodes = 64; max_inflight_per_shard = 32; replicas = 2 }

type stats = { forwarded : int; shed : int; retried : int; shard_errors : int }

type shard = { backend : backend; inflight : int Atomic.t }

type t = {
  config : config;
  shards : shard array;
  ring : (int64 * int) array;  (* (vnode hash, shard index), hash-sorted *)
  shutdown_flag : bool Atomic.t;
  n_forwarded : int Atomic.t;
  n_shed : int Atomic.t;
  n_retried : int Atomic.t;
  n_shard_errors : int Atomic.t;
}

(* The ring hashes stable vnode labels (shard index, not pid or socket
   path), so the key->shard assignment survives shard restarts. *)
let build_ring ~vnodes n_shards =
  let ring =
    Array.init (n_shards * vnodes) (fun i ->
        let shard = i / vnodes and vnode = i mod vnodes in
        (Persist.Codec.fnv64 (Printf.sprintf "shard-%d#vnode-%d" shard vnode), shard))
  in
  Array.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) ring;
  ring

let create ?(config = default_config) backends =
  if List.length backends = 0 then invalid_arg "Router.create: no backends";
  if config.vnodes < 1 then invalid_arg "Router.create: vnodes < 1";
  if config.replicas < 1 then invalid_arg "Router.create: replicas < 1";
  let shards =
    Array.of_list (List.map (fun backend -> { backend; inflight = Atomic.make 0 }) backends)
  in
  {
    config;
    shards;
    ring = build_ring ~vnodes:config.vnodes (Array.length shards);
    shutdown_flag = Atomic.make false;
    n_forwarded = Atomic.make 0;
    n_shed = Atomic.make 0;
    n_retried = Atomic.make 0;
    n_shard_errors = Atomic.make 0;
  }

let routing_key (request : Protocol.request) =
  let circuit_token = function
    | Protocol.Named name -> "name:" ^ name
    | Protocol.Bench_text text -> "bench:" ^ Persist.Codec.fnv64_hex text
  in
  let key circuit r =
    Some
      (Printf.sprintf "%s;r=%s" (circuit_token circuit)
         (match r with None -> "auto" | Some r -> string_of_int r))
  in
  match request.Protocol.call with
  | Protocol.Prepare { circuit; r } -> key circuit r
  | Protocol.Run_mc { circuit; r; _ } -> key circuit r
  | Protocol.Compare { circuit; r; _ } -> key circuit r
  (* retime shares prepare/run_mc's key shape so a circuit's macros and
     models warm the same shard's store *)
  | Protocol.Retime { circuit; r; _ } -> key circuit r
  | Protocol.Stats | Protocol.Health | Protocol.Metrics | Protocol.Debug
  | Protocol.Shutdown ->
      None

(* first ring slot with hash >= h (unsigned), wrapping to slot 0 *)
let ring_position t h =
  let ring = t.ring in
  let n = Array.length ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst ring.(mid)) h < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo >= n then 0 else !lo

let shard_of t key = snd t.ring.(ring_position t (Persist.Codec.fnv64 key))

(* the replica candidate list: walk the ring from the key's position,
   collecting the first [replicas] distinct shards *)
let candidates t key =
  let start = ring_position t (Persist.Codec.fnv64 key) in
  let n = Array.length t.ring in
  let want = min t.config.replicas (Array.length t.shards) in
  let seen = Hashtbl.create 4 in
  let out = ref [] in
  let i = ref 0 in
  while List.length !out < want && !i < n do
    let shard = snd t.ring.((start + !i) mod n) in
    if not (Hashtbl.mem seen shard) then begin
      Hashtbl.add seen shard ();
      out := shard :: !out
    end;
    incr i
  done;
  List.rev !out

(* ---------------------------------------------------------------- *)
(* aggregation (stats/health/shutdown fan out to every shard) *)

let fanout t call =
  let n = Array.length t.shards in
  let results = Array.make n None in
  let lock = Mutex.create () in
  let done_ = Condition.create () in
  let remaining = ref n in
  Array.iteri
    (fun i shard ->
      let deliver r =
        Mutex.protect lock (fun () ->
            match results.(i) with
            | Some _ -> ()  (* a misbehaving backend double-reply is dropped *)
            | None ->
                results.(i) <- Some r;
                decr remaining;
                Condition.signal done_)
      in
      let request =
        { Protocol.id = Jsonx.Num (float_of_int i); req_id = None; deadline_ms = None; call }
      in
      match shard.backend.send request ~reply:deliver with
      | () -> ()
      | exception e -> deliver (Error (Protocol.Internal_error, Printexc.to_string e)))
    t.shards;
  Mutex.protect lock (fun () ->
      while !remaining > 0 do
        Condition.wait done_ lock
      done);
  Array.map (function Some r -> r | None -> Error (Protocol.Internal_error, "no reply")) results

let router_stats_payload t =
  Jsonx.Obj
    [
      ("forwarded", Jsonx.Num (float_of_int (Atomic.get t.n_forwarded)));
      ("shed", Jsonx.Num (float_of_int (Atomic.get t.n_shed)));
      ("retried", Jsonx.Num (float_of_int (Atomic.get t.n_retried)));
      ("shard_errors", Jsonx.Num (float_of_int (Atomic.get t.n_shard_errors)));
    ]

let shard_result_payload = function
  | Ok payload -> payload
  | Error (code, msg) ->
      Jsonx.Obj
        [
          ("error", Jsonx.Str (Protocol.error_code_name code)); ("message", Jsonx.Str msg);
        ]

let aggregate t call =
  let results = fanout t call in
  let shard_list =
    Jsonx.List (Array.to_list (Array.map shard_result_payload results))
  in
  match call with
  | Protocol.Health ->
      let shard_healthy = function
        | Ok payload -> (
            match Option.bind (Jsonx.member "healthy" payload) Jsonx.as_bool with
            | Some b -> b
            | None -> false)
        | Error _ -> false
      in
      let all_healthy = Array.for_all shard_healthy results in
      Jsonx.Obj
        [
          ("healthy", Jsonx.Bool (all_healthy && not (Atomic.get t.shutdown_flag)));
          ("shards", Jsonx.Num (float_of_int (Array.length t.shards)));
          ("router", router_stats_payload t);
          ("shard_health", shard_list);
        ]
  | _ ->
      let list_name =
        match call with Protocol.Debug -> "shard_debug" | _ -> "shard_stats"
      in
      Jsonx.Obj
        [
          ("shards", Jsonx.Num (float_of_int (Array.length t.shards)));
          ("router", router_stats_payload t);
          (list_name, shard_list);
        ]

(* ---------------------------------------------------------------- *)
(* submission *)

let submit t ~wire payload ~reply =
  let encode_ok, encode_error, encode_reject =
    match wire with
    | `Json ->
        ( Protocol.ok_response,
          (fun ~id ?req_id code msg -> Protocol.error_response ~id ?req_id code msg),
          fun (rej : Protocol.reject) ->
            Protocol.error_response ~id:rej.Protocol.reject_id
              ?req_id:rej.Protocol.reject_req_id ?field:rej.Protocol.field
              rej.Protocol.code rej.Protocol.message )
    | `Binary ->
        ( Wire.ok_response,
          Wire.error_response,
          fun (rej : Protocol.reject) ->
            Wire.error_response ~id:rej.Protocol.reject_id
              ?req_id:rej.Protocol.reject_req_id rej.Protocol.code rej.Protocol.message )
  in
  let decoded =
    match wire with
    | `Json -> Protocol.decode payload
    | `Binary -> Wire.decode_request payload
  in
  match decoded with
  | Error rej -> reply (encode_reject rej)
  | Ok request -> (
      let id = request.Protocol.id in
      let req_id = request.Protocol.req_id in
      let replied = Atomic.make false in
      let respond result =
        if not (Atomic.exchange replied true) then
          reply
            (match result with
            | Ok payload -> encode_ok ~id ?req_id payload
            | Error (code, msg) -> encode_error ~id ?req_id code msg)
      in
      match routing_key request with
      | None -> (
          match request.Protocol.call with
          | Protocol.Shutdown ->
              Atomic.set t.shutdown_flag true;
              let _ = fanout t Protocol.Shutdown in
              respond (Ok (Jsonx.Obj [ ("shutting_down", Jsonx.Bool true) ]))
          | Protocol.Metrics ->
              (* the cluster view: every shard's registry merged into one —
                 counters summed, histograms merged bucket-by-bucket under
                 the shared fixed layout, quantiles and the Prometheus text
                 recomputed from the merged buckets *)
              let results = fanout t Protocol.Metrics in
              let payloads =
                Array.to_list results
                |> List.filter_map (function Ok p -> Some p | Error _ -> None)
              in
              let merged_fields =
                match Telemetry.merge_metrics payloads with Jsonx.Obj f -> f | _ -> []
              in
              respond
                (Ok
                   (Jsonx.Obj
                      ([
                         ("shards", Jsonx.Num (float_of_int (Array.length t.shards)));
                         ( "shards_reporting",
                           Jsonx.Num (float_of_int (List.length payloads)) );
                         ("router", router_stats_payload t);
                       ]
                      @ merged_fields)))
          | (Protocol.Stats | Protocol.Health | Protocol.Debug) as call ->
              respond (Ok (aggregate t call))
          | _ -> respond (Error (Protocol.Internal_error, "unroutable request")))
      | Some key ->
          if Atomic.get t.shutdown_flag then
            respond (Error (Protocol.Shutting_down, "router is draining"))
          else begin
            let rec try_candidates tried = function
              | [] ->
                  Atomic.incr t.n_shard_errors;
                  respond
                    (Error
                       ( Protocol.Internal_error,
                         Printf.sprintf "no healthy shard for key (tried %d)" tried ))
              | idx :: rest ->
                  let shard = t.shards.(idx) in
                  if not (shard.backend.healthy ()) then begin
                    Atomic.incr t.n_retried;
                    try_candidates (tried + 1) rest
                  end
                  else if Atomic.get shard.inflight >= t.config.max_inflight_per_shard then begin
                    (* shed, don't spread: spilling a hot key onto other
                       shards would duplicate its artifacts on every cache *)
                    Atomic.incr t.n_shed;
                    respond
                      (Error
                         ( Protocol.Overloaded,
                           Printf.sprintf "shard %s at capacity (%d in flight)"
                             shard.backend.describe
                             t.config.max_inflight_per_shard ))
                  end
                  else begin
                    Atomic.incr shard.inflight;
                    match
                      shard.backend.send request ~reply:(fun result ->
                          Atomic.decr shard.inflight;
                          respond result)
                    with
                    | () -> Atomic.incr t.n_forwarded
                    | exception e ->
                        Atomic.decr shard.inflight;
                        Atomic.incr t.n_shard_errors;
                        Atomic.incr t.n_retried;
                        ignore (Printexc.to_string e);
                        try_candidates (tried + 1) rest
                  end
            in
            try_candidates 0 (candidates t key)
          end)

let shutdown_requested t = Atomic.get t.shutdown_flag

let stats t =
  {
    forwarded = Atomic.get t.n_forwarded;
    shed = Atomic.get t.n_shed;
    retried = Atomic.get t.n_retried;
    shard_errors = Atomic.get t.n_shard_errors;
  }
