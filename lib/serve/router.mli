(** Consistent-hash shard router for the serving tier.

    The front of a multi-process [ssta_serve --router] deployment: requests
    are decoded once (either wire), their {e model-spec key} (circuit +
    truncation) is consistent-hashed onto a ring of virtual nodes, and the
    request is forwarded — still structured, never re-parsed — to the owning
    shard. Each shard is a full {!Server} (its own worker pool and memory
    LRU) and all shards share one content-addressed {!Persist.Store}, so an
    artifact is eigensolved once cluster-wide but routed hot from exactly
    one shard's memory tier.

    Failure and overload policy:
    - {b Shed, not collapse}: when the owning shard already has
      [max_inflight_per_shard] router-forwarded requests in flight, the
      router answers a typed [overloaded] {e immediately} instead of
      spilling the key onto other shards (which would duplicate the
      expensive artifacts and melt every cache at once).
    - {b Retry next replica}: an {e unhealthy} shard (crashed process, dead
      connection) is skipped and the request goes to the next distinct
      shard on the ring, up to [replicas] candidates; each hop bumps
      [retried]. Only unhealthiness fails over — a {e delivered} typed
      error is final (retrying it could duplicate side effects; the
      client's retry policy owns that decision).

    [stats]/[health]/[debug] aggregate over all shards (plus router
    counters); [metrics] goes further and {e merges}: every shard's
    histogram snapshots are combined bucket-by-bucket
    ({!Telemetry.merge_metrics}) into one cluster-wide view with
    recomputed quantiles and Prometheus text. [shutdown] broadcasts.
    Responses are re-encoded on the wire the request arrived on, echoing
    its original id and — when the client sent one — its [req_id]. *)

type backend = {
  send :
    Protocol.request ->
    reply:((Jsonx.t, Protocol.error_code * string) result -> unit) ->
    unit;
      (** Forward one structured request. [reply] must be called exactly
          once (possibly from another thread); raising from [send] counts
          as shard failure and triggers replica failover. *)
  healthy : unit -> bool;  (** liveness gate consulted before forwarding *)
  describe : string;  (** for diagnostics, e.g. ["shard-0"] *)
}

val backend_of_server : ?describe:string -> Server.t -> backend
(** In-process backend over a {!Server} (tests, bench, chaos): requests
    round-trip through the binary wire codec, so the router path exercises
    the same encode/decode as a cross-process deployment. *)

type config = {
  vnodes : int;  (** virtual nodes per shard on the hash ring *)
  max_inflight_per_shard : int;  (** shed threshold *)
  replicas : int;  (** distinct shards tried before giving up *)
}

val default_config : config
(** 64 vnodes, 32 in-flight per shard, 2 replicas. *)

type stats = { forwarded : int; shed : int; retried : int; shard_errors : int }

type t

val create : ?config:config -> backend list -> t
(** Raises [Invalid_argument] on an empty backend list. *)

val routing_key : Protocol.request -> string option
(** The model-spec key a request hashes on — circuit identity (inline bench
    text keys by content hash) plus truncation [r]. [None] for
    [stats]/[health]/[metrics]/[debug]/[shutdown], which the router
    handles itself. *)

val shard_of : t -> string -> int
(** Ring lookup: the owning shard index for a key (exposed for tests —
    stable across shard restarts, balanced across keys). *)

val submit : t -> wire:[ `Json | `Binary ] -> string -> reply:(string -> unit) -> unit
(** Decode one request payload (a JSON line or a binary frame payload),
    route it, and reply — exactly once — on the same wire with the
    request's original id. Mirrors {!Server.submit_wire}. *)

val shutdown_requested : t -> bool
(** True once a [shutdown] request has been broadcast (the transport loop
    should stop reading and drain the shards). *)

val stats : t -> stats
