type config = {
  store_dir : string option;
  cache_entries : int;
  queue_capacity : int;
  workers : int;
  jobs : int option;
  placement_seed : int;
  kle : Ssta.Algorithm2.config;
  drain_timeout_s : float option;
  store_io_faults : Util.Fault.io_plan list;
  chaos_crash : Util.Fault.io_plan option;
  chaos_crash_after : Util.Fault.io_plan option;
  batch_window_s : float;
  batch_max : int;
  slow_ms : float;
  slow_ring : int;
  request_log : (Jsonx.t -> unit) option;
}

let default_config =
  {
    store_dir = None;
    cache_entries = 32;
    queue_capacity = 64;
    workers = 2;
    jobs = Some 1;
    placement_seed = 1;
    kle = Ssta.Algorithm2.paper_config;
    drain_timeout_s = Some 30.0;
    store_io_faults = [];
    chaos_crash = None;
    chaos_crash_after = None;
    batch_window_s = 0.0;
    batch_max = 8;
    slow_ms = 0.0;
    slow_ring = 64;
    request_log = None;
  }

(* trace counters: per-request attribution when tracing is enabled; the
   always-on stats live in the [t] atomics below *)
let c_requests = Util.Trace.counter "serve_requests"
let c_errors = Util.Trace.counter "serve_errors"
let c_rejected = Util.Trace.counter "serve_rejected"
let c_deadline = Util.Trace.counter "serve_deadline_missed"
let c_hits_mem = Util.Trace.counter "serve_cache_hits_mem"
let c_hits_disk = Util.Trace.counter "serve_cache_hits_disk"
let c_misses = Util.Trace.counter "serve_cache_misses"
let c_worker_restarts = Util.Trace.counter "serve_worker_restarts"

type artifact =
  | A_setup of Ssta.Experiment.circuit_setup
  | A_model of Kle.Model.t
  | A_hmatrix of Kle.Hmatrix.t

(* per-connection response codec: a job answers on the wire it arrived on.
   [req_id] is the echoed correlation ID — [None] when the request carried
   none, keeping replies to old clients byte-identical *)
type rcodec = {
  rc_ok : id:Jsonx.t -> req_id:string option -> Jsonx.t -> string;
  rc_error : id:Jsonx.t -> req_id:string option -> Protocol.error_code -> string -> string;
  rc_reject : Protocol.reject -> string;
      (* decode rejects carry their own correlation and field attribution *)
}

let json_codec =
  {
    rc_ok = (fun ~id ~req_id payload -> Protocol.ok_response ~id ?req_id payload);
    rc_error = (fun ~id ~req_id code msg -> Protocol.error_response ~id ?req_id code msg);
    rc_reject =
      (fun rej ->
        Protocol.error_response ~id:rej.Protocol.reject_id ?req_id:rej.Protocol.reject_req_id
          ?field:rej.Protocol.field rej.Protocol.code rej.Protocol.message);
  }

let binary_codec =
  {
    rc_ok = (fun ~id ~req_id payload -> Wire.ok_response ~id ?req_id payload);
    rc_error = (fun ~id ~req_id code msg -> Wire.error_response ~id ?req_id code msg);
    rc_reject =
      (fun rej ->
        Wire.error_response ~id:rej.Protocol.reject_id ?req_id:rej.Protocol.reject_req_id
          rej.Protocol.code rej.Protocol.message);
  }

type job = {
  request : Protocol.request;
  reply : string -> unit;
  codec : rcodec;  (* response encoder for the wire the request arrived on *)
  deadline_ns : int option;  (* absolute, on the Util.Trace.now_ns clock *)
  replied : bool Atomic.t;  (* exactly-once reply guard *)
  attempts : int Atomic.t;  (* worker crashes this job has caused *)
  req_id : string;  (* effective correlation ID: client-sent or ingress-generated *)
  submitted_ns : int;  (* decoded at ingress, on the Util.Trace.now_ns clock *)
  mutable enqueued_ns : int;  (* entered the worker queue (post batch window) *)
  mutable reply_write_ns : int;  (* wall time spent inside [reply] *)
}

let echo_req_id job = job.request.Protocol.req_id

type t = {
  config : config;
  diag : Util.Diag.sink;
  store : Persist.Store.t option;
  (* dependency-aware view over [store] for the hierarchical retime cache;
     None when the server runs without a store (macros recomputed per call) *)
  depgraph : Persist.Depgraph.t option;
  cache : artifact Lru.t;
  (* the queue holds job *groups*: singletons for ordinary requests, larger
     lists for coalesced run_mc batches that execute with shared prep *)
  queue : job list Queue.t;
  mutable queued : int;  (* total jobs across queued groups; guarded by [lock] *)
  mutable batcher : job Batch.t option;  (* set once in [create], never again *)
  lock : Mutex.t;
  not_empty : Condition.t;
  (* single-flight: keys whose compute is running on some domain; a second
     requester for the same key waits on [inflight_done] instead of paying
     the eigensolve again *)
  inflight : (string, unit) Hashtbl.t;
  inflight_lock : Mutex.t;
  inflight_done : Condition.t;
  draining : bool Atomic.t;
  mutable joined : bool;
  mutable worker_handles : Supervisor.handle list;
  (* the joiner thread + its done flag, created once by the first timed
     drain so a retry after a timeout never double-joins a domain *)
  mutable joiner : (Thread.t * bool Atomic.t) option;
  shutdown_flag : bool Atomic.t;
  busy : int Atomic.t;  (* workers currently executing a job *)
  n_worker_restarts : int Atomic.t;
  n_quarantined : int Atomic.t;
  n_requests : int Atomic.t;
  n_errors : int Atomic.t;
  n_rejected : int Atomic.t;
  n_deadline : int Atomic.t;
  n_hits_mem : int Atomic.t;
  n_hits_disk : int Atomic.t;
  n_misses : int Atomic.t;
  n_recovered : int Atomic.t;
  n_singleflight : int Atomic.t;  (* misses answered by another domain's compute *)
  n_replies_dropped : int Atomic.t;  (* replies that raised mid-write (dead client) *)
  n_requeued : int Atomic.t;  (* jobs re-queued after a worker crash *)
  n_blocks_reused : int Atomic.t;  (* retime: block macros served from the cache *)
  n_blocks_recomputed : int Atomic.t;  (* retime: block macros extracted *)
  telemetry : Telemetry.t;
  instance : int;  (* ingress req_id namespace, unique per server *)
  req_seq : int Atomic.t;
}

let diagnostics t = t.diag
let telemetry t = t.telemetry

(* ---------------------------------------------------------------- *)
(* cached artifact resolution *)

type tier = Hit_mem | Hit_disk | Miss | Recovered

let tier_name = function
  | Hit_mem -> "hit-mem"
  | Hit_disk -> "hit-disk"
  | Miss -> "miss"
  | Recovered -> "recovered"

(* coldest tier wins when one request touches several artifacts *)
let tier_rank = function Miss -> 0 | Recovered -> 1 | Hit_disk -> 2 | Hit_mem -> 3
let coldest a b = if tier_rank a <= tier_rank b then a else b

let count_tier t tier =
  match tier with
  | Hit_mem ->
      Atomic.incr t.n_hits_mem;
      Util.Trace.incr c_hits_mem
  | Hit_disk ->
      Atomic.incr t.n_hits_disk;
      Util.Trace.incr c_hits_disk
  | Miss ->
      Atomic.incr t.n_misses;
      Util.Trace.incr c_misses
  | Recovered ->
      Atomic.incr t.n_recovered;
      Util.Trace.incr c_misses

(* Per-domain cache-stage clock: [cached] accumulates its wall time here so
   the worker can split a request's execution into cache_lookup vs compute.
   Only the outermost [cached] frame adds to [frame_ns] (a model compute
   that resolves a nested hmatrix artifact is not double-counted), and
   every leader's [compute] body adds to [exclude_ns]; the worker reads
   cache_lookup = frame_ns - exclude_ns, so an eigensolve behind a cache
   miss counts as compute, not as cache time. *)
type cache_clock = { mutable depth : int; mutable frame_ns : int; mutable exclude_ns : int }

let cache_clock_key = Domain.DLS.new_key (fun () -> { depth = 0; frame_ns = 0; exclude_ns = 0 })

let cache_clock_reset clk =
  clk.frame_ns <- 0;
  clk.exclude_ns <- 0

let cache_clock_read clk = max 0 (clk.frame_ns - clk.exclude_ns)

(* memory LRU over the optional disk store over [compute], with per-key
   single-flight: concurrent misses on the same key run [compute] once —
   the leader computes and fills the caches, followers block on
   [inflight_done] and pick the result up from the memory tier *)
let cached t (entity : 'a Persist.Entity.t) ~spec ~(inject : 'a -> artifact)
    ~(project : artifact -> 'a option) compute =
  let clk = Domain.DLS.get cache_clock_key in
  let compute () =
    let c0 = Util.Trace.now_ns () in
    Fun.protect
      ~finally:(fun () -> clk.exclude_ns <- clk.exclude_ns + (Util.Trace.now_ns () - c0))
      compute
  in
  let t0 = Util.Trace.now_ns () in
  clk.depth <- clk.depth + 1;
  Fun.protect
    ~finally:(fun () ->
      clk.depth <- clk.depth - 1;
      if clk.depth = 0 then clk.frame_ns <- clk.frame_ns + (Util.Trace.now_ns () - t0))
  @@ fun () ->
  let key = entity.Persist.Entity.kind ^ ":" ^ spec in
  let from_mem () = Option.bind (Lru.find t.cache key) project in
  match from_mem () with
  | Some v ->
      count_tier t Hit_mem;
      (v, Hit_mem)
  | None -> (
      let role =
        Mutex.protect t.inflight_lock (fun () ->
            let rec acquire () =
              if not (Hashtbl.mem t.inflight key) then begin
                Hashtbl.add t.inflight key ();
                `Lead
              end
              else begin
                Condition.wait t.inflight_done t.inflight_lock;
                (* the leader finished (or failed): take its result from the
                   memory tier, or become the new leader and recompute *)
                match from_mem () with Some v -> `Done v | None -> acquire ()
              end
            in
            acquire ())
      in
      match role with
      | `Done v ->
          (* a miss answered by another domain's in-flight compute *)
          Atomic.incr t.n_singleflight;
          count_tier t Hit_mem;
          (v, Hit_mem)
      | `Lead ->
          Fun.protect
            ~finally:(fun () ->
              Mutex.protect t.inflight_lock (fun () ->
                  Hashtbl.remove t.inflight key;
                  Condition.broadcast t.inflight_done))
            (fun () ->
              let v, tier =
                match t.store with
                | None -> (compute (), Miss)
                | Some store -> (
                    match Persist.Store.find_or_add store entity ~spec compute with
                    | v, `Hit -> (v, Hit_disk)
                    | v, `Miss -> (v, Miss)
                    | v, `Recovered -> (v, Recovered))
              in
              Lru.add t.cache key (inject v);
              count_tier t tier;
              (v, tier)))

let resolve_netlist circuit =
  match circuit with
  | Protocol.Named name -> (
      match Circuit.Generator.generate_paper name with
      | netlist -> Ok (netlist, Printf.sprintf "name=%s" name)
      | exception Not_found ->
          Error (Protocol.Netlist_error, Printf.sprintf "unknown circuit %S" name))
  | Protocol.Bench_text text -> (
      match Circuit.Bench_format.parse ~name:"inline" text with
      | Ok netlist -> Ok (netlist, "bench=" ^ Persist.Codec.fnv64_hex text)
      | Error msg -> Error (Protocol.Netlist_error, msg))

(* [edit] applies a one-gate kind swap before setup; the swap is folded
   into the cache token so the edited setup is content-addressed alongside
   (never instead of) the baseline one *)
let get_setup_edited t circuit edit =
  match resolve_netlist circuit with
  | Error _ as e -> e
  | Ok (netlist, token) -> (
      let edited =
        match edit with
        | None -> Ok (netlist, token)
        | Some { Protocol.gate; kind } -> (
            match Hier.Edit.kind_of_string kind with
            | Error msg -> Error (Protocol.Bad_params, msg)
            | Ok k -> (
                match Hier.Edit.apply netlist { Hier.Edit.gate; kind = k } with
                | Error msg -> Error (Protocol.Bad_params, msg)
                | Ok edited ->
                    Ok
                      ( edited,
                        Printf.sprintf "%s;edit=%d:%s" token gate
                          (String.lowercase_ascii kind) )))
      in
      match edited with
      | Error _ as e -> e
      | Ok (netlist, token) ->
          let spec =
            Printf.sprintf "circuit(%s,placement_seed=%d)" token t.config.placement_seed
          in
          Ok
            (cached t Persist.Entity.circuit_setup ~spec
               ~inject:(fun s -> A_setup s)
               ~project:(function A_setup s -> Some s | _ -> None)
               (fun () ->
                 Ssta.Experiment.setup_circuit ~placement_seed:t.config.placement_seed netlist)))

let get_setup t circuit = get_setup_edited t circuit None

let mode_name = function
  | Kle.Galerkin.Auto -> "auto"
  | Kle.Galerkin.Assembled -> "assembled"
  | Kle.Galerkin.Matrix_free -> "matrix-free"
  | Kle.Galerkin.Hierarchical -> "hierarchical"

let model_spec t kernel ~r =
  let cfg = t.config.kle in
  Printf.sprintf "kle-model(kernel=%s;die=unit;maf=%.17g;angle=%.17g;pairs=%d;mode=%s;r=%s)"
    (Persist.Entity.kernel_spec kernel)
    cfg.Ssta.Algorithm2.max_area_fraction cfg.Ssta.Algorithm2.min_angle_deg
    cfg.Ssta.Algorithm2.computed_pairs (mode_name cfg.Ssta.Algorithm2.mode)
    (match r with None -> "auto" | Some r -> string_of_int r)

let hmatrix_spec t kernel =
  let cfg = t.config.kle in
  let p = Kle.Hmatrix.default_params in
  Printf.sprintf
    "kle-hmatrix(kernel=%s;die=unit;maf=%.17g;angle=%.17g;tol=%.17g;eta=%.17g;leaf=%d;max_rank=%d)"
    (Persist.Entity.kernel_spec kernel)
    cfg.Ssta.Algorithm2.max_area_fraction cfg.Ssta.Algorithm2.min_angle_deg
    p.Kle.Hmatrix.tol p.Kle.Hmatrix.eta p.Kle.Hmatrix.leaf_size
    p.Kle.Hmatrix.max_rank

exception Hmatrix_failed of string

(* hierarchical-mode eigensolves reuse the cluster tree + ACA factors
   through the same cache tiers as every other artifact: a warm store (or
   memory hit) skips the O(n log n) entry evaluations of the build and goes
   straight to the Lanczos sweep. An ACA stall escapes as [Hmatrix_failed]
   and degrades to the flat matrix-free apply with a diagnostic, mirroring
   [Kle.Operator.galerkin]'s own fallback. *)
let hierarchical_solution t kernel mesh solver =
  match
    cached t Persist.Entity.hmatrix ~spec:(hmatrix_spec t kernel)
      ~inject:(fun h -> A_hmatrix h)
      ~project:(function A_hmatrix h -> Some h | _ -> None)
      (fun () ->
        match
          Kle.Operator.hmatrix_galerkin ~diag:t.diag ?jobs:t.config.jobs mesh
            kernel
        with
        | Ok h -> h
        | Error detail -> raise (Hmatrix_failed detail))
  with
  | h, _tier ->
      Kle.Galerkin.solve_with_operator ~solver ~diag:t.diag ?jobs:t.config.jobs
        ~op:(Kle.Operator.of_hmatrix ~diag:t.diag h) mesh kernel
  | exception Hmatrix_failed detail ->
      Util.Diag.record ~sink:t.diag Util.Diag.Warning `Degraded_fallback
        ~stage:"serve.model"
        (Printf.sprintf
           "hierarchical build failed: %s — solving with the flat apply" detail);
      Kle.Galerkin.solve ~mode:Kle.Galerkin.Matrix_free ~solver ~diag:t.diag
        ?jobs:t.config.jobs mesh kernel

(* mirrors Algorithm2.prepare: unit-die mesh, Lanczos unless the mesh is
   small, Model.create truncation — so a cached model is bit-identical to
   the uncached pipeline's *)
let compute_model t kernel ~r () =
  let cfg = t.config.kle in
  let mesh =
    (Geometry.Refine.mesh Geometry.Rect.unit_die
       ~max_area_fraction:cfg.Ssta.Algorithm2.max_area_fraction
       ~min_angle_deg:cfg.Ssta.Algorithm2.min_angle_deg)
      .Geometry.Geometry_intf.mesh
  in
  let solver =
    if cfg.Ssta.Algorithm2.computed_pairs >= Geometry.Mesh.size mesh then Kle.Galerkin.Dense
    else Kle.Galerkin.Lanczos { count = cfg.Ssta.Algorithm2.computed_pairs }
  in
  let solution =
    match (cfg.Ssta.Algorithm2.mode, solver) with
    | Kle.Galerkin.Hierarchical, Kle.Galerkin.Lanczos _ ->
        hierarchical_solution t kernel mesh solver
    | _ ->
        Kle.Galerkin.solve ~mode:cfg.Ssta.Algorithm2.mode ~solver ~diag:t.diag
          ?jobs:t.config.jobs mesh kernel
  in
  Kle.Model.create ?r solution

let get_model t kernel ~r =
  let spec = model_spec t kernel ~r in
  cached t Persist.Entity.model ~spec
    ~inject:(fun m -> A_model m)
    ~project:(function A_model m -> Some m | _ -> None)
    (compute_model t kernel ~r)

(* the model set's cache-key contribution for hierarchical macros: every
   parameter's full model spec, hashed to keep macro specs short. Any
   change that would alter a model (kernel, truncation, mesh config)
   changes this key and therefore every macro and stitched entry. *)
let models_key t process ~r =
  Persist.Codec.fnv64_hex
    (String.concat "|"
       (Array.to_list
          (Array.map
             (fun (p : Ssta.Process.parameter) -> model_spec t p.Ssta.Process.kernel ~r)
             process.Ssta.Process.parameters)))

(* one model per process parameter; same kernel spec -> same model (the
   first parameter computes, the rest hit the memory tier) *)
let get_models t process ~r =
  let tier = ref Hit_mem in
  let models =
    Array.map
      (fun (p : Ssta.Process.parameter) ->
        let m, tr = get_model t p.Ssta.Process.kernel ~r in
        tier := coldest !tier tr;
        m)
      process.Ssta.Process.parameters
  in
  (models, !tier)

(* ---------------------------------------------------------------- *)
(* request execution *)

exception Reject of Protocol.error_code * string

let process () = Ssta.Process.paper_default ()

let kle_samplers t models (setup : Ssta.Experiment.circuit_setup) =
  Array.map
    (fun m -> Kle.Sampler.create ~diag:t.diag m setup.Ssta.Experiment.locations)
    models

(* The seed-independent half of sampler construction: the expensive shared
   resources (Cholesky factor / KLE samplers) that a coalesced batch pays
   for once. [sampler_fn_of] then binds a member's seed, so a batched
   request and the equivalent unbatched one draw bit-identical samples. *)
let sampler_resources t (setup : Ssta.Experiment.circuit_setup) kind ~r =
  match (kind : Protocol.sampler_kind) with
  | Protocol.Cholesky ->
      let timer = Util.Timer.start () in
      let a1 = Ssta.Algorithm1.prepare ~diag:t.diag ?jobs:t.config.jobs (process ()) setup.Ssta.Experiment.locations in
      (`Cholesky a1, Util.Timer.elapsed_s timer, Miss)
  | Protocol.Kle ->
      let timer = Util.Timer.start () in
      let models, tier = get_models t (process ()) ~r in
      let samplers = kle_samplers t models setup in
      (`Kle samplers, Util.Timer.elapsed_s timer, tier)
  | Protocol.Kle_qmc ->
      let timer = Util.Timer.start () in
      let models, tier = get_models t (process ()) ~r in
      let samplers = kle_samplers t models setup in
      (`Qmc samplers, Util.Timer.elapsed_s timer, tier)

let sampler_fn_of resources ~seed : Ssta.Experiment.sampler =
  match resources with
  | `Cholesky a1 -> fun rng ~n -> Ssta.Algorithm1.sample_block a1 rng ~n
  | `Kle samplers ->
      fun rng ~n -> Array.map (fun s -> Kle.Sampler.sample_matrix s rng ~n) samplers
  | `Qmc samplers ->
      (* stateful randomized-Halton sequences, one per parameter; run_mc
         calls the sampler batch by batch in order on one domain, so the
         sequence position advances deterministically. Sequences are bound
         per seed (not shared across a batch group), keeping every member's
         draws identical to its unbatched run. *)
      let seqs =
        Array.mapi
          (fun i s ->
            Prng.Lowdisc.create
              ~shift_rng:(Prng.Rng.substream ~seed ~stream:(0x51C0 + i))
              ~dim:(Kle.Sampler.dim s) ())
          samplers
      in
      fun _rng ~n ->
        Array.mapi
          (fun i s ->
            Kle.Sampler.sample_matrix_with s ~xi:(Prng.Lowdisc.normal_matrix seqs.(i) ~rows:n))
          samplers

let mc_sampler_of t (setup : Ssta.Experiment.circuit_setup) kind ~r ~seed :
    Ssta.Experiment.sampler * float * tier =
  let resources, seconds, tier = sampler_resources t setup kind ~r in
  (sampler_fn_of resources ~seed, seconds, tier)

let float_list a = Jsonx.List (Array.to_list (Array.map (fun v -> Jsonx.Num v) a))

let mc_payload ?(full = false) (mc : Ssta.Experiment.mc_result) =
  Jsonx.Obj
    ([
       ("n_samples", Jsonx.Num (float_of_int mc.Ssta.Experiment.n_samples));
       ("n_skipped", Jsonx.Num (float_of_int mc.Ssta.Experiment.n_skipped));
       ("worst_mean", Jsonx.Num mc.Ssta.Experiment.worst_mean);
       ("worst_sigma", Jsonx.Num mc.Ssta.Experiment.worst_sigma);
       ("endpoints", Jsonx.Num (float_of_int (Array.length mc.Ssta.Experiment.endpoint_mean)));
       ("sample_seconds", Jsonx.Num mc.Ssta.Experiment.sample_seconds);
       ("sta_seconds", Jsonx.Num mc.Ssta.Experiment.sta_seconds);
     ]
    @
    if full then
      [
        ("endpoint_mean", float_list mc.Ssta.Experiment.endpoint_mean);
        ("endpoint_sigma", float_list mc.Ssta.Experiment.endpoint_sigma);
      ]
    else [])

let lru_stats_payload (s : Lru.stats) =
  Jsonx.Obj
    [
      ("hits", Jsonx.Num (float_of_int s.Lru.hits));
      ("misses", Jsonx.Num (float_of_int s.Lru.misses));
      ("evictions", Jsonx.Num (float_of_int s.Lru.evictions));
      ("entries", Jsonx.Num (float_of_int s.Lru.entries));
    ]

let store_stats_payload store =
  let s = Persist.Store.stats store in
  Jsonx.Obj
    [
      ("dir", Jsonx.Str (Persist.Store.dir store));
      ("hits", Jsonx.Num (float_of_int s.Persist.Store.hits));
      ("misses", Jsonx.Num (float_of_int s.Persist.Store.misses));
      ("recovered", Jsonx.Num (float_of_int s.Persist.Store.recovered));
      ("writes", Jsonx.Num (float_of_int s.Persist.Store.writes));
      ("read_failures", Jsonx.Num (float_of_int s.Persist.Store.read_failures));
      ("entries", Jsonx.Num (float_of_int s.Persist.Store.entries));
      ("bytes", Jsonx.Num (float_of_int s.Persist.Store.bytes));
    ]

let batch_stats_payload (s : Batch.stats) =
  Jsonx.Obj
    [
      ("appended", Jsonx.Num (float_of_int s.Batch.appended));
      ("flushed_groups", Jsonx.Num (float_of_int s.Batch.flushed_groups));
      ("max_group", Jsonx.Num (float_of_int s.Batch.max_group));
    ]

let stats_payload t =
  let queue_len = Mutex.protect t.lock (fun () -> t.queued) in
  Jsonx.Obj
    ([
       ("requests", Jsonx.Num (float_of_int (Atomic.get t.n_requests)));
       ("errors", Jsonx.Num (float_of_int (Atomic.get t.n_errors)));
       ("rejected", Jsonx.Num (float_of_int (Atomic.get t.n_rejected)));
       ("deadline_missed", Jsonx.Num (float_of_int (Atomic.get t.n_deadline)));
       ("replies_dropped", Jsonx.Num (float_of_int (Atomic.get t.n_replies_dropped)));
       ("requeued", Jsonx.Num (float_of_int (Atomic.get t.n_requeued)));
       ("cache_hits_mem", Jsonx.Num (float_of_int (Atomic.get t.n_hits_mem)));
       ("cache_hits_disk", Jsonx.Num (float_of_int (Atomic.get t.n_hits_disk)));
       ("cache_misses", Jsonx.Num (float_of_int (Atomic.get t.n_misses)));
       ("cache_recovered", Jsonx.Num (float_of_int (Atomic.get t.n_recovered)));
       ("singleflight_dedup", Jsonx.Num (float_of_int (Atomic.get t.n_singleflight)));
       ("retime_blocks_reused", Jsonx.Num (float_of_int (Atomic.get t.n_blocks_reused)));
       ( "retime_blocks_recomputed",
         Jsonx.Num (float_of_int (Atomic.get t.n_blocks_recomputed)) );
       ("queue_length", Jsonx.Num (float_of_int queue_len));
       ("queue_capacity", Jsonx.Num (float_of_int t.config.queue_capacity));
       ("workers", Jsonx.Num (float_of_int t.config.workers));
       ("worker_restarts", Jsonx.Num (float_of_int (Atomic.get t.n_worker_restarts)));
       ("quarantined", Jsonx.Num (float_of_int (Atomic.get t.n_quarantined)));
       ("draining", Jsonx.Bool (Atomic.get t.draining));
       ("lru", lru_stats_payload (Lru.stats t.cache));
     ]
    @ (match t.batcher with
      | None -> []
      | Some b ->
          let fields =
            match batch_stats_payload (Batch.stats b) with Jsonx.Obj f -> f | _ -> []
          in
          [
            ( "batch",
              Jsonx.Obj
                (("window_ms", Jsonx.Num (t.config.batch_window_s *. 1e3)) :: fields) );
          ])
    @ match t.store with None -> [] | Some store -> [ ("store", store_stats_payload store) ])

(* the chaos harness's recovery probe: counters, queue state and a
   directory scan — explicit about what "healthy" means: accepting work
   and not draining. Idle recovery shows as workers_busy=0, queue_depth=0 *)
let health_payload t =
  let queue_depth = Mutex.protect t.lock (fun () -> t.queued) in
  let draining = Atomic.get t.draining in
  Jsonx.Obj
    ([
       ("healthy", Jsonx.Bool (not draining));
       ("draining", Jsonx.Bool draining);
       ("workers", Jsonx.Num (float_of_int t.config.workers));
       ("workers_busy", Jsonx.Num (float_of_int (Atomic.get t.busy)));
       ("worker_restarts", Jsonx.Num (float_of_int (Atomic.get t.n_worker_restarts)));
       ("quarantined", Jsonx.Num (float_of_int (Atomic.get t.n_quarantined)));
       ("queue_depth", Jsonx.Num (float_of_int queue_depth));
       ("queue_capacity", Jsonx.Num (float_of_int t.config.queue_capacity));
       ("cache_entries", Jsonx.Num (float_of_int (Lru.stats t.cache).Lru.entries));
     ]
    @
    match t.store with
    | None -> [ ("store", Jsonx.Str "none") ]
    | Some store ->
        let s = Persist.Store.stats store in
        [
          ("store", Jsonx.Str "open");
          ("store_entries", Jsonx.Num (float_of_int s.Persist.Store.entries));
          ( "store_read_failures",
            Jsonx.Num (float_of_int s.Persist.Store.read_failures) );
        ])

(* The unified counter list for the metrics surface: the server's own
   always-on atomics first (stable names, stable order — CI greps them),
   then whatever {!Util.Trace} counters the process has registered
   (tracing-gated request attribution, pool/kernel work counters).
   Trace names are prefixed to keep the two namespaces from colliding. *)
let unified_counters t =
  let queue_depth = Mutex.protect t.lock (fun () -> t.queued) in
  [
    ("requests", Atomic.get t.n_requests);
    ("errors", Atomic.get t.n_errors);
    ("rejected", Atomic.get t.n_rejected);
    ("deadline_missed", Atomic.get t.n_deadline);
    ("replies_dropped", Atomic.get t.n_replies_dropped);
    ("requeued", Atomic.get t.n_requeued);
    ("cache_hits_mem", Atomic.get t.n_hits_mem);
    ("cache_hits_disk", Atomic.get t.n_hits_disk);
    ("cache_misses", Atomic.get t.n_misses);
    ("cache_recovered", Atomic.get t.n_recovered);
    ("singleflight_dedup", Atomic.get t.n_singleflight);
    ("retime_blocks_reused", Atomic.get t.n_blocks_reused);
    ("retime_blocks_recomputed", Atomic.get t.n_blocks_recomputed);
    ("worker_restarts", Atomic.get t.n_worker_restarts);
    ("quarantined", Atomic.get t.n_quarantined);
    ("queue_depth", queue_depth);
    ("workers_busy", Atomic.get t.busy);
    ("workers", t.config.workers);
  ]
  @ (match t.batcher with
    | None -> []
    | Some b ->
        let s = Batch.stats b in
        [
          ("batch_appended", s.Batch.appended);
          ("batch_flushed_groups", s.Batch.flushed_groups);
          ("batch_max_group", s.Batch.max_group);
        ])
  @ List.map (fun (name, v) -> ("trace_" ^ name, v)) (Util.Trace.counters ())

let execute t (request : Protocol.request) : Jsonx.t =
  match request.Protocol.call with
  | Protocol.Prepare { circuit; r } -> (
      match get_setup t circuit with
      | Error (code, msg) -> raise (Reject (code, msg))
      | Ok (setup, setup_tier) ->
          let timer = Util.Timer.start () in
          let models, model_tier = get_models t (process ()) ~r in
          let setup_seconds = Util.Timer.elapsed_s timer in
          Jsonx.Obj
            [
              ("circuit", Jsonx.Str setup.Ssta.Experiment.netlist.Circuit.Netlist.name);
              ( "gates",
                Jsonx.Num
                  (float_of_int (Array.length setup.Ssta.Experiment.netlist.Circuit.Netlist.gates)) );
              ( "logic_gates",
                Jsonx.Num (float_of_int (Array.length setup.Ssta.Experiment.logic_ids)) );
              ("r", Jsonx.Num (float_of_int models.(0).Kle.Model.r));
              ( "mesh_size",
                Jsonx.Num
                  (float_of_int
                     (Geometry.Mesh.size
                        models.(0).Kle.Model.solution.Kle.Galerkin.mesh)) );
              ("cache_setup", Jsonx.Str (tier_name setup_tier));
              ("cache_models", Jsonx.Str (tier_name model_tier));
              ("setup_seconds", Jsonx.Num setup_seconds);
            ])
  | Protocol.Run_mc { circuit; sampler; r; seed; n; batch; full } -> (
      match get_setup t circuit with
      | Error (code, msg) -> raise (Reject (code, msg))
      | Ok (setup, setup_tier) ->
          let sampler_fn, setup_seconds, tier = mc_sampler_of t setup sampler ~r ~seed in
          let mc =
            Ssta.Experiment.run_mc ?batch ?jobs:t.config.jobs ~diag:t.diag setup
              ~sampler:sampler_fn ~seed ~n
          in
          let fields = match mc_payload ~full mc with Jsonx.Obj f -> f | _ -> [] in
          Jsonx.Obj
            (fields
            @ [
                ("cache_setup", Jsonx.Str (tier_name setup_tier));
                ("cache_models", Jsonx.Str (tier_name tier));
                ("sampler_setup_seconds", Jsonx.Num setup_seconds);
              ]))
  | Protocol.Compare { circuit; r; seed; n } -> (
      match get_setup t circuit with
      | Error (code, msg) -> raise (Reject (code, msg))
      | Ok (setup, _) ->
          let ref_sampler, ref_setup_s, _ = mc_sampler_of t setup Protocol.Cholesky ~r ~seed in
          let reference =
            Ssta.Experiment.run_mc ?jobs:t.config.jobs ~diag:t.diag setup ~sampler:ref_sampler
              ~seed ~n
          in
          let cand_sampler, cand_setup_s, _ = mc_sampler_of t setup Protocol.Kle ~r ~seed in
          let candidate =
            Ssta.Experiment.run_mc ?jobs:t.config.jobs ~diag:t.diag setup ~sampler:cand_sampler
              ~seed ~n
          in
          let cmp =
            Ssta.Experiment.compare ~reference ~reference_setup_seconds:ref_setup_s ~candidate
              ~candidate_setup_seconds:cand_setup_s
          in
          Jsonx.Obj
            [
              ("reference", mc_payload reference);
              ("candidate", mc_payload candidate);
              ("e_mu_pct", Jsonx.Num cmp.Ssta.Experiment.e_mu_pct);
              ("e_sigma_pct", Jsonx.Num cmp.Ssta.Experiment.e_sigma_pct);
              ( "sigma_err_avg_outputs_pct",
                Jsonx.Num cmp.Ssta.Experiment.sigma_err_avg_outputs_pct );
              ( "excluded_endpoints",
                Jsonx.Num (float_of_int cmp.Ssta.Experiment.excluded_endpoints) );
              ("speedup", Jsonx.Num cmp.Ssta.Experiment.speedup);
            ])
  | Protocol.Retime { circuit; r; n_blocks; edit } -> (
      match get_setup_edited t circuit edit with
      | Error (code, msg) -> raise (Reject (code, msg))
      | Ok (setup, setup_tier) ->
          let proc = process () in
          let models, model_tier = get_models t proc ~r in
          let result =
            Hier.Engine.retime ?n_blocks ?jobs:t.config.jobs ?cache:t.depgraph setup
              ~models ~model_key:(models_key t proc ~r)
          in
          let counters = result.Hier.Engine.counters in
          ignore
            (Atomic.fetch_and_add t.n_blocks_reused counters.Hier.Engine.blocks_reused);
          ignore
            (Atomic.fetch_and_add t.n_blocks_recomputed
               counters.Hier.Engine.blocks_recomputed);
          Jsonx.Obj
            [
              ("circuit", Jsonx.Str setup.Ssta.Experiment.netlist.Circuit.Netlist.name);
              ("n_blocks", Jsonx.Num (float_of_int result.Hier.Engine.n_blocks));
              ("basis_dim", Jsonx.Num (float_of_int result.Hier.Engine.basis_dim));
              ("worst_mean", Jsonx.Num result.Hier.Engine.worst.Ssta.Canonical.mean);
              ("worst_sigma", Jsonx.Num (Ssta.Canonical.sigma result.Hier.Engine.worst));
              ( "endpoints",
                Jsonx.Num (float_of_int (Array.length result.Hier.Engine.endpoint_forms)) );
              ("blocks_reused", Jsonx.Num (float_of_int counters.Hier.Engine.blocks_reused));
              ( "blocks_recomputed",
                Jsonx.Num (float_of_int counters.Hier.Engine.blocks_recomputed) );
              ("analysis_seconds", Jsonx.Num result.Hier.Engine.analysis_seconds);
              ("cache_setup", Jsonx.Str (tier_name setup_tier));
              ("cache_models", Jsonx.Str (tier_name model_tier));
            ])
  | Protocol.Stats -> stats_payload t
  | Protocol.Health -> health_payload t
  | Protocol.Metrics -> Telemetry.metrics_payload t.telemetry ~counters:(unified_counters t)
  | Protocol.Debug -> Telemetry.debug_payload t.telemetry
  | Protocol.Shutdown ->
      Atomic.set t.shutdown_flag true;
      Jsonx.Obj [ ("shutting_down", Jsonx.Bool true) ]

let method_name (request : Protocol.request) =
  match request.Protocol.call with
  | Protocol.Prepare _ -> "prepare"
  | Protocol.Run_mc _ -> "run_mc"
  | Protocol.Compare _ -> "compare"
  | Protocol.Retime _ -> "retime"
  | Protocol.Stats -> "stats"
  | Protocol.Health -> "health"
  | Protocol.Metrics -> "metrics"
  | Protocol.Debug -> "debug"
  | Protocol.Shutdown -> "shutdown"

(* Exactly-once reply: the atomic exchange makes the first caller the
   only one that touches the wire. A second attempt (e.g. a restarted
   worker re-running a job that had already replied before the crash
   point) is suppressed into a [serve.reply] diagnostic — never a
   duplicated line for the same id. A reply can also fail mid-write when
   the client has disconnected (broken pipe / closed fd); that must never
   take down the worker domain either. *)
let safe_reply t job response =
  if Atomic.exchange job.replied true then
    Util.Diag.record ~sink:t.diag Util.Diag.Warning `Degraded_fallback
      ~stage:"serve.reply"
      (Printf.sprintf "duplicate reply for request id=%s suppressed"
         (Jsonx.to_string job.request.Protocol.id))
  else begin
    let t0 = Util.Trace.now_ns () in
    (try job.reply response
     with e ->
       Atomic.incr t.n_replies_dropped;
       Util.Diag.record ~sink:t.diag Util.Diag.Warning `Degraded_fallback
         ~stage:"serve.reply"
         (Printf.sprintf "reply for request id=%s dropped: %s"
            (Jsonx.to_string job.request.Protocol.id)
            (Printexc.to_string e)));
    job.reply_write_ns <- Util.Trace.now_ns () - t0
  end

(* Entering the drain flushes the accumulation windows on both sides of the
   flag flip: groups flushed before it still execute; adds racing the flip
   are flushed into the [`Draining] verdict and answered [shutting_down]. *)
let enter_draining t =
  (match t.batcher with Some b -> Batch.flush_all b | None -> ());
  Mutex.lock t.lock;
  Atomic.set t.draining true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.lock;
  match t.batcher with Some b -> Batch.flush_all b | None -> ()

(* Util.Trace.now_ns reads the raw monotonic clock — it is NOT gated by
   the tracing flag, so deadlines stay live when tracing is disabled
   (test_serve pins this down). Returns false (and replies) when expired. *)
let check_deadline t job =
  let expired =
    match job.deadline_ns with
    | Some deadline -> Util.Trace.now_ns () > deadline
    | None -> false
  in
  if expired then begin
    Atomic.incr t.n_deadline;
    Util.Trace.incr c_deadline;
    safe_reply t job
      (job.codec.rc_error ~id:job.request.Protocol.id ~req_id:(echo_req_id job)
         Protocol.Deadline_exceeded "deadline elapsed before the request was executed")
  end;
  not expired

let reply_error t job code msg =
  Atomic.incr t.n_errors;
  Util.Trace.incr c_errors;
  safe_reply t job
    (job.codec.rc_error ~id:job.request.Protocol.id ~req_id:(echo_req_id job) code msg)

(* Per-member stage breakdown, recorded after the reply is on the wire:
   batch_wait (submission -> queue admission; ~0 on the direct path, so
   every stage histogram is always populated), queue_wait (admission ->
   dequeue), cache_lookup (the per-domain cache clock), compute (execution
   net of cache time), reply_write (inside [safe_reply]). Deadline-expired
   requests are not recorded — they never executed, and their zeros would
   drag every stage quantile down. *)
let record_stages t job ~method_ ~ok ~dequeue_ns ~exec_ns ~cache_ns =
  let total_ns = max 0 (Util.Trace.now_ns () - job.submitted_ns) in
  Telemetry.record_request t.telemetry ~req_id:job.req_id ~method_ ~ok
    ~stages:
      [
        (Telemetry.Batch_wait, max 0 (job.enqueued_ns - job.submitted_ns));
        (Telemetry.Queue_wait, max 0 (dequeue_ns - job.enqueued_ns));
        (Telemetry.Cache_lookup, cache_ns);
        (Telemetry.Compute, max 0 (exec_ns - cache_ns));
        (Telemetry.Reply_write, job.reply_write_ns);
      ]
    ~total_ns

let run_job t job =
  let request = job.request in
  let id = request.Protocol.id in
  let req_id = echo_req_id job in
  if check_deadline t job then begin
    let dequeue_ns = Util.Trace.now_ns () in
    Atomic.incr t.n_requests;
    Util.Trace.incr c_requests;
    let clk = Domain.DLS.get cache_clock_key in
    cache_clock_reset clk;
    let ok = ref true in
    let fail () =
      ok := false;
      Atomic.incr t.n_errors;
      Util.Trace.incr c_errors
    in
    let x0 = Util.Trace.now_ns () in
    let response =
      Util.Trace.with_span
        ~attrs:[ ("method", method_name request); ("req_id", job.req_id) ]
        "serve.request"
      @@ fun () ->
      match execute t request with
      | payload -> job.codec.rc_ok ~id ~req_id payload
      | exception Reject (code, msg) ->
          fail ();
          job.codec.rc_error ~id ~req_id code msg
      | exception Util.Diag.Failure event ->
          fail ();
          job.codec.rc_error ~id ~req_id Protocol.Internal_error (Util.Diag.to_string event)
      | exception Invalid_argument msg ->
          fail ();
          job.codec.rc_error ~id ~req_id Protocol.Bad_params msg
      | exception e ->
          fail ();
          job.codec.rc_error ~id ~req_id Protocol.Internal_error (Printexc.to_string e)
    in
    let exec_ns = Util.Trace.now_ns () - x0 in
    let cache_ns = cache_clock_read clk in
    safe_reply t job response;
    record_stages t job ~method_:(method_name request) ~ok:!ok ~dequeue_ns ~exec_ns
      ~cache_ns;
    (* shutdown begins its drain only after the ok reply is on the wire *)
    if Atomic.get t.shutdown_flag && not (Atomic.get t.draining) then enter_draining t
  end

(* A coalesced run_mc group: every member shares the model-spec key, so the
   circuit setup and sampler resources are resolved once and each member
   only pays its own sampling + STA sweep. Seeds are bound per member
   ([sampler_fn_of]), keeping results bit-identical to unbatched runs. *)
let run_group t jobs =
  let live = List.filter (check_deadline t) jobs in
  match live with
  | [] -> ()
  | first :: _ -> (
      let dequeue_ns = Util.Trace.now_ns () in
      List.iter
        (fun _ ->
          Atomic.incr t.n_requests;
          Util.Trace.incr c_requests)
        live;
      let req_ids = String.concat "," (List.map (fun job -> job.req_id) live) in
      let clk = Domain.DLS.get cache_clock_key in
      match first.request.Protocol.call with
      | Protocol.Run_mc { circuit; sampler; r; _ } -> (
          cache_clock_reset clk;
          let s0 = Util.Trace.now_ns () in
          let shared =
            Util.Trace.with_span
              ~attrs:
                [
                  ("method", "run_mc");
                  ("group", string_of_int (List.length live));
                  (* the coalesced group records every member's correlation
                     ID, so a trace span maps back to each client request *)
                  ("req_ids", req_ids);
                ]
              "serve.batch"
            @@ fun () ->
            match
              match get_setup t circuit with
              | Error (code, msg) -> Error (code, msg)
              | Ok (setup, setup_tier) ->
                  let resources, seconds, tier = sampler_resources t setup sampler ~r in
                  Ok (setup, setup_tier, resources, seconds, tier)
            with
            | v -> v
            | exception Reject (code, msg) -> Error (code, msg)
            | exception Util.Diag.Failure event ->
                Error (Protocol.Internal_error, Util.Diag.to_string event)
            | exception Invalid_argument msg -> Error (Protocol.Bad_params, msg)
            | exception e -> Error (Protocol.Internal_error, Printexc.to_string e)
          in
          (* shared prep is attributed to every member: each one would have
             paid it alone, and charging it keeps batched-vs-direct compute
             histograms comparable *)
          let shared_ns = Util.Trace.now_ns () - s0 in
          let shared_cache_ns = cache_clock_read clk in
          match shared with
          | Error (code, msg) ->
              List.iter
                (fun job ->
                  reply_error t job code msg;
                  record_stages t job ~method_:"run_mc" ~ok:false ~dequeue_ns
                    ~exec_ns:shared_ns ~cache_ns:shared_cache_ns)
                live
          | Ok (setup, setup_tier, resources, setup_seconds, tier) ->
              List.iter
                (fun job ->
                  match job.request.Protocol.call with
                  | Protocol.Run_mc { seed; n; batch; full; _ } ->
                      cache_clock_reset clk;
                      let ok = ref true in
                      let m0 = Util.Trace.now_ns () in
                      let response =
                        Util.Trace.with_span
                          ~attrs:[ ("method", "run_mc"); ("req_id", job.req_id) ]
                          "serve.request"
                        @@ fun () ->
                        match
                          let sampler_fn = sampler_fn_of resources ~seed in
                          let mc =
                            Ssta.Experiment.run_mc ?batch ?jobs:t.config.jobs ~diag:t.diag
                              setup ~sampler:sampler_fn ~seed ~n
                          in
                          let fields =
                            match mc_payload ~full mc with Jsonx.Obj f -> f | _ -> []
                          in
                          Jsonx.Obj
                            (fields
                            @ [
                                ("cache_setup", Jsonx.Str (tier_name setup_tier));
                                ("cache_models", Jsonx.Str (tier_name tier));
                                ("sampler_setup_seconds", Jsonx.Num setup_seconds);
                              ])
                        with
                        | payload ->
                            job.codec.rc_ok ~id:job.request.Protocol.id
                              ~req_id:(echo_req_id job) payload
                        | exception Util.Diag.Failure event ->
                            ok := false;
                            Atomic.incr t.n_errors;
                            Util.Trace.incr c_errors;
                            job.codec.rc_error ~id:job.request.Protocol.id
                              ~req_id:(echo_req_id job) Protocol.Internal_error
                              (Util.Diag.to_string event)
                        | exception Invalid_argument msg ->
                            ok := false;
                            Atomic.incr t.n_errors;
                            Util.Trace.incr c_errors;
                            job.codec.rc_error ~id:job.request.Protocol.id
                              ~req_id:(echo_req_id job) Protocol.Bad_params msg
                        | exception e ->
                            ok := false;
                            Atomic.incr t.n_errors;
                            Util.Trace.incr c_errors;
                            job.codec.rc_error ~id:job.request.Protocol.id
                              ~req_id:(echo_req_id job) Protocol.Internal_error
                              (Printexc.to_string e)
                      in
                      let member_ns = Util.Trace.now_ns () - m0 in
                      let member_cache_ns = cache_clock_read clk in
                      safe_reply t job response;
                      record_stages t job ~method_:"run_mc" ~ok:!ok ~dequeue_ns
                        ~exec_ns:(shared_ns + member_ns)
                        ~cache_ns:(shared_cache_ns + member_cache_ns)
                  | _ ->
                      (* the batch key admits only run_mc; anything else here
                         is a collector bug, answered typed not crashed *)
                      reply_error t job Protocol.Internal_error
                        "non-run_mc request in a coalesced group")
                live)
      | _ ->
          List.iter
            (fun job ->
              reply_error t job Protocol.Internal_error "non-run_mc request in a coalesced group")
            live)

(* deterministic scheduling failure, injected between dequeue and
   execution (or, for [chaos_crash_after], between the reply and the
   slot release) — it escapes [run_job]'s catch-all on purpose, so the
   only thing standing between it and a silently dead domain is the
   supervision barrier *)
exception Crash_injected

let maybe_crash plan =
  match plan with
  | Some p when Util.Fault.fires p -> raise Crash_injected
  | Some _ | None -> ()

(* [slot] is the worker's in-flight job, visible to the crash handler:
   when the body dies the supervisor must know which request was being
   executed to re-queue or quarantine it *)
let worker_loop t (slot : job list ref) () =
  let rec next () =
    Mutex.lock t.lock;
    let rec wait () =
      if not (Queue.is_empty t.queue) then begin
        let group = Queue.pop t.queue in
        t.queued <- t.queued - List.length group;
        Some group
      end
      else if Atomic.get t.draining then None
      else begin
        Condition.wait t.not_empty t.lock;
        wait ()
      end
    in
    let group = wait () in
    Mutex.unlock t.lock;
    match group with
    | None -> ()
    | Some group ->
        slot := group;
        Atomic.incr t.busy;
        maybe_crash t.config.chaos_crash;
        (match group with [ job ] -> run_job t job | jobs -> run_group t jobs);
        maybe_crash t.config.chaos_crash_after;
        slot := [];
        Atomic.decr t.busy;
        next ()
  in
  next ()

(* the supervision policy: account for the in-flight group (retry each
   unreplied member once on a restarted worker, quarantine after a second
   kill), then restart unless the pool is draining. Retries re-queue as
   singletons — a member that crashed a worker never rides in a group
   again, so one poison member can't take its groupmates down twice. *)
let on_worker_crash t (slot : job list ref) e ~restarts =
  (* restart accounting first, so any reply sent below (quarantine,
     draining) observes up-to-date counters on the client side *)
  let outcome =
    if Atomic.get t.draining then `Stop
    else begin
      Atomic.incr t.n_worker_restarts;
      Util.Trace.incr c_worker_restarts;
      Util.Diag.record ~sink:t.diag Util.Diag.Warning `Degraded_fallback
        ~stage:"serve.worker"
        (Printf.sprintf "worker crashed (%s) — restart #%d" (Printexc.to_string e)
           (restarts + 1));
      `Restart
    end
  in
  (match !slot with
  | [] -> ()
  | inflight ->
      slot := [];
      Atomic.decr t.busy;
      List.iter
        (fun job ->
          (* jobs that replied before the crash point are retried too: the
             re-run's reply is suppressed by the [safe_reply] guard (and a
             duplicate-reply diagnostic recorded), never written twice *)
          let attempts = 1 + Atomic.fetch_and_add job.attempts 1 in
          if attempts >= 2 then begin
            Atomic.incr t.n_quarantined;
            Util.Diag.record ~sink:t.diag Util.Diag.Warning `Degraded_fallback
              ~stage:"serve.worker"
              (Printf.sprintf "request id=%s quarantined after crashing %d workers"
                 (Jsonx.to_string job.request.Protocol.id)
                 attempts);
            safe_reply t job
              (job.codec.rc_error ~id:job.request.Protocol.id ~req_id:(echo_req_id job)
                 Protocol.Internal_error
                 (Printf.sprintf "request crashed the worker %d times — quarantined"
                    attempts))
          end
          else if Atomic.get t.draining then
            safe_reply t job
              (job.codec.rc_error ~id:job.request.Protocol.id ~req_id:(echo_req_id job)
                 Protocol.Shutting_down
                 "worker crashed while draining; request not retried")
          else begin
            Atomic.incr t.n_requeued;
            (* the retry re-enters the queue now; resetting the admission
               stamp keeps queue_wait honest for the re-run *)
            job.enqueued_ns <- Util.Trace.now_ns ();
            Mutex.protect t.lock (fun () ->
                Queue.push [ job ] t.queue;
                t.queued <- t.queued + 1;
                Condition.signal t.not_empty)
          end)
        inflight);
  outcome

let reject_job t job verdict =
  Atomic.incr t.n_rejected;
  Util.Trace.incr c_rejected;
  match verdict with
  | `Draining ->
      safe_reply t job
        (job.codec.rc_error ~id:job.request.Protocol.id ~req_id:(echo_req_id job)
           Protocol.Shutting_down "server is draining")
  | `Full ->
      safe_reply t job
        (job.codec.rc_error ~id:job.request.Protocol.id ~req_id:(echo_req_id job)
           Protocol.Overloaded
           (Printf.sprintf "queue full (%d pending)" t.config.queue_capacity))

(* The single enqueue point: a group is admitted whole or rejected whole,
   with per-member typed replies on rejection (shed, not collapse). *)
let enqueue_group t jobs =
  match jobs with
  | [] -> ()
  | _ -> (
      let size = List.length jobs in
      let verdict =
        Mutex.protect t.lock (fun () ->
            if Atomic.get t.draining then `Draining
            else if t.queued >= t.config.queue_capacity then `Full
            else begin
              (* queue admission: everything before this stamp is batch
                 window (or ~0 on the direct path), everything after until
                 dequeue is queue_wait *)
              let now = Util.Trace.now_ns () in
              List.iter (fun job -> job.enqueued_ns <- now) jobs;
              Queue.push jobs t.queue;
              t.queued <- t.queued + size;
              Condition.signal t.not_empty;
              `Queued
            end)
      in
      match verdict with
      | `Queued -> ()
      | (`Draining | `Full) as v -> List.iter (fun job -> reject_job t job v) jobs)

(* ---------------------------------------------------------------- *)
(* lifecycle *)

(* ingress req_id namespace: two servers in one process (router tests)
   must not mint colliding IDs, so mix a per-process sequence into the
   monotonic-clock reading *)
let instance_counter = Atomic.make 0

let create ?diag config =
  if config.workers < 1 then invalid_arg "Server.create: workers < 1";
  if config.queue_capacity < 1 then invalid_arg "Server.create: queue_capacity < 1";
  let diag = match diag with Some d -> d | None -> Util.Diag.create () in
  let instance =
    (Util.Trace.now_ns () land 0xFFFF_FFFF) lxor (Atomic.fetch_and_add instance_counter 1 lsl 32)
  in
  let telemetry = Telemetry.create ~slow_ms:config.slow_ms ~ring_size:config.slow_ring () in
  Telemetry.set_log telemetry config.request_log;
  let store =
    Option.map
      (fun dir ->
        Persist.Store.open_ ~diag ~io_faults:config.store_io_faults ~dir ())
      config.store_dir
  in
  let t =
    {
      config;
      diag;
      store;
      depgraph = Option.map Persist.Depgraph.create store;
      cache = Lru.create ~capacity:config.cache_entries;
      queue = Queue.create ();
      queued = 0;
      batcher = None;
      lock = Mutex.create ();
      not_empty = Condition.create ();
      inflight = Hashtbl.create 8;
      inflight_lock = Mutex.create ();
      inflight_done = Condition.create ();
      draining = Atomic.make false;
      joined = false;
      worker_handles = [];
      joiner = None;
      shutdown_flag = Atomic.make false;
      busy = Atomic.make 0;
      n_worker_restarts = Atomic.make 0;
      n_quarantined = Atomic.make 0;
      n_requests = Atomic.make 0;
      n_errors = Atomic.make 0;
      n_rejected = Atomic.make 0;
      n_deadline = Atomic.make 0;
      n_hits_mem = Atomic.make 0;
      n_hits_disk = Atomic.make 0;
      n_misses = Atomic.make 0;
      n_recovered = Atomic.make 0;
      n_singleflight = Atomic.make 0;
      n_replies_dropped = Atomic.make 0;
      n_requeued = Atomic.make 0;
      n_blocks_reused = Atomic.make 0;
      n_blocks_recomputed = Atomic.make 0;
      telemetry;
      instance;
      req_seq = Atomic.make 0;
    }
  in
  t.worker_handles <-
    List.init config.workers (fun _ ->
        let slot = ref [] in
        Supervisor.spawn ~on_crash:(on_worker_crash t slot) (worker_loop t slot));
  if config.batch_window_s > 0. && config.batch_max > 1 then
    t.batcher <-
      Some
        (Batch.create ~window_s:config.batch_window_s ~max_batch:config.batch_max
           ~flush:(fun _key jobs -> enqueue_group t jobs));
  t

let shutdown_requested t = Atomic.get t.shutdown_flag

(* Coalescing key: requests that share it run as one group with shared
   circuit-setup and sampler-resource resolution. Cheap on purpose (no
   netlist parse — inline bench text keys by content hash); only run_mc is
   coalescable, and the seed/n/batch/full members may differ freely. *)
let batch_key (request : Protocol.request) =
  match request.Protocol.call with
  | Protocol.Run_mc { circuit; sampler; r; _ } ->
      let circuit_token =
        match circuit with
        | Protocol.Named name -> "name:" ^ name
        | Protocol.Bench_text text -> "bench:" ^ Persist.Codec.fnv64_hex text
      in
      Some
        (Printf.sprintf "%s;sampler=%s;r=%s" circuit_token
           (match sampler with
           | Protocol.Cholesky -> "cholesky"
           | Protocol.Kle -> "kle"
           | Protocol.Kle_qmc -> "kle-qmc")
           (match r with None -> "auto" | Some r -> string_of_int r))
  | _ -> None

let submit_wire t ~wire payload ~reply =
  let codec = match wire with `Json -> json_codec | `Binary -> binary_codec in
  let decoded =
    match wire with
    | `Json -> Protocol.decode payload
    | `Binary -> Wire.decode_request payload
  in
  match decoded with
  | Error rej ->
      Atomic.incr t.n_errors;
      Util.Trace.incr c_errors;
      (* the reject record carries the best-effort id, the echoed req_id
         (JSON wire parses it before any validation can fail) and, for
         semantically unknown params keys, the offending field *)
      reply (codec.rc_reject rej)
  | Ok request -> (
      let submitted_ns = Util.Trace.now_ns () in
      let deadline_ns =
        Option.map (fun ms -> submitted_ns + int_of_float (ms *. 1e6)) request.Protocol.deadline_ms
      in
      (* the effective correlation ID: the client's if it sent one, minted
         at ingress otherwise — so traces, logs and the slow ring always
         have one. Only client-sent IDs are echoed in replies. *)
      let req_id =
        match request.Protocol.req_id with
        | Some r -> r
        | None -> Printf.sprintf "srv-%08x-%d" t.instance (Atomic.fetch_and_add t.req_seq 1)
      in
      let job =
        {
          request;
          reply;
          codec;
          deadline_ns;
          replied = Atomic.make false;
          attempts = Atomic.make 0;
          req_id;
          submitted_ns;
          enqueued_ns = submitted_ns;
          reply_write_ns = 0;
        }
      in
      match (t.batcher, batch_key request) with
      | Some batcher, Some key ->
          (* backpressure is still checked here (fail fast under overload)
             and re-checked at flush by [enqueue_group] *)
          let verdict =
            Mutex.protect t.lock (fun () ->
                if Atomic.get t.draining then `Draining
                else if t.queued >= t.config.queue_capacity then `Full
                else `Queued)
          in
          (match verdict with
          | `Queued -> Batch.add batcher ~key job
          | (`Draining | `Full) as v -> reject_job t job v)
      | _ -> enqueue_group t [ job ])

let submit t line ~reply = submit_wire t ~wire:`Json line ~reply

let begin_drain t = enter_draining t

let worker_restarts t = Atomic.get t.n_worker_restarts
let quarantined t = Atomic.get t.n_quarantined

let drain ?timeout_s t =
  begin_drain t;
  (* stop the batch timer thread; any still-open groups flush into the
     draining verdict and are answered shutting_down *)
  (match t.batcher with Some b -> Batch.shutdown b | None -> ());
  if not t.joined then begin
    (* joins happen on a dedicated thread so a stuck worker can only cost
       us the timeout, never hang the caller forever; the thread is
       created once — a drain retry after a timeout waits on the same
       join, it never double-joins a domain *)
    let joiner_thread, joined_flag =
      match t.joiner with
      | Some j -> j
      | None ->
          let flag = Atomic.make false in
          let th =
            Thread.create
              (fun () ->
                List.iter Supervisor.join t.worker_handles;
                Atomic.set flag true)
              ()
          in
          let j = (th, flag) in
          t.joiner <- Some j;
          j
    in
    let timeout_s =
      match timeout_s with Some _ as s -> s | None -> t.config.drain_timeout_s
    in
    match timeout_s with
    | None ->
        Thread.join joiner_thread;
        t.joined <- true
    | Some limit ->
        let deadline = Util.Trace.now_ns () + int_of_float (limit *. 1e9) in
        while (not (Atomic.get joined_flag)) && Util.Trace.now_ns () < deadline do
          Thread.delay 0.002
        done;
        if Atomic.get joined_flag then begin
          Thread.join joiner_thread;
          t.joined <- true
        end
        else
          Util.Diag.record ~sink:t.diag Util.Diag.Warning `Degraded_fallback
            ~stage:"serve.drain"
            (Printf.sprintf
               "worker join timed out after %gs (%d worker(s) still busy) — detaching"
               limit (Atomic.get t.busy))
  end
