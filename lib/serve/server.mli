(** Concurrent SSTA analysis server: the engine behind [ssta_serve] and
    [bench serve].

    Requests (decoded by {!Protocol}) are executed on a fixed pool of
    worker domains fed by a {e bounded} job queue:

    - {b Backpressure}: when the queue is full, {!submit} replies
      immediately with a typed [overloaded] error instead of buffering
      unboundedly — clients see load instead of latency.
    - {b Deadlines}: a request's [deadline_ms] is converted to an absolute
      monotonic deadline at submission and checked when a worker dequeues
      it; an expired request is answered [deadline_exceeded] without
      doing the work.
    - {b Caching}: prepared artifacts (circuit setups, KLE models) are
      served from an in-memory {!Lru} over the optional on-disk
      {!Persist.Store}; responses report which tier answered
      ([hit-mem] / [hit-disk] / [miss] / [recovered]).
    - {b Coalescing}: with [batch_window_s > 0], compatible [run_mc]
      requests (same model-spec key, different seeds/sample counts)
      accumulate in a {!Batch} window and execute as one group with shared
      circuit-setup + sampler-resource resolution — amortizing cache
      lookups and pool dispatch — while seeds bind per member, so every
      response is bit-identical to its unbatched run.
    - {b Draining}: {!begin_drain} stops intake (new submissions are
      answered [shutting_down]) while queued requests still complete;
      {!drain} additionally joins the workers. A [shutdown] request
      replies ok and then begins the drain.
    - {b Supervision}: every worker domain runs under {!Supervisor.spawn}.
      An exception that escapes the per-request barrier (a genuine bug, or
      an injected [chaos_crash]) restarts the worker with capped
      exponential backoff, bumps the [serve_worker_restarts] trace counter
      and a [Warning] [serve.worker] diagnostic, and re-queues the
      in-flight request for one retry; a request that kills a worker
      {e twice} is quarantined — answered with a typed [internal_error]
      instead of being retried forever.

    Each executed request runs inside a [serve.request] {!Util.Trace} span
    (attributes: method, [req_id], cache tier) and bumps the [serve_*]
    counters, so a traced serving run attributes time and cache behaviour
    per request; a coalesced group's [serve.batch] span records every
    member's correlation ID.

    {b Telemetry}: every executed request is recorded into a per-server
    {!Telemetry} registry — per-stage latency histograms (queue wait,
    batch wait, cache lookup, compute, reply write), a slow-request ring,
    and an optional structured request log. The [metrics] protocol method
    returns the full registry (counters + quantiles + mergeable histogram
    snapshots + Prometheus text); [debug] returns the slow-request ring.
    Requests carry a correlation ID end-to-end: the client's [req_id] if
    it sent one (echoed verbatim in the reply), or one minted at ingress
    ([srv-<instance>-<seq>], telemetry-only, never echoed). *)

type config = {
  store_dir : string option;  (** [None] disables the disk tier *)
  cache_entries : int;  (** in-memory LRU capacity *)
  queue_capacity : int;  (** bounded queue length; beyond it, [overloaded] *)
  workers : int;  (** worker domains executing requests *)
  jobs : int option;  (** per-request compute fan-out ({!Util.Pool.with_jobs}) *)
  placement_seed : int;  (** placement seed for circuit setups *)
  kle : Ssta.Algorithm2.config;  (** mesh + eigensolve configuration *)
  drain_timeout_s : float option;
      (** default join timeout for {!drain}; [None] waits forever *)
  store_io_faults : Util.Fault.io_plan list;
      (** chaos testing: I/O fault plans passed to {!Persist.Store.open_} *)
  chaos_crash : Util.Fault.io_plan option;
      (** chaos testing: when the plan fires, the worker that just dequeued
          a request dies {e before} executing it *)
  chaos_crash_after : Util.Fault.io_plan option;
      (** chaos testing: the worker dies {e after} replying but before
          releasing the request — the re-run exercises the exactly-once
          reply guard *)
  batch_window_s : float;
      (** accumulation window for coalescing compatible [run_mc] requests
          (same circuit/sampler/truncation, any seed/n) into one group that
          shares circuit-setup and sampler-resource resolution; [<= 0.]
          disables coalescing. Results are bit-identical to unbatched
          execution — seeds bind per member. *)
  batch_max : int;
      (** flush a group early when it reaches this size (on the submitting
          thread — no added latency at saturation); [<= 1] disables
          coalescing *)
  slow_ms : float;
      (** slow-request threshold for the {!Telemetry} ring ([debug]
          method); [0.] admits every request, so the ring holds the most
          recent [slow_ring] requests *)
  slow_ring : int;  (** slow-request ring capacity *)
  request_log : (Jsonx.t -> unit) option;
      (** structured request-log sink ([ssta_serve --log-json]): one JSON
          object per executed request. Called from worker domains — must be
          thread-safe. *)
}

val default_config : config
(** No disk store, 32 cache entries, queue of 64, 2 workers, sequential
    compute ([jobs = Some 1]), placement seed 1,
    {!Ssta.Algorithm2.paper_config}, 30 s drain timeout, no fault
    injection, coalescing off ([batch_window_s = 0.], [batch_max = 8]),
    [slow_ms = 0.], [slow_ring = 64], no request log. *)

type t

val create : ?diag:Util.Diag.sink -> config -> t
(** Spawns the worker domains; opens the store when [store_dir] is set. *)

val diagnostics : t -> Util.Diag.sink

val telemetry : t -> Telemetry.t
(** The server's telemetry registry — what the [metrics] and [debug]
    protocol methods expose. [bench serve] resets it between sweep rows
    and reads server-side quantiles from it directly. *)

val submit : t -> string -> reply:(string -> unit) -> unit
(** Decode one JSON request line and enqueue it. [reply] is called exactly
    once per submission — possibly synchronously (decode errors,
    backpressure, draining) or later from a worker domain. [reply] must be
    thread-safe. Equivalent to [submit_wire ~wire:`Json]. *)

val submit_wire :
  t -> wire:[ `Json | `Binary ] -> string -> reply:(string -> unit) -> unit
(** Like {!submit}, but the payload is decoded — and the response encoded —
    on the given wire: [`Json] takes a request line, [`Binary] takes one
    {!Wire} frame {e payload} (header already stripped by the transport)
    and replies with full binary frames. A connection's wire is sniffed
    once from its first byte ({!Wire.magic0}) by the transport layer. *)

val shutdown_requested : t -> bool
(** True once a [shutdown] request has been executed (the transport loop
    should stop reading and call {!drain}). *)

val begin_drain : t -> unit
(** Stop accepting new requests; queued work still completes. Idempotent. *)

val drain : ?timeout_s:float -> t -> unit
(** {!begin_drain}, then wait for the queue to empty and join the workers.
    The join is bounded by [timeout_s] (default: the config's
    [drain_timeout_s]); when it expires — a worker stuck in a compute or a
    blocked [reply] — a [Warning] [serve.drain] diagnostic is recorded and
    the workers are detached instead of hanging the caller forever. A
    later [drain] call waits on the same join. Idempotent; must not be
    called from a worker (i.e. from inside [reply]). *)

val worker_restarts : t -> int
(** Workers restarted by the supervisor since {!create}. *)

val quarantined : t -> int
(** Requests quarantined after repeatedly crashing workers. *)

val stats_payload : t -> Jsonx.t
(** The same JSON object a [stats] request returns: request/reject/deadline
    counters, [replies_dropped] (replies that raised mid-write — a dead
    client), [requeued] and [singleflight_dedup], queue occupancy, worker
    restart/quarantine counts, LRU, batch and store statistics. *)

val health_payload : t -> Jsonx.t
(** The same JSON object a [health] request returns: [healthy] (accepting
    work), worker liveness ([workers], [workers_busy], [worker_restarts],
    [quarantined]), queue depth, cache entries and store status — the
    chaos harness's recovery probe. *)
