(* The only Domain.spawn site in lib/serve (enforced by lint rule 7):
   every worker domain runs under this catch-all restart barrier. *)

type outcome = [ `Restart | `Stop ]

type handle = { domain : unit Domain.t }

let spawn ?(backoff_base_s = 0.001) ?(backoff_cap_s = 0.1) ~on_crash body =
  let domain =
    Domain.spawn (fun () ->
        (* restart loop runs *inside* the domain: a crashed worker is
           "restarted" by looping, so the domain handle stays joinable and
           the pool never leaks domains *)
        let restarts = ref 0 in
        let running = ref true in
        while !running do
          match body () with
          | () -> running := false
          | exception e -> (
              match (on_crash e ~restarts:!restarts : outcome) with
              | `Stop -> running := false
              | `Restart ->
                  (* capped exponential backoff: a hot crash loop (e.g. a
                     persistent environment failure) must not spin *)
                  let backoff =
                    Float.min backoff_cap_s
                      (backoff_base_s *. Float.pow 2.0 (float_of_int !restarts))
                  in
                  incr restarts;
                  Thread.delay backoff)
        done)
  in
  { domain }

let join h = Domain.join h.domain
