(** Supervised worker domains.

    A raw [Domain.spawn] whose body raises takes the domain down silently:
    the exception surfaces only at [Domain.join], and until then the pool
    has simply lost capacity. Every worker in [lib/serve] therefore goes
    through {!spawn} (lint rule 7 forbids bare [Domain.spawn] here), which
    wraps the body in a catch-all restart barrier {e inside} the domain:
    on an escaped exception the supervisor consults [on_crash] and either
    re-enters the body (after a capped exponential backoff so a hot crash
    loop cannot spin the CPU) or lets the domain exit. Restarting by
    looping inside the domain — rather than spawning a replacement — keeps
    the original handle joinable, so {!Server.drain} still joins exactly
    the domains it created. *)

type outcome = [ `Restart | `Stop ]

type handle

val spawn :
  ?backoff_base_s:float ->
  ?backoff_cap_s:float ->
  on_crash:(exn -> restarts:int -> outcome) ->
  (unit -> unit) ->
  handle
(** [spawn ~on_crash body] runs [body ()] in a new domain. A normal return
    ends the domain. On an escaped exception the supervisor calls
    [on_crash e ~restarts] ([restarts] = crashes before this one); on
    [`Restart] it sleeps [min backoff_cap_s (backoff_base_s * 2^restarts)]
    (defaults 1 ms, capped at 100 ms) and re-enters [body]. [on_crash]
    runs on the crashed domain and must not raise; it typically records a
    diagnostic, re-queues or quarantines the in-flight work, and returns
    [`Stop] when the pool is draining. *)

val join : handle -> unit
(** Wait for the domain to exit (i.e. for [body] to return normally or
    [on_crash] to return [`Stop]). *)
