module Histogram = Util.Histogram

type stage = Queue_wait | Batch_wait | Cache_lookup | Compute | Reply_write

let stage_name = function
  | Queue_wait -> "queue_wait"
  | Batch_wait -> "batch_wait"
  | Cache_lookup -> "cache_lookup"
  | Compute -> "compute"
  | Reply_write -> "reply_write"

let all_stages = [ Queue_wait; Batch_wait; Cache_lookup; Compute; Reply_write ]

let stage_index = function
  | Queue_wait -> 0
  | Batch_wait -> 1
  | Cache_lookup -> 2
  | Compute -> 3
  | Reply_write -> 4

type slow_entry = {
  seq : int;
  req_id : string;
  method_ : string;
  ok : bool;
  total_ns : int;
  stage_ns : (string * int) list;
}

type t = {
  on : bool Atomic.t;
  slow_ms : float;
  ring_size : int;
  ring : slow_entry option array;  (* circular, guarded by [lock] *)
  lock : Mutex.t;
  mutable seq : int;  (* total qualifying requests ever admitted *)
  stage_hists : Histogram.t array;  (* indexed by [stage_index] *)
  total_hist : Histogram.t;
  mutable log : (Jsonx.t -> unit) option;
}

let create ?(slow_ms = 0.) ?(ring_size = 64) () =
  if ring_size < 1 then invalid_arg "Telemetry.create: ring_size < 1";
  {
    on = Atomic.make true;
    slow_ms;
    ring_size;
    ring = Array.make ring_size None;
    lock = Mutex.create ();
    seq = 0;
    stage_hists = Array.init (List.length all_stages) (fun _ -> Histogram.create ());
    total_hist = Histogram.create ();
    log = None;
  }

let set_enabled t b = Atomic.set t.on b
let enabled t = Atomic.get t.on
let set_log t sink = t.log <- sink

let stage_histogram t stage = t.stage_hists.(stage_index stage)
let total_histogram t = t.total_hist

let ms_of_ns ns = float_of_int ns /. 1e6

let record_request t ~req_id ~method_ ~ok ~stages ~total_ns =
  if Atomic.get t.on then begin
    List.iter
      (fun (stage, ns) -> Histogram.record t.stage_hists.(stage_index stage) ns)
      stages;
    Histogram.record t.total_hist total_ns;
    let stage_ns = List.map (fun (s, ns) -> (stage_name s, max 0 ns)) stages in
    if ms_of_ns total_ns >= t.slow_ms then
      Mutex.protect t.lock (fun () ->
          let seq = t.seq in
          t.seq <- seq + 1;
          t.ring.(seq mod t.ring_size) <-
            Some { seq; req_id; method_; ok; total_ns; stage_ns });
    match t.log with
    | None -> ()
    | Some sink ->
        sink
          (Jsonx.Obj
             ([
                ("req_id", Jsonx.Str req_id);
                ("method", Jsonx.Str method_);
                ("ok", Jsonx.Bool ok);
                ("total_ms", Jsonx.Num (ms_of_ns total_ns));
              ]
             @ List.map (fun (name, ns) -> (name ^ "_ms", Jsonx.Num (ms_of_ns ns))) stage_ns
             ))
  end

(* ---------------------------------------------------------------- *)
(* exposition *)

(* (json key, prometheus quantile label, p) *)
let quantile_points =
  [
    ("p50_ms", "0.5", 0.5);
    ("p90_ms", "0.9", 0.9);
    ("p99_ms", "0.99", 0.99);
    ("p999_ms", "0.999", 0.999);
  ]

let quantiles_payload h =
  let n = Histogram.count h in
  let mean_ms = if n = 0 then 0. else ms_of_ns (Histogram.sum h) /. float_of_int n in
  Jsonx.Obj
    ([ ("count", Jsonx.Num (float_of_int n)) ]
    @ List.map
        (fun (key, _, p) -> (key, Jsonx.Num (ms_of_ns (Histogram.quantile h p))))
        quantile_points
    @ [
        ("max_ms", Jsonx.Num (ms_of_ns (Histogram.max_value h)));
        ("mean_ms", Jsonx.Num mean_ms);
      ])

(* metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* *)
let sanitize name =
  String.map
    (fun ch ->
      match ch with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ch | _ -> '_')
    name

let seconds ns = float_of_int ns /. 1e9

let prometheus_of ~counters named_hists =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let name = "ssta_" ^ sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name v))
    counters;
  Buffer.add_string b "# TYPE ssta_stage_latency_seconds summary\n";
  List.iter
    (fun (stage, h) ->
      List.iter
        (fun (_, label, p) ->
          Buffer.add_string b
            (Printf.sprintf "ssta_stage_latency_seconds{stage=%S,quantile=%S} %.9g\n"
               stage label
               (seconds (Histogram.quantile h p))))
        quantile_points;
      Buffer.add_string b
        (Printf.sprintf "ssta_stage_latency_seconds_sum{stage=%S} %.9g\n" stage
           (seconds (Histogram.sum h)));
      Buffer.add_string b
        (Printf.sprintf "ssta_stage_latency_seconds_count{stage=%S} %d\n" stage
           (Histogram.count h)))
    named_hists;
  Buffer.contents b

let named_hists t =
  List.map (fun s -> (stage_name s, t.stage_hists.(stage_index s))) all_stages
  @ [ ("total", t.total_hist) ]

let prometheus t ~counters = prometheus_of ~counters (named_hists t)

let payload_of ~counters named_hists =
  Jsonx.Obj
    [
      ( "counters",
        Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Num (float_of_int v))) counters) );
      ("stages", Jsonx.Obj (List.map (fun (s, h) -> (s, quantiles_payload h)) named_hists));
      ("histograms", Jsonx.Obj (List.map (fun (s, h) -> (s, Histogram.to_json h)) named_hists));
      ("prometheus", Jsonx.Str (prometheus_of ~counters named_hists));
    ]

let metrics_payload t ~counters = payload_of ~counters (named_hists t)

(* Cluster merge: counters sum by name (first-seen order), histograms merge
   bucket-by-bucket under the shared fixed layout. Undecodable shard
   entries are skipped — a degraded shard must not take the cluster view
   down with it. *)
let merge_metrics payloads =
  let counter_order = ref [] and counter_sum = Hashtbl.create 32 in
  let hist_order = ref [] and hists = Hashtbl.create 8 in
  List.iter
    (fun payload ->
      (match Option.bind (Jsonx.member "counters" payload) Jsonx.as_obj with
      | None -> ()
      | Some fields ->
          List.iter
            (fun (name, v) ->
              match Jsonx.as_int v with
              | None -> ()
              | Some v ->
                  if not (Hashtbl.mem counter_sum name) then begin
                    counter_order := name :: !counter_order;
                    Hashtbl.add counter_sum name 0
                  end;
                  Hashtbl.replace counter_sum name (Hashtbl.find counter_sum name + v))
            fields);
      match Option.bind (Jsonx.member "histograms" payload) Jsonx.as_obj with
      | None -> ()
      | Some fields ->
          List.iter
            (fun (stage, hj) ->
              match Histogram.of_json hj with
              | Error _ -> ()
              | Ok h -> (
                  match Hashtbl.find_opt hists stage with
                  | Some dst -> Histogram.merge_into ~dst h
                  | None ->
                      hist_order := stage :: !hist_order;
                      Hashtbl.add hists stage h))
            fields)
    payloads;
  let counters =
    List.rev_map (fun name -> (name, Hashtbl.find counter_sum name)) !counter_order
  in
  let named =
    List.rev_map (fun stage -> (stage, Hashtbl.find hists stage)) !hist_order
  in
  payload_of ~counters named

let debug_payload t =
  let entries =
    Mutex.protect t.lock (fun () ->
        let out = ref [] in
        (* oldest-to-newest: walk the circular buffer from the next write slot *)
        for i = 0 to t.ring_size - 1 do
          match t.ring.((t.seq + i) mod t.ring_size) with
          | None -> ()
          | Some e -> out := e :: !out
        done;
        List.sort (fun (a : slow_entry) (b : slow_entry) -> Int.compare a.seq b.seq) !out)
  in
  Jsonx.Obj
    [
      ("slow_ms", Jsonx.Num t.slow_ms);
      ("ring_size", Jsonx.Num (float_of_int t.ring_size));
      ("seen", Jsonx.Num (float_of_int (Mutex.protect t.lock (fun () -> t.seq))));
      ( "slow_requests",
        Jsonx.List
          (List.map
             (fun (e : slow_entry) ->
               Jsonx.Obj
                 [
                   ("seq", Jsonx.Num (float_of_int e.seq));
                   ("req_id", Jsonx.Str e.req_id);
                   ("method", Jsonx.Str e.method_);
                   ("ok", Jsonx.Bool e.ok);
                   ("total_ms", Jsonx.Num (ms_of_ns e.total_ns));
                   ( "stages_ms",
                     Jsonx.Obj
                       (List.map
                          (fun (name, ns) -> (name, Jsonx.Num (ms_of_ns ns)))
                          e.stage_ns) );
                 ])
             entries) );
    ]

let reset t =
  Array.iter Histogram.reset t.stage_hists;
  Histogram.reset t.total_hist;
  Mutex.protect t.lock (fun () ->
      Array.fill t.ring 0 t.ring_size None;
      t.seq <- 0)
