(** Serving-tier telemetry: per-stage latency histograms, a slow-request
    ring buffer, structured request logs, and live exposition.

    One registry per {!Server}. Workers record each executed request's
    per-stage breakdown — where it waited and where it worked:

    - [queue_wait]: from entering the worker queue to being dequeued;
    - [batch_wait]: from submission to entering the queue (the coalescing
      window; ~0 for requests that bypass the batcher);
    - [cache_lookup]: time inside the cache tiers (memory LRU, disk store,
      single-flight waits) during execution;
    - [compute]: execution time net of cache lookups;
    - [reply_write]: encoding + writing the response to the wire;

    plus a [total] (submission to reply) histogram. Recording is lock-free
    ({!Util.Histogram}); the fixed bucket layout makes shard histograms
    mergeable into one cluster view by the router ({!merge_metrics}).

    The [metrics] protocol method returns {!metrics_payload} — counters
    unified from the server's own atomics and {!Util.Trace.counters},
    per-stage quantiles, full histogram snapshots, and a Prometheus text
    exposition. The [debug] method returns {!debug_payload} — the last
    requests whose total latency exceeded [slow_ms], each with its request
    ID and per-stage breakdown. *)

type stage = Queue_wait | Batch_wait | Cache_lookup | Compute | Reply_write

val stage_name : stage -> string
(** Stable wire name, e.g. ["queue_wait"]. *)

val all_stages : stage list

type t

val create : ?slow_ms:float -> ?ring_size:int -> unit -> t
(** [slow_ms] (default 0: every request qualifies) is the slow-request
    threshold; the ring keeps the last [ring_size] (default 64) qualifying
    requests. *)

val set_enabled : t -> bool -> unit
(** Telemetry is on by default; disabling turns {!record_request} into a
    no-op (used to measure the recording overhead itself). *)

val enabled : t -> bool

val set_log : t -> (Jsonx.t -> unit) option -> unit
(** Structured request-log sink ([ssta_serve --log-json]): called once per
    recorded request with a one-line JSON object (request ID, method,
    outcome, per-stage milliseconds). *)

val record_request :
  t ->
  req_id:string ->
  method_:string ->
  ok:bool ->
  stages:(stage * int) list ->
  total_ns:int ->
  unit
(** Record one completed request: each stage duration (nanoseconds) into
    its histogram, [total_ns] into the total histogram, ring admission
    against the slow threshold, and the log sink if set. *)

val stage_histogram : t -> stage -> Util.Histogram.t
val total_histogram : t -> Util.Histogram.t

val metrics_payload : t -> counters:(string * int) list -> Jsonx.t
(** The [metrics] response: [{"counters": {...}, "stages": {<stage>:
    {count, p50_ms, p90_ms, p99_ms, p999_ms, max_ms, mean_ms}},
    "histograms": {<stage>: <versioned histogram JSON>}, "prometheus":
    "<text exposition>"}]. [counters] is the unified counter list (server
    atomics + {!Util.Trace.counters}). *)

val prometheus : t -> counters:(string * int) list -> string
(** Prometheus text exposition alone: one [ssta_<counter>] counter line
    per entry plus [ssta_stage_latency_seconds{stage=...,quantile=...}]
    summaries with [_sum]/[_count]. *)

val merge_metrics : Jsonx.t list -> Jsonx.t
(** Router-side cluster view: merge shard {!metrics_payload}s — counters
    summed by name, histograms merged bucket-by-bucket (the fixed layout
    makes this exact), quantiles and the Prometheus text recomputed from
    the merged histograms. Shard payload entries that fail to decode are
    skipped. *)

val debug_payload : t -> Jsonx.t
(** The [debug] response: [{"slow_ms": <threshold>, "slow_requests":
    [{seq, req_id, method, ok, total_ms, stages: {...}}]}], oldest first. *)

val reset : t -> unit
(** Zero histograms and empty the ring (between bench sweep rows). Callers
    quiesce recording first. *)
