module C = Persist.Codec

let magic0 = '\xB5'
let magic1 = '\x7A'
let version = 1
let max_version = 2
let max_payload = 16 * 1024 * 1024

type read_error = [ `Eof | `Corrupt of string ]

(* ---------------------------------------------------------------- *)
(* framing *)

(* Version negotiation: a version-2 frame is a version-1 frame plus a
   trailing optional req_id section in the payload. Writers emit version 1
   unless that section is present, so a peer that only speaks version 1
   (and never sends a req_id) receives frames byte-identical to before;
   readers accept 1..max_version and key the trailing section off the
   remaining payload bytes, not the version byte. *)
let frame_v ver payload =
  let len = String.length payload in
  if len > max_payload then invalid_arg "Wire.frame: payload exceeds max_payload";
  let w = C.writer () in
  C.write_u8 w (Char.code magic0);
  C.write_u8 w (Char.code magic1);
  C.write_u8 w ver;
  C.write_fixed32 w len;
  C.contents w ^ payload

let frame payload = frame_v version payload

let header_checks rd =
  let m0 = C.read_u8 rd in
  let m1 = C.read_u8 rd in
  let ver = C.read_u8 rd in
  if m0 <> Char.code magic0 || m1 <> Char.code magic1 then
    Error (`Corrupt (Printf.sprintf "bad frame magic 0x%02x%02x" m0 m1))
  else if ver < version || ver > max_version then
    Error
      (`Corrupt
        (Printf.sprintf "unsupported wire version %d (accepted %d..%d)" ver version
           max_version))
  else
    let len = C.read_fixed32 rd in
    (* reject before allocating: the framing analogue of the read_mat guard *)
    if len > max_payload then
      Error (`Corrupt (Printf.sprintf "frame length %d exceeds cap %d" len max_payload))
    else Ok len

let unframe s =
  let rd = C.reader s in
  try
    match header_checks rd with
    | Error _ as e -> e
    | Ok len ->
        if C.remaining rd <> len then
          Error
            (`Corrupt
              (Printf.sprintf "frame length %d does not match %d payload bytes" len
                 (C.remaining rd)))
        else Ok (String.sub s (C.pos rd) len)
  with C.Error msg -> Error (`Corrupt msg)

let read_frame ?(magic_consumed = false) ic =
  match
    if magic_consumed then Some magic0
    else try Some (input_char ic) with End_of_file -> None
  with
  | None -> Error `Eof
  | Some m0 -> (
      try
        let rest = Bytes.create 6 in
        really_input ic rest 0 6;
        let header = Printf.sprintf "%c%s" m0 (Bytes.to_string rest) in
        let rd = C.reader header in
        match header_checks rd with
        | Error _ as e -> e
        | Ok len ->
            let payload = Bytes.create len in
            really_input ic payload 0 len;
            Ok (Bytes.unsafe_to_string payload)
      with End_of_file -> Error (`Corrupt "truncated frame"))

(* ---------------------------------------------------------------- *)
(* structured values *)

let max_depth = 1000

let rec encode_jsonx w = function
  | Jsonx.Null -> C.write_u8 w 0
  | Jsonx.Bool false -> C.write_u8 w 1
  | Jsonx.Bool true -> C.write_u8 w 2
  | Jsonx.Num v ->
      C.write_u8 w 3;
      C.write_float w v
  | Jsonx.Str s ->
      C.write_u8 w 4;
      C.write_string w s
  | Jsonx.List ((_ :: _) as items)
    when List.for_all (function Jsonx.Num _ -> true | _ -> false) items ->
      (* the payload-heavy case: numeric vectors ship as raw IEEE-754 bytes *)
      C.write_u8 w 7;
      C.write_float_array w
        (Array.of_list (List.map (function Jsonx.Num v -> v | _ -> assert false) items))
  | Jsonx.List items ->
      C.write_u8 w 5;
      C.write_uint w (List.length items);
      List.iter (encode_jsonx w) items
  | Jsonx.Obj fields ->
      C.write_u8 w 6;
      C.write_uint w (List.length fields);
      List.iter
        (fun (k, v) ->
          C.write_string w k;
          encode_jsonx w v)
        fields

let decode_jsonx rd =
  let count_guard n what =
    if n > C.remaining rd then
      raise (C.Error (Printf.sprintf "%s length %d exceeds remaining input" what n))
  in
  let rec go depth =
    if depth > max_depth then
      raise (C.Error (Printf.sprintf "value nesting exceeds depth cap %d" max_depth));
    match C.read_u8 rd with
    | 0 -> Jsonx.Null
    | 1 -> Jsonx.Bool false
    | 2 -> Jsonx.Bool true
    | 3 -> Jsonx.Num (C.read_float rd)
    | 4 -> Jsonx.Str (C.read_string rd)
    | 5 ->
        let n = C.read_uint rd in
        count_guard n "list";
        let acc = ref [] in
        for _ = 1 to n do
          acc := go (depth + 1) :: !acc
        done;
        Jsonx.List (List.rev !acc)
    | 6 ->
        let n = C.read_uint rd in
        count_guard n "object";
        let acc = ref [] in
        for _ = 1 to n do
          let k = C.read_string rd in
          let v = go (depth + 1) in
          acc := (k, v) :: !acc
        done;
        Jsonx.Obj (List.rev !acc)
    | 7 -> Jsonx.List (Array.to_list (Array.map (fun v -> Jsonx.Num v) (C.read_float_array rd)))
    | t -> raise (C.Error (Printf.sprintf "unknown value tag %d" t))
  in
  go 0

(* ---------------------------------------------------------------- *)
(* requests *)

exception Rej of Protocol.error_code * string

let rej code fmt = Printf.ksprintf (fun m -> raise (Rej (code, m))) fmt

let write_circuit w = function
  | Protocol.Named s ->
      C.write_u8 w 0;
      C.write_string w s
  | Protocol.Bench_text s ->
      C.write_u8 w 1;
      C.write_string w s

let read_circuit rd =
  let tag = C.read_u8 rd in
  if tag <> 0 && tag <> 1 then rej Protocol.Bad_params "unknown circuit tag %d" tag;
  let text = C.read_string rd in
  if String.length text = 0 then rej Protocol.Bad_params "circuit text must be non-empty";
  if tag = 0 then Protocol.Named text else Protocol.Bench_text text

let read_opt_pos rd name =
  match C.read_option rd C.read_uint with
  | Some 0 -> rej Protocol.Bad_params "%s must be >= 1" name
  | v -> v

let read_count rd name =
  let n = C.read_uint rd in
  if n < 1 then rej Protocol.Bad_params "%s must be >= 1" name;
  n

let sampler_tag = function Protocol.Cholesky -> 0 | Protocol.Kle -> 1 | Protocol.Kle_qmc -> 2

let encode_request (req : Protocol.request) =
  let w = C.writer () in
  encode_jsonx w req.id;
  C.write_option w C.write_float req.deadline_ms;
  (match req.call with
  | Protocol.Prepare { circuit; r } ->
      C.write_u8 w 0;
      write_circuit w circuit;
      C.write_option w C.write_uint r
  | Protocol.Run_mc { circuit; sampler; r; seed; n; batch; full } ->
      C.write_u8 w 1;
      write_circuit w circuit;
      C.write_u8 w (sampler_tag sampler);
      C.write_option w C.write_uint r;
      C.write_int w seed;
      C.write_uint w n;
      C.write_option w C.write_uint batch;
      C.write_bool w full
  | Protocol.Compare { circuit; r; seed; n } ->
      C.write_u8 w 2;
      write_circuit w circuit;
      C.write_option w C.write_uint r;
      C.write_int w seed;
      C.write_uint w n
  | Protocol.Stats -> C.write_u8 w 3
  | Protocol.Health -> C.write_u8 w 4
  | Protocol.Shutdown -> C.write_u8 w 5
  | Protocol.Metrics -> C.write_u8 w 6
  | Protocol.Debug -> C.write_u8 w 7
  | Protocol.Retime { circuit; r; n_blocks; edit } ->
      C.write_u8 w 8;
      write_circuit w circuit;
      C.write_option w C.write_uint r;
      C.write_option w C.write_uint n_blocks;
      C.write_option w
        (fun w (e : Protocol.retime_edit) ->
          C.write_uint w e.Protocol.gate;
          C.write_string w e.Protocol.kind)
        edit);
  match req.req_id with
  | None -> frame_v version (C.contents w)
  | Some _ ->
      C.write_option w C.write_string req.req_id;
      frame_v max_version (C.contents w)

(* binary rejects carry no recoverable req_id (it trails the payload) and
   no field attribution — the message text still names the offender *)
let rejected id code message =
  Error
    {
      Protocol.reject_id = id;
      reject_req_id = None;
      code;
      message;
      field = None;
    }

let decode_request payload =
  let rd = C.reader payload in
  match decode_jsonx rd with
  | exception C.Error msg ->
      rejected Jsonx.Null Protocol.Invalid_request ("bad request id: " ^ msg)
  | id -> (
      try
        let deadline_ms = C.read_option rd C.read_float in
        (match deadline_ms with
        | Some ms when not (ms > 0.) -> rej Protocol.Bad_params "deadline_ms must be positive"
        | _ -> ());
        let call =
          match C.read_u8 rd with
          | 0 ->
              let circuit = read_circuit rd in
              Protocol.Prepare { circuit; r = read_opt_pos rd "r" }
          | 1 ->
              let circuit = read_circuit rd in
              let sampler =
                match C.read_u8 rd with
                | 0 -> Protocol.Cholesky
                | 1 -> Protocol.Kle
                | 2 -> Protocol.Kle_qmc
                | t -> rej Protocol.Bad_params "unknown sampler tag %d" t
              in
              let r = read_opt_pos rd "r" in
              let seed = C.read_int rd in
              let n = read_count rd "n" in
              let batch = read_opt_pos rd "batch" in
              let full = C.read_bool rd in
              Protocol.Run_mc { circuit; sampler; r; seed; n; batch; full }
          | 2 ->
              let circuit = read_circuit rd in
              let r = read_opt_pos rd "r" in
              let seed = C.read_int rd in
              let n = read_count rd "n" in
              Protocol.Compare { circuit; r; seed; n }
          | 3 -> Protocol.Stats
          | 4 -> Protocol.Health
          | 5 -> Protocol.Shutdown
          | 6 -> Protocol.Metrics
          | 7 -> Protocol.Debug
          | 8 ->
              let circuit = read_circuit rd in
              let r = read_opt_pos rd "r" in
              let n_blocks = read_opt_pos rd "n_blocks" in
              let edit =
                C.read_option rd (fun rd ->
                    let gate = C.read_uint rd in
                    let kind = C.read_string rd in
                    if String.length kind = 0 then
                      rej Protocol.Bad_params "edit.kind must be non-empty";
                    { Protocol.gate; kind })
              in
              Protocol.Retime { circuit; r; n_blocks; edit }
          | t -> rej Protocol.Unknown_method "unknown method tag %d" t
        in
        (* trailing version-2 section: absent in version-1 payloads *)
        let req_id =
          if C.remaining rd > 0 then C.read_option rd C.read_string else None
        in
        (match req_id with
        | Some "" -> rej Protocol.Bad_params "req_id must be non-empty"
        | _ -> ());
        C.expect_end rd;
        Ok { Protocol.id; req_id; deadline_ms; call }
      with
      | C.Error msg -> rejected id Protocol.Invalid_request msg
      | Rej (code, msg) -> rejected id code msg)

(* ---------------------------------------------------------------- *)
(* responses *)

let code_tag = function
  | Protocol.Parse_error -> 0
  | Protocol.Invalid_request -> 1
  | Protocol.Unknown_method -> 2
  | Protocol.Bad_params -> 3
  | Protocol.Netlist_error -> 4
  | Protocol.Overloaded -> 5
  | Protocol.Deadline_exceeded -> 6
  | Protocol.Shutting_down -> 7
  | Protocol.Internal_error -> 8

let code_of_tag = function
  | 0 -> Protocol.Parse_error
  | 1 -> Protocol.Invalid_request
  | 2 -> Protocol.Unknown_method
  | 3 -> Protocol.Bad_params
  | 4 -> Protocol.Netlist_error
  | 5 -> Protocol.Overloaded
  | 6 -> Protocol.Deadline_exceeded
  | 7 -> Protocol.Shutting_down
  | 8 -> Protocol.Internal_error
  | t -> raise (C.Error (Printf.sprintf "unknown error-code tag %d" t))

(* responses mirror the request negotiation: the trailing req_id echo is
   only written (and the frame only marked version 2) when present *)
let finish_response w req_id =
  match req_id with
  | None -> frame_v version (C.contents w)
  | Some _ ->
      C.write_option w C.write_string req_id;
      frame_v max_version (C.contents w)

let ok_response ~id ?req_id payload =
  let w = C.writer () in
  encode_jsonx w id;
  C.write_u8 w 0;
  encode_jsonx w payload;
  finish_response w req_id

let error_response ~id ?req_id code message =
  let w = C.writer () in
  encode_jsonx w id;
  C.write_u8 w 1;
  C.write_u8 w (code_tag code);
  C.write_string w message;
  finish_response w req_id

let decode_response payload =
  let rd = C.reader payload in
  let read_req_id () =
    if C.remaining rd > 0 then C.read_option rd C.read_string else None
  in
  try
    let id = decode_jsonx rd in
    match C.read_u8 rd with
    | 0 ->
        let p = decode_jsonx rd in
        let req_id = read_req_id () in
        C.expect_end rd;
        Ok (id, req_id, Ok p)
    | 1 ->
        let code = code_of_tag (C.read_u8 rd) in
        let msg = C.read_string rd in
        let req_id = read_req_id () in
        C.expect_end rd;
        Ok (id, req_id, Error (code, msg))
    | t -> Error (Printf.sprintf "bad response status tag %d" t)
  with C.Error msg -> Error msg
