(** Binary wire framing for the serving protocol.

    Same request/response semantics as the JSON-lines {!Protocol}, but
    length-prefixed binary frames built on {!Persist.Codec}: float payloads
    (endpoint statistics, matrices) ship as raw IEEE-754 bytes instead of
    JSON-escaped text. One frame per message:

    {v
    magic0 0xB5 | magic1 0x7A | version 0x01 | len : fixed32 LE | payload
    v}

    [0xB5] is never the first byte of a JSON-lines message, so a server can
    sniff the first byte of a connection and pick the wire per connection —
    existing JSON clients keep working unchanged.

    Payloads carry the same structured values as the JSON wire (requests
    decode to {!Protocol.request}; response payloads are {!Jsonx.t}), so a
    request answered over either wire yields a bit-identical result. *)

val magic0 : char
(** First frame byte, [0xB5] — the per-connection wire sniff key. *)

val magic1 : char

val version : int
(** Base frame version (1). Writers emit it unless the payload carries the
    trailing request-ID section introduced by version 2. *)

val max_version : int
(** Highest accepted frame version (2: version 1 plus an optional trailing
    [req_id] in request and response payloads). Readers accept
    [version..max_version]; the trailing section is keyed off remaining
    payload bytes, so version-1 peers interoperate unchanged. *)

val max_payload : int
(** Upper bound on the frame length field (16 MiB). Larger lengths are
    rejected with a typed error {e before} any allocation — the framing
    analogue of the [Entity.read_mat] adversarial-header guard. *)

type read_error =
  [ `Eof  (** clean end of stream before any frame byte *)
  | `Corrupt of string
    (** bad magic/version, oversized or truncated frame — the connection
        cannot be resynchronised and must be closed *) ]

val frame : string -> string
(** Wrap a payload in a frame header; raises [Invalid_argument] when the
    payload exceeds {!max_payload}. *)

val unframe : string -> (string, read_error) result
(** Strip and validate the header of exactly one whole frame. *)

val read_frame : ?magic_consumed:bool -> in_channel -> (string, read_error) result
(** Blocking frame read. [~magic_consumed:true] means the caller already
    consumed {!magic0} while sniffing the wire. *)

(** {1 Structured values} *)

val encode_jsonx : Persist.Codec.writer -> Jsonx.t -> unit
(** Tagged binary encoding of a JSON tree. A non-empty [List] of all-[Num]
    elements is packed as a raw float array ({!Persist.Codec.write_float_array})
    — zero escape cost for the numeric vectors that dominate payload-heavy
    responses. *)

val decode_jsonx : Persist.Codec.reader -> Jsonx.t
(** Inverse of {!encode_jsonx} (float-array packing decodes back to a [List]
    of [Num]). Raises {!Persist.Codec.Error} on malformed input, including a
    nesting-depth cap against stack-smashing payloads. *)

(** {1 Requests} *)

val encode_request : Protocol.request -> string
(** One full frame (header + binary payload). *)

val decode_request : string -> (Protocol.request, Protocol.reject) result
(** Decode one binary frame {e payload} (header already stripped by
    {!read_frame}/{!unframe}). Mirrors {!Protocol.decode}: malformed
    payloads yield a typed {!Protocol.reject} with the best-effort request
    id. Binary rejects carry no [reject_req_id] (the correlation ID trails
    the payload) and no [field] attribution — the message names the
    offender instead. *)

(** {1 Responses} *)

val ok_response : id:Jsonx.t -> ?req_id:string -> Jsonx.t -> string
(** One full frame. [?req_id] echoes the request's correlation ID as the
    version-2 trailing section; omitted → a version-1 frame, so replies to
    old clients are byte-identical to before. *)

val error_response : id:Jsonx.t -> ?req_id:string -> Protocol.error_code -> string -> string

val decode_response :
  string ->
  (Jsonx.t * string option * (Jsonx.t, Protocol.error_code * string) result, string) result
(** Decode one binary response frame payload into
    [(id, echoed req_id, Ok payload | Error (code, message))]; [Error msg]
    when the payload itself is malformed. *)
