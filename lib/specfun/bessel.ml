(* Polynomial approximations from Abramowitz & Stegun 9.8.1-9.8.8. *)

let poly coeffs t =
  Array.fold_right (fun c acc -> (acc *. t) +. c) coeffs 0.0

let i0 x =
  let ax = Float.abs x in
  if ax < 3.75 then begin
    let t = (x /. 3.75) ** 2.0 in
    poly
      [| 1.0; 3.5156229; 3.0899424; 1.2067492; 0.2659732; 0.0360768; 0.0045813 |]
      t
  end
  else begin
    let t = 3.75 /. ax in
    exp ax /. sqrt ax
    *. poly
         [| 0.39894228; 0.01328592; 0.00225319; -0.00157565; 0.00916281;
            -0.02057706; 0.02635537; -0.01647633; 0.00392377 |]
         t
  end

let i1 x =
  let ax = Float.abs x in
  let v =
    if ax < 3.75 then begin
      let t = (x /. 3.75) ** 2.0 in
      ax
      *. poly
           [| 0.5; 0.87890594; 0.51498869; 0.15084934; 0.02658733; 0.00301532;
              0.00032411 |]
           t
    end
    else begin
      let t = 3.75 /. ax in
      exp ax /. sqrt ax
      *. poly
           [| 0.39894228; -0.03988024; -0.00362018; 0.00163801; -0.01031555;
              0.02282967; -0.02895312; 0.01787654; -0.00420059 |]
           t
    end
  in
  if x < 0.0 then -.v else v

let check_positive name x =
  if x <= 0.0 then invalid_arg (Printf.sprintf "Bessel.%s: requires x > 0" name)

let k0 x =
  check_positive "k0" x;
  if x <= 2.0 then begin
    let t = x *. x /. 4.0 in
    (-.log (x /. 2.0) *. i0 x)
    +. poly
         [| -0.57721566; 0.42278420; 0.23069756; 0.03488590; 0.00262698;
            0.00010750; 0.0000074 |]
         t
  end
  else begin
    let t = 2.0 /. x in
    exp (-.x) /. sqrt x
    *. poly
         [| 1.25331414; -0.07832358; 0.02189568; -0.01062446; 0.00587872;
            -0.00251540; 0.00053208 |]
         t
  end

let k1 x =
  check_positive "k1" x;
  if x <= 2.0 then begin
    let t = x *. x /. 4.0 in
    (log (x /. 2.0) *. i1 x)
    +. (1.0 /. x
       *. poly
            [| 1.0; 0.15443144; -0.67278579; -0.18156897; -0.01919402;
               -0.00110404; -0.00004686 |]
            t)
  end
  else begin
    let t = 2.0 /. x in
    exp (-.x) /. sqrt x
    *. poly
         [| 1.25331414; 0.23498619; -0.03655620; 0.01504268; -0.00780353;
            0.00325614; -0.00068245 |]
         t
  end

let kn n x =
  if n < 0 then invalid_arg "Bessel.kn: requires n >= 0";
  check_positive "kn" x;
  match n with
  | 0 -> k0 x
  | 1 -> k1 x
  | n ->
      (* upward recurrence K_{m+1} = K_{m-1} + (2m/x) K_m (stable upward) *)
      let km1 = ref (k0 x) in
      let km = ref (k1 x) in
      for m = 1 to n - 1 do
        let next = !km1 +. (2.0 *. float_of_int m /. x *. !km) in
        km1 := !km;
        km := next
      done;
      !km

(* Half-integer orders have closed forms; K_{1/2}(x) = sqrt(pi/2x) e^{-x},
   higher ones by the same upward recurrence. *)
let k_half_integer nu x =
  let k_half = sqrt (Float.pi /. (2.0 *. x)) *. exp (-.x) in
  if nu = 0.5 then k_half
  else begin
    let km1 = ref k_half in
    let km = ref (k_half *. (1.0 +. (1.0 /. x))) in
    (* !km = K_{3/2} *)
    let steps = int_of_float (Float.round (nu -. 1.5)) in
    let order = ref 1.5 in
    for _ = 1 to steps do
      let next = !km1 +. (2.0 *. !order /. x *. !km) in
      km1 := !km;
      km := next;
      order := !order +. 1.0
    done;
    !km
  end

(* Trapezoidal quadrature for the integral representation
   K_nu(x) = int_0^inf exp(-x cosh t) cosh(nu t) dt.
   The integrand is entire in t and decays double-exponentially, the regime
   where the trapezoidal rule converges geometrically in 1/h — orders of
   magnitude fewer evaluations than an adaptive Simpson rule driven to the
   same tolerance.  Each halving of h reuses every previous evaluation (the
   old grid is the even sub-grid of the new one), so the refinement loop
   costs about twice the final grid. *)
let k_quadrature nu x =
  let f t =
    (* keep the two exponents separate: cosh (nu t) alone overflows long
       before the product underflows *)
    let a = (-.x *. cosh t) +. (nu *. t) in
    let b = (-.x *. cosh t) -. (nu *. t) in
    0.5 *. (exp a +. exp b)
  in
  (* find an upper limit where the integrand is negligible; for small x the
     nu t term makes f grow before the x cosh t decay takes over, so walk
     multiplicatively until well past the peak *)
  let f0 = f 0.0 in
  let rec find_limit t =
    if t > 500.0 then 500.0
    else if f t < 1e-18 *. f0 then t
    else find_limit (t *. 1.5)
  in
  let upper = find_limit 1.0 in
  (* sum of f at odd multiples of h below [upper] *)
  let sum_odd h =
    let s = ref 0.0 in
    let i = ref 1 in
    let t = ref h in
    while !t <= upper do
      s := !s +. f !t;
      i := !i + 2;
      t := float_of_int !i *. h
    done;
    !s
  in
  (* acc carries f(0)/2 plus f at every positive multiple of h, so the
     half-line trapezoid estimate is h * acc *)
  let h0 = 0.5 in
  let acc0 =
    let s = ref (0.5 *. f0) in
    let i = ref 1 in
    let t = ref h0 in
    while !t <= upper do
      s := !s +. f !t;
      incr i;
      t := float_of_int !i *. h0
    done;
    !s
  in
  let rec refine h acc prev =
    let estimate = h *. acc in
    if Float.abs (estimate -. prev) <= 1e-13 *. Float.abs estimate || h <= 1e-3
    then estimate
    else begin
      let h' = 0.5 *. h in
      refine h' (acc +. sum_odd h') estimate
    end
  in
  refine h0 acc0 infinity

let k nu x =
  if nu < 0.0 then invalid_arg "Bessel.k: requires nu >= 0";
  check_positive "k" x;
  if Float.is_integer nu && nu < 60.0 then kn (int_of_float nu) x
  else if Float.is_integer (nu -. 0.5) && nu < 60.0 then k_half_integer nu x
  else k_quadrature nu x
