(** Modified Bessel functions of the second kind K_ν, the engine of the
    Matérn correlation kernels that [Xiong et al., TCAD'07] extract from
    silicon measurements (the paper's eq. (6)). *)

val k0 : float -> float
(** [k0 x] for [x > 0] (polynomial approximations, ~1e-7 relative). *)

val k1 : float -> float
(** [k1 x] for [x > 0]. *)

val kn : int -> float -> float
(** [kn n x] for integer order [n >= 0] by upward recurrence. *)

val i0 : float -> float
(** Modified Bessel I_0, used by the K_0/K_1 small-argument formulas and by
    validity cross-checks. *)

val i1 : float -> float

val k : float -> float -> float
(** [k nu x] is K_ν(x) for real order [nu >= 0] and [x > 0]. Integer and
    half-integer orders dispatch to closed forms; general real orders use
    the trapezoid rule on the integral representation
    K_ν(x) = ∫₀^∞ exp(-x cosh t) cosh(νt) dt, halving the step until two
    successive estimates agree to 1e-13 relative — the integrand is entire
    with double-exponential decay, so the trapezoid error shrinks
    geometrically in the step count and each refinement reuses all previous
    evaluations. Raises [Invalid_argument] for [x <= 0] or [nu < 0]. *)
