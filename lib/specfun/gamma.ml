exception No_convergence of { fn : string; a : float; x : float }

(* Lanczos approximation with g = 7, n = 9 (Godfrey's coefficients). *)
let lanczos_g = 7.0

let lanczos_coefficients =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Gamma.log_gamma: requires x > 0";
  if x < 0.5 then
    (* reflection: Γ(x)Γ(1-x) = π / sin(πx) *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2.0 *. Float.pi))
    +. (((x +. 0.5) *. log t) -. t)
    +. log !acc
  end

let is_nonpositive_integer x = x <= 0.0 && Float.is_integer x

let gamma x =
  if is_nonpositive_integer x then
    invalid_arg "Gamma.gamma: pole at non-positive integer";
  if x > 0.0 then exp (log_gamma x)
  else
    (* reflection for negative non-integer arguments *)
    Float.pi /. (sin (Float.pi *. x) *. exp (log_gamma (1.0 -. x)))

(* Regularized incomplete gamma, series expansion (x < a + 1). *)
let gamma_p_series a x =
  let gln = log_gamma a in
  let ap = ref a in
  let sum = ref (1.0 /. a) in
  let del = ref !sum in
  let result = ref nan in
  (try
     for _ = 1 to 500 do
       ap := !ap +. 1.0;
       del := !del *. x /. !ap;
       sum := !sum +. !del;
       if Float.abs !del < Float.abs !sum *. 1e-16 then begin
         result := !sum *. exp ((-.x) +. (a *. log x) -. gln);
         raise Exit
       end
     done;
     raise (No_convergence { fn = "Gamma.gamma_p"; a; x })
   with Exit -> ());
  !result

(* Regularized complement, modified Lentz continued fraction (x >= a + 1). *)
let gamma_q_cf a x =
  let gln = log_gamma a in
  let tiny = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let result = ref nan in
  (try
     for i = 1 to 500 do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.0;
       d := (an *. !d) +. !b;
       if Float.abs !d < tiny then d := tiny;
       c := !b +. (an /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1.0 /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.0) < 1e-16 then begin
         result := exp ((-.x) +. (a *. log x) -. gln) *. !h;
         raise Exit
       end
     done;
     raise (No_convergence { fn = "Gamma.gamma_q"; a; x })
   with Exit -> ());
  !result

let gamma_p a x =
  if a <= 0.0 || x < 0.0 then invalid_arg "Gamma.gamma_p: requires a > 0, x >= 0";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. gamma_q_cf a x

let gamma_q a x =
  if a <= 0.0 || x < 0.0 then invalid_arg "Gamma.gamma_q: requires a > 0, x >= 0";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series a x
  else gamma_q_cf a x
