(** Gamma function, needed by the Matérn-class correlation kernel of the
    paper's eq. (6). *)

exception No_convergence of { fn : string; a : float; x : float }
(** Raised when the incomplete-gamma series or continued fraction fails to
    converge within its iteration budget; [fn] names the entry point and
    [(a, x)] are the offending arguments. *)

val log_gamma : float -> float
(** [log_gamma x] is ln Γ(x) for [x > 0] (Lanczos approximation, ~1e-13
    relative accuracy). Raises [Invalid_argument] for [x <= 0]. *)

val gamma : float -> float
(** [gamma x] is Γ(x) for any non-pole [x] (reflection formula for x < 0).
    Raises [Invalid_argument] at the poles (non-positive integers). *)

val gamma_p : float -> float -> float
(** [gamma_p a x] is the regularized lower incomplete gamma P(a, x) for
    [a > 0], [x >= 0] (series for x < a+1, continued fraction otherwise). *)

val gamma_q : float -> float -> float
(** [gamma_q a x] is [1 - gamma_p a x]. *)
