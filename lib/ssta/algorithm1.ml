type t = {
  samplers : Prng.Mvn.t array; (* one per parameter (shared when kernels equal) *)
  setup_seconds : float;
}

let prepare ?diag ?jobs (process : Process.t) locations =
  Util.Trace.with_span
    ~attrs:[ ("locations", string_of_int (Array.length locations)) ]
    "algorithm1.prepare"
  @@ fun () ->
  let timer = Util.Timer.start () in
  (* share the Cholesky factor between parameters with the same (physically
     equal) kernel; sample draws stay independent. Physical equality because
     kernels can carry closures, on which Stdlib.compare raises. *)
  let cache : (Kernels.Kernel.t * Prng.Mvn.t) list ref = ref [] in
  let sampler_for kernel =
    match List.find_opt (fun (k, _) -> k == kernel) !cache with
    | Some (_, s) -> s
    | None ->
        let cov = Kernels.Validity.gram ?jobs kernel locations in
        let s = Prng.Mvn.of_covariance ?diag cov in
        cache := (kernel, s) :: !cache;
        s
  in
  let samplers =
    Array.map (fun p -> sampler_for p.Process.kernel) process.Process.parameters
  in
  { samplers; setup_seconds = Util.Timer.elapsed_s timer }

let setup_seconds t = t.setup_seconds

let sample_block t rng ~n =
  Array.map (fun s -> Prng.Mvn.sample_matrix s rng ~n) t.samplers

let memory_bytes ~n_locations ~n_parameters =
  (* covariance + upper factor per distinct kernel; assume worst case of all
     parameters distinct *)
  8 * n_locations * n_locations * (n_parameters + 1)
