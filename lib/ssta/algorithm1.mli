(** The paper's Algorithm 1 — the reference Monte Carlo sampler: per
    statistical parameter, build the full [N_g x N_g] gate-location
    covariance matrix from the kernel, Cholesky-factor it, and generate
    correlated samples as [RandNormal(N, N_g) · U].

    Memory and time scale as [O(N_g²)] / [O(N_g³)]; {!memory_bytes} lets
    callers guard against infeasible sizes before committing. *)

type t

val prepare :
  ?diag:Util.Diag.sink -> ?jobs:int -> Process.t -> Geometry.Point.t array -> t
(** [prepare process locations] builds and factors the covariance of every
    parameter at the gate [locations]. Identical kernels share one factor
    (physically the same spatial process statistics), but the per-parameter
    sample draws remain independent, exactly as in the paper's Algorithm 1.
    [jobs] controls the domain fan-out of the O(N_g²) covariance assembly
    ({!Util.Pool.with_jobs} semantics); results do not depend on it.
    Degraded factorizations (jitter, PSD repair — see
    {!Prng.Mvn.of_covariance}) are reported into [diag]. *)

val setup_seconds : t -> float
(** Wall-clock time spent building + factoring covariances. *)

val sample_block :
  t -> Prng.Rng.t -> n:int -> Linalg.Mat.t array
(** [sample_block t rng ~n] is one [N x N_g] matrix per parameter; row [i]
    holds parameter values for all gates in Monte Carlo sample [i]. The
    matrices are mutually independent. *)

val memory_bytes : n_locations:int -> n_parameters:int -> int
(** Rough peak resident estimate for {!prepare} (covariance + factor). *)
