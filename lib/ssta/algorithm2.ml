type config = {
  max_area_fraction : float;
  min_angle_deg : float;
  computed_pairs : int;
  r : int option;
  mode : Kle.Galerkin.mode;
}

let paper_config =
  {
    max_area_fraction = 0.001;
    min_angle_deg = 28.0;
    computed_pairs = 200;
    r = None;
    mode = Kle.Galerkin.Auto;
  }

type t = {
  samplers : Kle.Sampler.t array;
  models : Kle.Model.t array;
  setup_seconds : float;
}

let prepare ?(config = paper_config) ?mesh ?diag ?jobs (process : Process.t) locations =
  Util.Trace.with_span
    ~attrs:[ ("locations", string_of_int (Array.length locations)) ]
    "algorithm2.prepare"
  @@ fun () ->
  let timer = Util.Timer.start () in
  let mesh =
    match mesh with
    | Some m -> m
    | None ->
        let result =
          Geometry.Refine.mesh Geometry.Rect.unit_die
            ~max_area_fraction:config.max_area_fraction
            ~min_angle_deg:config.min_angle_deg
        in
        result.Geometry.Geometry_intf.mesh
  in
  let n = Geometry.Mesh.size mesh in
  let solver =
    if config.computed_pairs >= n then Kle.Galerkin.Dense
    else Kle.Galerkin.Lanczos { count = config.computed_pairs }
  in
  let cache : (Kernels.Kernel.t * Kle.Model.t) list ref = ref [] in
  (* cache key by PHYSICAL equality: [Kernel.t] can carry closures (a
     [Faulty] plan with a [Transform] corruption), on which
     Stdlib.compare raises. Physical sharing is also the right notion here — two
     structurally equal kernels built separately still mean separate
     fault-plan state. *)
  let model_for kernel =
    match List.find_opt (fun (k, _) -> k == kernel) !cache with
    | Some (_, m) -> m
    | None ->
        let solution =
          Kle.Galerkin.solve ~mode:config.mode ~solver ?diag ?jobs mesh kernel
        in
        let m = Kle.Model.create ?r:config.r solution in
        cache := (kernel, m) :: !cache;
        m
  in
  let models =
    Array.map (fun p -> model_for p.Process.kernel) process.Process.parameters
  in
  let samplers = Array.map (fun m -> Kle.Sampler.create ?diag m locations) models in
  { samplers; models; setup_seconds = Util.Timer.elapsed_s timer }

let setup_seconds t = t.setup_seconds

let r t = t.models.(0).Kle.Model.r

let mesh_size t =
  Geometry.Mesh.size t.models.(0).Kle.Model.solution.Kle.Galerkin.mesh

let models t = t.models

let sample_block t rng ~n =
  Array.map (fun s -> Kle.Sampler.sample_matrix s rng ~n) t.samplers
