(** The paper's Algorithm 2 — the covariance-kernel (KLE) Monte Carlo
    sampler: per statistical parameter, draw [r] uncorrelated standard
    normals and expand them to gate locations through the truncated KLE
    (eq. 28) and the point-in-triangle lookup.

    The KLE eigenproblem depends only on (kernel, mesh) — not on the
    circuit — so its solution is cached per distinct kernel and the per-gate
    expansion matrices are precomputed once per circuit. *)

type config = {
  max_area_fraction : float; (* mesh resolution; paper: 0.001 -> n ~ 1546 *)
  min_angle_deg : float; (* mesh quality; paper: 28 *)
  computed_pairs : int; (* eigenpairs computed by the solver; paper: 200 *)
  r : int option; (* retained pairs; None = paper's automatic rule *)
  mode : Kle.Galerkin.mode; (* eigensolve path; Auto = size-based switch *)
}

val paper_config : config
(** max_area_fraction = 0.001, min_angle_deg = 28, computed_pairs = 200,
    r = None (automatic rule; picks 25 on the paper kernel), mode = Auto. *)

type t

val prepare :
  ?config:config ->
  ?mesh:Geometry.Mesh.t ->
  ?diag:Util.Diag.sink ->
  ?jobs:int ->
  Process.t ->
  Geometry.Point.t array ->
  t
(** [prepare process locations] meshes the die (unless [mesh] is given),
    solves the Galerkin KLE for each distinct kernel, and builds the
    per-location expansion matrices. [jobs] controls the domain fan-out of
    the O(n²) Galerkin assembly ({!Util.Pool.with_jobs} semantics); results
    do not depend on it. Solver fallbacks (Lanczos → dense) and boundary
    clamps in the expansion setup are reported into [diag]. *)

val setup_seconds : t -> float
(** Wall time for meshing + eigensolution + expansion setup. *)

val r : t -> int
(** Retained eigenpairs of the first parameter's model. *)

val mesh_size : t -> int

val models : t -> Kle.Model.t array
(** Per-parameter truncated models (shared physically when kernels match). *)

val sample_block : t -> Prng.Rng.t -> n:int -> Linalg.Mat.t array
(** Same contract as {!Algorithm1.sample_block}: one [N x N_g] matrix per
    parameter, mutually independent. *)
