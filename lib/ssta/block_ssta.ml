module Netlist = Circuit.Netlist
module Gate = Circuit.Gate

type t = {
  basis_dim : int;
  worst : Canonical.t;
  endpoint_forms : Canonical.t array;
  analysis_seconds : float;
}

let zeros4 = Array.make Gate.num_parameters 0.0

(* Everything the canonical-form propagation needs that is a pure function
   of (circuit setup, KLE models): per-parameter expansion rows, the basis
   layout, and the nominal corner. Shared with the hierarchical macro
   extractor in [lib/hier], which propagates over gate subsets with its own
   boundary conditions. *)
module Context = struct
  type ctx = {
    setup : Experiment.circuit_setup;
    expansions : Linalg.Mat.t array;
    rs : int array;
    offsets : int array;
    basis_dim : int;
    logic_row : int array; (* per gate id; -1 for Input pseudo gates *)
    nominal_arrival : float array;
    nominal_slew : float array;
  }

  type t = ctx

  let build (setup : Experiment.circuit_setup) ~models =
    if Array.length models <> Gate.num_parameters then
      invalid_arg "Block_ssta.Context.build: need one KLE model per statistical parameter";
    let prepared = setup.Experiment.sta in
    let n_gates = Netlist.size setup.Experiment.netlist in
    let samplers =
      Array.map (fun m -> Kle.Sampler.create m setup.Experiment.locations) models
    in
    let expansions = Array.map Kle.Sampler.expansion samplers in
    let rs = Array.map Linalg.Mat.cols expansions in
    let offsets = Array.make Gate.num_parameters 0 in
    for k = 1 to Gate.num_parameters - 1 do
      offsets.(k) <- offsets.(k - 1) + rs.(k - 1)
    done;
    let basis_dim = offsets.(Gate.num_parameters - 1) + rs.(Gate.num_parameters - 1) in
    let logic_row = Array.make n_gates (-1) in
    Array.iteri (fun row id -> logic_row.(id) <- row) setup.Experiment.logic_ids;
    let nominal_arrival, nominal_slew = Sta.Timing.nominal_arrival_and_slew prepared in
    { setup; expansions; rs; offsets; basis_dim; logic_row; nominal_arrival; nominal_slew }

  let basis_dim ctx = ctx.basis_dim

  (* canonical form of the statistical part of a gate quantity with linear
     parameter sensitivities [betas] (per unit sigma at this gate's
     location), plus — when [quad] is given — the rank-one quadratic's mean
     shift gamma * s² and its Var = 2 gamma² s⁴ as an independent term.
     [dim] (>= basis_dim, default basis_dim) pads the sensitivity vector
     with trailing zeros: extraction passes append pseudo dimensions for
     boundary-slew gains. *)
  let statistical_part ?dim ctx g ~betas ~quad =
    let dim = Option.value dim ~default:ctx.basis_dim in
    if dim < ctx.basis_dim then
      invalid_arg "Block_ssta.Context.statistical_part: dim below basis dimension";
    let sens = Array.make dim 0.0 in
    let row = ctx.logic_row.(g) in
    let s2 = ref 0.0 in
    if row >= 0 then
      for k = 0 to Gate.num_parameters - 1 do
        let b = ctx.expansions.(k) in
        let var_k = ref 0.0 in
        for j = 0 to ctx.rs.(k) - 1 do
          let bij = Linalg.Mat.unsafe_get b row j in
          sens.(ctx.offsets.(k) + j) <- betas.(k) *. bij;
          var_k := !var_k +. (bij *. bij)
        done;
        match quad with
        | Some (_, w) -> s2 := !s2 +. (w.(k) *. w.(k) *. !var_k)
        | None -> ()
      done;
    match quad with
    | None -> Canonical.make ~mean:0.0 ~sens ~indep:0.0
    | Some (gamma, _) ->
        let quad_mean = gamma *. !s2 in
        let quad_indep = sqrt 2.0 *. Float.abs gamma *. !s2 in
        Canonical.make ~mean:quad_mean ~sens ~indep:quad_indep
end

let run (setup : Experiment.circuit_setup) ~models =
  let timer = Util.Timer.start () in
  let ctx = Context.build setup ~models in
  let prepared = setup.Experiment.sta in
  let netlist = setup.Experiment.netlist in
  let n_gates = Netlist.size netlist in
  let basis_dim = ctx.Context.basis_dim in
  let nominal_arrival = ctx.Context.nominal_arrival in
  let nominal_slew = ctx.Context.nominal_slew in
  let statistical_part g ~betas ~quad = Context.statistical_part ctx g ~betas ~quad in
  (* topological propagation of arrival AND slew forms: slew variation feeds
     back into delay through the gate's k_slew sensitivity, which matters for
     the sigma of long paths *)
  let forms = Array.make n_gates (Canonical.constant ~dim:basis_dim 0.0) in
  let slew_forms = Array.make n_gates (Canonical.constant ~dim:basis_dim 0.0) in
  Array.iter
    (fun g ->
      let gate = netlist.Netlist.gates.(g) in
      let c_load = prepared.Sta.Timing.c_loads.(g) in
      match gate.Netlist.kind with
      | Gate.Input ->
          let d =
            Gate.delay Gate.Input ~slew_in:Sta.Timing.default_input_slew_ps ~c_load
              ~params:zeros4
          in
          let s =
            Gate.output_slew Gate.Input ~slew_in:Sta.Timing.default_input_slew_ps
              ~c_load ~params:zeros4
          in
          forms.(g) <- Canonical.constant ~dim:basis_dim d;
          slew_forms.(g) <- Canonical.constant ~dim:basis_dim s
      | Gate.Dff ->
          let timing = Gate.timing Gate.Dff in
          let nominal = Gate.clk_to_q ~params:zeros4 in
          let stat =
            statistical_part g ~betas:timing.Gate.beta
              ~quad:(Some (timing.Gate.gamma, timing.Gate.w))
          in
          forms.(g) <- Canonical.add_constant stat nominal;
          let s_nom =
            Gate.output_slew Gate.Dff ~slew_in:Sta.Timing.default_input_slew_ps
              ~c_load ~params:zeros4
          in
          let s_stat = statistical_part g ~betas:timing.Gate.beta_slew ~quad:None in
          slew_forms.(g) <- Canonical.add_constant s_stat s_nom
      | kind ->
          (* merge input pins with Clark's max; wire delays deterministic *)
          let timing = Gate.timing kind in
          let best_nominal = ref neg_infinity in
          let best_slew_nom = ref Sta.Timing.default_input_slew_ps in
          let best_slew_form =
            ref (Canonical.constant ~dim:basis_dim Sta.Timing.default_input_slew_ps)
          in
          let pins =
            Array.to_list
              (Array.map
                 (fun f ->
                   let load = prepared.Sta.Timing.wireload.Circuit.Wireload.loads.(f) in
                   let wire_elmore =
                     load.Circuit.Wireload.r_wire
                     *. ((0.5 *. load.Circuit.Wireload.c_wire) +. timing.Gate.c_in)
                   in
                   (* track the nominal-latest pin: its slew linearizes the
                      gate delay (selection approximation) *)
                   let pin_nominal = nominal_arrival.(f) +. wire_elmore in
                   if pin_nominal > !best_nominal then begin
                     best_nominal := pin_nominal;
                     let s_drv = nominal_slew.(f) in
                     let s_pin =
                       Sta.Slew.sink_slew ~slew_driver:s_drv ~wire_elmore_ps:wire_elmore
                     in
                     best_slew_nom := s_pin;
                     (* PERI linearization: d s_pin / d s_drv = s_drv / s_pin *)
                     let gain = if s_pin > 1e-9 then s_drv /. s_pin else 1.0 in
                     best_slew_form :=
                       Canonical.add_constant
                         (Canonical.scale gain
                            (Canonical.add_constant slew_forms.(f) (-.s_drv)))
                         s_pin
                   end;
                   Canonical.add_constant forms.(f) wire_elmore)
                 gate.Netlist.fanins)
          in
          let merged = Canonical.max_many pins in
          let slew_in_nom = !best_slew_nom in
          let nominal_delay =
            Gate.delay kind ~slew_in:slew_in_nom ~c_load ~params:zeros4
          in
          (* delay = nominal + beta·p + quad + k_slew * (slew_in - nominal) *)
          let stat =
            statistical_part g ~betas:timing.Gate.beta
              ~quad:(Some (timing.Gate.gamma, timing.Gate.w))
          in
          let slew_dev =
            Canonical.add_constant !best_slew_form (-.slew_in_nom)
          in
          let delay_form =
            Canonical.add
              (Canonical.add_constant stat nominal_delay)
              (Canonical.scale timing.Gate.k_slew slew_dev)
          in
          forms.(g) <- Canonical.add merged delay_form;
          (* output slew form *)
          let s_nom =
            Gate.output_slew kind ~slew_in:slew_in_nom ~c_load ~params:zeros4
          in
          let s_stat = statistical_part g ~betas:timing.Gate.beta_slew ~quad:None in
          slew_forms.(g) <-
            Canonical.add
              (Canonical.add_constant s_stat s_nom)
              (Canonical.scale timing.Gate.k_slew_out slew_dev))
    prepared.Sta.Timing.order;
  let endpoint_forms =
    Array.map (fun e -> forms.(e)) prepared.Sta.Timing.endpoints
  in
  let worst = Canonical.max_many (Array.to_list endpoint_forms) in
  { basis_dim; worst; endpoint_forms; analysis_seconds = Util.Timer.elapsed_s timer }

let mean t = t.worst.Canonical.mean

let sigma t = Canonical.sigma t.worst

let quantile t p = Canonical.quantile t.worst p

(* Criticality sampling follows [Experiment.run_mc]'s determinism recipe:
   each fixed-size batch draws from its own counter-derived substream and
   per-batch tallies merge in batch order, so the result is a pure function
   of (t, samples, seed, batch) — bit-identical for every [jobs] value. *)
let criticality_batch = 256

let criticalities ?(samples = 20_000) ?(seed = 1) ?jobs t =
  if samples <= 0 then invalid_arg "Block_ssta.criticalities: samples must be positive";
  let n_end = Array.length t.endpoint_forms in
  let n_batches = (samples + criticality_batch - 1) / criticality_batch in
  let batch_counts = Array.make n_batches [||] in
  Util.Pool.with_jobs ?jobs (fun pool ->
      Util.Pool.parallel_for pool ~chunk:1 ~n:n_batches (fun lo hi ->
          for bi = lo to hi - 1 do
            let b = min criticality_batch (samples - (bi * criticality_batch)) in
            let rng = Prng.Rng.substream ~seed ~stream:bi in
            let counts = Array.make n_end 0 in
            for _ = 1 to b do
              let xi = Prng.Gaussian.vector rng t.basis_dim in
              let best = ref 0 and best_v = ref neg_infinity in
              Array.iteri
                (fun e f ->
                  let local = Prng.Gaussian.draw rng in
                  let v = Canonical.eval f ~xi ~local in
                  if v > !best_v then begin
                    best_v := v;
                    best := e
                  end)
                t.endpoint_forms;
              counts.(!best) <- counts.(!best) + 1
            done;
            batch_counts.(bi) <- counts
          done));
  let counts = Array.make n_end 0 in
  Array.iter (Array.iteri (fun e c -> counts.(e) <- counts.(e) + c)) batch_counts;
  Util.Trace.add Util.Trace.mc_samples samples;
  Array.map (fun c -> float_of_int c /. float_of_int samples) counts

let validate_against_mc t ~reference =
  let e_mu =
    100.0
    *. Float.abs (mean t -. reference.Experiment.worst_mean)
    /. Float.abs reference.Experiment.worst_mean
  in
  let e_sigma =
    100.0
    *. Float.abs (sigma t -. reference.Experiment.worst_sigma)
    /. Float.abs reference.Experiment.worst_sigma
  in
  (e_mu, e_sigma)
