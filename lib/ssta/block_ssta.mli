(** Block-based (single-pass) statistical static timing on the KLE basis —
    the Chang-Sapatnekar-style [5] consumer of the paper's random-field
    model: instead of N Monte Carlo timing passes, arrival times are
    propagated {e once} as first-order canonical forms over the shared
    [4 x r] KLE random variables, with Clark's max at merge points.

    Approximations (all standard for first-order block SSTA):
    - gate delays are linearized around the nominal corner (slews and wire
      loads fixed at their nominal-analysis values);
    - the rank-one quadratic term of the gate model contributes its exact
      mean shift [γ (wᵀ diag(var) w)] and, in variance, a small independent
      remainder;
    - max re-Gaussianizes (Clark's moment matching). *)

type t = {
  basis_dim : int; (* 4 * r *)
  worst : Canonical.t; (* canonical form of the worst endpoint arrival *)
  endpoint_forms : Canonical.t array; (* per Sta.Timing endpoint *)
  analysis_seconds : float;
}

(** The propagation context: per-parameter expansion rows at the logic
    gates, the shared-basis layout, and the nominal corner — everything
    {!run} needs that is a pure function of (setup, models). Exposed so the
    hierarchical macro extractor ([lib/hier]) can build block-local
    propagations over the {e same} basis, including extraction passes that
    append pseudo dimensions for boundary-slew gains. *)
module Context : sig
  type ctx = {
    setup : Experiment.circuit_setup;
    expansions : Linalg.Mat.t array; (* per parameter: N_g x r_k rows *)
    rs : int array;
    offsets : int array; (* column offset of parameter k in the basis *)
    basis_dim : int;
    logic_row : int array; (* per gate id; -1 for Input pseudo gates *)
    nominal_arrival : float array;
    nominal_slew : float array;
  }

  type t = ctx

  val build : Experiment.circuit_setup -> models:Kle.Model.t array -> t
  (** Raises [Invalid_argument] unless exactly 4 models are given. *)

  val basis_dim : t -> int

  val statistical_part :
    ?dim:int ->
    t ->
    int ->
    betas:float array ->
    quad:(float * float array) option ->
    Canonical.t
  (** Canonical form of the statistical part of a gate quantity: linear
      sensitivities [betas] projected on the gate's expansion rows, plus —
      when [quad = Some (gamma, w)] — the rank-one quadratic's mean shift
      and independent variance remainder. [dim] (default [basis_dim]) pads
      the sensitivity vector with trailing zero pseudo dimensions; raises
      [Invalid_argument] below [basis_dim]. *)
end

val run : Experiment.circuit_setup -> models:Kle.Model.t array -> t
(** [run setup ~models] performs the single-pass statistical timing using
    the per-parameter truncated KLE models (one per L, W, Vt, tox, as built
    by {!Algorithm2.prepare}). Raises [Invalid_argument] unless exactly 4
    models are given. *)

val mean : t -> float
val sigma : t -> float

val quantile : t -> float -> float
(** Gaussian quantile of the worst-delay form (e.g. 0.9987 = +3σ corner). *)

val criticalities : ?samples:int -> ?seed:int -> ?jobs:int -> t -> float array
(** Per-endpoint criticality: the probability that each endpoint is the one
    setting the circuit's worst delay, estimated by sampling the endpoint
    canonical forms on a common basis draw ([samples] defaults to 20000).
    Sums to 1 (ties broken toward the lower index). A classic block-SSTA
    diagnostic: which outputs deserve optimization effort.

    Sampling follows the [Experiment.run_mc] determinism recipe: fixed-size
    batches on counter-derived RNG substreams ({!Prng.Rng.substream} of
    [(seed, batch index)]), fanned out over [jobs] domains
    ({!Util.Pool.with_jobs} semantics) with per-batch tallies merged in
    batch order — bit-identical for every [jobs] value. Samples drawn are
    accumulated on {!Util.Trace.mc_samples}. Raises [Invalid_argument] if
    [samples <= 0]. *)

val validate_against_mc :
  t -> reference:Experiment.mc_result -> float * float
(** [(e_mu_pct, e_sigma_pct)] of the worst-delay form vs a Monte Carlo
    reference. *)
