module Netlist = Circuit.Netlist

type circuit_setup = {
  netlist : Netlist.t;
  placement : Circuit.Placer.placement;
  sta : Sta.Timing.prepared;
  logic_ids : int array;
  locations : Geometry.Point.t array;
}

let setup_circuit ?(placement_seed = 1) netlist =
  let placement = Circuit.Placer.place ~seed:placement_seed netlist in
  let wireload = Circuit.Wireload.build placement in
  let sta = Sta.Timing.prepare wireload in
  let logic_ids =
    netlist.Netlist.gates |> Array.to_seq
    |> Seq.filter_map (fun (g : Netlist.gate) ->
           if g.kind = Circuit.Gate.Input then None else Some g.id)
    |> Array.of_seq
  in
  let locations = Array.map (fun i -> placement.Circuit.Placer.locations.(i)) logic_ids in
  { netlist; placement; sta; logic_ids; locations }

type sampler = Prng.Rng.t -> n:int -> Linalg.Mat.t array

type nonfinite_policy = Fail | Skip

type mc_result = {
  n_samples : int;
  n_skipped : int;
  worst_mean : float;
  worst_sigma : float;
  endpoint_mean : float array;
  endpoint_sigma : float array;
  sample_seconds : float;
  sta_seconds : float;
}

(* Samples per accumulator range inside a batch. Fixed (never derived from
   the pool size) so the Welford merge tree — and therefore every output
   bit — is identical for any [jobs]. *)
let sta_chunk = 32

let run_mc ?(batch = 256) ?jobs ?(policy = Fail) ?diag setup ~sampler ~seed ~n =
  if n <= 0 then invalid_arg "Experiment.run_mc: n must be positive";
  if batch <= 0 then invalid_arg "Experiment.run_mc: batch must be positive";
  let stage = "experiment.run_mc" in
  let n_gates_total = Netlist.size setup.netlist in
  let n_logic = Array.length setup.logic_ids in
  let n_endpoints = Array.length setup.sta.Sta.Timing.endpoints in
  let worst = ref (Stats.Welford.create ()) in
  let endpoint_acc = Array.init n_endpoints (fun _ -> Stats.Welford.create ()) in
  let sample_seconds = ref 0.0 in
  let sta_seconds = ref 0.0 in
  let skipped_total = ref 0 in
  Util.Trace.with_span
    ~attrs:[ ("n", string_of_int n); ("batch", string_of_int batch) ]
    "run_mc"
  @@ fun () ->
  Util.Pool.with_jobs ?jobs (fun pool ->
      let n_batches = (n + batch - 1) / batch in
      for bi = 0 to n_batches - 1 do
        Util.Trace.with_span
          ~attrs:
            [
              ("batch", string_of_int bi);
              ("domain", string_of_int (Domain.self () :> int));
            ]
          "mc.batch"
        @@ fun () ->
        let b = min batch (n - (bi * batch)) in
        (* each batch draws from its own counter-derived substream, so the
           sample set is a pure function of (seed, batch) *)
        let rng = Prng.Rng.substream ~seed ~stream:bi in
        let blocks, dt =
          Util.Timer.time (fun () ->
              Util.Trace.with_span "mc.sample" (fun () -> sampler rng ~n:b))
        in
        sample_seconds := !sample_seconds +. dt;
        (match blocks with
        | [| _; _; _; _ |] -> ()
        | _ -> invalid_arg "Experiment.run_mc: sampler must return 4 parameter blocks");
        Array.iter
          (fun blk ->
            if Linalg.Mat.cols blk <> n_logic then
              invalid_arg "Experiment.run_mc: sampler block width mismatch";
            if Linalg.Mat.rows blk <> b then
              invalid_arg "Experiment.run_mc: sampler block row-count mismatch")
          blocks;
        let rl = Linalg.Mat.raw blocks.(0) and rw = Linalg.Mat.raw blocks.(1) in
        let rvt = Linalg.Mat.raw blocks.(2) and rtox = Linalg.Mat.raw blocks.(3) in
        (* non-finite guard: scan the batch sequentially before the parallel
           STA fan-out. The skip mask is a pure function of the sampler
           output (itself a pure function of (seed, batch)), so the set of
           accumulated samples — and every output bit — stays independent of
           [jobs]. *)
        let bad = Array.make b false in
        let n_bad = ref 0 in
        Array.iteri
          (fun p blk ->
            let raw = Linalg.Mat.raw blk in
            for i = 0 to b - 1 do
              let row = i * n_logic in
              for g = 0 to n_logic - 1 do
                if not (Float.is_finite (Bigarray.Array1.unsafe_get raw (row + g)))
                then begin
                  (match policy with
                  | Fail ->
                      Util.Diag.fail ?sink:diag `Non_finite ~stage
                        (Printf.sprintf
                           "non-finite sample: batch %d, sample %d (global \
                            sample %d), parameter block %d, gate column %d"
                           bi i ((bi * batch) + i) p g)
                  | Skip -> ());
                  if not bad.(i) then begin
                    bad.(i) <- true;
                    incr n_bad
                  end
                end
              done
            done)
          blocks;
        if !n_bad > 0 then begin
          skipped_total := !skipped_total + !n_bad;
          Util.Diag.record ?sink:diag Warning `Skipped_samples ~stage
            (Printf.sprintf "batch %d: skipped %d of %d samples with non-finite \
                             parameter values" bi !n_bad b)
        end;
        let n_ranges = (b + sta_chunk - 1) / sta_chunk in
        let range_worst = Array.init n_ranges (fun _ -> Stats.Welford.create ()) in
        let range_endpoints =
          Array.init n_ranges (fun _ ->
              Array.init n_endpoints (fun _ -> Stats.Welford.create ()))
        in
        Util.Trace.add Util.Trace.mc_samples (b - !n_bad);
        Util.Trace.add Util.Trace.mc_skipped !n_bad;
        let t0 = Util.Timer.start () in
        Util.Trace.with_span "mc.sta" (fun () ->
        Util.Pool.parallel_for pool ~chunk:sta_chunk ~n:b (fun lo hi ->
            let ri = lo / sta_chunk in
            let w_acc = range_worst.(ri) and e_acc = range_endpoints.(ri) in
            (* per-range scatter buffers: full-size parameter arrays, zero
               at Input gates; never shared across domains *)
            let l = Array.make n_gates_total 0.0 in
            let w = Array.make n_gates_total 0.0 in
            let vt = Array.make n_gates_total 0.0 in
            let tox = Array.make n_gates_total 0.0 in
            for i = lo to hi - 1 do
              if not (Array.unsafe_get bad i) then begin
              let row = i * n_logic in
              for g = 0 to n_logic - 1 do
                let id = Array.unsafe_get setup.logic_ids g in
                Array.unsafe_set l id (Bigarray.Array1.unsafe_get rl (row + g));
                Array.unsafe_set w id (Bigarray.Array1.unsafe_get rw (row + g));
                Array.unsafe_set vt id (Bigarray.Array1.unsafe_get rvt (row + g));
                Array.unsafe_set tox id (Bigarray.Array1.unsafe_get rtox (row + g))
              done;
              let result = Sta.Timing.run setup.sta ~l ~w ~vt ~tox in
              Stats.Welford.add w_acc result.Sta.Timing.worst_delay;
              Array.iteri
                (fun e a -> Stats.Welford.add e_acc.(e) a)
                result.Sta.Timing.endpoint_arrivals
              end
            done));
        sta_seconds := !sta_seconds +. Util.Timer.elapsed_s t0;
        (* combine per-range accumulators in fixed range order — the merge
           tree depends only on (n, batch, sta_chunk), not on the pool *)
        for ri = 0 to n_ranges - 1 do
          worst := Stats.Welford.merge !worst range_worst.(ri);
          let re = range_endpoints.(ri) in
          for e = 0 to n_endpoints - 1 do
            endpoint_acc.(e) <- Stats.Welford.merge endpoint_acc.(e) re.(e)
          done
        done
      done);
  if !skipped_total >= n then
    Util.Diag.fail ?sink:diag `Non_finite ~stage
      (Printf.sprintf
         "all %d samples carried non-finite parameter values; no statistics \
          available"
         n);
  {
    n_samples = n;
    n_skipped = !skipped_total;
    worst_mean = Stats.Welford.mean !worst;
    worst_sigma = Stats.Welford.std_dev !worst;
    endpoint_mean = Array.map Stats.Welford.mean endpoint_acc;
    endpoint_sigma = Array.map Stats.Welford.std_dev endpoint_acc;
    sample_seconds = !sample_seconds;
    sta_seconds = !sta_seconds;
  }

type comparison = {
  e_mu_pct : float;
  e_sigma_pct : float;
  sigma_err_avg_outputs_pct : float;
  excluded_endpoints : int;
  speedup : float;
}

let compare ~reference ~reference_setup_seconds ~candidate ~candidate_setup_seconds =
  let e_mu_pct =
    100.0
    *. Float.abs (candidate.worst_mean -. reference.worst_mean)
    /. Float.abs reference.worst_mean
  in
  let e_sigma_pct =
    100.0
    *. Float.abs (candidate.worst_sigma -. reference.worst_sigma)
    /. Float.abs reference.worst_sigma
  in
  let n_end = Array.length reference.endpoint_sigma in
  let sigma_err_avg, excluded =
    if n_end = 0 || Array.length candidate.endpoint_sigma <> n_end then (nan, n_end)
    else begin
      (* endpoints with zero reference sigma (e.g. constant arrival times)
         carry no relative-error information — skip them rather than
         poisoning the average with inf/nan, and report how many were
         excluded so an all-excluded nan is explainable *)
      let acc = ref 0.0 and counted = ref 0 in
      for e = 0 to n_end - 1 do
        let ref_sigma = Float.abs reference.endpoint_sigma.(e) in
        if ref_sigma > 0.0 then begin
          acc :=
            !acc
            +. Float.abs (candidate.endpoint_sigma.(e) -. reference.endpoint_sigma.(e))
               /. ref_sigma;
          incr counted
        end
      done;
      let avg = if !counted = 0 then nan else 100.0 *. !acc /. float_of_int !counted in
      (avg, n_end - !counted)
    end
  in
  let total r setup = setup +. r.sample_seconds +. r.sta_seconds in
  {
    e_mu_pct;
    e_sigma_pct;
    sigma_err_avg_outputs_pct = sigma_err_avg;
    excluded_endpoints = excluded;
    speedup =
      total reference reference_setup_seconds /. total candidate candidate_setup_seconds;
  }
