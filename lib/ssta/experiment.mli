(** Monte Carlo SSTA experiment driver: runs a prepared circuit through the
    core timer with any of the samplers (Algorithm 1, Algorithm 2, grid+PCA)
    and computes the paper's comparison metrics (e_μ, e_σ, speedup;
    Table 1 and Fig. 6). *)

type circuit_setup = {
  netlist : Circuit.Netlist.t;
  placement : Circuit.Placer.placement;
  sta : Sta.Timing.prepared;
  logic_ids : int array; (* non-Input gate ids, the paper's N_g RVs *)
  locations : Geometry.Point.t array; (* their placed die locations *)
}

val setup_circuit : ?placement_seed:int -> Circuit.Netlist.t -> circuit_setup
(** Place the netlist, build wire loads, prepare the timer, and collect the
    logic-gate locations that the spatial samplers operate on. *)

type sampler = Prng.Rng.t -> n:int -> Linalg.Mat.t array
(** Produces, for a batch of [n] Monte Carlo samples, one [n x N_g] matrix
    per statistical parameter (values for the [logic_ids] gates, in order). *)

type nonfinite_policy =
  | Fail  (** raise a typed diagnostic naming the first bad batch/sample *)
  | Skip  (** drop offending samples, count them in [n_skipped] *)

type mc_result = {
  n_samples : int;
  n_skipped : int;
      (* samples dropped by the [Skip] non-finite policy (0 under [Fail]) *)
  worst_mean : float;
  worst_sigma : float;
  endpoint_mean : float array;
  endpoint_sigma : float array;
  sample_seconds : float; (* parameter-sample generation time *)
  sta_seconds : float; (* timing-propagation time *)
}

val run_mc :
  ?batch:int ->
  ?jobs:int ->
  ?policy:nonfinite_policy ->
  ?diag:Util.Diag.sink ->
  circuit_setup ->
  sampler:sampler ->
  seed:int ->
  n:int ->
  mc_result
(** Run [n] Monte Carlo STA samples, generated in batches of [batch]
    (default 256, bounds memory). Each batch draws from its own
    counter-derived RNG substream ({!Prng.Rng.substream} of [(seed, batch
    index)]), and the per-sample timing runs inside a batch are fanned out
    over [jobs] domains ({!Util.Pool.with_jobs} semantics). Results are a
    pure function of [(setup, sampler, seed, n, batch, policy)] —
    bit-identical for every [jobs] value, including sequential.

    The sampler must return exactly four [b x N_g] blocks (l, w, vt, tox)
    for a batch of [b]; both dimensions are validated.

    Every batch is scanned for non-finite parameter values before the
    timing fan-out. Under [policy = Fail] (default) the first offending
    entry raises [Util.Diag.Failure] with [`Non_finite], naming the batch,
    sample, parameter block and gate column. Under [Skip], offending
    samples are excluded from the statistics and counted in [n_skipped]
    (one [`Skipped_samples] warning per affected batch goes to [diag]);
    the skip mask depends only on the sampler output, never on [jobs], so
    the determinism contract above still holds. If {e every} sample is
    skipped, [Util.Diag.Failure] with [`Non_finite] is raised.

    @raise Invalid_argument if [n <= 0], [batch <= 0], or the sampler
    returns blocks of the wrong shape. *)

type comparison = {
  e_mu_pct : float; (* |Δmean| as % of reference mean *)
  e_sigma_pct : float; (* |Δsigma| as % of reference sigma *)
  sigma_err_avg_outputs_pct : float;
      (* Fig. 6 metric: per-endpoint sigma error, averaged over endpoints *)
  excluded_endpoints : int;
      (* endpoints excluded from the average (zero reference sigma, or all
         of them on an endpoint-count mismatch) — lets callers print
         "n/a (k excluded)" instead of a bare nan *)
  speedup : float; (* reference total time / candidate total time *)
}

val compare :
  reference:mc_result ->
  reference_setup_seconds:float ->
  candidate:mc_result ->
  candidate_setup_seconds:float ->
  comparison
(** Paper metrics. [speedup] compares end-to-end times including each
    sampler's per-circuit setup (Cholesky for Algorithm 1, expansion-matrix
    construction for Algorithm 2) — the KLE eigensolution itself is circuit-
    independent and reported separately, as in the paper.

    Endpoints whose reference sigma is exactly zero (constant arrivals)
    are excluded from [sigma_err_avg_outputs_pct]; if every endpoint is
    excluded the metric is [nan]. [excluded_endpoints] reports how many
    were dropped, so callers can print the reason instead of the nan. *)
