(** Monte Carlo SSTA experiment driver: runs a prepared circuit through the
    core timer with any of the samplers (Algorithm 1, Algorithm 2, grid+PCA)
    and computes the paper's comparison metrics (e_μ, e_σ, speedup;
    Table 1 and Fig. 6). *)

type circuit_setup = {
  netlist : Circuit.Netlist.t;
  placement : Circuit.Placer.placement;
  sta : Sta.Timing.prepared;
  logic_ids : int array; (* non-Input gate ids, the paper's N_g RVs *)
  locations : Geometry.Point.t array; (* their placed die locations *)
}

val setup_circuit : ?placement_seed:int -> Circuit.Netlist.t -> circuit_setup
(** Place the netlist, build wire loads, prepare the timer, and collect the
    logic-gate locations that the spatial samplers operate on. *)

type sampler = Prng.Rng.t -> n:int -> Linalg.Mat.t array
(** Produces, for a batch of [n] Monte Carlo samples, one [n x N_g] matrix
    per statistical parameter (values for the [logic_ids] gates, in order). *)

type mc_result = {
  n_samples : int;
  worst_mean : float;
  worst_sigma : float;
  endpoint_mean : float array;
  endpoint_sigma : float array;
  sample_seconds : float; (* parameter-sample generation time *)
  sta_seconds : float; (* timing-propagation time *)
}

val run_mc :
  ?batch:int ->
  ?jobs:int ->
  circuit_setup ->
  sampler:sampler ->
  seed:int ->
  n:int ->
  mc_result
(** Run [n] Monte Carlo STA samples, generated in batches of [batch]
    (default 256, bounds memory). Each batch draws from its own
    counter-derived RNG substream ({!Prng.Rng.substream} of [(seed, batch
    index)]), and the per-sample timing runs inside a batch are fanned out
    over [jobs] domains ({!Util.Pool.with_jobs} semantics). Results are a
    pure function of [(setup, sampler, seed, n, batch)] — bit-identical for
    every [jobs] value, including sequential.

    The sampler must return exactly four [b x N_g] blocks (l, w, vt, tox)
    for a batch of [b]; both dimensions are validated.

    @raise Invalid_argument if [n <= 0], [batch <= 0], or the sampler
    returns blocks of the wrong shape. *)

type comparison = {
  e_mu_pct : float; (* |Δmean| as % of reference mean *)
  e_sigma_pct : float; (* |Δsigma| as % of reference sigma *)
  sigma_err_avg_outputs_pct : float;
      (* Fig. 6 metric: per-endpoint sigma error, averaged over endpoints *)
  speedup : float; (* reference total time / candidate total time *)
}

val compare :
  reference:mc_result ->
  reference_setup_seconds:float ->
  candidate:mc_result ->
  candidate_setup_seconds:float ->
  comparison
(** Paper metrics. [speedup] compares end-to-end times including each
    sampler's per-circuit setup (Cholesky for Algorithm 1, expansion-matrix
    construction for Algorithm 2) — the KLE eigensolution itself is circuit-
    independent and reported separately, as in the paper.

    Endpoints whose reference sigma is exactly zero (constant arrivals)
    are excluded from [sigma_err_avg_outputs_pct]; if every endpoint is
    excluded the metric is [nan]. *)
