let kernel plan k = Kernels.Kernel.Faulty { base = k; plan }

let sampler ?(kind = Util.Fault.Nan) ?(first = 0) ?(period = 0) ?(limit = max_int)
    ?(entries_per_call = 1) ?diag ~seed (base : Experiment.sampler) =
  if first < 0 then invalid_arg "Fault_inject.sampler: first must be non-negative";
  if period < 0 then invalid_arg "Fault_inject.sampler: period must be non-negative";
  if limit < 0 then invalid_arg "Fault_inject.sampler: limit must be non-negative";
  if entries_per_call <= 0 then
    invalid_arg "Fault_inject.sampler: entries_per_call must be positive";
  let calls = Atomic.make 0 in
  let selected_calls = Atomic.make 0 in
  let fired = Atomic.make 0 in
  let selected i =
    i >= first && if period = 0 then i = first else (i - first) mod period = 0
  in
  let faulty rng ~n =
    let ci = Atomic.fetch_and_add calls 1 in
    let blocks = base rng ~n in
    if selected ci && Atomic.get selected_calls < limit then begin
      Atomic.incr selected_calls;
      (* coordinates come from the decorator's own substream, keyed by the
         call index — independent of the sampling stream, identical on
         every run *)
      let frng = Prng.Rng.substream ~seed ~stream:ci in
      let n_blocks = Array.length blocks in
      for _ = 1 to entries_per_call do
        if n_blocks > 0 then begin
          let b = Prng.Rng.int_below frng n_blocks in
          let blk = blocks.(b) in
          let rows = Linalg.Mat.rows blk and cols = Linalg.Mat.cols blk in
          if rows > 0 && cols > 0 then begin
            let i = Prng.Rng.int_below frng rows in
            let j = Prng.Rng.int_below frng cols in
            Linalg.Mat.set blk i j (Util.Fault.corrupt kind (Linalg.Mat.get blk i j));
            Atomic.incr fired;
            Util.Diag.record ?sink:diag Info `Fault_injected
              ~stage:"fault_inject.sampler"
              (Printf.sprintf
                 "corrupted block %d entry (%d, %d) on sampler call %d" b i j ci)
          end
        end
      done
    end;
    blocks
  in
  (faulty, fun () -> Atomic.get fired)
