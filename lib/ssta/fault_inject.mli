(** Deterministic fault injection for the SSTA pipeline.

    Two decorators let the robustness test-suite (and [ssta_demo --fault])
    drive every fallback and guard path on demand:

    - {!kernel} wraps a covariance kernel so counter-selected evaluations
      are corrupted ({!Kernels.Kernel.Faulty} + {!Util.Fault.plan}) — this
      exercises the Galerkin assembly non-finite guard and the PSD repair
      chains;
    - {!sampler} wraps an {!Experiment.sampler} so counter-selected calls
      corrupt entries of the produced parameter blocks — this exercises
      {!Experiment.run_mc}'s non-finite policy.

    Both are pure functions of their integer parameters: the corrupted
    coordinates are drawn from {!Prng.Rng.substream} keyed by the
    decorator's own call counter, never from the sampling stream, so the
    faulted sites are identical on every run and for every [jobs] value
    (run_mc invokes the sampler sequentially, batch by batch). *)

val kernel : Util.Fault.plan -> Kernels.Kernel.t -> Kernels.Kernel.t
(** [kernel plan k] corrupts the counter-selected evaluations of [k]. *)

val sampler :
  ?kind:Util.Fault.kind ->
  ?first:int ->
  ?period:int ->
  ?limit:int ->
  ?entries_per_call:int ->
  ?diag:Util.Diag.sink ->
  seed:int ->
  Experiment.sampler ->
  Experiment.sampler * (unit -> int)
(** [sampler ~seed base] is [(faulty, fired)] where [faulty] behaves as
    [base] except that on counter-selected calls ([first]/[period]/[limit]
    with {!Util.Fault.plan} semantics: default = first call only,
    [limit] counts selected calls) it corrupts [entries_per_call]
    (default 1) entries of the returned blocks in place, at
    (block, row, column) coordinates drawn from
    [Prng.Rng.substream ~seed ~stream:call_index]. [kind] defaults to
    {!Util.Fault.Nan}. Every corrupted entry is recorded as an [Info]
    [`Fault_injected] event into [diag] and counted by [fired ()].

    The same physical entry can be selected twice by chance; [fired]
    counts selections, not distinct entries — with [Nan] faults use
    {!Experiment.run_mc}'s [n_skipped] (which counts distinct samples)
    for exact-count assertions, or keep [entries_per_call = 1]. *)
