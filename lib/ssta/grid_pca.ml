type per_parameter = {
  expansion : Linalg.Mat.t; (* N_loc x r: rows of cell expansion per gate *)
}

type t = {
  params : per_parameter array;
  cell_index : int array;
  r : int;
  grid : int;
  explained : float;
  setup_seconds : float;
}

let cell_of ~grid (die : Geometry.Rect.t) (p : Geometry.Point.t) =
  let fx = (p.x -. die.xmin) /. Geometry.Rect.width die in
  let fy = (p.y -. die.ymin) /. Geometry.Rect.height die in
  let ix = min (grid - 1) (max 0 (int_of_float (fx *. float_of_int grid))) in
  let iy = min (grid - 1) (max 0 (int_of_float (fy *. float_of_int grid))) in
  (iy * grid) + ix

let cell_center ~grid (die : Geometry.Rect.t) c =
  let ix = c mod grid and iy = c / grid in
  Geometry.Point.make
    (die.xmin +. (Geometry.Rect.width die *. (float_of_int ix +. 0.5) /. float_of_int grid))
    (die.ymin +. (Geometry.Rect.height die *. (float_of_int iy +. 0.5) /. float_of_int grid))

let prepare ?(grid = 8) ?r (process : Process.t) locations =
  if grid <= 0 then invalid_arg "Grid_pca.prepare: grid must be positive";
  let timer = Util.Timer.start () in
  let die = Geometry.Rect.unit_die in
  let n_cells = grid * grid in
  let r = match r with Some r -> r | None -> n_cells in
  if r <= 0 || r > n_cells then invalid_arg "Grid_pca.prepare: r out of range";
  let centers = Array.init n_cells (cell_center ~grid die) in
  let cell_index = Array.map (cell_of ~grid die) locations in
  let explained = ref 1.0 in
  (* physical-equality cache: kernels can carry closures, on which
     Stdlib.compare raises *)
  let cache : (Kernels.Kernel.t * Linalg.Mat.t) list ref = ref [] in
  let expansion_for kernel =
    match List.find_opt (fun (k, _) -> k == kernel) !cache with
    | Some (_, e) -> e
    | None ->
        let cov = Kernels.Validity.gram kernel centers in
        let vals, vecs = Linalg.Sym_eig.eig cov in
        let total = Util.Arrayx.sum vals in
        let kept = Util.Arrayx.sum (Array.sub vals 0 r) in
        explained := kept /. total;
        (* per-cell expansion row: sqrt(lambda_j) * v_cell,j *)
        let cell_expansion =
          Linalg.Mat.init n_cells r (fun c j ->
              sqrt (Float.max 0.0 vals.(j)) *. Linalg.Mat.get vecs c j)
        in
        let e =
          Linalg.Mat.init (Array.length locations) r (fun g j ->
              Linalg.Mat.get cell_expansion cell_index.(g) j)
        in
        cache := (kernel, e) :: !cache;
        e
  in
  let params =
    Array.map
      (fun p -> { expansion = expansion_for p.Process.kernel })
      process.Process.parameters
  in
  {
    params;
    cell_index;
    r;
    grid;
    explained = !explained;
    setup_seconds = Util.Timer.elapsed_s timer;
  }

let setup_seconds t = t.setup_seconds
let r t = t.r
let cell_of_location t i = t.cell_index.(i)
let explained_variance_fraction t = t.explained

let sample_block t rng ~n =
  Array.map
    (fun p ->
      let xi = Prng.Gaussian.matrix rng ~rows:n ~cols:t.r in
      Linalg.Mat.mul xi (Linalg.Mat.transpose p.expansion))
    t.params
