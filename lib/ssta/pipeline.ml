type t = {
  diag : Util.Diag.sink;
  strict_mode : bool;
  jobs : int option;
  request_id : string option;
}

let create ?(strict = false) ?diag ?jobs ?request_id () =
  let diag = match diag with Some d -> d | None -> Util.Diag.create () in
  { diag; strict_mode = strict; jobs; request_id }

let diagnostics t = t.diag

let strict t = t.strict_mode

let request_id t = t.request_id

let with_request_id t request_id = { t with request_id = Some request_id }

type 'a staged = ('a, Util.Diag.event) result

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

(* Run one stage: catch the typed exceptions of the underlying numerics and
   turn them into the stage's [Error] event; in strict mode, a warning
   recorded during the stage fails it with the escalated event. *)
let guard t ~stage f =
  let before = Util.Diag.length t.diag in
  let fail_with code detail =
    Util.Diag.record ~sink:t.diag Error code ~stage detail;
    Error { Util.Diag.severity = Error; code; stage; detail }
  in
  (* the originating request's correlation ID rides on every stage span,
     so a Chrome trace of a serving run maps pipeline work back to the
     request that caused it *)
  let attrs = match t.request_id with Some r -> [ ("req_id", r) ] | None -> [] in
  match Util.Trace.with_span ~attrs stage f with
  | v ->
      if t.strict_mode then begin
        let fresh = drop before (Util.Diag.events t.diag) in
        match
          List.find_opt (fun e -> e.Util.Diag.severity = Util.Diag.Warning) fresh
        with
        | Some w ->
            let detail = "strict mode: " ^ w.Util.Diag.detail in
            Util.Diag.record ~sink:t.diag Error w.Util.Diag.code
              ~stage:w.Util.Diag.stage detail;
            Error { w with Util.Diag.severity = Util.Diag.Error; detail }
        | None -> Ok v
      end
      else Ok v
  | exception Util.Diag.Failure e -> Error e
  | exception Linalg.Cholesky.Not_positive_definite pivot ->
      fail_with `Not_psd (Printf.sprintf "Cholesky pivot %d is non-positive" pivot)
  | exception Linalg.Lanczos.No_convergence { converged; wanted } ->
      fail_with `No_convergence
        (Printf.sprintf "Lanczos converged %d of %d wanted eigenpairs" converged wanted)
  | exception Invalid_argument msg -> fail_with `Invalid_input msg
  | exception Not_found -> fail_with `Out_of_domain "internal lookup failed (Not_found)"

let validate_process t (process : Process.t) =
  let stage = "pipeline.validate_process" in
  guard t ~stage (fun () ->
      (match Process.validate process with
      | Ok () -> ()
      | Error msg -> Util.Diag.fail ~sink:t.diag `Invalid_input ~stage msg);
      (* empirical non-negative-definiteness spot check (paper eq. (2)) of
         every distinct kernel on a deterministic point set *)
      let seen = ref [] in
      Array.iter
        (fun (p : Process.parameter) ->
          if not (List.memq p.kernel !seen) then begin
            seen := p.kernel :: !seen;
            let pts =
              Kernels.Validity.random_points ~seed:7 ~n:40 Geometry.Rect.unit_die
            in
            if not (Kernels.Validity.is_psd_on p.kernel pts) then
              Util.Diag.fail ~sink:t.diag `Not_psd ~stage
                (Printf.sprintf
                   "kernel %s (parameter %s) failed the PSD spot check on %d points"
                   (Kernels.Kernel.name p.kernel) p.name (Array.length pts))
          end)
        process.Process.parameters;
      process)

let validate_mesh ?(min_angle_deg = 10.0) t mesh =
  let stage = "pipeline.validate_mesh" in
  guard t ~stage (fun () ->
      (match Geometry.Mesh.check mesh with
      | Ok () -> ()
      | Error msg ->
          Util.Diag.fail ~sink:t.diag `Invalid_input ~stage
            ("mesh structural check failed: " ^ msg));
      let angle = Geometry.Mesh.min_angle_deg mesh in
      if angle < min_angle_deg then
        Util.Diag.fail ~sink:t.diag `Invalid_input ~stage
          (Printf.sprintf "mesh minimum interior angle %.2f deg is below the %.2f deg floor"
             angle min_angle_deg);
      mesh)

let setup_circuit ?placement_seed t netlist =
  guard t ~stage:"pipeline.setup_circuit" (fun () ->
      Experiment.setup_circuit ?placement_seed netlist)

type method_ = Cholesky | Kle of Algorithm2.config

type prepared = Cholesky_prepared of Algorithm1.t | Kle_prepared of Algorithm2.t

let sampler_of = function
  | Cholesky_prepared a1 -> Algorithm1.sample_block a1
  | Kle_prepared a2 -> Algorithm2.sample_block a2

let setup_seconds_of = function
  | Cholesky_prepared a1 -> Algorithm1.setup_seconds a1
  | Kle_prepared a2 -> Algorithm2.setup_seconds a2

(* Draw one tiny batch from a freshly prepared sampler and validate block
   count, shape and finiteness before committing to a full MC run. *)
let probe t ~stage ~n_logic sampler =
  let rng = Prng.Rng.create ~seed:0x9e3779b9 in
  let blocks = sampler rng ~n:2 in
  if Array.length blocks <> 4 then
    Util.Diag.fail ~sink:t.diag `Invalid_input ~stage
      (Printf.sprintf "sampler probe returned %d parameter blocks, expected 4"
         (Array.length blocks));
  Array.iteri
    (fun p blk ->
      let r = Linalg.Mat.rows blk and c = Linalg.Mat.cols blk in
      if r <> 2 || c <> n_logic then
        Util.Diag.fail ~sink:t.diag `Invalid_input ~stage
          (Printf.sprintf "sampler probe block %d has shape %dx%d, expected 2x%d" p r c
             n_logic);
      match Linalg.Mat.find_non_finite blk with
      | None -> ()
      | Some (i, j) ->
          Util.Diag.fail ~sink:t.diag `Non_finite ~stage
            (Printf.sprintf "sampler probe block %d has a non-finite entry at (%d, %d)"
               p i j))
    blocks

let check_eigenvalues t ~stage a2 =
  Array.iter
    (fun (m : Kle.Model.t) ->
      Array.iteri
        (fun j lam ->
          if not (Float.is_finite lam) then
            Util.Diag.fail ~sink:t.diag `Non_finite ~stage
              (Printf.sprintf "KLE eigenvalue %d is non-finite (%g)" j lam);
          if lam < 0.0 then
            Util.Diag.fail ~sink:t.diag `Not_psd ~stage
              (Printf.sprintf "KLE eigenvalue %d is negative (%g)" j lam))
        m.Kle.Model.solution.Kle.Galerkin.eigenvalues)
    a2

let prepare ?mesh t method_ process (setup : Experiment.circuit_setup) =
  let stage = "pipeline.prepare" in
  let n_logic = Array.length setup.Experiment.logic_ids in
  match method_ with
  | Cholesky ->
      guard t ~stage (fun () ->
          let a1 =
            Algorithm1.prepare ~diag:t.diag ?jobs:t.jobs process
              setup.Experiment.locations
          in
          let prepared = Cholesky_prepared a1 in
          probe t ~stage ~n_logic (sampler_of prepared);
          prepared)
  | Kle config ->
      let mesh_result =
        match mesh with
        | Some m -> Ok m
        | None ->
            guard t ~stage (fun () ->
                let result =
                  Geometry.Refine.mesh Geometry.Rect.unit_die
                    ~max_area_fraction:config.Algorithm2.max_area_fraction
                    ~min_angle_deg:config.Algorithm2.min_angle_deg
                in
                result.Geometry.Geometry_intf.mesh)
      in
      Result.bind mesh_result (fun m ->
          Result.bind (validate_mesh t m) (fun m ->
              guard t ~stage (fun () ->
                  let a2 =
                    Algorithm2.prepare ~config ~mesh:m ~diag:t.diag ?jobs:t.jobs
                      process setup.Experiment.locations
                  in
                  check_eigenvalues t ~stage (Algorithm2.models a2);
                  let prepared = Kle_prepared a2 in
                  probe t ~stage ~n_logic (sampler_of prepared);
                  prepared)))

let run_mc ?batch ?policy t setup prepared ~seed ~n =
  guard t ~stage:"pipeline.run_mc" (fun () ->
      Experiment.run_mc ?batch ?jobs:t.jobs ?policy ~diag:t.diag setup
        ~sampler:(sampler_of prepared) ~seed ~n)

let run ?placement_seed ?mesh ?batch ?policy t method_ process netlist ~seed ~n =
  let ( let* ) = Result.bind in
  let* process = validate_process t process in
  let* setup = setup_circuit ?placement_seed t netlist in
  let* prepared = prepare ?mesh t method_ process setup in
  let* mc = run_mc ?batch ?policy t setup prepared ~seed ~n in
  Ok (prepared, mc)
