(** Staged, [Result]-typed façade over the kernel → sampler → Monte Carlo
    flow, with per-stage validation and typed diagnostics.

    The underlying modules ({!Algorithm1}, {!Algorithm2}, {!Experiment})
    raise typed exceptions and record {!Util.Diag} events; this module
    turns each stage into a total function returning
    [('a, Util.Diag.event) result], so drivers can compose the whole flow
    with [Result.bind], report the exact failing stage, and decide policy
    (strict vs. degraded) in one place:

    {[
      let p = Ssta.Pipeline.create () in
      match
        Ssta.Pipeline.run p (Kle Ssta.Algorithm2.paper_config)
          (Ssta.Process.paper_default ()) netlist ~seed:42 ~n:10_000
      with
      | Ok (_prepared, mc) -> report mc
      | Error e -> prerr_endline (Util.Diag.to_string e)
    ]}

    Validations performed stage by stage:
    - {!validate_process}: static kernel parameters
      ({!Kernels.Kernel.validate}) and an empirical PSD spot check of every
      distinct kernel on a deterministic point set
      ({!Kernels.Validity.is_psd_on});
    - {!validate_mesh}: structural soundness ({!Geometry.Mesh.check}) and
      minimum element angle;
    - {!prepare}: the factorization / eigensolution fallback chains run
      under it (events land in the sink), then KLE eigenvalues are checked
      finite and non-negative, and the prepared sampler is probe-drawn once
      to validate block count, shape and finiteness;
    - {!run_mc}: per-batch shape and non-finite guards of
      {!Experiment.run_mc} under the chosen policy.

    In [strict] mode any {e warning} recorded during a stage — a jittered
    or eigenvalue-clipped factorization, a Lanczos → dense fallback, an
    out-of-mesh clamp — fails that stage with the escalated event instead
    of degrading silently. *)

type t
(** Pipeline context: a diagnostic sink plus policy knobs. *)

val create :
  ?strict:bool -> ?diag:Util.Diag.sink -> ?jobs:int -> ?request_id:string -> unit -> t
(** [create ()] makes a context with a fresh sink. [strict] (default
    [false]) escalates stage warnings to stage errors. [diag] supplies an
    external sink (shared with other instrumentation); [jobs] is passed to
    the parallel assembly/factorization/MC stages
    ({!Util.Pool.with_jobs} semantics — results never depend on it).
    [request_id] is an originating request's correlation ID: every stage
    span carries it as a [req_id] attribute, so Chrome trace output maps
    pipeline work back to the serving request that caused it. *)

val diagnostics : t -> Util.Diag.sink
(** The sink every stage records into (shared, thread-safe). *)

val strict : t -> bool

val request_id : t -> string option

val with_request_id : t -> string -> t
(** A context bound to one request's correlation ID — shares the sink and
    policy; cheap enough to make per request. *)

type 'a staged = ('a, Util.Diag.event) result
(** Every stage returns the value or the typed event that failed it.
    Failing events are also recorded in {!diagnostics}. *)

val validate_process : t -> Process.t -> Process.t staged
(** Static validation of every parameter kernel plus an empirical PSD spot
    check on a deterministic quasi-random point set. Fails with
    [`Invalid_input] (bad static parameters) or [`Not_psd] (spot check). *)

val validate_mesh : ?min_angle_deg:float -> t -> Geometry.Mesh.t -> Geometry.Mesh.t staged
(** Structural mesh validation ({!Geometry.Mesh.check}) plus a minimum
    interior-angle floor (default 10°, well below the paper's 28° target —
    it catches broken meshes, not merely suboptimal ones). Fails with
    [`Invalid_input]. *)

val setup_circuit :
  ?placement_seed:int -> t -> Circuit.Netlist.t -> Experiment.circuit_setup staged
(** {!Experiment.setup_circuit} behind the staged interface. *)

type method_ =
  | Cholesky  (** Algorithm 1: full covariance + Cholesky *)
  | Kle of Algorithm2.config  (** Algorithm 2: truncated KLE expansion *)

type prepared =
  | Cholesky_prepared of Algorithm1.t
  | Kle_prepared of Algorithm2.t

val sampler_of : prepared -> Experiment.sampler
val setup_seconds_of : prepared -> float

val prepare :
  ?mesh:Geometry.Mesh.t ->
  t ->
  method_ ->
  Process.t ->
  Experiment.circuit_setup ->
  prepared staged
(** Build the per-circuit sampler. For [Kle] the die mesh is built from the
    config (or taken from [mesh]) and passed through {!validate_mesh}
    first; after the eigensolution, every model's eigenvalues are checked
    finite and non-negative. For both methods the sampler is probe-drawn
    on a two-sample batch and the blocks validated for count, shape, and
    finiteness before the prepared sampler is returned. All fallback
    events (jitter, PSD repair, Lanczos → dense, boundary clamps) are in
    {!diagnostics} — and fail the stage when {!strict}. *)

val run_mc :
  ?batch:int ->
  ?policy:Experiment.nonfinite_policy ->
  t ->
  Experiment.circuit_setup ->
  prepared ->
  seed:int ->
  n:int ->
  Experiment.mc_result staged
(** {!Experiment.run_mc} behind the staged interface, wired to the
    pipeline's sink and [jobs]. Note: under [strict], a [Skip] policy that
    actually skips samples fails the stage (the skip warning escalates). *)

val run :
  ?placement_seed:int ->
  ?mesh:Geometry.Mesh.t ->
  ?batch:int ->
  ?policy:Experiment.nonfinite_policy ->
  t ->
  method_ ->
  Process.t ->
  Circuit.Netlist.t ->
  seed:int ->
  n:int ->
  (prepared * Experiment.mc_result) staged
(** The whole flow: [validate_process] → [setup_circuit] → [prepare]
    (incl. mesh validation for [Kle]) → [run_mc], stopping at the first
    failing stage. *)
