type t = {
  count : int;
  mean : float;
  variance : float;
  std_dev : float;
  min : float;
  max : float;
}

let of_array a =
  let n = Array.length a in
  if n < 2 then invalid_arg "Summary.of_array: needs at least two samples";
  let w = Welford.create () in
  Array.iter (Welford.add w) a;
  let mn = Array.fold_left Float.min a.(0) a in
  let mx = Array.fold_left Float.max a.(0) a in
  let variance = Welford.variance w in
  {
    count = n;
    mean = Welford.mean w;
    variance;
    std_dev = sqrt variance;
    min = mn;
    max = mx;
  }

let quantile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Summary.quantile: empty array";
  if p < 0.0 || p > 1.0 then invalid_arg "Summary.quantile: p outside [0, 1]";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
  end

let mean a =
  if Array.length a = 0 then invalid_arg "Summary.mean: empty array";
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let std_dev a = (of_array a).std_dev
