type t = { mutable n : int; mutable mean : float; mutable m2 : float }

let create () = { n = 0; mean = 0.0; m2 = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean))

let count t = t.n

let mean t =
  if t.n = 0 then invalid_arg "Welford.mean: empty accumulator";
  t.mean

let variance t =
  if t.n = 0 then invalid_arg "Welford.variance: empty accumulator";
  if t.n = 1 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let std_dev t = sqrt (variance t)

let merge a b =
  if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
  else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let nf = float_of_int n in
    let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
    in
    { n; mean; m2 }
  end
