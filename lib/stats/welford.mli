(** Streaming mean/variance accumulation (Welford's algorithm), used to
    accumulate delay statistics over Monte Carlo runs without storing all
    samples. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** Raises [Invalid_argument] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.0] for a single sample (a lone Monte Carlo
    draw has no observed spread). Raises [Invalid_argument] when empty. *)

val std_dev : t -> float
(** [sqrt (variance t)] — same single-sample and empty behaviour. *)

val merge : t -> t -> t
(** Combine two accumulators (Chan's parallel formula). *)
