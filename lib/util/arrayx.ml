let float_range ~start ~stop ~count =
  if count < 2 then invalid_arg "Arrayx.float_range: count must be >= 2";
  let step = (stop -. start) /. float_of_int (count - 1) in
  Array.init count (fun i -> start +. (step *. float_of_int i))

let arg_extremum better a =
  if Array.length a = 0 then invalid_arg "Arrayx: empty array";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if better a.(i) a.(!best) then best := i
  done;
  !best

let argmax a = arg_extremum (fun x y -> x > y) a
let argmin a = arg_extremum (fun x y -> x < y) a

let sum a = Array.fold_left ( +. ) 0.0 a

let max_abs a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 a

let mean a =
  if Array.length a = 0 then invalid_arg "Arrayx.mean: empty array";
  sum a /. float_of_int (Array.length a)

let sort_desc_with_perm a =
  let n = Array.length a in
  let perm = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare a.(j) a.(i)) perm;
  let sorted = Array.map (fun i -> a.(i)) perm in
  (sorted, perm)
