type severity = Info | Warning | Error

type code =
  [ `Not_psd
  | `No_convergence
  | `Non_finite
  | `Out_of_domain
  | `Degraded_fallback
  | `Invalid_input
  | `Fault_injected
  | `Skipped_samples ]

type event = {
  severity : severity;
  code : code;
  stage : string;
  detail : string;
}

exception Failure of event

type sink = {
  mutex : Mutex.t;
  mutable rev_events : event list; (* newest first *)
  mutable n : int;
}

let create () = { mutex = Mutex.create (); rev_events = []; n = 0 }

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let code_name = function
  | `Not_psd -> "not-psd"
  | `No_convergence -> "no-convergence"
  | `Non_finite -> "non-finite"
  | `Out_of_domain -> "out-of-domain"
  | `Degraded_fallback -> "degraded-fallback"
  | `Invalid_input -> "invalid-input"
  | `Fault_injected -> "fault-injected"
  | `Skipped_samples -> "skipped-samples"

let to_string e =
  Printf.sprintf "[%s] %s (%s): %s" (severity_name e.severity) e.stage
    (code_name e.code) e.detail

let pp_event fmt e = Format.pp_print_string fmt (to_string e)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json e =
  Printf.sprintf
    {|{"severity": "%s", "code": "%s", "stage": "%s", "detail": "%s"}|}
    (severity_name e.severity) (code_name e.code) (json_escape e.stage)
    (json_escape e.detail)

(* Put the event on the trace timeline as an instant under the active
   span, so degraded fallbacks are visible in chrome://tracing. *)
let bridge e =
  if Trace.enabled () then
    Trace.instant
      ~attrs:
        [
          ("severity", severity_name e.severity);
          ("stage", e.stage);
          ("detail", e.detail);
        ]
      ("diag:" ^ code_name e.code)

let locked s f =
  Mutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) f

let add sink e =
  locked sink (fun () ->
      sink.rev_events <- e :: sink.rev_events;
      sink.n <- sink.n + 1)

let record ?sink severity code ~stage detail =
  if Trace.enabled () || sink <> None then begin
    let e = { severity; code; stage; detail } in
    bridge e;
    match sink with None -> () | Some s -> add s e
  end

let fail ?sink code ~stage detail =
  let e = { severity = Error; code; stage; detail } in
  bridge e;
  (match sink with None -> () | Some s -> add s e);
  raise (Failure e)

let events sink = locked sink (fun () -> List.rev sink.rev_events)

let length sink = locked sink (fun () -> sink.n)

let count ?(min_severity = Info) ?code sink =
  let matches e =
    severity_rank e.severity >= severity_rank min_severity
    && match code with None -> true | Some c -> e.code = c
  in
  locked sink (fun () ->
      List.fold_left (fun acc e -> if matches e then acc + 1 else acc) 0 sink.rev_events)

let max_severity sink =
  locked sink (fun () ->
      List.fold_left
        (fun acc e ->
          match acc with
          | None -> Some e.severity
          | Some s ->
              if severity_rank e.severity > severity_rank s then Some e.severity
              else acc)
        None sink.rev_events)

let clear sink =
  locked sink (fun () ->
      sink.rev_events <- [];
      sink.n <- 0)
