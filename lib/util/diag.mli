(** Typed diagnostics for the numerically fragile stages of the pipeline
    (kernel -> Galerkin eigensolve -> truncation -> sampling -> MC STA).

    Every recoverable numerical event — a Cholesky that needed jitter, a
    Lanczos run that fell back to the dense solver, a gate location clamped
    back into the mesh — is recorded as a typed {!event} in a thread-safe
    {!sink} instead of (or in addition to) an ad-hoc exception, so a run can
    degrade gracefully and still report exactly what it did. Unrecoverable
    failures raise {!Failure} carrying the same typed event. *)

type severity = Info | Warning | Error

type code =
  [ `Not_psd  (** a matrix that must be PSD is indefinite *)
  | `No_convergence  (** an iterative solver ran out of budget *)
  | `Non_finite  (** a NaN/inf appeared in a numeric stage *)
  | `Out_of_domain  (** a die location fell outside the mesh *)
  | `Degraded_fallback  (** a fallback path produced a degraded result *)
  | `Invalid_input  (** static validation rejected an input *)
  | `Fault_injected  (** a test harness fault fired *)
  | `Skipped_samples  (** Monte Carlo samples were dropped by policy *) ]

type event = {
  severity : severity;
  code : code;
  stage : string;  (** dotted origin, e.g. ["mvn.of_covariance"] *)
  detail : string;
}

exception Failure of event
(** Raised by {!fail} (and by strict guards throughout the libraries) so
    callers can match on one typed exception instead of a scatter of
    per-module ones. *)

type sink
(** A mutex-protected per-run event collector; safe to share across the
    worker domains of {!Pool}. *)

val create : unit -> sink

val record : ?sink:sink -> severity -> code -> stage:string -> string -> unit
(** [record ?sink severity code ~stage detail] appends an event. Without a
    sink this is a no-op — library code can emit unconditionally and let the
    caller decide whether to listen. *)

val fail : ?sink:sink -> code -> stage:string -> string -> 'a
(** Record an [Error] event (when a sink is given) and raise {!Failure}
    with it. *)

val events : sink -> event list
(** All recorded events, oldest first. *)

val length : sink -> int

val count : ?min_severity:severity -> ?code:code -> sink -> int
(** Number of recorded events, optionally filtered by minimum severity
    and/or exact code. *)

val max_severity : sink -> severity option
(** The worst severity recorded, or [None] when the sink is empty. *)

val clear : sink -> unit

val severity_rank : severity -> int
(** [Info] = 0, [Warning] = 1, [Error] = 2. *)

val severity_name : severity -> string
val code_name : code -> string

val to_string : event -> string
(** ["[warning] mvn.of_covariance (not-psd): ..."] *)

val pp_event : Format.formatter -> event -> unit

val to_json : event -> string
(** One-line JSON object with [severity]/[code]/[stage]/[detail] fields,
    for machine-readable strict-mode reports. *)
