type kind =
  | Nan
  | Value of float
  | Scale of float
  | Offset of float
  | Transform of (float -> float)

let corrupt kind v =
  match kind with
  | Nan -> Float.nan
  | Value x -> x
  | Scale s -> v *. s
  | Offset d -> v +. d
  | Transform f -> f v

type plan = {
  kind : kind;
  first : int;
  period : int;
  limit : int;
  n_calls : int Atomic.t;
  n_fired : int Atomic.t;
}

let plan ?(first = 0) ?(period = 0) ?(limit = max_int) kind =
  if first < 0 then invalid_arg "Fault.plan: first must be non-negative";
  if period < 0 then invalid_arg "Fault.plan: period must be non-negative";
  if limit < 0 then invalid_arg "Fault.plan: limit must be non-negative";
  { kind; first; period; limit; n_calls = Atomic.make 0; n_fired = Atomic.make 0 }

let selected p i =
  i >= p.first
  && (if p.period = 0 then i = p.first else (i - p.first) mod p.period = 0)

let apply p v =
  let i = Atomic.fetch_and_add p.n_calls 1 in
  if selected p i && Atomic.get p.n_fired < p.limit then begin
    Atomic.incr p.n_fired;
    corrupt p.kind v
  end
  else v

let calls p = Atomic.get p.n_calls

let fired p = Atomic.get p.n_fired

let reset p =
  Atomic.set p.n_calls 0;
  Atomic.set p.n_fired 0
