type kind =
  | Nan
  | Value of float
  | Scale of float
  | Offset of float
  | Transform of (float -> float)

let corrupt kind v =
  match kind with
  | Nan -> Float.nan
  | Value x -> x
  | Scale s -> v *. s
  | Offset d -> v +. d
  | Transform f -> f v

type io_kind =
  | Read_error
  | Short_read
  | Torn_write
  | Latency of float
  | Crash

let io_kind_name = function
  | Read_error -> "read-error"
  | Short_read -> "short-read"
  | Torn_write -> "torn-write"
  | Latency ms -> Printf.sprintf "latency(%gms)" ms
  | Crash -> "crash"

(* one counter-selection mechanism for every fault family: value plans
   corrupt floats, I/O plans fire read/write/scheduling failures — both
   select by the same deterministic call index *)
type 'k plan_of = {
  kind : 'k;
  first : int;
  period : int;
  limit : int;
  n_calls : int Atomic.t;
  n_fired : int Atomic.t;
}

type plan = kind plan_of
type io_plan = io_kind plan_of

let make ?(first = 0) ?(period = 0) ?(limit = max_int) kind =
  if first < 0 then invalid_arg "Fault.plan: first must be non-negative";
  if period < 0 then invalid_arg "Fault.plan: period must be non-negative";
  if limit < 0 then invalid_arg "Fault.plan: limit must be non-negative";
  { kind; first; period; limit; n_calls = Atomic.make 0; n_fired = Atomic.make 0 }

let plan ?first ?period ?limit kind = make ?first ?period ?limit kind
let io_plan ?first ?period ?limit kind = make ?first ?period ?limit kind

let kind p = p.kind

let selected p i =
  i >= p.first
  && (if p.period = 0 then i = p.first else (i - p.first) mod p.period = 0)

let fire p =
  let i = Atomic.fetch_and_add p.n_calls 1 in
  if selected p i && Atomic.get p.n_fired < p.limit then begin
    Atomic.incr p.n_fired;
    Some p.kind
  end
  else None

let fires p = fire p <> None

let apply p v = match fire p with Some k -> corrupt k v | None -> v

let calls p = Atomic.get p.n_calls

let fired p = Atomic.get p.n_fired

let reset p =
  Atomic.set p.n_calls 0;
  Atomic.set p.n_fired 0
