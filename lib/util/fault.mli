(** Deterministic fault injection for robustness tests.

    A {!plan} selects evaluations by a call counter: the decorated code
    calls {!apply} on every produced value, and the plan corrupts exactly
    the counter-selected ones. Because selection depends only on the call
    index, a fault fires at the same logical evaluation on every run —
    tests can drive every fallback and guard path on demand and assert the
    exact diagnostics that come back.

    Counters are atomic, so a plan can sit behind code that runs on a
    {!Pool}; but note that under a parallel evaluation order the call
    {e index} of a given logical evaluation is scheduling-dependent — run
    fault-injection tests sequentially ([jobs = 1]) when the exact faulted
    site matters. *)

type kind =
  | Nan  (** replace the value with [nan] *)
  | Value of float  (** replace the value with a constant *)
  | Scale of float  (** multiply the value *)
  | Offset of float  (** add to the value *)
  | Transform of (float -> float)
      (** replace the value with [f value] — arbitrary corruption. Note that
          a plan carrying a closure makes any structure containing it (e.g. a
          [Kernels.Kernel.Faulty] decorator) unusable with polymorphic
          [Stdlib.compare]/[(=)]; consumers must key caches by physical equality. *)

val corrupt : kind -> float -> float
(** Apply the corruption unconditionally (no plan, no counter). *)

type plan

val plan : ?first:int -> ?period:int -> ?limit:int -> kind -> plan
(** [plan kind] fires at call index [first] (default 0) and then, when
    [period > 0], at every [period]-th call after it; [period = 0]
    (default) fires at [first] only. [limit] caps the total number of
    faults (default: [first]-and-period selection only). Raises
    [Invalid_argument] on negative [first]/[period]/[limit]. *)

val apply : plan -> float -> float
(** Count one call and corrupt the value iff this call is selected. *)

val calls : plan -> int
(** Total calls seen so far. *)

val fired : plan -> int
(** Faults actually injected so far. *)

val reset : plan -> unit
(** Zero both counters (e.g. between test cases sharing a plan). *)
