(** Deterministic fault injection for robustness tests.

    A plan selects evaluations by a call counter: the decorated code
    calls {!apply} (value plans) or {!fire} (I/O plans) on every
    produced value / attempted operation, and the plan corrupts exactly
    the counter-selected ones. Because selection depends only on the call
    index, a fault fires at the same logical evaluation on every run —
    tests can drive every fallback and guard path on demand and assert the
    exact diagnostics that come back.

    Counters are atomic, so a plan can sit behind code that runs on a
    {!Pool}; but note that under a parallel evaluation order the call
    {e index} of a given logical evaluation is scheduling-dependent — run
    fault-injection tests sequentially ([jobs = 1]) when the exact faulted
    site matters. *)

type kind =
  | Nan  (** replace the value with [nan] *)
  | Value of float  (** replace the value with a constant *)
  | Scale of float  (** multiply the value *)
  | Offset of float  (** add to the value *)
  | Transform of (float -> float)
      (** replace the value with [f value] — arbitrary corruption. Note that
          a plan carrying a closure makes any structure containing it (e.g. a
          [Kernels.Kernel.Faulty] decorator) unusable with polymorphic
          [Stdlib.compare]/[(=)]; consumers must key caches by physical equality. *)

val corrupt : kind -> float -> float
(** Apply the corruption unconditionally (no plan, no counter). *)

type io_kind =
  | Read_error  (** the read fails outright (simulated EIO) *)
  | Short_read  (** only a prefix of the data arrives (truncation) *)
  | Torn_write  (** only a prefix of the data lands on disk (non-atomic write) *)
  | Latency of float  (** the operation stalls for the given milliseconds *)
  | Crash  (** the executing worker dies at this point (scheduling failure) *)

val io_kind_name : io_kind -> string
(** Stable short name for diagnostics, e.g. ["torn-write"]. *)

type 'k plan_of
(** The generic counter-selected plan; ['k] is the fault family. *)

type plan = kind plan_of
(** Value-corruption plan (the original {!apply} family). *)

type io_plan = io_kind plan_of
(** I/O / scheduling fault plan, consumed with {!fire} by
    {!Persist.Store} and the serving tier's chaos hooks. *)

val plan : ?first:int -> ?period:int -> ?limit:int -> kind -> plan
(** [plan kind] fires at call index [first] (default 0) and then, when
    [period > 0], at every [period]-th call after it; [period = 0]
    (default) fires at [first] only. [limit] caps the total number of
    faults (default: [first]-and-period selection only). Raises
    [Invalid_argument] on negative [first]/[period]/[limit]. *)

val io_plan : ?first:int -> ?period:int -> ?limit:int -> io_kind -> io_plan
(** Same selection semantics as {!plan}, for the I/O fault family. *)

val kind : 'k plan_of -> 'k
(** The plan's fault kind (lets consumers route a plan to the operations
    it applies to without firing its counter). *)

val fire : 'k plan_of -> 'k option
(** Count one call; [Some kind] iff this call is selected (the injection
    site must then act the fault out). *)

val fires : 'k plan_of -> bool
(** [fire p <> None] — for sites that only need the boolean. *)

val apply : plan -> float -> float
(** Count one call and corrupt the value iff this call is selected. *)

val calls : 'k plan_of -> int
(** Total calls seen so far. *)

val fired : 'k plan_of -> int
(** Faults actually injected so far. *)

val reset : 'k plan_of -> unit
(** Zero both counters (e.g. between test cases sharing a plan). *)
