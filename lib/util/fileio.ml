(* Unique-enough temporary names: same directory as the target (rename must
   not cross filesystems), disambiguated by pid and a process-local counter
   so concurrent writers in one process never collide. *)
let tmp_counter = Atomic.make 0

let tmp_path_for path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Atomic.fetch_and_add tmp_counter 1)

let with_atomic_out path f =
  let tmp = tmp_path_for path in
  let oc = open_out_bin tmp in
  let commit () =
    flush oc;
    (* fsync before rename: otherwise a power loss can leave the rename
       durable but the data not, which is exactly the truncated-file state
       this module exists to rule out *)
    (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
    close_out oc;
    Sys.rename tmp path
  in
  match f oc with
  | () -> commit ()
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let write_atomic path contents =
  with_atomic_out path (fun oc -> output_string oc contents)
