(** Crash-safe file emission.

    Every file the pipeline writes for a consumer — bench JSON records,
    Chrome traces, persisted models — goes through the same atomic
    tmp+rename protocol: the content is written to a unique temporary file
    in the {e same directory} as the target, flushed and fsync'd, and then
    renamed over the target. POSIX rename within a directory is atomic, so
    a reader (or a crash / SIGKILL mid-write) can observe either the old
    complete file or the new complete file — never a truncated mix. *)

val write_atomic : string -> string -> unit
(** [write_atomic path contents] atomically replaces [path] with
    [contents]. The temporary file is cleaned up on failure. Raises
    [Sys_error] / [Unix.Unix_error] on I/O errors. *)

val with_atomic_out : string -> (out_channel -> unit) -> unit
(** [with_atomic_out path f] runs [f] on an output channel backed by the
    temporary file, then commits it to [path] as in {!write_atomic} — for
    writers that stream instead of building one string. If [f] raises, the
    temporary file is removed and [path] is left untouched. *)
