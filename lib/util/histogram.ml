(* Log-linear HDR-style histogram.

   Layout (fixed for every instance, named "log-linear-5"):
   - values 0..31 get exact unit buckets (index = value);
   - a value v >= 32 with top bit position k (i.e. 2^k <= v < 2^(k+1))
     lands in index (k - 4) * 32 + ((v lsr (k - 5)) - 32): 32 sub-buckets
     per octave, each of width 2^(k-5), so the representative midpoint is
     within ~3% of any member value.

   The two regimes are continuous: for v in 32..63, k = 5 and the formula
   reduces to index = v. OCaml ints top out below 2^62, so k <= 61 and
   the highest index is (61 - 4) * 32 + 31 = 1855. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 *)
let layout = "log-linear-" ^ string_of_int sub_bits
let num_buckets = (61 - sub_bits + 2) * sub_count (* 1856 *)

type t = {
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
}

let create () =
  {
    buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum = Atomic.make 0;
  }

(* position of the highest set bit; v >= 1 *)
let top_bit v =
  let k = ref 0 and v = ref v in
  while !v > 1 do
    incr k;
    v := !v lsr 1
  done;
  !k

let bucket_index v =
  let v = if v < 0 then 0 else v in
  if v < sub_count then v
  else
    let k = top_bit v in
    ((k - sub_bits + 1) * sub_count) + ((v lsr (k - sub_bits)) - sub_count)

let bucket_value idx =
  if idx < sub_count then idx
  else
    let k = (idx / sub_count) + sub_bits - 1 in
    let sub = idx mod sub_count in
    let width = 1 lsl (k - sub_bits) in
    ((sub_count + sub) * width) + (width / 2)

let record t v =
  let v = if v < 0 then 0 else v in
  Atomic.incr t.buckets.(bucket_index v);
  Atomic.incr t.count;
  ignore (Atomic.fetch_and_add t.sum v)

let count t = Atomic.get t.count
let sum t = Atomic.get t.sum

let quantile t p =
  let n = Atomic.get t.count in
  if n = 0 then 0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (p *. float_of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    let seen = ref 0 and idx = ref 0 and found = ref 0 in
    (try
       while !idx < num_buckets do
         seen := !seen + Atomic.get t.buckets.(!idx);
         if !seen >= rank then begin
           found := bucket_value !idx;
           raise Exit
         end;
         incr idx
       done
     with Exit -> ());
    !found
  end

let max_value t =
  let best = ref 0 in
  for i = 0 to num_buckets - 1 do
    if Atomic.get t.buckets.(i) > 0 then best := bucket_value i
  done;
  !best

let merge_into ~dst src =
  for i = 0 to num_buckets - 1 do
    let c = Atomic.get src.buckets.(i) in
    if c > 0 then ignore (Atomic.fetch_and_add dst.buckets.(i) c)
  done;
  ignore (Atomic.fetch_and_add dst.count (Atomic.get src.count));
  ignore (Atomic.fetch_and_add dst.sum (Atomic.get src.sum))

let copy t =
  let c = create () in
  merge_into ~dst:c t;
  c

let reset t =
  for i = 0 to num_buckets - 1 do
    Atomic.set t.buckets.(i) 0
  done;
  Atomic.set t.count 0;
  Atomic.set t.sum 0

let buckets t =
  let acc = ref [] in
  for i = num_buckets - 1 downto 0 do
    let c = Atomic.get t.buckets.(i) in
    if c > 0 then acc := (i, c) :: !acc
  done;
  !acc

let version = 1

let to_json t =
  Jsonx.Obj
    [
      ("v", Jsonx.Num (float_of_int version));
      ("layout", Jsonx.Str layout);
      ("count", Jsonx.Num (float_of_int (count t)));
      ("sum", Jsonx.Num (float_of_int (sum t)));
      ( "buckets",
        Jsonx.List
          (List.map
             (fun (i, c) ->
               Jsonx.List [ Jsonx.Num (float_of_int i); Jsonx.Num (float_of_int c) ])
             (buckets t)) );
    ]

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Jsonx.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "histogram: missing or invalid %S" name)
  in
  let* v = field "v" Jsonx.as_int in
  if v <> version then Error (Printf.sprintf "histogram: unsupported version %d" v)
  else
    let* l = field "layout" Jsonx.as_str in
    if l <> layout then Error (Printf.sprintf "histogram: foreign layout %S" l)
    else
      let* total = field "count" Jsonx.as_int in
      let* sum = field "sum" Jsonx.as_int in
      let* entries = field "buckets" Jsonx.as_list in
      let t = create () in
      let* counted =
        List.fold_left
          (fun acc entry ->
            let* acc = acc in
            match entry with
            | Jsonx.List [ i; c ] -> (
                match (Jsonx.as_int i, Jsonx.as_int c) with
                | Some i, Some c when i >= 0 && i < num_buckets && c > 0 ->
                    Atomic.set t.buckets.(i) (Atomic.get t.buckets.(i) + c);
                    Ok (acc + c)
                | _ -> Error "histogram: bucket entry out of range")
            | _ -> Error "histogram: malformed bucket entry")
          (Ok 0) entries
      in
      if counted <> total then Error "histogram: count does not match buckets"
      else if sum < 0 then Error "histogram: negative sum"
      else begin
        Atomic.set t.count total;
        Atomic.set t.sum sum;
        Ok t
      end
