(** Log-linear (HDR-style) latency histogram with a fixed bucket layout.

    Values are non-negative integers (by convention nanoseconds). The
    layout is value-range independent and identical for every instance:
    exact buckets below 32, then 32 sub-buckets per power of two —
    bounding relative error at ~3% — so histograms recorded on different
    domains, processes, or shards merge bucket-by-bucket with no
    resampling. Recording is lock-free (one atomic fetch-and-add per
    bucket); because addition commutes, the bucket counts after recording
    a given multiset of samples are bit-identical regardless of how the
    samples were interleaved across domains.

    Quantile queries return the bucket midpoint, which is monotone in the
    bucket index, so [quantile h p <= quantile h q] whenever [p <= q]. *)

type t

val layout : string
(** Layout identifier embedded in the JSON encoding ("log-linear-5");
    decoding rejects snapshots produced under a different layout. *)

val num_buckets : int
(** Size of the fixed bucket array (covers every non-negative [int]). *)

val create : unit -> t
(** A fresh, empty histogram. *)

val record : t -> int -> unit
(** Record one value; negative values clamp to 0. Lock-free and safe from
    any number of domains concurrently. *)

val count : t -> int
(** Total number of recorded values. *)

val sum : t -> int
(** Sum of recorded values (exact, not bucket-quantised). *)

val bucket_index : int -> int
(** Bucket index a value lands in (exposed for tests). *)

val bucket_value : int -> int
(** Representative (midpoint) value of a bucket (exposed for tests). *)

val quantile : t -> float -> int
(** [quantile h p] for [p] in [0, 1]: the representative value of the
    bucket holding the sample of rank [ceil (p * count)]. 0 when empty. *)

val max_value : t -> int
(** Representative value of the highest occupied bucket; 0 when empty. *)

val merge_into : dst:t -> t -> unit
(** Add [src]'s bucket counts and sum into [dst]. Layouts are fixed, so
    any two histograms merge; merging is commutative and associative up
    to bit-identical bucket counts. *)

val copy : t -> t
(** Snapshot (a plain copy; subsequent recording into either side is
    independent). *)

val reset : t -> unit
(** Zero every bucket, the count and the sum. Not atomic with respect to
    concurrent recorders; callers quiesce recording first. *)

val buckets : t -> (int * int) list
(** Sparse [(index, count)] pairs of occupied buckets, ascending index. *)

val to_json : t -> Jsonx.t
(** Versioned snapshot: [{"v":1,"layout":"log-linear-5","count":..,
    "sum":..,"buckets":[[index,count],..]}]. *)

val of_json : Jsonx.t -> (t, string) result
(** Decode a snapshot; rejects unknown versions, foreign layouts,
    out-of-range indices and counts that do not add up. *)
