type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- *)
(* parsing *)

exception Parse of string

let err pos fmt = Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "%s at byte %d" m pos))) fmt

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> err c.pos "expected %c, found %c" ch x
  | None -> err c.pos "expected %c, found end of input" ch

let expect_lit c lit value =
  if
    c.pos + String.length lit <= String.length c.s
    && String.sub c.s c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    value
  end
  else err c.pos "invalid literal"

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek c with
      | Some ('0' .. '9' as ch) -> Char.code ch - Char.code '0'
      | Some ('a' .. 'f' as ch) -> Char.code ch - Char.code 'a' + 10
      | Some ('A' .. 'F' as ch) -> Char.code ch - Char.code 'A' + 10
      | _ -> err c.pos "invalid \\u escape"
    in
    advance c;
    v := (!v lsl 4) lor d
  done;
  !v

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> err c.pos "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        (match peek c with
        | Some '"' -> advance c; Buffer.add_char b '"'
        | Some '\\' -> advance c; Buffer.add_char b '\\'
        | Some '/' -> advance c; Buffer.add_char b '/'
        | Some 'b' -> advance c; Buffer.add_char b '\b'
        | Some 'f' -> advance c; Buffer.add_char b '\012'
        | Some 'n' -> advance c; Buffer.add_char b '\n'
        | Some 'r' -> advance c; Buffer.add_char b '\r'
        | Some 't' -> advance c; Buffer.add_char b '\t'
        | Some 'u' ->
            advance c;
            let hi = hex4 c in
            if hi >= 0xD800 && hi <= 0xDBFF then begin
              (* surrogate pair *)
              expect c '\\';
              expect c 'u';
              let lo = hex4 c in
              if lo < 0xDC00 || lo > 0xDFFF then err c.pos "unpaired surrogate";
              add_utf8 b (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else add_utf8 b hi
        | _ -> err c.pos "invalid escape");
        loop ())
    | Some ch when Char.code ch < 0x20 -> err c.pos "unescaped control character"
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let consume_while pred =
    while (match peek c with Some ch -> pred ch | None -> false) do
      advance c
    done
  in
  if peek c = Some '-' then advance c;
  consume_while (function '0' .. '9' -> true | _ -> false);
  if peek c = Some '.' then begin
    advance c;
    consume_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek c with
  | Some ('e' | 'E') ->
      advance c;
      (match peek c with Some ('+' | '-') -> advance c | _ -> ());
      consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub c.s start (c.pos - start) in
  match float_of_string_opt text with
  | Some v -> Num v
  | None -> err start "invalid number %S" text

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> err c.pos "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (key, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; members ()
          | Some '}' -> advance c
          | _ -> err c.pos "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; elements ()
          | Some ']' -> advance c
          | _ -> err c.pos "expected , or ] in array"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> expect_lit c "true" (Bool true)
  | Some 'f' -> expect_lit c "false" (Bool false)
  | Some 'n' -> expect_lit c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> err c.pos "unexpected character %C" ch

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos < String.length s then
        Error (Printf.sprintf "trailing characters at byte %d" c.pos)
      else Ok v
  | exception Parse msg -> Error msg

(* ---------------------------------------------------------------- *)
(* printing *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | ch when Char.code ch < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.add_char b '"'

let number_to_string v =
  if Float.is_nan v then "null" (* JSON has no NaN; degrade explicitly *)
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else if v = Float.infinity then "1e999"
  else if v = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%.17g" v

let to_string v =
  let b = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num v -> Buffer.add_string b (number_to_string v)
    | Str s -> escape_into b s
    | List items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          items;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            escape_into b k;
            Buffer.add_char b ':';
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ---------------------------------------------------------------- *)
(* accessors *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let as_str = function Str s -> Some s | _ -> None
let as_num = function Num v -> Some v | _ -> None

let as_int = function
  | Num v when Float.is_integer v && Float.abs v <= 2. ** 53. -> Some (int_of_float v)
  | _ -> None

let as_bool = function Bool v -> Some v | _ -> None
let as_obj = function Obj fields -> Some fields | _ -> None
let as_list = function List items -> Some items | _ -> None
