(** Minimal JSON reader/writer for the serving protocol.

    The repo has no JSON dependency; this is the small, total subset the
    JSON-lines protocol needs: full RFC 8259 value syntax on input
    (including [\uXXXX] escapes, decoded to UTF-8), one-line compact
    output. Numbers are carried as [float]; integral values within exact
    [float] range print without a decimal point. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. Error
    strings mention the byte offset. *)

val to_string : t -> string
(** Compact one-line rendering (no newlines, suitable for JSON-lines). *)

(** {1 Accessors} — shallow, [option]-typed *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val as_str : t -> string option
val as_num : t -> float option

val as_int : t -> int option
(** [Num] holding an exactly integral value. *)

val as_bool : t -> bool option
val as_obj : t -> (string * t) list option
val as_list : t -> t list option
