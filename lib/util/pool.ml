(* Fixed pool of worker domains executing one chunked parallel-for at a
   time. Chunk ranges are derived only from (n, chunk), so the work
   decomposition — and any per-chunk result slots the caller keeps — is
   identical for every pool size; only the assignment of chunks to domains
   varies. *)

type job = {
  body : int -> int -> unit;
  n : int;
  chunk : int;
  next : int Atomic.t; (* next chunk index to hand out *)
  error : exn option Atomic.t; (* first exception raised by any body *)
  parent : string; (* submitting span path, for worker-side trace events *)
}

type t = {
  mutable workers : unit Domain.t array;
  num_domains : int;
  mutex : Mutex.t; (* protects generation/job/unfinished/stop *)
  has_work : Condition.t;
  work_done : Condition.t;
  submit : Mutex.t; (* serializes client submissions *)
  mutable generation : int;
  mutable job : job option;
  mutable unfinished : int; (* workers still executing the current job *)
  mutable stop : bool;
  mutable joined : bool;
}

(* true while this domain is executing a parallel_for body (workers:
   always); makes nested parallel_for calls run sequentially *)
let in_parallel_body = Domain.DLS.new_key (fun () -> ref false)

let run_job job =
  let n_chunks = (job.n + job.chunk - 1) / job.chunk in
  let rec loop () =
    let c = Atomic.fetch_and_add job.next 1 in
    if c < n_chunks then begin
      (* after a failure, drain remaining chunks without running them *)
      if Atomic.get job.error = None then begin
        let lo = c * job.chunk in
        let hi = min job.n (lo + job.chunk) in
        try job.body lo hi
        with e -> ignore (Atomic.compare_and_set job.error None (Some e))
      end;
      loop ()
    end
  in
  loop ()

let worker_loop t () =
  Domain.DLS.get in_parallel_body := true;
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    let t_wait = Trace.now_ns () in
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = !last_gen do
      Condition.wait t.has_work t.mutex
    done;
    Trace.add Trace.pool_wait_ns (Trace.now_ns () - t_wait);
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      last_gen := t.generation;
      let job = match t.job with Some j -> j | None -> assert false in
      Mutex.unlock t.mutex;
      let t_run = Trace.now_ns () in
      Trace.with_pool_job ~parent:job.parent (fun () -> run_job job);
      Trace.add Trace.pool_run_ns (Trace.now_ns () - t_run);
      Mutex.lock t.mutex;
      t.unfinished <- t.unfinished - 1;
      if t.unfinished = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mutex
    end
  done

let create ?num_domains () =
  let num_domains =
    match num_domains with
    | Some n -> max 0 n
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      workers = [||];
      num_domains;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      work_done = Condition.create ();
      submit = Mutex.create ();
      generation = 0;
      job = None;
      unfinished = 0;
      stop = false;
      joined = false;
    }
  in
  t.workers <- Array.init num_domains (fun _ -> Domain.spawn (worker_loop t));
  t

let size t = t.num_domains + 1

let seq = create ~num_domains:0 ()

let force_shutdown t =
  if t.num_domains > 0 then begin
    Mutex.lock t.submit;
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    if not t.joined then begin
      Array.iter Domain.join t.workers;
      t.joined <- true
    end;
    Mutex.unlock t.submit
  end

let default_pool = ref None
let default_lock = Mutex.create ()

let default () =
  Mutex.lock default_lock;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        (* wake and join workers at exit so blocked domains never delay
           process shutdown *)
        at_exit (fun () -> force_shutdown p);
        p
  in
  Mutex.unlock default_lock;
  p

let default_if_created () =
  Mutex.lock default_lock;
  let p = !default_pool in
  Mutex.unlock default_lock;
  p

let shutdown t =
  let is_default = match default_if_created () with Some d -> d == t | None -> false in
  if not (t == seq || is_default) then force_shutdown t

(* Explicitly-sized pools are cached and reused across calls: spawning
   domains is ~ms-scale, and callers like the matrix-free operator request
   the same size once per apply (hundreds of times per eigensolve). One
   pool per distinct size, joined at exit. *)
let sized_pools : (int * t) list ref = ref []
let sized_lock = Mutex.create ()

let is_stopped p =
  Mutex.lock p.mutex;
  let s = p.stop in
  Mutex.unlock p.mutex;
  s

let sized_pool j =
  Mutex.lock sized_lock;
  let p =
    match
      List.find_opt (fun (s, p) -> s = j && not (is_stopped p)) !sized_pools
    with
    | Some (_, p) -> p
    | None ->
        let p = create ~num_domains:(j - 1) () in
        sized_pools :=
          (j, p) :: List.filter (fun (_, q) -> not (is_stopped q)) !sized_pools;
        at_exit (fun () -> force_shutdown p);
        p
  in
  Mutex.unlock sized_lock;
  p

let with_jobs ?jobs f =
  match jobs with
  | None -> f (default ())
  | Some j when j <= 1 -> f seq
  | Some j -> (
      match default_if_created () with
      | Some d when size d = j -> f d
      | _ -> f (sized_pool j))

let sequential_run body n chunk =
  let n_chunks = (n + chunk - 1) / chunk in
  for c = 0 to n_chunks - 1 do
    body (c * chunk) (min n ((c + 1) * chunk))
  done

let parallel_for t ?chunk ~n body =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c ->
          if c <= 0 then invalid_arg "Pool.parallel_for: chunk must be positive";
          c
      | None ->
          (* ~8 chunks per domain for load balance at modest dispatch cost *)
          let lanes = 8 * (t.num_domains + 1) in
          max 1 ((n + lanes - 1) / lanes)
    in
    let inside = Domain.DLS.get in_parallel_body in
    if t.num_domains = 0 || !inside || n <= chunk then sequential_run body n chunk
    else begin
      Mutex.lock t.submit;
      if t.stop then begin
        (* pool already shut down: degrade to the sequential path *)
        Mutex.unlock t.submit;
        sequential_run body n chunk
      end
      else begin
        let job =
          {
            body;
            n;
            chunk;
            next = Atomic.make 0;
            error = Atomic.make None;
            parent = (if Trace.enabled () then Trace.current_path () else "");
          }
        in
        Mutex.lock t.mutex;
        t.job <- Some job;
        t.generation <- t.generation + 1;
        t.unfinished <- t.num_domains;
        Condition.broadcast t.has_work;
        Mutex.unlock t.mutex;
        (* the caller participates; flag nested calls as sequential *)
        inside := true;
        run_job job;
        inside := false;
        Mutex.lock t.mutex;
        while t.unfinished > 0 do
          Condition.wait t.work_done t.mutex
        done;
        t.job <- None;
        Mutex.unlock t.mutex;
        Mutex.unlock t.submit;
        match Atomic.get job.error with Some e -> raise e | None -> ()
      end
    end
  end
