(** A fixed pool of worker domains for data-parallel loops (OCaml 5
    [Domain]s, stdlib only).

    The pool executes one chunked parallel-for at a time: the index range
    [0, n) is cut into fixed-size chunks and worker domains (plus the
    calling domain) grab chunks from a shared atomic counter until the
    range is exhausted. Because the {e set} of chunk ranges depends only on
    [n] and [chunk] — never on how many domains serve them — callers that
    allocate one result slot per chunk and combine slots in chunk order get
    results that are bit-identical for any pool size, including the
    sequential fallback.

    Nested calls (a [parallel_for] body calling [parallel_for], on any
    pool) run sequentially in the calling domain, so library code can
    parallelize unconditionally without risking deadlock or domain
    oversubscription. *)

type t
(** A pool of worker domains. A pool of size 1 has no workers and runs
    everything sequentially in the caller. *)

val create : ?num_domains:int -> unit -> t
(** [create ~num_domains ()] spawns [num_domains] worker domains
    (clamped at 0). Default: [Domain.recommended_domain_count () - 1].
    The pool's {!size} is [num_domains + 1]: the submitting domain always
    participates. *)

val size : t -> int
(** Number of domains that serve a job: workers + the caller. *)

val seq : t
(** The statically-allocated sequential pool ([size] = 1, no domains). *)

val default : unit -> t
(** The shared global pool, created on first use with the default domain
    count. Never shut down by [with_jobs]. *)

val default_if_created : unit -> t option
(** The global pool if {!default} has already been forced, without
    creating it. *)

val with_jobs : ?jobs:int -> (t -> 'a) -> 'a
(** [with_jobs ?jobs f] runs [f] with a pool of [jobs] total domains:
    [None] uses {!default}; [jobs <= 1] uses {!seq}; any other count
    reuses the global pool when the size matches and otherwise a cached
    pool of that size (created on first request, reused by every later
    [with_jobs] with the same count, joined at process exit — spawning
    domains is expensive, and hot paths request the same size per
    operator apply). *)

val parallel_for : t -> ?chunk:int -> n:int -> (int -> int -> unit) -> unit
(** [parallel_for t ~chunk ~n body] calls [body lo hi] for every chunk
    range [\[lo, hi)] covering [\[0, n)], where [hi - lo <= chunk] and
    [lo] is always a multiple of [chunk]. Ranges execute concurrently on
    the pool's domains; each range executes exactly once. [body] must not
    assume any ordering between ranges and must only write to disjoint
    state per range (or index). The first exception raised by any [body]
    is re-raised in the caller after all domains finish.

    Default [chunk] balances ~8 chunks per domain; pass an explicit
    [chunk] when per-chunk state must be independent of the pool size.
    Runs sequentially (in increasing range order) when [size t = 1], when
    called from inside another [parallel_for] body, or when [n <= chunk]. *)

val shutdown : t -> unit
(** Join the pool's workers. Idempotent. Calling [parallel_for] on a
    shut-down pool runs sequentially. [shutdown seq] and shutting down the
    {!default} pool are no-ops. *)
