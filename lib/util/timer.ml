(* Thin veneer over Trace's monotonic clock so the whole repo shares one
   clock source (CLOCK_MONOTONIC, immune to wall-clock adjustments). *)

type t = int (* Trace.now_ns at start *)

let start () = Trace.now_ns ()

let elapsed_s t = float_of_int (Trace.now_ns () - t) *. 1e-9

let time f =
  let t = start () in
  let result = f () in
  (result, elapsed_s t)
