(* Hierarchical spans + typed counters with Chrome-trace / aggregate-JSON
   exporters. See trace.mli for the contract; the key invariants here:

   - Disabled fast path: one [Atomic.get] + branch, no allocation.
   - Per-domain state lives in [Domain.DLS] (span stack, event buffer,
     ambient pool parent); global state (counter registry, buffer list,
     GC baseline) is guarded by mutexes or atomics.
   - Structural spans are only ever opened on the domain that calls
     [with_span]; pool workers go through [with_pool_job], which records a
     non-structural "pool.job" span on the worker's own track. That split
     is what keeps [structure ()] identical for any pool size. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* ---------------------------------------------------------------- *)
(* Counters                                                          *)
(* ---------------------------------------------------------------- *)

type counter = { cname : string; cell : int Atomic.t }

let registry_mutex = Mutex.create ()

(* Reverse registration order. *)
let registered : counter list ref = ref []

let counter cname =
  Mutex.lock registry_mutex;
  let c =
    match List.find_opt (fun c -> String.equal c.cname cname) !registered with
    | Some c -> c
    | None ->
        let c = { cname; cell = Atomic.make 0 } in
        registered := c :: !registered;
        c
  in
  Mutex.unlock registry_mutex;
  c

let add c n =
  if Atomic.get enabled_flag && n <> 0 then
    ignore (Atomic.fetch_and_add c.cell n)

let incr c = add c 1
let value c = Atomic.get c.cell

let counters () =
  Mutex.lock registry_mutex;
  let cs = !registered in
  Mutex.unlock registry_mutex;
  List.rev_map (fun c -> (c.cname, Atomic.get c.cell)) cs

let kernel_evals = counter "kernel_evals"
let matvecs = counter "matvecs"
let matmul_flops = counter "matmul_flops"
let lanczos_iterations = counter "lanczos_iterations"
let cholesky_jitter_retries = counter "cholesky_jitter_retries"
let mc_samples = counter "mc_samples"
let mc_skipped = counter "mc_skipped"
let pool_wait_ns = counter "pool_wait_ns"
let pool_run_ns = counter "pool_run_ns"
let nearfield_evals = counter "nearfield_evals"
let aca_rank_sum = counter "aca_rank_sum"
let htree_nodes = counter "htree_nodes"
let hmatrix_near_blocks = counter "hmatrix_near_blocks"
let hmatrix_far_blocks = counter "hmatrix_far_blocks"

(* GC gauge baseline: words at the last enable/reset. *)
let gc_base = Atomic.make (0.0, 0.0, 0.0)

let snapshot_gc () =
  let s = Gc.quick_stat () in
  Atomic.set gc_base (s.Gc.minor_words, s.Gc.promoted_words, s.Gc.major_words)

let gc_deltas () =
  let mi0, pr0, ma0 = Atomic.get gc_base in
  let s = Gc.quick_stat () in
  [
    ("gc_minor_words", s.Gc.minor_words -. mi0);
    ("gc_promoted_words", s.Gc.promoted_words -. pr0);
    ("gc_major_words", s.Gc.major_words -. ma0);
  ]

(* ---------------------------------------------------------------- *)
(* Events and per-domain state                                       *)
(* ---------------------------------------------------------------- *)

type attr = string * string

type event =
  | Span of {
      name : string;
      path : string;
      ts : int;
      dur : int;
      self_ns : int;
      args : attr list;
      structural : bool;
    }
  | Instant of { name : string; path : string; ts : int; args : attr list }

(* One event buffer per domain, registered globally on first use so the
   exporters can collect everything from the exporting domain. *)
type dbuf = { tid : int; mutable rev_events : event list }

let buffers_mutex = Mutex.create ()
let buffers : dbuf list ref = ref []

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b = { tid = (Domain.self () :> int); rev_events = [] } in
      Mutex.lock buffers_mutex;
      buffers := b :: !buffers;
      Mutex.unlock buffers_mutex;
      b)

type frame = {
  f_name : string;
  f_path : string;
  f_start : int;
  f_args : attr list;
  f_structural : bool;
  mutable f_children : int;  (* summed durations of direct children *)
}

let stack_key = Domain.DLS.new_key (fun () -> ref ([] : frame list))
let ambient_key = Domain.DLS.new_key (fun () -> ref "")

let current_path () =
  match !(Domain.DLS.get stack_key) with
  | f :: _ -> f.f_path
  | [] -> !(Domain.DLS.get ambient_key)

let emit e =
  let b = Domain.DLS.get buf_key in
  b.rev_events <- e :: b.rev_events

let span_enter ~structural ~attrs name =
  let stack = Domain.DLS.get stack_key in
  let parent =
    match !stack with
    | f :: _ -> f.f_path
    | [] -> !(Domain.DLS.get ambient_key)
  in
  let path = if String.length parent = 0 then name else parent ^ ";" ^ name in
  let fr =
    {
      f_name = name;
      f_path = path;
      f_start = now_ns ();
      f_args = attrs;
      f_structural = structural;
      f_children = 0;
    }
  in
  stack := fr :: !stack;
  fr

let span_event ~dur fr =
  Span
    {
      name = fr.f_name;
      path = fr.f_path;
      ts = fr.f_start;
      dur;
      self_ns = dur - fr.f_children;
      args = fr.f_args;
      structural = fr.f_structural;
    }

let span_exit fr =
  let stack = Domain.DLS.get stack_key in
  let dur = now_ns () - fr.f_start in
  (match !stack with
  | top :: tl when top == fr -> stack := tl
  | frames ->
      (* Unbalanced exit (should not happen: with_span is exception-safe);
         drop down to [fr] so the stack stays usable. *)
      let rec drop = function
        | top :: tl when top == fr -> tl
        | _ :: tl -> drop tl
        | [] -> []
      in
      stack := drop frames);
  (match !stack with
  | parent :: _ -> parent.f_children <- parent.f_children + dur
  | [] -> ());
  emit (span_event ~dur fr)

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else
    let fr = span_enter ~structural:true ~attrs name in
    Fun.protect ~finally:(fun () -> span_exit fr) f

let instant ?(attrs = []) name =
  if Atomic.get enabled_flag then
    emit (Instant { name; path = current_path (); ts = now_ns (); args = attrs })

let with_pool_job ~parent f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let amb = Domain.DLS.get ambient_key in
    let saved = !amb in
    amb := parent;
    let fr = span_enter ~structural:false ~attrs:[] "pool.job" in
    Fun.protect
      ~finally:(fun () ->
        span_exit fr;
        amb := saved)
      f
  end

(* ---------------------------------------------------------------- *)
(* Lifecycle                                                         *)
(* ---------------------------------------------------------------- *)

let enable () =
  if not (Atomic.get enabled_flag) then begin
    snapshot_gc ();
    Atomic.set enabled_flag true
  end

let disable () = Atomic.set enabled_flag false

let reset () =
  Mutex.lock registry_mutex;
  List.iter (fun c -> Atomic.set c.cell 0) !registered;
  Mutex.unlock registry_mutex;
  Mutex.lock buffers_mutex;
  List.iter (fun b -> b.rev_events <- []) !buffers;
  Mutex.unlock buffers_mutex;
  snapshot_gc ()

(* ---------------------------------------------------------------- *)
(* Collection                                                        *)
(* ---------------------------------------------------------------- *)

(* All recorded events as (tid, event), oldest-first per track, tracks
   sorted by tid. Spans still open on the calling domain are flushed
   with their duration-so-far (without popping them), so an exporter run
   from inside a root span — e.g. an `at_exit` hook — still sees it. *)
let collect_events () =
  Mutex.lock buffers_mutex;
  let bufs = List.sort (fun a b -> Int.compare a.tid b.tid) !buffers in
  Mutex.unlock buffers_mutex;
  let my_tid = (Domain.self () :> int) in
  let now = now_ns () in
  let open_here =
    List.rev_map
      (fun fr -> (my_tid, span_event ~dur:(now - fr.f_start) fr))
      !(Domain.DLS.get stack_key)
  in
  List.concat_map
    (fun b -> List.rev_map (fun e -> (b.tid, e)) b.rev_events)
    bufs
  @ open_here

let structural_spans () =
  List.filter_map
    (function
      | _, Span ({ structural = true; _ } as s) ->
          Some (s.path, s.name, s.dur, s.self_ns)
      | _ -> None)
    (collect_events ())

(* ---------------------------------------------------------------- *)
(* Aggregation                                                       *)
(* ---------------------------------------------------------------- *)

type node = {
  name : string;
  path : string;
  count : int;
  total_ns : int;
  self_ns : int;
  children : node list;
}

type stat = {
  mutable s_name : string;
  mutable s_count : int;
  mutable s_total : int;
  mutable s_self : int;
}

let stats_by_path () =
  let tbl : (string, stat) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (path, name, dur, self_ns) ->
      match Hashtbl.find_opt tbl path with
      | Some s ->
          s.s_count <- s.s_count + 1;
          s.s_total <- s.s_total + dur;
          s.s_self <- s.s_self + self_ns
      | None ->
          Hashtbl.add tbl path
            { s_name = name; s_count = 1; s_total = dur; s_self = self_ns })
    (structural_spans ());
  tbl

let parent_path path =
  match String.rindex_opt path ';' with
  | Some i -> String.sub path 0 i
  | None -> ""

let span_tree () =
  let tbl = stats_by_path () in
  let paths =
    Hashtbl.fold (fun p _ acc -> p :: acc) tbl []
    |> List.sort String.compare
  in
  (* Children lists in reverse path order; reversed on node construction. *)
  let kids : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun p ->
      let parent = parent_path p in
      if String.length parent = 0 || not (Hashtbl.mem tbl parent) then
        roots := p :: !roots
      else
        Hashtbl.replace kids parent
          (p :: (Option.value ~default:[] (Hashtbl.find_opt kids parent))))
    paths;
  let rec build p =
    let s = Hashtbl.find tbl p in
    let children =
      List.rev_map build (Option.value ~default:[] (Hashtbl.find_opt kids p))
    in
    {
      name = s.s_name;
      path = p;
      count = s.s_count;
      total_ns = s.s_total;
      self_ns = s.s_self;
      children;
    }
  in
  List.rev_map build !roots

let structure () =
  let tbl = stats_by_path () in
  Hashtbl.fold (fun p s acc -> (p, s.s_count) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---------------------------------------------------------------- *)
(* Text summary                                                      *)
(* ---------------------------------------------------------------- *)

let s_of_ns ns = float_of_int ns *. 1e-9

let summary () =
  let b = Buffer.create 1024 in
  let tree = span_tree () in
  if tree <> [] then begin
    Buffer.add_string b "span tree (total s | self s | calls):\n";
    let rec pr depth n =
      Buffer.add_string b
        (Printf.sprintf "%s%-*s %9.4f %9.4f %7d\n" (String.make (2 * depth) ' ')
           (max 1 (36 - (2 * depth)))
           n.name (s_of_ns n.total_ns) (s_of_ns n.self_ns) n.count);
      List.iter (pr (depth + 1)) n.children
    in
    List.iter (pr 0) tree
  end;
  let nonzero = List.filter (fun (_, v) -> v <> 0) (counters ()) in
  if nonzero <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-28s %d\n" k v))
      nonzero
  end;
  Buffer.add_string b "gc deltas (words):\n";
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-28s %.0f\n" k v))
    (gc_deltas ());
  Buffer.contents b

(* ---------------------------------------------------------------- *)
(* JSON                                                              *)
(* ---------------------------------------------------------------- *)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let summary_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"spans\": [";
  let first = ref true in
  let rec pr n =
    if !first then first := false else Buffer.add_string b ", ";
    Buffer.add_string b "{\"path\": ";
    add_json_string b n.path;
    Buffer.add_string b
      (Printf.sprintf ", \"count\": %d, \"total_s\": %.9f, \"self_s\": %.9f}"
         n.count (s_of_ns n.total_ns) (s_of_ns n.self_ns));
    List.iter pr n.children
  in
  List.iter pr (span_tree ());
  Buffer.add_string b "], \"counters\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      add_json_string b k;
      Buffer.add_string b (Printf.sprintf ": %d" v))
    (counters ());
  Buffer.add_string b "}, \"gc\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      add_json_string b k;
      Buffer.add_string b (Printf.sprintf ": %.0f" v))
    (gc_deltas ());
  Buffer.add_string b "}}";
  Buffer.contents b

(* ---------------------------------------------------------------- *)
(* Chrome trace_event exporter                                       *)
(* ---------------------------------------------------------------- *)

let add_args b args =
  Buffer.add_string b ", \"args\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      add_json_string b k;
      Buffer.add_string b ": ";
      add_json_string b v)
    args;
  Buffer.add_char b '}'

let write_chrome_trace path =
  let events = collect_events () in
  let t0 =
    List.fold_left
      (fun acc (_, e) ->
        let ts = match e with Span s -> s.ts | Instant i -> i.ts in
        min acc ts)
      max_int events
  in
  let t0 = if t0 = max_int then 0 else t0 in
  let us ns = float_of_int (ns - t0) *. 1e-3 in
  let tids =
    List.sort_uniq Int.compare (List.map (fun (tid, _) -> tid) events)
  in
  let sorted =
    List.stable_sort
      (fun (_, a) (_, b) ->
        let ts = function Span s -> s.ts | Instant i -> i.ts in
        Int.compare (ts a) (ts b))
      events
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n"
  in
  sep ();
  Buffer.add_string b
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
     \"args\": {\"name\": \"kle-ssta\"}}";
  List.iter
    (fun tid ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": \
            %d, \"args\": {\"name\": \"domain-%d%s\"}}"
           tid tid
           (if tid = 0 then " (main)" else "")))
    tids;
  List.iter
    (fun (tid, e) ->
      sep ();
      match e with
      | Span s ->
          Buffer.add_string b "{\"name\": ";
          add_json_string b s.name;
          Buffer.add_string b
            (Printf.sprintf
               ", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": \
                %.3f, \"pid\": 0, \"tid\": %d"
               (if s.structural then "span" else "pool")
               (us s.ts)
               (float_of_int s.dur *. 1e-3)
               tid);
          add_args b (("path", s.path) :: s.args);
          Buffer.add_char b '}'
      | Instant i ->
          Buffer.add_string b "{\"name\": ";
          add_json_string b i.name;
          Buffer.add_string b
            (Printf.sprintf
               ", \"cat\": \"instant\", \"ph\": \"i\", \"s\": \"t\", \"ts\": \
                %.3f, \"pid\": 0, \"tid\": %d"
               (us i.ts) tid);
          add_args b (("path", i.path) :: i.args);
          Buffer.add_char b '}')
    sorted;
  (* Counter totals as a final global instant so they travel with the
     trace file. *)
  let nonzero = List.filter (fun (_, v) -> v <> 0) (counters ()) in
  if nonzero <> [] then begin
    sep ();
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\": \"counters\", \"cat\": \"meta\", \"ph\": \"i\", \"s\": \
          \"g\", \"ts\": %.3f, \"pid\": 0, \"tid\": 0"
         (us (now_ns ())));
    add_args b (List.map (fun (k, v) -> (k, string_of_int v)) nonzero);
    Buffer.add_char b '}'
  end;
  Buffer.add_string b "\n]}\n";
  (* atomic tmp+rename: an interrupted export must never leave a truncated
     trace that chrome://tracing refuses to load *)
  Fileio.with_atomic_out path (fun oc -> Buffer.output_buffer oc b)
