(** Hierarchical tracing + typed metrics for the KLE → SSTA pipeline.

    One subsystem answers "where did the time and the numerical work go":

    - {b Spans} ({!with_span}) form a tree of named, monotonically
      timestamped intervals with string attributes. Each domain keeps its
      own span stack; {!Pool} workers inherit the submitting span as an
      ambient parent, so worker-side events land under the right subtree.
    - {b Counters} ({!counter}, {!add}) are atomic integers for work
      metrics: kernel evaluations, matvecs, Lanczos iterations, Cholesky
      jitter retries, Monte Carlo samples/skips, matmul flops, pool
      wait/run nanoseconds. GC words are tracked as {!gc_deltas} gauges
      from [Gc.quick_stat] snapshots.
    - {b Exporters}: {!write_chrome_trace} emits Chrome [trace_event] JSON
      (load in [chrome://tracing] or Perfetto; one track per domain) and
      {!summary} / {!summary_json} aggregate the span tree (total/self
      time, call counts) plus counter totals.

    The tracer is {b off by default}: every entry point is a single load
    and branch on a disabled flag, allocates nothing, and returns
    immediately — library code can instrument unconditionally.

    Span {e structure} (the multiset of span paths, {!structure}) is
    deterministic for any pool size: structural spans are only opened on
    the submitting domain, and work counters are bulk-computed from the
    problem shape, never from the chunk schedule. Pool worker activity is
    recorded as track-only ("pool.job") spans and wait/run counters that
    never enter the structural tree. *)

val enabled : unit -> bool
(** Single-branch fast path; all other entry points check this first. *)

val enable : unit -> unit
(** Turn tracing + counting on and snapshot the GC baseline. *)

val disable : unit -> unit

val reset : unit -> unit
(** Clear all recorded events and zero all counters (the registry itself
    is kept). Call only between runs, when no spans are open. *)

val now_ns : unit -> int
(** Monotonic nanoseconds (CLOCK_MONOTONIC); the single clock source for
    the whole repo — {!Timer} is a thin veneer over it. *)

(** {1 Spans} *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span ~attrs name f] runs [f] inside a span named [name], nested
    under the current domain's innermost open span (or the ambient pool
    parent). Exception-safe: the span closes on raise. Disabled: [f ()]. *)

val instant : ?attrs:(string * string) list -> string -> unit
(** Zero-duration event on the current track, attached to the active
    span's path — used by {!Diag} to put degraded fallbacks on the
    timeline. *)

val current_path : unit -> string
(** [";"]-joined path of the innermost open span ([""] at top level). *)

val with_pool_job : parent:string -> (unit -> 'a) -> 'a
(** Pool-internal: run [f] on a worker domain with [parent] (a span path
    captured at submission) as the ambient parent, inside a track-only,
    non-structural "pool.job" span. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Register (or look up) a named counter. Registration order is the
    reporting order. *)

val add : counter -> int -> unit
(** Atomic add; a no-op (one branch) when disabled. *)

val incr : counter -> unit
val value : counter -> int

val counters : unit -> (string * int) list
(** All registered counters with current values, in registration order. *)

val gc_deltas : unit -> (string * float) list
(** Minor/promoted/major GC words allocated since {!enable}/{!reset}. *)

(** Well-known counters (registered at module load, in this order): *)

val kernel_evals : counter
(** Exact correlation-kernel evaluations (assembly, Gram, profile-table
    build and probes; table {e lookups} are not kernel evals). *)

val matvecs : counter
(** Operator applications driven by the Lanczos eigensolver. *)

val matmul_flops : counter
(** 2·m·n·k flops accumulated by [Mat.mul] / [Mat.mul_nt]. *)

val lanczos_iterations : counter
(** Krylov basis dimension reached, summed over solves. *)

val cholesky_jitter_retries : counter
(** Failed factorization attempts that forced a larger diagonal jitter. *)

val mc_samples : counter
(** Monte Carlo samples accumulated by [Experiment.run_mc]. *)

val mc_skipped : counter
(** Samples dropped by the non-finite [Skip] policy. *)

val pool_wait_ns : counter
(** Nanoseconds pool workers spent blocked waiting for a job. *)

val pool_run_ns : counter
(** Nanoseconds pool workers spent executing job bodies. *)

val nearfield_evals : counter
(** Entry evaluations spent on dense near-field blocks of a hierarchical
    operator build. *)

val aca_rank_sum : counter
(** Sum of ACA ranks over all admissible far-field blocks built. *)

val htree_nodes : counter
(** Cluster-tree nodes created by hierarchical operator builds. *)

val hmatrix_near_blocks : counter
(** Dense near-field blocks in built hierarchical operators. *)

val hmatrix_far_blocks : counter
(** Low-rank far-field blocks in built hierarchical operators. *)

(** {1 Aggregation and export} *)

type node = {
  name : string;
  path : string;  (** [";"]-joined names from the root *)
  count : int;
  total_ns : int;
  self_ns : int;  (** total minus time in direct structural children *)
  children : node list;
}

val span_tree : unit -> node list
(** Structural spans aggregated by path; children sorted by path, so the
    tree is deterministic for any pool size. *)

val structure : unit -> (string * int) list
(** [(path, count)] pairs sorted by path — the span-tree {e shape}, for
    tests asserting [-j]-independence. *)

val summary : unit -> string
(** Pretty text: span tree with total/self seconds and call counts,
    non-zero counters, GC deltas. *)

val summary_json : unit -> string
(** The same aggregate as compact JSON:
    [{"spans": [...], "counters": {...}, "gc": {...}}]. *)

val write_chrome_trace : string -> unit
(** Write all recorded events as Chrome [trace_event] JSON ("X" complete
    events, "i" instants, one [tid] per domain). Spans still open on the
    calling domain are flushed with their current duration. The file is
    committed atomically ({!Fileio.with_atomic_out}), so an interrupted
    run never leaves a truncated trace. *)
