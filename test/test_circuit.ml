module G = Circuit.Gate
module N = Circuit.Netlist

let check_close ?(tol = 1e-10) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let zeros = Array.make 4 0.0

(* a tiny hand-built netlist:
   pi0, pi1 -> nand2 g2 -> inv g3 (output) *)
let tiny () =
  let gates =
    [|
      { N.id = 0; name = "a"; kind = G.Input; fanins = [||] };
      { N.id = 1; name = "b"; kind = G.Input; fanins = [||] };
      { N.id = 2; name = "n"; kind = G.Nand2; fanins = [| 0; 1 |] };
      { N.id = 3; name = "y"; kind = G.Inv; fanins = [| 2 |] };
    |]
  in
  N.make ~name:"tiny" ~gates ~outputs:[| 3 |]

(* ---------- Gate ---------- *)

let test_gate_arities () =
  Alcotest.(check int) "input" 0 (G.arity G.Input);
  Alcotest.(check int) "inv" 1 (G.arity G.Inv);
  Alcotest.(check int) "nand2" 2 (G.arity G.Nand2);
  Alcotest.(check int) "dff" 1 (G.arity G.Dff)

let test_gate_nominal_delay_positive () =
  List.iter
    (fun k ->
      let d = G.delay k ~slew_in:40.0 ~c_load:5.0 ~params:zeros in
      Alcotest.(check bool) (G.kind_name k) true (d > 0.0))
    [ G.Inv; G.Buf; G.Nand2; G.Nor2; G.And2; G.Or2; G.Xor2; G.Xnor2; G.Dff ]

let test_gate_delay_monotone_in_load () =
  let d1 = G.delay G.Nand2 ~slew_in:40.0 ~c_load:2.0 ~params:zeros in
  let d2 = G.delay G.Nand2 ~slew_in:40.0 ~c_load:20.0 ~params:zeros in
  Alcotest.(check bool) "larger load slower" true (d2 > d1)

let test_gate_delay_monotone_in_slew () =
  let d1 = G.delay G.Inv ~slew_in:10.0 ~c_load:5.0 ~params:zeros in
  let d2 = G.delay G.Inv ~slew_in:80.0 ~c_load:5.0 ~params:zeros in
  Alcotest.(check bool) "slower input slower" true (d2 > d1)

let test_gate_parameter_sensitivities () =
  (* +L slows, +W speeds, +Vt slows (physics sign conventions) *)
  let base = G.delay G.Nand2 ~slew_in:40.0 ~c_load:5.0 ~params:zeros in
  let with_p i v =
    let p = Array.copy zeros in
    p.(i) <- v;
    G.delay G.Nand2 ~slew_in:40.0 ~c_load:5.0 ~params:p
  in
  Alcotest.(check bool) "+L slower" true (with_p 0 1.0 > base);
  Alcotest.(check bool) "+W faster" true (with_p 1 1.0 < base);
  Alcotest.(check bool) "+Vt slower" true (with_p 2 1.0 > base)

let test_gate_quadratic_term () =
  (* the rank-one quadratic makes delay(+3sigma) - base != base - delay(-3sigma) *)
  let d p =
    G.delay G.Inv ~slew_in:40.0 ~c_load:5.0 ~params:[| p; 0.0; 0.0; 0.0 |]
  in
  let up = d 3.0 -. d 0.0 and down = d 0.0 -. d (-3.0) in
  Alcotest.(check bool) "asymmetric response" true (Float.abs (up -. down) > 1e-6)

let test_gate_params_validated () =
  Alcotest.(check bool) "length check" true
    (match G.delay G.Inv ~slew_in:40.0 ~c_load:5.0 ~params:[| 0.0 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_gate_slew_positive () =
  let s = G.output_slew G.Nor2 ~slew_in:40.0 ~c_load:8.0 ~params:zeros in
  Alcotest.(check bool) "positive" true (s > 0.0)

let test_clk_to_q () =
  Alcotest.(check bool) "positive" true (G.clk_to_q ~params:zeros > 0.0)

(* ---------- Netlist ---------- *)

let test_netlist_structure () =
  let t = tiny () in
  Alcotest.(check int) "size" 4 (N.size t);
  Alcotest.(check int) "logic gates" 2 (N.logic_gate_count t);
  Alcotest.(check (array int)) "inputs" [| 0; 1 |] (N.inputs t);
  Alcotest.(check (array int)) "endpoints" [| 3 |] (N.endpoints t)

let test_netlist_topological_order () =
  let t = tiny () in
  let order = N.topological_order t in
  let pos = Array.make 4 0 in
  Array.iteri (fun i g -> pos.(g) <- i) order;
  Alcotest.(check bool) "fanins first" true (pos.(0) < pos.(2) && pos.(1) < pos.(2) && pos.(2) < pos.(3))

let test_netlist_levels () =
  let t = tiny () in
  let lvl = N.levels t in
  Alcotest.(check int) "input level" 0 lvl.(0);
  Alcotest.(check int) "nand level" 1 lvl.(2);
  Alcotest.(check int) "inv level" 2 lvl.(3);
  Alcotest.(check int) "max" 2 (N.max_level t)

let test_netlist_fanouts () =
  let t = tiny () in
  let f = N.fanouts t in
  Alcotest.(check (array int)) "nand drives inv" [| 3 |] f.(2);
  Alcotest.(check (array int)) "inv drives nothing" [||] f.(3)

let test_netlist_cycle_rejected () =
  let gates =
    [|
      { N.id = 0; name = "a"; kind = G.Input; fanins = [||] };
      { N.id = 1; name = "x"; kind = G.Inv; fanins = [| 2 |] };
      { N.id = 2; name = "y"; kind = G.Inv; fanins = [| 1 |] };
    |]
  in
  Alcotest.(check bool) "cycle raises" true
    (match N.make ~name:"cyc" ~gates ~outputs:[| 2 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_netlist_dff_breaks_cycle () =
  (* a loop through a DFF is legal (sequential feedback) *)
  let gates =
    [|
      { N.id = 0; name = "a"; kind = G.Input; fanins = [||] };
      { N.id = 1; name = "x"; kind = G.Nand2; fanins = [| 0; 2 |] };
      { N.id = 2; name = "q"; kind = G.Dff; fanins = [| 1 |] };
    |]
  in
  let t = N.make ~name:"seq" ~gates ~outputs:[| 1 |] in
  Alcotest.(check (array int)) "dffs" [| 2 |] (N.dffs t);
  (* DFF's fanin gate is also an endpoint *)
  Alcotest.(check (array int)) "endpoints" [| 1 |] (N.endpoints t)

let test_netlist_arity_mismatch () =
  let gates =
    [|
      { N.id = 0; name = "a"; kind = G.Input; fanins = [||] };
      { N.id = 1; name = "bad"; kind = G.Nand2; fanins = [| 0 |] };
    |]
  in
  Alcotest.(check bool) "arity raises" true
    (match N.make ~name:"bad" ~gates ~outputs:[| 1 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- Generator ---------- *)

let test_generator_counts () =
  let spec =
    { Circuit.Generator.name = "t"; n_gates = 200; n_inputs = 12; n_outputs = 9;
      dff_fraction = 0.0; seed = 3 }
  in
  let t = Circuit.Generator.generate spec in
  Alcotest.(check int) "logic gates" 200 (N.logic_gate_count t);
  Alcotest.(check int) "inputs" 12 (Array.length (N.inputs t));
  Alcotest.(check int) "outputs" 9 (Array.length t.N.outputs)

let test_generator_deterministic () =
  let t1 = Circuit.Generator.generate_paper "c880" in
  let t2 = Circuit.Generator.generate_paper "c880" in
  Alcotest.(check bool) "same netlist" true (t1.N.gates = t2.N.gates)

let test_generator_paper_sizes () =
  List.iter
    (fun (name, n) ->
      let t = Circuit.Generator.generate_paper name in
      Alcotest.(check int) name n (N.logic_gate_count t))
    [ ("c880", 383); ("c1355", 546); ("c1908", 880) ]

let test_generator_sequential_has_dffs () =
  let t = Circuit.Generator.generate_paper "s5378" in
  Alcotest.(check bool) "has dffs" true (Array.length (N.dffs t) > 0);
  let c = Circuit.Generator.generate_paper "c1355" in
  Alcotest.(check int) "combinational has none" 0 (Array.length (N.dffs c))

let test_generator_invalid_spec () =
  Alcotest.(check bool) "negative gates" true
    (match
       Circuit.Generator.generate
         { Circuit.Generator.name = "x"; n_gates = 0; n_inputs = 4; n_outputs = 1;
           dff_fraction = 0.0; seed = 1 }
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_generator_unknown_paper_circuit () =
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Circuit.Generator.paper_spec "c999"))

(* ---------- Bench format ---------- *)

let test_bench_roundtrip () =
  let t = Circuit.Generator.generate_paper "c880" in
  let text = Circuit.Bench_format.print t in
  match Circuit.Bench_format.parse ~name:"c880rt" text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t' ->
      Alcotest.(check int) "gate count preserved" (N.size t) (N.size t');
      Alcotest.(check int) "outputs preserved" (Array.length t.N.outputs)
        (Array.length t'.N.outputs);
      Alcotest.(check int) "levels preserved" (N.max_level t) (N.max_level t')

let test_bench_parse_basic () =
  let src = "# comment\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\nn1 = NAND(a, b)\ny = NOT(n1)\n" in
  match Circuit.Bench_format.parse ~name:"basic" src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok t ->
      Alcotest.(check int) "size" 4 (N.size t);
      Alcotest.(check int) "logic" 2 (N.logic_gate_count t)

let test_bench_parse_wide_gate_decomposition () =
  let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = AND(a, b, c, d)\n" in
  match Circuit.Bench_format.parse ~name:"wide" src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok t ->
      (* 4-input AND -> 3 two-input ANDs *)
      Alcotest.(check int) "decomposed" 3 (N.logic_gate_count t);
      Array.iter
        (fun (g : N.gate) ->
          Alcotest.(check bool) "arity <= 2" true (Array.length g.fanins <= 2))
        t.N.gates

let test_bench_parse_wide_nand () =
  let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = NAND(a, b, c)\n" in
  match Circuit.Bench_format.parse ~name:"nand3" src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok t ->
      (* AND(a,b) + NAND(_, c) *)
      Alcotest.(check int) "two gates" 2 (N.logic_gate_count t);
      let kinds = Array.map (fun (g : N.gate) -> g.kind) t.N.gates in
      Alcotest.(check bool) "one nand root" true (Array.exists (fun k -> k = G.Nand2) kinds)

let test_bench_parse_dff () =
  let src = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n" in
  match Circuit.Bench_format.parse ~name:"dff" src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok t -> Alcotest.(check int) "one dff" 1 (Array.length (N.dffs t))

let test_bench_parse_errors () =
  Alcotest.(check bool) "undefined signal" true
    (Result.is_error (Circuit.Bench_format.parse ~name:"x" "OUTPUT(y)\ny = NOT(ghost)\n"));
  Alcotest.(check bool) "garbage line" true
    (Result.is_error (Circuit.Bench_format.parse ~name:"x" "this is not bench\n"));
  Alcotest.(check bool) "combinational loop" true
    (Result.is_error
       (Circuit.Bench_format.parse ~name:"x" "INPUT(a)\nx = NOT(y)\ny = NOT(x)\n"))

(* one check per parser error path, asserting the exact message text the
   server relies on when it maps these to typed [netlist_error] replies *)
let check_parse_error text expected_substr =
  match Circuit.Bench_format.parse ~name:"x" text with
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" text
  | Error msg ->
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
        n = 0 || scan 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%S reports %S (got %S)" text expected_substr msg)
        true (contains expected_substr msg)

let test_bench_error_messages () =
  check_parse_error "OUTPUT(y)\ny = NOT(ghost)\n" {|undefined signal "ghost"|};
  check_parse_error "OUTPUT(y)\n" {|undefined signal "y"|};
  check_parse_error "INPUT(a)\nx = NOT(y)\ny = NOT(x)\n" "combinational loop through";
  check_parse_error "INPUT(a)\nINPUT(b)\ny = NOT(a, b)\n" "unsupported function NOT/2";
  check_parse_error "INPUT(a)\nINPUT(b)\ny = DFF(a, b)\n" "unsupported function DFF/2";
  check_parse_error "INPUT(a)\ny = FROB(a)\n" "unsupported function FROB/1";
  check_parse_error "INPUT(a)\ny = NOT a\n" "line 2: malformed gate definition";
  check_parse_error "INPUT(a)\nthis is not bench\n"
    "line 2: expected INPUT(..), OUTPUT(..) or assignment"

let test_bench_file_roundtrip () =
  let t = Circuit.Generator.generate_paper "c880" in
  let path = Filename.temp_file "kle_ssta_test" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Circuit.Bench_format.write_file path t;
      match Circuit.Bench_format.parse_file path with
      | Error e -> Alcotest.failf "parse_file: %s" e
      | Ok t' ->
          Alcotest.(check string) "name from basename" (Filename.remove_extension (Filename.basename path)) t'.N.name;
          Alcotest.(check int) "size" (N.size t) (N.size t'))

(* ---------- Placer ---------- *)

let test_place_inside_die () =
  let t = Circuit.Generator.generate_paper "c880" in
  let p = Circuit.Placer.place t in
  Array.iter
    (fun loc ->
      Alcotest.(check bool) "inside" true (Geometry.Rect.contains p.Circuit.Placer.die loc))
    p.Circuit.Placer.locations

let test_place_deterministic () =
  let t = Circuit.Generator.generate_paper "c880" in
  let p1 = Circuit.Placer.place ~seed:5 t and p2 = Circuit.Placer.place ~seed:5 t in
  Alcotest.(check bool) "same locations" true
    (p1.Circuit.Placer.locations = p2.Circuit.Placer.locations)

let test_place_beats_random () =
  (* connectivity-driven placement must yield smaller total HPWL than random *)
  let t = Circuit.Generator.generate_paper "c1355" in
  let placed = Circuit.Placer.total_hpwl (Circuit.Placer.place t) in
  let random = Circuit.Placer.total_hpwl (Circuit.Placer.random_placement ~seed:2 t) in
  Alcotest.(check bool)
    (Printf.sprintf "placed %.1f < random %.1f" placed random)
    true (placed < random)

let test_hpwl_zero_for_sinks () =
  let t = tiny () in
  let p = Circuit.Placer.place t in
  check_close ~tol:0.0 "unloaded output" 0.0 (Circuit.Placer.hpwl p 3)

let test_hpwl_all_matches_hpwl () =
  let t = tiny () in
  let p = Circuit.Placer.place t in
  let all = Circuit.Placer.hpwl_all p in
  Array.iteri (fun i v -> check_close ~tol:0.0 "same" (Circuit.Placer.hpwl p i) v) all

(* ---------- Wireload ---------- *)

let test_wireload_nonnegative () =
  let t = Circuit.Generator.generate_paper "c880" in
  let wl = Circuit.Wireload.build (Circuit.Placer.place t) in
  Array.iteri
    (fun i load ->
      Alcotest.(check bool) "r >= 0" true (load.Circuit.Wireload.r_wire >= 0.0);
      Alcotest.(check bool) "c >= 0" true (Circuit.Wireload.c_load wl i >= 0.0))
    wl.Circuit.Wireload.loads

let test_wireload_scales_with_die () =
  let t = Circuit.Generator.generate_paper "c880" in
  let p = Circuit.Placer.place t in
  let small = Circuit.Wireload.build ~die_size_mm:1.0 p in
  let large = Circuit.Wireload.build ~die_size_mm:4.0 p in
  (* pick a loaded net *)
  let i =
    let f = N.fanouts t in
    let rec find j = if Array.length f.(j) > 0 then j else find (j + 1) in
    find 0
  in
  Alcotest.(check bool) "wire grows with die" true
    (large.Circuit.Wireload.loads.(i).Circuit.Wireload.c_wire
    > small.Circuit.Wireload.loads.(i).Circuit.Wireload.c_wire)

let test_wireload_pin_caps () =
  let t = tiny () in
  let wl = Circuit.Wireload.build (Circuit.Placer.place t) in
  (* nand (gate 2) drives only the inverter: pin cap = inv c_in *)
  check_close ~tol:1e-12 "pin cap" (G.timing G.Inv).G.c_in
    wl.Circuit.Wireload.loads.(2).Circuit.Wireload.c_pins

(* ---------- qcheck ---------- *)

let prop_generator_valid_dags =
  let gen =
    QCheck.Gen.(
      let* n = int_range 20 300 in
      let* seed = int_range 0 500 in
      let* dff = float_range 0.0 0.2 in
      return (n, seed, dff))
  in
  let arb = QCheck.make gen ~print:(fun (n, s, d) -> Printf.sprintf "(n=%d, seed=%d, dff=%.2f)" n s d) in
  QCheck.Test.make ~name:"generator always produces valid DAGs" ~count:50 arb
    (fun (n, seed, dff_fraction) ->
      let t =
        Circuit.Generator.generate
          { Circuit.Generator.name = "q"; n_gates = n; n_inputs = 8; n_outputs = 4;
            dff_fraction; seed }
      in
      N.logic_gate_count t = n && Array.length (N.topological_order t) = N.size t)

let prop_bench_roundtrip_small =
  QCheck.Test.make ~name:"bench roundtrip preserves structure" ~count:20
    (QCheck.int_range 0 1000) (fun seed ->
      let t =
        Circuit.Generator.generate
          { Circuit.Generator.name = "q"; n_gates = 60; n_inputs = 6; n_outputs = 3;
            dff_fraction = 0.05; seed }
      in
      match Circuit.Bench_format.parse ~name:"q" (Circuit.Bench_format.print t) with
      | Error _ -> false
      | Ok t' -> N.size t' = N.size t && N.max_level t' = N.max_level t)

let () =
  Alcotest.run "circuit"
    [
      ( "gate",
        [
          Alcotest.test_case "arities" `Quick test_gate_arities;
          Alcotest.test_case "nominal delays positive" `Quick test_gate_nominal_delay_positive;
          Alcotest.test_case "monotone in load" `Quick test_gate_delay_monotone_in_load;
          Alcotest.test_case "monotone in input slew" `Quick test_gate_delay_monotone_in_slew;
          Alcotest.test_case "parameter sensitivities" `Quick test_gate_parameter_sensitivities;
          Alcotest.test_case "quadratic term present" `Quick test_gate_quadratic_term;
          Alcotest.test_case "params validated" `Quick test_gate_params_validated;
          Alcotest.test_case "slew positive" `Quick test_gate_slew_positive;
          Alcotest.test_case "clk_to_q" `Quick test_clk_to_q;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "structure" `Quick test_netlist_structure;
          Alcotest.test_case "topological order" `Quick test_netlist_topological_order;
          Alcotest.test_case "levels" `Quick test_netlist_levels;
          Alcotest.test_case "fanouts" `Quick test_netlist_fanouts;
          Alcotest.test_case "cycle rejected" `Quick test_netlist_cycle_rejected;
          Alcotest.test_case "dff breaks cycles" `Quick test_netlist_dff_breaks_cycle;
          Alcotest.test_case "arity mismatch rejected" `Quick test_netlist_arity_mismatch;
        ] );
      ( "generator",
        [
          Alcotest.test_case "counts" `Quick test_generator_counts;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "paper sizes" `Quick test_generator_paper_sizes;
          Alcotest.test_case "sequential circuits have dffs" `Quick test_generator_sequential_has_dffs;
          Alcotest.test_case "invalid spec" `Quick test_generator_invalid_spec;
          Alcotest.test_case "unknown paper name" `Quick test_generator_unknown_paper_circuit;
        ] );
      ( "bench_format",
        [
          Alcotest.test_case "roundtrip c880" `Quick test_bench_roundtrip;
          Alcotest.test_case "parse basic" `Quick test_bench_parse_basic;
          Alcotest.test_case "wide AND decomposition" `Quick test_bench_parse_wide_gate_decomposition;
          Alcotest.test_case "wide NAND decomposition" `Quick test_bench_parse_wide_nand;
          Alcotest.test_case "dff" `Quick test_bench_parse_dff;
          Alcotest.test_case "error reporting" `Quick test_bench_parse_errors;
          Alcotest.test_case "error messages per path" `Quick test_bench_error_messages;
          Alcotest.test_case "file roundtrip" `Quick test_bench_file_roundtrip;
        ] );
      ( "placer",
        [
          Alcotest.test_case "inside the die" `Quick test_place_inside_die;
          Alcotest.test_case "deterministic" `Quick test_place_deterministic;
          Alcotest.test_case "beats random placement" `Quick test_place_beats_random;
          Alcotest.test_case "hpwl of unloaded nets" `Quick test_hpwl_zero_for_sinks;
          Alcotest.test_case "hpwl_all consistency" `Quick test_hpwl_all_matches_hpwl;
        ] );
      ( "wireload",
        [
          Alcotest.test_case "non-negative loads" `Quick test_wireload_nonnegative;
          Alcotest.test_case "scales with die size" `Quick test_wireload_scales_with_die;
          Alcotest.test_case "pin capacitances" `Quick test_wireload_pin_caps;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generator_valid_dags; prop_bench_roundtrip_small ] );
    ]
